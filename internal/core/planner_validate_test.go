package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestValidateDefaults: the stock configuration must always pass.
func TestValidateDefaults(t *testing.T) {
	if err := NewPlanner().Validate(); err != nil {
		t.Fatalf("NewPlanner().Validate() = %v, want nil", err)
	}
}

// TestValidateCatchesSilentKnobs: every knob mistake that would silently
// mine an empty or no-op plan family must produce an error naming the
// knob, instead of a quietly useless campaign.
func TestValidateCatchesSilentKnobs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Planner)
		want   string // substring the error must carry
	}{
		{"negative max plans", func(p *Planner) { p.MaxPlans = -1 }, "MaxPlans"},
		{"negative blackout", func(p *Planner) { p.BlackoutWindow = -sim.Second }, "BlackoutWindow"},
		{"zero freeze points", func(p *Planner) { p.MaxFreezePoints = 0 }, "MaxFreezePoints"},
		{"no crash delays", func(p *Planner) { p.CrashDelays = nil }, "CrashDelays"},
		{"non-positive crash delay", func(p *Planner) { p.CrashDelays = []sim.Duration{0} }, "CrashDelay"},
		{"zero gray freeze points", func(p *Planner) { p.GrayFreezePoints = 0 }, "GrayFreezePoints"},
		{"zero gray window", func(p *Planner) { p.GrayWindow = 0 }, "GrayWindow"},
		{"zero slow extra", func(p *Planner) { p.SlowExtra = 0 }, "SlowExtra"},
		{"negative slow jitter", func(p *Planner) { p.SlowJitter = -1 }, "SlowJitter"},
		{"compaction keep below floor", func(p *Planner) { p.CompactionKeep = 1 }, "CompactionKeep"},
		{"flaky percent out of range", func(p *Planner) { p.FlakyDrop = 101 }, "FlakyDrop"},
		{"all flaky knobs zero", func(p *Planner) { p.FlakyDrop, p.FlakyDup, p.FlakyReorder = 0, 0, 0 }, "flaky-link"},
	}
	for _, tc := range cases {
		p := NewPlanner()
		tc.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error mentioning %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %q, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateDisabledFamiliesRelax: knobs of a disabled family are not
// validated — disabling is the documented way to opt out.
func TestValidateDisabledFamiliesRelax(t *testing.T) {
	p := NewPlanner()
	p.DisableTimeTravel = true
	p.CrashDelays = nil
	if err := p.Validate(); err != nil {
		t.Fatalf("CrashDelays unset with time travel disabled: Validate() = %v, want nil", err)
	}
	p = NewPlanner()
	p.DisableGrayFailure = true
	p.SlowExtra = 0
	p.CompactionKeep = 0
	if err := p.Validate(); err != nil {
		t.Fatalf("gray knobs unset with gray failures disabled: Validate() = %v, want nil", err)
	}
	p = NewPlanner()
	p.DisableTimeTravel = true
	p.DisableStaleness = true
	p.MaxFreezePoints = 0
	if err := p.Validate(); err != nil {
		t.Fatalf("freeze points unset with both consumers disabled: Validate() = %v, want nil", err)
	}
}
