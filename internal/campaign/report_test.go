package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestArtifactRoundTrip runs a collecting campaign, writes campaign.json,
// reads it back, and checks the document is a faithful, valid artifact.
func TestArtifactRoundTrip(t *testing.T) {
	target := workload.Target56261()
	cfg := Config{Workers: 2, MaxExecutions: 10, Collect: true}
	res := New(cfg).Run(target, core.NewPlanner())
	if !res.Detected {
		t.Fatalf("campaign missed 56261: %+v", res.Campaign)
	}
	if len(res.Outcomes) == 0 {
		t.Fatal("Collect produced no outcomes")
	}
	// The reference run must be present as index -1.
	if res.Outcomes[0].Index != -1 || res.Outcomes[0].Plan != "nop" {
		t.Fatalf("first outcome should be the reference run, got %+v", res.Outcomes[0])
	}
	for _, o := range res.Outcomes {
		if o.Signature == "" {
			t.Fatalf("collected outcome missing signature: %+v", o)
		}
		if o.Class == "" {
			t.Fatalf("collected outcome missing class: %+v", o)
		}
	}

	path := filepath.Join(t.TempDir(), "campaign.json")
	art := BuildArtifact(res, cfg)
	if err := WriteArtifacts(path, []Artifact{art}); err != nil {
		t.Fatal(err)
	}

	// The file must be valid JSON with the expected envelope.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var envelope map[string]json.RawMessage
	if err := json.Unmarshal(raw, &envelope); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if _, ok := envelope["campaigns"]; !ok {
		t.Fatal("artifact missing campaigns field")
	}

	back, err := ReadArtifacts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("round trip returned %d campaigns, want 1", len(back))
	}
	got := back[0]
	if got.Target != target.Name || got.Strategy != "partial-history" {
		t.Fatalf("identity fields lost: %+v", got)
	}
	if got.Detected != res.Detected || got.Campaign.Executions != res.Campaign.Executions {
		t.Fatalf("result fields lost: %+v vs %+v", got.Campaign, res.Campaign)
	}
	if len(got.Outcomes) != len(res.Outcomes) {
		t.Fatalf("outcomes lost: %d vs %d", len(got.Outcomes), len(res.Outcomes))
	}
	if got.Stats.RawExecutions != res.Stats.RawExecutions {
		t.Fatalf("stats lost: %+v vs %+v", got.Stats, res.Stats)
	}
}

// TestFailureDedup checks that repeated violating executions with the
// same signature collapse into one bucket with an accurate count.
func TestFailureDedup(t *testing.T) {
	target := workload.Target56261()
	// KeepGoing + a plan budget large enough to hit the bug repeatedly:
	// the planner's top candidates are many timing variants of the same
	// scheduler-misses-node-deletion gap, which all produce the same
	// violation signature.
	cfg := Config{Workers: 2, MaxExecutions: 25, KeepGoing: true, Collect: true}
	res := New(cfg).Run(target, core.NewPlanner())
	if !res.Detected {
		t.Fatalf("campaign missed 56261: %+v", res.Campaign)
	}
	violating := 0
	for _, o := range res.Outcomes {
		if len(o.Violations) > 0 {
			violating++
		}
	}
	total := 0
	for _, b := range res.Buckets {
		total += b.Count
		if len(b.Oracles) == 0 {
			t.Fatalf("bucket without oracles: %+v", b)
		}
	}
	if total != violating {
		t.Fatalf("buckets count %d executions, outcomes show %d violating", total, violating)
	}
	if len(res.Buckets) >= violating && violating > 1 {
		t.Fatalf("dedup had no effect: %d buckets for %d violating executions",
			len(res.Buckets), violating)
	}
}

// TestSignatureStability: the same (plan, seed) always produces the same
// signature, and a detecting execution's signature differs from the
// reference's.
func TestSignatureStability(t *testing.T) {
	target := workload.Target56261()
	ref, _ := core.Reference(target)
	plans := core.NewPlanner().Plans(target, ref)
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	e1, s1 := runInstrumented(target, plans[0], 1)
	e2, s2 := runInstrumented(target, plans[0], 1)
	if s1 != s2 {
		t.Fatalf("replay changed signature: %s vs %s", s1, s2)
	}
	if e1.Detected != e2.Detected {
		t.Fatal("replay changed detection")
	}
	_, sNop := runInstrumented(target, core.NopPlan{}, 1)
	if e1.Detected && s1 == sNop {
		t.Fatal("detecting execution shares the reference signature")
	}
}
