// Package bench computes the deterministic results behind the E5, E6 and
// E10 benchmark tables (bench_test.go at the repo root) and serializes
// them as committed artifacts — BENCH_E5.json, BENCH_E6.json and
// BENCH_E10.json. The benchmarks regenerate the artifacts on every run;
// cmd/benchcheck recomputes them from scratch and fails when the
// committed files disagree, so silent drift in the headline numbers (a
// planner change shifting executions-to-detection, a pruning change
// deferring different plans, a snapshot-layer change breaking on/off
// byte-identity) breaks a check instead of rotting in the repo.
//
// Only virtual-time results live here: detections, execution counts, plan
// counts, pruning decisions. Wall-clock measurements are incidental to
// the benchmarks and never enter the artifacts, so the files are
// byte-stable across machines (the same canonicalization discipline as
// internal/campaign's telemetry stream).
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/apiserver"
	"repro/internal/baselines"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/workload"
)

// SchemaE5, SchemaE6 and SchemaE10 version the artifact formats;
// benchcheck refuses files with an unknown schema instead of mis-diffing
// them.
const (
	SchemaE5  = "bench-e5/v1"
	SchemaE6  = "bench-e6/v1"
	SchemaE10 = "bench-e10/v1"
	SchemaE11 = "bench-e11/v1"
	SchemaE12 = "bench-e12/v1"
)

// Cell is one (target, strategy) campaign's deterministic outcome.
type Cell struct {
	Target     string `json:"target"`
	Oracle     string `json:"oracle"`
	Strategy   string `json:"strategy"`
	Detected   bool   `json:"detected"`
	Executions int    `json:"executions"`
	PlansTotal int    `json:"plans_total"`
}

// LearnedCell is one target's pruned+ranked planner campaign: the same
// deterministic outcome plus the learning phase's decision counters.
type LearnedCell struct {
	Target            string `json:"target"`
	Detected          bool   `json:"detected"`
	Executions        int    `json:"executions"`
	PlansTotal        int    `json:"plans_total"`
	PlansPruned       int    `json:"plans_pruned"`
	PlansDeduped      int    `json:"plans_deduped"`
	UnsoundDetections int    `json:"pruning_unsound_detections"`
}

// E5 is the Section 7 bug-finding matrix artifact.
type E5 struct {
	Schema        string        `json:"schema"`
	MaxExecutions int           `json:"max_executions"`
	Cells         []Cell        `json:"cells"`
	Learned       []LearnedCell `json:"learned"`
}

// E6Row is one target's planner-efficiency comparison (§6.1).
type E6Row struct {
	Target   string      `json:"target"`
	Guided   Cell        `json:"guided"`
	Learned  LearnedCell `json:"learned"`
	Unguided Cell        `json:"unguided"`
	Random   Cell        `json:"random"`
}

// E6 is the planner-efficiency artifact.
type E6 struct {
	Schema        string  `json:"schema"`
	MaxExecutions int     `json:"max_executions"`
	Rows          []E6Row `json:"rows"`
}

// e5Strategies is the strategy column order of the E5 matrix.
func e5Strategies(maxExec int) []core.Strategy {
	return []core.Strategy{
		core.NewPlanner(),
		baselines.CrashTuner{},
		baselines.CoFI{},
		baselines.Random{Seed: 7, N: maxExec},
	}
}

func cellOf(t core.Target, strategy string, cr core.CampaignResult, detected bool) Cell {
	return Cell{
		Target:     t.Name,
		Oracle:     t.Bug,
		Strategy:   strategy,
		Detected:   detected,
		Executions: cr.Executions,
		PlansTotal: cr.PlansTotal,
	}
}

func learnedOf(t core.Target, res campaign.Result) LearnedCell {
	return LearnedCell{
		Target:            t.Name,
		Detected:          res.Detected,
		Executions:        res.Campaign.Executions,
		PlansTotal:        res.Campaign.PlansTotal,
		PlansPruned:       res.Stats.PlansPruned,
		PlansDeduped:      res.Stats.PlansDeduped,
		UnsoundDetections: res.Stats.PruningUnsoundDetections,
	}
}

// ComputeE5 runs the Section 7 matrix: every target under every strategy
// column plus the pruned+ranked planner column. Campaigns execute through
// the parallel engine with prefix checkpointing enabled — unguided
// results are byte-identical to the serial core.Matrix at any worker
// count, and snapshot forking is artifact-invisible by construction, so
// the artifact is a pure function of maxExec.
func ComputeE5(maxExec, workers int) E5 {
	targets := workload.AllTargets()
	eng := campaign.New(campaign.Config{Workers: workers, MaxExecutions: maxExec, Snapshot: true})
	engLearned := campaign.New(campaign.Config{Workers: workers, MaxExecutions: maxExec, Prune: true, Ranked: true, Snapshot: true})

	art := E5{Schema: SchemaE5, MaxExecutions: maxExec}
	for _, t := range targets {
		for _, s := range e5Strategies(maxExec) {
			res := eng.Run(t, s)
			art.Cells = append(art.Cells, cellOf(t, s.Name(), res.Campaign, res.Detected))
		}
		art.Learned = append(art.Learned, learnedOf(t, engLearned.Run(t, core.NewPlanner())))
	}
	return art
}

// unguidedPlanner is the E6 baseline: the paper's planner with its causal
// guidance knobs switched off.
func unguidedPlanner() *core.Planner {
	p := core.NewPlanner()
	p.CausalFilter = false
	p.CausalRanking = false
	p.PrioritizeDeletionPaths = false
	return p
}

// ComputeE6 runs the §6.1 planner-efficiency comparison on the three E6
// targets: guided planner, pruned+ranked planner, unguided planner, and
// the random baseline.
func ComputeE6(maxExec, workers int) E6 {
	targets := []core.Target{workload.Target56261(), workload.TargetCass398(), workload.TargetCass400()}
	eng := campaign.New(campaign.Config{Workers: workers, MaxExecutions: maxExec, Snapshot: true})
	engLearned := campaign.New(campaign.Config{Workers: workers, MaxExecutions: maxExec, Prune: true, Ranked: true, Snapshot: true})

	art := E6{Schema: SchemaE6, MaxExecutions: maxExec}
	for _, t := range targets {
		g := eng.Run(t, core.NewPlanner())
		l := engLearned.Run(t, core.NewPlanner())
		u := eng.Run(t, unguidedPlanner())
		r := eng.Run(t, baselines.Random{Seed: 11, N: maxExec})
		art.Rows = append(art.Rows, E6Row{
			Target:   t.Name,
			Guided:   cellOf(t, "partial-history", g.Campaign, g.Detected),
			Learned:  learnedOf(t, l),
			Unguided: cellOf(t, "partial-history-unguided", u.Campaign, u.Detected),
			Random:   cellOf(t, "random", r.Campaign, r.Detected),
		})
	}
	return art
}

// E10Row is one target's snapshot-substrate audit: the campaign outcome
// under checkpoint-tree forking plus the equivalence evidence — fallback
// count (zero on a healthy substrate), and byte-identity of the
// canonicalized campaign.json and raw NDJSON telemetry between the
// snapshot-on and snapshot-off runs of the same campaign.
type E10Row struct {
	Target       string `json:"target"`
	Oracle       string `json:"oracle"`
	Snapshotable bool   `json:"snapshotable"`
	Detected     bool   `json:"detected"`
	Executions   int    `json:"executions"`
	PlansTotal   int    `json:"plans_total"`
	// SnapshotFallbacks totals the diagnosable fork-to-full-replay
	// fallbacks (unconditional, so the gate can assert == 0).
	SnapshotFallbacks int `json:"snapshot_fallbacks"`
	// ArtifactIdentical / TelemetryIdentical record whether the snapshot-on
	// campaign produced byte-identical canonicalized campaign.json and raw
	// NDJSON to the snapshot-off campaign. Committed true, so any future
	// divergence is drift benchcheck refuses.
	ArtifactIdentical  bool `json:"artifact_identical"`
	TelemetryIdentical bool `json:"telemetry_identical"`
}

// E10 is the snapshot-substrate equivalence artifact: all five targets
// forked from checkpoint trees, with fallback visibility and on/off
// byte-identity pinned. The wall-clock side of E10 (executions/sec)
// lives in BenchmarkE10 and never enters the artifact.
type E10 struct {
	Schema        string   `json:"schema"`
	MaxExecutions int      `json:"max_executions"`
	Rows          []E10Row `json:"rows"`
}

// ComputeE10 runs every target twice — full replay and checkpoint-tree
// forking — and records the deterministic equivalence evidence. KeepGoing
// pins a fixed execution count so both modes run the identical plan set.
func ComputeE10(maxExec, workers int) E10 {
	art := E10{Schema: SchemaE10, MaxExecutions: maxExec}
	for _, t := range workload.AllTargets() {
		cfgOff := campaign.Config{Workers: workers, MaxExecutions: maxExec, KeepGoing: true, Collect: true}
		cfgOn := cfgOff
		cfgOn.Snapshot = true
		off := campaign.New(cfgOff).Run(t, core.NewPlanner())
		on := campaign.New(cfgOn).Run(t, core.NewPlanner())

		artOff := mustCanonicalJSON(campaign.BuildArtifact(off, cfgOff))
		artOn := mustCanonicalJSON(campaign.BuildArtifact(on, cfgOn))
		var ndOff, ndOn bytes.Buffer
		mustNDJSON(&ndOff, off, cfgOff)
		mustNDJSON(&ndOn, on, cfgOn)

		fallbacks := 0
		if f := on.Stats.SnapshotFallbacks; f != nil {
			fallbacks = f.Unsnapshotable + f.StrictPast + f.RestoreError + f.Watchdog
		}
		art.Rows = append(art.Rows, E10Row{
			Target:             t.Name,
			Oracle:             t.Bug,
			Snapshotable:       t.Build(1).Snapshotable(),
			Detected:           on.Detected,
			Executions:         on.Campaign.Executions,
			PlansTotal:         on.Campaign.PlansTotal,
			SnapshotFallbacks:  fallbacks,
			ArtifactIdentical:  bytes.Equal(artOff, artOn),
			TelemetryIdentical: bytes.Equal(ndOff.Bytes(), ndOn.Bytes()),
		})
	}
	return art
}

// E11Row is one target's exhaustive-vs-sampled comparison: the bounded
// systematic explorer against the guided planner campaign and the random
// baseline, all measured in executions-to-first-detection (virtual-time
// determinism means execution counts ARE the tool's time axis; wall-clock
// never enters the artifact).
type E11Row struct {
	Target string `json:"target"`
	Oracle string `json:"oracle"`
	// Exhaustive exploration under the standard E11 bound (one drop plus
	// one delay per schedule, POR on). ExploreOutcome is "violation",
	// "certificate", or "budget-exhausted"; ExploreExecutions counts
	// schedules executed until the stop; the space/collapse counters
	// record how much the reduction bought.
	ExploreOutcome     string `json:"explore_outcome"`
	ExploreExecutions  uint64 `json:"explore_executions"`
	ExploreWitness     string `json:"explore_witness,omitempty"`
	ScheduleSpace      uint64 `json:"schedule_space"`
	SchedulesCollapsed uint64 `json:"schedules_collapsed"`
	// Guided / Random are the sampling columns under the same budget.
	Guided Cell `json:"guided"`
	Random Cell `json:"random"`
}

// E11 is the exhaustive-mode artifact: ROADMAP item 6's evidence that a
// bounded systematic sweep either finds the seeded bugs within small
// schedule counts or certifies their absence within the bound.
type E11 struct {
	Schema        string   `json:"schema"`
	MaxExecutions int      `json:"max_executions"`
	BoundDrops    int      `json:"bound_drops"`
	BoundDelays   int      `json:"bound_delays"`
	Rows          []E11Row `json:"rows"`
}

// e11MaxSchedules bounds one exploration; large enough that every target
// either detects or certifies (a budget abort would make the row
// meaningless).
const e11MaxSchedules = 20000

// ComputeE11 runs the exhaustive-vs-sampled comparison on all five
// seeded bugs. The explorer is serial and deterministic; the campaign
// columns are deterministic at any worker count, so the artifact is a
// pure function of maxExec.
func ComputeE11(maxExec, workers int) E11 {
	art := E11{Schema: SchemaE11, MaxExecutions: maxExec, BoundDrops: 1, BoundDelays: 1}
	eng := campaign.New(campaign.Config{Workers: workers, MaxExecutions: maxExec, Guided: true, Snapshot: true})
	engRand := campaign.New(campaign.Config{Workers: workers, MaxExecutions: maxExec, Snapshot: true})
	for _, t := range workload.AllTargets() {
		res := explore.Run(explore.Config{
			Target: t, Seed: 1,
			Bounds:   explore.Bounds{Drops: 1, Delays: 1, MaxSchedules: e11MaxSchedules},
			POR:      true,
			Snapshot: true,
		})
		g := eng.Run(t, core.NewPlanner())
		r := engRand.Run(t, baselines.Random{Seed: 11, N: maxExec})
		row := E11Row{
			Target:             t.Name,
			Oracle:             t.Bug,
			ExploreOutcome:     res.Outcome,
			ExploreExecutions:  res.Stats.SchedulesExecuted,
			ScheduleSpace:      res.Stats.ScheduleSpace,
			SchedulesCollapsed: res.Stats.SchedulesCollapsed,
			Guided:             cellOf(t, "partial-history", g.Campaign, g.Detected),
			Random:             cellOf(t, "random", r.Campaign, r.Detected),
		}
		if res.Witness != nil {
			row.ExploreWitness = res.Witness.MinimalID
		}
		art.Rows = append(art.Rows, row)
	}
	return art
}

func ReadE11(path string) (E11, error) {
	var art E11
	if err := readJSON(path, &art); err != nil {
		return E11{}, err
	}
	if art.Schema != SchemaE11 {
		return E11{}, fmt.Errorf("bench: %s: schema %q, want %q", path, art.Schema, SchemaE11)
	}
	return art, nil
}

// E12Row is one scale point's serving-cost audit: the serving counters
// of a single unperturbed rack-drain execution under the indexed and the
// legacy scan-everything paths. Relay sub-visits grow with cluster size
// on the unindexed path and stay proportional to relayed events on the
// indexed one — the committed rows pin that shape. The counters are
// virtual-time deterministic (pure observability, never snapshotted), so
// the artifact is byte-stable across machines.
type E12Row struct {
	Nodes  int    `json:"nodes"`
	Target string `json:"target"`
	// RelayEvents / RelaySends are path-independent (asserted by
	// BehaviourIdentical); the Indexed/Unindexed pairs are the cost axes.
	RelayEvents        uint64 `json:"relay_events"`
	RelaySends         uint64 `json:"relay_sends"`
	SubVisitsIndexed   uint64 `json:"relay_sub_visits_indexed"`
	SubVisitsUnindexed uint64 `json:"relay_sub_visits_unindexed"`
	ListKeysIndexed    uint64 `json:"list_keys_scanned_indexed"`
	ListKeysUnindexed  uint64 `json:"list_keys_scanned_unindexed"`
	// BehaviourIdentical records that both paths relayed the same events,
	// pushed the same number of watch messages, and answered the same
	// lists: the indexes are accelerations, not behaviour changes.
	BehaviourIdentical bool `json:"behaviour_identical"`
}

// E12 is the serving-path scaling artifact: per-scale-point cost rows
// plus campaign byte-identity between the indexed and unindexed serving
// paths at the 100-node point. The wall-clock side (executions/sec)
// lives in BenchmarkE12 and never enters the artifact.
type E12 struct {
	Schema        string   `json:"schema"`
	MaxExecutions int      `json:"max_executions"`
	Rows          []E12Row `json:"rows"`
	// The identity columns re-run the 100-node rack-drain campaign with
	// every apiserver pinned to the unindexed path and byte-compare the
	// canonicalized campaign.json and raw NDJSON telemetry against the
	// indexed run. Committed true: an index that leaks into behaviour is
	// drift benchcheck refuses.
	IdentityTarget     string `json:"identity_target"`
	IdentityDetected   bool   `json:"identity_detected"`
	IdentityExecutions int    `json:"identity_executions"`
	ArtifactIdentical  bool   `json:"artifact_identical"`
	TelemetryIdentical bool   `json:"telemetry_identical"`
}

// ComputeE12 measures the serving paths at 10, 100 and 500 nodes and
// runs the 100-node identity campaigns. Deterministic at any worker
// count, so the artifact is a pure function of maxExec.
func ComputeE12(maxExec, workers int) E12 {
	art := E12{Schema: SchemaE12, MaxExecutions: maxExec}
	for _, p := range []workload.ScaleProfile{workload.Scale10, workload.Scale100, workload.Scale500} {
		t := workload.ScaleRackDrainTarget(p)
		si := healthyServeStats(t)
		su := healthyServeStats(workload.UnindexedServing(t))
		art.Rows = append(art.Rows, E12Row{
			Nodes:              p.NumNodes(),
			Target:             t.Name,
			RelayEvents:        si.RelayEvents,
			RelaySends:         si.RelaySends,
			SubVisitsIndexed:   si.RelaySubVisits,
			SubVisitsUnindexed: su.RelaySubVisits,
			ListKeysIndexed:    si.ListKeysScanned,
			ListKeysUnindexed:  su.ListKeysScanned,
			BehaviourIdentical: si.RelayEvents == su.RelayEvents &&
				si.RelaySends == su.RelaySends &&
				si.ListServed == su.ListServed,
		})
	}

	t := workload.ScaleRackDrainTarget(workload.Scale100)
	cfg := campaign.Config{Workers: workers, MaxExecutions: maxExec, KeepGoing: true, Collect: true}
	idx := campaign.New(cfg).Run(t, core.NewPlanner())
	un := campaign.New(cfg).Run(workload.UnindexedServing(t), core.NewPlanner())
	var ndIdx, ndUn bytes.Buffer
	mustNDJSON(&ndIdx, idx, cfg)
	mustNDJSON(&ndUn, un, cfg)
	art.IdentityTarget = t.Name
	art.IdentityDetected = idx.Detected && un.Detected
	art.IdentityExecutions = idx.Campaign.Executions
	art.ArtifactIdentical = bytes.Equal(
		mustCanonicalJSON(campaign.BuildArtifact(idx, cfg)),
		mustCanonicalJSON(campaign.BuildArtifact(un, cfg)))
	art.TelemetryIdentical = bytes.Equal(ndIdx.Bytes(), ndUn.Bytes())
	return art
}

// healthyServeStats runs one unperturbed execution of the target and
// sums the serving counters across its apiservers.
func healthyServeStats(t core.Target) apiserver.ServeStats {
	c := t.Build(1)
	t.Workload(c)
	c.RunFor(t.Horizon)
	var total apiserver.ServeStats
	for _, api := range c.APIs {
		s := api.Stats()
		total.RelayEvents += s.RelayEvents
		total.RelaySubVisits += s.RelaySubVisits
		total.RelaySends += s.RelaySends
		total.ListServed += s.ListServed
		total.ListKeysScanned += s.ListKeysScanned
		total.DecodeHits += s.DecodeHits
		total.DecodeMisses += s.DecodeMisses
		total.WindowTrims += s.WindowTrims
		total.WindowCompacts += s.WindowCompacts
	}
	return total
}

func ReadE12(path string) (E12, error) {
	var art E12
	if err := readJSON(path, &art); err != nil {
		return E12{}, err
	}
	if art.Schema != SchemaE12 {
		return E12{}, fmt.Errorf("bench: %s: schema %q, want %q", path, art.Schema, SchemaE12)
	}
	return art, nil
}

func mustCanonicalJSON(art campaign.Artifact) []byte {
	data, err := json.Marshal(campaign.CanonicalizeArtifact(art))
	if err != nil {
		// Artifacts marshal by construction; a failure is a programming
		// error, not a runtime condition.
		panic(fmt.Sprintf("bench: marshal artifact: %v", err))
	}
	return data
}

func mustNDJSON(w *bytes.Buffer, res campaign.Result, cfg campaign.Config) {
	if err := campaign.WriteNDJSON(w, res, cfg); err != nil {
		panic(fmt.Sprintf("bench: telemetry stream: %v", err))
	}
}

// WriteFile serializes an artifact (E5 or E6) to path with a trailing
// newline, in the indented form the repo commits.
func WriteFile(path string, artifact any) error {
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadE5 and ReadE6 load committed artifacts, rejecting unknown schemas.
func ReadE5(path string) (E5, error) {
	var art E5
	if err := readJSON(path, &art); err != nil {
		return E5{}, err
	}
	if art.Schema != SchemaE5 {
		return E5{}, fmt.Errorf("bench: %s: schema %q, want %q", path, art.Schema, SchemaE5)
	}
	return art, nil
}

func ReadE6(path string) (E6, error) {
	var art E6
	if err := readJSON(path, &art); err != nil {
		return E6{}, err
	}
	if art.Schema != SchemaE6 {
		return E6{}, fmt.Errorf("bench: %s: schema %q, want %q", path, art.Schema, SchemaE6)
	}
	return art, nil
}

func ReadE10(path string) (E10, error) {
	var art E10
	if err := readJSON(path, &art); err != nil {
		return E10{}, err
	}
	if art.Schema != SchemaE10 {
		return E10{}, fmt.Errorf("bench: %s: schema %q, want %q", path, art.Schema, SchemaE10)
	}
	return art, nil
}

func readJSON(path string, into any) error {
	var err error
	var data []byte
	if data, err = os.ReadFile(path); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := json.Unmarshal(data, into); err != nil {
		return fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return nil
}
