package wal

import (
	"errors"
	"testing"
	"testing/quick"
)

type rec struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func TestAppendRead(t *testing.T) {
	l := New()
	idx, err := l.Append(rec{N: 1, S: "a"})
	if err != nil || idx != 1 {
		t.Fatalf("append: %d %v", idx, err)
	}
	idx, _ = l.Append(rec{N: 2, S: "b"})
	if idx != 2 || l.LastIndex() != 2 || l.FirstIndex() != 1 || l.Len() != 2 {
		t.Fatalf("log shape: last=%d first=%d len=%d", l.LastIndex(), l.FirstIndex(), l.Len())
	}
	var r rec
	if err := l.Read(2, &r); err != nil || r.S != "b" {
		t.Fatalf("read: %+v %v", r, err)
	}
	if err := l.Read(3, &r); err == nil {
		t.Fatal("read beyond end succeeded")
	}
}

func TestReplayOrder(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	err := Replay(l, func(index uint64, v rec) error {
		got = append(got, v.N)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range got {
		if n != i {
			t.Fatalf("replay order: %v", got)
		}
	}
}

func TestTruncateTail(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		l.AppendRaw([]byte{byte(i)})
	}
	l.TruncateTail(3)
	if l.LastIndex() != 3 || l.Len() != 3 {
		t.Fatalf("after truncate: last=%d len=%d", l.LastIndex(), l.Len())
	}
	// Appending after truncation continues from the cut.
	idx := l.AppendRaw([]byte{9})
	if idx != 4 {
		t.Fatalf("post-truncate append index = %d", idx)
	}
}

func TestCompactAndSnapshot(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.AppendRaw([]byte{byte(i)})
	}
	l.Compact(6, []byte("snap@6"))
	if l.FirstIndex() != 7 || l.LastIndex() != 10 {
		t.Fatalf("after compact: first=%d last=%d", l.FirstIndex(), l.LastIndex())
	}
	snap, at := l.Snapshot()
	if string(snap) != "snap@6" || at != 6 {
		t.Fatalf("snapshot = %q @%d", snap, at)
	}
	var r rec
	if err := l.Read(3, &r); !errors.Is(err, ErrTruncated) {
		t.Fatalf("read compacted index: %v", err)
	}
	// Compacting backwards is a no-op.
	l.Compact(2, []byte("older"))
	if _, at := l.Snapshot(); at != 6 {
		t.Fatalf("backward compact moved snapshot to %d", at)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	l := New()
	if err := l.SetMeta("raft", rec{N: 7, S: "vote"}); err != nil {
		t.Fatal(err)
	}
	var r rec
	ok, err := l.GetMeta("raft", &r)
	if err != nil || !ok || r.N != 7 {
		t.Fatalf("meta: %+v %v %v", r, ok, err)
	}
	ok, err = l.GetMeta("missing", &r)
	if err != nil || ok {
		t.Fatalf("missing meta: %v %v", ok, err)
	}
}

func TestPropertyIndexesDense(t *testing.T) {
	f := func(ops []uint8) bool {
		l := New()
		expected := uint64(0)
		for _, op := range ops {
			switch {
			case op%4 != 0 || l.LastIndex() == 0:
				idx := l.AppendRaw([]byte{op})
				expected++
				if idx != expected {
					return false
				}
			default:
				cut := uint64(op) % (l.LastIndex() + 1)
				l.TruncateTail(cut)
				if cut < expected {
					expected = cut
				}
			}
			if l.LastIndex() != expected {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
