package sim

import (
	"errors"
	"fmt"
)

// ErrRPCTimeout is delivered to a call's callback when no response arrives
// within the client's timeout (the server crashed, the link is partitioned,
// or the response was dropped by an interceptor).
var ErrRPCTimeout = errors.New("sim: rpc timeout")

// ErrRemote wraps an application-level error string returned by a server.
type ErrRemote struct{ Msg string }

func (e ErrRemote) Error() string { return e.Msg }

// RPCRequest is the payload of a request message.
type RPCRequest struct {
	ID     uint64
	Method string
	Body   any
}

// RPCResponse is the payload of a response message.
type RPCResponse struct {
	ID   uint64
	Body any
	Err  string // empty on success
}

// RPCClient issues asynchronous calls over the simulated network and
// correlates responses. A component embeds one client and forwards response
// messages to HandleResponse from its message handler.
type RPCClient struct {
	net     *Network
	self    NodeID
	timeout Duration
	next    uint64
	pending map[uint64]*pendingCall
}

type pendingCall struct {
	cb    func(any, error)
	timer *Timer
}

// NewRPCClient creates a client for node self with the given call timeout
// (0 disables timeouts).
func NewRPCClient(net *Network, self NodeID, timeout Duration) *RPCClient {
	return &RPCClient{net: net, self: self, timeout: timeout, pending: make(map[uint64]*pendingCall)}
}

// Call sends method(body) to the server node and invokes cb exactly once:
// with the response body, with a remote error, or with ErrRPCTimeout.
func (c *RPCClient) Call(to NodeID, method string, body any, cb func(any, error)) {
	c.next++
	id := c.next
	pc := &pendingCall{cb: cb}
	c.pending[id] = pc
	if c.timeout > 0 {
		pc.timer = c.net.Kernel().Schedule(c.timeout, func() {
			if _, ok := c.pending[id]; ok {
				delete(c.pending, id)
				cb(nil, ErrRPCTimeout)
			}
		})
	}
	c.net.Send(c.self, to, "rpc-req:"+method, &RPCRequest{ID: id, Method: method, Body: body})
}

// HandleResponse consumes a message if it is an RPC response for this
// client, invoking the matching callback. It reports whether the message
// was consumed.
func (c *RPCClient) HandleResponse(m *Message) bool {
	resp, ok := m.Payload.(*RPCResponse)
	if !ok {
		return false
	}
	pc, ok := c.pending[resp.ID]
	if !ok {
		return true // late response after timeout/reset; swallow it
	}
	delete(c.pending, resp.ID)
	if pc.timer != nil {
		pc.timer.Cancel()
	}
	if resp.Err != "" {
		pc.cb(nil, ErrRemote{Msg: resp.Err})
		return true
	}
	pc.cb(resp.Body, nil)
	return true
}

// Reset drops every pending call without invoking callbacks. Components
// call it from their Crash hook: a crashed process forgets in-flight work.
func (c *RPCClient) Reset() {
	for _, pc := range c.pending {
		if pc.timer != nil {
			pc.timer.Cancel()
		}
	}
	c.pending = make(map[uint64]*pendingCall)
}

// PendingCalls returns the number of outstanding calls.
func (c *RPCClient) PendingCalls() int { return len(c.pending) }

// Reply sends the result of an asynchronous handler back to the caller.
// It must be invoked exactly once per request.
type Reply func(body any, err error)

// RPCServer dispatches request messages to registered method handlers and
// sends responses back to the caller.
type RPCServer struct {
	net      *Network
	self     NodeID
	handlers map[string]func(from NodeID, body any, reply Reply)
}

// NewRPCServer creates a dispatcher for node self.
func NewRPCServer(net *Network, self NodeID) *RPCServer {
	return &RPCServer{net: net, self: self, handlers: make(map[string]func(NodeID, any, Reply))}
}

// Handle registers a synchronous method handler.
func (s *RPCServer) Handle(method string, fn func(from NodeID, body any) (any, error)) {
	s.HandleAsync(method, func(from NodeID, body any, reply Reply) {
		reply(fn(from, body))
	})
}

// HandleAsync registers a handler that may defer its reply — e.g. an
// apiserver write that must first round-trip to the store.
func (s *RPCServer) HandleAsync(method string, fn func(from NodeID, body any, reply Reply)) {
	s.handlers[method] = fn
}

// HandleRequest consumes a message if it is an RPC request, dispatching it
// and (eventually) replying. It reports whether the message was consumed.
func (s *RPCServer) HandleRequest(m *Message) bool {
	req, ok := m.Payload.(*RPCRequest)
	if !ok {
		return false
	}
	reply := func(body any, err error) {
		resp := &RPCResponse{ID: req.ID, Body: body}
		if err != nil {
			resp.Err = err.Error()
			resp.Body = nil
		}
		s.net.Send(s.self, m.From, "rpc-resp:"+req.Method, resp)
	}
	h, ok := s.handlers[req.Method]
	if !ok {
		reply(nil, fmt.Errorf("unknown method %q", req.Method))
		return true
	}
	h(m.From, req.Body, reply)
	return true
}
