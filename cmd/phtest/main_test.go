package main

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestSelectTargets(t *testing.T) {
	all, err := selectTargets("all")
	if err != nil || len(all) != 5 {
		t.Fatalf("all: %d targets, err=%v", len(all), err)
	}
	two, err := selectTargets("k8s-59848, cass-op-402")
	if err != nil || len(two) != 2 || two[0].Name != "k8s-59848" || two[1].Name != "cass-op-402" {
		t.Fatalf("subset: %+v err=%v", two, err)
	}
	if _, err := selectTargets("no-such-bug"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestSelectStrategies(t *testing.T) {
	all, err := selectStrategies("all", 1, 10)
	if err != nil || len(all) != 4 {
		t.Fatalf("all: %d strategies, err=%v", len(all), err)
	}
	names := map[string]bool{}
	for _, s := range all {
		names[s.Name()] = true
	}
	for _, want := range []string{"partial-history", "crashtuner", "cofi", "random"} {
		if !names[want] {
			t.Fatalf("missing strategy %q in %v", want, names)
		}
	}
	if _, err := selectStrategies("quantum", 1, 10); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("1, 2,3")
	if err != nil || !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Fatalf("parseSeeds: %v err=%v", got, err)
	}
	if _, err := parseSeeds("1,x"); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, err := parseSeeds(""); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

// TestCampaignArtifactRoundTrip runs one campaign the way main does with
// -parallel 2 -json and verifies the emitted artifact is valid and carries
// the serial-equivalent campaign result.
func TestCampaignArtifactRoundTrip(t *testing.T) {
	target := workload.Target56261()
	cfg := campaign.Config{Workers: 2, MaxExecutions: 25, Collect: true}
	res := campaign.New(cfg).Run(target, core.NewPlanner())

	path := filepath.Join(t.TempDir(), "campaign.json")
	art := campaign.BuildArtifact(res, cfg)
	if err := campaign.WriteArtifacts(path, []campaign.Artifact{art}); err != nil {
		t.Fatal(err)
	}
	back, err := campaign.ReadArtifacts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("artifact count %d, want 1", len(back))
	}
	got := back[0]
	if got.Target != target.Name || got.Strategy != "partial-history" {
		t.Fatalf("artifact identity: %s/%s", got.Target, got.Strategy)
	}
	want := core.RunCampaign(target, core.NewPlanner(), 25)
	if !reflect.DeepEqual(got.Campaign, want) {
		t.Fatalf("artifact campaign diverged from serial\n got: %+v\nwant: %+v", got.Campaign, want)
	}
	if len(got.Outcomes) == 0 {
		t.Fatal("Collect artifact has no per-plan outcomes")
	}
}
