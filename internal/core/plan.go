// Package core implements the paper's proposed testing tool (Section 7):
// it records a reference execution, mines it for perturbation candidates,
// and generates plans that regulate how each component's view (H', S')
// advances relative to the ground truth (H, S) — creating staleness, time
// traveling, and observability gaps on purpose — then runs campaigns that
// execute plans until an oracle reports a violation.
package core

import (
	"fmt"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/infra"
	"repro/internal/sim"
)

// Resteerable is a component whose next restart can be pointed at a chosen
// apiserver — the ingredient of time-travel plans. Kubelets and the
// Cassandra operator implement it.
type Resteerable interface {
	SetRestartUpstream(api sim.NodeID)
}

// Plan is one perturbation schedule applied to a fresh cluster before the
// workload runs. Plans must be deterministic functions of their fields.
type Plan interface {
	// ID is a stable, unique identifier within a campaign.
	ID() string
	// Describe explains the perturbation in one line.
	Describe() string
	// Apply installs the plan's interceptors and fault timers.
	Apply(c *infra.Cluster)
}

// StalenessPlan freezes one apiserver's view by partitioning it from the
// store for a window — the §4.2.1 pattern. Components reading through the
// victim observe an increasingly stale (H', S').
type StalenessPlan struct {
	Victim sim.NodeID // apiserver to freeze
	From   sim.Time
	Until  sim.Time // zero = never heal
}

// ID implements Plan.
func (p StalenessPlan) ID() string {
	return fmt.Sprintf("stale/%s@%d-%d", p.Victim, p.From, p.Until)
}

// Describe implements Plan.
func (p StalenessPlan) Describe() string {
	return fmt.Sprintf("freeze %s from %s to %s", p.Victim, p.From, p.Until)
}

// Apply implements Plan.
func (p StalenessPlan) Apply(c *infra.Cluster) {
	k := c.World.Kernel()
	k.At(p.From, func() { c.World.Network().Partition(p.Victim, infra.StoreID) })
	if p.Until > p.From {
		k.At(p.Until, func() { c.World.Network().Heal(p.Victim, infra.StoreID) })
	}
}

// GapPlan drops watch notifications about one object headed to one
// component — the §4.2.3 pattern. With Occurrence > 0 it drops exactly the
// n-th matching delivery (replay-stable thanks to determinism); otherwise
// it drops every match inside [From, Until].
type GapPlan struct {
	Victim     sim.NodeID
	Kind       cluster.Kind
	Name       string
	Type       apiserver.EventType // empty = any type
	Occurrence int                 // >0: drop exactly this occurrence
	From       sim.Time
	Until      sim.Time // zero with Occurrence==0 = until the end
}

// ID implements Plan.
func (p GapPlan) ID() string {
	return fmt.Sprintf("gap/%s/%s/%s/%s#%d@%d-%d", p.Victim, p.Kind, p.Name, p.Type, p.Occurrence, p.From, p.Until)
}

// Describe implements Plan.
func (p GapPlan) Describe() string {
	if p.Occurrence > 0 {
		return fmt.Sprintf("drop %s event #%d for %s/%s to %s", p.Type, p.Occurrence, p.Kind, p.Name, p.Victim)
	}
	return fmt.Sprintf("drop %s/%s events to %s in [%s,%s]", p.Kind, p.Name, p.Victim, p.From, p.Until)
}

// Apply implements Plan.
func (p GapPlan) Apply(c *infra.Cluster) {
	seen := 0
	done := false
	c.World.Network().AddInterceptor(sim.InterceptorFunc(func(m *sim.Message) sim.Decision {
		if done || m.To != p.Victim || m.Kind != apiserver.KindWatchPush {
			return sim.Decision{Verdict: sim.Pass}
		}
		push, ok := m.Payload.(*apiserver.WatchPushMsg)
		if !ok {
			return sim.Decision{Verdict: sim.Pass}
		}
		now := c.World.Now()
		for _, ev := range push.Events {
			if ev.Object == nil || ev.Object.Meta.Kind != p.Kind || ev.Object.Meta.Name != p.Name {
				continue
			}
			if p.Type != "" && ev.Type != p.Type {
				continue
			}
			if p.Occurrence > 0 {
				seen++
				if seen == p.Occurrence {
					done = true
					return sim.Decision{Verdict: sim.Drop}
				}
				continue
			}
			if now >= p.From && (p.Until == 0 || now <= p.Until) {
				return sim.Decision{Verdict: sim.Drop}
			}
		}
		return sim.Decision{Verdict: sim.Pass}
	}))
}

// TimeTravelPlan drives the §4.2.2 pattern end to end: freeze an alternate
// apiserver at FreezeAt (preserving a historical view), crash the component
// at CrashAt, steer its restart at the frozen upstream, restart it, and
// optionally heal the upstream afterwards. The restarted component re-lists
// from the frozen apiserver and observes its own past.
type TimeTravelPlan struct {
	Component    sim.NodeID
	StaleAPI     sim.NodeID
	FreezeAt     sim.Time
	CrashAt      sim.Time
	RestartDelay sim.Duration
	HealAt       sim.Time // zero = never heal
}

// ID implements Plan.
func (p TimeTravelPlan) ID() string {
	return fmt.Sprintf("timetravel/%s->%s@f%d-c%d", p.Component, p.StaleAPI, p.FreezeAt, p.CrashAt)
}

// Describe implements Plan.
func (p TimeTravelPlan) Describe() string {
	return fmt.Sprintf("freeze %s at %s, crash %s at %s, restart onto frozen view",
		p.StaleAPI, p.FreezeAt, p.Component, p.CrashAt)
}

// Apply implements Plan.
func (p TimeTravelPlan) Apply(c *infra.Cluster) {
	k := c.World.Kernel()
	k.At(p.FreezeAt, func() { c.World.Network().Partition(p.StaleAPI, infra.StoreID) })
	k.At(p.CrashAt, func() {
		proc, ok := c.World.Process(p.Component)
		if !ok {
			return
		}
		_ = c.World.Crash(p.Component)
		if r, ok := proc.(Resteerable); ok {
			r.SetRestartUpstream(p.StaleAPI)
		}
		delay := p.RestartDelay
		if delay <= 0 {
			delay = 100 * sim.Millisecond
		}
		k.Schedule(delay, func() { _ = c.World.Restart(p.Component) })
	})
	if p.HealAt > 0 {
		k.At(p.HealAt, func() { c.World.Network().Heal(p.StaleAPI, infra.StoreID) })
	}
}

// CrashPlan crashes and restarts one component (the CrashTuner-style
// primitive).
type CrashPlan struct {
	Component    sim.NodeID
	At           sim.Time
	RestartDelay sim.Duration
}

// ID implements Plan.
func (p CrashPlan) ID() string { return fmt.Sprintf("crash/%s@%d", p.Component, p.At) }

// Describe implements Plan.
func (p CrashPlan) Describe() string {
	return fmt.Sprintf("crash %s at %s for %s", p.Component, p.At, p.RestartDelay)
}

// Apply implements Plan.
func (p CrashPlan) Apply(c *infra.Cluster) {
	c.World.Kernel().At(p.At, func() {
		if _, ok := c.World.Process(p.Component); !ok {
			return
		}
		delay := p.RestartDelay
		if delay <= 0 {
			delay = 100 * sim.Millisecond
		}
		_ = c.World.CrashFor(p.Component, delay)
	})
}

// PartitionPlan cuts a link for a window (the CoFI-style primitive).
type PartitionPlan struct {
	A, B  sim.NodeID
	From  sim.Time
	Until sim.Time // zero = never heal
}

// ID implements Plan.
func (p PartitionPlan) ID() string {
	return fmt.Sprintf("partition/%s-%s@%d-%d", p.A, p.B, p.From, p.Until)
}

// Describe implements Plan.
func (p PartitionPlan) Describe() string {
	return fmt.Sprintf("partition %s from %s in [%s,%s]", p.A, p.B, p.From, p.Until)
}

// Apply implements Plan.
func (p PartitionPlan) Apply(c *infra.Cluster) {
	k := c.World.Kernel()
	k.At(p.From, func() { c.World.Network().Partition(p.A, p.B) })
	if p.Until > p.From {
		k.At(p.Until, func() { c.World.Network().Heal(p.A, p.B) })
	}
}

// SequencePlan composes several plans into one execution.
type SequencePlan struct {
	Name  string
	Plans []Plan
}

// ID implements Plan.
func (p SequencePlan) ID() string {
	id := "seq/" + p.Name + "["
	for i, sub := range p.Plans {
		if i > 0 {
			id += ","
		}
		id += sub.ID()
	}
	return id + "]"
}

// Describe implements Plan.
func (p SequencePlan) Describe() string {
	return fmt.Sprintf("composite of %d perturbations", len(p.Plans))
}

// Apply implements Plan.
func (p SequencePlan) Apply(c *infra.Cluster) {
	for _, sub := range p.Plans {
		sub.Apply(c)
	}
}

// NopPlan perturbs nothing (the reference execution).
type NopPlan struct{}

// ID implements Plan.
func (NopPlan) ID() string { return "nop" }

// Describe implements Plan.
func (NopPlan) Describe() string { return "no perturbation" }

// Apply implements Plan.
func (NopPlan) Apply(*infra.Cluster) {}
