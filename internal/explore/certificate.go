package explore

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
)

// SchemaCertificate versions the certificate format; readers refuse
// unknown schemas rather than misinterpreting counters.
const SchemaCertificate = "explore-certificate/v1"

// Certificate is the deterministic "no violation within bound" artifact:
// a statement that every schedule in the bounded space — up to the
// recorded collapses, whose soundness is argued in DESIGN.md §9 — was
// covered without the target's bug oracle firing. Every field is a pure
// function of (target, seed, bounds, por): reruns and snapshot on/off
// produce byte-identical certificates.
type Certificate struct {
	Schema        string `json:"schema"`
	Target        string `json:"target"`
	Bug           string `json:"bug"`
	Seed          int64  `json:"seed"`
	WindowStartNs int64  `json:"window_start_ns"`
	// WindowEndNs is -1 for an unbounded window (to the end of the run).
	WindowEndNs  int64  `json:"window_end_ns"`
	BoundDrops   int    `json:"bound_drops"`
	BoundDelays  int    `json:"bound_delays"`
	BoundCrashes int    `json:"bound_crashes"`
	DelayNs      int64  `json:"delay_ns"`
	POR          bool   `json:"por"`
	Stats        Stats  `json:"stats"`
}

func newCertificate(t core.Target, cfg Config, b Bounds, wStart, wEnd sim.Time, st Stats) *Certificate {
	endNs := int64(-1)
	if b.Window > 0 {
		endNs = int64(wEnd)
	}
	return &Certificate{
		Schema:        SchemaCertificate,
		Target:        t.Name,
		Bug:           t.Bug,
		Seed:          cfg.Seed,
		WindowStartNs: int64(wStart),
		WindowEndNs:   endNs,
		BoundDrops:    b.Drops,
		BoundDelays:   b.Delays,
		BoundCrashes:  b.Crashes,
		DelayNs:       int64(b.Delay),
		POR:           cfg.POR,
		Stats:         st,
	}
}

// Marshal renders any explore artifact (Result, Certificate, Witness) in
// the canonical byte form: two-space indented JSON plus one trailing
// newline. Struct field order is fixed, so equal values are equal bytes.
func Marshal(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the canonical form to path.
func WriteFile(path string, v any) error {
	data, err := Marshal(v)
	if err != nil {
		return fmt.Errorf("explore: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, data, 0o644)
}
