package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/explain"
)

// Stats carries a campaign's progress counters.
type Stats struct {
	// Workers is the configured pool width.
	Workers int `json:"workers"`
	// Seeds is how many world seeds the campaign swept.
	Seeds int `json:"seeds"`
	// RawExecutions counts every cluster actually built and run —
	// references plus plan executions, across all seeds, including
	// in-flight work that a detection made redundant (which the
	// deterministic counters below deliberately exclude). Compare with
	// CampaignResult.Executions, which reports the serial-equivalent
	// position of the detection.
	RawExecutions int `json:"raw_executions"`
	// Detections counts executions in which the target oracle fired,
	// within the deterministic execution set.
	Detections int `json:"detections"`
	// ViolatingExecutions counts executions with at least one violation
	// of any oracle (superset of Detections), within the deterministic
	// execution set.
	ViolatingExecutions int `json:"violating_executions"`
	// CoverageClasses / NovelSignatures summarize instrumented coverage:
	// distinct predicted plan classes executed and distinct execution
	// signatures observed. Zero when the campaign ran uninstrumented.
	CoverageClasses int `json:"coverage_classes"`
	NovelSignatures int `json:"novel_signatures"`
	// MinimizeExecutions counts the verification executions the
	// explanation pass spent shrinking detected buckets' example plans
	// (including each bucket's one instrumented re-execution);
	// ExplainedBuckets counts the buckets that received an explanation.
	// Zero unless Config.Explain is set.
	MinimizeExecutions int `json:"minimize_executions,omitempty"`
	ExplainedBuckets   int `json:"explained_buckets,omitempty"`
	// FailedExecutions counts executions that panicked (converted into
	// Failed records by the worker guard); HungExecutions counts executions
	// the event-budget watchdog flagged as livelocked. Both are emitted
	// unconditionally (not omitempty) so healthy-campaign invariants can be
	// asserted as == 0 by downstream checks.
	FailedExecutions int `json:"failed_executions"`
	HungExecutions   int `json:"hung_executions"`
	// PlansPruned / PlansDeduped count the plans the learning phase
	// (Config.Prune) deferred — empty consumed surface and
	// equivalence-class duplicates respectively — summed across seeds.
	// PrunedExecuted counts deferred plans that still executed (the
	// soundness tail: the kept set found nothing, or KeepGoing).
	// PruningUnsoundDetections counts tail detections the kept set missed
	// entirely — every nonzero value is a pruning-rule bug surfaced, never
	// swallowed. All four are emitted unconditionally so downstream checks
	// can assert pruning_unsound_detections == 0.
	PlansPruned              int `json:"plans_pruned"`
	PlansDeduped             int `json:"plans_deduped"`
	PrunedExecuted           int `json:"pruned_executed"`
	PruningUnsoundDetections int `json:"pruning_unsound_detections"`
	// CorpusRegressionPlans counts plans promoted into the always-run
	// regression block by the cross-campaign corpus (Config.Coverage);
	// CorpusSkippedPlans counts plans skipped outright because the corpus
	// recorded their healthy, non-violating execution under a matching
	// reference hash; CorpusInvalidatedSeeds counts seeds whose corpus
	// entries failed the reference-hash guard and were ignored. All three
	// are zero (and omitted) in corpus-less campaigns, so historical
	// artifacts keep their bytes.
	CorpusRegressionPlans  int `json:"corpus_regression_plans,omitempty"`
	CorpusSkippedPlans     int `json:"corpus_skipped_plans,omitempty"`
	CorpusInvalidatedSeeds int `json:"corpus_invalidated_seeds,omitempty"`
	// SnapshotFallbacks counts deterministic-set executions whose prefix
	// fork fell back to full replay for a diagnosable cause. Nil (omitted)
	// when every cause is zero or snapshotting is off, so snapshot-on and
	// snapshot-off artifacts stay byte-identical on healthy substrates. The
	// counts are a pure function of (target, seed, plan set) — forks never
	// race — so they survive canonicalization.
	SnapshotFallbacks *SnapshotFallbacks `json:"snapshot_fallbacks,omitempty"`
	// Fleet carries the farm supervision counters for campaigns that ran
	// under a coordinator/worker fleet: worker deaths attributed to this
	// cell's tasks, task retries, and poison-task quarantines. Nil
	// (omitted) for single-process campaigns and for fleet campaigns that
	// saw no supervision events, so historical artifacts keep their bytes.
	// Unlike every other deterministic counter, fleet counters measure the
	// host environment (which worker died, when) — canonicalization nils
	// them, which is exactly the claim that worker failures never leak
	// into campaign results.
	Fleet *FleetStats `json:"fleet,omitempty"`
	// WallNanos is the campaign's wall-clock time; ExecutionsPerSec is
	// RawExecutions normalized by it.
	WallNanos        int64   `json:"wall_ns"`
	ExecutionsPerSec float64 `json:"executions_per_sec"`
}

// SnapshotFallbacks breaks down fork-to-full-replay fallbacks by cause.
// Routine "no qualifying checkpoint" replays are not fallbacks and are not
// counted; these four causes all indicate a snapshot-layer defect or a
// component contract violation worth investigating.
type SnapshotFallbacks struct {
	Unsnapshotable int `json:"unsnapshotable,omitempty"`
	StrictPast     int `json:"strict_past,omitempty"`
	RestoreError   int `json:"restore_error,omitempty"`
	Watchdog       int `json:"watchdog,omitempty"`
}

func (f *SnapshotFallbacks) total() int {
	if f == nil {
		return 0
	}
	return f.Unsnapshotable + f.StrictPast + f.RestoreError + f.Watchdog
}

// FleetStats aggregates the farm supervision layer's outcomes: how many
// workers died, how many were respawned, how many tasks were retried on a
// healthy worker after a death, and how many tasks were quarantined as
// poison (killed MaxTaskKills distinct workers). The counters live here —
// not in the farm package — so they can ride inside Stats; every field is
// emitted without omitempty so downstream checks can assert
// tasks_quarantined == 0 on healthy chaos runs.
type FleetStats struct {
	WorkerDeaths     int `json:"worker_deaths"`
	WorkerRespawns   int `json:"worker_respawns"`
	TasksRetried     int `json:"tasks_retried"`
	TasksQuarantined int `json:"tasks_quarantined"`
}

// Add accumulates g into f (merging per-part fleet counters).
func (f *FleetStats) Add(g FleetStats) {
	f.WorkerDeaths += g.WorkerDeaths
	f.WorkerRespawns += g.WorkerRespawns
	f.TasksRetried += g.TasksRetried
	f.TasksQuarantined += g.TasksQuarantined
}

// Zero reports whether no supervision event was recorded.
func (f FleetStats) Zero() bool { return f == FleetStats{} }

func (s Stats) String() string {
	out := fmt.Sprintf("%d execs in %.2fs (%.1f exec/s, %d workers, %d seeds, %d classes, %d signatures, %d detections)",
		s.RawExecutions, float64(s.WallNanos)/1e9, s.ExecutionsPerSec,
		s.Workers, s.Seeds, s.CoverageClasses, s.NovelSignatures, s.Detections)
	if s.ExplainedBuckets > 0 {
		out += fmt.Sprintf(", %d buckets explained in %d minimization execs", s.ExplainedBuckets, s.MinimizeExecutions)
	}
	if s.FailedExecutions > 0 || s.HungExecutions > 0 {
		out += fmt.Sprintf(", %d FAILED, %d HUNG", s.FailedExecutions, s.HungExecutions)
	}
	if n := s.SnapshotFallbacks.total(); n > 0 {
		out += fmt.Sprintf(", %d snapshot fallbacks", n)
	}
	if s.PlansPruned > 0 || s.PlansDeduped > 0 {
		out += fmt.Sprintf(", %d pruned + %d deduped (%d deferred executed)",
			s.PlansPruned, s.PlansDeduped, s.PrunedExecuted)
	}
	if s.PruningUnsoundDetections > 0 {
		out += fmt.Sprintf(", %d UNSOUND PRUNES", s.PruningUnsoundDetections)
	}
	if s.CorpusRegressionPlans > 0 || s.CorpusSkippedPlans > 0 {
		out += fmt.Sprintf(", corpus: %d regression + %d skipped", s.CorpusRegressionPlans, s.CorpusSkippedPlans)
	}
	if s.CorpusInvalidatedSeeds > 0 {
		out += fmt.Sprintf(", %d CORPUS-INVALIDATED SEEDS", s.CorpusInvalidatedSeeds)
	}
	if s.Fleet != nil && !s.Fleet.Zero() {
		out += fmt.Sprintf(", fleet: %d worker deaths, %d retried", s.Fleet.WorkerDeaths, s.Fleet.TasksRetried)
		if s.Fleet.TasksQuarantined > 0 {
			out += fmt.Sprintf(", %d QUARANTINED", s.Fleet.TasksQuarantined)
		}
	}
	return out
}

// ExecutionFailure is one panicked, watchdog-flagged, or quarantined
// execution in the campaign artifact: enough to reproduce (plan ID + seed)
// and triage (kind + detail) without digging through worker logs.
type ExecutionFailure struct {
	Seed int64 `json:"seed"`
	// Index is the plan's position in the strategy's order; -1 for
	// failures that precede any plan (reference runs, quarantined tasks).
	Index int    `json:"index"`
	Plan  string `json:"plan"`
	// Kind is "panic" (worker guard), "watchdog" (event-budget livelock),
	// or "quarantine" (a farm task that killed MaxTaskKills workers and
	// was recorded as failed instead of aborting the campaign).
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// PlanOutcome is one execution's record in the campaign artifact.
type PlanOutcome struct {
	Seed int64 `json:"seed"`
	// Index is the plan's position in the strategy's order; -1 marks the
	// reference run.
	Index       int    `json:"index"`
	Plan        string `json:"plan"`
	Description string `json:"description"`
	Class       string `json:"class"`
	// Signature is the execution's coverage fingerprint (hex); empty for
	// uninstrumented runs.
	Signature  string   `json:"signature,omitempty"`
	Detected   bool     `json:"detected"`
	Violations []string `json:"violations,omitempty"`
	// Failed / Hung / Failure mirror core.Execution's crash-safety fields:
	// a panicked or livelocked execution is recorded, not lost.
	Failed     bool   `json:"failed,omitempty"`
	Hung       bool   `json:"hung,omitempty"`
	Failure    string `json:"failure,omitempty"`
	WallMicros int64  `json:"wall_us"`
}

// FailureBucket groups violating executions with identical signatures —
// the dedup view a triager reads instead of a flat violation list.
type FailureBucket struct {
	Signature string `json:"signature"`
	// Oracles is the sorted set of oracle names that fired in this
	// bucket's executions.
	Oracles []string `json:"oracles"`
	// Count is how many executions landed in the bucket.
	Count int `json:"count"`
	// ExamplePlan/ExamplePlanID/ExampleSeed identify one reproducing
	// execution — the earliest one in (sweep order, plan order), so the
	// example is stable across reruns. The ID is the strategy-stable plan
	// coordinate the cross-campaign corpus keys regression checks on.
	ExamplePlan   string `json:"example_plan"`
	ExamplePlanID string `json:"example_plan_id,omitempty"`
	ExampleSeed   int64  `json:"example_seed"`
	// Detected marks buckets containing the target bug's oracle.
	Detected bool `json:"detected"`
	// MinimalPlan/MinimalPlanID/MinimizeExecutions and Explanation are
	// populated by the engine's explanation pass (Config.Explain) for
	// detected buckets: the example plan minimized under ExampleSeed and
	// its causal chain down to the oracle violation.
	MinimalPlan        string               `json:"minimal_plan,omitempty"`
	MinimalPlanID      string               `json:"minimal_plan_id,omitempty"`
	MinimizeExecutions int                  `json:"minimize_executions,omitempty"`
	Explanation        *explain.Explanation `json:"explanation,omitempty"`
}

// bucketExample is the aggregator's private handle on a bucket's earliest
// reproducing execution: the live plan object the explanation pass
// re-executes and minimizes (the JSON bucket only carries descriptions).
type bucketExample struct {
	plan      core.Plan
	seed      int64
	seedIdx   int
	planIndex int
}

// earlier orders examples by (sweep position, plan order); reference runs
// (planIndex -1) sort before any plan of the same seed.
func (x bucketExample) earlier(y bucketExample) bool {
	if x.seedIdx != y.seedIdx {
		return x.seedIdx < y.seedIdx
	}
	return x.planIndex < y.planIndex
}

// aggregator accumulates cross-seed reporting state. The engine feeds it
// deterministically (slots in dispatch order, after each pool drains), so
// no locking is needed.
type aggregator struct {
	collect   bool
	onOutcome func(PlanOutcome)

	raw               int
	detections        int
	violating         int
	minimizeExecs     int
	explained         int
	failed            int
	hung              int
	plansPruned       int
	plansDeduped      int
	prunedExecuted    int
	unsoundPrunes     int
	corpusRegression  int
	corpusSkipped     int
	corpusInvalidated int
	fallbacks         SnapshotFallbacks
	classes           map[string]bool
	sigs              map[Signature]bool
	buckets           map[Signature]*FailureBucket
	examples          map[Signature]bucketExample
	outcomes          []PlanOutcome
	failures          []ExecutionFailure
	learn             []SeedLearn
}

func newAggregator(cfg Config) *aggregator {
	return &aggregator{
		collect:   cfg.Collect,
		onOutcome: cfg.OnOutcome,
		classes:   make(map[string]bool),
		sigs:      make(map[Signature]bool),
		buckets:   make(map[Signature]*FailureBucket),
		examples:  make(map[Signature]bucketExample),
	}
}

// noteRaw counts one cluster execution, deterministic or not. The engine
// calls it for every slot that actually ran, including in-flight work a
// detection made redundant.
func (a *aggregator) noteRaw() { a.raw++ }

// noteFallback counts one diagnosable fork fallback from outside the
// deterministic execution set (the explain pass's tree probes).
// fallbackNone — a probe with no eligible rung — is routine and ignored.
func (a *aggregator) noteFallback(c fallbackCause) {
	switch c {
	case fallbackUnsnapshotable:
		a.fallbacks.Unsnapshotable++
	case fallbackStrictPast:
		a.fallbacks.StrictPast++
	case fallbackRestoreError:
		a.fallbacks.RestoreError++
	case fallbackWatchdog:
		a.fallbacks.Watchdog++
	}
}

// add records one executed slot from the deterministic execution set.
func (a *aggregator) add(seedIdx int, seed int64, sl slot, instrumented bool) {
	if sl.exec.Detected {
		a.detections++
	}
	a.noteFallback(sl.fallback)
	if len(sl.exec.Violations) > 0 {
		a.violating++
	}
	broken := sl.exec.Failed || sl.exec.Hung
	if broken {
		kind := "panic"
		if sl.exec.Hung {
			kind = "watchdog"
		}
		if sl.exec.Failed {
			a.failed++
		}
		if sl.exec.Hung {
			a.hung++
		}
		a.failures = append(a.failures, ExecutionFailure{
			Seed: seed, Index: sl.planIndex, Plan: sl.plan.ID(),
			Kind: kind, Detail: sl.exec.Failure,
		})
	}
	cls := classOf(sl.plan)
	a.classes[cls] = true
	// Failed/hung executions have partial traces and a zero signature;
	// keeping them out of the coverage and bucket maps stops a panicked run
	// from aliasing with healthy executions.
	if instrumented && !broken {
		a.sigs[sl.sig] = true
		if len(sl.exec.Violations) > 0 {
			a.bucket(seedIdx, seed, sl)
		}
	}
	if a.collect || a.onOutcome != nil {
		out := PlanOutcome{
			Seed:        seed,
			Index:       sl.planIndex,
			Plan:        sl.plan.ID(),
			Description: sl.plan.Describe(),
			Class:       cls,
			Detected:    sl.exec.Detected,
			Failed:      sl.exec.Failed,
			Hung:        sl.exec.Hung,
			Failure:     sl.exec.Failure,
			WallMicros:  sl.wall.Microseconds(),
		}
		if instrumented && !broken {
			out.Signature = sl.sig.String()
		}
		for _, v := range sl.exec.Violations {
			out.Violations = append(out.Violations, v.Oracle)
		}
		if a.collect {
			a.outcomes = append(a.outcomes, out)
		}
		if a.onOutcome != nil {
			a.onOutcome(out)
		}
	}
}

// noteCorpus records one seed's cross-campaign corpus decisions:
// regression-block size, outright skips, and whether the seed's corpus
// entries failed the reference-hash guard.
func (a *aggregator) noteCorpus(regression, skipped int, invalidated bool) {
	a.corpusRegression += regression
	a.corpusSkipped += skipped
	if invalidated {
		a.corpusInvalidated++
	}
}

func (a *aggregator) bucket(seedIdx int, seed int64, sl slot) {
	ex := bucketExample{plan: sl.plan, seed: seed, seedIdx: seedIdx, planIndex: sl.planIndex}
	b := a.buckets[sl.sig]
	if b == nil {
		names := map[string]bool{}
		for _, v := range sl.exec.Violations {
			names[v.Oracle] = true
		}
		oracles := make([]string, 0, len(names))
		for n := range names {
			oracles = append(oracles, n)
		}
		sort.Strings(oracles)
		b = &FailureBucket{
			Signature: sl.sig.String(),
			Oracles:   oracles,
			Detected:  sl.exec.Detected,
		}
		a.buckets[sl.sig] = b
		a.examples[sl.sig] = ex
	} else if ex.earlier(a.examples[sl.sig]) {
		a.examples[sl.sig] = ex
	}
	b.Count++
	chosen := a.examples[sl.sig]
	b.ExamplePlan = chosen.plan.Describe()
	b.ExamplePlanID = chosen.plan.ID()
	b.ExampleSeed = chosen.seed
}

// bucketOrder returns the bucket signatures in their stable (sorted hex)
// order — the order buckets are explained and reported in.
func (a *aggregator) bucketOrder() []Signature {
	out := make([]Signature, 0, len(a.buckets))
	for sig := range a.buckets {
		out = append(out, sig)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (a *aggregator) bucketList() []FailureBucket {
	out := make([]FailureBucket, 0, len(a.buckets))
	for _, sig := range a.bucketOrder() {
		out = append(out, *a.buckets[sig])
	}
	return out
}

func (a *aggregator) stats(cfg Config, wall time.Duration) Stats {
	st := Stats{
		Workers:                  cfg.workerCount(),
		Seeds:                    len(cfg.seedList()),
		RawExecutions:            a.raw,
		Detections:               a.detections,
		ViolatingExecutions:      a.violating,
		MinimizeExecutions:       a.minimizeExecs,
		ExplainedBuckets:         a.explained,
		FailedExecutions:         a.failed,
		HungExecutions:           a.hung,
		PlansPruned:              a.plansPruned,
		PlansDeduped:             a.plansDeduped,
		PrunedExecuted:           a.prunedExecuted,
		PruningUnsoundDetections: a.unsoundPrunes,
		CorpusRegressionPlans:    a.corpusRegression,
		CorpusSkippedPlans:       a.corpusSkipped,
		CorpusInvalidatedSeeds:   a.corpusInvalidated,
		WallNanos:                wall.Nanoseconds(),
	}
	if a.fallbacks.total() > 0 {
		fb := a.fallbacks
		st.SnapshotFallbacks = &fb
	}
	if cfg.instrumented() {
		st.CoverageClasses = len(a.classes)
		st.NovelSignatures = len(a.sigs)
	}
	if wall > 0 {
		st.ExecutionsPerSec = float64(a.raw) / wall.Seconds()
	}
	return st
}

// Artifact is the JSON form of one campaign — the campaign.json schema.
type Artifact struct {
	Target        string  `json:"target"`
	Strategy      string  `json:"strategy"`
	Workers       int     `json:"workers"`
	Seeds         []int64 `json:"seeds"`
	MaxExecutions int     `json:"max_executions"`
	Guided        bool    `json:"guided"`
	// Prune / Ranked echo the learning-phase configuration (see
	// Config.Prune / Config.Ranked).
	Prune    bool `json:"prune"`
	Ranked   bool `json:"ranked"`
	Detected bool `json:"detected"`
	// DetectedSeed is the world seed of the first detection in sweep
	// order (present only when Detected).
	DetectedSeed int64 `json:"detected_seed,omitempty"`
	// Campaign is the sweep-level headline result (first detection in
	// sweep order; see Result.Campaign).
	Campaign core.CampaignResult `json:"campaign"`
	// PerSeed holds every seed's result when more than one seed ran.
	PerSeed  []SeedResult    `json:"per_seed,omitempty"`
	Stats    Stats           `json:"stats"`
	Buckets  []FailureBucket `json:"failure_buckets,omitempty"`
	Outcomes []PlanOutcome   `json:"outcomes,omitempty"`
	// Failures lists every panicked or watchdog-flagged execution in the
	// deterministic execution set (see Stats.FailedExecutions /
	// HungExecutions for the counts).
	Failures []ExecutionFailure `json:"execution_failures,omitempty"`
	// Learn holds each seed's learning-phase report: profile summaries
	// and every prune/dedupe decision (Config.Prune / Ranked only).
	Learn []SeedLearn `json:"learn,omitempty"`
}

// BuildArtifact converts a Result into its artifact form.
func BuildArtifact(res Result, cfg Config) Artifact {
	art := Artifact{
		Target:        res.Target,
		Strategy:      res.Strategy,
		Workers:       cfg.workerCount(),
		Seeds:         cfg.seedList(),
		MaxExecutions: cfg.MaxExecutions,
		Guided:        cfg.Guided,
		Prune:         cfg.Prune,
		Ranked:        cfg.Ranked,
		Detected:      res.Detected,
		Campaign:      res.Campaign,
		Stats:         res.Stats,
		Buckets:       res.Buckets,
		Outcomes:      res.Outcomes,
		Failures:      res.Failures,
		Learn:         res.Learn,
	}
	if res.Detected {
		art.DetectedSeed = res.DetectedSeed
	}
	if len(res.Seeds) > 1 {
		art.PerSeed = res.Seeds
	}
	return art
}

// WriteArtifacts writes the campaign artifact file: a JSON document with
// one entry per (target, strategy) campaign.
func WriteArtifacts(path string, artifacts []Artifact) error {
	return WriteArtifactsStatus(path, artifacts, false)
}

// WriteArtifactsStatus is WriteArtifacts with an explicit interrupted
// marker: a run cancelled by SIGINT/SIGTERM flushes the campaigns it
// completed as a valid document tagged "interrupted": true, instead of
// dying mid-write and leaving a truncated file.
func WriteArtifactsStatus(path string, artifacts []Artifact, interrupted bool) error {
	doc := struct {
		Tool        string     `json:"tool"`
		Interrupted bool       `json:"interrupted,omitempty"`
		Campaigns   []Artifact `json:"campaigns"`
	}{Tool: "phtest", Interrupted: interrupted, Campaigns: artifacts}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal artifact: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("campaign: write artifact: %w", err)
	}
	return nil
}

// ReadArtifacts loads a campaign artifact file (the inverse of
// WriteArtifacts), for tools and tests.
func ReadArtifacts(path string) ([]Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read artifact: %w", err)
	}
	var doc struct {
		Tool      string     `json:"tool"`
		Campaigns []Artifact `json:"campaigns"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("campaign: parse artifact: %w", err)
	}
	return doc.Campaigns, nil
}
