package campaign

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file generalizes the flat checkpoint ladder (fork.go) into a
// checkpoint TREE: rungs captured mid-plan, during an execution of a base
// plan P, after P's perturbed prefix has already played out. A candidate
// plan Q that shares P's prefix up to a rung's capture instant forks from
// that rung instead of replaying warmup + workload + the shared
// perturbations from t=0. The minimization pass (core.MinimizeSeedRun) and
// the explanation pass's instrumented re-execution are the consumers: both
// probe many variants of one detected plan, and those variants share most
// of the detected plan's prefix by construction.
//
// Fork discipline follows fork.go with one addition: Q.Apply runs in
// rehydration mode, so sub-plan timers whose fire time precedes the rung —
// shared perturbations whose effects are already inside the snapshot —
// burn their sequence numbers without firing, exactly replicating the
// allocation pattern of Q's full replay.
//
// Eligibility is conservative, proven per (rung, Q) pair:
//
//   - the divergence bound d is the earliest effect of any sub-plan in the
//     symmetric difference of P's and Q's sub-plan multisets, evaluated
//     against BOTH the unperturbed reference trace and the base run's
//     perturbed trace (a perturbation can move a mined delivery);
//   - occurrence-counted gap sub-plans contribute their first matching
//     delivery in both streams even when shared: their interceptor state
//     (matches seen) is not part of a snapshot, so a fork is exact only
//     when counting had not started by the rung;
//   - a rung qualifies iff its capture instant is at or before d; any
//     sub-plan with an unbounded effect time, or an occurrence-counted gap
//     when the base trace dropped watch pushes (the match stream is then
//     incomplete), disqualifies the tree for that Q entirely.
//
// Anything that fails these checks — or trips the restore/watchdog guards
// at fork time — falls back to core.RunPlanSeed, whose result is
// canonical, so tree-on and tree-off campaigns produce identical minimal
// plans and causal explanations.

// rung is one checkpoint of the tree: a snapshot captured mid-plan plus
// the base run's trace prefix at the capture instant.
type rung struct {
	at    sim.Time
	snap  *infra.Snapshot
	trace *trace.Trace
}

// planTree is the per-(target, seed, base plan) fork substrate for
// minimization probes and explain re-executions.
type planTree struct {
	seed       int64
	base       core.Plan
	baseKeys   map[string]subCount
	ref        *trace.Trace
	baseTrace  *trace.Trace
	baseDrops  int
	baseExec   core.Execution
	buildSeq   uint64
	buildSteps uint64
	buildEnd   sim.Time
	horizon    sim.Duration
	shiftBase  uint64
	rungs      []rung
}

// subCount is one entry of a sub-plan multiset: a representative plan and
// its multiplicity.
type subCount struct {
	plan  core.Plan
	count int
}

// buildPlanTree executes base once from t=0, capturing rungs at the
// quantile effect times of its sub-plans (and at the build boundary), and
// finishes the run so the base execution's own result and complete
// perturbed trace are available. Returns nil when the substrate cannot be
// built — the caller then probes with full replays.
//
// A non-nil explicit slice overrides the quantile heuristic: rungs are
// placed captureMargin before each requested instant instead (the
// explorer knows its choice-point send times up front). Placement remains
// a heuristic either way — soundness is enforced per-fork by divergence.
func buildPlanTree(t core.Target, base core.Plan, seed int64, ref *trace.Trace, explicit []sim.Time) (pt *planTree) {
	defer func() {
		if recover() != nil {
			pt = nil
		}
	}()
	c := t.Build(seed)
	if !c.Snapshotable() {
		return nil
	}
	k := c.World.Kernel()
	pt = &planTree{
		seed:       seed,
		base:       base,
		baseKeys:   subplanMultiset(base),
		ref:        ref,
		buildSeq:   k.Seq(),
		buildSteps: k.Steps(),
		buildEnd:   k.Now(),
		horizon:    t.Horizon,
	}
	rec := trace.NewRecorder()
	rec.Attach(c.World.Network(), c.Store.Store())
	// Tag the plan band so its pending timers are identifiable in rung
	// snapshots: forks skip them and recreate Q's own via Q.Apply. Nested
	// timers scheduled by a plan action at fire time stay untagged — a rung
	// whose capture instant has one pending simply fails to capture.
	ptag := sim.EventTag{Owner: "plan", Kind: "action"}
	k.SetDefaultTag(&ptag)
	base.Apply(c)
	k.SetDefaultTag(nil)
	pt.shiftBase = k.Seq() - pt.buildSeq
	wtag := sim.EventTag{Owner: "workload", Kind: "action"}
	k.SetDefaultTag(&wtag)
	t.Workload(c)
	k.SetDefaultTag(nil)
	pt.baseTrace = rec.T

	end := pt.buildEnd.Add(t.Horizon)
	cands := treeCandidateTimes(pt, end)
	if explicit != nil {
		cands = explicitCandidateTimes(pt, explicit, end)
	}
	for _, cand := range cands {
		if cand < k.Now() {
			continue // a previous capture slid past this candidate
		}
		k.Run(cand)
		snap, ok := captureWithSlide(c, k, end)
		if !ok {
			continue
		}
		pt.rungs = append(pt.rungs, rung{at: k.Now(), snap: snap, trace: rec.T.Fork()})
	}
	// Finish the base run: the complete perturbed trace backs occurrence
	// eligibility, and the base execution doubles as the minimizer's
	// initial reproduction probe.
	k.Run(end)
	for _, n := range rec.T.DroppedPushes {
		pt.baseDrops += n
	}
	pt.baseExec = core.Execution{
		Plan:       base,
		Seed:       seed,
		Violations: c.Violations(),
		Detected:   c.Oracles.Violated(t.Bug),
	}
	if len(pt.rungs) == 0 {
		return nil
	}
	return pt
}

// treeCandidateTimes mirrors candidateTimes for the tree: the build
// boundary plus quantiles of the base plan's sub-plan effect times against
// the reference trace (placement is a heuristic; soundness is enforced
// per-fork by divergence).
func treeCandidateTimes(pt *planTree, end sim.Time) []sim.Time {
	var effs []sim.Time
	for _, sc := range pt.baseKeys {
		eff, ok := core.EarliestEffect(sc.plan, pt.ref)
		if !ok {
			continue
		}
		if eff > pt.buildEnd && eff < end {
			for i := 0; i < sc.count; i++ {
				effs = append(effs, eff)
			}
		}
	}
	sort.Slice(effs, func(i, j int) bool { return effs[i] < effs[j] })
	out := []sim.Time{pt.buildEnd}
	quota := maxCheckpoints - 1
	if len(effs) == 0 {
		return out
	}
	for i := 0; i < quota; i++ {
		idx := i * (len(effs) - 1) / (quota - 1)
		cand := effs[idx].Add(-captureMargin)
		if cand <= pt.buildEnd {
			continue
		}
		if out[len(out)-1] != cand {
			out = append(out, cand)
		}
	}
	return out
}

// explicitCandidateTimes converts caller-requested capture instants into
// a rung schedule: the build boundary first, then each requested instant
// shifted captureMargin early (a snapshot must precede the event it
// serves), sorted, deduplicated, clamped inside (buildEnd, end), and
// capped at maxCheckpoints.
func explicitCandidateTimes(pt *planTree, explicit []sim.Time, end sim.Time) []sim.Time {
	shifted := make([]sim.Time, 0, len(explicit))
	for _, at := range explicit {
		cand := at.Add(-captureMargin)
		if cand > pt.buildEnd && cand < end {
			shifted = append(shifted, cand)
		}
	}
	sort.Slice(shifted, func(i, j int) bool { return shifted[i] < shifted[j] })
	out := []sim.Time{pt.buildEnd}
	for _, cand := range shifted {
		if len(out) == maxCheckpoints {
			break
		}
		if out[len(out)-1] != cand {
			out = append(out, cand)
		}
	}
	return out
}

// subplanMultiset flattens a plan into its sub-plan multiset, keyed by
// ID+Describe (IDs alone omit some secondary parameters).
func subplanMultiset(p core.Plan) map[string]subCount {
	out := make(map[string]subCount)
	var walk func(core.Plan)
	walk = func(q core.Plan) {
		if sp, ok := q.(core.SequencePlan); ok {
			for _, sub := range sp.Plans {
				walk(sub)
			}
			return
		}
		key := q.ID() + "\x00" + q.Describe()
		sc := out[key]
		sc.plan = q
		sc.count++
		out[key] = sc
	}
	walk(p)
	return out
}

// isOccurrenceCounted reports whether p counts matching deliveries at
// runtime — the plan kinds whose interceptor or gate carries state a
// snapshot cannot hold. Covers send-side occurrence gaps and the
// delivery-coordinate plans (drop/delay gates) the explorer emits.
func isOccurrenceCounted(p core.Plan) bool {
	switch q := p.(type) {
	case core.GapPlan:
		return q.Occurrence > 0
	case core.DropDeliveryPlan:
		return true
	case core.DelayDeliveryPlan:
		return true
	}
	return false
}

// divergence returns the latest instant up to which an execution of q is
// provably identical to the base run, or ok=false when no such bound can
// be established.
func (pt *planTree) divergence(q core.Plan) (sim.Time, bool) {
	qKeys := subplanMultiset(q)
	d := sim.Time(math.MaxInt64)
	consider := func(sub core.Plan) bool {
		effRef, ok := core.EarliestEffect(sub, pt.ref)
		if !ok {
			return false
		}
		effBase, ok := core.EarliestEffect(sub, pt.baseTrace)
		if !ok {
			return false
		}
		eff := effRef
		if effBase < eff {
			eff = effBase
		}
		if eff < d {
			d = eff
		}
		return true
	}
	keys := make([]string, 0, len(pt.baseKeys)+len(qKeys))
	for k := range pt.baseKeys {
		keys = append(keys, k)
	}
	for k := range qKeys {
		if _, dup := pt.baseKeys[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b, inQ := pt.baseKeys[k], qKeys[k]
		sub := b.plan
		if sub == nil {
			sub = inQ.plan
		}
		occ := isOccurrenceCounted(sub)
		if occ && pt.baseDrops > 0 {
			// The base trace lost watch pushes; its match stream is
			// incomplete and no occurrence bound is trustworthy.
			return 0, false
		}
		switch {
		case b.count != inQ.count:
			if !consider(sub) {
				return 0, false
			}
		case occ && b.count > 0:
			// Shared occurrence gap: the fork's fresh interceptor starts at
			// zero matches, so counting must not have begun by the rung.
			if !consider(sub) {
				return 0, false
			}
		}
	}
	return d, true
}

// forkRung returns the latest rung at or before q's divergence bound, or
// nil when none qualifies.
func (pt *planTree) forkRung(q core.Plan) *rung {
	d, ok := pt.divergence(q)
	if !ok {
		return nil
	}
	var best *rung
	for i := range pt.rungs {
		if pt.rungs[i].at <= d {
			best = &pt.rungs[i]
		} else {
			break
		}
	}
	return best
}

// run executes q by forking from the deepest eligible rung. With
// instrument set the returned trace is the full perturbed trace from t=0
// (rung prefix + recorded suffix), as perturbedTrace would produce.
// ok=false means the caller must fall back to a full replay; cause
// classifies diagnosable failures exactly as runForked does.
func (pt *planTree) run(t core.Target, q core.Plan, instrument bool) (exec core.Execution, tr *trace.Trace, ok bool, cause fallbackCause) {
	if !instrument && q.ID() == pt.base.ID() && q.Describe() == pt.base.Describe() {
		return pt.baseExec, nil, true, fallbackNone
	}
	rg := pt.forkRung(q)
	if rg == nil {
		return core.Execution{}, nil, false, fallbackNone
	}
	defer func() {
		if recover() != nil {
			exec, tr, ok, cause = core.Execution{}, nil, false, fallbackRestoreError
		}
	}()
	c2, err := rg.snap.NewCluster()
	if err != nil {
		return core.Execution{}, nil, false, fallbackRestoreError
	}
	k := c2.World.Kernel()
	var rec *trace.Recorder
	if instrument {
		rec = trace.NewRecorderFor(rg.trace.Fork())
		rec.Attach(c2.World.Network(), c2.Store.Store())
	}
	// Q's plan band replays directly after the Build boundary, in
	// rehydration mode: shared sub-plan timers that already fired inside
	// the prefix burn their numbers, later ones schedule for real.
	k.SetSeq(pt.buildSeq)
	k.BeginRehydrate(rg.snap.Kernel.Now)
	q.Apply(c2)
	shiftQ := k.Seq() - pt.buildSeq
	t.Workload(c2)
	k.EndRehydrate()
	// Pending component events shift by the DIFFERENCE between Q's and the
	// base plan's allocation bands — signed, since Q usually allocates less
	// (minimization removes sub-plans).
	delta := int64(shiftQ) - int64(pt.shiftBase)
	if err := c2.InstallPending(rg.snap.Kernel.Pending, pt.buildSeq, delta); err != nil {
		return core.Execution{}, nil, false, fallbackRestoreError
	}
	k.SetSeq(uint64(int64(rg.snap.Kernel.Seq) + delta))
	k.SetMaxSteps(pt.buildSteps + DefaultEventBudget)
	deadline := pt.buildEnd.Add(pt.horizon)
	k.Run(deadline)
	if k.Steps() >= pt.buildSteps+DefaultEventBudget && k.Now() < deadline {
		return core.Execution{}, nil, false, fallbackWatchdog
	}
	exec = core.Execution{
		Plan:       q,
		Seed:       pt.seed,
		Violations: c2.Violations(),
		Detected:   c2.Oracles.Violated(t.Bug),
	}
	if instrument {
		tr = rec.T
	}
	return exec, tr, true, fallbackNone
}
