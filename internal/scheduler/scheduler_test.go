package scheduler_test

import (
	"fmt"
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/infra"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

func newCluster(t *testing.T, evictFix bool, nodes ...string) *infra.Cluster {
	t.Helper()
	opts := infra.DefaultOptions()
	if len(nodes) > 0 {
		opts.Nodes = nodes
	}
	opts.EnableVolumeController = false
	opts.SchedulerEvictFix = evictFix
	c := infra.New(opts)
	c.RunFor(sim.Second)
	return c
}

func TestBindsPendingPod(t *testing.T) {
	c := newCluster(t, false)
	c.Admin.CreatePod("p1", "", "v1", nil)
	c.RunFor(2 * sim.Second)
	pods := c.GroundTruth(cluster.KindPod)
	if len(pods) != 1 || pods[0].Pod.NodeName == "" {
		t.Fatalf("pod not bound: %+v", pods)
	}
	if c.Scheduler.Binds != 1 {
		t.Fatalf("binds = %d", c.Scheduler.Binds)
	}
}

func TestSpreadsByFreeCapacity(t *testing.T) {
	c := newCluster(t, false, "n1", "n2")
	for i := 0; i < 6; i++ {
		c.Admin.CreatePod(fmt.Sprintf("p%d", i), "", "v1", nil)
		c.RunFor(300 * sim.Millisecond)
	}
	c.RunFor(2 * sim.Second)
	counts := map[string]int{}
	for _, p := range c.GroundTruth(cluster.KindPod) {
		counts[p.Pod.NodeName]++
	}
	if counts["n1"] != 3 || counts["n2"] != 3 {
		t.Fatalf("placement skewed: %v", counts)
	}
}

func TestIgnoresBoundAndTerminatingPods(t *testing.T) {
	c := newCluster(t, false)
	c.Admin.CreatePod("bound", "k1", "v1", nil)
	c.RunFor(sim.Second)
	baseline := c.Scheduler.Binds
	c.Admin.MarkPodDeleted("bound", nil)
	c.RunFor(sim.Second)
	if c.Scheduler.Binds != baseline {
		t.Fatalf("scheduler rebound a managed pod: %d -> %d", baseline, c.Scheduler.Binds)
	}
}

func TestNoNodesRequeuesUntilNodeArrives(t *testing.T) {
	opts := infra.DefaultOptions()
	opts.Nodes = nil // no kubelets at all
	opts.EnableVolumeController = false
	c := infra.New(opts)
	c.RunFor(500 * sim.Millisecond)
	c.Admin.CreatePod("p1", "", "v1", nil)
	c.RunFor(sim.Second)
	pods := c.GroundTruth(cluster.KindPod)
	if pods[0].Pod.NodeName != "" {
		t.Fatal("pod bound with zero nodes")
	}
	// A node appears (registered directly through the admin).
	node := cluster.NewNode("late-node", "uid-late", cluster.NodeSpec{Ready: true, Capacity: 4})
	node.Meta.Labels = map[string]string{"heartbeat": "1"}
	c.Admin.Conn().Create(node, nil)
	c.RunFor(2 * sim.Second)
	pods = c.GroundTruth(cluster.KindPod)
	if pods[0].Pod.NodeName != "late-node" {
		t.Fatalf("pod not bound to late node: %+v", pods[0].Pod)
	}
}

func TestMissedDeletionLivelockAndFix(t *testing.T) {
	for _, fix := range []bool{false, true} {
		c := newCluster(t, fix, "n1", "n2")
		// Drop the node-deletion notification to the scheduler.
		c.World.Network().AddInterceptor(sim.InterceptorFunc(func(m *sim.Message) sim.Decision {
			if m.Kind != apiserver.KindWatchPush || m.To != scheduler.ID {
				return sim.Decision{Verdict: sim.Pass}
			}
			for _, ev := range m.Payload.(*apiserver.WatchPushMsg).Events {
				if ev.Type == apiserver.Deleted && ev.Object.Meta.Kind == cluster.KindNode {
					return sim.Decision{Verdict: sim.Drop}
				}
			}
			return sim.Decision{Verdict: sim.Pass}
		}))
		c.Admin.DeleteNode("n1", nil)
		c.RunFor(500 * sim.Millisecond)
		c.Admin.CreatePod("job", "", "v1", nil)
		c.RunFor(4 * sim.Second)

		pods := c.GroundTruth(cluster.KindPod)
		if fix {
			if pods[0].Pod.NodeName != "n2" {
				t.Fatalf("fixed scheduler did not rebind to n2: %+v", pods[0].Pod)
			}
			view := c.Scheduler.NodeView()
			if len(view) != 1 || view[0] != "n2" {
				t.Fatalf("fixed scheduler view = %v", view)
			}
		} else {
			if pods[0].Pod.NodeName != "" {
				t.Fatalf("stock scheduler bound despite dead-node cache: %+v", pods[0].Pod)
			}
			if c.Scheduler.BindFailures < 3 {
				t.Fatalf("expected repeated bind failures, got %d", c.Scheduler.BindFailures)
			}
		}
	}
}

func TestSchedulerCrashRestartRecovers(t *testing.T) {
	c := newCluster(t, false)
	if err := c.World.Crash(scheduler.ID); err != nil {
		t.Fatal(err)
	}
	c.Admin.CreatePod("p1", "", "v1", nil)
	c.RunFor(sim.Second)
	if c.GroundTruth(cluster.KindPod)[0].Pod.NodeName != "" {
		t.Fatal("pod bound while scheduler down")
	}
	if err := c.World.Restart(scheduler.ID); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Second)
	if c.GroundTruth(cluster.KindPod)[0].Pod.NodeName == "" {
		t.Fatal("restarted scheduler did not bind the pending pod")
	}
}
