// Package controllers hosts built-in control-plane controllers of the
// simulated infrastructure: the volume releaser (the observability-gap bug
// of paper §4.2.3 / cassandra-operator-398's generic form) and the node
// lifecycle controller that garbage-collects dead nodes.
package controllers

import (
	"sort"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// VolumeConfig tunes the volume releaser.
type VolumeConfig struct {
	// APIServer is the controller's upstream.
	APIServer sim.NodeID
	// PollInterval is the period between sparse reads of the controller's
	// local view S'. The controller is deliberately level-triggered on a
	// timer — it inspects state, it does not react to events — which is
	// what makes the intermediate "terminating" state observable only if
	// a poll happens to land between e1 (mark) and e2 (delete).
	PollInterval sim.Duration
	// ReleaseOnAbsentOwner enables the fix: release a PVC whose owner pod
	// no longer exists at all. The buggy variant (false) releases only
	// when it *sees* the owner in Terminating state, so a mark+delete pair
	// falling between two polls orphans the PVC forever.
	ReleaseOnAbsentOwner bool
	// RPCTimeout bounds apiserver calls.
	RPCTimeout sim.Duration
}

// DefaultVolumeConfig returns the stock (buggy) configuration.
func DefaultVolumeConfig(api sim.NodeID) VolumeConfig {
	return VolumeConfig{
		APIServer:    api,
		PollInterval: 100 * sim.Millisecond,
		RPCTimeout:   200 * sim.Millisecond,
	}
}

// VolumeController releases PVCs of deleted pods. It mirrors the
// Kubernetes controller bug [17]: "the controller only learns of the state
// of the system via sparse reads of its local view S'".
type VolumeController struct {
	id    sim.NodeID
	world *sim.World
	cfg   VolumeConfig

	conn   *client.Conn
	podInf *client.Informer
	pvcInf *client.Informer
	down   bool
	epoch  uint64

	// Releases counts successful PVC releases (experiment metric).
	Releases int
}

// VolumeControllerID is the controller's network identity.
const VolumeControllerID sim.NodeID = "volume-controller"

// NewVolumeController wires the controller into the world.
func NewVolumeController(w *sim.World, cfg VolumeConfig) *VolumeController {
	c := &VolumeController{id: VolumeControllerID, world: w, cfg: cfg}
	w.Network().Register(c.id, c)
	w.AddProcess(c)
	c.boot()
	return c
}

// ID implements sim.Process.
func (c *VolumeController) ID() sim.NodeID { return c.id }

// Crash implements sim.Process.
func (c *VolumeController) Crash() {
	c.down = true
	c.epoch++
	if c.conn != nil {
		c.conn.Reset()
	}
	c.podInf, c.pvcInf = nil, nil
}

// Restart implements sim.Process.
func (c *VolumeController) Restart() {
	c.down = false
	c.boot()
}

// HandleMessage implements sim.Handler.
func (c *VolumeController) HandleMessage(m *sim.Message) {
	if c.down || c.conn == nil {
		return
	}
	c.conn.HandleMessage(m)
}

func (c *VolumeController) boot() {
	c.epoch++
	epoch := c.epoch
	c.conn = client.NewConn(c.world, c.id, c.cfg.APIServer, c.cfg.RPCTimeout)
	c.podInf = client.NewInformer(c.conn, cluster.KindPod, client.InformerConfig{WatchTimeout: sim.Second})
	c.pvcInf = client.NewInformer(c.conn, cluster.KindPVC, client.InformerConfig{WatchTimeout: sim.Second})
	c.podInf.Run()
	c.pvcInf.Run()
	c.schedulePoll(epoch)
}

func (c *VolumeController) schedulePoll(epoch uint64) {
	tag := sim.EventTag{Owner: string(c.id), Kind: "poll", Epoch: epoch}
	c.world.Kernel().ScheduleTagged(c.cfg.PollInterval, tag, func() { c.pollFire(epoch) })
}

// pollFire is the poll timer body, named so a restored cluster can rearm a
// pending poll event by tag.
func (c *VolumeController) pollFire(epoch uint64) {
	if c.down || epoch != c.epoch {
		return
	}
	c.poll(epoch)
	c.schedulePoll(epoch)
}

// poll is one sparse read of S': scan cached PVCs and decide releases.
func (c *VolumeController) poll(epoch uint64) {
	if !c.podInf.Synced() || !c.pvcInf.Synced() {
		return
	}
	pvcs := c.pvcInf.ListCached()
	sort.Slice(pvcs, func(i, j int) bool { return pvcs[i].Meta.Name < pvcs[j].Meta.Name })
	for _, pvc := range pvcs {
		if pvc.PVC == nil || pvc.PVC.Phase != cluster.PVCBound || pvc.PVC.OwnerPod == "" {
			continue
		}
		owner, ok := c.podInf.Get(pvc.PVC.OwnerPod)
		switch {
		case ok && owner.Terminating():
			// e1 observed: owner is being deleted → release.
			c.release(epoch, pvc)
		case !ok && c.cfg.ReleaseOnAbsentOwner:
			// Fixed variant: owner vanished entirely (e1+e2 both fell
			// between polls) → still release.
			c.release(epoch, pvc)
		case !ok:
			// Buggy variant: the pod is gone and we never saw the mark.
			// The controller assumes it will observe Terminating first,
			// so it does nothing — the PVC is orphaned (§4.2.3).
		}
	}
}

func (c *VolumeController) release(epoch uint64, pvc *cluster.Object) {
	upd := pvc.Clone()
	upd.PVC.Phase = cluster.PVCReleased
	c.conn.Update(upd, func(_ *cluster.Object, err error) {
		if c.down || epoch != c.epoch || err != nil {
			return
		}
		c.Releases++
	})
}
