// Package infra assembles complete simulated infrastructures: a store, a
// set of apiservers, kubelets with hosts, the scheduler, built-in
// controllers, the Cassandra operator, the region service, and the oracle
// runner — the Figure 1 architecture in one call.
//
// Every experiment execution builds a fresh Cluster from an Options value
// and a seed, runs a workload against it (optionally under a perturbation
// plan), and reads the oracle runner for violations.
package infra

import (
	"fmt"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/controllers"
	"repro/internal/kubelet"
	"repro/internal/operators/cassandra"
	"repro/internal/oracle"
	"repro/internal/regions"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/store"
)

// CassandraOptions enables the Cassandra operator.
type CassandraOptions struct {
	Name  string
	Fixes cassandra.Fixes
}

// RegionOptions enables the region service.
type RegionOptions struct {
	Servers []string
	Mode    regions.Mode
}

// Options selects the components of a cluster.
type Options struct {
	Seed          int64
	NumAPIServers int
	// Nodes are worker node names; each gets a host and a kubelet.
	Nodes []string
	// KubeletSafeRestart enables the 59848 mitigation on all kubelets.
	KubeletSafeRestart bool
	// EnableScheduler runs the pod scheduler.
	EnableScheduler bool
	// SchedulerEvictFix enables the 56261 fix.
	SchedulerEvictFix bool
	// EnableVolumeController runs the volume releaser.
	EnableVolumeController bool
	// VolumeControllerFix enables the release-on-absent-owner fix.
	VolumeControllerFix bool
	// EnableNodeLifecycle runs node heartbeat GC.
	EnableNodeLifecycle bool
	// EnableAppController runs the replicaset-style application controller.
	EnableAppController bool
	// Cassandra, when non-nil, runs the Cassandra operator.
	Cassandra *CassandraOptions
	// Regions, when non-nil, runs region servers and the assignment
	// manager.
	Regions *RegionOptions
	// Topology, when non-nil, builds a racked multi-DC world: Nodes (if
	// empty) is generated as Racks × NodesPerRack rack-major names, every
	// process gets a sim.Location, and the network serves
	// topology-derived link latencies.
	Topology *TopologyOptions
	// APIWindowSize overrides the apiserver watch window (0 = default).
	APIWindowSize int
	// APIBatchWatch enables batched watch delivery on all apiservers
	// (one push per subscriber per committed store batch).
	APIBatchWatch bool
	// APIUnindexedServing pins all apiservers to the legacy
	// scan-everything serving paths (byte-identity pinning and E12).
	APIUnindexedServing bool
	// StoreRetainLimit bounds the store's retained history (0 = unlimited).
	StoreRetainLimit int
	// OraclePeriod is how often invariants are evaluated.
	OraclePeriod sim.Duration
	// OraclePatience is the grace period for liveness oracles.
	OraclePatience sim.Duration
}

// DefaultOptions returns a two-apiserver, two-node cluster with scheduler
// and volume controller, all stock (buggy) variants.
func DefaultOptions() Options {
	return Options{
		Seed:                   1,
		NumAPIServers:          2,
		Nodes:                  []string{"k1", "k2"},
		EnableScheduler:        true,
		EnableVolumeController: true,
		OraclePeriod:           10 * sim.Millisecond,
		OraclePatience:         2 * sim.Second,
	}
}

// Cluster is an assembled simulated infrastructure.
type Cluster struct {
	Opts    Options
	World   *sim.World
	Store   *store.Server
	APIs    []*apiserver.Server
	Hosts   map[string]*kubelet.Host
	Kubelet map[string]*kubelet.Kubelet

	Scheduler *scheduler.Scheduler
	Volume    *controllers.VolumeController
	NodeLC    *controllers.NodeLifecycleController
	App       *controllers.AppSetController
	Cassandra *cassandra.Operator

	RegionServers map[string]*regions.RegionServer
	RegionManager *regions.Manager

	Oracles *oracle.Runner
	Admin   *Admin
}

// APIServerID returns the node ID of the i-th apiserver (0-based).
func APIServerID(i int) sim.NodeID { return sim.NodeID(fmt.Sprintf("api-%d", i+1)) }

// StoreID is the store server's node ID.
const StoreID sim.NodeID = "etcd"

// New builds a cluster.
func New(opts Options) *Cluster {
	if opts.NumAPIServers < 1 {
		opts.NumAPIServers = 1
	}
	if opts.OraclePeriod == 0 {
		opts.OraclePeriod = 10 * sim.Millisecond
	}
	if opts.OraclePatience == 0 {
		opts.OraclePatience = 2 * sim.Second
	}
	var topo *TopologyOptions
	if opts.Topology != nil {
		tn := opts.Topology.normalized()
		topo = &tn
		opts.Topology = topo
		if len(opts.Nodes) == 0 {
			opts.Nodes = topo.NodeNames()
		}
	}
	w := sim.NewWorld(sim.WorldConfig{Seed: opts.Seed, Latency: sim.Millisecond, Jitter: sim.Millisecond / 2})
	if topo != nil {
		w.Network().SetTopologyLatency(topo.ladder())
	}
	c := &Cluster{
		Opts:          opts,
		World:         w,
		Hosts:         make(map[string]*kubelet.Host),
		Kubelet:       make(map[string]*kubelet.Kubelet),
		RegionServers: make(map[string]*regions.RegionServer),
		Oracles:       oracle.NewRunner(),
	}

	st := store.New()
	if opts.StoreRetainLimit > 0 {
		st.SetRetainLimit(opts.StoreRetainLimit)
	}
	c.Store = store.NewServer(w, StoreID, st)

	var apiIDs []sim.NodeID
	for i := 0; i < opts.NumAPIServers; i++ {
		cfg := apiserver.DefaultConfig(StoreID)
		if opts.APIWindowSize > 0 {
			cfg.WindowSize = opts.APIWindowSize
		}
		cfg.BatchWatch = opts.APIBatchWatch
		cfg.UnindexedServing = opts.APIUnindexedServing
		api := apiserver.New(w, APIServerID(i), cfg)
		c.APIs = append(c.APIs, api)
		apiIDs = append(apiIDs, api.ID())
	}
	if topo != nil && topo.PerRackAPIAffinity {
		for i, api := range c.APIs {
			w.Network().SetLocation(api.ID(), topo.locationOfRack(i%topo.Racks))
		}
	}

	for i, node := range opts.Nodes {
		host := kubelet.NewHost(node)
		cfg := kubelet.DefaultConfig(node, apiIDs)
		cfg.SafeRestartSync = opts.KubeletSafeRestart
		if topo != nil {
			rack := i / topo.NodesPerRack
			loc := topo.locationOfRack(rack)
			cfg.Rack, cfg.Zone, cfg.DC = loc.Rack, loc.Zone, loc.DC
			if topo.PerRackAPIAffinity && len(apiIDs) > 1 {
				// Prefer the rack's own apiserver; keep the rest in the
				// usual order as failover.
				p := rack % len(apiIDs)
				order := make([]sim.NodeID, 0, len(apiIDs))
				order = append(order, apiIDs[p])
				for j, id := range apiIDs {
					if j != p {
						order = append(order, id)
					}
				}
				cfg.APIServers = order
			}
			w.Network().SetLocation(kubelet.NodeID(node), loc)
		}
		c.Hosts[node] = host
		c.Kubelet[node] = kubelet.New(w, host, cfg)
	}

	if opts.EnableScheduler {
		cfg := scheduler.DefaultConfig(apiIDs[0])
		cfg.EvictUnknownNodes = opts.SchedulerEvictFix
		c.Scheduler = scheduler.New(w, cfg)
	}
	if opts.EnableVolumeController {
		cfg := controllers.DefaultVolumeConfig(apiIDs[0])
		cfg.ReleaseOnAbsentOwner = opts.VolumeControllerFix
		c.Volume = controllers.NewVolumeController(w, cfg)
	}
	if opts.EnableNodeLifecycle {
		c.NodeLC = controllers.NewNodeLifecycleController(w, controllers.DefaultNodeLifecycleConfig(apiIDs[0]))
	}
	if opts.EnableAppController {
		c.App = controllers.NewAppSetController(w, controllers.DefaultAppSetConfig(apiIDs[0]))
	}
	if opts.Cassandra != nil {
		cfg := cassandra.DefaultConfig(apiIDs[0], opts.Cassandra.Name)
		cfg.Fixes = opts.Cassandra.Fixes
		c.Cassandra = cassandra.New(w, cfg)
	}
	if opts.Regions != nil {
		for _, name := range opts.Regions.Servers {
			c.RegionServers[name] = regions.NewRegionServer(w, name)
		}
		c.RegionManager = regions.NewManager(w, regions.ManagerConfig{
			APIServer: apiIDs[0],
			Mode:      opts.Regions.Mode,
		})
	}

	if topo != nil {
		// Every process without an explicit placement — the store, the
		// non-affine apiservers, scheduler, controllers, operators,
		// region servers — lives in the control rack of the first DC.
		ctrl := topo.controlLocation()
		for _, id := range w.Network().Nodes() {
			if w.Network().LocationOf(id).IsZero() {
				w.Network().SetLocation(id, ctrl)
			}
		}
	}

	c.Admin = newAdmin(c)
	c.installOracles()
	// Let apiservers/informers complete their initial sync before the
	// workload starts.
	w.Kernel().RunFor(200 * sim.Millisecond)
	return c
}

func (c *Cluster) installOracles() {
	c.addOracles()
	c.Oracles.InstallPeriodic(c.World, c.Opts.OraclePeriod)
}

// addOracles registers the oracle set for this cluster's options, in a
// deterministic order (the restore path relies on re-registering the same
// oracles in the same order to transplant their state positionally).
func (c *Cluster) addOracles() {
	st := c.Store.Store()
	var hosts []*kubelet.Host
	for _, node := range c.Opts.Nodes {
		hosts = append(hosts, c.Hosts[node])
	}
	if len(hosts) > 0 {
		c.Oracles.Add(oracle.UniquePod(hosts))
	}
	if c.Opts.EnableScheduler {
		c.Oracles.Add(oracle.SchedulerProgress(st, c.Opts.OraclePatience))
	}
	if c.Opts.EnableVolumeController || c.Opts.Cassandra != nil {
		c.Oracles.Add(oracle.NoOrphanPVC(st, c.Opts.OraclePatience))
	}
	if c.Opts.Cassandra != nil {
		c.Oracles.Add(oracle.ScaleDownCompletes(st, c.Opts.Cassandra.Name, c.Opts.OraclePatience))
		oracle.InstallNoLivePVCDeletion(st, c.Oracles)
	}
	if c.Opts.Regions != nil {
		var servers []*regions.RegionServer
		for _, name := range c.Opts.Regions.Servers {
			servers = append(servers, c.RegionServers[name])
		}
		c.Oracles.Add(oracle.CASAtomicity(servers))
	}
}

// RunFor advances the simulation.
func (c *Cluster) RunFor(d sim.Duration) { c.World.Kernel().RunFor(d) }

// GroundTruth lists objects of a kind straight from the store.
func (c *Cluster) GroundTruth(kind cluster.Kind) []*cluster.Object {
	kvs, _ := c.Store.Store().Range(cluster.KindPrefix(kind))
	out := make([]*cluster.Object, 0, len(kvs))
	for _, kv := range kvs {
		obj, err := cluster.Decode(kv.Value, kv.ModRevision)
		if err != nil {
			continue
		}
		out = append(out, obj)
	}
	return out
}

// Violations returns all oracle violations so far.
func (c *Cluster) Violations() []oracle.Violation { return c.Oracles.Violations() }
