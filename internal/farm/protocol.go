// Package farm is the campaign fleet: a coordinator/worker subsystem
// that shards the (target × seed × plan-class) space of a campaign
// matrix across worker processes and merges the shards back into
// results that are byte-identical to a single-process run.
//
// The pieces:
//
//   - protocol.go  the task unit (TaskSpec) and the NDJSON wire messages
//   - transport.go how a worker is launched and spoken to (subprocess
//     over stdin/stdout pipes, or an in-process goroutine for tests —
//     a TCP transport slots in behind the same interface)
//   - worker.go    the worker side: run one task through the unchanged
//     campaign.Engine, streaming per-execution records
//   - shard.go     how a campaign matrix becomes tasks (seed-sharded,
//     except when cross-seed learning forbids it)
//   - coordinator.go pull-based task dispatch, cancellation, partial
//     results
//   - merge.go     deterministic shard merging — the proof obligation
//     that farmed == single-process, field by field
//   - resolve.go   target/strategy/seed name resolution shared with the
//     single-process CLI
//   - grid.go      declarative experiment grids (targets × seeds ×
//     plan-family toggles × repeats)
//   - analyze.go   grid summary tables and CSV
//
// Everything the merge relies on — execution sets, bucket contents,
// telemetry — is deterministic in the engine by construction; the farm
// adds no nondeterminism of its own because shard boundaries follow the
// engine's own independence structure (seeds are independent unless the
// learning phase couples them through cross-seed bucket affinity).
package farm

import (
	"repro/internal/campaign"
)

// TaskSpec is one unit of farmed work: a full campaign.Config worth of
// knobs plus the cell coordinates, flattened to plain serializable
// fields (campaign.Config itself carries a function hook and is not a
// wire type). A task runs one (target, strategy) campaign over Seeds —
// a single seed for seed-sharded cells, the whole sweep for cells the
// learning phase couples across seeds.
type TaskSpec struct {
	// ID is the task's dense index in the coordinator's plan (0-based);
	// workers echo it on every record and result.
	ID int `json:"id"`

	// Cell coordinates.
	Target   string `json:"target"`
	Strategy string `json:"strategy"`
	// Fixed selects the fixed component variants of the target (the
	// no-detection correctness baseline).
	Fixed bool `json:"fixed,omitempty"`
	// RandomSeed / RandomN parameterize the random baseline strategy's
	// plan generator; ignored by the other strategies.
	RandomSeed int64 `json:"random_seed,omitempty"`
	RandomN    int   `json:"random_n,omitempty"`

	// Engine knobs, mirroring campaign.Config. Parallel is the
	// in-process pool width per worker (campaign.Config.Workers) — it
	// must match the single-process -parallel value for guided schedules
	// to be comparable, because guided scheduling is deterministic per
	// pool width.
	Seeds         []int64 `json:"seeds"`
	MaxExecutions int     `json:"max_executions,omitempty"`
	Parallel      int     `json:"parallel,omitempty"`
	Guided        bool    `json:"guided,omitempty"`
	KeepGoing     bool    `json:"keep_going,omitempty"`
	Explain       bool    `json:"explain,omitempty"`
	Prune         bool    `json:"prune,omitempty"`
	Ranked        bool    `json:"ranked,omitempty"`
	Snapshot      bool    `json:"snapshot,omitempty"`
	EventBudget   uint64  `json:"event_budget,omitempty"`

	// Coverage carries the cell's slice of the persistent corpus, when
	// the coordinator runs with one.
	Coverage *campaign.CoverageSeed `json:"coverage,omitempty"`
}

// engineConfig reconstitutes the campaign.Config a worker runs the task
// under. Collect is always on: the coordinator needs per-plan outcomes
// to merge artifacts and regenerate telemetry streams.
func (s TaskSpec) engineConfig(onOutcome func(campaign.PlanOutcome)) campaign.Config {
	return campaign.Config{
		Workers:       s.Parallel,
		Seeds:         s.Seeds,
		MaxExecutions: s.MaxExecutions,
		Guided:        s.Guided,
		Collect:       true,
		KeepGoing:     s.KeepGoing,
		Explain:       s.Explain,
		EventBudget:   s.EventBudget,
		Prune:         s.Prune,
		Ranked:        s.Ranked,
		Snapshot:      s.Snapshot,
		Coverage:      s.Coverage,
		OnOutcome:     onOutcome,
	}
}

// Wire message types, coordinator → worker and back. The protocol is
// NDJSON in both directions: one JSON object per line, strictly ordered
// per pipe.
const (
	// coordinator → worker
	msgTask     = "task"     // carries Task; run it
	msgShutdown = "shutdown" // drain and exit cleanly

	// worker → coordinator
	msgReady  = "ready"  // worker is up and idle
	msgRecord = "record" // one per-execution record, streamed mid-task
	msgResult = "result" // the task's full campaign.Result
	msgError  = "error"  // the task failed; Error explains
)

// wireMsg is the single envelope both directions use; Type selects
// which payload fields are meaningful.
type wireMsg struct {
	Type   string                `json:"type"`
	Task   *TaskSpec             `json:"task,omitempty"`
	TaskID int                   `json:"task_id,omitempty"`
	Record *campaign.PlanOutcome `json:"record,omitempty"`
	Result *campaign.Result      `json:"result,omitempty"`
	Error  string                `json:"error,omitempty"`
}
