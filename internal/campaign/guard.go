package campaign

import (
	"fmt"
	"runtime/debug"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

// DefaultEventBudget is the kernel step budget per execution when
// Config.EventBudget is zero. Healthy executions of the seeded targets use
// a few thousand kernel events; five million is two-plus orders of
// magnitude of headroom, so the watchdog only fires on genuinely
// livelocked plans (e.g. a zero-delay reschedule loop that stalls virtual
// time forever).
const DefaultEventBudget uint64 = 5_000_000

// maxStackBytes bounds the stack captured into a Failed execution record.
const maxStackBytes = 4096

// runGuarded executes one plan with per-execution robustness:
//
//   - panic recovery: a panic anywhere in Apply/Workload/Run is converted
//     into a Failed execution record carrying the plan ID, the panic value,
//     and a truncated stack — the worker survives and the pool keeps
//     draining plans;
//   - event-budget watchdog: the kernel is given a step budget; if the
//     budget is exhausted before the virtual clock reaches the horizon, the
//     execution is flagged Hung (livelocked) instead of spinning forever.
//
// With instrument set, a trace recorder is attached and the coverage
// signature returned; failed and hung executions report signature 0 (their
// traces are partial, and buckets must not alias them with healthy runs).
func runGuarded(t core.Target, p core.Plan, seed int64, instrument bool, budget uint64) (exec core.Execution, sig Signature) {
	if budget == 0 {
		budget = DefaultEventBudget
	}
	exec = core.Execution{Plan: p, Seed: seed}
	defer func() {
		if r := recover(); r != nil {
			exec = core.Execution{
				Plan: p, Seed: seed, Failed: true,
				Failure: fmt.Sprintf("panic in plan %s: %v\n%s", p.ID(), r, sanitizeStack(debug.Stack())),
			}
			sig = 0
		}
	}()

	c := t.Build(seed)
	var rec *trace.Recorder
	if instrument {
		rec = trace.NewRecorder()
		rec.Attach(c.World.Network(), c.Store.Store())
	}
	k := c.World.Kernel()
	// The budget counts from here: cluster construction (warmup included)
	// has already spent its steps.
	startSteps := k.Steps()
	k.SetMaxSteps(startSteps + budget)
	deadline := k.Now().Add(t.Horizon)

	p.Apply(c)
	t.Workload(c)
	c.RunFor(t.Horizon)

	exec.Violations = c.Violations()
	exec.Detected = c.Oracles.Violated(t.Bug)
	if k.Steps() >= startSteps+budget && k.Now() < deadline {
		exec.Hung = true
		exec.Failure = fmt.Sprintf(
			"watchdog: plan %s exhausted the event budget (%d kernel steps) at virtual time %s, short of the %s horizon — livelocked execution",
			p.ID(), budget, k.Now(), deadline)
		return exec, 0
	}
	if instrument {
		sig = signatureOf(rec.T, exec.Violations)
	}
	return exec, sig
}

// sanitizeStack reduces a panic stack to its deterministic skeleton:
// goroutine headers, argument values, and code offsets vary with worker
// count and allocation layout, but the function names and file:line frames
// do not. Failure records must stay byte-identical across worker counts —
// the same determinism contract every other artifact field honours.
func sanitizeStack(stack []byte) string {
	lines := strings.Split(string(stack), "\n")
	out := make([]string, 0, len(lines))
	for _, ln := range lines {
		if strings.HasPrefix(ln, "goroutine ") || ln == "" {
			continue
		}
		// "created by pkg.Func in goroutine N" — the goroutine number is
		// scheduling-dependent.
		if i := strings.Index(ln, " in goroutine "); i >= 0 {
			ln = ln[:i]
		}
		// File:line frames carry a "+0x..." code offset.
		if i := strings.Index(ln, " +0x"); i >= 0 {
			ln = ln[:i]
		}
		// Function-call frames print argument values (heap addresses,
		// struct dumps); replace the whole argument list with "(...)".
		// The list starts at the line's last "(" — method receivers like
		// "(*Kernel).Step" close their parens before the argument list.
		if !strings.HasPrefix(ln, "\t") && strings.HasSuffix(ln, ")") {
			if i := strings.LastIndex(ln, "("); i >= 0 && ln[i+1:] != ")" {
				ln = ln[:i] + "(...)"
			}
		}
		out = append(out, ln)
	}
	s := strings.Join(out, "\n")
	if len(s) > maxStackBytes {
		s = s[:maxStackBytes]
	}
	return s
}
