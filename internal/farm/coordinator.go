package farm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/campaign"
)

// TaskResult is one task's outcome as the coordinator saw it: the
// worker's full campaign.Result, or the error that stopped it. Res is
// nil for tasks that never completed (cancellation, worker death,
// quarantine). The supervision fields are populated only by
// RunSupervised: Deaths lists every worker death attributed to the task,
// Retries counts requeues after such deaths, and Quarantine is non-nil
// when the task killed enough distinct workers to be declared poison —
// in which case Res stays nil and the merge records a synthetic failed
// cell instead of aborting the campaign.
type TaskResult struct {
	Spec TaskSpec
	Res  *campaign.Result
	Err  string

	Deaths     []DeathRecord
	Retries    int
	Quarantine *QuarantineRecord
}

// Coordinator drives a set of workers through a task list. Dispatch is
// pull-based: each worker serves one task at a time and takes the next
// free one when it reports a result, so slow shards (a learning-coupled
// cell sweeping many seeds) never stall the rest of the fleet behind a
// static assignment.
type Coordinator struct {
	// OnRecord, when non-nil, observes every streamed per-execution
	// record as it arrives. Records from different workers interleave
	// arbitrarily — per-task order is guaranteed, cross-task order is
	// not — which is why merged artifacts are rebuilt from task results,
	// never from the record stream.
	OnRecord func(spec TaskSpec, out campaign.PlanOutcome)
}

// Run executes tasks across the given worker transports and returns one
// TaskResult per task, in task order. The second return is true when
// ctx was cancelled: the fleet was killed, and the results hold
// whatever completed before the interrupt — partial but valid.
// A worker failure on one task is recorded in that task's Err and does
// not stop the fleet; Run returns an error only when it cannot make
// progress at all (no workers could start, or every worker died with
// tasks still queued).
func (c *Coordinator) Run(ctx context.Context, transports []Transport, tasks []TaskSpec) ([]TaskResult, bool, error) {
	results := make([]TaskResult, len(tasks))
	for i, spec := range tasks {
		if spec.ID != i {
			return nil, false, fmt.Errorf("farm: task %d has ID %d; IDs must be dense and ordered", i, spec.ID)
		}
		results[i] = TaskResult{Spec: spec}
	}
	if len(tasks) == 0 {
		return results, false, nil
	}
	if len(transports) == 0 {
		return nil, false, errors.New("farm: no worker transports")
	}

	queue := make(chan int, len(tasks))
	for i := range tasks {
		queue <- i
	}
	close(queue)

	// The kill watcher frees workers blocked inside a task the moment the
	// context dies; stop() also fires it on normal return so the watcher
	// goroutine never outlives Run.
	kctx, stop := context.WithCancel(ctx)
	defer stop()
	var killOnce sync.Once
	killAll := func() {
		killOnce.Do(func() {
			for _, t := range transports {
				t.Kill()
			}
		})
	}
	go func() {
		<-kctx.Done()
		if ctx.Err() != nil {
			killAll()
		}
	}()

	var mu sync.Mutex // guards results
	started := 0
	var wg sync.WaitGroup
	for _, tr := range transports {
		in, out, err := tr.Start()
		if err != nil {
			continue
		}
		started++
		wg.Add(1)
		go func(tr Transport, in io.WriteCloser, out io.Reader) {
			defer wg.Done()
			c.serve(ctx, in, out, tasks, queue, results, &mu)
			in.Close()
			if ctx.Err() != nil {
				tr.Kill()
			}
			_ = tr.Wait()
		}(tr, in, out)
	}
	if started == 0 {
		return nil, false, errors.New("farm: no workers started")
	}
	wg.Wait()
	killAll() // idempotent; reaps anything still alive after an interrupt

	interrupted := ctx.Err() != nil
	if !interrupted {
		for i := range results {
			if results[i].Res == nil && results[i].Err == "" {
				return results, false, fmt.Errorf("farm: task %d (%s/%s) never completed: all workers exited",
					i, results[i].Spec.Target, results[i].Spec.Strategy)
			}
		}
	}
	return results, interrupted, nil
}

// serve runs one worker's protocol session: wait for ready (and check
// its protocol-version magic), then feed it tasks until the queue
// drains, the context dies, or the transport breaks. Errors are
// per-task (recorded in results) except transport breakage, which ends
// the session — the still-queued tasks stay available to the surviving
// workers. This is the unsupervised dispatch loop; RunSupervised wraps
// the same session shape with death detection, respawn, and retry.
func (c *Coordinator) serve(ctx context.Context, in io.Writer, out io.Reader, tasks []TaskSpec, queue <-chan int, results []TaskResult, mu *sync.Mutex) {
	enc := json.NewEncoder(in)
	fs := newFrameScanner(out, "worker")

	hello, _, err := fs.next()
	if err != nil || hello.Type != msgReady || hello.Proto != ProtocolVersion {
		return
	}
	for id := range queue {
		if ctx.Err() != nil {
			return
		}
		spec := tasks[id]
		if err := enc.Encode(wireMsg{Type: msgTask, Task: &spec}); err != nil {
			return
		}
		done := false
		for !done {
			msg, _, err := fs.next()
			if err != nil {
				return // transport broke mid-task; the task stays incomplete
			}
			switch msg.Type {
			case msgRecord:
				if c.OnRecord != nil && msg.Record != nil {
					c.OnRecord(spec, *msg.Record)
				}
			case msgResult:
				mu.Lock()
				results[id].Res = msg.Result
				mu.Unlock()
				done = true
			case msgError:
				mu.Lock()
				results[id].Err = msg.Error
				mu.Unlock()
				done = true
			default:
				return
			}
		}
	}
	_ = enc.Encode(wireMsg{Type: msgShutdown})
}
