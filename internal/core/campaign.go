package core

import (
	"fmt"

	"repro/internal/infra"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Topology tells the planner what exists in the target cluster: which
// apiservers can be frozen, which components can be crashed, and which of
// those can be steered to a different upstream on restart.
type Topology struct {
	APIServers  []sim.NodeID
	Restartable []sim.NodeID
	Resteerable []sim.NodeID
}

// Target is one system-plus-workload under test: a deterministic cluster
// builder, a workload that schedules admin operations on the virtual
// clock, a run horizon, and the oracle whose violation constitutes
// "bug found".
type Target struct {
	// Name identifies the target bug (e.g. "k8s-59848").
	Name string
	// Bug is the oracle name whose violation counts as detection.
	Bug string
	// Build constructs a fresh cluster with the buggy configuration.
	Build func(seed int64) *infra.Cluster
	// Workload schedules the admin operations that exercise the system.
	Workload func(c *infra.Cluster)
	// Horizon is how long each execution runs (virtual time).
	Horizon sim.Duration
	// Topology describes the fault surface.
	Topology Topology
}

// Strategy generates an ordered list of perturbation plans for a target,
// optionally informed by a reference trace.
type Strategy interface {
	Name() string
	Plans(t Target, ref *trace.Trace) []Plan
}

// Execution is the outcome of running one plan against a target.
type Execution struct {
	Plan       Plan
	Violations []oracle.Violation
	Detected   bool // the target bug's oracle fired
}

// CampaignResult summarizes a bug-finding campaign.
type CampaignResult struct {
	Target     string
	Strategy   string
	PlansTotal int // plans the strategy generated
	Executions int // executions actually run (including the detecting one)
	Detected   bool
	// DetectingPlan describes the first plan that triggered the bug.
	DetectingPlan  string
	FirstViolation *oracle.Violation
}

func (r CampaignResult) String() string {
	if r.Detected {
		return fmt.Sprintf("%-14s %-16s detected in %d/%d executions (%s)",
			r.Target, r.Strategy, r.Executions, r.PlansTotal, r.DetectingPlan)
	}
	return fmt.Sprintf("%-14s %-16s NOT detected in %d executions", r.Target, r.Strategy, r.Executions)
}

// Reference runs the target once unperturbed and returns its trace. It is
// the planning substrate and also a sanity check: a reference run that
// already violates the oracle makes the campaign meaningless.
func Reference(t Target) (*trace.Trace, []oracle.Violation) {
	c := t.Build(1)
	rec := trace.NewRecorder()
	rec.Attach(c.World.Network(), c.Store.Store())
	t.Workload(c)
	c.RunFor(t.Horizon)
	return rec.T, c.Violations()
}

// RunPlan executes one plan against a fresh instance of the target.
func RunPlan(t Target, p Plan) Execution {
	c := t.Build(1)
	p.Apply(c)
	t.Workload(c)
	c.RunFor(t.Horizon)
	return Execution{
		Plan:       p,
		Violations: c.Violations(),
		Detected:   c.Oracles.Violated(t.Bug),
	}
}

// RunCampaign executes the strategy's plans in order until the target bug
// is detected or maxExecutions is reached.
func RunCampaign(t Target, s Strategy, maxExecutions int) CampaignResult {
	ref, refViolations := Reference(t)
	res := CampaignResult{Target: t.Name, Strategy: s.Name()}
	for _, v := range refViolations {
		if v.Oracle == t.Bug {
			// The bug manifests without perturbation; report detection at
			// execution 1 (the reference run).
			res.PlansTotal = 1
			res.Executions = 1
			res.Detected = true
			res.DetectingPlan = NopPlan{}.Describe()
			fv := v
			res.FirstViolation = &fv
			return res
		}
	}

	plans := s.Plans(t, ref)
	res.PlansTotal = len(plans)
	for i, p := range plans {
		if maxExecutions > 0 && i >= maxExecutions {
			break
		}
		exec := RunPlan(t, p)
		res.Executions = i + 1
		if exec.Detected {
			res.Detected = true
			res.DetectingPlan = p.Describe()
			for _, v := range exec.Violations {
				if v.Oracle == t.Bug {
					fv := v
					res.FirstViolation = &fv
					break
				}
			}
			return res
		}
	}
	return res
}

// Matrix runs every (target, strategy) pair — the Section 7 headline table.
func Matrix(targets []Target, strategies []Strategy, maxExecutions int) []CampaignResult {
	var out []CampaignResult
	for _, t := range targets {
		for _, s := range strategies {
			out = append(out, RunCampaign(t, s, maxExecutions))
		}
	}
	return out
}
