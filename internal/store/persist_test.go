package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/wal"
)

func TestPersistRecoverRoundTrip(t *testing.T) {
	l := wal.New()
	s := New()
	s.PersistTo(l)
	s.SetNow(100)
	s.Put("/a", []byte("1"))
	s.Put("/b", []byte("2"))
	s.SetNow(200)
	s.Put("/a", []byte("3"))
	if _, err := s.Delete("/b"); err != nil {
		t.Fatal(err)
	}

	r, err := RecoverFromWAL(l)
	if err != nil {
		t.Fatal(err)
	}
	if r.Revision() != s.Revision() || r.Len() != s.Len() {
		t.Fatalf("recovered rev=%d len=%d, want rev=%d len=%d", r.Revision(), r.Len(), s.Revision(), s.Len())
	}
	kv, _, ok := r.Get("/a")
	if !ok || string(kv.Value) != "3" || kv.ModRevision != 3 || kv.CreateRevision != 1 {
		t.Fatalf("recovered /a = %+v", kv)
	}
	// Histories are identical event for event.
	he, re := s.History().Events(), r.History().Events()
	if len(he) != len(re) {
		t.Fatalf("history lengths differ: %d vs %d", len(he), len(re))
	}
	for i := range he {
		if !he[i].Equal(re[i]) {
			t.Fatalf("event %d differs: %+v vs %+v", i, he[i], re[i])
		}
	}
}

func TestPropertyPersistRecoverEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := wal.New()
		s := New()
		s.PersistTo(l)
		keys := []string{"/x", "/y", "/z"}
		for i := 0; i < 80; i++ {
			s.SetNow(int64(i) * 7)
			k := keys[rng.Intn(len(keys))]
			if rng.Intn(4) == 0 {
				_, _ = s.Delete(k)
			} else {
				s.Put(k, []byte(fmt.Sprintf("v%d", i)))
			}
		}
		r, err := RecoverFromWAL(l)
		if err != nil {
			return false
		}
		if r.Revision() != s.Revision() || r.Len() != s.Len() {
			return false
		}
		kvs, _ := s.Range("")
		for _, kv := range kvs {
			rkv, _, ok := r.Get(kv.Key)
			if !ok || string(rkv.Value) != string(kv.Value) ||
				rkv.ModRevision != kv.ModRevision || rkv.Version != kv.Version {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverRejectsCorruptOp(t *testing.T) {
	l := wal.New()
	if _, err := l.Append(map[string]string{"op": "bogus", "key": "/a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverFromWAL(l); err == nil {
		t.Fatal("recovery accepted unknown op")
	}
}
