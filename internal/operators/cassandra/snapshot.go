package cassandra

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/sim"
)

// Snapshot captures the operator at a checkpoint. The informer caches live
// inside the connection snapshot; the queue's pending timers and the
// operator's own resync/drain/awaitgone timers are kernel events restored
// by the orchestration via Rearm.
type Snapshot struct {
	Cfg   Config
	Down  bool
	Epoch uint64
	UIDs  int

	Draining       map[string]bool
	SawTerminating map[string]bool

	PodCreates     int
	PodDeletes     int
	PVCCreates     int
	PVCDeletes     int
	Decommissions  int
	WrongDecomm    int
	StuckReconcile int

	Conn         *client.ConnSnapshot
	HasInformers bool
	CRSub        uint64
	PodSub       uint64
	PVCSub       uint64
	Queue        *controller.QueueSnapshot
}

// Snapshot captures the operator's state. It fails (ok=false) when an RPC
// call is in flight (a pending Create/Update/Get continuation cannot be
// reconstructed).
func (o *Operator) Snapshot() (*Snapshot, bool) {
	cs, ok := o.conn.Snapshot()
	if !ok {
		return nil, false
	}
	snap := &Snapshot{
		Cfg:            o.cfg,
		Down:           o.down,
		Epoch:          o.epoch,
		UIDs:           o.uids.Counter(),
		Draining:       make(map[string]bool, len(o.draining)),
		SawTerminating: make(map[string]bool, len(o.sawTerminating)),
		PodCreates:     o.PodCreates,
		PodDeletes:     o.PodDeletes,
		PVCCreates:     o.PVCCreates,
		PVCDeletes:     o.PVCDeletes,
		Decommissions:  o.Decommissions,
		WrongDecomm:    o.WrongDecomm,
		StuckReconcile: o.StuckReconcile,
		Conn:           cs,
		Queue:          o.queue.Snapshot(),
	}
	for m, v := range o.draining {
		snap.Draining[m] = v
	}
	for m, v := range o.sawTerminating {
		snap.SawTerminating[m] = v
	}
	if o.crInf != nil && o.podInf != nil && o.pvcInf != nil {
		snap.HasInformers = true
		snap.CRSub = o.crInf.SubID()
		snap.PodSub = o.podInf.SubID()
		snap.PVCSub = o.pvcInf.SubID()
	}
	return snap, true
}

// Restore reconstructs an operator from a snapshot inside world w. Informer
// handlers are re-attached without cache replay; no timers are armed.
func Restore(w *sim.World, snap *Snapshot) *Operator {
	o := &Operator{
		id:             OperatorID,
		world:          w,
		cfg:            snap.Cfg,
		down:           snap.Down,
		epoch:          snap.Epoch,
		uids:           cluster.NewUIDGen("cass-op"),
		draining:       make(map[string]bool, len(snap.Draining)),
		sawTerminating: make(map[string]bool, len(snap.SawTerminating)),
		PodCreates:     snap.PodCreates,
		PodDeletes:     snap.PodDeletes,
		PVCCreates:     snap.PVCCreates,
		PVCDeletes:     snap.PVCDeletes,
		Decommissions:  snap.Decommissions,
		WrongDecomm:    snap.WrongDecomm,
		StuckReconcile: snap.StuckReconcile,
	}
	o.uids.SetCounter(snap.UIDs)
	for m, v := range snap.Draining {
		o.draining[m] = v
	}
	for m, v := range snap.SawTerminating {
		o.sawTerminating[m] = v
	}
	w.Network().Register(o.id, o)
	w.AddProcess(o)
	o.conn = client.RestoreConn(w, snap.Conn)
	o.queue = controller.RestoreQueue(w.Kernel(), snap.Queue, controller.ReconcilerFunc(o.reconcile))
	if snap.HasInformers {
		crInf, ok := o.conn.Informer(snap.CRSub)
		if !ok {
			panic(fmt.Sprintf("cassandra: restore: CR informer sub %d missing", snap.CRSub))
		}
		crInf.RestoreHandler(controller.EnqueueHandler{Queue: o.queue})
		o.crInf = crInf
		podInf, ok := o.conn.Informer(snap.PodSub)
		if !ok {
			panic(fmt.Sprintf("cassandra: restore: pod informer sub %d missing", snap.PodSub))
		}
		podInf.RestoreHandler(client.HandlerFuncs{
			AddFunc: func(p *cluster.Object) { o.observePod(p) },
			UpdateFunc: func(_, p *cluster.Object) {
				o.observePod(p)
			},
			DeleteFunc: func(p *cluster.Object) {
				if o.isMember(p) {
					o.queue.Add(o.cfg.ClusterName)
				}
			},
		})
		o.podInf = podInf
		pvcInf, ok := o.conn.Informer(snap.PVCSub)
		if !ok {
			panic(fmt.Sprintf("cassandra: restore: PVC informer sub %d missing", snap.PVCSub))
		}
		o.pvcInf = pvcInf
	}
	return o
}

// Rearm returns the callback for a pending kernel event owned by this
// operator (work-queue timers, informer timers, and the operator's own
// resync/drain/awaitgone timers share its owner name).
func (o *Operator) Rearm(tag sim.EventTag) (func(), error) {
	switch tag.Kind {
	case "addafter", "process":
		return o.queue.Rearm(tag)
	case "inf-liveness", "inf-relist":
		return o.conn.RearmInformer(tag)
	case "resync":
		epoch := tag.Epoch
		return func() { o.resyncFire(epoch) }, nil
	case "drain":
		epoch, member := tag.Epoch, tag.Key
		return func() { o.drainFire(epoch, member) }, nil
	case "awaitgone":
		sep := strings.LastIndex(tag.Key, "#")
		if sep < 0 {
			return nil, fmt.Errorf("cassandra: malformed awaitgone key %q", tag.Key)
		}
		member := tag.Key[:sep]
		attempts, err := strconv.Atoi(tag.Key[sep+1:])
		if err != nil {
			return nil, fmt.Errorf("cassandra: malformed awaitgone key %q: %w", tag.Key, err)
		}
		epoch := tag.Epoch
		return func() { o.awaitGoneThenCleanup(epoch, member, attempts) }, nil
	default:
		return nil, fmt.Errorf("cassandra: unknown pending event kind %q", tag.Kind)
	}
}
