package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/farm"
)

// useInProcFleet swaps the subprocess fleet for in-process workers so
// command-level tests need no self-exec.
func useInProcFleet(t *testing.T) {
	t.Helper()
	old := newWorkerTransport
	newWorkerTransport = func(slot, spawn int) farm.Transport {
		return farm.NewInProcTransport()
	}
	t.Cleanup(func() { newWorkerTransport = old })
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-ranked"},                                // ranked requires prune
		{"-snapshot", "-fixed"},                    // incompatible
		{"-workers", "0"},                          // fleet must exist
		{"-targets", "no-such-bug"},                // unknown target
		{"-strategies", "no-such"},                 // unknown strategy
		{"-seeds", "one,two"},                      // unparsable seeds
		{"-grid", "/absent/g.json"},                // missing grid file
		{"-not-a-flag"},                            // flag parse error
		{"-resume"},                                // resume requires a journal
		{"-supervise=false", "-journal", "/tmp/j"}, // journal requires supervision
		{"-chaos", "explode@banana"},               // unparsable chaos script
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errBuf.String())
		}
	}
}

// TestMatrixEndToEnd drives the coordinator path through the real CLI:
// artifact and telemetry files written, exit 0, valid canonical JSON.
func TestMatrixEndToEnd(t *testing.T) {
	useInProcFleet(t)
	dir := t.TempDir()
	artPath := filepath.Join(dir, "campaign.json")
	ndPath := filepath.Join(dir, "events.ndjson")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-workers", "3", "-targets", "cass-op-400", "-strategies", "partial-history",
		"-seeds", "1,2", "-max", "60", "-parallel", "2", "-canonical",
		"-json", artPath, "-ndjson", ndPath,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if !strings.Contains(out.String(), "YES") {
		t.Errorf("matrix did not report detection:\n%s", out.String())
	}
	data, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	var doc struct {
		Tool        string            `json:"tool"`
		Interrupted bool              `json:"interrupted"`
		Campaigns   []json.RawMessage `json:"campaigns"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("artifact parse: %v", err)
	}
	if doc.Interrupted {
		t.Error("clean run marked interrupted")
	}
	if len(doc.Campaigns) != 1 {
		t.Errorf("got %d campaigns, want 1", len(doc.Campaigns))
	}
	nd, err := os.ReadFile(ndPath)
	if err != nil {
		t.Fatalf("ndjson: %v", err)
	}
	if len(bytes.TrimSpace(nd)) == 0 {
		t.Error("empty telemetry stream")
	}
}

// TestGridEndToEnd: a two-repeat grid over one target produces a
// summary table and a CSV that reproduces byte-for-byte across runs.
func TestGridEndToEnd(t *testing.T) {
	useInProcFleet(t)
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	grid := `{
		"name": "smoke",
		"targets": ["cass-op-400", "k8s-56261"],
		"strategies": ["partial-history"],
		"seeds": [1],
		"repeats": 2,
		"max_executions": 40,
		"toggles": [{"name": "baseline"}]
	}`
	if err := os.WriteFile(gridPath, []byte(grid), 0o644); err != nil {
		t.Fatal(err)
	}
	runOnce := func(csvPath string) string {
		var out, errBuf bytes.Buffer
		code := run([]string{"-workers", "2", "-parallel", "2", "-grid", gridPath, "-csv", csvPath}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
		}
		if !strings.Contains(out.String(), "toggle") {
			t.Errorf("no summary table in output:\n%s", out.String())
		}
		data, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatalf("csv: %v", err)
		}
		return string(data)
	}
	csv1 := runOnce(filepath.Join(dir, "a.csv"))
	csv2 := runOnce(filepath.Join(dir, "b.csv"))
	if csv1 != csv2 {
		t.Errorf("grid CSV not deterministic:\n--- first\n%s--- second\n%s", csv1, csv2)
	}
	lines := strings.Split(strings.TrimSpace(csv1), "\n")
	// Header + (2 targets x 2 repeats) rows.
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), csv1)
	}
	if !strings.HasPrefix(lines[0], "grid,toggle,repeat,target,") {
		t.Errorf("unexpected CSV header: %s", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.HasPrefix(line, "smoke,baseline,") {
			t.Errorf("unexpected CSV row: %s", line)
		}
	}
}
