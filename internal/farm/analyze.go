package farm

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/campaign"
)

// CellSummary is one grid cell's analyzed result — one row of the CSV
// and the summary table. Every field except WallMS is a pure function
// of the deterministic execution set, so the CSV reproduces byte-for-
// byte across runs; WallMS appears only in the human summary table.
type CellSummary struct {
	Grid     string
	Toggle   string
	Repeat   int
	Target   string
	Strategy string
	Seeds    []int64
	Detected bool
	// DetectedSeed is the first detecting world seed (0 when none).
	DetectedSeed int64
	// Executions is the sweep-level executions-to-first-detection (or
	// the total spent when nothing detected) — Campaign.Executions.
	Executions int
	// TotalExecutions sums every seed's deterministic execution count.
	TotalExecutions int
	PlansTotal      int
	Buckets         int
	DetectedBuckets int
	Failed          int
	Hung            int
	Pruned          int
	Deduped         int
	Signatures      int
	Classes         int
	WallMS          int64
}

// Summarize flattens one experiment's merged cell results into summary
// rows, in matrix order.
func Summarize(gridName string, exp Experiment, merged []campaign.Result) []CellSummary {
	out := make([]CellSummary, 0, len(merged))
	for _, res := range merged {
		row := CellSummary{
			Grid:       gridName,
			Toggle:     exp.Toggle.Name,
			Repeat:     exp.Repeat,
			Target:     res.Target,
			Strategy:   res.Strategy,
			Seeds:      exp.Seeds,
			Detected:   res.Detected,
			Executions: res.Campaign.Executions,
			PlansTotal: res.Campaign.PlansTotal,
			Buckets:    len(res.Buckets),
			Failed:     res.Stats.FailedExecutions,
			Hung:       res.Stats.HungExecutions,
			Pruned:     res.Stats.PlansPruned,
			Deduped:    res.Stats.PlansDeduped,
			Signatures: res.Stats.NovelSignatures,
			Classes:    res.Stats.CoverageClasses,
			WallMS:     res.Stats.WallNanos / 1e6,
		}
		if res.Detected {
			row.DetectedSeed = res.DetectedSeed
		}
		for _, sr := range res.Seeds {
			row.TotalExecutions += sr.Campaign.Executions
		}
		for _, b := range res.Buckets {
			if b.Detected {
				row.DetectedBuckets++
			}
		}
		out = append(out, row)
	}
	return out
}

// csvHeader lists the CSV columns — deterministic fields only, so two
// runs of the same grid produce identical files.
var csvHeader = []string{
	"grid", "toggle", "repeat", "target", "strategy", "seeds",
	"detected", "detected_seed", "executions_to_detection",
	"total_executions", "plans_total", "buckets", "detected_buckets",
	"failed", "hung", "pruned", "deduped", "signatures", "classes",
}

// WriteCSV emits the rows as a deterministic CSV (no wall-clock
// columns). Seeds are joined with '+' so the field needs no quoting.
func WriteCSV(w io.Writer, rows []CellSummary) error {
	if _, err := fmt.Fprintln(w, strings.Join(csvHeader, ",")); err != nil {
		return err
	}
	for _, r := range rows {
		fields := []string{
			r.Grid, r.Toggle, strconv.Itoa(r.Repeat), r.Target, r.Strategy,
			joinSeeds(r.Seeds), strconv.FormatBool(r.Detected),
			strconv.FormatInt(r.DetectedSeed, 10), strconv.Itoa(r.Executions),
			strconv.Itoa(r.TotalExecutions), strconv.Itoa(r.PlansTotal),
			strconv.Itoa(r.Buckets), strconv.Itoa(r.DetectedBuckets),
			strconv.Itoa(r.Failed), strconv.Itoa(r.Hung),
			strconv.Itoa(r.Pruned), strconv.Itoa(r.Deduped),
			strconv.Itoa(r.Signatures), strconv.Itoa(r.Classes),
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

func joinSeeds(seeds []int64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = strconv.FormatInt(s, 10)
	}
	return strings.Join(parts, "+")
}

// WriteSummaryTable renders the rows as an aligned human-readable table
// — the CSV's deterministic columns condensed, plus wall-clock time.
func WriteSummaryTable(w io.Writer, rows []CellSummary) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "toggle\trep\ttarget\tstrategy\tdetected\texecs\tbuckets\tsigs\twall_ms")
	for _, r := range rows {
		det := "no"
		if r.Detected {
			det = fmt.Sprintf("YES@%d", r.DetectedSeed)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%d\t%d(%d*)\t%d\t%d\n",
			r.Toggle, r.Repeat, r.Target, r.Strategy, det,
			r.Executions, r.Buckets, r.DetectedBuckets, r.Signatures, r.WallMS)
	}
	tw.Flush()
}
