//go:build !race

package farm

// raceSlowdown scales test deadlines that convict stalled workers; the
// race detector slows engine executions roughly an order of magnitude,
// so tight deadlines that are generous in normal runs would misconvict
// healthy tasks under -race.
const raceSlowdown = 1
