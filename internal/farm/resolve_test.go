package farm

import (
	"strings"
	"testing"
)

// TestValidateFlags is the table-driven regression test for the flag
// combinations both CLIs reject after flag.Parse(): combinations that
// would silently do nothing (-ranked without -prune), double-specify one
// pass through its deprecated alias (-minimize with -explain), or fork
// the full-replay correctness baselines (-snapshot with -fixed).
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		rules   FlagRules
		wantErr string // substring; "" means the combination is valid
	}{
		{"defaults", FlagRules{}, ""},
		{"prune-alone", FlagRules{Prune: true}, ""},
		{"prune-ranked", FlagRules{Prune: true, Ranked: true}, ""},
		{"ranked-without-prune", FlagRules{Ranked: true}, "-ranked requires -prune"},
		{"explain-alone", FlagRules{Explain: true}, ""},
		{"minimize-alone", FlagRules{Minimize: true}, ""},
		{"minimize-and-explain", FlagRules{Minimize: true, Explain: true}, "-minimize and -explain are mutually exclusive"},
		{"snapshot-alone", FlagRules{Snapshot: true}, ""},
		{"fixed-alone", FlagRules{Fixed: true}, ""},
		{"snapshot-with-fixed", FlagRules{Snapshot: true, Fixed: true}, "-snapshot is incompatible with -fixed"},
		{"everything-valid", FlagRules{Prune: true, Ranked: true, Explain: true, Snapshot: true}, ""},
		{"explore-alone", FlagRules{Explore: true}, ""},
		{"explore-with-fixed", FlagRules{Explore: true, Fixed: true}, ""},
		{"explore-with-guided", FlagRules{Explore: true, Guided: true}, "-explore is incompatible with -guided"},
		{"explore-with-prune", FlagRules{Explore: true, Prune: true}, "-explore is incompatible with -prune"},
		{"explore-with-snapshot", FlagRules{Explore: true, Snapshot: true}, "-explore is incompatible with -snapshot"},
		{"explore-with-explain", FlagRules{Explore: true, Explain: true}, "-explore is incompatible with -explain"},
		{"explore-with-minimize", FlagRules{Explore: true, Minimize: true}, "-explore is incompatible with -explain"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateFlags(tc.rules)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid combination rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("inert/contradictory combination accepted: %+v", tc.rules)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not describe the problem (want substring %q)", err, tc.wantErr)
			}
		})
	}
}
