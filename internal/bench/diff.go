package bench

import (
	"encoding/json"
	"fmt"
	"sort"
)

// DiffEntry is one field-level disagreement between a committed artifact
// and a fresh recomputation, in machine-readable form (cmd/benchcheck
// -json emits these verbatim).
type DiffEntry struct {
	// Path is the JSON path of the disagreeing field, e.g.
	// ".cells[3].executions" ("" for whole-artifact problems).
	Path string `json:"path"`
	// Kind classifies the disagreement: "value" (same field, different
	// value), "type" (field changed JSON type), "length" (array length
	// changed), "marshal" (an artifact failed to serialize), "opaque"
	// (artifacts differ but no field could be localized).
	Kind string `json:"kind"`
	// Committed and Fresh are the two sides, rendered as strings (for
	// "length" entries, the two lengths).
	Committed string `json:"committed,omitempty"`
	Fresh     string `json:"fresh,omitempty"`
}

// String renders the entry as the one-line human form Diff returns.
func (e DiffEntry) String() string {
	switch e.Kind {
	case "marshal":
		return fmt.Sprintf("marshal failure: %s / %s", e.Committed, e.Fresh)
	case "type":
		return fmt.Sprintf("%s: type changed", e.Path)
	case "length":
		return fmt.Sprintf("%s: length %s (committed) vs %s (fresh)", e.Path, e.Committed, e.Fresh)
	case "opaque":
		return "artifacts differ (unlocalized)"
	default:
		return fmt.Sprintf("%s: committed %s, fresh %s", e.Path, e.Committed, e.Fresh)
	}
}

// DiffEntries compares two artifacts of the same type and returns one
// entry per field-level disagreement (nil means identical). It works on
// the marshaled forms, so any field drift — a flipped detection, a
// shifted execution count, a changed pruning decision — is caught.
func DiffEntries(committed, fresh any) []DiffEntry {
	a, errA := json.Marshal(committed)
	b, errB := json.Marshal(fresh)
	if errA != nil || errB != nil {
		return []DiffEntry{{Kind: "marshal", Committed: fmt.Sprint(errA), Fresh: fmt.Sprint(errB)}}
	}
	if string(a) == string(b) {
		return nil
	}
	var va, vb any
	_ = json.Unmarshal(a, &va)
	_ = json.Unmarshal(b, &vb)
	var out []DiffEntry
	diffValue("", va, vb, &out)
	if len(out) == 0 {
		out = append(out, DiffEntry{Kind: "opaque"})
	}
	return out
}

// Diff is DiffEntries rendered as human-readable lines (empty means
// identical) — the form benchcheck prints without -json.
func Diff(committed, fresh any) []string {
	entries := DiffEntries(committed, fresh)
	if len(entries) == 0 {
		return nil
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.String()
	}
	return out
}

func diffValue(path string, a, b any, out *[]DiffEntry) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			*out = append(*out, DiffEntry{Path: path, Kind: "type", Committed: fmt.Sprint(a), Fresh: fmt.Sprint(b)})
			return
		}
		set := map[string]bool{}
		for k := range av {
			set[k] = true
		}
		for k := range bv {
			set[k] = true
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			diffValue(path+"."+k, av[k], bv[k], out)
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			*out = append(*out, DiffEntry{Path: path, Kind: "type", Committed: fmt.Sprint(a), Fresh: fmt.Sprint(b)})
			return
		}
		if len(av) != len(bv) {
			*out = append(*out, DiffEntry{
				Path: path, Kind: "length",
				Committed: fmt.Sprint(len(av)), Fresh: fmt.Sprint(len(bv)),
			})
			return
		}
		for i := range av {
			diffValue(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], out)
		}
	default:
		if fmt.Sprint(a) != fmt.Sprint(b) {
			*out = append(*out, DiffEntry{
				Path: path, Kind: "value",
				Committed: fmt.Sprint(a), Fresh: fmt.Sprint(b),
			})
		}
	}
}
