package apiserver

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/store"
)

// ErrNotReady is returned while the apiserver is (re)building its watch
// cache from the store; clients retry.
var ErrNotReady = errors.New("apiserver: not ready, cache syncing")

// IsNotReady reports whether err is a not-ready rejection.
func IsNotReady(err error) bool { return matchesSentinel(err, ErrNotReady) }

// Config tunes an apiserver.
type Config struct {
	// StoreNode is the store server this apiserver syncs from.
	StoreNode sim.NodeID
	// WindowSize bounds the retained event window used to serve client
	// watch backlogs; older start revisions get ErrTooOldResourceVersion.
	WindowSize int
	// ResyncInterval is how often the apiserver polls the store for missed
	// events when the watch stream is silent. Larger values widen the
	// staleness windows failures can create.
	ResyncInterval sim.Duration
	// RecoverGaps controls whether a detected revision gap in the incoming
	// stream triggers an immediate catch-up pull. Disabling it models an
	// apiserver that trusts its (lossy) stream.
	RecoverGaps bool
	// RPCTimeout bounds calls to the store.
	RPCTimeout sim.Duration
	// BatchWatch coalesces watch delivery: instead of one push per
	// subscriber per committed event, each store push (a batch of
	// committed events) flushes at most one message per subscriber,
	// carrying every event that subscriber is owed. Event order within a
	// subscriber's stream is unchanged.
	BatchWatch bool
	// UnindexedServing routes relay, cached lists, and cached gets
	// through the legacy paths (scan all subs per event, re-sort and
	// re-decode the whole cache per list). Kept for byte-identity pinning
	// tests and the E12 indexed-vs-unindexed benchmark; production config
	// leaves it false.
	UnindexedServing bool
}

// DefaultConfig returns production-like settings.
func DefaultConfig(storeNode sim.NodeID) Config {
	return Config{
		StoreNode:      storeNode,
		WindowSize:     1024,
		ResyncInterval: 500 * sim.Millisecond,
		RecoverGaps:    true,
		RPCTimeout:     200 * sim.Millisecond,
	}
}

type clientSub struct {
	key      string // subscription key ("client/subID"), the map key
	subID    uint64
	client   sim.NodeID
	kind     cluster.Kind
	lastSent int64 // highest revision pushed
}

// decodedObj is one entry of the ModRevision-keyed decode memo: obj is
// the decode of the cached value at revision rev. Same discipline as the
// store layer's memo (store.go): a pure cache, never part of snapshots or
// equality, self-invalidating by revision compare; memoized objects are
// shared across replies and MUST be treated as immutable by receivers
// (the sim.Message payload contract — informers clone on ingest).
type decodedObj struct {
	rev int64
	obj *cluster.Object
}

// ServeStats counts serving-path work. Pure observability — never part
// of snapshots or byte-identity comparisons. E12 uses the relay counters
// to demonstrate per-event relay cost is O(interested subs), not
// O(all subs).
type ServeStats struct {
	RelayEvents     uint64 // committed events offered to relay
	RelaySubVisits  uint64 // subscriber entries examined across all relays
	RelaySends      uint64 // watch push messages emitted (a batch counts once)
	ListServed      uint64 // cached list requests answered
	ListKeysScanned uint64 // cache keys visited answering cached lists
	DecodeHits      uint64 // cached-read decodes answered from the memo
	DecodeMisses    uint64 // cached-read decodes that ran cluster.Decode
	WindowTrims     uint64 // head advances of the retained event window
	WindowCompacts  uint64 // allocations that reclaimed the window's dead prefix
}

// Server is one apiserver instance: a watch cache over the store plus a
// typed API. Multiple Servers can sync from the same store, and each can
// lag independently — the precondition for time-travel bugs.
type Server struct {
	id    sim.NodeID
	world *sim.World
	cfg   Config

	rpcSrv *sim.RPCServer
	rpcCl  *sim.RPCClient

	down  bool
	ready bool
	epoch uint64 // bumped on restart; stale async callbacks check it

	cache       map[string]store.KV
	cachedRev   int64
	window      []history.Event
	winHead     int   // logical window start: window[winHead:] is the live window
	minStartRev int64 // newest revision no longer replayable from the window
	subs        map[string]*clientSub
	subsOrder   []string                   // cached sorted sub keys; nil means stale
	subsByKind  map[cluster.Kind][]string  // per-kind relay index over subsOrder; nil means stale
	kindKeys    map[cluster.Kind][]string  // per-kind sorted cache keys, maintained incrementally
	kindBroken  bool                       // true disables kindKeys (unparseable key seen); lists fall back to full scans
	decoded     map[string]decodedObj      // ModRevision-keyed decode memo; pure cache, excluded from snapshots
	batch       map[string][]WatchEvent    // per-sub pending watch events under Config.BatchWatch
	stats       ServeStats
	storeSubID  uint64
	lastEventAt sim.Time

	// pushSlab arena-allocates the per-subscriber single-event push
	// slices (relay sends one per subscriber per event — the hottest
	// allocation on the watch path).
	pushSlab sim.Slab[WatchEvent]
}

// New creates and wires an apiserver into the world and begins its initial
// cache sync.
func New(w *sim.World, id sim.NodeID, cfg Config) *Server {
	s := &Server{
		id:       id,
		world:    w,
		cfg:      cfg,
		cache:    make(map[string]store.KV),
		subs:     make(map[string]*clientSub),
		kindKeys: make(map[cluster.Kind][]string),
	}
	s.rpcSrv = sim.NewRPCServer(w.Network(), id)
	s.rpcCl = sim.NewRPCClient(w.Network(), id, cfg.RPCTimeout)
	s.register()
	w.Network().Register(id, s)
	w.AddProcess(s)
	s.bootstrap()
	s.scheduleResync()
	return s
}

// ID returns the apiserver's node ID.
func (s *Server) ID() sim.NodeID { return s.id }

// Ready reports whether the watch cache is synced and serving.
func (s *Server) Ready() bool { return s.ready && !s.down }

// CachedRevision returns the cache frontier (the apiserver's H' position).
func (s *Server) CachedRevision() int64 { return s.cachedRev }

// CacheLen returns the number of cached objects.
func (s *Server) CacheLen() int { return len(s.cache) }

// Crash implements sim.Process: the watch cache is volatile.
func (s *Server) Crash() {
	s.down = true
	s.ready = false
	s.epoch++
	s.rpcCl.Reset()
	s.cache = make(map[string]store.KV)
	s.window = nil
	s.winHead = 0
	s.cachedRev = 0
	s.subs = make(map[string]*clientSub)
	s.subsOrder = nil
	s.subsByKind = nil
	s.kindKeys = make(map[cluster.Kind][]string)
	s.kindBroken = false
	s.decoded = nil
	s.batch = nil
}

// Restart implements sim.Process: rebuild the cache from the store.
func (s *Server) Restart() {
	s.down = false
	s.bootstrap()
	s.scheduleResync()
}

// HandleMessage implements sim.Handler.
func (s *Server) HandleMessage(m *sim.Message) {
	if s.down {
		return
	}
	if s.rpcCl.HandleResponse(m) {
		return
	}
	if push, ok := m.Payload.(*store.WatchPush); ok {
		s.onStoreEvents(push)
		return
	}
	s.rpcSrv.HandleRequest(m)
}

// bootstrap lists the full registry from the store, then watches from the
// listed revision. Retries on timeout.
func (s *Server) bootstrap() {
	epoch := s.epoch
	s.rpcCl.Call(s.cfg.StoreNode, store.MethodRange, &store.RangeRequest{Prefix: cluster.RegistryPrefix},
		func(body any, err error) {
			if s.down || epoch != s.epoch {
				return
			}
			if err != nil {
				s.world.Kernel().Schedule(s.cfg.RPCTimeout, func() {
					if !s.down && epoch == s.epoch {
						s.bootstrap()
					}
				})
				return
			}
			resp := body.(*store.RangeResponse)
			s.cache = make(map[string]store.KV, len(resp.KVs))
			for _, kv := range resp.KVs {
				s.cache[kv.Key] = kv
			}
			s.rebuildKindIndex()
			s.cachedRev = resp.Revision
			s.window = nil
			s.winHead = 0
			// Events before the relist revision cannot be replayed to
			// clients anymore.
			s.minStartRev = resp.Revision
			s.startStoreWatch(epoch)
		})
}

func (s *Server) startStoreWatch(epoch uint64) {
	s.storeSubID++
	subID := s.storeSubID
	s.rpcCl.Call(s.cfg.StoreNode, store.MethodWatch,
		&store.WatchRequest{Prefix: cluster.RegistryPrefix, StartRev: s.cachedRev, SubID: subID},
		func(body any, err error) {
			if s.down || epoch != s.epoch {
				return
			}
			if err != nil {
				// Compacted or timeout: full relist.
				s.world.Kernel().Schedule(s.cfg.RPCTimeout, func() {
					if !s.down && epoch == s.epoch {
						s.bootstrap()
					}
				})
				return
			}
			s.ready = true
			s.lastEventAt = s.world.Now()
		})
}

// onStoreEvents folds a store push into the cache and relays to clients.
func (s *Server) onStoreEvents(push *store.WatchPush) {
	if push.SubID != s.storeSubID {
		return // stale stream from before a restart/rewatch
	}
	s.applyEvents(push.Events, true)
}

func (s *Server) applyEvents(events []history.Event, allowRecover bool) {
	for i, e := range events {
		if e.Revision <= s.cachedRev {
			continue // duplicate
		}
		if e.Revision > s.cachedRev+1 && allowRecover && s.cfg.RecoverGaps {
			// Gap detected: pull the missing span, then the rest.
			rest := events[i:]
			s.flushWatchBatches()
			s.recoverGap(rest)
			return
		}
		s.applyOne(e)
	}
	s.flushWatchBatches()
	s.lastEventAt = s.world.Now()
}

func (s *Server) recoverGap(pending []history.Event) {
	epoch := s.epoch
	s.rpcCl.Call(s.cfg.StoreNode, store.MethodEventsSince,
		&store.EventsSinceRequest{Prefix: cluster.RegistryPrefix, Rev: s.cachedRev},
		func(body any, err error) {
			if s.down || epoch != s.epoch {
				return
			}
			if err != nil {
				// Compacted or unreachable: schedule a full relist; apply
				// nothing now (the resync timer also backstops this).
				if remote := (sim.ErrRemote{}); errors.As(err, &remote) && remote.Msg == store.ErrCompacted.Error() {
					s.bootstrap()
				}
				return
			}
			resp := body.(*store.EventsSinceResponse)
			// The pulled span is contiguous and covers pending too.
			s.applyEvents(resp.Events, false)
			_ = pending
		})
}

func (s *Server) applyOne(e history.Event) {
	var relay WatchEvent
	switch e.Type {
	case history.Put:
		prev, existed := s.cache[e.Key]
		kv := store.KV{Key: e.Key, Value: e.Value, ModRevision: e.Revision}
		if existed && e.PrevRev != 0 {
			kv.CreateRevision = prev.CreateRevision
			kv.Version = prev.Version + 1
		} else {
			kv.CreateRevision = e.Revision
			kv.Version = 1
		}
		s.cache[e.Key] = kv
		if !existed {
			s.kindIndexInsert(e.Key)
		}
		obj, err := cluster.Decode(e.Value, e.Revision)
		if err != nil {
			return
		}
		if kv.Version == 1 {
			relay = WatchEvent{Type: Added, Object: obj, Revision: e.Revision}
		} else {
			relay = WatchEvent{Type: Modified, Object: obj, Revision: e.Revision}
		}
	case history.Delete:
		prev, existed := s.cache[e.Key]
		delete(s.cache, e.Key)
		if existed {
			s.kindIndexRemove(e.Key)
		}
		delete(s.decoded, e.Key)
		var obj *cluster.Object
		if existed {
			if o, err := cluster.Decode(prev.Value, e.Revision); err == nil {
				obj = o
			}
		}
		if obj == nil {
			// Deletion of a key we never cached: synthesize a tombstone
			// with only the identity filled in.
			kind, name, err := cluster.ParseKey(e.Key)
			if err != nil {
				return
			}
			obj = &cluster.Object{Meta: cluster.Meta{Kind: kind, Name: name, ResourceVersion: e.Revision}}
		}
		relay = WatchEvent{Type: Deleted, Object: obj, Revision: e.Revision}
	}
	s.cachedRev = e.Revision
	s.window = append(s.window, e)
	if s.cfg.WindowSize > 0 && len(s.window)-s.winHead > s.cfg.WindowSize {
		// Amortized trim: advance the logical head instead of copying the
		// retained suffix on every committed event. The dead prefix is
		// reclaimed in one fresh allocation once it has grown to a full
		// window, so trimming is O(1) amortized and the backing array
		// never exceeds 2× WindowSize live slots. Compaction must
		// allocate (not slide in place): snapshots share the backing
		// array copy-on-write.
		s.winHead++
		s.minStartRev = s.window[s.winHead-1].Revision
		s.stats.WindowTrims++
		if s.winHead >= s.cfg.WindowSize {
			s.window = append([]history.Event(nil), s.window[s.winHead:]...)
			s.winHead = 0
			s.stats.WindowCompacts++
		}
	}
	s.relay(relay, e.Key)
}

func (s *Server) relay(ev WatchEvent, key string) {
	kind, _, err := cluster.ParseKey(key)
	if err != nil {
		return
	}
	s.stats.RelayEvents++
	if s.cfg.UnindexedServing {
		// Legacy path: every committed event scans all subscribers and
		// filters by kind — O(all subs) per event.
		for _, sk := range s.sortedSubs() {
			sub, ok := s.subs[sk]
			s.stats.RelaySubVisits++
			if !ok || sub.kind != kind || ev.Revision <= sub.lastSent {
				continue
			}
			s.relayTo(sub, ev)
		}
		return
	}
	for _, sk := range s.subsOfKind(kind) {
		sub, ok := s.subs[sk]
		s.stats.RelaySubVisits++
		if !ok || ev.Revision <= sub.lastSent {
			continue
		}
		s.relayTo(sub, ev)
	}
}

// relayTo delivers (or, under BatchWatch, buffers) one event to one
// subscriber and advances its high-water mark.
func (s *Server) relayTo(sub *clientSub, ev WatchEvent) {
	sub.lastSent = ev.Revision
	if s.cfg.BatchWatch {
		if s.batch == nil {
			s.batch = make(map[string][]WatchEvent)
		}
		s.batch[sub.key] = append(s.batch[sub.key], cloneEvent(ev))
		return
	}
	s.stats.RelaySends++
	s.world.Network().Send(s.id, sub.client, KindWatchPush,
		&WatchPushMsg{SubID: sub.subID, Events: s.pushSlab.One(cloneEvent(ev))})
}

// flushWatchBatches emits one watch push per subscriber carrying every
// event buffered for it during the current store batch, in sorted
// subscription-key order (the same client-visible order as the unbatched
// path). Subscriptions cannot change mid-batch — applyEvents runs inside
// a single kernel event — but canceled leftovers are dropped defensively.
func (s *Server) flushWatchBatches() {
	if len(s.batch) == 0 {
		return
	}
	for _, sk := range s.sortedSubs() {
		evs := s.batch[sk]
		if len(evs) == 0 {
			continue
		}
		delete(s.batch, sk)
		sub, ok := s.subs[sk]
		if !ok {
			continue
		}
		s.stats.RelaySends++
		s.world.Network().Send(s.id, sub.client, KindWatchPush,
			&WatchPushMsg{SubID: sub.subID, Events: evs})
	}
	for sk := range s.batch {
		delete(s.batch, sk)
	}
}

// subsOfKind returns the sorted subscription keys watching kind. The
// index is derived from sortedSubs — per-kind relative order matches the
// full scan exactly, so send order is unchanged — and is invalidated
// wherever subsOrder is (subscribe, cancel, crash).
func (s *Server) subsOfKind(kind cluster.Kind) []string {
	if s.subsByKind == nil {
		s.subsByKind = make(map[cluster.Kind][]string, 4)
		for _, sk := range s.sortedSubs() {
			if sub, ok := s.subs[sk]; ok {
				s.subsByKind[sub.kind] = append(s.subsByKind[sub.kind], sk)
			}
		}
	}
	return s.subsByKind[kind]
}

// rebuildKindIndex reconstructs the per-kind sorted key index from the
// cache (bootstrap relist and snapshot restore).
func (s *Server) rebuildKindIndex() {
	s.kindKeys = make(map[cluster.Kind][]string)
	s.kindBroken = false
	for key := range s.cache {
		kind, _, err := cluster.ParseKey(key)
		if err != nil {
			s.kindBroken = true
			s.kindKeys = nil
			return
		}
		s.kindKeys[kind] = append(s.kindKeys[kind], key)
	}
	for _, keys := range s.kindKeys {
		sort.Strings(keys)
	}
}

// kindIndexInsert adds a newly cached key to its kind's sorted slice.
// Registry keys are "/registry/<kind>/<name>", so a kind's keys are
// exactly the contiguous prefix range the legacy full-sort scan served —
// per-kind sorted order and the filtered global order coincide.
func (s *Server) kindIndexInsert(key string) {
	if s.kindBroken {
		return
	}
	kind, _, err := cluster.ParseKey(key)
	if err != nil {
		// An unparseable key would still prefix-match legacy scans;
		// rather than silently diverge, disable the index and fall back.
		s.kindBroken = true
		s.kindKeys = nil
		return
	}
	keys := s.kindKeys[kind]
	i := sort.SearchStrings(keys, key)
	if i < len(keys) && keys[i] == key {
		return
	}
	keys = append(keys, "")
	copy(keys[i+1:], keys[i:])
	keys[i] = key
	s.kindKeys[kind] = keys
}

// kindIndexRemove drops a deleted key from its kind's sorted slice.
func (s *Server) kindIndexRemove(key string) {
	if s.kindBroken {
		return
	}
	kind, _, err := cluster.ParseKey(key)
	if err != nil {
		return
	}
	keys := s.kindKeys[kind]
	i := sort.SearchStrings(keys, key)
	if i < len(keys) && keys[i] == key {
		s.kindKeys[kind] = append(keys[:i], keys[i+1:]...)
	}
}

// decodeCached returns the decoded object for a cached KV through the
// ModRevision-keyed memo (the store layer's PR 7 pattern). The memoized
// object is shared across replies; receivers treat payloads as immutable.
func (s *Server) decodeCached(key string, kv store.KV) (*cluster.Object, error) {
	if d, ok := s.decoded[key]; ok && d.rev == kv.ModRevision {
		s.stats.DecodeHits++
		return d.obj, nil
	}
	obj, err := cluster.Decode(kv.Value, kv.ModRevision)
	if err != nil {
		return nil, err
	}
	s.stats.DecodeMisses++
	if s.decoded == nil {
		s.decoded = make(map[string]decodedObj)
	}
	s.decoded[key] = decodedObj{rev: kv.ModRevision, obj: obj}
	return obj, nil
}

// Stats returns a copy of the serving-path counters.
func (s *Server) Stats() ServeStats { return s.stats }

func cloneEvent(ev WatchEvent) WatchEvent {
	ev.Object = ev.Object.Clone()
	return ev
}

func sortedSubKeys(m map[string]*clientSub) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedSubs returns the cached sorted sub-key order (relay runs on every
// committed event); subscription add/remove invalidates it.
func (s *Server) sortedSubs() []string {
	if s.subsOrder == nil {
		s.subsOrder = sortedSubKeys(s.subs)
	}
	return s.subsOrder
}

// scheduleResync keeps a liveness timer: if the store stream has been
// silent for ResyncInterval, pull any missed events.
func (s *Server) scheduleResync() { s.armResync(s.epoch) }

// armResync schedules one resync firing carrying the epoch observed at arm
// time. The tag lets the prefix-checkpoint layer re-arm a pending firing
// with the identical armed epoch (a stale firing must stay a no-op in a
// forked run, exactly as it would in a full replay).
func (s *Server) armResync(epoch uint64) {
	s.world.Kernel().ScheduleTagged(s.cfg.ResyncInterval,
		sim.EventTag{Owner: string(s.id), Kind: "resync", Epoch: epoch},
		func() { s.resyncFire(epoch) })
}

func (s *Server) resyncFire(epoch uint64) {
	if s.down || epoch != s.epoch {
		return
	}
	if s.ready && s.world.Now().Sub(s.lastEventAt) >= s.cfg.ResyncInterval {
		s.recoverGap(nil)
	}
	s.scheduleResync()
}

func (s *Server) register() {
	// Cached reads answer immediately; quorum reads read through to the
	// store asynchronously.
	s.rpcSrv.HandleAsync(MethodGet, func(_ sim.NodeID, body any, reply sim.Reply) {
		if !s.ready {
			reply(nil, ErrNotReady)
			return
		}
		req := body.(*GetRequest)
		if !req.Quorum {
			reply(s.getCached(req.Kind, req.Name))
			return
		}
		epoch := s.epoch
		s.rpcCl.Call(s.cfg.StoreNode, store.MethodGet, &store.GetRequest{Key: cluster.Key(req.Kind, req.Name)},
			func(b any, err error) {
				if s.down || epoch != s.epoch {
					return
				}
				if err != nil {
					reply(nil, err)
					return
				}
				resp := b.(*store.GetResponse)
				out := &GetResponse{Found: resp.Found, Revision: resp.Revision}
				if resp.Found {
					obj, derr := cluster.Decode(resp.KV.Value, resp.KV.ModRevision)
					if derr != nil {
						reply(nil, derr)
						return
					}
					out.Object = obj
				}
				reply(out, nil)
			})
	})
	s.rpcSrv.HandleAsync(MethodList, func(_ sim.NodeID, body any, reply sim.Reply) {
		if !s.ready {
			reply(nil, ErrNotReady)
			return
		}
		req := body.(*ListRequest)
		if !req.Quorum {
			reply(s.listCached(req.Kind))
			return
		}
		epoch := s.epoch
		s.rpcCl.Call(s.cfg.StoreNode, store.MethodRange, &store.RangeRequest{Prefix: cluster.KindPrefix(req.Kind)},
			func(b any, err error) {
				if s.down || epoch != s.epoch {
					return
				}
				if err != nil {
					reply(nil, err)
					return
				}
				resp := b.(*store.RangeResponse)
				out := &ListResponse{Revision: resp.Revision}
				for _, kv := range resp.KVs {
					obj, derr := cluster.Decode(kv.Value, kv.ModRevision)
					if derr != nil {
						continue
					}
					out.Objects = append(out.Objects, obj)
				}
				reply(out, nil)
			})
	})
	s.rpcSrv.HandleAsync(MethodCreate, func(_ sim.NodeID, body any, reply sim.Reply) {
		if !s.ready {
			reply(nil, ErrNotReady)
			return
		}
		req := body.(*CreateRequest)
		obj := req.Object.Clone()
		data, err := cluster.Encode(obj)
		if err != nil {
			reply(nil, err)
			return
		}
		key := cluster.Key(obj.Meta.Kind, obj.Meta.Name)
		s.storeTxn(&store.TxnRequest{
			Guards:    []store.Cmp{{Key: key, Target: store.CmpExists, IntVal: 0}},
			OnSuccess: []store.Op{{Type: store.OpPut, Key: key, Value: data}},
		}, func(resp *store.TxnResponse, err error) {
			switch {
			case err != nil:
				reply(nil, err)
			case !resp.Succeeded:
				reply(nil, ErrAlreadyExists)
			default:
				obj.Meta.ResourceVersion = resp.Revision
				reply(&WriteResponse{Object: obj, Revision: resp.Revision}, nil)
			}
		})
	})
	s.rpcSrv.HandleAsync(MethodUpdate, func(_ sim.NodeID, body any, reply sim.Reply) {
		if !s.ready {
			reply(nil, ErrNotReady)
			return
		}
		req := body.(*UpdateRequest)
		obj := req.Object.Clone()
		data, err := cluster.Encode(obj)
		if err != nil {
			reply(nil, err)
			return
		}
		key := cluster.Key(obj.Meta.Kind, obj.Meta.Name)
		var guards []store.Cmp
		if rv := obj.Meta.ResourceVersion; rv != 0 {
			guards = []store.Cmp{{Key: key, Target: store.CmpModRevision, IntVal: rv}}
		} else {
			guards = []store.Cmp{{Key: key, Target: store.CmpExists, IntVal: 1}}
		}
		s.storeTxn(&store.TxnRequest{
			Guards:    guards,
			OnSuccess: []store.Op{{Type: store.OpPut, Key: key, Value: data}},
		}, func(resp *store.TxnResponse, err error) {
			switch {
			case err != nil:
				reply(nil, err)
			case !resp.Succeeded:
				reply(nil, ErrConflict)
			default:
				obj.Meta.ResourceVersion = resp.Revision
				reply(&WriteResponse{Object: obj, Revision: resp.Revision}, nil)
			}
		})
	})
	s.rpcSrv.HandleAsync(MethodDelete, func(_ sim.NodeID, body any, reply sim.Reply) {
		if !s.ready {
			reply(nil, ErrNotReady)
			return
		}
		req := body.(*DeleteRequest)
		key := cluster.Key(req.Kind, req.Name)
		guards := []store.Cmp{{Key: key, Target: store.CmpExists, IntVal: 1}}
		conflictErr := error(ErrNotFound)
		if req.ExpectRV != 0 {
			guards = []store.Cmp{{Key: key, Target: store.CmpModRevision, IntVal: req.ExpectRV}}
			conflictErr = ErrConflict
		}
		s.storeTxn(&store.TxnRequest{
			Guards:    guards,
			OnSuccess: []store.Op{{Type: store.OpDelete, Key: key}},
		}, func(resp *store.TxnResponse, err error) {
			switch {
			case err != nil:
				reply(nil, err)
			case !resp.Succeeded:
				reply(nil, conflictErr)
			default:
				reply(&WriteResponse{Revision: resp.Revision}, nil)
			}
		})
	})
	s.rpcSrv.Handle(MethodWatch, func(from sim.NodeID, body any) (any, error) {
		if !s.ready {
			return nil, ErrNotReady
		}
		req := body.(*WatchRequest)
		if req.StartRev < s.minStartRev {
			return nil, ErrTooOldResourceVersion
		}
		key := fmt.Sprintf("%s/%d", from, req.SubID)
		sub := &clientSub{key: key, subID: req.SubID, client: from, kind: req.Kind, lastSent: req.StartRev}
		s.subs[key] = sub
		s.subsOrder = nil
		s.subsByKind = nil
		// Replay the window backlog beyond the client's start revision.
		var backlog []WatchEvent
		for _, e := range s.window[s.winHead:] {
			if e.Revision <= req.StartRev {
				continue
			}
			if !strings.HasPrefix(e.Key, cluster.KindPrefix(req.Kind)) {
				continue
			}
			if we, ok := s.eventFromWindow(e); ok {
				backlog = append(backlog, we)
				sub.lastSent = e.Revision
			}
		}
		if len(backlog) > 0 {
			s.world.Network().Send(s.id, from, KindWatchPush, &WatchPushMsg{SubID: req.SubID, Events: backlog})
		}
		return &WatchResponse{Revision: s.cachedRev}, nil
	})
	s.rpcSrv.Handle(MethodCancelWatch, func(from sim.NodeID, body any) (any, error) {
		req := body.(*CancelWatchRequest)
		delete(s.subs, fmt.Sprintf("%s/%d", from, req.SubID))
		s.subsOrder = nil
		s.subsByKind = nil
		return &struct{}{}, nil
	})
}

// eventFromWindow converts a retained raw event into a typed WatchEvent.
// Unlike the live path it cannot consult pre-event cache state, so Added vs
// Modified is derived from PrevRev and deletions are served as tombstones
// from the current cache (or identity-only if re-created since).
func (s *Server) eventFromWindow(e history.Event) (WatchEvent, bool) {
	switch e.Type {
	case history.Put:
		obj, err := cluster.Decode(e.Value, e.Revision)
		if err != nil {
			return WatchEvent{}, false
		}
		t := Modified
		if e.PrevRev == 0 {
			t = Added
		}
		return WatchEvent{Type: t, Object: obj, Revision: e.Revision}, true
	case history.Delete:
		kind, name, err := cluster.ParseKey(e.Key)
		if err != nil {
			return WatchEvent{}, false
		}
		obj := &cluster.Object{Meta: cluster.Meta{Kind: kind, Name: name, ResourceVersion: e.Revision}}
		return WatchEvent{Type: Deleted, Object: obj, Revision: e.Revision}, true
	}
	return WatchEvent{}, false
}

func (s *Server) storeTxn(req *store.TxnRequest, cb func(*store.TxnResponse, error)) {
	epoch := s.epoch
	s.rpcCl.Call(s.cfg.StoreNode, store.MethodTxn, req, func(b any, err error) {
		if s.down || epoch != s.epoch {
			return
		}
		if err != nil {
			cb(nil, err)
			return
		}
		cb(b.(*store.TxnResponse), nil)
	})
}

func (s *Server) listCached(kind cluster.Kind) (*ListResponse, error) {
	out := &ListResponse{Revision: s.cachedRev}
	s.stats.ListServed++
	if s.cfg.UnindexedServing || s.kindBroken {
		// Legacy path: re-sort every cache key and re-decode every
		// matching object on each call.
		prefix := cluster.KindPrefix(kind)
		for _, key := range sortedCacheKeys(s.cache) {
			s.stats.ListKeysScanned++
			if !strings.HasPrefix(key, prefix) {
				continue
			}
			kv := s.cache[key]
			obj, err := cluster.Decode(kv.Value, kv.ModRevision)
			if err != nil {
				continue
			}
			out.Objects = append(out.Objects, obj)
		}
		return out, nil
	}
	for _, key := range s.kindKeys[kind] {
		s.stats.ListKeysScanned++
		kv, ok := s.cache[key]
		if !ok {
			continue
		}
		obj, err := s.decodeCached(key, kv)
		if err != nil {
			continue
		}
		out.Objects = append(out.Objects, obj)
	}
	return out, nil
}

func sortedCacheKeys(m map[string]store.KV) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (s *Server) getCached(kind cluster.Kind, name string) (*GetResponse, error) {
	key := cluster.Key(kind, name)
	kv, ok := s.cache[key]
	if !ok {
		return &GetResponse{Found: false, Revision: s.cachedRev}, nil
	}
	var (
		obj *cluster.Object
		err error
	)
	if s.cfg.UnindexedServing {
		obj, err = cluster.Decode(kv.Value, kv.ModRevision)
	} else {
		obj, err = s.decodeCached(key, kv)
	}
	if err != nil {
		return nil, err
	}
	return &GetResponse{Object: obj, Found: true, Revision: s.cachedRev}, nil
}
