// Package history implements the paper's formal model of cluster state:
// the state S of the infrastructure is an object, the history H is the
// ordered sequence of committed changes to S, and a partial history H' is a
// subsequence of H that preserves relative order (Section 3).
//
// The package is deliberately dependency-free so that its algebra (subset
// checks, materialization, divergence metrics, epochs) can be property
// tested in isolation and reused by the store, the trace recorder, and the
// oracles.
package history

import (
	"bytes"
	"fmt"
	"sort"
)

// EventType classifies a change to the state.
type EventType int

const (
	// Put records creation or modification of a key.
	Put EventType = iota
	// Delete records removal of a key.
	Delete
)

func (t EventType) String() string {
	switch t {
	case Put:
		return "PUT"
	case Delete:
		return "DELETE"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is one committed change in a history. Revision is the event's
// position in the global history H: the store assigns revisions
// contiguously starting at 1. Only fully committed events appear in a
// History — H is not a replicated log with uncommitted suffixes (paper §3,
// footnote 1).
type Event struct {
	Revision int64
	Type     EventType
	Key      string
	Value    []byte // nil for Delete
	PrevRev  int64  // previous mod revision of Key; 0 if this Put created it
	Time     int64  // virtual commit time (opaque to this package)
}

func (e Event) String() string {
	return fmt.Sprintf("rev=%d %s %s", e.Revision, e.Type, e.Key)
}

// Equal reports full structural equality of two events.
func (e Event) Equal(o Event) bool {
	return e.Revision == o.Revision && e.Type == o.Type && e.Key == o.Key &&
		e.PrevRev == o.PrevRev && e.Time == o.Time && bytes.Equal(e.Value, o.Value)
}

// History is an ordered sequence of committed events with strictly
// increasing revisions. The zero value is an empty history.
type History struct {
	events []Event
}

// New returns an empty history.
func New() *History { return &History{} }

// FromEvents builds a history from events, which must have strictly
// increasing revisions.
func FromEvents(events []Event) (*History, error) {
	h := New()
	for _, e := range events {
		if err := h.Append(e); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Append adds a committed event. The event's revision must exceed the last
// appended revision; otherwise Append fails and the history is unchanged.
func (h *History) Append(e Event) error {
	if n := len(h.events); n > 0 && e.Revision <= h.events[n-1].Revision {
		return fmt.Errorf("history: non-monotonic revision %d after %d", e.Revision, h.events[n-1].Revision)
	}
	if e.Revision <= 0 {
		return fmt.Errorf("history: revision must be positive, got %d", e.Revision)
	}
	h.events = append(h.events, e)
	return nil
}

// Len returns the number of events.
func (h *History) Len() int { return len(h.events) }

// LastRevision returns the revision of the newest event, or 0 if empty.
func (h *History) LastRevision() int64 {
	if len(h.events) == 0 {
		return 0
	}
	return h.events[len(h.events)-1].Revision
}

// FirstRevision returns the revision of the oldest retained event, or 0 if
// empty. After compaction this can exceed 1.
func (h *History) FirstRevision() int64 {
	if len(h.events) == 0 {
		return 0
	}
	return h.events[0].Revision
}

// Events returns a copy of the event sequence.
func (h *History) Events() []Event {
	out := make([]Event, len(h.events))
	copy(out, h.events)
	return out
}

// At returns the i-th event (0-based).
func (h *History) At(i int) Event { return h.events[i] }

// Since returns all events with revision > rev, in order.
func (h *History) Since(rev int64) []Event {
	i := sort.Search(len(h.events), func(i int) bool { return h.events[i].Revision > rev })
	out := make([]Event, len(h.events)-i)
	copy(out, h.events[i:])
	return out
}

// Find returns the event with the given revision.
func (h *History) Find(rev int64) (Event, bool) {
	i := sort.Search(len(h.events), func(i int) bool { return h.events[i].Revision >= rev })
	if i < len(h.events) && h.events[i].Revision == rev {
		return h.events[i], true
	}
	return Event{}, false
}

// Compact drops all events with revision < rev, modelling the bounded watch
// window of etcd / the apiserver ([7] in the paper): earlier events become
// unobservable even if a client explicitly asks for them.
func (h *History) Compact(rev int64) int {
	i := sort.Search(len(h.events), func(i int) bool { return h.events[i].Revision >= rev })
	dropped := i
	h.events = append([]Event(nil), h.events[i:]...)
	return dropped
}

// FromRetained wraps an already-validated retained event window without
// copying it. The prefix-checkpoint layer uses it to share the (immutable)
// committed-event log between a snapshot and its forks: callers must pass
// a full slice expression (events[:len:len]) so a later Append reallocates
// instead of scribbling over the shared backing array, and must never
// mutate the shared elements.
func FromRetained(events []Event) *History {
	return &History{events: events}
}

// Retained returns the retained event window capped at its length
// (cap == len), safe to share copy-on-write with FromRetained.
func (h *History) Retained() []Event {
	return h.events[:len(h.events):len(h.events)]
}

// Clone returns a deep copy of the history.
func (h *History) Clone() *History {
	c := &History{events: make([]Event, len(h.events))}
	copy(c.events, h.events)
	return c
}

// IsPartialOf reports whether h is a partial history of full: a subsequence
// (subset preserving relative order) of full's events, compared by revision
// and content. Because revisions are strictly increasing in both histories,
// a subset by revision automatically preserves relative order; the content
// check guards against fabricated events that reuse a revision number.
func (h *History) IsPartialOf(full *History) bool {
	j := 0
	for _, e := range h.events {
		for j < len(full.events) && full.events[j].Revision < e.Revision {
			j++
		}
		if j >= len(full.events) || !full.events[j].Equal(e) {
			return false
		}
		j++
	}
	return true
}

// MissingFrom returns the events of full (up to and including h's last
// revision) that do not appear in h: the observability gaps of h relative
// to full. Events beyond h's frontier are lag, not gaps, and are excluded.
func (h *History) MissingFrom(full *History) []Event {
	frontier := h.LastRevision()
	var missing []Event
	j := 0
	for _, fe := range full.events {
		if fe.Revision > frontier {
			break
		}
		for j < len(h.events) && h.events[j].Revision < fe.Revision {
			j++
		}
		if j < len(h.events) && h.events[j].Revision == fe.Revision {
			continue
		}
		missing = append(missing, fe)
	}
	return missing
}
