package apiserver

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
)

func TestQuorumListBypassesStaleCache(t *testing.T) {
	h := newHarness(t, 2)
	if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k1")}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)

	// Hold all store->api-2 pushes so its cache misses the second pod.
	h.w.Network().AddInterceptor(sim.InterceptorFunc(func(m *sim.Message) sim.Decision {
		if m.Kind == store.KindWatchPush && m.To == "api-2" {
			return sim.Decision{Verdict: sim.Drop}
		}
		return sim.Decision{Verdict: sim.Pass}
	}))
	if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p2", "k2")}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)

	cached, err := h.cl.call("api-2", MethodList, &ListRequest{Kind: cluster.KindPod})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cached.(*ListResponse).Objects); n != 1 {
		t.Skipf("staleness window missed (cache already has %d)", n)
	}
	quorum, err := h.cl.call("api-2", MethodList, &ListRequest{Kind: cluster.KindPod, Quorum: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(quorum.(*ListResponse).Objects); n != 2 {
		t.Fatalf("quorum list = %d pods, want 2", n)
	}
}

func TestNotReadyRejection(t *testing.T) {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	// No store at all: the apiserver can never finish bootstrapping.
	api := New(w, "api-1", DefaultConfig("etcd-missing"))
	cl := &testClient{id: "client", w: w}
	cl.rpc = sim.NewRPCClient(w.Network(), "client", 300*sim.Millisecond)
	w.Network().Register("client", cl)
	w.Kernel().RunFor(sim.Second)

	if api.Ready() {
		t.Fatal("apiserver ready without a store")
	}
	if _, err := cl.call("api-1", MethodList, &ListRequest{Kind: cluster.KindPod}); !IsNotReady(err) {
		t.Fatalf("list on syncing apiserver: %v", err)
	}
	if _, err := cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p", "k")}); !IsNotReady(err) {
		t.Fatalf("create on syncing apiserver: %v", err)
	}
}

func TestErrorHelpers(t *testing.T) {
	cases := []struct {
		err  error
		is   func(error) bool
		name string
	}{
		{ErrConflict, IsConflict, "conflict"},
		{ErrAlreadyExists, IsAlreadyExists, "exists"},
		{ErrNotFound, IsNotFound, "notfound"},
		{ErrTooOldResourceVersion, IsTooOld, "tooold"},
		{ErrNotReady, IsNotReady, "notready"},
	}
	for _, c := range cases {
		if !c.is(c.err) {
			t.Errorf("%s: direct sentinel not matched", c.name)
		}
		if !c.is(sim.ErrRemote{Msg: c.err.Error()}) {
			t.Errorf("%s: remote form not matched", c.name)
		}
		if c.is(nil) {
			t.Errorf("%s: nil matched", c.name)
		}
	}
	if IsConflict(ErrNotFound) {
		t.Error("cross-sentinel match")
	}
}
