package explore

import (
	"bytes"
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/infra"
	"repro/internal/workload"
)

// The seeded 56261 bug (scheduler misses a node deletion) is reachable by
// dropping one consumed delivery, so the explorer must find it and
// minimize to exactly that coordinate.
func TestExploreFindsWitness56261(t *testing.T) {
	res := Run(Config{
		Target: workload.Target56261(), Seed: 1,
		Bounds:   Bounds{Drops: 1, Delays: 1},
		POR:      true,
		Snapshot: true,
	})
	if res.Outcome != OutcomeViolation {
		t.Fatalf("outcome = %s, want %s", res.Outcome, OutcomeViolation)
	}
	w := res.Witness
	if w == nil || w.Explanation == nil {
		t.Fatal("violation outcome without witness/explanation")
	}
	if w.MinimalID != "dropdel/scheduler/nodes/n1/DELETED#1" {
		t.Fatalf("minimal witness = %s, want the node-deletion drop", w.MinimalID)
	}
	chain := w.Explanation.Chain
	if len(chain) == 0 || chain[len(chain)-1].Kind != explain.StepViolation {
		t.Fatalf("witness chain does not terminate in a violation step: %+v", chain)
	}
	if res.Stats.ScheduleSpace < 2*res.Stats.SchedulesExecuted {
		t.Fatalf("POR reduction below 2x: space=%d executed=%d",
			res.Stats.ScheduleSpace, res.Stats.SchedulesExecuted)
	}
}

// POR soundness cross-check: the full (no-POR) exploration must find the
// same violation as the reduced one, minimizing to the identical witness.
// Run on a drops-only bound (the delivery-independence reduction) AND on
// a crashes>0 bound (crash decisions must be exempt from the reduction —
// crashing a receiver never commutes, so reducing them would prune
// schedules with no representative). These are the same assertions CI
// runs via phtest -explore.
func TestExplorePORCrossCheck(t *testing.T) {
	for _, bounds := range []Bounds{
		{Drops: 1},
		{Drops: 1, Crashes: 1},
	} {
		var minimal [2]string
		for i, por := range []bool{true, false} {
			res := Run(Config{
				Target: workload.Target56261(), Seed: 1,
				Bounds:   bounds,
				POR:      por,
				Snapshot: true,
			})
			if res.Outcome != OutcomeViolation {
				t.Fatalf("bounds=%+v por=%v: outcome = %s, want violation", bounds, por, res.Outcome)
			}
			minimal[i] = res.Witness.MinimalID
		}
		if minimal[0] != minimal[1] {
			t.Fatalf("bounds=%+v: POR changed the minimized witness: with=%s without=%s",
				bounds, minimal[0], minimal[1])
		}
	}
}

// Crash decisions must survive the reduction verbatim: on a crashes-only
// bound the reduced decision list equals the full one, so POR on and off
// execute the identical schedule set.
func TestExplorePORKeepsCrashDecisions(t *testing.T) {
	var executed [2]uint64
	for i, por := range []bool{true, false} {
		res := Run(Config{
			Target: workload.Target59848(), Seed: 1,
			Bounds:   Bounds{Crashes: 1},
			POR:      por,
			Snapshot: true,
		})
		if res.Outcome != OutcomeCertificate {
			t.Fatalf("por=%v: outcome = %s, want certificate", por, res.Outcome)
		}
		if por && res.Stats.DecisionsReduced != res.Stats.DecisionsFull {
			t.Fatalf("POR reduced crash decisions: full=%d reduced=%d",
				res.Stats.DecisionsFull, res.Stats.DecisionsReduced)
		}
		executed[i] = res.Stats.SchedulesExecuted
	}
	if executed[0] != executed[1] {
		t.Fatalf("crashes-only bound executed %d schedules with POR vs %d without",
			executed[0], executed[1])
	}
}

// A target whose bug the bounded vocabulary cannot reach must certify,
// and the certificate must be byte-identical across reruns and across
// snapshot on/off (forks are a performance detail, not a semantic one).
func TestExploreCertificateDeterministic(t *testing.T) {
	var blobs [][]byte
	for _, snapshot := range []bool{true, true, false} {
		res := Run(Config{
			Target: workload.Target59848(), Seed: 1,
			Bounds:   Bounds{Drops: 1, Delays: 1},
			POR:      true,
			Snapshot: snapshot,
		})
		if res.Outcome != OutcomeCertificate {
			t.Fatalf("snapshot=%v: outcome = %s, want certificate", snapshot, res.Outcome)
		}
		st := res.Stats
		if st.SchedulesExecuted+st.SchedulesCollapsed != st.ScheduleSpace {
			t.Fatalf("collapse accounting broken: executed=%d collapsed=%d space=%d",
				st.SchedulesExecuted, st.SchedulesCollapsed, st.ScheduleSpace)
		}
		blob, err := Marshal(res.Certificate)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatal("certificate not byte-identical across reruns")
	}
	if !bytes.Equal(blobs[0], blobs[2]) {
		t.Fatal("certificate differs between snapshot on and off")
	}
}

// Checkpoint-tree forking must actually engage on a snapshotable
// certificate run — otherwise "cheap revisits" silently degrades to full
// replays everywhere.
func TestExploreForksEngage(t *testing.T) {
	res := Run(Config{
		Target: workload.Target59848(), Seed: 1,
		Bounds:   Bounds{Drops: 1},
		POR:      true,
		Snapshot: true,
	})
	if res.Outcome != OutcomeCertificate {
		t.Fatalf("outcome = %s, want certificate", res.Outcome)
	}
	if res.Forks == 0 {
		t.Fatalf("no executions served by checkpoint forks (replays=%d)", res.Replays)
	}
}

// An exploration that cannot finish within MaxSchedules must abort
// without a certificate — a truncated search proves nothing.
func TestExploreBudgetAbort(t *testing.T) {
	res := Run(Config{
		Target: workload.Target59848(), Seed: 1,
		Bounds:   Bounds{Drops: 1, Delays: 1, MaxSchedules: 3},
		POR:      true,
		Snapshot: false,
	})
	if res.Outcome != OutcomeBudget {
		t.Fatalf("outcome = %s, want %s", res.Outcome, OutcomeBudget)
	}
	if res.Certificate != nil {
		t.Fatal("budget abort must not emit a certificate")
	}
}

// A target whose UNPERTURBED run already violates must yield a violation
// with the empty schedule as witness — never a "no violation within
// bound" certificate. The fixture bakes the known 56261-detecting gap
// into the workload itself, so the reference run fails with no
// exploration decision applied.
func TestExploreReferenceViolationIsWitness(t *testing.T) {
	target := workload.Target56261()
	inner := target.Workload
	target.Workload = func(c *infra.Cluster) {
		core.GapPlan{Victim: "scheduler", Kind: cluster.KindNode, Name: "n1",
			Type: apiserver.Deleted, Occurrence: 1}.Apply(c)
		inner(c)
	}
	res := Run(Config{
		Target: target, Seed: 1,
		Bounds:   Bounds{Drops: 1},
		POR:      true,
		Snapshot: false,
	})
	if res.Outcome != OutcomeViolation {
		t.Fatalf("outcome = %s, want %s (baseline already violates)", res.Outcome, OutcomeViolation)
	}
	if res.Certificate != nil {
		t.Fatal("violating baseline must not emit a certificate")
	}
	if res.Stats.SchedulesExecuted != 1 {
		t.Fatalf("executed = %d, want 1 (the reference run is the witness)", res.Stats.SchedulesExecuted)
	}
	w := res.Witness
	if w == nil || w.Explanation == nil {
		t.Fatal("violation outcome without witness/explanation")
	}
	chain := w.Explanation.Chain
	if len(chain) == 0 || chain[len(chain)-1].Kind != explain.StepViolation {
		t.Fatalf("witness chain does not terminate in a violation step: %+v", chain)
	}
}

// binom must pin to the saturation cap the moment any intermediate
// product saturates — dividing a capped value would fabricate a
// precise-looking sub-cap count that downstream saturating arithmetic
// trusts as exact.
func TestBinomSaturationPinsToCap(t *testing.T) {
	if got := binom(10, 3); got != 120 {
		t.Fatalf("binom(10,3) = %d, want 120", got)
	}
	if got := binom(200, 100); got != satCap {
		t.Fatalf("binom(200,100) = %d, want satCap %d", got, satCap)
	}
	// Monotonicity across the saturation boundary: once saturated, wider
	// inputs must never report a smaller (seemingly exact) space.
	prev := uint64(0)
	for n := 60; n <= 70; n++ {
		got := binom(n, n/2)
		if got < prev {
			t.Fatalf("binom(%d,%d) = %d < binom(%d,%d) = %d: saturation leaked a sub-cap value",
				n, n/2, got, n-1, (n-1)/2, prev)
		}
		prev = got
	}
	if got := chooseUpTo(500, 250); got != satCap {
		t.Fatalf("chooseUpTo(500,250) = %d, want satCap %d", got, satCap)
	}
}

// The window bound clips the choice points: starting the window after
// the 56261 trigger delivery makes the same bound certify.
func TestExploreWindowClipsChoicePoints(t *testing.T) {
	full := Run(Config{
		Target: workload.Target56261(), Seed: 1,
		Bounds: Bounds{Drops: 1}, POR: true, Snapshot: false,
	})
	if full.Outcome != OutcomeViolation {
		t.Fatalf("full window: outcome = %s, want violation", full.Outcome)
	}
	clipped := Run(Config{
		Target: workload.Target56261(), Seed: 1,
		Bounds: Bounds{Start: 2_000_000_000, Drops: 1}, POR: true, Snapshot: false,
	})
	if clipped.Outcome != OutcomeCertificate {
		t.Fatalf("clipped window: outcome = %s, want certificate", clipped.Outcome)
	}
	if clipped.Stats.ChoicePoints >= full.Stats.ChoicePoints {
		t.Fatalf("window did not clip choice points: %d >= %d",
			clipped.Stats.ChoicePoints, full.Stats.ChoicePoints)
	}
}
