package core

import (
	"math"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// NoEffect is the sentinel EarliestEffect returns for plans with no
// prefix constraint at all (e.g. NopPlan): any checkpoint precedes it.
const NoEffect = sim.Time(math.MaxInt64)

// EarliestEffect returns the earliest virtual time at which the plan can
// influence the execution, given the reference trace the plan was mined
// from. A prefix checkpoint taken at or before this instant is safe to
// fork from: the checkpointed prefix is byte-identical between the
// unperturbed reference run and a full replay under the plan.
//
// The second return is false when the plan's effect time cannot be
// bounded (an unknown plan type) — such plans must run as full replays.
//
// Occurrence-targeted gap plans are special: their interceptor counts
// matching deliveries from the moment it is installed, so a fork must be
// taken before the FIRST matching delivery of the reference run (not
// merely before the dropped occurrence) or the fork's count would start
// late and drop the wrong event.
func EarliestEffect(p Plan, ref *trace.Trace) (sim.Time, bool) {
	switch p := p.(type) {
	case StalenessPlan:
		return p.From, true
	case GapPlan:
		if p.Occurrence > 0 {
			return firstDeliveryMatch(ref, p.Victim, p.Kind, p.Name, p.Type), true
		}
		return p.From, true
	case DropDeliveryPlan:
		// Delivery-counted gates start counting at the first matching
		// arrival; the reference delivery's send time bounds it from below.
		return firstDeliveryMatch(ref, p.Victim, p.Kind, p.Name, p.Type), true
	case DelayDeliveryPlan:
		return firstDeliveryMatch(ref, p.Victim, p.Kind, p.Name, p.Type), true
	case TimeTravelPlan:
		return p.FreezeAt, true
	case CrashPlan:
		return p.At, true
	case PartitionPlan:
		return p.From, true
	case SlowLinkPlan:
		return p.From, true
	case FlakyLinkPlan:
		return p.From, true
	case CompactionPressurePlan:
		return p.At, true
	case SequencePlan:
		eff := NoEffect
		for _, sub := range p.Plans {
			t, ok := EarliestEffect(sub, ref)
			if !ok {
				return 0, false
			}
			if t < eff {
				eff = t
			}
		}
		return eff, true
	case NopPlan:
		return NoEffect, true
	default:
		return 0, false
	}
}

// firstDeliveryMatch returns the send time of the first reference-run
// delivery an occurrence-counting plan (send-side gap interceptor or
// delivery-side gate) would count, or NoEffect when the reference contains
// none (then the counter state cannot diverge before some other
// perturbation does).
func firstDeliveryMatch(ref *trace.Trace, victim sim.NodeID, kind cluster.Kind, name string, typ apiserver.EventType) sim.Time {
	if ref == nil {
		return 0 // unknown reference: only the build boundary is safe
	}
	for _, d := range ref.Deliveries {
		if d.To != victim || d.Kind != kind || d.Name != name {
			continue
		}
		if typ != "" && d.EventType != typ {
			continue
		}
		return d.Time
	}
	return NoEffect
}
