// Package store implements an etcd-like, logically centralized,
// strongly-consistent data store: an MVCC keyspace with global revisions,
// compare-and-swap transactions, leases, watch streams with start
// revisions, and compaction of the retained event window.
//
// The store is the system's ground truth (H, S) in the paper's model: every
// committed mutation appends an event to H, and S is the materialized
// keyspace. All other components (apiservers, informer caches, controllers)
// observe the store only through reads and watch notifications — i.e.
// through partial histories.
//
// The Store type itself is a passive, deterministic, single-threaded data
// structure; internal/store.Server wraps it as a simulated network actor,
// and internal/raftlite replicates its command log across simulated
// replicas.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/history"
)

// Errors returned by store operations.
var (
	// ErrCompacted is returned when a read or watch requests a revision
	// older than the compacted window — the observability gap of paper
	// §4.2.3: "requests for earlier events may fail when only recent events
	// in H are saved by design".
	ErrCompacted = errors.New("store: required revision has been compacted")
	// ErrFutureRevision is returned when a read requests a revision newer
	// than the store has committed.
	ErrFutureRevision = errors.New("store: required revision is in the future")
	// ErrTxnFailed is returned by Txn when guards fail and there is no
	// failure branch.
	ErrTxnFailed = errors.New("store: transaction guards failed")
	// ErrLeaseNotFound is returned for operations on unknown leases.
	ErrLeaseNotFound = errors.New("store: lease not found")
	// ErrKeyNotFound is returned by deletes of absent keys.
	ErrKeyNotFound = errors.New("store: key not found")
)

// KV is one key-value pair with its MVCC metadata.
type KV struct {
	Key            string
	Value          []byte
	CreateRevision int64
	ModRevision    int64
	Version        int64
	Lease          LeaseID // 0 if not attached to a lease
}

func (kv KV) clone() KV {
	kv.Value = append([]byte(nil), kv.Value...)
	return kv
}

// WatchNotify delivers committed events to a watcher, in commit order.
// Handlers run synchronously inside the commit; network-facing wrappers
// (Server) forward them as messages so delivery becomes asynchronous and
// perturbable.
type WatchNotify func(events []history.Event)

type watcher struct {
	id     int64
	prefix string
	notify WatchNotify
}

// Store is the MVCC keyspace. Not safe for concurrent use; the simulated
// world is single-threaded by design.
type Store struct {
	rev         int64
	compacted   int64 // all events with revision < compacted+1 are dropped... (first retained revision - 1)
	kvs         map[string]KV
	hist        *history.History
	watchers    map[int64]*watcher
	nextWatch   int64
	leases      map[LeaseID]*Lease
	nextLease   LeaseID
	leaseKeys   map[LeaseID]map[string]bool
	retainMax   int // max retained history events; 0 = unlimited
	notifyHooks []func([]history.Event)
	now         int64 // virtual time stamped on committed events

	// decoded memoizes DecodedGet/DecodedRange results per key: values are
	// immutable per ModRevision, so a decode is valid until the key is
	// written again. Pure cache — never part of snapshots or equality.
	decoded map[string]decodedVal
	// decodedRanges memoizes whole DecodedRange results per prefix, valid
	// while the store revision is unchanged (oracles range every tick and
	// most ticks see no commits).
	decodedRanges map[string]rangeMemo
	// watcherOrder caches the sorted watcher IDs used on every commit;
	// rebuilt only when the watcher set changes.
	watcherOrder []int64
}

type decodedVal struct {
	rev int64
	v   any
}

type rangeMemo struct {
	rev  int64
	vals []any
}

// New returns an empty store at revision 0.
func New() *Store {
	return &Store{
		kvs:       make(map[string]KV),
		hist:      history.New(),
		watchers:  make(map[int64]*watcher),
		leases:    make(map[LeaseID]*Lease),
		leaseKeys: make(map[LeaseID]map[string]bool),
	}
}

// SetRetainLimit bounds the retained history window to n events; once
// exceeded the store auto-compacts its oldest events, modelling the rolling
// watch window of the Kubernetes apiserver ([7]). n = 0 disables the bound.
func (s *Store) SetRetainLimit(n int) { s.retainMax = n }

// Revision returns the latest committed revision.
func (s *Store) Revision() int64 { return s.rev }

// CompactedRevision returns the newest revision that has been compacted
// away (0 when nothing was compacted).
func (s *Store) CompactedRevision() int64 { return s.compacted }

// History returns a clone of the retained history window.
func (s *Store) History() *history.History { return s.hist.Clone() }

// State returns the materialized current state as a history.State clone.
func (s *Store) State() *history.State {
	st := history.NewState()
	// Rebuild from kvs to include keys whose events were compacted.
	for _, kv := range s.kvs {
		st.Apply(history.Event{
			Revision: kv.ModRevision, Type: history.Put, Key: kv.Key, Value: kv.Value,
		})
	}
	st.Revision = s.rev
	return st
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.kvs) }

// Get returns the current value of key and the store revision.
func (s *Store) Get(key string) (KV, int64, bool) {
	kv, ok := s.kvs[key]
	if !ok {
		return KV{}, s.rev, false
	}
	return kv.clone(), s.rev, true
}

// Range returns all live keys with the given prefix, sorted, plus the store
// revision at which the snapshot was taken.
func (s *Store) Range(prefix string) ([]KV, int64) {
	var out []KV
	for k, kv := range s.kvs {
		if strings.HasPrefix(k, prefix) {
			out = append(out, kv.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, s.rev
}

// DecodedGet returns the decode of key's current value, memoized per
// (key, ModRevision): decode runs only when the key has been written since
// the last call. The returned value is shared across calls and callers —
// it MUST be treated as immutable. A store expects one decoder per key.
func (s *Store) DecodedGet(key string, decode func(value []byte, rev int64) (any, error)) (any, bool) {
	kv, ok := s.kvs[key]
	if !ok {
		return nil, false
	}
	return s.decodeMemo(key, kv, decode)
}

// DecodedRange returns the memoized decodes of all live keys under prefix,
// in key order. Same memoization and immutability contract as DecodedGet
// (the returned slice is shared too); values failing to decode are skipped.
func (s *Store) DecodedRange(prefix string, decode func(value []byte, rev int64) (any, error)) []any {
	if m, ok := s.decodedRanges[prefix]; ok && m.rev == s.rev {
		return m.vals
	}
	keys := make([]string, 0, 8)
	for k := range s.kvs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]any, 0, len(keys))
	for _, k := range keys {
		if v, ok := s.decodeMemo(k, s.kvs[k], decode); ok {
			out = append(out, v)
		}
	}
	if s.decodedRanges == nil {
		s.decodedRanges = make(map[string]rangeMemo)
	}
	s.decodedRanges[prefix] = rangeMemo{rev: s.rev, vals: out}
	return out
}

func (s *Store) decodeMemo(key string, kv KV, decode func(value []byte, rev int64) (any, error)) (any, bool) {
	if d, ok := s.decoded[key]; ok && d.rev == kv.ModRevision {
		return d.v, true
	}
	v, err := decode(kv.Value, kv.ModRevision)
	if err != nil {
		return nil, false
	}
	if s.decoded == nil {
		s.decoded = make(map[string]decodedVal)
	}
	s.decoded[key] = decodedVal{rev: kv.ModRevision, v: v}
	return v, true
}

// Put writes key=value and returns the new revision.
func (s *Store) Put(key string, value []byte) int64 {
	return s.putWithLease(key, value, 0)
}

// PutWithLease writes key=value attached to a lease. A zero lease detaches.
func (s *Store) PutWithLease(key string, value []byte, id LeaseID) (int64, error) {
	if id != 0 {
		if _, ok := s.leases[id]; !ok {
			return 0, ErrLeaseNotFound
		}
	}
	return s.putWithLease(key, value, id), nil
}

func (s *Store) putWithLease(key string, value []byte, id LeaseID) int64 {
	prev, existed := s.kvs[key]
	s.rev++
	kv := KV{
		Key:            key,
		Value:          append([]byte(nil), value...),
		ModRevision:    s.rev,
		CreateRevision: s.rev,
		Version:        1,
		Lease:          id,
	}
	var prevRev int64
	if existed {
		kv.CreateRevision = prev.CreateRevision
		kv.Version = prev.Version + 1
		prevRev = prev.ModRevision
		if prev.Lease != 0 && prev.Lease != id {
			s.detachLease(prev.Lease, key)
		}
	}
	if id != 0 {
		s.attachLease(id, key)
	}
	s.kvs[key] = kv
	s.commit(history.Event{
		Revision: s.rev, Type: history.Put, Key: key,
		Value: append([]byte(nil), value...), PrevRev: prevRev,
	})
	return s.rev
}

// Delete removes key, returning the deletion revision.
func (s *Store) Delete(key string) (int64, error) {
	prev, ok := s.kvs[key]
	if !ok {
		return s.rev, ErrKeyNotFound
	}
	if prev.Lease != 0 {
		s.detachLease(prev.Lease, key)
	}
	delete(s.kvs, key)
	delete(s.decoded, key)
	s.rev++
	s.commit(history.Event{
		Revision: s.rev, Type: history.Delete, Key: key, PrevRev: prev.ModRevision,
	})
	return s.rev, nil
}

func (s *Store) commit(e history.Event) {
	e.Time = s.now
	if err := s.hist.Append(e); err != nil {
		// Revisions are assigned monotonically by this store; a failure
		// here is a programming error, not a runtime condition.
		panic(fmt.Sprintf("store: history append: %v", err))
	}
	if s.retainMax > 0 && s.hist.Len() > s.retainMax {
		first := s.hist.At(s.hist.Len() - s.retainMax).Revision
		s.CompactTo(first)
	}
	batch := []history.Event{e}
	for _, id := range s.watcherIDs() {
		w, ok := s.watchers[id]
		if !ok {
			continue // unwatched by an earlier notify in this commit
		}
		if strings.HasPrefix(e.Key, w.prefix) {
			w.notify(batch)
		}
	}
	for _, hook := range s.notifyHooks {
		hook(batch)
	}
}

// watcherIDs returns the watcher IDs in ascending order; the sorted slice
// is cached (commits are the hot path) and invalidated by Watch/Unwatch.
func (s *Store) watcherIDs() []int64 {
	if s.watcherOrder == nil {
		ids := make([]int64, 0, len(s.watchers))
		for id := range s.watchers {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		s.watcherOrder = ids
	}
	return s.watcherOrder
}

// SetNow sets the virtual time recorded on subsequently committed events;
// the Server (or a test) advances it.
func (s *Store) SetNow(t int64) { s.now = t }

// CompactTo drops retained history strictly before rev. Watches started
// below rev will fail with ErrCompacted.
func (s *Store) CompactTo(rev int64) int {
	if rev <= s.compacted+1 {
		return 0
	}
	dropped := s.hist.Compact(rev)
	if rev-1 > s.compacted {
		s.compacted = rev - 1
	}
	return dropped
}

// AddNotifyHook installs a hook called after watcher notification on every
// commit. Hooks run in registration order; the trace recorder and the
// event-driven oracles both use this.
func (s *Store) AddNotifyHook(h func([]history.Event)) {
	s.notifyHooks = append(s.notifyHooks, h)
}
