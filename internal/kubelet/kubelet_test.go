package kubelet_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/infra"
	"repro/internal/kubelet"
	"repro/internal/sim"
)

func newCluster(t *testing.T, safeRestart bool) *infra.Cluster {
	t.Helper()
	opts := infra.DefaultOptions()
	opts.EnableScheduler = false
	opts.EnableVolumeController = false
	opts.KubeletSafeRestart = safeRestart
	c := infra.New(opts)
	c.RunFor(500 * sim.Millisecond)
	return c
}

func TestRegistersNodeWithHeartbeat(t *testing.T) {
	c := newCluster(t, false)
	nodes := c.GroundTruth(cluster.KindNode)
	if len(nodes) != 2 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	hb1 := nodes[0].Meta.Labels["heartbeat"]
	c.RunFor(sim.Second)
	nodes = c.GroundTruth(cluster.KindNode)
	if nodes[0].Meta.Labels["heartbeat"] == hb1 {
		t.Fatal("heartbeat not refreshed")
	}
	if !nodes[0].Node.Ready {
		t.Fatal("node not ready")
	}
}

func TestStartsAndReportsPod(t *testing.T) {
	c := newCluster(t, false)
	c.Admin.CreatePod("p1", "k1", "img-1", nil)
	c.RunFor(sim.Second)
	running := c.Hosts["k1"].Running()
	ctr, ok := running["p1"]
	if !ok {
		t.Fatal("container not started")
	}
	if ctr.Image != "img-1" {
		t.Fatalf("image = %q", ctr.Image)
	}
	pods := c.GroundTruth(cluster.KindPod)
	if pods[0].Pod.Phase != cluster.PodRunning {
		t.Fatalf("phase = %s", pods[0].Pod.Phase)
	}
	if c.Kubelet["k1"].Starts != 1 {
		t.Fatalf("starts = %d", c.Kubelet["k1"].Starts)
	}
}

func TestStopsAndFinalizesTerminatingPod(t *testing.T) {
	c := newCluster(t, false)
	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(sim.Second)
	c.Admin.MarkPodDeleted("p1", nil)
	c.RunFor(sim.Second)
	if len(c.Hosts["k1"].Running()) != 0 {
		t.Fatal("container survived deletion mark")
	}
	if len(c.GroundTruth(cluster.KindPod)) != 0 {
		t.Fatal("pod object not finalized")
	}
	if c.Kubelet["k1"].Stops != 1 {
		t.Fatalf("stops = %d", c.Kubelet["k1"].Stops)
	}
}

func TestUIDChangeRestartsContainer(t *testing.T) {
	c := newCluster(t, false)
	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(sim.Second)
	uid1 := c.Hosts["k1"].Running()["p1"].PodUID

	// Delete and re-create under the same name (new incarnation).
	c.Admin.MarkPodDeleted("p1", nil)
	c.RunFor(sim.Second)
	c.Admin.CreatePod("p1", "k1", "v2", nil)
	c.RunFor(sim.Second)
	ctr, ok := c.Hosts["k1"].Running()["p1"]
	if !ok {
		t.Fatal("new incarnation not running")
	}
	if ctr.PodUID == uid1 {
		t.Fatal("container kept the old incarnation's UID")
	}
	if ctr.Image != "v2" {
		t.Fatalf("image = %q", ctr.Image)
	}
}

func TestContainersSurviveKubeletProcessCrash(t *testing.T) {
	c := newCluster(t, false)
	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(sim.Second)
	if err := c.World.Crash(kubelet.NodeID("k1")); err != nil {
		t.Fatal(err)
	}
	c.RunFor(sim.Second)
	if _, ok := c.Hosts["k1"].Running()["p1"]; !ok {
		t.Fatal("container died with the kubelet process")
	}
	if err := c.World.Restart(kubelet.NodeID("k1")); err != nil {
		t.Fatal(err)
	}
	c.RunFor(sim.Second)
	// Still exactly one container; the restarted kubelet adopted it.
	if got := c.Kubelet["k1"].Starts; got != 1 {
		t.Fatalf("restart re-started the container: starts=%d", got)
	}
}

func TestUpstreamFailoverSteering(t *testing.T) {
	c := newCluster(t, false)
	kl := c.Kubelet["k1"]
	if kl.Upstream() != infra.APIServerID(0) {
		t.Fatalf("initial upstream = %s", kl.Upstream())
	}
	kl.SetRestartUpstream(infra.APIServerID(1))
	if kl.Upstream() != infra.APIServerID(1) {
		t.Fatalf("upstream after steer = %s", kl.Upstream())
	}
	kl.SetRestartUpstream("api-does-not-exist")
	if kl.Upstream() != infra.APIServerID(1) {
		t.Fatal("unknown upstream changed the index")
	}
	kl.SetUpstreamIndex(0)
	if kl.Upstream() != infra.APIServerID(0) {
		t.Fatalf("SetUpstreamIndex failed: %s", kl.Upstream())
	}
}

func TestSafeRestartWaitsForQuorumWhenStoreUnreachable(t *testing.T) {
	c := newCluster(t, true)
	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(sim.Second)

	// Freeze api-2, migrate p1 away, and restart k1's kubelet against the
	// stale api-2 while it cannot reach the store: the safe kubelet must
	// do *nothing* rather than act on the frozen cache.
	c.World.Network().Partition(infra.APIServerID(1), infra.StoreID)
	c.Admin.MigratePod("p1", "k2", "v1", nil)
	c.RunFor(2 * sim.Second)
	kl := c.Kubelet["k1"]
	_ = c.World.Crash(kl.ID())
	kl.SetRestartUpstream(infra.APIServerID(1))
	c.RunFor(100 * sim.Millisecond)
	_ = c.World.Restart(kl.ID())
	c.RunFor(2 * sim.Second)
	if _, ok := c.Hosts["k1"].Running()["p1"]; ok {
		t.Fatal("safe kubelet acted on unverified state")
	}
	// Once the apiserver can reach the store again, the quorum list
	// succeeds and the kubelet converges on the truth.
	c.World.Network().Heal(infra.APIServerID(1), infra.StoreID)
	c.RunFor(2 * sim.Second)
	if _, ok := c.Hosts["k1"].Running()["p1"]; ok {
		t.Fatal("safe kubelet resurrected the migrated pod after heal")
	}
}

func TestHostReset(t *testing.T) {
	h := kubelet.NewHost("x")
	if len(h.RunningNames()) != 0 {
		t.Fatal("fresh host not empty")
	}
	c := newCluster(t, false)
	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(sim.Second)
	c.Hosts["k1"].Reset()
	if len(c.Hosts["k1"].Running()) != 0 {
		t.Fatal("reset host still runs containers")
	}
}
