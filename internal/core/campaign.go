package core

import (
	"fmt"

	"repro/internal/infra"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Topology tells the planner what exists in the target cluster: which
// apiservers can be frozen, which components can be crashed, and which of
// those can be steered to a different upstream on restart.
type Topology struct {
	APIServers  []sim.NodeID
	Restartable []sim.NodeID
	Resteerable []sim.NodeID
}

// Target is one system-plus-workload under test: a deterministic cluster
// builder, a workload that schedules admin operations on the virtual
// clock, a run horizon, and the oracle whose violation constitutes
// "bug found".
type Target struct {
	// Name identifies the target bug (e.g. "k8s-59848").
	Name string
	// Bug is the oracle name whose violation counts as detection.
	Bug string
	// Build constructs a fresh cluster with the buggy configuration.
	Build func(seed int64) *infra.Cluster
	// Workload schedules the admin operations that exercise the system.
	Workload func(c *infra.Cluster)
	// Horizon is how long each execution runs (virtual time).
	Horizon sim.Duration
	// Topology describes the fault surface.
	Topology Topology
}

// Strategy generates an ordered list of perturbation plans for a target,
// optionally informed by a reference trace.
type Strategy interface {
	Name() string
	Plans(t Target, ref *trace.Trace) []Plan
}

// Execution is the outcome of running one plan against a target.
type Execution struct {
	Plan       Plan
	Seed       int64 // world seed the execution was built with
	Violations []oracle.Violation
	Detected   bool // the target bug's oracle fired
	// Failed marks an execution whose harness run did not complete: the
	// plan (or the system under it) panicked. A failed execution detects
	// nothing, but must not take down the campaign (crash-safe execution).
	Failed bool
	// Hung marks an execution flagged by the event-budget watchdog: the
	// kernel exhausted its step budget before reaching the virtual-time
	// horizon — a livelocked plan (e.g. a zero-delay reschedule loop).
	Hung bool
	// Failure is the human-readable panic or watchdog report (plan ID,
	// panic value, truncated stack / steps-vs-horizon diagnosis).
	Failure string
}

// CampaignResult summarizes a bug-finding campaign.
type CampaignResult struct {
	Target     string
	Strategy   string
	PlansTotal int // plans the strategy generated
	// Executions counts every real cluster execution the campaign
	// performed: the reference run (it builds and runs a full cluster,
	// exactly like a plan execution) plus each plan execution up to and
	// including the detecting one. A campaign that detects on its very
	// first plan therefore reports Executions == 2 (reference + plan);
	// a campaign whose reference run already violates the oracle reports
	// Executions == 1.
	Executions int
	Detected   bool
	// DetectingPlan describes the first plan that triggered the bug.
	DetectingPlan  string
	FirstViolation *oracle.Violation
}

func (r CampaignResult) String() string {
	if r.Detected {
		return fmt.Sprintf("%-14s %-16s detected in %d/%d executions (%s)",
			r.Target, r.Strategy, r.Executions, r.PlansTotal, r.DetectingPlan)
	}
	return fmt.Sprintf("%-14s %-16s NOT detected in %d executions", r.Target, r.Strategy, r.Executions)
}

// Reference runs the target once unperturbed with the default seed (1)
// and returns its trace. It is the planning substrate and also a sanity
// check: a reference run that already violates the oracle makes the
// campaign meaningless.
func Reference(t Target) (*trace.Trace, []oracle.Violation) {
	return ReferenceSeed(t, 1)
}

// ReferenceSeed runs the target once unperturbed with an explicit world
// seed. Multi-seed campaigns record one reference trace per seed so plan
// coordinates (occurrence counts, commit times) match the seed they will
// be replayed under — a seed-2 campaign is an honest re-execution, not a
// replay of the seed-1 reference.
func ReferenceSeed(t Target, seed int64) (*trace.Trace, []oracle.Violation) {
	c := t.Build(seed)
	rec := trace.NewRecorder()
	rec.Attach(c.World.Network(), c.Store.Store())
	t.Workload(c)
	c.RunFor(t.Horizon)
	return rec.T, c.Violations()
}

// RunPlan executes one plan against a fresh instance of the target with
// the default seed (1).
func RunPlan(t Target, p Plan) Execution { return RunPlanSeed(t, p, 1) }

// RunPlanSeed executes one plan against a fresh instance of the target
// built with an explicit world seed.
func RunPlanSeed(t Target, p Plan, seed int64) Execution {
	c := t.Build(seed)
	p.Apply(c)
	t.Workload(c)
	c.RunFor(t.Horizon)
	return Execution{
		Plan:       p,
		Seed:       seed,
		Violations: c.Violations(),
		Detected:   c.Oracles.Violated(t.Bug),
	}
}

// RunCampaign executes the strategy's plans in order until the target bug
// is detected or maxExecutions plan executions have run. It is the serial
// reference implementation: internal/campaign's parallel engine is
// cross-checked against it. maxExecutions bounds plan executions only;
// the reference run is always performed (and counted — see
// CampaignResult.Executions).
func RunCampaign(t Target, s Strategy, maxExecutions int) CampaignResult {
	return RunCampaignSeed(t, s, maxExecutions, 1)
}

// RunCampaignSeed is RunCampaign under an explicit world seed: the
// reference trace, plan generation, and every plan execution all use the
// same seed.
func RunCampaignSeed(t Target, s Strategy, maxExecutions int, seed int64) CampaignResult {
	ref, refViolations := ReferenceSeed(t, seed)
	res := CampaignResult{Target: t.Name, Strategy: s.Name()}
	for _, v := range refViolations {
		if v.Oracle == t.Bug {
			// The bug manifests without perturbation; report detection at
			// execution 1 (the reference run).
			res.PlansTotal = 1
			res.Executions = 1
			res.Detected = true
			res.DetectingPlan = NopPlan{}.Describe()
			fv := v
			res.FirstViolation = &fv
			return res
		}
	}

	plans := s.Plans(t, ref)
	res.PlansTotal = len(plans)
	// The reference run above was a real execution; count it.
	res.Executions = 1
	for i, p := range plans {
		if maxExecutions > 0 && i >= maxExecutions {
			break
		}
		exec := RunPlanSeed(t, p, seed)
		res.Executions = i + 2 // reference + plans 0..i
		if exec.Detected {
			res.Detected = true
			res.DetectingPlan = p.Describe()
			for _, v := range exec.Violations {
				if v.Oracle == t.Bug {
					fv := v
					res.FirstViolation = &fv
					break
				}
			}
			return res
		}
	}
	return res
}

// Matrix runs every (target, strategy) pair — the Section 7 headline table.
func Matrix(targets []Target, strategies []Strategy, maxExecutions int) []CampaignResult {
	var out []CampaignResult
	for _, t := range targets {
		for _, s := range strategies {
			out = append(out, RunCampaign(t, s, maxExecutions))
		}
	}
	return out
}
