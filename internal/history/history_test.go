package history

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkEvent(rev int64, typ EventType, key, val string) Event {
	e := Event{Revision: rev, Type: typ, Key: key, Time: rev * 10}
	if typ == Put {
		e.Value = []byte(val)
	}
	return e
}

// genHistory builds a random but valid history of n events over k keys,
// tracking PrevRev per key like a real store would.
func genHistory(rng *rand.Rand, n, k int) *History {
	h := New()
	prev := make(map[string]int64)
	for rev := int64(1); rev <= int64(n); rev++ {
		key := fmt.Sprintf("key-%d", rng.Intn(k))
		if prev[key] != 0 && rng.Intn(4) == 0 {
			_ = h.Append(Event{Revision: rev, Type: Delete, Key: key, PrevRev: prev[key], Time: rev * 10})
			prev[key] = 0
			continue
		}
		_ = h.Append(Event{Revision: rev, Type: Put, Key: key,
			Value: []byte(fmt.Sprintf("v%d", rev)), PrevRev: prev[key], Time: rev * 10})
		prev[key] = rev
	}
	return h
}

// subsample keeps each event with probability p, preserving order.
func subsample(h *History, rng *rand.Rand, p float64) *History {
	out := New()
	for _, e := range h.Events() {
		if rng.Float64() < p {
			_ = out.Append(e)
		}
	}
	return out
}

func TestAppendMonotonic(t *testing.T) {
	h := New()
	if err := h.Append(mkEvent(1, Put, "a", "1")); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(mkEvent(1, Put, "a", "2")); err == nil {
		t.Fatal("duplicate revision accepted")
	}
	if err := h.Append(mkEvent(0, Put, "a", "2")); err == nil {
		t.Fatal("zero revision accepted")
	}
	if err := h.Append(mkEvent(5, Put, "a", "2")); err != nil {
		t.Fatal(err)
	}
	if h.LastRevision() != 5 || h.Len() != 2 {
		t.Fatalf("len=%d last=%d", h.Len(), h.LastRevision())
	}
}

func TestSinceAndFind(t *testing.T) {
	h := New()
	for _, rev := range []int64{2, 4, 6, 8} {
		_ = h.Append(mkEvent(rev, Put, "k", "v"))
	}
	since := h.Since(4)
	if len(since) != 2 || since[0].Revision != 6 || since[1].Revision != 8 {
		t.Fatalf("Since(4) = %v", since)
	}
	if len(h.Since(8)) != 0 {
		t.Fatal("Since(last) should be empty")
	}
	if len(h.Since(0)) != 4 {
		t.Fatal("Since(0) should return everything")
	}
	if e, ok := h.Find(6); !ok || e.Revision != 6 {
		t.Fatalf("Find(6) = %v %v", e, ok)
	}
	if _, ok := h.Find(5); ok {
		t.Fatal("Find(5) should miss")
	}
}

func TestCompactDropsPrefix(t *testing.T) {
	h := New()
	for rev := int64(1); rev <= 10; rev++ {
		_ = h.Append(mkEvent(rev, Put, "k", "v"))
	}
	dropped := h.Compact(6)
	if dropped != 5 {
		t.Fatalf("dropped = %d, want 5", dropped)
	}
	if h.FirstRevision() != 6 || h.LastRevision() != 10 {
		t.Fatalf("first=%d last=%d", h.FirstRevision(), h.LastRevision())
	}
}

func TestIsPartialOf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	full := genHistory(rng, 50, 5)
	part := subsample(full, rng, 0.5)
	if !part.IsPartialOf(full) {
		t.Fatal("subsample must be a partial history")
	}
	if !full.IsPartialOf(full) {
		t.Fatal("history is a partial history of itself")
	}
	if !New().IsPartialOf(full) {
		t.Fatal("empty history is a partial history of anything")
	}

	// Fabricated event with an existing revision but different content.
	fake := New()
	e := full.At(3)
	e.Value = []byte("tampered")
	_ = fake.Append(e)
	if fake.IsPartialOf(full) {
		t.Fatal("tampered event accepted as partial history")
	}

	// Event with a revision that never existed.
	fake2 := New()
	_ = fake2.Append(mkEvent(9999, Put, "x", "y"))
	if fake2.IsPartialOf(full) {
		t.Fatal("unknown revision accepted as partial history")
	}
}

func TestMissingFromIsGapsNotLag(t *testing.T) {
	full := New()
	for rev := int64(1); rev <= 10; rev++ {
		_ = full.Append(mkEvent(rev, Put, "k", "v"))
	}
	part := New()
	_ = part.Append(full.At(0)) // rev 1
	_ = part.Append(full.At(4)) // rev 5
	missing := part.MissingFrom(full)
	// Gaps are revs 2,3,4 (below frontier 5); revs 6..10 are lag, not gaps.
	if len(missing) != 3 {
		t.Fatalf("missing = %v", missing)
	}
	for i, rev := range []int64{2, 3, 4} {
		if missing[i].Revision != rev {
			t.Fatalf("missing[%d] = %v, want rev %d", i, missing[i], rev)
		}
	}
}

func TestPropertySubsampleAlwaysPartial(t *testing.T) {
	f := func(seed int64, pNum uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		full := genHistory(rng, 80, 6)
		p := float64(pNum%100) / 100
		part := subsample(full, rng, p)
		if !part.IsPartialOf(full) {
			return false
		}
		// gaps + observed = all events up to the frontier
		missing := part.MissingFrom(full)
		frontier := part.LastRevision()
		upTo := 0
		for _, e := range full.Events() {
			if e.Revision <= frontier {
				upTo++
			}
		}
		return len(missing)+part.Len() == upTo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMaterializeEqualsIncremental(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		full := genHistory(rng, 60, 5)
		s1 := Materialize(full)
		s2 := NewState()
		for _, e := range full.Events() {
			s2.Apply(e)
		}
		return s1.Equal(s2) && s1.Revision == full.LastRevision()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeduplicatesByRevision(t *testing.T) {
	s := NewState()
	e := mkEvent(3, Put, "a", "x")
	if !s.Apply(e) {
		t.Fatal("first apply rejected")
	}
	if s.Apply(e) {
		t.Fatal("duplicate apply accepted")
	}
	if s.Apply(mkEvent(2, Put, "a", "older")) {
		t.Fatal("older event accepted")
	}
	it, _ := s.Get("a")
	if string(it.Value) != "x" {
		t.Fatalf("value = %q", it.Value)
	}
}

func TestStateVersionAndCreateRevision(t *testing.T) {
	s := NewState()
	s.Apply(Event{Revision: 1, Type: Put, Key: "a", Value: []byte("1")})
	s.Apply(Event{Revision: 2, Type: Put, Key: "a", Value: []byte("2"), PrevRev: 1})
	it, _ := s.Get("a")
	if it.CreateRevision != 1 || it.ModRevision != 2 || it.Version != 2 {
		t.Fatalf("item = %+v", it)
	}
	s.Apply(Event{Revision: 3, Type: Delete, Key: "a", PrevRev: 2})
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	// Re-create: new incarnation.
	s.Apply(Event{Revision: 4, Type: Put, Key: "a", Value: []byte("3")})
	it, _ = s.Get("a")
	if it.CreateRevision != 4 || it.Version != 1 {
		t.Fatalf("reincarnated item = %+v", it)
	}
}

func TestDiffIsLossy(t *testing.T) {
	// The §4.2.3 argument: mark-then-delete between two snapshots shows up
	// only as a disappearance; the intermediate "marked" event is invisible.
	full := New()
	_ = full.Append(mkEvent(1, Put, "pod", "running"))
	s0 := Materialize(full)
	_ = full.Append(mkEvent(2, Put, "pod", "terminating")) // e1: marked
	_ = full.Append(mkEvent(3, Delete, "pod", ""))         // e2: deleted
	s1 := Materialize(full)

	deltas := Diff(s0, s1)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %v", deltas)
	}
	d := deltas[0]
	if d.After != nil || d.Before == nil {
		t.Fatalf("delta = %+v", d)
	}
	if string(d.Before.Value) != "running" {
		t.Fatalf("before = %q; the 'terminating' intermediate must be unobservable", d.Before.Value)
	}
}

func TestDiffOrderingAndKinds(t *testing.T) {
	old := NewState()
	old.Apply(mkEvent(1, Put, "a", "1"))
	old.Apply(mkEvent(2, Put, "b", "1"))
	new := old.Clone()
	new.Apply(Event{Revision: 3, Type: Delete, Key: "a", PrevRev: 1})
	new.Apply(Event{Revision: 4, Type: Put, Key: "b", Value: []byte("2"), PrevRev: 2})
	new.Apply(mkEvent(5, Put, "c", "1"))
	deltas := Diff(old, new)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %+v", deltas)
	}
	if deltas[0].Key != "a" || deltas[0].After != nil {
		t.Fatalf("delta a = %+v", deltas[0])
	}
	if deltas[1].Key != "b" || deltas[1].Before == nil || deltas[1].After == nil {
		t.Fatalf("delta b = %+v", deltas[1])
	}
	if deltas[2].Key != "c" || deltas[2].Before != nil {
		t.Fatalf("delta c = %+v", deltas[2])
	}
}

func TestMeasureDivergence(t *testing.T) {
	full := New()
	for rev := int64(1); rev <= 10; rev++ {
		_ = full.Append(mkEvent(rev, Put, "k", "v"))
	}
	part := New()
	_ = part.Append(full.At(0))
	_ = part.Append(full.At(2)) // rev 3; gap at rev 2
	d := Measure(part, full)
	if d.LagRevisions != 7 {
		t.Fatalf("lag = %d, want 7", d.LagRevisions)
	}
	if d.MissingEvents != 1 {
		t.Fatalf("missing = %d, want 1", d.MissingEvents)
	}
	if d.LagTime != 70 { // times are rev*10
		t.Fatalf("lagTime = %d", d.LagTime)
	}
	if d.Current() {
		t.Fatal("diverged view reported current")
	}
	if !Measure(full.Clone(), full).Current() {
		t.Fatal("identical view reported diverged")
	}
}

func TestObservationLogTimeTravel(t *testing.T) {
	var l ObservationLog
	for _, rev := range []int64{1, 2, 5, 3, 4, 6, 2} {
		l.Record(Observation{Revision: rev})
	}
	eps := l.TimeTravels()
	if len(eps) != 3 {
		t.Fatalf("episodes = %+v", eps)
	}
	// rev 3 after max 5, rev 4 after max 5, rev 2 after max 6.
	if eps[0].Revision != 3 || eps[0].MaxSeen != 5 {
		t.Fatalf("ep0 = %+v", eps[0])
	}
	if eps[2].Revision != 2 || eps[2].MaxSeen != 6 {
		t.Fatalf("ep2 = %+v", eps[2])
	}
	if l.MaxRegression() != 4 { // 6 - 2
		t.Fatalf("maxRegression = %d", l.MaxRegression())
	}
}

func TestObservationLogMonotone(t *testing.T) {
	var l ObservationLog
	for rev := int64(1); rev <= 5; rev++ {
		l.Record(Observation{Revision: rev})
	}
	if len(l.TimeTravels()) != 0 || l.MaxRegression() != 0 {
		t.Fatal("monotone log reported time travel")
	}
}

func TestEpochsSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	full := genHistory(rng, 10, 3)
	eps := Epochs(full, 4)
	if len(eps) != 3 {
		t.Fatalf("epochs = %d, want 3", len(eps))
	}
	if len(eps[0].Events) != 4 || len(eps[2].Events) != 2 {
		t.Fatalf("epoch sizes: %d %d %d", len(eps[0].Events), len(eps[1].Events), len(eps[2].Events))
	}
	if eps[1].Index != 1 {
		t.Fatalf("epoch index = %d", eps[1].Index)
	}
}

func TestEpochVisibility(t *testing.T) {
	full := New()
	for rev := int64(1); rev <= 8; rev++ {
		_ = full.Append(mkEvent(rev, Put, "k", "v"))
	}
	// View sees epoch 0 fully (1..4) and epoch 1 partially (5 only): torn.
	view := New()
	for _, rev := range []int64{1, 2, 3, 4, 5} {
		e, _ := full.Find(rev)
		_ = view.Append(e)
	}
	viol := CheckEpochVisibility(view, full, 4)
	if len(viol) != 1 || viol[0].Seen != 1 || viol[0].Expected != 4 {
		t.Fatalf("violations = %+v", viol)
	}

	fixed := TruncateToEpochBoundary(view, full, 4)
	if fixed.LastRevision() != 4 {
		t.Fatalf("truncated frontier = %d, want 4", fixed.LastRevision())
	}
	if v := CheckEpochVisibility(fixed, full, 4); len(v) != 0 {
		t.Fatalf("truncated view still torn: %+v", v)
	}
}

func TestPropertyEpochTruncationSound(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		full := genHistory(rng, 40, 4)
		size := int(sz%7) + 1
		view := subsample(full, rng, 0.7)
		// A subsampled view may be torn, but gap-free prefixes truncated to
		// epoch boundaries must never be torn.
		prefix := New()
		for _, e := range full.Events() {
			if e.Revision > view.LastRevision() {
				break
			}
			_ = prefix.Append(e)
		}
		fixed := TruncateToEpochBoundary(prefix, full, size)
		return len(CheckEpochVisibility(fixed, full, size)) == 0 && fixed.IsPartialOf(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	h := New()
	_ = h.Append(mkEvent(1, Put, "a", "1"))
	c := h.Clone()
	_ = c.Append(mkEvent(2, Put, "b", "2"))
	if h.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: %d %d", h.Len(), c.Len())
	}

	s := Materialize(h)
	cs := s.Clone()
	cs.Apply(mkEvent(2, Put, "a", "mutated"))
	it, _ := s.Get("a")
	if string(it.Value) != "1" {
		t.Fatal("state clone not deep")
	}
}

func TestFromEventsValidates(t *testing.T) {
	if _, err := FromEvents([]Event{mkEvent(2, Put, "a", "1"), mkEvent(1, Put, "b", "2")}); err == nil {
		t.Fatal("out-of-order events accepted")
	}
	h, err := FromEvents([]Event{mkEvent(1, Put, "a", "1"), mkEvent(2, Put, "b", "2")})
	if err != nil || h.Len() != 2 {
		t.Fatalf("valid events rejected: %v", err)
	}
}
