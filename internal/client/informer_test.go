package client

import (
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
)

// comp is a minimal component hosting a Conn.
type comp struct {
	conn *Conn
}

func (c *comp) HandleMessage(m *sim.Message) { c.conn.HandleMessage(m) }

type fixture struct {
	w    *sim.World
	st   *store.Server
	api1 *apiserver.Server
	api2 *apiserver.Server
	c    *comp
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	f := &fixture{w: w}
	f.st = store.NewServer(w, "etcd", store.New())
	f.api1 = apiserver.New(w, "api-1", apiserver.DefaultConfig("etcd"))
	f.api2 = apiserver.New(w, "api-2", apiserver.DefaultConfig("etcd"))
	f.c = &comp{}
	f.c.conn = NewConn(w, "comp", "api-1", 300*sim.Millisecond)
	w.Network().Register("comp", f.c)
	w.Kernel().RunFor(100 * sim.Millisecond)
	return f
}

// create writes a pod via the component's conn and settles the world.
func (f *fixture) create(t *testing.T, name, node string) *cluster.Object {
	t.Helper()
	var out *cluster.Object
	var outErr error
	done := false
	f.c.conn.Create(cluster.NewPod(name, "uid-"+name, cluster.PodSpec{NodeName: node}),
		func(o *cluster.Object, err error) { out, outErr, done = o, err, true })
	for !done && f.w.Kernel().Step() {
	}
	if outErr != nil {
		t.Fatalf("create %s: %v", name, outErr)
	}
	return out
}

type countingHandler struct {
	adds, updates, deletes int
	lastAdd                string
}

func (h *countingHandler) OnAdd(o *cluster.Object)       { h.adds++; h.lastAdd = o.Meta.Name }
func (h *countingHandler) OnUpdate(_, _ *cluster.Object) { h.updates++ }
func (h *countingHandler) OnDelete(o *cluster.Object)    { h.deletes++ }

func TestInformerSyncAndStream(t *testing.T) {
	f := newFixture(t)
	f.create(t, "p1", "k1")
	f.w.Kernel().RunFor(50 * sim.Millisecond)

	inf := NewInformer(f.c.conn, cluster.KindPod, InformerConfig{})
	h := &countingHandler{}
	inf.AddHandler(h)
	inf.Run()
	f.w.Kernel().RunFor(100 * sim.Millisecond)

	if !inf.Synced() || inf.Len() != 1 || h.adds != 1 {
		t.Fatalf("after sync: synced=%v len=%d adds=%d", inf.Synced(), inf.Len(), h.adds)
	}
	// Live stream.
	f.create(t, "p2", "k2")
	f.w.Kernel().RunFor(100 * sim.Millisecond)
	if inf.Len() != 2 || h.adds != 2 {
		t.Fatalf("after stream: len=%d adds=%d", inf.Len(), h.adds)
	}
	if _, ok := inf.Get("p2"); !ok {
		t.Fatal("p2 missing from cache")
	}
}

func TestInformerUpdateAndDeleteEvents(t *testing.T) {
	f := newFixture(t)
	obj := f.create(t, "p1", "k1")
	inf := NewInformer(f.c.conn, cluster.KindPod, InformerConfig{})
	h := &countingHandler{}
	inf.AddHandler(h)
	inf.Run()
	f.w.Kernel().RunFor(100 * sim.Millisecond)

	obj.Pod.Phase = cluster.PodTerminating
	done := false
	f.c.conn.Update(obj, func(o *cluster.Object, err error) {
		if err != nil {
			t.Errorf("update: %v", err)
		}
		done = true
	})
	for !done && f.w.Kernel().Step() {
	}
	f.w.Kernel().RunFor(100 * sim.Millisecond)
	if h.updates != 1 {
		t.Fatalf("updates = %d", h.updates)
	}
	done = false
	f.c.conn.Delete(cluster.KindPod, "p1", 0, func(err error) {
		if err != nil {
			t.Errorf("delete: %v", err)
		}
		done = true
	})
	for !done && f.w.Kernel().Step() {
	}
	f.w.Kernel().RunFor(100 * sim.Millisecond)
	if h.deletes != 1 || inf.Len() != 0 {
		t.Fatalf("deletes = %d len = %d", h.deletes, inf.Len())
	}
}

func TestInformerLateHandlerReplay(t *testing.T) {
	f := newFixture(t)
	f.create(t, "p1", "k1")
	f.create(t, "p2", "k1")
	inf := NewInformer(f.c.conn, cluster.KindPod, InformerConfig{})
	inf.Run()
	f.w.Kernel().RunFor(100 * sim.Millisecond)

	h := &countingHandler{}
	inf.AddHandler(h)
	if h.adds != 2 {
		t.Fatalf("late handler replay adds = %d, want 2", h.adds)
	}
}

func TestInformerSwitchToStaleUpstreamTimeTravels(t *testing.T) {
	f := newFixture(t)
	f.create(t, "p1", "k1")
	f.w.Kernel().RunFor(50 * sim.Millisecond)

	inf := NewInformer(f.c.conn, cluster.KindPod, InformerConfig{})
	h := &countingHandler{}
	inf.AddHandler(h)
	inf.Run()
	f.w.Kernel().RunFor(100 * sim.Millisecond)

	// Freeze api-2, then delete p1 (api-2 never learns).
	f.w.Network().Partition("api-2", "etcd")
	done := false
	f.c.conn.Delete(cluster.KindPod, "p1", 0, func(err error) { done = true })
	for !done && f.w.Kernel().Step() {
	}
	f.w.Kernel().RunFor(100 * sim.Millisecond)
	if inf.Len() != 0 {
		t.Fatalf("cache should be empty after delete, len=%d", inf.Len())
	}
	frontier := inf.LastRevision()

	// Switch to the stale apiserver: relist resurrects the deleted pod and
	// the frontier regresses — time travel (Figure 3b).
	f.c.conn.SwitchAPIServer("api-2")
	f.w.Kernel().RunFor(200 * sim.Millisecond)
	if inf.Len() != 1 {
		t.Fatalf("stale relist did not resurrect pod: len=%d", inf.Len())
	}
	if h.lastAdd != "p1" {
		t.Fatalf("resurrected add = %q", h.lastAdd)
	}
	if inf.LastRevision() >= frontier {
		t.Fatalf("frontier did not regress: %d -> %d", frontier, inf.LastRevision())
	}
	if len(inf.Obs.TimeTravels()) == 0 {
		t.Fatal("observation log did not record time travel")
	}
}

func TestInformerRelistOnWindowExpiry(t *testing.T) {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	store.NewServer(w, "etcd", store.New())
	cfg := apiserver.DefaultConfig("etcd")
	cfg.WindowSize = 3
	apiserver.New(w, "api-1", cfg)
	c := &comp{}
	c.conn = NewConn(w, "comp", "api-1", 300*sim.Millisecond)
	w.Network().Register("comp", c)
	w.Kernel().RunFor(100 * sim.Millisecond)

	inf := NewInformer(c.conn, cluster.KindPod, InformerConfig{})
	inf.Run()
	w.Kernel().RunFor(100 * sim.Millisecond)
	baseRelists := inf.Relists()

	// Cut the component off while many events pass, overflowing the window.
	w.Network().Partition("comp", "api-1")
	f2 := &comp{}
	f2.conn = NewConn(w, "writer", "api-1", 300*sim.Millisecond)
	w.Network().Register("writer", f2)
	for i := 0; i < 8; i++ {
		name := string(rune('a' + i))
		f2.conn.Create(cluster.NewPod(name, "uid-"+name, cluster.PodSpec{}), func(*cluster.Object, error) {})
	}
	w.Kernel().RunFor(300 * sim.Millisecond)

	// Heal. The informer's watch re-establishment hits ErrTooOld → relist.
	w.Network().Heal("comp", "api-1")
	// Force a re-watch by making the informer think the stream is silent:
	// its next startWatch comes from the liveness timer, which this config
	// lacks, so trigger a relist through SwitchAPIServer-equivalent path:
	inf.startWatch(inf.epoch)
	w.Kernel().RunFor(500 * sim.Millisecond)

	if inf.Relists() <= baseRelists {
		t.Fatalf("expected relist after window expiry: %d -> %d", baseRelists, inf.Relists())
	}
	if inf.Len() != 8 {
		t.Fatalf("cache len = %d, want 8", inf.Len())
	}
}

func TestInformerLivenessRewatch(t *testing.T) {
	f := newFixture(t)
	inf := NewInformer(f.c.conn, cluster.KindPod, InformerConfig{WatchTimeout: 300 * sim.Millisecond})
	inf.Run()
	f.w.Kernel().RunFor(100 * sim.Millisecond)

	// Crash and restart api-1: its subscriptions are lost.
	if err := f.w.Crash("api-1"); err != nil {
		t.Fatal(err)
	}
	f.w.Kernel().RunFor(100 * sim.Millisecond)
	if err := f.w.Restart("api-1"); err != nil {
		t.Fatal(err)
	}
	f.w.Kernel().RunFor(time1s)

	// The liveness timer re-established the watch; new events flow again.
	f.create(t, "p9", "k1")
	f.w.Kernel().RunFor(time1s)
	if _, ok := inf.Get("p9"); !ok {
		t.Fatal("informer did not recover its watch after apiserver restart")
	}
}

const time1s = sim.Second

// TestInformerRelistBackoff verifies the retry path: with the upstream
// apiserver partitioned away, the initial list fails repeatedly and is
// rescheduled with capped exponential backoff (counted in Retries); once
// the partition heals, the informer syncs and the backoff resets.
func TestInformerRelistBackoff(t *testing.T) {
	f := newFixture(t)
	f.create(t, "p1", "k1")
	f.w.Network().Partition("comp", "api-1")

	inf := NewInformer(f.c.conn, cluster.KindPod, InformerConfig{})
	inf.Run()

	// Conn timeout is 300ms; the backoff ladder is 100, 200, 400, 800,
	// 1600, 1600... (+ up to 50% jitter), so 10s of wall time is several
	// failed attempts deep but nowhere near 10s/100ms flat retries.
	f.w.Kernel().RunFor(10 * sim.Second)
	if inf.Synced() {
		t.Fatal("informer synced through a partition")
	}
	retries := inf.Retries()
	if retries < 3 {
		t.Fatalf("expected several failed list attempts, got %d", retries)
	}
	// Flat 100ms retries against a 300ms RPC timeout would burn ~25
	// attempts in 10s; the exponential ladder caps it far lower.
	if retries > 15 {
		t.Fatalf("backoff not applied: %d retries in 10s", retries)
	}

	f.w.Network().Heal("comp", "api-1")
	f.w.Kernel().RunFor(5 * sim.Second)
	if !inf.Synced() || inf.Len() != 1 {
		t.Fatalf("informer did not recover after heal: synced=%v len=%d retries=%d",
			inf.Synced(), inf.Len(), inf.Retries())
	}
	if inf.Retries() != retries+1 && inf.Retries() != retries {
		// At most one more attempt could have been in flight at heal time.
		t.Fatalf("retries kept growing after heal: %d -> %d", retries, inf.Retries())
	}

	// Determinism: the same seed reproduces the same retry count.
	g := newFixture(t)
	g.create(t, "p1", "k1")
	g.w.Network().Partition("comp", "api-1")
	inf2 := NewInformer(g.c.conn, cluster.KindPod, InformerConfig{})
	inf2.Run()
	g.w.Kernel().RunFor(10 * sim.Second)
	if inf2.Retries() != retries {
		t.Fatalf("retry schedule not deterministic: %d vs %d", inf2.Retries(), retries)
	}
}
