// Package regions implements the HBASE-3136/3137 analog (paper §4.2.1): an
// assignment manager migrates regions (shards) between region servers by
// performing transitions against region objects held in the store, read
// through an apiserver cache.
//
// The manager supports three modes mirroring the issue history:
//
//   - ModeStaleBlind (HBASE-3136 as filed): transitions read the cached
//     view and write unguarded. A stale read directs the "close" at the
//     wrong previous owner, so the true owner never closes → two region
//     servers serve the same region (atomicity broken).
//   - ModeSyncBeforeCAS (the HBASE-3136 fix): every transition first syncs
//     (quorum read) — safe, but every operation pays the store round-trip,
//     the performance regression reported as HBASE-3137.
//   - ModeOptimisticCAS (HBASE-3137's proposal): cached reads with guarded
//     (compare-and-swap) writes — safe and fast, at the cost of retries
//     when the cache was stale.
package regions

import (
	"sort"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Mode selects the transition protocol.
type Mode int

const (
	// ModeStaleBlind reproduces HBASE-3136: cached reads, unguarded writes.
	ModeStaleBlind Mode = iota
	// ModeSyncBeforeCAS reproduces the HBASE-3136 fix: quorum read first.
	ModeSyncBeforeCAS
	// ModeOptimisticCAS reproduces HBASE-3137's optimistic proposal:
	// cached reads with ResourceVersion-guarded writes and retry.
	ModeOptimisticCAS
)

func (m Mode) String() string {
	switch m {
	case ModeStaleBlind:
		return "stale-blind"
	case ModeSyncBeforeCAS:
		return "sync-before-cas"
	case ModeOptimisticCAS:
		return "optimistic-cas"
	default:
		return "unknown"
	}
}

// RegionServer is a worker that serves regions. Its owned set is the
// ground-truth serving state used by the dual-ownership oracle.
type RegionServer struct {
	id    sim.NodeID
	world *sim.World
	owned map[string]bool
	down  bool
}

// ServerID returns the network ID for region server name.
func ServerID(name string) sim.NodeID { return sim.NodeID("rs-" + name) }

// NewRegionServer wires a region server into the world.
func NewRegionServer(w *sim.World, name string) *RegionServer {
	s := &RegionServer{id: ServerID(name), world: w, owned: make(map[string]bool)}
	w.Network().Register(s.id, s)
	w.AddProcess(s)
	return s
}

// ID implements sim.Process.
func (s *RegionServer) ID() sim.NodeID { return s.id }

// Crash implements sim.Process.
func (s *RegionServer) Crash() { s.down = true }

// Restart implements sim.Process; a restarted server serves nothing until
// told to open regions again.
func (s *RegionServer) Restart() {
	s.down = false
	s.owned = make(map[string]bool)
}

// Owned returns the regions this server currently serves, sorted.
func (s *RegionServer) Owned() []string {
	out := make([]string, 0, len(s.owned))
	for r := range s.owned {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// openCmd / closeCmd are manager->server commands.
type openCmd struct{ Region string }
type closeCmd struct{ Region string }

// HandleMessage implements sim.Handler.
func (s *RegionServer) HandleMessage(m *sim.Message) {
	if s.down {
		return
	}
	switch c := m.Payload.(type) {
	case *openCmd:
		s.owned[c.Region] = true
	case *closeCmd:
		delete(s.owned, c.Region)
	}
}

// ManagerConfig tunes the assignment manager.
type ManagerConfig struct {
	// APIServer is the manager's upstream.
	APIServer sim.NodeID
	// Mode selects the transition protocol.
	Mode Mode
	// RPCTimeout bounds apiserver calls.
	RPCTimeout sim.Duration
	// MaxRetries bounds optimistic-CAS retries per transition.
	MaxRetries int
}

// Manager is the assignment manager performing region transitions.
type Manager struct {
	id    sim.NodeID
	world *sim.World
	cfg   ManagerConfig
	conn  *client.Conn
	down  bool
	epoch uint64

	// Metrics.
	Transitions int // attempted
	Succeeded   int
	CASFailures int // guarded writes rejected (staleness caught safely)
	Retries     int
}

// ManagerID is the manager's network identity.
const ManagerID sim.NodeID = "region-manager"

// NewManager wires the assignment manager into the world.
func NewManager(w *sim.World, cfg ManagerConfig) *Manager {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 5
	}
	m := &Manager{id: ManagerID, world: w, cfg: cfg}
	m.conn = client.NewConn(w, m.id, cfg.APIServer, cfg.RPCTimeout)
	w.Network().Register(m.id, m)
	w.AddProcess(m)
	return m
}

// ID implements sim.Process.
func (m *Manager) ID() sim.NodeID { return m.id }

// Crash implements sim.Process.
func (m *Manager) Crash() {
	m.down = true
	m.epoch++
	m.conn.Reset()
}

// Restart implements sim.Process.
func (m *Manager) Restart() {
	m.down = false
	m.epoch++
	m.conn = client.NewConn(m.world, m.id, m.cfg.APIServer, m.cfg.RPCTimeout)
}

// HandleMessage implements sim.Handler.
func (m *Manager) HandleMessage(msg *sim.Message) {
	if m.down {
		return
	}
	m.conn.HandleMessage(msg)
}

// CreateRegion registers a region served by owner and tells the server to
// open it. done is invoked when the object is stored.
func (m *Manager) CreateRegion(name, owner string, done func(error)) {
	obj := cluster.NewRegion(name, "region-"+name, cluster.RegionSpec{Owner: owner, State: cluster.RegionOnline})
	epoch := m.epoch
	m.conn.Create(obj, func(_ *cluster.Object, err error) {
		if m.down || epoch != m.epoch {
			return
		}
		if err == nil {
			m.world.Network().Send(m.id, ServerID(owner), "region-open", &openCmd{Region: name})
		}
		done(err)
	})
}

// Move transitions region to a new owner. done receives the outcome:
// nil on success (including safe CAS-failure abort paths that were retried
// out), or the final error.
func (m *Manager) Move(region, newOwner string, done func(error)) {
	m.Transitions++
	m.moveAttempt(m.epoch, region, newOwner, 0, done)
}

func (m *Manager) moveAttempt(epoch uint64, region, newOwner string, attempt int, done func(error)) {
	quorum := m.cfg.Mode == ModeSyncBeforeCAS
	m.conn.Get(cluster.KindRegion, region, quorum, func(obj *cluster.Object, found bool, err error) {
		if m.down || epoch != m.epoch {
			return
		}
		if err != nil || !found {
			done(errOr(err, errNotFound))
			return
		}
		prevOwner := obj.Region.Owner // possibly stale!
		upd := obj.Clone()
		upd.Region.Owner = newOwner
		upd.Region.State = cluster.RegionOnline
		if m.cfg.Mode == ModeStaleBlind {
			upd.Meta.ResourceVersion = 0 // unguarded write
		}
		m.conn.Update(upd, func(_ *cluster.Object, uerr error) {
			if m.down || epoch != m.epoch {
				return
			}
			if uerr != nil {
				m.CASFailures++
				if m.cfg.Mode == ModeOptimisticCAS && attempt+1 < m.cfg.MaxRetries {
					m.Retries++
					// Refresh (the failed CAS proves our view was stale;
					// sync once) and retry.
					m.world.Kernel().Schedule(5*sim.Millisecond, func() {
						if m.down || epoch != m.epoch {
							return
						}
						m.moveAttempt(epoch, region, newOwner, attempt+1, done)
					})
					return
				}
				done(uerr)
				return
			}
			// Commit succeeded: close the previous owner (as read — the
			// stale-blind mode may aim this at the wrong server), then
			// open the new one after the close has had time to land
			// (close-before-open discipline; the links are FIFO but close
			// and open travel different links).
			if prevOwner != "" && prevOwner != newOwner {
				m.world.Network().Send(m.id, ServerID(prevOwner), "region-close", &closeCmd{Region: region})
			}
			m.world.Kernel().Schedule(3*sim.Millisecond, func() {
				if m.down {
					return
				}
				m.world.Network().Send(m.id, ServerID(newOwner), "region-open", &openCmd{Region: region})
				m.Succeeded++
				done(nil)
			})
		})
	})
}

var errNotFound = errNotFoundType{}

type errNotFoundType struct{}

func (errNotFoundType) Error() string { return "regions: region not found" }

func errOr(err error, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}

// DualOwners returns regions currently served by more than one of the
// given servers — the CASAtomicity oracle's ground truth check.
func DualOwners(servers []*RegionServer) map[string][]string {
	owners := make(map[string][]string)
	for _, s := range servers {
		for _, r := range s.Owned() {
			owners[r] = append(owners[r], string(s.ID()))
		}
	}
	out := make(map[string][]string)
	for r, os := range owners {
		if len(os) > 1 {
			sort.Strings(os)
			out[r] = os
		}
	}
	return out
}
