package workload

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/infra"
	"repro/internal/sim"
)

// TestCompactionPressureForcesRelists is the end-to-end check for the
// compaction fault surface: a CompactionPressurePlan that stalls an
// apiserver across an aggressive compaction forces its watch resumption
// into ErrCompacted, and the explanation layer measures the consequence —
// a non-zero forced-relist / relist-storm divergence metric at the
// affected component.
func TestCompactionPressureForcesRelists(t *testing.T) {
	target := TargetCass398()
	// Stall api-2 across the compaction: the operator keeps writing through
	// api-1, so the store's revision frontier advances past the compaction
	// floor while api-2 is partitioned — on heal, api-2's watch resumption
	// fails with ErrCompacted and it must relist (bootstrap) from scratch.
	plan := core.CompactionPressurePlan{
		At:         sim.Time(4200 * sim.Millisecond), // mid scale-down, revisions flowing
		Keep:       2,
		Victim:     infra.APIServerID(1),
		PulseWidth: 2 * sim.Second,
	}
	e := explain.Explain(target, plan, 1)
	if e == nil {
		t.Fatal("explain returned nil")
	}
	if e.Metrics.RelistStorm == 0 {
		t.Fatalf("compaction pressure forced no relists: %s", e.Metrics)
	}
	// The chain must at least carry the compaction perturbation itself.
	found := false
	for _, s := range e.Chain {
		if s.Kind == explain.StepPerturbation && strings.Contains(s.Detail, "compact store") {
			found = true
		}
	}
	if !found {
		t.Fatalf("chain does not mention the compaction perturbation:\n%s", e.Render())
	}
}

// TestGrayFailureCampaignDetectsAndExplains runs the planner restricted to
// its gray-failure family (slow/flaky links, compaction pressure) through
// the campaign engine: at least one seeded bug must be detected by a gray
// plan alone, and the detected bucket must come out of the explanation
// pass with a minimized plan and a causal chain terminating in the oracle
// violation.
func TestGrayFailureCampaignDetectsAndExplains(t *testing.T) {
	target := TargetCass398()
	planner := core.NewPlanner()
	planner.DisableGaps = true
	planner.DisableTimeTravel = true
	planner.DisableStaleness = true

	eng := campaign.New(campaign.Config{Workers: 2, MaxExecutions: 200, Collect: true, Explain: true})
	res := eng.Run(target, planner)
	if !res.Detected {
		t.Fatalf("gray-failure plans alone did not detect %s: %+v", target.Name, res.Campaign)
	}
	// Healthy campaign: the crash-safety counters must be clean.
	if res.Stats.FailedExecutions != 0 || res.Stats.HungExecutions != 0 {
		t.Fatalf("gray campaign had broken executions: %+v", res.Stats)
	}

	explained := false
	for _, b := range res.Buckets {
		if !b.Detected {
			continue
		}
		prefix := strings.SplitN(b.MinimalPlanID, "/", 2)[0]
		if prefix != "flaky" && prefix != "slowlink" && prefix != "compact" {
			t.Fatalf("detected bucket minimized to a non-gray plan %q", b.MinimalPlanID)
		}
		if b.MinimalPlan == "" || b.Explanation == nil {
			t.Fatalf("detected bucket missing minimal plan or explanation: %+v", b)
		}
		chain := b.Explanation.Chain
		if len(chain) == 0 || chain[len(chain)-1].Kind != explain.StepViolation {
			t.Fatalf("explanation chain does not terminate in the violation:\n%s", b.Explanation.Render())
		}
		explained = true
	}
	if !explained {
		t.Fatalf("no detected+explained bucket among %d buckets", len(res.Buckets))
	}
}
