package infra

import (
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/oracle"
	"repro/internal/sim"
)

func TestClusterBootstrapsAndRegistersNodes(t *testing.T) {
	c := New(DefaultOptions())
	c.RunFor(sim.Second)
	nodes := c.GroundTruth(cluster.KindNode)
	if len(nodes) != 2 {
		t.Fatalf("registered nodes = %d, want 2", len(nodes))
	}
	for _, api := range c.APIs {
		if !api.Ready() {
			t.Fatalf("%s not ready", api.ID())
		}
	}
	if len(c.Violations()) != 0 {
		t.Fatalf("violations on idle cluster: %v", c.Violations())
	}
}

func TestPodLifecycleEndToEnd(t *testing.T) {
	c := New(DefaultOptions())
	c.RunFor(500 * sim.Millisecond)
	c.Admin.CreatePod("web-0", "", "v1", nil) // scheduler path
	c.RunFor(2 * sim.Second)

	pods := c.GroundTruth(cluster.KindPod)
	if len(pods) != 1 {
		t.Fatalf("pods = %d", len(pods))
	}
	node := pods[0].Pod.NodeName
	if node == "" {
		t.Fatal("pod never scheduled")
	}
	if _, ok := c.Hosts[node].Running()["web-0"]; !ok {
		t.Fatalf("container not running on %s", node)
	}
	if pods[0].Pod.Phase != cluster.PodRunning {
		t.Fatalf("phase = %s", pods[0].Pod.Phase)
	}

	// Two-phase deletion: mark, kubelet stops container and finalizes.
	c.Admin.MarkPodDeleted("web-0", nil)
	c.RunFor(2 * sim.Second)
	if len(c.GroundTruth(cluster.KindPod)) != 0 {
		t.Fatal("pod object not finalized")
	}
	if len(c.Hosts[node].Running()) != 0 {
		t.Fatal("container still running after deletion")
	}
	if len(c.Violations()) != 0 {
		t.Fatalf("violations: %v", c.Violations())
	}
}

// scenario59848 drives the Figure 2 sequence; returns the cluster after the
// kubelet restart against the stale apiserver.
func scenario59848(t *testing.T, safeRestart bool) *Cluster {
	t.Helper()
	opts := DefaultOptions()
	opts.EnableScheduler = false // direct binding, as in the issue
	opts.EnableVolumeController = false
	opts.KubeletSafeRestart = safeRestart
	c := New(opts)
	c.RunFor(500 * sim.Millisecond)

	// Step 1: p1 runs on k1; both apiservers know.
	var createErr error
	c.Admin.CreatePod("p1", "k1", "v1", func(err error) { createErr = err })
	c.RunFor(sim.Second)
	if createErr != nil {
		t.Fatalf("create: %v", createErr)
	}
	if _, ok := c.Hosts["k1"].Running()["p1"]; !ok {
		t.Fatal("p1 not running on k1")
	}

	// api-2 loses connectivity to the store (Figure 2's stale apiserver).
	c.World.Network().Partition(sim.NodeID("api-2"), StoreID)

	// Step 2: rolling upgrade migrates p1 to k2 (via the healthy api-1).
	var migErr error
	c.Admin.MigratePod("p1", "k2", "v2", func(err error) { migErr = err })
	c.RunFor(3 * sim.Second)
	if migErr != nil {
		t.Fatalf("migrate: %v", migErr)
	}
	if _, ok := c.Hosts["k2"].Running()["p1"]; !ok {
		t.Fatal("p1 not running on k2 after migration")
	}
	if _, ok := c.Hosts["k1"].Running()["p1"]; ok {
		t.Fatal("k1 did not stop p1 during migration")
	}

	// Step 3: k1's kubelet restarts and synchronizes with stale api-2.
	kl := c.Kubelet["k1"]
	if err := c.World.Crash(kl.ID()); err != nil {
		t.Fatal(err)
	}
	kl.SetUpstreamIndex(1) // api-2
	c.RunFor(100 * sim.Millisecond)
	if err := c.World.Restart(kl.ID()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(3 * sim.Second)
	return c
}

func TestK8s59848TimeTravelViolation(t *testing.T) {
	c := scenario59848(t, false)
	if !c.Oracles.Violated(oracle.NameUniquePod) {
		t.Fatalf("expected UniquePod violation; k1=%v k2=%v",
			c.Hosts["k1"].RunningNames(), c.Hosts["k2"].RunningNames())
	}
}

func TestK8s59848FixedKubeletSafe(t *testing.T) {
	c := scenario59848(t, true)
	if c.Oracles.Violated(oracle.NameUniquePod) {
		t.Fatalf("safe-restart kubelet still violated UniquePod: %v", c.Violations())
	}
	if _, ok := c.Hosts["k1"].Running()["p1"]; ok {
		t.Fatal("fixed kubelet still resurrected p1")
	}
}

// scenario56261 drives the scheduler observability-gap sequence.
func scenario56261(t *testing.T, evictFix bool) *Cluster {
	t.Helper()
	opts := DefaultOptions()
	opts.Nodes = []string{"n1", "n2"}
	opts.EnableVolumeController = false
	opts.SchedulerEvictFix = evictFix
	c := New(opts)
	c.RunFor(sim.Second) // nodes register, scheduler syncs

	// Drop every node-deletion notification headed to the scheduler: the
	// observability gap.
	c.World.Network().AddInterceptor(sim.InterceptorFunc(func(m *sim.Message) sim.Decision {
		if m.Kind != apiserver.KindWatchPush || m.To != "scheduler" {
			return sim.Decision{Verdict: sim.Pass}
		}
		push, ok := m.Payload.(*apiserver.WatchPushMsg)
		if !ok {
			return sim.Decision{Verdict: sim.Pass}
		}
		for _, ev := range push.Events {
			if ev.Type == apiserver.Deleted && ev.Object.Meta.Kind == cluster.KindNode && ev.Object.Meta.Name == "n1" {
				return sim.Decision{Verdict: sim.Drop}
			}
		}
		return sim.Decision{Verdict: sim.Pass}
	}))

	c.Admin.DeleteNode("n1", nil)
	c.RunFor(500 * sim.Millisecond)
	c.Admin.CreatePod("job-1", "", "v1", nil)
	c.RunFor(5 * sim.Second)
	return c
}

func TestK8s56261SchedulerLivelock(t *testing.T) {
	c := scenario56261(t, false)
	if !c.Oracles.Violated(oracle.NameSchedulerProgress) {
		t.Fatalf("expected SchedulerProgress violation; view=%v binds=%d failures=%d",
			c.Scheduler.NodeView(), c.Scheduler.Binds, c.Scheduler.BindFailures)
	}
	if c.Scheduler.BindFailures == 0 {
		t.Fatal("expected repeated bind failures against the deleted node")
	}
}

func TestK8s56261FixedSchedulerEvicts(t *testing.T) {
	c := scenario56261(t, true)
	if c.Oracles.Violated(oracle.NameSchedulerProgress) {
		t.Fatalf("fixed scheduler still livelocked: %v", c.Violations())
	}
	pods := c.GroundTruth(cluster.KindPod)
	if len(pods) != 1 || pods[0].Pod.NodeName != "n2" {
		t.Fatalf("pod not rescheduled to n2: %+v", pods)
	}
}

// scenarioVolumeGap drives the [17]-style mark+delete race. The admin marks
// the pod; the kubelet finalizes it milliseconds later, so both events land
// between two of the controller's 100ms polls.
func scenarioVolumeGap(t *testing.T, fixed bool) *Cluster {
	t.Helper()
	opts := DefaultOptions()
	opts.Nodes = []string{"k1"}
	opts.EnableScheduler = false
	opts.VolumeControllerFix = fixed
	c := New(opts)
	c.RunFor(500 * sim.Millisecond)

	c.Admin.CreatePod("db-0", "k1", "v1", nil)
	c.Admin.CreatePVC("db-0-data", "db-0", nil)
	c.RunFor(sim.Second)

	c.Admin.MarkPodDeleted("db-0", nil)
	c.RunFor(4 * sim.Second)
	return c
}

func TestVolumeControllerOrphansPVC(t *testing.T) {
	c := scenarioVolumeGap(t, false)
	if !c.Oracles.Violated(oracle.NameNoOrphanPVC) {
		// The poll may have landed inside the mark→delete window; the
		// perturbation engine makes this deterministic, but at this seed
		// the race should lose.
		t.Fatalf("expected NoOrphanPVC violation; releases=%d violations=%v",
			c.Volume.Releases, c.Violations())
	}
}

func TestVolumeControllerFixedReleases(t *testing.T) {
	c := scenarioVolumeGap(t, true)
	if c.Oracles.Violated(oracle.NameNoOrphanPVC) {
		t.Fatalf("fixed controller orphaned PVC: %v", c.Violations())
	}
	if c.Volume.Releases == 0 {
		t.Fatal("fixed controller never released the PVC")
	}
}
