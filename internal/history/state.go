package history

import (
	"sort"
)

// Item is one key's materialized entry in a state S.
type Item struct {
	Key            string
	Value          []byte
	ModRevision    int64 // revision of the event that last wrote the key
	CreateRevision int64 // revision of the event that created this incarnation
	Version        int64 // number of writes since creation (1 on create)
}

// State is a materialization of a history prefix: S = apply(H[:r]). Revision
// is the revision of the last applied event. The zero value is the empty
// state at revision 0.
//
// A central consequence of the paper's model (§3) is that sparse reads of S
// cannot reconstruct H: State intentionally retains no tombstones or
// per-key version chains, so Diff of two states under-approximates the
// events between them.
type State struct {
	Revision int64
	items    map[string]Item
}

// NewState returns an empty state at revision 0.
func NewState() *State {
	return &State{items: make(map[string]Item)}
}

// Apply folds one event into the state. Events must be applied in history
// order; applying an event at or below the current revision is a no-op that
// returns false (this models at-least-once notification delivery being
// deduplicated by revision).
func (s *State) Apply(e Event) bool {
	if e.Revision <= s.Revision {
		return false
	}
	switch e.Type {
	case Put:
		it, existed := s.items[e.Key]
		if !existed || it.ModRevision != e.PrevRev || e.PrevRev == 0 {
			// New incarnation (create, or re-create after delete).
			if !existed || e.PrevRev == 0 {
				it = Item{Key: e.Key, CreateRevision: e.Revision}
			}
		}
		it.Key = e.Key
		it.Value = append([]byte(nil), e.Value...)
		it.ModRevision = e.Revision
		if it.CreateRevision == 0 {
			it.CreateRevision = e.Revision
		}
		it.Version++
		s.items[e.Key] = it
	case Delete:
		delete(s.items, e.Key)
	}
	s.Revision = e.Revision
	return true
}

// Materialize builds the state that results from applying every event of h
// in order.
func Materialize(h *History) *State {
	s := NewState()
	for _, e := range h.Events() {
		s.Apply(e)
	}
	return s
}

// Get returns the item for key.
func (s *State) Get(key string) (Item, bool) {
	it, ok := s.items[key]
	return it, ok
}

// Len returns the number of live keys.
func (s *State) Len() int { return len(s.items) }

// Keys returns all live keys in sorted order.
func (s *State) Keys() []string {
	keys := make([]string, 0, len(s.items))
	for k := range s.items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Items returns all items ordered by key.
func (s *State) Items() []Item {
	out := make([]Item, 0, len(s.items))
	for _, k := range s.Keys() {
		out = append(out, s.items[k])
	}
	return out
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{Revision: s.Revision, items: make(map[string]Item, len(s.items))}
	for k, it := range s.items {
		it.Value = append([]byte(nil), it.Value...)
		c.items[k] = it
	}
	return c
}

// Equal reports whether two states contain identical items (ignoring the
// frontier revision, which may differ when trailing events touched other
// keys).
func (s *State) Equal(o *State) bool {
	if len(s.items) != len(o.items) {
		return false
	}
	for k, it := range s.items {
		ot, ok := o.items[k]
		if !ok || it.ModRevision != ot.ModRevision || it.CreateRevision != ot.CreateRevision ||
			it.Version != ot.Version || string(it.Value) != string(ot.Value) {
			return false
		}
	}
	return true
}

// StateDelta describes one key's difference between two states.
type StateDelta struct {
	Key    string
	Before *Item // nil if absent in the older state
	After  *Item // nil if absent in the newer state
}

// Diff returns per-key differences between old and new states, ordered by
// key. Note — and this is the observability-gap argument of §4.2.3 — Diff is
// lossy: a key marked-then-deleted between the two snapshots appears only as
// a disappearance (or not at all if it was also created in between), so the
// intermediate events cannot be recovered.
func Diff(old, new *State) []StateDelta {
	keys := map[string]bool{}
	for k := range old.items {
		keys[k] = true
	}
	for k := range new.items {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var deltas []StateDelta
	for _, k := range sorted {
		ob, oOK := old.items[k]
		nb, nOK := new.items[k]
		switch {
		case oOK && !nOK:
			o := ob
			deltas = append(deltas, StateDelta{Key: k, Before: &o})
		case !oOK && nOK:
			n := nb
			deltas = append(deltas, StateDelta{Key: k, After: &n})
		case oOK && nOK && ob.ModRevision != nb.ModRevision:
			o, n := ob, nb
			deltas = append(deltas, StateDelta{Key: k, Before: &o, After: &n})
		}
	}
	return deltas
}
