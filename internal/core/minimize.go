package core

import (
	"repro/internal/sim"
)

// Minimize shrinks a detecting plan to a minimal perturbation that still
// triggers the target bug — the step between "a campaign found something"
// and "a developer can read the root cause". Determinism makes this exact:
// re-running a candidate plan either reproduces the violation or it
// doesn't; there is no flakiness to average over.
//
// Two reductions are applied:
//
//  1. For composite plans (the random baseline emits 1–3 faults per
//     execution), greedy delta debugging removes sub-plans that are not
//     needed for detection.
//  2. For time-travel plans, the heal time and restart delay are narrowed
//     to the defaults and the freeze window is kept as-is (its position is
//     already a single point in time).
//
// It returns the reduced plan and the number of verification executions
// spent.
//
// Minimize verifies candidates under the default world seed (1). A plan
// discovered under a different seed must be minimized with MinimizeSeed:
// candidate verification re-executes the plan, and a perturbation whose
// coordinates (occurrence counts, freeze times) were mined from a seed-s
// reference trace generally only reproduces under seed s.
func Minimize(t Target, p Plan) (Plan, int) { return MinimizeSeed(t, p, 1) }

// MinimizeSeed is Minimize under an explicit world seed: every candidate
// plan is verified with RunPlanSeed against the same seed the plan was
// discovered under, so the initial reproduction check and each removal
// probe replay the exact execution the campaign saw.
func MinimizeSeed(t Target, p Plan, seed int64) (Plan, int) {
	return MinimizeSeedRun(t, p, seed, RunPlanSeed)
}

// PlanRunner executes one candidate plan under a fixed (target, seed) and
// returns the resulting execution. RunPlanSeed is the canonical full-replay
// runner; callers with a faster exact-equivalent path (the campaign
// engine's checkpoint-tree forks) substitute their own. A PlanRunner MUST
// be execution-equivalent to RunPlanSeed — minimization correctness
// depends on each probe reproducing the replay the campaign saw.
type PlanRunner func(t Target, p Plan, seed int64) Execution

// MinimizeSeedRun is MinimizeSeed with an explicit candidate runner.
func MinimizeSeedRun(t Target, p Plan, seed int64, run PlanRunner) (Plan, int) {
	executions := 0
	detects := func(candidate Plan) bool {
		executions++
		return run(t, candidate, seed).Detected
	}
	if !detects(p) {
		// Not reproducible (should not happen for a plan a campaign just
		// reported under this seed); return it unchanged.
		return p, executions
	}

	switch sp := p.(type) {
	case SequencePlan:
		reduced := minimizeSequence(sp, detects)
		if len(reduced.Plans) == 1 {
			return reduced.Plans[0], executions
		}
		return reduced, executions
	case FlakyLinkPlan:
		return minimizeFlaky(sp, detects), executions
	case CompactionPressurePlan:
		return minimizeCompaction(sp, detects), executions
	}
	return p, executions
}

// minimizeFlaky greedily zeroes degradation axes of a flaky-link plan
// (reorder, then duplication, then drop) while the remainder still detects,
// isolating which kind of link misbehaviour actually triggers the bug.
func minimizeFlaky(p FlakyLinkPlan, detects func(Plan) bool) FlakyLinkPlan {
	current := p
	axes := []func(*FlakyLinkPlan){
		func(c *FlakyLinkPlan) { c.ReorderPercent = 0 },
		func(c *FlakyLinkPlan) { c.DupPercent = 0 },
		func(c *FlakyLinkPlan) { c.DropPercent = 0 },
	}
	for _, zero := range axes {
		candidate := current
		zero(&candidate)
		if candidate.DropPercent == 0 && candidate.DupPercent == 0 && candidate.ReorderPercent == 0 {
			continue // must keep at least one axis
		}
		if candidate != current && detects(candidate) {
			current = candidate
		}
	}
	return current
}

// minimizeCompaction tries to drop the victim stall from a compaction plan:
// if the retain-limit squeeze alone still detects, the report should not
// implicate the apiserver pulse.
func minimizeCompaction(p CompactionPressurePlan, detects func(Plan) bool) CompactionPressurePlan {
	if p.Victim == "" {
		return p
	}
	candidate := p
	candidate.Victim = ""
	candidate.PulseWidth = 0
	if detects(candidate) {
		return candidate
	}
	return p
}

// minimizeSequence greedily drops sub-plans while the remainder still
// detects. Greedy one-at-a-time removal is sufficient here because plan
// lists are short (≤ 3 for the random baseline); classic ddmin would be
// overkill.
func minimizeSequence(seq SequencePlan, detects func(Plan) bool) SequencePlan {
	current := append([]Plan(nil), seq.Plans...)
	for i := 0; i < len(current); {
		if len(current) == 1 {
			break
		}
		candidate := make([]Plan, 0, len(current)-1)
		candidate = append(candidate, current[:i]...)
		candidate = append(candidate, current[i+1:]...)
		if detects(SequencePlan{Name: seq.Name + "-min", Plans: candidate}) {
			current = candidate // sub-plan i was unnecessary
			continue
		}
		i++
	}
	return SequencePlan{Name: seq.Name + "-min", Plans: current}
}

// NarrowWindow binary-searches the latest possible start of a staleness
// window that still detects, tightening "freeze from t onwards" plans to
// the decisive instant. It returns the narrowed plan and executions spent.
// Candidates are verified under the default world seed (1); see
// NarrowWindowSeed for plans discovered under other seeds.
func NarrowWindow(t Target, p StalenessPlan) (StalenessPlan, int) {
	return NarrowWindowSeed(t, p, 1)
}

// NarrowWindowSeed is NarrowWindow under an explicit world seed, verifying
// every probe with the seed the plan was discovered under.
func NarrowWindowSeed(t Target, p StalenessPlan, seed int64) (StalenessPlan, int) {
	return NarrowWindowSeedRun(t, p, seed, RunPlanSeed)
}

// NarrowWindowSeedRun is NarrowWindowSeed with an explicit probe runner.
func NarrowWindowSeedRun(t Target, p StalenessPlan, seed int64, run PlanRunner) (StalenessPlan, int) {
	executions := 0
	detects := func(candidate StalenessPlan) bool {
		executions++
		return run(t, candidate, seed).Detected
	}
	if !detects(p) {
		return p, executions
	}
	lo, hi := p.From, p.Until
	if hi == 0 {
		hi = sim.Time(t.Horizon)
	}
	// Find the latest From that still detects (the freeze must start
	// before the event whose observation it suppresses).
	best := p
	for hi-lo > sim.Time(50*sim.Millisecond) {
		mid := lo + (hi-lo)/2
		candidate := p
		candidate.From = mid
		if detects(candidate) {
			best = candidate
			lo = mid
		} else {
			hi = mid
		}
	}
	return best, executions
}

// NarrowFlakyWindowSeed binary-searches the latest start of a flaky-link
// window that still detects under the given seed — the link-quality
// analogue of NarrowWindowSeed. Each probe is fully deterministic (the
// degraded schedule is a pure function of plan + seed), so the search is
// exact even though the degradation itself is probabilistic.
func NarrowFlakyWindowSeed(t Target, p FlakyLinkPlan, seed int64) (FlakyLinkPlan, int) {
	return NarrowFlakyWindowSeedRun(t, p, seed, RunPlanSeed)
}

// NarrowFlakyWindowSeedRun is NarrowFlakyWindowSeed with an explicit probe
// runner.
func NarrowFlakyWindowSeedRun(t Target, p FlakyLinkPlan, seed int64, run PlanRunner) (FlakyLinkPlan, int) {
	executions := 0
	detects := func(candidate FlakyLinkPlan) bool {
		executions++
		return run(t, candidate, seed).Detected
	}
	if !detects(p) {
		return p, executions
	}
	lo, hi := p.From, p.Until
	if hi == 0 {
		hi = sim.Time(t.Horizon)
	}
	best := p
	for hi-lo > sim.Time(50*sim.Millisecond) {
		mid := lo + (hi-lo)/2
		candidate := p
		candidate.From = mid
		if detects(candidate) {
			best = candidate
			lo = mid
		} else {
			hi = mid
		}
	}
	return best, executions
}
