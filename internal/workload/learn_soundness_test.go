package workload

import (
	"sort"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
)

// TestLearnedPruningSoundness is the learning phase's regression contract
// over all five seeded bugs: with -prune -ranked the campaign must (a)
// still detect every bug, (b) land in the same failure bucket, (c) never
// need more executions than the unlearned planner order (ratio <= 1.0),
// (d) take strictly fewer executions for the median target (>= 25%
// reduction), and (e) record zero unsound pruning decisions — no
// detection may come from the deferred tail while the kept set missed.
func TestLearnedPruningSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaigns")
	}
	var reductions []float64
	for _, target := range AllTargets() {
		base := campaign.New(campaign.Config{Workers: 2, MaxExecutions: 400}).
			Run(target, core.NewPlanner())
		learned := campaign.New(campaign.Config{Workers: 2, MaxExecutions: 400, Prune: true, Ranked: true}).
			Run(target, core.NewPlanner())

		if !base.Detected {
			t.Fatalf("%s: baseline campaign did not detect the seeded bug", target.Name)
		}
		if !learned.Detected {
			t.Fatalf("%s: learned campaign lost the seeded bug", target.Name)
		}
		if bs, ls := detectedSignatures(base), detectedSignatures(learned); !equalStrings(bs, ls) {
			t.Fatalf("%s: failure buckets diverged: base %v, learned %v", target.Name, bs, ls)
		}
		be, le := base.Campaign.Executions, learned.Campaign.Executions
		if le > be {
			t.Fatalf("%s: learned campaign needed %d executions, baseline %d (ratio %.2f > 1.0)",
				target.Name, le, be, float64(le)/float64(be))
		}
		if learned.Stats.PruningUnsoundDetections != 0 {
			t.Fatalf("%s: %d detections came from pruned/deduped plans the kept set missed",
				target.Name, learned.Stats.PruningUnsoundDetections)
		}
		if learned.Stats.PlansPruned == 0 {
			t.Fatalf("%s: learning pruned nothing; the phase is inert", target.Name)
		}
		reductions = append(reductions, 1-float64(le)/float64(be))
		t.Logf("%-14s baseline=%3d learned=%3d pruned=%3d (reduction %.0f%%)",
			target.Name, be, le, learned.Stats.PlansPruned, 100*(1-float64(le)/float64(be)))
	}

	sort.Float64s(reductions)
	median := reductions[len(reductions)/2]
	if median < 0.25 {
		t.Fatalf("median executions-to-first-detection reduction = %.0f%%, want >= 25%% (all: %v)",
			100*median, reductions)
	}
}

// detectedSignatures returns the sorted signatures of detected buckets.
func detectedSignatures(r campaign.Result) []string {
	var out []string
	for _, b := range r.Buckets {
		if b.Detected {
			out = append(out, string(b.Signature))
		}
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
