// Package baselines implements the comparison strategies of the paper's
// Section 5/6 discussion: random fault injection, a CrashTuner-like
// heuristic (crash a component right after it updates membership-related
// cached state), and a CoFI-like heuristic (partition a component from its
// upstream around membership-state changes). They share the Plan/Strategy
// interfaces of internal/core so campaigns are directly comparable.
package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// membershipKinds approximates "meta-info" state in CrashTuner's sense:
// cluster membership (nodes) and the membership-bearing custom resource.
var membershipKinds = map[cluster.Kind]bool{
	cluster.KindNode:      true,
	cluster.KindCassandra: true,
}

// Random generates N random fault schedules: each plan draws 1..3 faults
// (component crash, link partition, or random watch-event drops) at
// uniformly random times over the horizon.
type Random struct {
	Seed int64
	N    int
}

// Name implements core.Strategy.
func (r Random) Name() string { return "random" }

// Plans implements core.Strategy.
func (r Random) Plans(t core.Target, ref *trace.Trace) []core.Plan {
	rng := rand.New(rand.NewSource(r.Seed))
	horizon := int64(t.Horizon)
	var plans []core.Plan
	for i := 0; i < r.N; i++ {
		nFaults := 1 + rng.Intn(3)
		var sub []core.Plan
		for f := 0; f < nFaults; f++ {
			at := sim.Time(rng.Int63n(horizon))
			switch rng.Intn(3) {
			case 0: // crash a random restartable component
				if len(t.Topology.Restartable) == 0 {
					continue
				}
				comp := t.Topology.Restartable[rng.Intn(len(t.Topology.Restartable))]
				sub = append(sub, core.CrashPlan{
					Component:    comp,
					At:           at,
					RestartDelay: sim.Duration(50+rng.Int63n(500)) * sim.Millisecond,
				})
			case 1: // partition a random component from a random apiserver
				if len(t.Topology.Restartable) == 0 || len(t.Topology.APIServers) == 0 {
					continue
				}
				comp := t.Topology.Restartable[rng.Intn(len(t.Topology.Restartable))]
				api := t.Topology.APIServers[rng.Intn(len(t.Topology.APIServers))]
				sub = append(sub, core.PartitionPlan{
					A:     comp,
					B:     api,
					From:  at,
					Until: at.Add(sim.Duration(rng.Int63n(int64(2 * sim.Second)))),
				})
			case 2: // freeze a random apiserver from the store
				if len(t.Topology.APIServers) == 0 {
					continue
				}
				api := t.Topology.APIServers[rng.Intn(len(t.Topology.APIServers))]
				sub = append(sub, core.StalenessPlan{
					Victim: api,
					From:   at,
					Until:  at.Add(sim.Duration(rng.Int63n(int64(2 * sim.Second)))),
				})
			}
		}
		plans = append(plans, core.SequencePlan{Name: fmt.Sprintf("random-%d", i), Plans: sub})
	}
	return plans
}

// CrashTuner crashes a component immediately after it observes a
// membership ("meta-info") update, then restarts it — the heuristic of
// Lu et al. (SOSP'19) as characterized by the paper's Section 5: "crashing
// a node immediately creates diverging (H', S') at other components".
type CrashTuner struct {
	// RestartDelay is how long the victim stays down.
	RestartDelay sim.Duration
}

// Name implements core.Strategy.
func (CrashTuner) Name() string { return "crashtuner" }

// Plans implements core.Strategy.
func (s CrashTuner) Plans(t core.Target, ref *trace.Trace) []core.Plan {
	delay := s.RestartDelay
	if delay <= 0 {
		delay = 500 * sim.Millisecond
	}
	restartable := map[sim.NodeID]bool{}
	for _, id := range t.Topology.Restartable {
		restartable[id] = true
	}
	var plans []core.Plan
	// Crash right after a component *observes* a membership update...
	for _, d := range ref.Deliveries {
		if !membershipKinds[d.Kind] || !restartable[d.To] {
			continue
		}
		plans = append(plans, core.CrashPlan{
			Component:    d.To,
			At:           d.Time.Add(2 * sim.Millisecond),
			RestartDelay: delay,
		})
	}
	// ...or right after it *writes* membership state (kubelet heartbeats,
	// operator status updates) — both are "meta-info updates" in
	// CrashTuner's sense.
	for _, w := range ref.Writes {
		if !membershipKinds[w.Kind] || !restartable[w.From] {
			continue
		}
		plans = append(plans, core.CrashPlan{
			Component:    w.From,
			At:           w.Time.Add(2 * sim.Millisecond),
			RestartDelay: delay,
		})
	}
	return dedupe(plans)
}

// CoFI partitions a component from its upstream right when membership
// state is about to change or has just changed — "a network partition
// prevents (H', S') at a component from being synchronized with (H, S)"
// (paper §5).
type CoFI struct {
	// Window is how long each injected partition lasts.
	Window sim.Duration
}

// Name implements core.Strategy.
func (CoFI) Name() string { return "cofi" }

// Plans implements core.Strategy.
func (s CoFI) Plans(t core.Target, ref *trace.Trace) []core.Plan {
	window := s.Window
	if window <= 0 {
		window = sim.Second
	}
	var plans []core.Plan
	for _, d := range ref.Deliveries {
		if !membershipKinds[d.Kind] || d.To == "admin" {
			continue
		}
		// Partition the consumer from the apiserver that fed it, starting
		// just before the delivery (so the component misses it) ...
		plans = append(plans, core.PartitionPlan{
			A:     d.To,
			B:     d.From,
			From:  d.Time.Add(-2 * sim.Millisecond),
			Until: d.Time.Add(window),
		})
		// ... and the apiserver from the store just before the change
		// reaches it (freezing the whole subtree's view).
		plans = append(plans, core.StalenessPlan{
			Victim: d.From,
			From:   d.Time.Add(-4 * sim.Millisecond),
			Until:  d.Time.Add(window),
		})
	}
	return dedupe(plans)
}

func dedupe(plans []core.Plan) []core.Plan {
	seen := make(map[string]bool, len(plans))
	out := plans[:0]
	for _, p := range plans {
		if seen[p.ID()] {
			continue
		}
		seen[p.ID()] = true
		out = append(out, p)
	}
	return out
}
