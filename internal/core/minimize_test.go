package core

import (
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/infra"
	"repro/internal/oracle"
	"repro/internal/sim"
)

// schedTarget is the 56261 setup: a gap on the node deletion to the
// scheduler livelocks placement.
func schedTarget() Target {
	return Target{
		Name: "sched-gap",
		Bug:  oracle.NameSchedulerProgress,
		Build: func(seed int64) *infra.Cluster {
			opts := infra.DefaultOptions()
			opts.Seed = seed
			opts.Nodes = []string{"n1", "n2"}
			opts.EnableVolumeController = false
			return infra.New(opts)
		},
		Workload: func(c *infra.Cluster) {
			c.World.Kernel().At(sim.Time(sim.Second), func() { c.Admin.DeleteNode("n1", nil) })
			c.World.Kernel().At(sim.Time(1500*sim.Millisecond), func() { c.Admin.CreatePod("job", "", "v1", nil) })
		},
		Horizon: 7 * sim.Second,
		Topology: Topology{
			APIServers:  []sim.NodeID{infra.APIServerID(0), infra.APIServerID(1)},
			Restartable: []sim.NodeID{"scheduler"},
		},
	}
}

func detectingGap() GapPlan {
	return GapPlan{Victim: "scheduler", Kind: cluster.KindNode, Name: "n1", Type: apiserver.Deleted, Occurrence: 1}
}

func TestMinimizeDropsUnnecessarySubPlans(t *testing.T) {
	target := schedTarget()
	// A noisy composite: the gap that matters plus two irrelevant faults.
	noisy := SequencePlan{Name: "noisy", Plans: []Plan{
		CrashPlan{Component: "kubelet-n2", At: sim.Time(3 * sim.Second), RestartDelay: 100 * sim.Millisecond},
		detectingGap(),
		PartitionPlan{A: "kubelet-n2", B: infra.APIServerID(1), From: sim.Time(2 * sim.Second), Until: sim.Time(2500 * sim.Millisecond)},
	}}
	if !RunPlan(target, noisy).Detected {
		t.Fatal("noisy plan does not detect; test setup broken")
	}
	minimal, execs := Minimize(target, noisy)
	if execs == 0 {
		t.Fatal("no verification executions recorded")
	}
	gap, ok := minimal.(GapPlan)
	if !ok {
		t.Fatalf("minimal plan = %T (%s), want the bare GapPlan", minimal, minimal.Describe())
	}
	if gap != detectingGap() {
		t.Fatalf("minimal gap = %+v", gap)
	}
	if !RunPlan(target, minimal).Detected {
		t.Fatal("minimized plan no longer detects")
	}
}

func TestMinimizeKeepsNecessarySubPlans(t *testing.T) {
	target := schedTarget()
	only := SequencePlan{Name: "solo", Plans: []Plan{detectingGap()}}
	minimal, _ := Minimize(target, only)
	if !RunPlan(target, minimal).Detected {
		t.Fatal("minimized plan no longer detects")
	}
}

func TestMinimizeNonReproducingPlanUnchanged(t *testing.T) {
	target := schedTarget()
	dud := SequencePlan{Name: "dud", Plans: []Plan{
		CrashPlan{Component: "kubelet-n2", At: sim.Time(3 * sim.Second), RestartDelay: 100 * sim.Millisecond},
	}}
	got, execs := Minimize(target, dud)
	if execs != 1 {
		t.Fatalf("executions = %d, want 1 (just the reproduction check)", execs)
	}
	if got.ID() != dud.ID() {
		t.Fatalf("non-reproducing plan was altered: %s", got.ID())
	}
}
