// Package explore is the bounded systematic explorer: where campaigns
// (internal/campaign) SAMPLE perturbation plans, explore ENUMERATES every
// schedule of delivery perturbations inside a bounded window — DFS with
// backtracking over delivery choice-points — and terminates with either a
// minimized violation witness or a no-violation certificate for the
// exhausted bound. This is the ROADMAP item 6 capability: the
// verification-style complement (Kivi, Representative Testing — see
// PAPERS.md) to the paper's sampling argument, made tractable by the same
// partial-history machinery the campaigns use:
//
//   - choice-points are the reference run's watch deliveries; decisions
//     perturb them at DELIVERY coordinates (core.DropDeliveryPlan /
//     DelayDeliveryPlan riding sim.DeliveryGate), so every explored
//     schedule is an ordinary replayable plan — the witness IS the
//     exploration step;
//   - partial-order reduction comes from the mined read-dependency model
//     (learn.Mine): a drop or delay of a delivery outside its receiver's
//     consumed set commutes with the receiver's actions, so schedules
//     differing only there collapse into one representative (crash
//     decisions are exempt — crashing a receiver never commutes);
//   - the visited-state set keys on the full-run trace.StateHash, and a
//     revisit with no more remaining freedom than a prior visit prunes
//     the whole subtree; schedule executions fork from PR 7 checkpoint
//     trees (campaign.Forker) instead of replaying from t=0;
//   - decisions are enumerated in one fixed coordinate order and DFS only
//     extends forward (monotone ordering), so no permutation of the same
//     decision set is ever executed twice — the structural form of
//     sleep-set pruning for commuting decision sets.
//
// Everything here is a pure function of (target, seed, bounds): the
// explorer is serial and the simulation deterministic, so certificates
// are byte-identical across reruns, hosts, and snapshot on/off.
package explore

import (
	"math"
	"sort"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/learn"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Decision kinds, in coordinate order within one choice-point.
const (
	kindDrop  = "drop"
	kindDelay = "delay"
	kindCrash = "crash"
)

// DefaultDelay is the deferral applied by delay decisions when the bound
// does not set one.
const DefaultDelay = 2 * sim.Second

// DefaultMaxSchedules is the execution safety valve: an exploration that
// would exceed it aborts with OutcomeBudget instead of emitting an
// unsound certificate.
const DefaultMaxSchedules = 4096

// Bounds is the explored scope. The certificate is a statement about
// exactly this scope, nothing more.
type Bounds struct {
	// Start / Window clip the choice-point window in virtual time:
	// deliveries arriving in [Start, Start+Window]. Window 0 means "to
	// the end of the run".
	Start  sim.Time
	Window sim.Duration
	// Drops / Delays / Crashes bound how many decisions of each kind one
	// schedule may contain.
	Drops   int
	Delays  int
	Crashes int
	// Delay is the deferral applied by delay decisions (DefaultDelay if 0).
	Delay sim.Duration
	// MaxSchedules aborts the exploration when more executions would be
	// needed (DefaultMaxSchedules if 0). An aborted exploration yields no
	// certificate.
	MaxSchedules int
}

// Config configures one exploration.
type Config struct {
	Target core.Target
	Seed   int64
	Bounds Bounds
	// POR enables the partial-order reduction (on for real use; off for
	// the soundness cross-check, which must find the same violations).
	POR bool
	// Snapshot enables checkpoint-tree forking for schedule executions.
	// Results are identical either way; forks are just faster.
	Snapshot bool
}

// Outcomes.
const (
	OutcomeViolation   = "violation"
	OutcomeCertificate = "certificate"
	OutcomeBudget      = "budget-exhausted"
)

// Stats are the deterministic exploration counters. Everything here is a
// pure function of (target, seed, bounds, por) — no host-side detail.
type Stats struct {
	// ChoicePoints is the number of window deliveries considered.
	ChoicePoints int `json:"choice_points"`
	// DecisionsFull / DecisionsReduced count the decision vocabulary
	// before and after partial-order reduction.
	DecisionsFull    int `json:"decisions_full"`
	DecisionsReduced int `json:"decisions_reduced"`
	// ScheduleSpace is the number of schedules in the UNREDUCED space —
	// every subset of the full decision list within the bounds.
	ScheduleSpace uint64 `json:"schedule_space"`
	// SchedulesExecuted counts actual executions (the reference counts
	// as the empty schedule).
	SchedulesExecuted uint64 `json:"schedules_executed"`
	// SchedulesCollapsed = ScheduleSpace - SchedulesExecuted, split by
	// cause: CollapsedPOR are schedules containing a reduced-away
	// decision; CollapsedVisited are subtrees pruned at a visited state.
	SchedulesCollapsed uint64 `json:"schedules_collapsed"`
	CollapsedPOR       uint64 `json:"collapsed_por"`
	CollapsedVisited   uint64 `json:"collapsed_visited"`
	// StatesVisited counts distinct full-run StateHash keys reached.
	StatesVisited int `json:"states_visited"`
}

// Witness is a found violation: the schedule as discovered, its
// minimized form, and the causal chain internal/explain renders for it.
type Witness struct {
	Schedule      string               `json:"schedule"`
	MinimalID     string               `json:"minimal_id"`
	MinimalPlan   string               `json:"minimal_plan"`
	MinimizeExecs int                  `json:"minimize_execs"`
	Explanation   *explain.Explanation `json:"explanation"`
}

// Result is one exploration's outcome.
type Result struct {
	Outcome     string       `json:"outcome"`
	Witness     *Witness     `json:"witness,omitempty"`
	Certificate *Certificate `json:"certificate,omitempty"`
	Stats       Stats        `json:"stats"`
	// Forks / Replays report how executions were served (host-side
	// performance detail — deliberately NOT part of the certificate).
	Forks   int `json:"forks"`
	Replays int `json:"replays"`
}

// decision is one entry of the ordered decision list.
type decision struct {
	kind     string
	delivery trace.Delivery
	plan     core.Plan
	// consumed: the delivery is in its receiver's mined consumed set.
	consumed bool
	// commuting: a delay that provably (under the mined model) cannot
	// reorder the delivery past any observation or commit.
	commuting bool
}

// explorer is the DFS state for one Run.
type explorer struct {
	cfg       Config
	bounds    Bounds
	ref       *trace.Trace
	forker    *campaign.Forker
	decisions []decision // reduced list the DFS walks
	sufDrop   []int      // decisions[i:] kind counts, len(decisions)+1
	sufDelay  []int
	sufCrash  []int
	visited   map[uint64][]visitEntry
	stats     Stats
	witness   core.SequencePlan
	found     bool
	exhausted bool
}

type visitEntry struct {
	next              int
	drops, delays, cr int
}

// Run explores the bounded schedule space and returns a witness, a
// certificate, or a budget abort.
func Run(cfg Config) *Result {
	b := cfg.Bounds
	if b.Delay <= 0 {
		b.Delay = DefaultDelay
	}
	if b.MaxSchedules <= 0 {
		b.MaxSchedules = DefaultMaxSchedules
	}
	t := cfg.Target
	ref, refViolations := core.ReferenceSeed(t, cfg.Seed)
	model := learn.Mine(ref, 0)

	wStart := b.Start
	wEnd := sim.Time(math.MaxInt64)
	if b.Window > 0 {
		wEnd = wStart.Add(b.Window)
	}

	e := &explorer{cfg: cfg, bounds: b, ref: ref,
		visited: make(map[uint64][]visitEntry)}

	// Choice points: window deliveries to components under test.
	var cps []trace.Delivery
	for _, d := range ref.Deliveries {
		if d.To == "admin" || d.Time < wStart || d.Time > wEnd {
			continue
		}
		cps = append(cps, d)
	}
	e.stats.ChoicePoints = len(cps)

	// Full decision list in coordinate order (trace order, then kind).
	full := buildDecisions(cps, model, b, ref)
	e.stats.DecisionsFull = len(full)
	reduced := full
	if cfg.POR {
		reduced = nil
		for _, d := range full {
			// Crash decisions are exempt from the reduction: the
			// delivery-independence argument (an unconsumed delivery
			// commutes with its receiver's actions) says nothing about
			// crash-restarting the receiver at that delivery's time —
			// a state-destroying perturbation with no commuting
			// representative. Only drops/delays of dead deliveries and
			// provably-identity delays collapse.
			if d.kind == kindCrash || (d.consumed && !d.commuting) {
				reduced = append(reduced, d)
			}
		}
	}
	e.decisions = reduced
	e.stats.DecisionsReduced = len(reduced)
	e.indexSuffixes()

	e.stats.ScheduleSpace = spaceOf(kindCounts(full), b)
	reducedSpace := spaceOf(kindCounts(reduced), b)
	e.stats.CollapsedPOR = e.stats.ScheduleSpace - reducedSpace

	// Fork substrate: checkpoints near the (quantile-sampled) decision
	// arrival times.
	var cands []sim.Time
	if cfg.Snapshot {
		cands = quantileTimes(reduced, 11)
	}
	e.forker = campaign.NewForker(t, cfg.Seed, ref, cands)

	// The empty schedule is the reference run — already executed. If it
	// already violates the oracle, the empty schedule IS the witness: a
	// "no violation within bound" certificate over a baseline that fails
	// unperturbed would be meaningless.
	e.stats.SchedulesExecuted = 1
	if len(refViolations) > 0 {
		e.witness = core.SequencePlan{Name: "explore"}
		e.found = true
	} else {
		e.visited[ref.StateHash()] = []visitEntry{{0, b.Drops, b.Delays, b.Crashes}}
		e.dfs(nil, 0, b.Drops, b.Delays, b.Crashes)
	}
	e.stats.StatesVisited = len(e.visited)

	// Collapse accounting holds in every outcome; on an exhaustive finish
	// (certificate) it additionally satisfies executed + collapsed == space.
	e.stats.SchedulesCollapsed = e.stats.CollapsedPOR + e.stats.CollapsedVisited
	res := &Result{}
	switch {
	case e.found:
		res.Outcome = OutcomeViolation
		res.Witness = e.buildWitness(t, ref)
	case e.exhausted:
		res.Outcome = OutcomeBudget
	default:
		res.Outcome = OutcomeCertificate
		res.Certificate = newCertificate(t, cfg, b, wStart, wEnd, e.stats)
	}
	res.Stats = e.stats
	res.Forks, res.Replays = e.forker.Forks, e.forker.Replays
	return res
}

// buildDecisions emits the full decision list: for each choice point, a
// drop, a delay, and (once per distinct crash coordinate) a crash
// decision, gated on the respective bound being non-zero.
func buildDecisions(cps []trace.Delivery, model *learn.Model, b Bounds, ref *trace.Trace) []decision {
	var out []decision
	crashSeen := map[string]bool{}
	for _, d := range cps {
		consumed := model.ConsumedDelivery(d)
		if b.Drops > 0 {
			out = append(out, decision{kind: kindDrop, delivery: d, consumed: consumed,
				plan: core.DropDeliveryPlan{Victim: d.To, Kind: d.Kind, Name: d.Name,
					Type: d.EventType, Occurrence: d.Occurrence}})
		}
		if b.Delays > 0 {
			out = append(out, decision{kind: kindDelay, delivery: d, consumed: consumed,
				commuting: delayCommutes(ref, d, b.Delay),
				plan: core.DelayDeliveryPlan{Victim: d.To, Kind: d.Kind, Name: d.Name,
					Type: d.EventType, Occurrence: d.Occurrence, Delay: b.Delay}})
		}
		if b.Crashes > 0 {
			// Crash the receiver just after it observed this delivery —
			// the observe-then-die placement partial histories care about.
			key := string(d.To) + "@" + d.Time.String()
			if !crashSeen[key] {
				crashSeen[key] = true
				out = append(out, decision{kind: kindCrash, delivery: d, consumed: consumed,
					plan: core.CrashPlan{Component: d.To, At: d.Time.Add(sim.Millisecond),
						RestartDelay: 500 * sim.Millisecond}})
			}
		}
	}
	return out
}

// delayCommutes reports whether delaying d by delay provably commutes
// under the state abstraction: no other delivery reaches d.To and no
// ground-truth commit lands inside (d.Time, d.Time+delay], so neither the
// receiver's observation order nor the commit order can change. This is
// model-relative soundness — the POR cross-check (no-POR run on a tiny
// bound) validates it empirically.
func delayCommutes(ref *trace.Trace, d trace.Delivery, delay sim.Duration) bool {
	until := d.Time.Add(delay)
	for _, o := range ref.Deliveries {
		if o.To == d.To && o.Time > d.Time && o.Time <= until {
			return false
		}
	}
	for _, c := range ref.Commits {
		ct := sim.Time(c.Time)
		if ct > d.Time && ct <= until {
			return false
		}
	}
	return true
}

// dfs extends the current schedule with every decision at index >= next,
// depth-first. Returns true when a violation was found (stop everything).
func (e *explorer) dfs(prefix []core.Plan, next, drops, delays, crashes int) bool {
	for j := next; j < len(e.decisions); j++ {
		d := e.decisions[j]
		ndr, nde, ncr := drops, delays, crashes
		switch d.kind {
		case kindDrop:
			if ndr == 0 {
				continue
			}
			ndr--
		case kindDelay:
			if nde == 0 {
				continue
			}
			nde--
		case kindCrash:
			if ncr == 0 {
				continue
			}
			ncr--
		}
		if e.stats.SchedulesExecuted >= uint64(e.bounds.MaxSchedules) {
			e.exhausted = true
			return false
		}
		plans := make([]core.Plan, len(prefix)+1)
		copy(plans, prefix)
		plans[len(prefix)] = d.plan
		sched := core.SequencePlan{Name: "explore", Plans: plans}
		exec, tr := e.forker.Run(sched)
		e.stats.SchedulesExecuted++
		if exec.Detected {
			e.witness = sched
			e.found = true
			return true
		}
		// Key on the FULL-run fingerprint, not a window-clipped prefix:
		// with Window > 0 a delay can push deliveries past the window
		// end, so two runs identical inside the window may still diverge
		// afterwards — and the oracle can fire in that suffix. A prefix
		// key could collapse a subtree holding the only violation.
		key := tr.StateHash()
		if e.dominated(key, j+1, ndr, nde, ncr) {
			e.stats.CollapsedVisited += e.spaceFrom(j+1, ndr, nde, ncr) - 1
			continue
		}
		e.visited[key] = append(e.visited[key], visitEntry{j + 1, ndr, nde, ncr})
		if e.dfs(plans, j+1, ndr, nde, ncr) {
			return true
		}
		if e.exhausted {
			return false
		}
	}
	return false
}

// dominated reports whether a prior visit of state key could reach every
// schedule the current node can: it had at least the remaining decisions
// (a lower next index) and at least the remaining budget.
func (e *explorer) dominated(key uint64, next, drops, delays, crashes int) bool {
	for _, v := range e.visited[key] {
		if v.next <= next && v.drops >= drops && v.delays >= delays && v.cr >= crashes {
			return true
		}
	}
	return false
}

func (e *explorer) buildWitness(t core.Target, ref *trace.Trace) *Witness {
	minimal, execs := core.MinimizeSeedRun(t, e.witness, e.cfg.Seed, e.forker.Runner())
	mexec, mtr := e.forker.Run(minimal)
	expl := explain.FromTraces(t, minimal, e.cfg.Seed, ref, mtr, mexec.Violations)
	return &Witness{
		Schedule:      e.witness.ID(),
		MinimalID:     minimal.ID(),
		MinimalPlan:   minimal.Describe(),
		MinimizeExecs: execs,
		Explanation:   expl,
	}
}

// indexSuffixes precomputes per-kind counts of decisions[i:], backing the
// exact size of pruned subtrees.
func (e *explorer) indexSuffixes() {
	n := len(e.decisions)
	e.sufDrop = make([]int, n+1)
	e.sufDelay = make([]int, n+1)
	e.sufCrash = make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		e.sufDrop[i], e.sufDelay[i], e.sufCrash[i] = e.sufDrop[i+1], e.sufDelay[i+1], e.sufCrash[i+1]
		switch e.decisions[i].kind {
		case kindDrop:
			e.sufDrop[i]++
		case kindDelay:
			e.sufDelay[i]++
		case kindCrash:
			e.sufCrash[i]++
		}
	}
}

// spaceFrom counts the schedules over decisions[i:] within the remaining
// budget (the empty schedule included).
func (e *explorer) spaceFrom(i, drops, delays, crashes int) uint64 {
	return spaceCounts(e.sufDrop[i], e.sufDelay[i], e.sufCrash[i], drops, delays, crashes)
}

type counts struct{ drop, delay, crash int }

func kindCounts(list []decision) counts {
	var c counts
	for _, d := range list {
		switch d.kind {
		case kindDrop:
			c.drop++
		case kindDelay:
			c.delay++
		case kindCrash:
			c.crash++
		}
	}
	return c
}

// spaceOf counts the schedules (decision subsets within the bounds) a
// decision list spans. Budgets are per kind, so the count factors into a
// product of binomial sums.
func spaceOf(c counts, b Bounds) uint64 {
	return spaceCounts(c.drop, c.delay, c.crash, b.Drops, b.Delays, b.Crashes)
}

func spaceCounts(nDrop, nDelay, nCrash, drops, delays, crashes int) uint64 {
	return satMul(satMul(chooseUpTo(nDrop, drops), chooseUpTo(nDelay, delays)), chooseUpTo(nCrash, crashes))
}

// chooseUpTo sums C(n, 0..k) with saturation.
func chooseUpTo(n, k int) uint64 {
	total := uint64(0)
	for i := 0; i <= k && i <= n; i++ {
		total = satAdd(total, binom(n, i))
	}
	if total == 0 {
		total = 1 // k < 0 cannot happen; n == 0 → only the empty choice
	}
	return total
}

const satCap = math.MaxUint64 / 4

func satAdd(a, b uint64) uint64 {
	if a > satCap || b > satCap || a+b > satCap {
		return satCap
	}
	return a + b
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > satCap/b {
		return satCap
	}
	return a * b
}

func binom(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := uint64(1)
	for i := 1; i <= k; i++ {
		f := uint64(n - k + i)
		if out > satCap/f {
			// Saturate HERE, before the division: dividing a capped
			// product by i would yield an arbitrary sub-cap value that
			// downstream saturating arithmetic treats as exact.
			return satCap
		}
		out = out * f / uint64(i)
	}
	return out
}

// quantileTimes samples up to max distinct arrival times from the
// decision list, evenly by rank — the checkpoint placement hint.
func quantileTimes(list []decision, max int) []sim.Time {
	var times []sim.Time
	seen := map[sim.Time]bool{}
	for _, d := range list {
		if !seen[d.delivery.Time] {
			seen[d.delivery.Time] = true
			times = append(times, d.delivery.Time)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	if len(times) <= max {
		return times
	}
	out := make([]sim.Time, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, times[i*(len(times)-1)/(max-1)])
	}
	return out
}
