package sim

import (
	"fmt"
	"testing"
)

// linkRig builds a two-node network and returns a receive log the handler
// appends to on every delivery.
func linkRig(seed int64, latency, jitter Duration) (*Kernel, *Network, *[]string) {
	k := NewKernel(seed)
	n := NewNetwork(k, latency, jitter)
	var log []string
	n.Register("a", HandlerFunc(func(m *Message) {}))
	n.Register("b", HandlerFunc(func(m *Message) {
		log = append(log, fmt.Sprintf("#%d@%s", m.Seq, k.Now()))
	}))
	return k, n, &log
}

// TestLinkQualityDeterministic: identical seeds and identical LinkQuality
// yield identical delivery logs and stats; a different seed yields a
// different schedule (the degradation is RNG-driven, not fixed).
func TestLinkQualityDeterministic(t *testing.T) {
	run := func(seed int64) ([]string, NetStats) {
		k, n, log := linkRig(seed, Millisecond, Millisecond)
		n.SetLinkQuality("a", "b", LinkQuality{
			ExtraLatency: 2 * Millisecond, ExtraJitter: 3 * Millisecond,
			DropPercent: 30, DupPercent: 30, ReorderPercent: 30,
		})
		for i := 0; i < 200; i++ {
			at := Time(i) * Time(Millisecond)
			k.At(at, func() { n.Send("a", "b", "data", i) })
		}
		k.Run(Time(Second))
		return *log, n.Stats()
	}
	l1, s1 := run(7)
	l2, s2 := run(7)
	if fmt.Sprint(l1) != fmt.Sprint(l2) || s1 != s2 {
		t.Fatalf("same seed produced different degraded schedules:\n%v\n%v\n%+v vs %+v", l1, l2, s1, s2)
	}
	l3, _ := run(8)
	if fmt.Sprint(l1) == fmt.Sprint(l3) {
		t.Fatal("different seeds produced identical degraded schedules; RNG not in use")
	}
}

// TestLinkQualityDropAll: DropPercent 100 loses every message;
// DropPercent 0 loses none.
func TestLinkQualityDropAll(t *testing.T) {
	k, n, log := linkRig(1, Millisecond, 0)
	n.SetLinkQualityOneWay("a", "b", LinkQuality{DropPercent: 100})
	for i := 0; i < 50; i++ {
		n.Send("a", "b", "data", i)
	}
	k.Run(Time(Second))
	if len(*log) != 0 {
		t.Fatalf("DropPercent=100 delivered %d messages", len(*log))
	}
	st := n.Stats()
	if st.FlakyDrops != 50 || st.Dropped != 50 {
		t.Fatalf("want 50 flaky drops, got %+v", st)
	}
	n.ClearLinkQuality("a", "b")
	for i := 0; i < 50; i++ {
		n.Send("a", "b", "data", i)
	}
	k.Run(2 * Time(Second))
	if len(*log) != 50 {
		t.Fatalf("healthy link delivered %d/50", len(*log))
	}
}

// TestLinkQualityDupAll: DupPercent 100 delivers every message exactly twice.
func TestLinkQualityDupAll(t *testing.T) {
	k, n, log := linkRig(1, Millisecond, 0)
	n.SetLinkQualityOneWay("a", "b", LinkQuality{DupPercent: 100})
	for i := 0; i < 20; i++ {
		n.Send("a", "b", "data", i)
	}
	k.Run(Time(Second))
	if len(*log) != 40 {
		t.Fatalf("DupPercent=100 delivered %d messages, want 40", len(*log))
	}
	st := n.Stats()
	if st.Duplicated != 20 || st.Delivered != 40 {
		t.Fatalf("want 20 duplicated / 40 delivered, got %+v", st)
	}
}

// TestLinkQualityReorderBounded: with ReorderPercent set, some messages
// overtake the FIFO stream, but displacement stays within the configured
// bound; with no quality the stream is strictly FIFO.
func TestLinkQualityReorderBounded(t *testing.T) {
	const msgs = 300
	run := func(q LinkQuality) []uint64 {
		k := NewKernel(3)
		n := NewNetwork(k, Millisecond, Millisecond)
		var order []uint64
		n.Register("a", HandlerFunc(func(m *Message) {}))
		n.Register("b", HandlerFunc(func(m *Message) { order = append(order, m.Seq) }))
		if q.active() {
			n.SetLinkQualityOneWay("a", "b", q)
		}
		for i := 0; i < msgs; i++ {
			at := Time(i) * Time(100*Microsecond)
			k.At(at, func() { n.Send("a", "b", "data", i) })
		}
		k.Run(Time(Second))
		return order
	}

	fifo := run(LinkQuality{})
	if len(fifo) != msgs {
		t.Fatalf("healthy link delivered %d/%d", len(fifo), msgs)
	}
	for i := 1; i < len(fifo); i++ {
		if fifo[i] < fifo[i-1] {
			t.Fatalf("healthy link reordered: %d before %d", fifo[i-1], fifo[i])
		}
	}

	const bound = 5 * Millisecond
	re := run(LinkQuality{ReorderPercent: 40, ReorderDelay: bound})
	if len(re) != msgs {
		t.Fatalf("reordering link lost messages: %d/%d", len(re), msgs)
	}
	inversions := 0
	maxDisp := 0
	for i := 1; i < len(re); i++ {
		if re[i] < re[i-1] {
			inversions++
		}
	}
	for pos, seq := range re {
		disp := pos - int(seq-1)
		if disp < 0 {
			disp = -disp
		}
		if disp > maxDisp {
			maxDisp = disp
		}
	}
	if inversions == 0 {
		t.Fatal("ReorderPercent=40 produced a perfectly ordered stream")
	}
	// Displacement is bounded: a message can move by at most the number of
	// messages sent within latency+jitter+bound of it (here ~7ms / 100µs
	// spacing ≈ 70 positions, comfortably below the stream length).
	if maxDisp > 80 {
		t.Fatalf("reorder displacement %d exceeds bound", maxDisp)
	}
}

// TestLinkQualityDoesNotPerturbHealthyRNG: configuring quality on one link
// must not change the RNG draw sequence — and therefore the schedule — of
// traffic on other links.
func TestLinkQualityDoesNotPerturbHealthyRNG(t *testing.T) {
	run := func(degradeOther bool) []string {
		k := NewKernel(5)
		n := NewNetwork(k, Millisecond, Millisecond)
		var log []string
		n.Register("a", HandlerFunc(func(m *Message) {}))
		n.Register("b", HandlerFunc(func(m *Message) {
			log = append(log, fmt.Sprintf("#%d@%s", m.Seq, k.Now()))
		}))
		n.Register("c", HandlerFunc(func(m *Message) {}))
		if degradeOther {
			// Degraded link carries no traffic: latency/jitter/drop rolls on
			// a->b must be unaffected.
			n.SetLinkQuality("a", "c", LinkQuality{DropPercent: 50, DupPercent: 50})
		}
		for i := 0; i < 100; i++ {
			at := Time(i) * Time(Millisecond)
			k.At(at, func() { n.Send("a", "b", "data", i) })
		}
		k.Run(Time(Second))
		return log
	}
	clean := run(false)
	withQuality := run(true)
	if fmt.Sprint(clean) != fmt.Sprint(withQuality) {
		t.Fatal("idle degraded link changed the schedule of healthy traffic")
	}
}
