package campaign

// This file is the single canonicalization point for byte-identity
// comparisons of campaign outputs. Campaign results are deterministic by
// construction — the execution set, buckets, outcomes, failures, and
// telemetry are pure functions of (target, strategy, config, seeds) — but
// four fields measure the host machine rather than the simulation:
//
//	Stats.WallNanos        ("wall_ns")            campaign wall-clock time
//	Stats.ExecutionsPerSec ("executions_per_sec") derived from wall time
//	Stats.RawExecutions    ("raw_executions")     includes in-flight work a
//	                                              detection made redundant —
//	                                              how much depends on worker
//	                                              timing, so two identical
//	                                              campaigns can differ here
//	PlanOutcome.WallMicros ("wall_us")            per-execution wall time
//
// Stats.Workers and Artifact.Workers are config echoes, not execution
// results; tests comparing campaigns across worker counts must ignore
// them too. Stats.Fleet ("fleet") likewise measures the host, not the
// simulation: which worker process died, how many times a task was
// retried before a healthy worker finished it. Scrubbing it is the farm's
// fault-tolerance invariant in miniature — a campaign with injected
// worker crashes must canonicalize to the same bytes as a failure-free
// run, because retried tasks are deterministic re-executions. Every
// byte-identity test (cross-worker determinism, snapshot on/off
// equivalence, chaos-farm equivalence, bench drift) goes through these
// helpers so no test grows its own slightly-different scrub list.

// Canonicalize returns res with every environment-dependent field zeroed:
// the wall-clock measurements and the worker-count config echo. Two
// canonicalized Results from equivalent campaigns compare equal with
// reflect.DeepEqual; everything that survives is part of the
// deterministic execution set.
func Canonicalize(res Result) Result {
	res.Stats = canonicalStats(res.Stats)
	res.Outcomes = canonicalOutcomes(res.Outcomes)
	return res
}

/// CanonicalizeArtifact is Canonicalize for the campaign.json form: the
// same three wall-clock fields plus the top-level and Stats worker-count
// echoes are zeroed, so canonicalized artifacts from equivalent campaigns
// marshal to identical bytes.
func CanonicalizeArtifact(art Artifact) Artifact {
	art.Workers = 0
	art.Stats = canonicalStats(art.Stats)
	art.Outcomes = canonicalOutcomes(art.Outcomes)
	return art
}

func canonicalStats(st Stats) Stats {
	st.Workers = 0
	st.WallNanos = 0
	st.ExecutionsPerSec = 0
	st.RawExecutions = 0
	st.Fleet = nil
	return st
}

func canonicalOutcomes(outs []PlanOutcome) []PlanOutcome {
	if outs == nil {
		return nil
	}
	canon := make([]PlanOutcome, len(outs))
	copy(canon, outs)
	for i := range canon {
		canon[i].WallMicros = 0
	}
	return canon
}
