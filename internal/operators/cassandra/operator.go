// Package cassandra implements the Cassandra operator: a controller that
// reconciles a CassandraCluster custom resource into member pods
// (cass-0..cass-N-1) with one PVC each, handling scale-up, scale-down with
// decommission, and storage cleanup.
//
// It deliberately reproduces the three real bugs the paper's tool found in
// instaclustr/cassandra-operator (Section 7):
//
//   - #398 (observability gap): PVC cleanup triggers only on *observing* a
//     member pod in Terminating state; if the mark and the removal both
//     fall outside the operator's view, the PVC is orphaned.
//   - #400 (staleness / time travel): the decommission target is chosen
//     from the CR's status (ReadyMembers) — data the operator itself wrote
//     earlier and may now read back stale — so it can decommission the
//     wrong member and wedge the scale-down.
//   - #402 (staleness): PVC garbage collection trusts the cached view of
//     the CR spec and pods; after a restart against a stale apiserver it
//     deletes the PVC of a live member.
//
// Each bug has an independent fix flag so experiments can toggle them.
package cassandra

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/sim"
)

// Fixes selects which of the three bug fixes are active. The zero value is
// the stock (buggy) operator.
type Fixes struct {
	// Fix398 also deletes PVCs whose owner pod is absent (not only
	// observed-terminating).
	Fix398 bool
	// Fix400 chooses the decommission target from the live pod list
	// instead of the CR status, and un-wedges a decommission whose target
	// no longer exists.
	Fix400 bool
	// Fix402 verifies a resumed decommission against a quorum read of the
	// CR, and re-drains in the safe order (mark, await, then storage)
	// instead of deleting the PVC first.
	Fix402 bool
	// DefensiveRelist makes the operator's informers periodically relist,
	// bounding how long a silently lost notification can skew its view —
	// part of the hardened configuration.
	DefensiveRelist bool
}

// AllFixed enables every fix.
func AllFixed() Fixes {
	return Fixes{Fix398: true, Fix400: true, Fix402: true, DefensiveRelist: true}
}

// Config tunes the operator.
type Config struct {
	// APIServer is the operator's upstream.
	APIServer sim.NodeID
	// ClusterName is the CassandraCluster CR the operator manages.
	ClusterName string
	// Fixes toggles the per-bug fixes.
	Fixes Fixes
	// DrainTime is how long a decommission drain takes.
	DrainTime sim.Duration
	// ResyncInterval re-enqueues the CR periodically (level triggering).
	ResyncInterval sim.Duration
	// RPCTimeout bounds apiserver calls.
	RPCTimeout sim.Duration
}

// DefaultConfig returns the stock (buggy) operator configuration.
func DefaultConfig(api sim.NodeID, name string) Config {
	return Config{
		APIServer:      api,
		ClusterName:    name,
		DrainTime:      100 * sim.Millisecond,
		ResyncInterval: 200 * sim.Millisecond,
		RPCTimeout:     200 * sim.Millisecond,
	}
}

// Operator is the Cassandra operator process.
type Operator struct {
	id    sim.NodeID
	world *sim.World
	cfg   Config

	conn   *client.Conn
	crInf  *client.Informer
	podInf *client.Informer
	pvcInf *client.Informer
	queue  *controller.Queue
	down   bool
	epoch  uint64
	uids   *cluster.UIDGen

	// draining tracks an in-flight drain (decommission) per member.
	draining map[string]bool
	// sawTerminating records member pods observed in Terminating state —
	// the (gap-prone) trigger for the stock PVC cleanup.
	sawTerminating map[string]bool

	// Metrics.
	PodCreates     int
	PodDeletes     int
	PVCCreates     int
	PVCDeletes     int
	Decommissions  int
	WrongDecomm    int // decommissions of a member that was not the true tail
	StuckReconcile int
}

// OperatorID is the operator's network identity.
const OperatorID sim.NodeID = "cassandra-operator"

// New wires the operator into the world.
func New(w *sim.World, cfg Config) *Operator {
	o := &Operator{
		id:             OperatorID,
		world:          w,
		cfg:            cfg,
		uids:           cluster.NewUIDGen("cass-op"),
		draining:       make(map[string]bool),
		sawTerminating: make(map[string]bool),
	}
	w.Network().Register(o.id, o)
	w.AddProcess(o)
	o.boot()
	return o
}

// ID implements sim.Process.
func (o *Operator) ID() sim.NodeID { return o.id }

// Crash implements sim.Process.
func (o *Operator) Crash() {
	o.down = true
	o.epoch++
	if o.conn != nil {
		o.conn.Reset()
	}
	if o.queue != nil {
		o.queue.Stop()
	}
	o.crInf, o.podInf, o.pvcInf = nil, nil, nil
	// Volatile memory: in-flight drains and observed marks are forgotten —
	// which is why the 398 gap also opens across operator restarts.
	o.draining = make(map[string]bool)
	o.sawTerminating = make(map[string]bool)
}

// Restart implements sim.Process.
func (o *Operator) Restart() {
	o.down = false
	o.boot()
}

// HandleMessage implements sim.Handler.
func (o *Operator) HandleMessage(m *sim.Message) {
	if o.down || o.conn == nil {
		return
	}
	o.conn.HandleMessage(m)
}

// SwitchAPIServer repoints the operator (perturbation hook).
func (o *Operator) SwitchAPIServer(api sim.NodeID) {
	if o.conn != nil {
		o.conn.SwitchAPIServer(api)
	}
}

// SetUpstream changes the apiserver the operator will connect to on its
// next (re)boot — the time-travel ingredient: a restarted operator may come
// back against a stale upstream.
func (o *Operator) SetUpstream(api sim.NodeID) { o.cfg.APIServer = api }

// SetRestartUpstream implements core.Resteerable.
func (o *Operator) SetRestartUpstream(api sim.NodeID) { o.SetUpstream(api) }

func (o *Operator) boot() {
	o.epoch++
	epoch := o.epoch
	o.conn = client.NewConn(o.world, o.id, o.cfg.APIServer, o.cfg.RPCTimeout)
	o.queue = controller.NewQueue(o.world.Kernel(), controller.DefaultQueueConfig(),
		controller.ReconcilerFunc(o.reconcile))
	o.queue.SetOwner(string(o.id))
	infCfg := client.InformerConfig{WatchTimeout: sim.Second}
	if o.cfg.Fixes.DefensiveRelist {
		infCfg.RelistEvery = 1500 * sim.Millisecond
	}
	o.crInf = client.NewInformer(o.conn, cluster.KindCassandra, infCfg)
	o.crInf.AddHandler(controller.EnqueueHandler{Queue: o.queue})
	o.podInf = client.NewInformer(o.conn, cluster.KindPod, infCfg)
	o.podInf.AddHandler(client.HandlerFuncs{
		AddFunc: func(p *cluster.Object) { o.observePod(p) },
		UpdateFunc: func(_, p *cluster.Object) {
			o.observePod(p)
		},
		DeleteFunc: func(p *cluster.Object) {
			if o.isMember(p) {
				o.queue.Add(o.cfg.ClusterName)
			}
		},
	})
	o.pvcInf = client.NewInformer(o.conn, cluster.KindPVC, infCfg)
	o.crInf.Run()
	o.podInf.Run()
	o.pvcInf.Run()
	o.scheduleResync(epoch)
}

func (o *Operator) observePod(p *cluster.Object) {
	if !o.isMember(p) {
		return
	}
	if p.Terminating() {
		o.sawTerminating[p.Meta.Name] = true
	}
	o.queue.Add(o.cfg.ClusterName)
}

func (o *Operator) scheduleResync(epoch uint64) {
	tag := sim.EventTag{Owner: string(o.id), Kind: "resync", Epoch: epoch}
	o.world.Kernel().ScheduleTagged(o.cfg.ResyncInterval, tag, func() { o.resyncFire(epoch) })
}

// resyncFire is the resync timer body, named so a restored cluster can
// rearm a pending resync event by tag.
func (o *Operator) resyncFire(epoch uint64) {
	if o.down || epoch != o.epoch {
		return
	}
	o.queue.Add(o.cfg.ClusterName)
	o.scheduleResync(epoch)
}

// Naming helpers.

func (o *Operator) memberName(i int) string { return o.cfg.ClusterName + "-" + strconv.Itoa(i) }

func (o *Operator) pvcName(member string) string { return member + "-data" }

func (o *Operator) isMember(p *cluster.Object) bool {
	return p.Pod != nil && p.Pod.App == o.cfg.ClusterName &&
		strings.HasPrefix(p.Meta.Name, o.cfg.ClusterName+"-")
}

func (o *Operator) ordinalOf(name string) int {
	rest := strings.TrimPrefix(name, o.cfg.ClusterName+"-")
	n, err := strconv.Atoi(rest)
	if err != nil {
		return -1
	}
	return n
}

// members returns current member pods from the operator's view, sorted by
// ordinal.
func (o *Operator) members() []*cluster.Object {
	var out []*cluster.Object
	for _, p := range o.podInf.ListCached() {
		if o.isMember(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return o.ordinalOf(out[i].Meta.Name) < o.ordinalOf(out[j].Meta.Name)
	})
	return out
}

// reconcile drives the CR toward its desired replica count.
func (o *Operator) reconcile(key string) (controller.Result, error) {
	if key != o.cfg.ClusterName {
		return controller.Result{}, nil
	}
	if !o.crInf.Synced() || !o.podInf.Synced() || !o.pvcInf.Synced() {
		return controller.Result{Requeue: true, RequeueAfter: 50 * sim.Millisecond}, nil
	}
	cr, ok := o.crInf.Get(o.cfg.ClusterName)
	if !ok || cr.Cassandra == nil || cr.Terminating() {
		return controller.Result{}, nil
	}
	epoch := o.epoch
	desired := cr.Cassandra.Replicas
	members := o.members()
	live := make([]*cluster.Object, 0, len(members))
	for _, m := range members {
		if !m.Terminating() {
			live = append(live, m)
		}
	}

	// In-flight decommission: wait for it to finish before other moves.
	if cr.Cassandra.Decommissioning != "" {
		o.continueDecommission(epoch, cr)
		o.sweepOrphanPVCs(epoch, cr, members)
		return controller.Result{Requeue: true, RequeueAfter: 50 * sim.Millisecond}, nil
	}

	switch {
	case len(live) < desired:
		o.scaleUp(epoch, cr, live, desired)
	case len(live) > desired:
		o.startDecommission(epoch, cr, live)
	default:
		o.updateStatus(epoch, cr, live)
	}
	o.sweepOrphanPVCs(epoch, cr, members)
	return controller.Result{}, nil
}

// scaleUp creates missing member pods (and their PVCs) up to desired.
func (o *Operator) scaleUp(epoch uint64, cr *cluster.Object, live []*cluster.Object, desired int) {
	have := make(map[string]bool, len(live))
	for _, m := range live {
		have[m.Meta.Name] = true
	}
	for i := 0; i < desired; i++ {
		name := o.memberName(i)
		if have[name] {
			continue
		}
		o.ensurePVC(epoch, name)
		pod := cluster.NewPod(name, o.uids.Next(), cluster.PodSpec{
			App:   o.cfg.ClusterName,
			Phase: cluster.PodPending,
		})
		pod.Meta.OwnerUID = cr.Meta.UID
		o.conn.Create(pod, func(_ *cluster.Object, err error) {
			if o.down || epoch != o.epoch {
				return
			}
			if err == nil {
				o.PodCreates++
			}
			o.queue.AddAfter(o.cfg.ClusterName, 20*sim.Millisecond)
		})
	}
}

func (o *Operator) ensurePVC(epoch uint64, member string) {
	name := o.pvcName(member)
	if _, ok := o.pvcInf.Get(name); ok {
		return
	}
	pvc := cluster.NewPVC(name, o.uids.Next(), cluster.PVCSpec{
		OwnerPod: member,
		Phase:    cluster.PVCBound,
		SizeGB:   100,
	})
	o.conn.Create(pvc, func(_ *cluster.Object, err error) {
		if o.down || epoch != o.epoch {
			return
		}
		if err == nil {
			o.PVCCreates++
		}
	})
}

// rackOfOrdinal returns the rack member ordinal ord occupies under the
// CR's round-robin rack assignment ("" when racks are not configured).
func rackOfOrdinal(racks []string, ord int) string {
	if len(racks) == 0 || ord < 0 {
		return ""
	}
	return racks[ord%len(racks)]
}

// decommissionTarget picks which member of names (sorted by ordinal) to
// drain. Without racks this is the flat ordering the operator always had:
// the last (highest-ordinal) entry. With racks configured it is
// rack-aware: the highest-ordinal member of the most-populated rack(s) —
// scale-down rebalances unbalanced racks first, mirroring
// cass-operator's scale_down_unbalanced_racks scenario. When racks are
// balanced every rack is most-populated and the choice degenerates to
// the flat tail, so balanced worlds behave exactly as before.
func (o *Operator) decommissionTarget(racks, names []string) string {
	if len(names) == 0 {
		return ""
	}
	if len(racks) == 0 {
		return names[len(names)-1]
	}
	counts := make(map[string]int, len(racks))
	for _, n := range names {
		if r := rackOfOrdinal(racks, o.ordinalOf(n)); r != "" {
			counts[r]++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	best, target := -1, ""
	for _, n := range names {
		ord := o.ordinalOf(n)
		r := rackOfOrdinal(racks, ord)
		if r != "" && counts[r] == max && ord > best {
			best, target = ord, n
		}
	}
	if target == "" {
		return names[len(names)-1]
	}
	return target
}

// startDecommission picks the member to remove and begins draining it.
//
// Stock behaviour (#400): the target is chosen from the CR status's
// ReadyMembers list — state the operator wrote on an earlier reconcile and
// has now read back through a possibly stale cache. If that status lags the
// real membership, the operator drains the wrong member, or a member that
// no longer exists (wedging the scale-down).
//
// Fixed behaviour: the target is chosen from the live pod list. Either
// way the choice within the list is decommissionTarget's (rack-aware when
// the CR configures racks, flat tail otherwise).
func (o *Operator) startDecommission(epoch uint64, cr *cluster.Object, live []*cluster.Object) {
	racks := cr.Cassandra.Racks
	liveNames := make([]string, 0, len(live))
	for _, m := range live {
		liveNames = append(liveNames, m.Meta.Name)
	}
	var target string
	if o.cfg.Fixes.Fix400 {
		target = o.decommissionTarget(racks, liveNames)
	} else {
		rm := cr.Cassandra.ReadyMembers
		if len(rm) == 0 {
			// No status yet: fall back to the live view.
			target = o.decommissionTarget(racks, liveNames)
		} else {
			target = o.decommissionTarget(racks, rm)
		}
	}
	trueTail := o.decommissionTarget(racks, liveNames)
	upd := cr.Clone()
	upd.Cassandra.Decommissioning = target
	o.conn.Update(upd, func(_ *cluster.Object, err error) {
		if o.down || epoch != o.epoch {
			return
		}
		if err != nil {
			o.queue.AddAfter(o.cfg.ClusterName, 50*sim.Millisecond)
			return
		}
		o.Decommissions++
		if target != trueTail {
			o.WrongDecomm++
		}
		o.drain(epoch, target)
	})
}

// drain simulates the Cassandra drain, then two-phase-deletes the pod and
// cleans up its storage.
func (o *Operator) drain(epoch uint64, member string) {
	if o.draining[member] {
		return
	}
	// The marker stays set through drain *and* cleanup, so reconcile never
	// "resumes" an operation this process is still executing. Only a crash
	// (which wipes the map) leaves a resumable CR marker behind.
	o.draining[member] = true
	tag := sim.EventTag{Owner: string(o.id), Kind: "drain", Key: member, Epoch: epoch}
	o.world.Kernel().ScheduleTagged(o.cfg.DrainTime, tag, func() { o.drainFire(epoch, member) })
}

// drainFire completes a drain once the drain time elapses, named so a
// restored cluster can rearm a pending drain event by tag.
func (o *Operator) drainFire(epoch uint64, member string) {
	if o.down || epoch != o.epoch {
		return
	}
	pod, ok := o.podInf.Get(member)
	if !ok {
		// Target already gone (e.g. a ghost from stale status, or the
		// kubelet finalized faster than the drain).
		o.maybeCleanupPVC(epoch, member)
		delete(o.draining, member)
		o.clearDecommission(epoch)
		return
	}
	marked := pod.Clone()
	marked.Meta.DeletionTimestamp = int64(o.world.Now())
	o.conn.Update(marked, func(_ *cluster.Object, err error) {
		if o.down || epoch != o.epoch {
			return
		}
		if err != nil {
			delete(o.draining, member)
			o.queue.AddAfter(o.cfg.ClusterName, 50*sim.Millisecond)
			return
		}
		// Unscheduled members have no kubelet to finalize them; the
		// operator removes the object itself. Scheduled members are
		// finalized by their kubelet once containers stop.
		if pod.Pod.NodeName == "" {
			o.conn.Delete(cluster.KindPod, member, 0, func(err error) {
				if err == nil {
					o.PodDeletes++
				}
			})
		}
		o.awaitGoneThenCleanup(epoch, member, 64)
	})
}

// awaitGoneThenCleanup polls the operator's own view until the member pod
// disappears, then cleans up the PVC and finishes the decommission.
func (o *Operator) awaitGoneThenCleanup(epoch uint64, member string, attempts int) {
	if o.down || epoch != o.epoch {
		return
	}
	if _, ok := o.podInf.Get(member); !ok {
		o.maybeCleanupPVC(epoch, member)
		delete(o.draining, member)
		o.clearDecommission(epoch)
		return
	}
	if attempts <= 0 {
		o.StuckReconcile++
		delete(o.draining, member)
		return
	}
	next := attempts - 1
	tag := sim.EventTag{
		Owner: string(o.id), Kind: "awaitgone",
		Key: member + "#" + strconv.Itoa(next), Epoch: epoch,
	}
	o.world.Kernel().ScheduleTagged(20*sim.Millisecond, tag, func() {
		o.awaitGoneThenCleanup(epoch, member, next)
	})
}

// maybeCleanupPVC removes the decommissioned member's PVC.
//
// Stock behaviour (#398): the deletion requires the operator to have
// *observed* the member pod carrying a DeletionTimestamp. If that
// observation was lost — dropped notification, or an operator restart wiped
// the in-memory record — the PVC is silently kept forever (storage leak).
// Fix398 deletes on absence regardless.
func (o *Operator) maybeCleanupPVC(epoch uint64, member string) {
	if !o.cfg.Fixes.Fix398 && !o.sawTerminating[member] {
		return // never saw the deletionTimestamp → skip (the bug)
	}
	pvc, ok := o.pvcInf.Get(o.pvcName(member))
	if !ok {
		return
	}
	o.conn.Delete(cluster.KindPVC, pvc.Meta.Name, 0, func(err error) {
		if o.down || epoch != o.epoch {
			return
		}
		if err == nil {
			o.PVCDeletes++
			delete(o.sawTerminating, member)
		}
	})
}

// continueDecommission resumes an in-flight decommission found in the CR —
// typically after an operator restart.
//
// Stock behaviour (#402): the operator trusts the (possibly stale) cached
// CR. If the decommission actually completed long ago and the member was
// since re-created by a scale-up, the resumed "cleanup" destroys a live
// member: it deletes the PVC first (storage cleanup before kill, as the
// original code did) and then removes the pod. Fix402 verifies the CR with
// a quorum read before resuming.
func (o *Operator) continueDecommission(epoch uint64, cr *cluster.Object) {
	member := cr.Cassandra.Decommissioning
	if o.draining[member] {
		return
	}
	if !o.cfg.Fixes.Fix402 {
		o.resumeDecommission(epoch, member)
		return
	}
	o.conn.Get(cluster.KindCassandra, o.cfg.ClusterName, true, func(truth *cluster.Object, found bool, err error) {
		if o.down || epoch != o.epoch || err != nil || !found || truth.Cassandra == nil {
			return
		}
		if truth.Cassandra.Decommissioning != member {
			// The cached CR was stale; nothing to resume. The informer
			// will catch up on its own.
			return
		}
		// Genuine resume: re-run the drain in the safe order (mark,
		// await disappearance, then clean up storage).
		o.drain(epoch, member)
	})
}

func (o *Operator) resumeDecommission(epoch uint64, member string) {
	if o.draining[member] {
		return
	}
	o.draining[member] = true
	pod, ok := o.podInf.Get(member)
	if !ok {
		o.maybeCleanupPVC(epoch, member)
		delete(o.draining, member)
		o.clearDecommission(epoch)
		return
	}
	// Resume: the drain is assumed already done before the interruption.
	// Clean up storage first, then remove the pod.
	if pvc, pok := o.pvcInf.Get(o.pvcName(member)); pok {
		o.conn.Delete(cluster.KindPVC, pvc.Meta.Name, 0, func(err error) {
			if err == nil {
				o.PVCDeletes++
			}
		})
	}
	marked := pod.Clone()
	marked.Meta.DeletionTimestamp = int64(o.world.Now())
	o.conn.Update(marked, func(_ *cluster.Object, err error) {
		if o.down || epoch != o.epoch {
			return
		}
		if err != nil {
			delete(o.draining, member)
			o.queue.AddAfter(o.cfg.ClusterName, 50*sim.Millisecond)
			return
		}
		if pod.Pod.NodeName == "" {
			o.conn.Delete(cluster.KindPod, member, 0, func(err error) {
				if err == nil {
					o.PodDeletes++
				}
			})
		}
		o.awaitGoneThenCleanup(epoch, member, 64)
	})
}

func (o *Operator) clearDecommission(epoch uint64) {
	cr, ok := o.crInf.Get(o.cfg.ClusterName)
	if !ok {
		return
	}
	upd := cr.Clone()
	upd.Cassandra.Decommissioning = ""
	o.conn.Update(upd, func(_ *cluster.Object, err error) {
		if o.down || epoch != o.epoch {
			return
		}
		o.queue.AddAfter(o.cfg.ClusterName, 20*sim.Millisecond)
	})
}

// updateStatus records the observed membership in the CR status. This is
// the data the stock decommission later trusts (#400).
func (o *Operator) updateStatus(epoch uint64, cr *cluster.Object, live []*cluster.Object) {
	names := make([]string, 0, len(live))
	for _, m := range live {
		names = append(names, m.Meta.Name)
	}
	if equalStrings(cr.Cassandra.ReadyMembers, names) {
		return
	}
	upd := cr.Clone()
	upd.Cassandra.ReadyMembers = names
	o.conn.Update(upd, func(*cluster.Object, error) {})
}

// sweepOrphanPVCs is the level-triggered garbage collector that the fixed
// operator gains with Fix398: any member PVC whose ordinal is beyond the
// desired count and whose owner pod is absent gets removed, with a quorum
// verification of both facts (so the sweep itself cannot be fooled by a
// stale cache). The stock operator has no such sweep — PVC cleanup is
// purely observation-triggered, which is exactly why missing the
// deletionTimestamp observation leaks storage.
func (o *Operator) sweepOrphanPVCs(epoch uint64, cr *cluster.Object, members []*cluster.Object) {
	if !o.cfg.Fixes.Fix398 {
		return
	}
	desired := cr.Cassandra.Replicas
	present := make(map[string]bool, len(members))
	for _, m := range members {
		present[m.Meta.Name] = true
	}
	for _, pvc := range o.pvcInf.ListCached() {
		if pvc.PVC == nil || pvc.PVC.OwnerPod == "" {
			continue
		}
		owner := pvc.PVC.OwnerPod
		ord := o.ordinalOf(owner)
		if ord < 0 || ord < desired || present[owner] {
			continue
		}
		name := pvc.Meta.Name
		// Verify against ground truth before destroying storage.
		o.conn.Get(cluster.KindPod, owner, true, func(_ *cluster.Object, found bool, err error) {
			if o.down || epoch != o.epoch || err != nil || found {
				return
			}
			o.conn.Delete(cluster.KindPVC, name, 0, func(err error) {
				if err == nil {
					o.PVCDeletes++
					delete(o.sawTerminating, owner)
				}
			})
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MemberPVCName exposes the operator's PVC naming for oracles/tests.
func MemberPVCName(clusterName string, ordinal int) string {
	return fmt.Sprintf("%s-%d-data", clusterName, ordinal)
}

// MemberPodName exposes the operator's pod naming for oracles/tests.
func MemberPodName(clusterName string, ordinal int) string {
	return fmt.Sprintf("%s-%d", clusterName, ordinal)
}
