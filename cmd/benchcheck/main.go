// Command benchcheck guards the committed benchmark artifacts against
// drift. BENCH_E5.json, BENCH_E6.json, BENCH_E10.json, BENCH_E11.json
// and BENCH_E12.json record the deterministic results of the E5
// (Section 7 bug-finding matrix), E6 (§6.1 planner efficiency), E10
// (snapshot-substrate equivalence: checkpoint-tree forking with zero
// fallbacks and snapshot-on/off byte-identity on all five targets),
// E11 (exhaustive-mode exploration vs guided/random sampling) and E12
// (serving-path scaling: indexed vs unindexed relay/list cost at 10,
// 100 and 500 nodes, with campaign byte-identity between the paths)
// experiments; benchcheck recomputes each from scratch —
// through the same internal/bench code path the benchmarks use — and
// fails with a field-level diff when a committed artifact disagrees with
// the fresh run. A behaviour change that shifts a detection, an execution
// count, or a pruning decision therefore breaks this check until the
// artifacts are regenerated (and the diff reviewed) with -write.
//
// Usage:
//
//	benchcheck [-e5 BENCH_E5.json] [-e6 BENCH_E6.json] [-e10 BENCH_E10.json] [-e11 BENCH_E11.json] [-e12 BENCH_E12.json] [-parallel N] [-write] [-json]
//
// With -json, stdout carries exactly one machine-readable report
// (per-artifact field-level diff entries, bench.DiffEntry form) and all
// progress chatter moves to stderr, so the output can feed CI tooling
// directly. Exit codes are unchanged: 0 artifacts agree, 1 drift
// detected or an artifact is missing/unreadable, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// artifactReport is one artifact's comparison result in -json form.
type artifactReport struct {
	Path    string            `json:"path"`
	Drift   bool              `json:"drift"`
	Error   string            `json:"error,omitempty"`
	Entries []bench.DiffEntry `json:"entries,omitempty"`
}

type jsonReport struct {
	Tool      string           `json:"tool"`
	Drift     bool             `json:"drift"`
	Artifacts []artifactReport `json:"artifacts"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	e5Path := fs.String("e5", "BENCH_E5.json", "committed E5 artifact path")
	e6Path := fs.String("e6", "BENCH_E6.json", "committed E6 artifact path")
	e10Path := fs.String("e10", "BENCH_E10.json", "committed E10 artifact path")
	e11Path := fs.String("e11", "BENCH_E11.json", "committed E11 artifact path")
	e12Path := fs.String("e12", "BENCH_E12.json", "committed E12 artifact path")
	parallel := fs.Int("parallel", 4, "worker-pool width for the recomputation (does not affect results)")
	write := fs.Bool("write", false, "regenerate the artifacts instead of checking them")
	jsonOut := fs.Bool("json", false, "emit a machine-readable field-level diff report on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// In -json mode stdout is reserved for the report document.
	status := stdout
	if *jsonOut {
		status = stderr
	}

	if *write {
		// Default parameters match bench_test.go (recorded in the files).
		if err := regenerate(status, *e5Path, *e6Path, *e10Path, *e11Path, *e12Path, *parallel); err != nil {
			fmt.Fprintln(stderr, "benchcheck:", err)
			return 1
		}
		return 0
	}

	reports := []artifactReport{
		checkE5(status, *e5Path, *parallel),
		checkE6(status, *e6Path, *parallel),
		checkE10(status, *e10Path, *parallel),
		checkE11(status, *e11Path, *parallel),
		checkE12(status, *e12Path, *parallel),
	}
	drift := false
	for _, r := range reports {
		drift = drift || r.Drift
	}

	if *jsonOut {
		doc := jsonReport{Tool: "benchcheck", Drift: drift, Artifacts: reports}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(stderr, "benchcheck:", err)
			return 1
		}
	} else {
		for _, r := range reports {
			report(stdout, stderr, r)
		}
	}
	if drift {
		fmt.Fprintln(stderr, "benchcheck: committed artifacts disagree with a fresh run; regenerate with -write and review the diff")
		return 1
	}
	fmt.Fprintln(status, "benchcheck: committed artifacts match the fresh run")
	return 0
}

func regenerate(status io.Writer, e5Path, e6Path, e10Path, e11Path, e12Path string, workers int) error {
	fmt.Fprintf(status, "benchcheck: computing E5 (max %d executions)...\n", 400)
	if err := bench.WriteFile(e5Path, bench.ComputeE5(400, workers)); err != nil {
		return err
	}
	fmt.Fprintf(status, "benchcheck: computing E6 (max %d executions)...\n", 800)
	if err := bench.WriteFile(e6Path, bench.ComputeE6(800, workers)); err != nil {
		return err
	}
	fmt.Fprintf(status, "benchcheck: computing E10 (max %d executions)...\n", 200)
	if err := bench.WriteFile(e10Path, bench.ComputeE10(200, workers)); err != nil {
		return err
	}
	fmt.Fprintf(status, "benchcheck: computing E11 (max %d executions)...\n", 200)
	if err := bench.WriteFile(e11Path, bench.ComputeE11(200, workers)); err != nil {
		return err
	}
	fmt.Fprintf(status, "benchcheck: computing E12 (max %d executions)...\n", 6)
	if err := bench.WriteFile(e12Path, bench.ComputeE12(6, workers)); err != nil {
		return err
	}
	fmt.Fprintf(status, "benchcheck: wrote %s, %s, %s, %s and %s\n", e5Path, e6Path, e10Path, e11Path, e12Path)
	return nil
}

// checkE5/checkE6 load one committed artifact, recompute it fresh at the
// committed budget, and report the field-level diff.
func checkE5(status io.Writer, path string, workers int) artifactReport {
	committed, err := bench.ReadE5(path)
	if err != nil {
		return artifactReport{Path: path, Drift: true, Error: err.Error()}
	}
	fmt.Fprintf(status, "benchcheck: recomputing %s (max %d executions)...\n", path, committed.MaxExecutions)
	entries := bench.DiffEntries(committed, bench.ComputeE5(committed.MaxExecutions, workers))
	return artifactReport{Path: path, Drift: len(entries) > 0, Entries: entries}
}

func checkE6(status io.Writer, path string, workers int) artifactReport {
	committed, err := bench.ReadE6(path)
	if err != nil {
		return artifactReport{Path: path, Drift: true, Error: err.Error()}
	}
	fmt.Fprintf(status, "benchcheck: recomputing %s (max %d executions)...\n", path, committed.MaxExecutions)
	entries := bench.DiffEntries(committed, bench.ComputeE6(committed.MaxExecutions, workers))
	return artifactReport{Path: path, Drift: len(entries) > 0, Entries: entries}
}

func checkE10(status io.Writer, path string, workers int) artifactReport {
	committed, err := bench.ReadE10(path)
	if err != nil {
		return artifactReport{Path: path, Drift: true, Error: err.Error()}
	}
	fmt.Fprintf(status, "benchcheck: recomputing %s (max %d executions)...\n", path, committed.MaxExecutions)
	entries := bench.DiffEntries(committed, bench.ComputeE10(committed.MaxExecutions, workers))
	return artifactReport{Path: path, Drift: len(entries) > 0, Entries: entries}
}

func checkE11(status io.Writer, path string, workers int) artifactReport {
	committed, err := bench.ReadE11(path)
	if err != nil {
		return artifactReport{Path: path, Drift: true, Error: err.Error()}
	}
	fmt.Fprintf(status, "benchcheck: recomputing %s (max %d executions)...\n", path, committed.MaxExecutions)
	entries := bench.DiffEntries(committed, bench.ComputeE11(committed.MaxExecutions, workers))
	return artifactReport{Path: path, Drift: len(entries) > 0, Entries: entries}
}

func checkE12(status io.Writer, path string, workers int) artifactReport {
	committed, err := bench.ReadE12(path)
	if err != nil {
		return artifactReport{Path: path, Drift: true, Error: err.Error()}
	}
	fmt.Fprintf(status, "benchcheck: recomputing %s (max %d executions)...\n", path, committed.MaxExecutions)
	entries := bench.DiffEntries(committed, bench.ComputeE12(committed.MaxExecutions, workers))
	return artifactReport{Path: path, Drift: len(entries) > 0, Entries: entries}
}

func report(stdout, stderr io.Writer, r artifactReport) {
	if r.Error != "" {
		fmt.Fprintln(stderr, "benchcheck:", r.Error)
		return
	}
	if !r.Drift {
		fmt.Fprintf(stdout, "benchcheck: %s agrees with the fresh run\n", r.Path)
		return
	}
	fmt.Fprintf(stderr, "benchcheck: %s drifted (%d differences):\n", r.Path, len(r.Entries))
	for _, e := range r.Entries {
		fmt.Fprintf(stderr, "  %s\n", e)
	}
}
