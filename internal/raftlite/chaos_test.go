package raftlite

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestChaosPrefixConsistency drives a 3-node cluster through randomized
// crash/restart/partition schedules while a client keeps proposing, and
// checks the core safety property on every schedule: all applied sequences
// are prefixes of one another (no divergence), and after the faults stop
// the cluster converges on a single history that contains every entry a
// proposer was told is committed... (commit acknowledgements are not
// modelled here, so the check is prefix + convergence).
func TestChaosPrefixConsistency(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			c := newCluster(t, 3, seed)
			rng := c.w.Kernel().Rand()

			// Proposer: every 40ms, ask the current leader to append.
			proposed := 0
			var propose func()
			propose = func() {
				if l := c.leader(); l != nil {
					proposed++
					l.Propose([]byte(fmt.Sprintf("e%03d", proposed)))
				}
				c.w.Kernel().Schedule(40*sim.Millisecond, propose)
			}
			c.w.Kernel().Schedule(300*sim.Millisecond, propose)

			// Chaos: 6 random fault actions over the first 4 seconds.
			for i := 0; i < 6; i++ {
				at := sim.Time(rng.Int63n(int64(4 * sim.Second)))
				victim := c.ids[rng.Intn(len(c.ids))]
				if rng.Intn(2) == 0 {
					dur := sim.Duration(200+rng.Int63n(800)) * sim.Millisecond / 200 * 200
					c.w.Kernel().At(at, func() { _ = c.w.CrashFor(victim, dur) })
				} else {
					other := c.ids[rng.Intn(len(c.ids))]
					if other == victim {
						continue
					}
					c.w.Kernel().At(at, func() { c.w.Network().Partition(victim, other) })
					c.w.Kernel().At(at.Add(sim.Duration(rng.Int63n(int64(sim.Second)))), func() {
						c.w.Network().Heal(victim, other)
					})
				}
			}

			// Prefix check every 100ms during the chaos.
			violated := false
			var check func()
			check = func() {
				var longest []string
				for _, id := range c.ids {
					if len(c.applied[id]) > len(longest) {
						longest = c.applied[id]
					}
				}
				for _, id := range c.ids {
					seq := c.applied[id]
					for j := range seq {
						if seq[j] != longest[j] {
							violated = true
						}
					}
				}
				c.w.Kernel().Schedule(100*sim.Millisecond, check)
			}
			c.w.Kernel().Schedule(100*sim.Millisecond, check)

			c.w.Kernel().Run(sim.Time(5 * sim.Second))
			if violated {
				t.Fatal("applied sequences diverged during chaos")
			}

			// Quiesce: ensure everyone is up and connected, then converge.
			for _, id := range c.ids {
				_ = c.w.Restart(id)
				for _, other := range c.ids {
					if other != id {
						c.w.Network().Heal(id, other)
					}
				}
			}
			c.w.Kernel().Run(sim.Time(10 * sim.Second))
			l := c.leader()
			if l == nil {
				t.Fatal("no leader after quiesce")
			}
			ref := c.applied[c.ids[0]]
			for _, id := range c.ids[1:] {
				got := c.applied[id]
				if len(got) != len(ref) {
					t.Fatalf("%s applied %d entries, %s applied %d — no convergence",
						c.ids[0], len(ref), id, len(got))
				}
				for j := range ref {
					if ref[j] != got[j] {
						t.Fatalf("divergent entry %d after quiesce", j)
					}
				}
			}
		})
	}
}

// TestChaosFlakyLinks runs the same safety checks under gray failure
// instead of hard faults: every link in the cluster drops, duplicates,
// reorders, and delays messages (the sim/network link-quality model), and
// raft must neither diverge during the chaos nor fail to converge on one
// log — with one leader — once link quality is restored.
func TestChaosFlakyLinks(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			c := newCluster(t, 3, seed)
			q := sim.LinkQuality{
				ExtraLatency:   2 * sim.Millisecond,
				ExtraJitter:    3 * sim.Millisecond,
				DropPercent:    20,
				DupPercent:     20,
				ReorderPercent: 25,
				ReorderDelay:   15 * sim.Millisecond,
			}
			degrade := func(on bool) {
				for i, a := range c.ids {
					for _, b := range c.ids[i+1:] {
						if on {
							c.w.Network().SetLinkQuality(a, b, q)
						} else {
							c.w.Network().ClearLinkQuality(a, b)
						}
					}
				}
			}
			degrade(true)

			// Proposer: every 40ms, ask the current leader to append.
			proposed := 0
			var propose func()
			propose = func() {
				if l := c.leader(); l != nil {
					proposed++
					l.Propose([]byte(fmt.Sprintf("e%03d", proposed)))
				}
				c.w.Kernel().Schedule(40*sim.Millisecond, propose)
			}
			c.w.Kernel().Schedule(300*sim.Millisecond, propose)

			// Prefix check every 100ms while the links are bad.
			violated := false
			var check func()
			check = func() {
				var longest []string
				for _, id := range c.ids {
					if len(c.applied[id]) > len(longest) {
						longest = c.applied[id]
					}
				}
				for _, id := range c.ids {
					seq := c.applied[id]
					for j := range seq {
						if seq[j] != longest[j] {
							violated = true
						}
					}
				}
				c.w.Kernel().Schedule(100*sim.Millisecond, check)
			}
			c.w.Kernel().Schedule(100*sim.Millisecond, check)

			c.w.Kernel().Run(sim.Time(5 * sim.Second))
			if violated {
				t.Fatal("applied sequences diverged under flaky links")
			}
			stats := c.w.Network().Stats()
			if stats.FlakyDrops == 0 || stats.Duplicated == 0 || stats.Reordered == 0 {
				t.Fatalf("chaos was a no-op: %+v", stats)
			}
			if proposed == 0 {
				t.Fatal("no proposals made it through — chaos too strong to test anything")
			}

			// Restore link quality and let the cluster quiesce.
			degrade(false)
			c.w.Kernel().Run(sim.Time(15 * sim.Second))

			l := c.leader()
			if l == nil {
				t.Fatal("no leader after link quality restored")
			}
			leaders := 0
			for _, id := range c.ids {
				if c.nodes[id].Role() == Leader {
					leaders++
				}
			}
			if leaders != 1 {
				t.Fatalf("%d leaders after quiesce, want exactly 1", leaders)
			}
			ref := c.applied[c.ids[0]]
			if len(ref) == 0 {
				t.Fatal("nothing applied — convergence check is vacuous")
			}
			for _, id := range c.ids[1:] {
				got := c.applied[id]
				if len(got) != len(ref) {
					t.Fatalf("%s applied %d entries, %s applied %d — no convergence",
						c.ids[0], len(ref), id, len(got))
				}
				for j := range ref {
					if ref[j] != got[j] {
						t.Fatalf("divergent entry %d after quiesce", j)
					}
				}
			}
		})
	}
}
