// Package controller provides the reconcile-loop machinery shared by all
// simulated control-plane components: a deduplicating, rate-limited work
// queue and a Controller that binds informer events to a Reconcile
// function — the analog of controller-runtime.
package controller

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Result tells the queue what to do after a reconcile.
type Result struct {
	// Requeue re-enqueues the key after RequeueAfter (or the queue's
	// default backoff when zero).
	Requeue      bool
	RequeueAfter sim.Duration
}

// Reconciler processes one key at a time. Returning an error requeues the
// key with exponential backoff.
type Reconciler interface {
	Reconcile(key string) (Result, error)
}

// ReconcilerFunc adapts a function to Reconciler.
type ReconcilerFunc func(key string) (Result, error)

// Reconcile calls f(key).
func (f ReconcilerFunc) Reconcile(key string) (Result, error) { return f(key) }

// QueueConfig tunes a work queue.
type QueueConfig struct {
	// BaseDelay is the pause between dequeues (models work latency and
	// rate limiting).
	BaseDelay sim.Duration
	// BaseBackoff is the initial retry backoff after a failed reconcile;
	// it doubles per consecutive failure up to MaxBackoff.
	BaseBackoff sim.Duration
	MaxBackoff  sim.Duration
}

// DefaultQueueConfig returns production-like settings.
func DefaultQueueConfig() QueueConfig {
	return QueueConfig{
		BaseDelay:   sim.Millisecond,
		BaseBackoff: 5 * sim.Millisecond,
		MaxBackoff:  time500ms,
	}
}

const time500ms = 500 * sim.Millisecond

// Queue is a deduplicating work queue driven by the simulation kernel.
// A key present in the queue is not added twice; a key being processed is
// re-queued if re-added during processing (client-go semantics).
type Queue struct {
	k        *sim.Kernel
	cfg      QueueConfig
	rec      Reconciler
	owner    string // event-tag owner for snapshots
	order    []string
	set      map[string]bool
	failures map[string]int
	running  bool
	stopped  bool

	// Counters for experiments.
	Processed int
	Errors    int
}

// NewQueue creates a queue that feeds keys to rec.
func NewQueue(k *sim.Kernel, cfg QueueConfig, rec Reconciler) *Queue {
	return &Queue{k: k, cfg: cfg, rec: rec, set: make(map[string]bool), failures: make(map[string]int)}
}

// Add enqueues key if not already queued.
func (q *Queue) Add(key string) {
	if q.stopped || q.set[key] {
		return
	}
	q.set[key] = true
	q.order = append(q.order, key)
	q.kick()
}

// SetOwner names the queue in kernel event tags, making its pending timers
// identifiable in snapshots. Must be set before the first Add.
func (q *Queue) SetOwner(name string) { q.owner = name }

// AddAfter enqueues key after a delay.
func (q *Queue) AddAfter(key string, d sim.Duration) {
	q.k.ScheduleTagged(d,
		sim.EventTag{Owner: q.owner, Kind: "addafter", Key: key},
		func() { q.Add(key) })
}

// Len returns the number of queued keys.
func (q *Queue) Len() int { return len(q.order) }

// Stop permanently halts processing (crash semantics).
func (q *Queue) Stop() { q.stopped = true }

func (q *Queue) kick() {
	if q.running || q.stopped || len(q.order) == 0 {
		return
	}
	q.running = true
	q.k.ScheduleTagged(q.cfg.BaseDelay,
		sim.EventTag{Owner: q.owner, Kind: "process"},
		q.processNext)
}

func (q *Queue) processNext() {
	q.running = false
	if q.stopped || len(q.order) == 0 {
		return
	}
	key := q.order[0]
	q.order = q.order[1:]
	delete(q.set, key)

	q.Processed++
	res, err := q.rec.Reconcile(key)
	if q.stopped {
		return
	}
	switch {
	case err != nil:
		q.Errors++
		q.failures[key]++
		backoff := q.cfg.BaseBackoff
		for i := 1; i < q.failures[key]; i++ {
			backoff *= 2
			if backoff >= q.cfg.MaxBackoff {
				backoff = q.cfg.MaxBackoff
				break
			}
		}
		q.AddAfter(key, backoff)
	case res.Requeue:
		delete(q.failures, key)
		d := res.RequeueAfter
		if d == 0 {
			d = q.cfg.BaseBackoff
		}
		q.AddAfter(key, d)
	default:
		delete(q.failures, key)
	}
	q.kick()
}

// EnqueueHandler is an informer event handler that maps every object event
// to its name on a queue — the standard controller wiring.
type EnqueueHandler struct{ Queue *Queue }

// OnAdd implements client.EventHandler.
func (h EnqueueHandler) OnAdd(obj *cluster.Object) { h.Queue.Add(obj.Meta.Name) }

// OnUpdate implements client.EventHandler.
func (h EnqueueHandler) OnUpdate(_, newObj *cluster.Object) { h.Queue.Add(newObj.Meta.Name) }

// OnDelete implements client.EventHandler.
func (h EnqueueHandler) OnDelete(obj *cluster.Object) { h.Queue.Add(obj.Meta.Name) }

// SortedKeys returns the queue's pending keys in deterministic order
// (diagnostics).
func (q *Queue) SortedKeys() []string {
	out := append([]string(nil), q.order...)
	sort.Strings(out)
	return out
}
