// Package epochs implements the programming model sketched in paper §6.2:
// break the history H into epochs and guarantee that a service which sees
// one event of an epoch sees all of them. Within an epoch this eliminates
// staleness and observability gaps by construction; the epoch size trades
// the divergence bound against delivery latency and coordination
// (recovery) cost — the trade-off experiment E7 measures.
package epochs

import (
	"fmt"

	"repro/internal/history"
)

// Config tunes an epoch-bounded delivery layer.
type Config struct {
	// Size is the number of revisions per epoch (>= 1).
	Size int64
}

// Stats counts the batcher's activity.
type Stats struct {
	// EventsIn is the number of events offered (including duplicates).
	EventsIn int
	// EventsOut is the number of events delivered.
	EventsOut int
	// EpochsDelivered is the number of complete epochs released.
	EpochsDelivered int
	// Recoveries is how many times a gap forced a pull of missing events
	// — the coordination cost of the model.
	Recoveries int
	// MaxBufferedEpochs is the high-water mark of epochs withheld while
	// waiting for completeness.
	MaxBufferedEpochs int
}

// Fetcher pulls the authoritative events of a revision span [from, to]
// (inclusive) from the ground truth — the recovery path a real
// implementation would serve from the store. It may return fewer events
// than the span if some revisions touched keys outside the subscription;
// Complete must then be true if every relevant event is included.
type Fetcher func(from, to int64) []history.Event

// Batcher converts a lossy, possibly-duplicated event stream into
// epoch-atomic delivery: downstream consumers receive whole epochs in
// order, never a torn prefix. The zero value is not usable; construct with
// NewBatcher.
type Batcher struct {
	cfg     Config
	fetch   Fetcher
	deliver func([]history.Event)

	buf          map[int64][]history.Event // epoch index -> events seen
	seen         map[int64]bool            // revision -> already buffered
	nextEpoch    int64                     // next epoch index to deliver
	maxRevSeen   int64
	stats        Stats
	relevantRevs func(epoch int64) []int64 // test hook; nil = contiguous
}

// NewBatcher creates a batcher. deliver receives whole epochs, in epoch
// order. fetch is used to recover events the stream lost; it may be nil,
// in which case incomplete epochs block delivery forever (pure buffering
// mode, useful to measure how often recovery would be needed).
func NewBatcher(cfg Config, fetch Fetcher, deliver func([]history.Event)) *Batcher {
	if cfg.Size < 1 {
		cfg.Size = 1
	}
	return &Batcher{
		cfg:     cfg,
		fetch:   fetch,
		deliver: deliver,
		buf:     make(map[int64][]history.Event),
		seen:    make(map[int64]bool),
	}
}

// Stats returns a snapshot of the counters.
func (b *Batcher) Stats() Stats { return b.stats }

// epochOf maps a revision to its epoch index (revisions are 1-based).
func (b *Batcher) epochOf(rev int64) int64 { return (rev - 1) / b.cfg.Size }

// epochSpan returns the inclusive revision range of an epoch.
func (b *Batcher) epochSpan(epoch int64) (int64, int64) {
	return epoch*b.cfg.Size + 1, (epoch + 1) * b.cfg.Size
}

// Offer feeds one event from the (lossy) stream. Duplicate revisions are
// ignored. Delivery of complete epochs happens synchronously.
func (b *Batcher) Offer(e history.Event) {
	b.stats.EventsIn++
	if b.seen[e.Revision] || b.epochOf(e.Revision) < b.nextEpoch {
		return
	}
	b.seen[e.Revision] = true
	ep := b.epochOf(e.Revision)
	b.buf[ep] = append(b.buf[ep], e)
	if e.Revision > b.maxRevSeen {
		b.maxRevSeen = e.Revision
	}
	if len(b.buf) > b.stats.MaxBufferedEpochs {
		b.stats.MaxBufferedEpochs = len(b.buf)
	}
	b.pump()
}

// pump delivers every leading complete epoch; when a later epoch has
// events but the next deliverable epoch is incomplete, it attempts
// recovery via the fetcher.
func (b *Batcher) pump() {
	for {
		lo, hi := b.epochSpan(b.nextEpoch)
		if b.maxRevSeen < hi {
			return // epoch not yet closed by the stream
		}
		if !b.completeEpoch(b.nextEpoch) {
			if b.fetch == nil {
				return // cannot recover; hold delivery (bounded divergence!)
			}
			b.stats.Recoveries++
			for _, e := range b.fetch(lo, hi) {
				if !b.seen[e.Revision] {
					b.seen[e.Revision] = true
					b.buf[b.nextEpoch] = append(b.buf[b.nextEpoch], e)
				}
			}
			if !b.completeEpoch(b.nextEpoch) {
				return // authoritative source has gaps too; stay safe
			}
		}
		events := b.buf[b.nextEpoch]
		sortByRevision(events)
		delete(b.buf, b.nextEpoch)
		b.nextEpoch++
		b.stats.EpochsDelivered++
		b.stats.EventsOut += len(events)
		b.deliver(events)
	}
}

// completeEpoch reports whether every revision of the epoch is buffered.
func (b *Batcher) completeEpoch(epoch int64) bool {
	lo, hi := b.epochSpan(epoch)
	for rev := lo; rev <= hi; rev++ {
		if !b.seen[rev] {
			return false
		}
	}
	return true
}

// Flush delivers the trailing partial epoch (used at stream end when the
// producer guarantees no further events will arrive for it). It preserves
// the all-or-nothing property per delivered batch by recovering missing
// events first; without a fetcher an incomplete trailing epoch stays held.
func (b *Batcher) Flush(lastRev int64) error {
	if lastRev <= 0 {
		return nil
	}
	ep := b.epochOf(lastRev)
	lo, _ := b.epochSpan(ep)
	if ep < b.nextEpoch {
		return nil
	}
	if !b.trailingComplete(lo, lastRev) {
		if b.fetch == nil {
			return fmt.Errorf("epochs: trailing epoch %d incomplete and no fetcher", ep)
		}
		b.stats.Recoveries++
		for _, e := range b.fetch(lo, lastRev) {
			if !b.seen[e.Revision] {
				b.seen[e.Revision] = true
				b.buf[ep] = append(b.buf[ep], e)
			}
		}
		if !b.trailingComplete(lo, lastRev) {
			return fmt.Errorf("epochs: trailing epoch %d unrecoverable", ep)
		}
	}
	events := b.buf[ep]
	sortByRevision(events)
	delete(b.buf, ep)
	b.nextEpoch = ep + 1
	b.stats.EpochsDelivered++
	b.stats.EventsOut += len(events)
	b.deliver(events)
	return nil
}

func (b *Batcher) trailingComplete(lo, hi int64) bool {
	for rev := lo; rev <= hi; rev++ {
		if !b.seen[rev] {
			return false
		}
	}
	return true
}

func sortByRevision(events []history.Event) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].Revision < events[j-1].Revision; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}
