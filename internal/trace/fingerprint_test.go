package trace

import (
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/history"
)

func fingerprintFixture() *Trace {
	t := New()
	t.Deliveries = []Delivery{
		{To: "scheduler", Kind: cluster.KindNode, Name: "n1", EventType: apiserver.Added},
		{To: "scheduler", Kind: cluster.KindNode, Name: "n1", EventType: apiserver.Deleted},
		{To: "kubelet-k1", Kind: cluster.KindPod, Name: "p1", EventType: apiserver.Added},
	}
	t.Commits = []history.Event{
		{Revision: 1, Type: history.Put, Key: "/registry/nodes/n1"},
		{Revision: 2, Type: history.Delete, Key: "/registry/nodes/n1"},
	}
	return t
}

func TestStateHashDeterministic(t *testing.T) {
	a, b := fingerprintFixture(), fingerprintFixture()
	if a.StateHash() != b.StateHash() {
		t.Fatal("identical traces hash differently")
	}
	if a.ComponentHash("scheduler") != b.ComponentHash("scheduler") {
		t.Fatal("identical component sequences hash differently")
	}
}

func TestStateHashSensitivity(t *testing.T) {
	base := fingerprintFixture()

	// Dropping a delivery must change the hash (that is the whole point:
	// a gap plan that actually suppressed an event lands in a different
	// coverage class).
	dropped := fingerprintFixture()
	dropped.Deliveries = dropped.Deliveries[:len(dropped.Deliveries)-1]
	if base.StateHash() == dropped.StateHash() {
		t.Fatal("removing a delivery did not change the state hash")
	}

	// Reordering one component's sequence must change its hash.
	swapped := fingerprintFixture()
	swapped.Deliveries[0], swapped.Deliveries[1] = swapped.Deliveries[1], swapped.Deliveries[0]
	if base.ComponentHash("scheduler") == swapped.ComponentHash("scheduler") {
		t.Fatal("reordering deliveries did not change the component hash")
	}

	// A different committed history must change the hash.
	commits := fingerprintFixture()
	commits.Commits = commits.Commits[:1]
	if base.StateHash() == commits.StateHash() {
		t.Fatal("changing commits did not change the state hash")
	}

	// The terminating marker is decision-relevant and must be hashed.
	term := fingerprintFixture()
	term.Deliveries[0].Terminating = true
	if base.StateHash() == term.StateHash() {
		t.Fatal("terminating marker not reflected in the state hash")
	}
}

func TestStateHashUpTo(t *testing.T) {
	tr := fingerprintFixture()
	for i := range tr.Deliveries {
		tr.Deliveries[i].Time = sim.Time((i + 1) * 10)
	}
	tr.Commits[0].Time = 15
	tr.Commits[1].Time = 25

	if tr.StateHashUpTo(sim.Time(1<<62)) != tr.StateHash() {
		t.Fatal("unbounded prefix hash differs from full StateHash")
	}
	// Two traces sharing a prefix must hash alike at the prefix boundary
	// no matter how their suffixes differ — the visited-set property.
	other := fingerprintFixture()
	for i := range other.Deliveries {
		other.Deliveries[i].Time = sim.Time((i + 1) * 10)
	}
	other.Commits[0].Time = 15
	other.Commits[1].Time = 25
	other.Deliveries[2].Name = "p2" // diverge strictly after t=20
	other.Commits[1].Key = "/registry/pods/p2"
	if tr.StateHashUpTo(20) != other.StateHashUpTo(20) {
		t.Fatal("suffix divergence leaked into the prefix hash")
	}
	if tr.StateHashUpTo(30) == other.StateHashUpTo(30) {
		t.Fatal("post-divergence prefixes collided")
	}
	// Prefixes that admit different suffixes must differ.
	if tr.StateHashUpTo(10) == tr.StateHashUpTo(30) {
		t.Fatal("distinct prefixes collided")
	}
}

func TestComponentHashesCoverAllComponents(t *testing.T) {
	tr := fingerprintFixture()
	hashes := tr.ComponentHashes()
	if len(hashes) != 2 {
		t.Fatalf("expected 2 component hashes, got %d", len(hashes))
	}
	if hashes["scheduler"] == hashes["kubelet-k1"] {
		t.Fatal("distinct delivery sequences collided")
	}
}
