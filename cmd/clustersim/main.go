// Command clustersim runs the simulated infrastructure through a chosen
// workload and prints the ground-truth outcome: final cluster state, oracle
// verdicts, and summary statistics. It is the quickest way to watch the
// Figure 1 architecture operate (optionally under a canned perturbation).
//
// Usage:
//
//	clustersim [-scenario rolling|scheduler|volume|cassandra]
//	           [-perturb none|stale-api|gap|timetravel] [-fixed] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/kubelet"
	"repro/internal/operators/cassandra"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "rolling", "workload: rolling|scheduler|volume|cassandra")
	perturb := flag.String("perturb", "none", "perturbation: none|stale-api|gap|timetravel")
	fixed := flag.Bool("fixed", false, "run the fixed component variants")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	target, plan, err := configure(*scenario, *perturb, *fixed, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	c := target.Build(*seed)
	plan.Apply(c)
	target.Workload(c)
	c.RunFor(target.Horizon)

	fmt.Printf("scenario=%s perturb=%s fixed=%v seed=%d horizon=%s\n\n",
		*scenario, *perturb, *fixed, *seed, target.Horizon)

	fmt.Println("ground truth:")
	for _, kind := range cluster.Kinds() {
		objs := c.GroundTruth(kind)
		if len(objs) == 0 {
			continue
		}
		for _, o := range objs {
			extra := ""
			switch {
			case o.Pod != nil:
				extra = fmt.Sprintf("node=%s phase=%s", o.Pod.NodeName, o.Pod.Phase)
			case o.Node != nil:
				extra = fmt.Sprintf("ready=%v", o.Node.Ready)
			case o.PVC != nil:
				extra = fmt.Sprintf("owner=%s phase=%s", o.PVC.OwnerPod, o.PVC.Phase)
			case o.Cassandra != nil:
				extra = fmt.Sprintf("replicas=%d decommissioning=%q", o.Cassandra.Replicas, o.Cassandra.Decommissioning)
			}
			fmt.Printf("  %-40s rv=%-5d %s\n", fmt.Sprintf("%s/%s", o.Meta.Kind, o.Meta.Name), o.Meta.ResourceVersion, extra)
		}
	}

	fmt.Println("\nhosts:")
	for _, node := range c.Opts.Nodes {
		fmt.Printf("  %-4s running=%v\n", node, c.Hosts[node].RunningNames())
	}

	fmt.Println("\noracles:")
	violations := c.Violations()
	if len(violations) == 0 {
		fmt.Println("  all invariants held")
	}
	for _, v := range violations {
		fmt.Printf("  VIOLATION %s\n", v)
	}

	st := c.World.Network().Stats()
	fmt.Printf("\nnetwork: sent=%d delivered=%d dropped=%d held=%d\n",
		st.Sent, st.Delivered, st.Dropped, st.Held)
	fmt.Printf("store: revision=%d keys=%d\n", c.Store.Store().Revision(), c.Store.Store().Len())
}

func configure(scenario, perturb string, fixed bool, seed int64) (core.Target, core.Plan, error) {
	var target core.Target
	switch scenario {
	case "rolling":
		target = workload.Target59848()
	case "scheduler":
		target = workload.Target56261()
	case "cassandra":
		target = workload.TargetCass398()
	case "volume":
		target = volumeTarget()
	default:
		return core.Target{}, nil, fmt.Errorf("unknown scenario %q", scenario)
	}
	if fixed {
		target = withFixes(target, scenario)
	}

	var plan core.Plan = core.NopPlan{}
	switch perturb {
	case "none":
	case "stale-api":
		plan = core.StalenessPlan{Victim: infra.APIServerID(1), From: sim.Time(sim.Second)}
	case "gap":
		switch scenario {
		case "scheduler":
			plan = core.GapPlan{Victim: scheduler.ID, Kind: cluster.KindNode, Name: "n1", Type: apiserver.Deleted, Occurrence: 1}
		case "cassandra":
			plan = core.GapPlan{Victim: cassandra.OperatorID, Kind: cluster.KindPod, Name: "cass-1", Type: apiserver.Modified, From: 0}
		default:
			plan = core.GapPlan{Victim: kubelet.NodeID("k1"), Kind: cluster.KindPod, Name: "p1", Type: apiserver.Modified, From: 0}
		}
	case "timetravel":
		comp := kubelet.NodeID("k1")
		if scenario == "cassandra" {
			comp = cassandra.OperatorID
		}
		plan = core.TimeTravelPlan{
			Component:    comp,
			StaleAPI:     infra.APIServerID(1),
			FreezeAt:     sim.Time(1500 * sim.Millisecond),
			CrashAt:      sim.Time(4 * sim.Second),
			RestartDelay: 100 * sim.Millisecond,
			HealAt:       sim.Time(6 * sim.Second),
		}
	default:
		return core.Target{}, nil, fmt.Errorf("unknown perturbation %q", perturb)
	}
	return target, plan, nil
}

// volumeTarget is the §4.2.3 volume-release scenario as a Target.
func volumeTarget() core.Target {
	build := func(seed int64) *infra.Cluster {
		opts := infra.DefaultOptions()
		opts.Seed = seed
		opts.Nodes = []string{"k1"}
		opts.EnableScheduler = false
		return infra.New(opts)
	}
	return core.Target{
		Name:  "volume-gap",
		Bug:   "NoOrphanPVC",
		Build: build,
		Workload: func(c *infra.Cluster) {
			k := c.World.Kernel()
			k.At(sim.Time(500*sim.Millisecond), func() {
				c.Admin.CreatePod("db-0", "k1", "v1", nil)
				c.Admin.CreatePVC("db-0-data", "db-0", nil)
			})
			k.At(sim.Time(2*sim.Second), func() { c.Admin.MarkPodDeleted("db-0", nil) })
		},
		Horizon: 8 * sim.Second,
		Topology: core.Topology{
			APIServers:  []sim.NodeID{infra.APIServerID(0), infra.APIServerID(1)},
			Restartable: []sim.NodeID{"volume-controller", kubelet.NodeID("k1")},
		},
	}
}

// withFixes rebuilds the target with the fixed component variants.
func withFixes(t core.Target, scenario string) core.Target {
	orig := t.Build
	t.Build = func(seed int64) *infra.Cluster {
		c := orig(seed)
		_ = c
		// Rebuild with fixes: the options live inside each target's build,
		// so patch via a fresh options struct.
		opts := c.Opts
		opts.KubeletSafeRestart = true
		opts.SchedulerEvictFix = true
		opts.VolumeControllerFix = true
		if opts.Cassandra != nil {
			opts.Cassandra.Fixes = cassandra.AllFixed()
		}
		return infra.New(opts)
	}
	return t
}
