package core

import (
	"strings"
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/infra"
	"repro/internal/sim"
)

func smallCluster() *infra.Cluster {
	opts := infra.DefaultOptions()
	opts.EnableScheduler = false
	opts.EnableVolumeController = false
	return infra.New(opts)
}

func TestStalenessPlanFreezesAndHeals(t *testing.T) {
	c := smallCluster()
	p := StalenessPlan{Victim: infra.APIServerID(1), From: sim.Time(500 * sim.Millisecond), Until: sim.Time(1500 * sim.Millisecond)}
	p.Apply(c)

	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(600 * sim.Millisecond) // now ~800ms, inside the freeze
	if !c.World.Network().Partitioned(infra.APIServerID(1), infra.StoreID) {
		t.Fatal("victim not partitioned inside the window")
	}
	c.RunFor(sim.Second)
	if c.World.Network().Partitioned(infra.APIServerID(1), infra.StoreID) {
		t.Fatal("victim still partitioned after Until")
	}
	c.RunFor(sim.Second)
	if c.APIs[1].CachedRevision() != c.APIs[0].CachedRevision() {
		t.Fatalf("api-2 did not converge after heal: %d vs %d",
			c.APIs[1].CachedRevision(), c.APIs[0].CachedRevision())
	}
}

func TestGapPlanDropsExactOccurrence(t *testing.T) {
	c := smallCluster()
	// Drop the 2nd MODIFIED event for pods/p1 headed to kubelet-k1.
	p := GapPlan{Victim: "kubelet-k1", Kind: cluster.KindPod, Name: "p1", Type: apiserver.Modified, Occurrence: 2}
	p.Apply(c)

	seen := 0
	dropped := 0
	c.World.Network().AddObserver(observerFuncs{
		onDrop: func(m *sim.Message, reason string) {
			if m.Kind == apiserver.KindWatchPush && m.To == "kubelet-k1" && reason == "intercepted" {
				dropped++
			}
		},
		onDeliver: func(m *sim.Message) {
			if m.Kind != apiserver.KindWatchPush || m.To != "kubelet-k1" {
				return
			}
			for _, ev := range m.Payload.(*apiserver.WatchPushMsg).Events {
				if ev.Object.Meta.Name == "p1" && ev.Type == apiserver.Modified {
					seen++
				}
			}
		},
	})

	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(500 * sim.Millisecond)
	// Generate several modifications.
	for i := 0; i < 4; i++ {
		v := string(rune('a' + i))
		c.Admin.Conn().Get(cluster.KindPod, "p1", true, func(obj *cluster.Object, found bool, err error) {
			if err != nil || !found {
				return
			}
			upd := obj.Clone()
			upd.Pod.Image = v
			c.Admin.Conn().Update(upd, func(*cluster.Object, error) {})
		})
		c.RunFor(200 * sim.Millisecond)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want exactly 1", dropped)
	}
	if seen < 2 {
		t.Fatalf("later modifications should still be delivered, seen=%d", seen)
	}
}

type observerFuncs struct {
	onSend    func(*sim.Message)
	onDeliver func(*sim.Message)
	onDrop    func(*sim.Message, string)
}

func (o observerFuncs) OnSend(m *sim.Message) {
	if o.onSend != nil {
		o.onSend(m)
	}
}
func (o observerFuncs) OnDeliver(m *sim.Message) {
	if o.onDeliver != nil {
		o.onDeliver(m)
	}
}
func (o observerFuncs) OnDrop(m *sim.Message, reason string) {
	if o.onDrop != nil {
		o.onDrop(m, reason)
	}
}

func TestGapPlanWindowMode(t *testing.T) {
	c := smallCluster()
	// Unbounded window: bounded gaps can heal via the informer's liveness
	// rewatch (the apiserver replays its window), which is itself worth
	// knowing — here we keep the blackout open to assert the gap's effect.
	p := GapPlan{
		Victim: "kubelet-k1", Kind: cluster.KindPod, Name: "p1",
		From: sim.Time(1),
	}
	p.Apply(c)
	dropped := 0
	c.World.Network().AddObserver(observerFuncs{
		onDrop: func(m *sim.Message, reason string) {
			if m.To == "kubelet-k1" && reason == "intercepted" {
				dropped++
			}
		},
	})
	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(2 * sim.Second)
	// The creation event lands inside the window and is dropped; the
	// kubelet learns about p1 only via its informer's initial list (which
	// happened before the pod existed) — so the container never starts.
	if dropped == 0 {
		t.Fatal("window gap dropped nothing")
	}
	if _, running := c.Hosts["k1"].Running()["p1"]; running {
		t.Fatal("kubelet ran a pod it was never told about")
	}
}

func TestTimeTravelPlanDrivesRestartOntoFrozenUpstream(t *testing.T) {
	c := smallCluster()
	p := TimeTravelPlan{
		Component:    "kubelet-k1",
		StaleAPI:     infra.APIServerID(1),
		FreezeAt:     sim.Time(400 * sim.Millisecond),
		CrashAt:      sim.Time(800 * sim.Millisecond),
		RestartDelay: 100 * sim.Millisecond,
		HealAt:       sim.Time(2 * sim.Second),
	}
	p.Apply(c)
	c.RunFor(250 * sim.Millisecond) // ~450ms: frozen
	if !c.World.Network().Partitioned(infra.APIServerID(1), infra.StoreID) {
		t.Fatal("stale api not frozen")
	}
	c.RunFor(400 * sim.Millisecond) // ~850ms: crashed
	if !c.World.Crashed("kubelet-k1") {
		t.Fatal("component not crashed at CrashAt")
	}
	c.RunFor(200 * sim.Millisecond) // ~1.05s: restarted
	if c.World.Crashed("kubelet-k1") {
		t.Fatal("component not restarted")
	}
	if got := c.Kubelet["k1"].Upstream(); got != infra.APIServerID(1) {
		t.Fatalf("restart upstream = %s, want api-2", got)
	}
	c.RunFor(1500 * sim.Millisecond)
	if c.World.Network().Partitioned(infra.APIServerID(1), infra.StoreID) {
		t.Fatal("stale api not healed at HealAt")
	}
}

func TestCrashPlanAndPartitionPlan(t *testing.T) {
	c := smallCluster()
	CrashPlan{Component: "kubelet-k2", At: sim.Time(300 * sim.Millisecond), RestartDelay: 200 * sim.Millisecond}.Apply(c)
	PartitionPlan{A: "kubelet-k1", B: infra.APIServerID(0), From: sim.Time(300 * sim.Millisecond), Until: sim.Time(600 * sim.Millisecond)}.Apply(c)
	c.RunFor(150 * sim.Millisecond) // ~350ms
	if !c.World.Crashed("kubelet-k2") {
		t.Fatal("crash plan did not fire")
	}
	if !c.World.Network().Partitioned("kubelet-k1", infra.APIServerID(0)) {
		t.Fatal("partition plan did not fire")
	}
	c.RunFor(sim.Second)
	if c.World.Crashed("kubelet-k2") {
		t.Fatal("crash plan did not restart")
	}
	if c.World.Network().Partitioned("kubelet-k1", infra.APIServerID(0)) {
		t.Fatal("partition plan did not heal")
	}
}

func TestPlanIDsUniqueAndDescriptive(t *testing.T) {
	plans := []Plan{
		StalenessPlan{Victim: "api-2", From: 1, Until: 2},
		StalenessPlan{Victim: "api-2", From: 1, Until: 3},
		GapPlan{Victim: "scheduler", Kind: cluster.KindNode, Name: "n1", Type: apiserver.Deleted, Occurrence: 1},
		GapPlan{Victim: "scheduler", Kind: cluster.KindNode, Name: "n1", Type: apiserver.Deleted, Occurrence: 2},
		TimeTravelPlan{Component: "kubelet-k1", StaleAPI: "api-2", FreezeAt: 5, CrashAt: 9},
		CrashPlan{Component: "x", At: 3},
		PartitionPlan{A: "a", B: "b", From: 1},
		SequencePlan{Name: "s1"},
		NopPlan{},
	}
	ids := map[string]bool{}
	for _, p := range plans {
		if ids[p.ID()] {
			t.Fatalf("duplicate plan id %q", p.ID())
		}
		ids[p.ID()] = true
		if p.Describe() == "" {
			t.Fatalf("plan %q has empty description", p.ID())
		}
	}
}

func TestSequencePlanAppliesAll(t *testing.T) {
	c := smallCluster()
	seq := SequencePlan{Name: "combo", Plans: []Plan{
		PartitionPlan{A: "kubelet-k1", B: infra.APIServerID(0), From: sim.Time(100 * sim.Millisecond)},
		CrashPlan{Component: "kubelet-k2", At: sim.Time(100 * sim.Millisecond), RestartDelay: sim.Second},
	}}
	seq.Apply(c)
	c.RunFor(200 * sim.Millisecond)
	if !c.World.Network().Partitioned("kubelet-k1", infra.APIServerID(0)) || !c.World.Crashed("kubelet-k2") {
		t.Fatal("sequence plan did not apply all sub-plans")
	}
}

func TestPlannerFamiliesAndDeterminism(t *testing.T) {
	target := testTarget()
	ref, _ := Reference(target)
	p1 := NewPlanner().Plans(target, ref)
	p2 := NewPlanner().Plans(target, ref)
	if len(p1) == 0 {
		t.Fatal("planner generated nothing")
	}
	if len(p1) != len(p2) {
		t.Fatalf("planner not deterministic: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].ID() != p2[i].ID() {
			t.Fatalf("plan order differs at %d: %s vs %s", i, p1[i].ID(), p2[i].ID())
		}
	}
	fam := PlanFamilies(p1)
	if fam["gap"] == 0 || fam["staleness"] == 0 || fam["timetravel"] == 0 {
		t.Fatalf("families = %v", fam)
	}
	// Deletion-adjacent drops come first.
	first, ok := p1[0].(GapPlan)
	if !ok || (first.Type != apiserver.Deleted && !strings.Contains(first.ID(), "gap/")) {
		t.Fatalf("first plan = %s", p1[0].ID())
	}
	// No plan targets the admin.
	for _, p := range p1 {
		if g, ok := p.(GapPlan); ok && g.Victim == "admin" {
			t.Fatalf("planner targeted the admin: %s", g.ID())
		}
	}
}

func testTarget() Target {
	return Target{
		Name: "test",
		Bug:  "UniquePod",
		Build: func(seed int64) *infra.Cluster {
			opts := infra.DefaultOptions()
			opts.Seed = seed
			opts.EnableVolumeController = false
			return infra.New(opts)
		},
		Workload: func(c *infra.Cluster) {
			c.World.Kernel().At(sim.Time(400*sim.Millisecond), func() { c.Admin.CreatePod("p1", "", "v1", nil) })
			c.World.Kernel().At(sim.Time(sim.Second), func() { c.Admin.MarkPodDeleted("p1", nil) })
		},
		Horizon: 4 * sim.Second,
		Topology: Topology{
			APIServers:  []sim.NodeID{infra.APIServerID(0), infra.APIServerID(1)},
			Restartable: []sim.NodeID{"kubelet-k1", "kubelet-k2", "scheduler"},
			Resteerable: []sim.NodeID{"kubelet-k1", "kubelet-k2"},
		},
	}
}

func TestRunCampaignReportsReferenceViolation(t *testing.T) {
	// A target whose oracle fires with no perturbation at all.
	target := testTarget()
	target.Bug = "SchedulerProgress"
	target.Workload = func(c *infra.Cluster) {
		// Remove all nodes' kubelets so nothing heartbeats... simply
		// create an unschedulable pod by deleting both nodes first.
		c.World.Kernel().At(sim.Time(300*sim.Millisecond), func() {
			c.Admin.DeleteNode("k1", nil)
			c.Admin.DeleteNode("k2", nil)
		})
		c.World.Kernel().At(sim.Time(600*sim.Millisecond), func() { c.Admin.CreatePod("p", "", "v1", nil) })
	}
	// With no ready nodes the SchedulerProgress oracle never fires (it
	// requires free capacity), so this campaign should simply not detect.
	res := RunCampaign(target, NewPlanner(), 5)
	if res.Detected {
		t.Fatalf("unexpected detection: %+v", res)
	}
	if res.Executions == 0 || res.PlansTotal == 0 {
		t.Fatalf("campaign ran nothing: %+v", res)
	}
}
