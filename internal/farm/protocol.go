// Package farm is the campaign fleet: a coordinator/worker subsystem
// that shards the (target × seed × plan-class) space of a campaign
// matrix across worker processes and merges the shards back into
// results that are byte-identical to a single-process run.
//
// The pieces:
//
//   - protocol.go  the task unit (TaskSpec), the NDJSON wire messages,
//     the version handshake, and typed ProtocolError framing
//   - transport.go how a worker is launched and spoken to (subprocess
//     over stdin/stdout pipes, or an in-process goroutine for tests —
//     a TCP transport slots in behind the same interface)
//   - worker.go    the worker side: run one task through the unchanged
//     campaign.Engine, streaming per-execution records
//   - shard.go     how a campaign matrix becomes tasks (seed-sharded,
//     except when cross-seed learning forbids it)
//   - coordinator.go pull-based task dispatch, cancellation, partial
//     results
//   - supervise.go worker supervision: death detection (EOF, deadline,
//     protocol), capped-backoff respawn, deterministic task retry, and
//     poison-task quarantine
//   - journal.go   the crash-resumable coordinator journal: one fsynced
//     NDJSON line per completed task, torn-tail-tolerant resume
//   - faulttransport.go deterministic fault injection for testing: kill,
//     stall, or tear a worker stream at scripted frames
//   - merge.go     deterministic shard merging — the proof obligation
//     that farmed == single-process, field by field
//   - resolve.go   target/strategy/seed name resolution shared with the
//     single-process CLI
//   - grid.go      declarative experiment grids (targets × seeds ×
//     plan-family toggles × repeats)
//   - analyze.go   grid summary tables and CSV
//
// Everything the merge relies on — execution sets, bucket contents,
// telemetry — is deterministic in the engine by construction; the farm
// adds no nondeterminism of its own because shard boundaries follow the
// engine's own independence structure (seeds are independent unless the
// learning phase couples them through cross-seed bucket affinity).
package farm

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/campaign"
)

// TaskSpec is one unit of farmed work: a full campaign.Config worth of
// knobs plus the cell coordinates, flattened to plain serializable
// fields (campaign.Config itself carries a function hook and is not a
// wire type). A task runs one (target, strategy) campaign over Seeds —
// a single seed for seed-sharded cells, the whole sweep for cells the
// learning phase couples across seeds.
type TaskSpec struct {
	// ID is the task's dense index in the coordinator's plan (0-based);
	// workers echo it on every record and result.
	ID int `json:"id"`

	// Cell coordinates.
	Target   string `json:"target"`
	Strategy string `json:"strategy"`
	// Fixed selects the fixed component variants of the target (the
	// no-detection correctness baseline).
	Fixed bool `json:"fixed,omitempty"`
	// RandomSeed / RandomN parameterize the random baseline strategy's
	// plan generator; ignored by the other strategies.
	RandomSeed int64 `json:"random_seed,omitempty"`
	RandomN    int   `json:"random_n,omitempty"`

	// Engine knobs, mirroring campaign.Config. Parallel is the
	// in-process pool width per worker (campaign.Config.Workers) — it
	// must match the single-process -parallel value for guided schedules
	// to be comparable, because guided scheduling is deterministic per
	// pool width.
	Seeds         []int64 `json:"seeds"`
	MaxExecutions int     `json:"max_executions,omitempty"`
	Parallel      int     `json:"parallel,omitempty"`
	Guided        bool    `json:"guided,omitempty"`
	KeepGoing     bool    `json:"keep_going,omitempty"`
	Explain       bool    `json:"explain,omitempty"`
	Prune         bool    `json:"prune,omitempty"`
	Ranked        bool    `json:"ranked,omitempty"`
	Snapshot      bool    `json:"snapshot,omitempty"`
	EventBudget   uint64  `json:"event_budget,omitempty"`
	// TaskDeadlineSec is a per-task supervisor deadline override in
	// seconds (0 = none). It outranks both the coordinator's global
	// Deadline hook and the scaled default — the task is the unit the
	// watchdog kills, so the most specific deadline wins.
	TaskDeadlineSec int `json:"task_deadline_sec,omitempty"`

	// Coverage carries the cell's slice of the persistent corpus, when
	// the coordinator runs with one.
	Coverage *campaign.CoverageSeed `json:"coverage,omitempty"`
}

// engineConfig reconstitutes the campaign.Config a worker runs the task
// under. Collect is always on: the coordinator needs per-plan outcomes
// to merge artifacts and regenerate telemetry streams.
func (s TaskSpec) engineConfig(onOutcome func(campaign.PlanOutcome)) campaign.Config {
	return campaign.Config{
		Workers:       s.Parallel,
		Seeds:         s.Seeds,
		MaxExecutions: s.MaxExecutions,
		Guided:        s.Guided,
		Collect:       true,
		KeepGoing:     s.KeepGoing,
		Explain:       s.Explain,
		EventBudget:   s.EventBudget,
		Prune:         s.Prune,
		Ranked:        s.Ranked,
		Snapshot:      s.Snapshot,
		Coverage:      s.Coverage,
		OnOutcome:     onOutcome,
	}
}

// Wire message types, coordinator → worker and back. The protocol is
// NDJSON in both directions: one JSON object per line, strictly ordered
// per pipe.
const (
	// coordinator → worker
	msgTask     = "task"     // carries Task; run it
	msgShutdown = "shutdown" // drain and exit cleanly

	// worker → coordinator
	msgReady  = "ready"  // worker is up and idle; carries Proto
	msgRecord = "record" // one per-execution record, streamed mid-task
	msgResult = "result" // the task's full campaign.Result
	msgError  = "error"  // the task failed; Error explains
)

// ProtocolVersion is the magic the worker's ready handshake must carry.
// The coordinator rejects a worker announcing any other version before
// handing it a task, so a stale binary (or a non-worker process wired
// into a transport by mistake) dies at the handshake instead of
// half-speaking the protocol mid-campaign.
const ProtocolVersion = "phfarm/1"

// wireMsg is the single envelope both directions use; Type selects
// which payload fields are meaningful.
type wireMsg struct {
	Type string `json:"type"`
	// Proto is the protocol version announced on msgReady.
	Proto  string                `json:"proto,omitempty"`
	Task   *TaskSpec             `json:"task,omitempty"`
	TaskID int                   `json:"task_id,omitempty"`
	Record *campaign.PlanOutcome `json:"record,omitempty"`
	Result *campaign.Result      `json:"result,omitempty"`
	Error  string                `json:"error,omitempty"`
}

// ProtocolError is a typed wire-protocol violation: a frame that is not
// valid JSON (torn tails included — a worker killed mid-write leaves a
// partial line), or a structurally invalid message. It identifies the
// peer and carries the offending line, sanitized, so a supervision death
// record or a worker's stderr names the exact bytes that broke the
// session instead of panicking or silently skipping the frame.
type ProtocolError struct {
	// Peer identifies who sent the bad frame ("worker 2 spawn 1",
	// "coordinator").
	Peer string
	// Line is the offending frame, sanitized and truncated.
	Line string
	// Err is the underlying decode error.
	Err error
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("farm: protocol violation from %s: %v (frame: %q)", e.Peer, e.Err, e.Line)
}

func (e *ProtocolError) Unwrap() error { return e.Err }

// maxFrameBytes bounds one NDJSON frame. Task results for large campaigns
// carry every collected outcome, so the ceiling is generous; a frame that
// exceeds it is a protocol violation, not an allocation request.
const maxFrameBytes = 256 << 20

// evidenceLimit bounds the sanitized copies of wire frames kept as death
// evidence.
const evidenceLimit = 240

// sanitizeEvidence makes a wire frame or process output safe to embed in
// reports: control characters escaped, length capped.
func sanitizeEvidence(s string) string {
	if len(s) > evidenceLimit {
		s = s[:evidenceLimit] + "..."
	}
	return strconv.Quote(s)
}

// frameScanner reads one protocol frame (one NDJSON line) at a time.
// Malformed and truncated frames come back as *ProtocolError carrying the
// peer identity and the offending line; a cleanly closed stream returns
// io.EOF. It replaces the json.Decoder the protocol used to ride on,
// whose error for a torn frame ("unexpected EOF") was indistinguishable
// from transport loss and whose recovery behavior on garbage input was
// undefined.
type frameScanner struct {
	sc   *bufio.Scanner
	peer string
}

func newFrameScanner(r io.Reader, peer string) *frameScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxFrameBytes)
	return &frameScanner{sc: sc, peer: peer}
}

// next returns the next frame. The raw (sanitized) line is returned
// alongside the decoded message so callers can keep last-frame evidence
// without re-marshaling.
func (f *frameScanner) next() (wireMsg, string, error) {
	for {
		if !f.sc.Scan() {
			if err := f.sc.Err(); err != nil {
				if errors.Is(err, bufio.ErrTooLong) {
					return wireMsg{}, "", &ProtocolError{Peer: f.peer, Line: "(oversized frame)", Err: err}
				}
				return wireMsg{}, "", err
			}
			return wireMsg{}, "", io.EOF
		}
		line := f.sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue // blank lines are inter-frame noise, not frames
		}
		raw := sanitizeEvidence(string(line))
		var msg wireMsg
		if err := json.Unmarshal(line, &msg); err != nil {
			return wireMsg{}, raw, &ProtocolError{Peer: f.peer, Line: raw, Err: err}
		}
		if msg.Type == "" {
			return wireMsg{}, raw, &ProtocolError{Peer: f.peer, Line: raw, Err: errors.New("frame has no type")}
		}
		return msg, raw, nil
	}
}
