package campaign

import (
	"sort"

	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file implements copy-on-write prefix checkpointing for campaign
// executions. Every plan execution of a (target, seed) campaign replays the
// same unperturbed prefix up to the plan's first perturbation; instead of
// re-simulating that prefix from t=0, the engine runs ONE extra plan-free
// "ladder" run that captures cluster snapshots at mined freeze points, and
// forks each plan execution from the latest checkpoint that precedes the
// plan's earliest effect (core.EarliestEffect).
//
// Correctness is enforced by construction, not by sampling:
//
//   - a checkpoint is only captured at a quiescent instant (every pending
//     kernel event tagged, no held messages, no RPC calls in flight) —
//     otherwise capture slides forward in 1ms steps and eventually abandons
//     the candidate;
//   - a fork replicates the full replay's sequence-number allocation
//     exactly: the kernel is rewound to the post-Build counter, the plan is
//     applied (consuming the same band Apply would in a full replay, under
//     strict-past checking), the workload is replayed in rehydration mode
//     (burning the pre-checkpoint actions' numbers), pending events are
//     re-installed shifted by the plan's allocation count, and the counter
//     is fast-forwarded to the prefix counter plus the same shift;
//   - anything that cannot be proven exact — an unsnapshotable cluster, an
//     unknown plan type, a strict-past violation, a restore error, a panic,
//     or a watchdog trip inside the fork — falls back to the full-replay
//     path, whose records are canonical.
//
// The ladder run is infrastructure, not an execution: it is not counted in
// Executions, produces no outcome records, and leaves no trace in any
// artifact, so snapshot-on and snapshot-off campaigns emit byte-identical
// canonicalized artifacts.

// maxCheckpoints caps the ladder's length; more rungs cost capture time and
// memory for diminishing prefix savings.
const maxCheckpoints = 12

// captureSlideAttempts bounds how far (in 1ms steps) a capture slides past
// its candidate instant looking for quiescence before abandoning it.
const captureSlideAttempts = 25

// captureMargin is how far before a quantile effect time the ladder aims
// its capture. Candidates sit AT mined moments by construction (they are
// quantiles of the plans' effect times), which are exactly the busy
// instants where capture must slide forward — often past the effect time
// itself, leaving the rung useless for the very plans that put it there.
// Aiming a few virtual milliseconds early gives the slide room to find a
// quiescent instant that is still at or before the effect.
const captureMargin = 4 * sim.Millisecond

// checkpoint is one rung of the ladder: a cluster snapshot plus the
// reference trace prefix recorded up to the capture instant.
type checkpoint struct {
	at    sim.Time
	snap  *infra.Snapshot
	trace *trace.Trace
}

// fallbackCause classifies why a fork fell back to full replay. Only
// diagnosable causes are counted in Stats.SnapshotFallbacks; a plan that
// simply has no qualifying checkpoint (effect before the first rung, or an
// unbounded effect time) is routine prefix economics, not a fallback worth
// surfacing.
type fallbackCause uint8

const (
	fallbackNone fallbackCause = iota
	fallbackUnsnapshotable
	fallbackStrictPast
	fallbackRestoreError
	fallbackWatchdog
)

// forkState is the per-(target, seed) prefix-checkpoint substrate, built
// once per campaign seed and shared read-only by all workers.
type forkState struct {
	ref        *trace.Trace
	buildSeq   uint64   // kernel sequence counter right after Build
	buildSteps uint64   // kernel step counter right after Build
	buildEnd   sim.Time // virtual clock right after Build
	horizon    sim.Duration
	// checkpoints are sorted by ascending capture time.
	checkpoints []checkpoint
	// unsnapshotable marks a substrate whose cluster refused Snapshotable();
	// every execution then falls back with a counted cause instead of the
	// historical silent nil substrate.
	unsnapshotable bool
}

// buildForkState runs the checkpoint ladder for one (target, seed): a
// plan-free prefix run captured at the quantiles of the plans' earliest
// effect times. It returns nil when no checkpoint could be captured — the
// campaign then runs every plan as a full replay, exactly as with
// snapshotting disabled. An unsnapshotable cluster returns a sentinel
// substrate instead so every execution's fallback is counted per cause.
func buildForkState(t core.Target, seed int64, plans []core.Plan, ref *trace.Trace) (fs *forkState) {
	defer func() {
		if recover() != nil {
			fs = nil
		}
	}()
	c := t.Build(seed)
	if !c.Snapshotable() {
		return &forkState{unsnapshotable: true}
	}
	k := c.World.Kernel()
	fs = &forkState{
		ref:        ref,
		buildSeq:   k.Seq(),
		buildSteps: k.Steps(),
		buildEnd:   k.Now(),
		horizon:    t.Horizon,
	}
	rec := trace.NewRecorder()
	rec.Attach(c.World.Network(), c.Store.Store())
	// Tag the workload's own timers so they are identifiable in snapshots
	// (forks skip them on restore and recreate them by rehydration).
	wtag := sim.EventTag{Owner: "workload", Kind: "action"}
	k.SetDefaultTag(&wtag)
	t.Workload(c)
	k.SetDefaultTag(nil)

	end := fs.buildEnd.Add(t.Horizon)
	for _, cand := range candidateTimes(fs, plans, ref, end) {
		if cand < k.Now() {
			continue // a previous capture slid past this candidate
		}
		k.Run(cand)
		snap, ok := captureWithSlide(c, k, end)
		if !ok {
			continue
		}
		fs.checkpoints = append(fs.checkpoints, checkpoint{
			at:    k.Now(),
			snap:  snap,
			trace: rec.T.Fork(),
		})
	}
	if len(fs.checkpoints) == 0 {
		return nil
	}
	return fs
}

// candidateTimes selects the checkpoint instants: the build boundary (every
// plan whose effect follows warmup can fork from it) plus up to
// maxCheckpoints-1 quantiles of the earliest-effect times of the campaign's
// plans inside (buildEnd, end). Quantiles are taken over the per-plan
// multiset — NOT the distinct times — so when many plans share one mined
// moment (gap plans all dropping deliveries of the same hot object), a rung
// lands exactly there and the bulk of the campaign forks with a minimal
// residual replay.
func candidateTimes(fs *forkState, plans []core.Plan, ref *trace.Trace, end sim.Time) []sim.Time {
	var effs []sim.Time
	for _, p := range plans {
		eff, ok := core.EarliestEffect(p, ref)
		if !ok {
			continue
		}
		if eff > fs.buildEnd && eff < end {
			effs = append(effs, eff)
		}
	}
	sort.Slice(effs, func(i, j int) bool { return effs[i] < effs[j] })
	out := []sim.Time{fs.buildEnd}
	quota := maxCheckpoints - 1
	if len(effs) == 0 {
		return out
	}
	// Mass-weighted quantiles, endpoints included; duplicates collapse.
	// Each candidate aims captureMargin before its effect time so the
	// quiescence slide has room to land at or before the effect.
	for i := 0; i < quota; i++ {
		idx := i * (len(effs) - 1) / (quota - 1)
		cand := effs[idx].Add(-captureMargin)
		if cand <= fs.buildEnd {
			continue
		}
		if out[len(out)-1] != cand {
			out = append(out, cand)
		}
	}
	return out
}

// captureWithSlide captures the cluster at the current instant, advancing
// virtual time in 1ms steps while the instant is not quiescent (an untagged
// timer pending, a message held, an RPC call in flight).
func captureWithSlide(c *infra.Cluster, k *sim.Kernel, end sim.Time) (*infra.Snapshot, bool) {
	for attempt := 0; attempt < captureSlideAttempts; attempt++ {
		if snap, ok := c.Capture(); ok {
			return snap, true
		}
		if k.Now() >= end {
			return nil, false
		}
		k.RunFor(sim.Millisecond)
	}
	return nil, false
}

// forkPoint returns the latest checkpoint at or before the plan's earliest
// effect, or nil when none qualifies (or the effect cannot be bounded).
func (fs *forkState) forkPoint(p core.Plan) *checkpoint {
	eff, ok := core.EarliestEffect(p, fs.ref)
	if !ok {
		return nil
	}
	var cp *checkpoint
	for i := range fs.checkpoints {
		if fs.checkpoints[i].at <= eff {
			cp = &fs.checkpoints[i]
		} else {
			break
		}
	}
	return cp
}

// runForked executes one plan by forking from a prefix checkpoint. It
// returns ok=false whenever the fork cannot be proven byte-equivalent to a
// full replay — no qualifying checkpoint, a strict-past violation from the
// plan, a restore error, a panic, or a watchdog trip — in which case the
// caller must fall back to runGuarded, whose records are canonical. The
// returned cause classifies diagnosable fallbacks for Stats.SnapshotFallbacks;
// a missing checkpoint reports fallbackNone (routine, not a defect).
func runForked(t core.Target, p core.Plan, seed int64, instrument bool, budget uint64, fs *forkState) (exec core.Execution, sig Signature, ok bool, cause fallbackCause) {
	if fs.unsnapshotable {
		return core.Execution{}, 0, false, fallbackUnsnapshotable
	}
	cp := fs.forkPoint(p)
	if cp == nil {
		return core.Execution{}, 0, false, fallbackNone
	}
	defer func() {
		if recover() != nil {
			exec, sig, ok, cause = core.Execution{}, 0, false, fallbackRestoreError
		}
	}()
	if budget == 0 {
		budget = DefaultEventBudget
	}
	c2, err := cp.snap.NewCluster()
	if err != nil {
		return core.Execution{}, 0, false, fallbackRestoreError
	}
	k := c2.World.Kernel()
	var rec *trace.Recorder
	if instrument {
		rec = trace.NewRecorderFor(cp.trace.Fork())
		rec.Attach(c2.World.Network(), c2.Store.Store())
	}
	// (1) Plan application consumes the sequence band directly after the
	// Build boundary, exactly as in a full replay. Strict mode rejects
	// plans with effects inside the checkpointed prefix.
	k.SetSeq(fs.buildSeq)
	k.SetStrictPast(true)
	p.Apply(c2)
	k.SetStrictPast(false)
	if k.StrictViolation() != "" {
		return core.Execution{}, 0, false, fallbackStrictPast
	}
	shift := k.Seq() - fs.buildSeq
	// (2) Workload rehydration burns the sequence numbers of pre-checkpoint
	// actions and schedules the rest for real.
	k.BeginRehydrate(cp.snap.Kernel.Now)
	t.Workload(c2)
	k.EndRehydrate()
	// (3) Pending events return with their original tie-break order,
	// shifted past the plan's allocation band.
	if err := c2.InstallPending(cp.snap.Kernel.Pending, fs.buildSeq, int64(shift)); err != nil {
		return core.Execution{}, 0, false, fallbackRestoreError
	}
	// (4) Fast-forward the counter to the prefix counter plus the shift and
	// run to the horizon under the same watchdog budget as a full replay.
	k.SetSeq(cp.snap.Kernel.Seq + shift)
	k.SetMaxSteps(fs.buildSteps + budget)
	deadline := fs.buildEnd.Add(t.Horizon)
	k.Run(deadline)
	if k.Steps() >= fs.buildSteps+budget && k.Now() < deadline {
		// Livelocked: discard the fork so the full replay produces the
		// canonical Hung record.
		return core.Execution{}, 0, false, fallbackWatchdog
	}
	exec = core.Execution{
		Plan:       p,
		Seed:       seed,
		Violations: c2.Violations(),
		Detected:   c2.Oracles.Violated(t.Bug),
	}
	if instrument {
		sig = signatureOf(rec.T, exec.Violations)
	}
	return exec, sig, true, fallbackNone
}
