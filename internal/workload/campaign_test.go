package workload

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
)

// TestReferenceRunsAreClean verifies that no target bug manifests without
// perturbation — the precondition for campaigns to be meaningful.
func TestReferenceRunsAreClean(t *testing.T) {
	for _, target := range AllTargets() {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			_, violations := core.Reference(target)
			for _, v := range violations {
				t.Errorf("reference run violated %s: %s", v.Oracle, v.Detail)
			}
		})
	}
}

// TestToolDetectsAllFiveBugs is the repository's headline check: the
// partial-history planner reproduces both known Kubernetes bugs and detects
// all three cassandra-operator bugs (paper Section 7) — and the fixed
// component variants survive the exact perturbation that broke the stock
// build (the regression check a maintainer would run after landing a fix).
func TestToolDetectsAllFiveBugs(t *testing.T) {
	for _, target := range AllTargets() {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			ref, refViolations := core.Reference(target)
			if len(refViolations) != 0 {
				t.Fatalf("reference run dirty: %v", refViolations)
			}
			plans := core.NewPlanner().Plans(target, ref)
			var detecting core.Plan
			executions := 0
			for i, p := range plans {
				if i >= 600 {
					break
				}
				executions = i + 1
				if exec := core.RunPlan(target, p); exec.Detected {
					detecting = p
					break
				}
			}
			if detecting == nil {
				t.Fatalf("tool failed to detect %s within %d executions (plans: %d)",
					target.Name, executions, len(plans))
			}
			t.Logf("%s detected in %d/%d executions via %s",
				target.Name, executions, len(plans), detecting.Describe())

			// The fix must hold under the same perturbation.
			fixedExec := core.RunPlan(Fixed(target), detecting)
			if fixedExec.Detected {
				t.Fatalf("fixed variant still violates %s under %s",
					target.Bug, detecting.Describe())
			}
		})
	}
}

// TestBaselinesGeneratePlans sanity-checks baseline plan generation.
func TestBaselinesGeneratePlans(t *testing.T) {
	target := Target56261()
	ref, _ := core.Reference(target)
	for _, s := range []core.Strategy{
		baselines.Random{Seed: 7, N: 25},
		baselines.CrashTuner{},
		baselines.CoFI{},
	} {
		plans := s.Plans(target, ref)
		if len(plans) == 0 {
			t.Errorf("%s generated no plans", s.Name())
		}
		ids := map[string]bool{}
		for _, p := range plans {
			if ids[p.ID()] {
				t.Errorf("%s generated duplicate plan %s", s.Name(), p.ID())
			}
			ids[p.ID()] = true
		}
	}
}
