package learn

import (
	"reflect"
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fixtureTrace builds a synthetic reference trace with the attribution
// shapes the miner must separate:
//
//   - "ctrl" is a cross-kind control loop: it consumes specs/app and
//     reacts by writing pods/app-1 and CAS-updating specs/app.
//   - "agent" is a same-kind echo writer: it consumes pods/app-1 and
//     writes back pod status. It also heartbeats nodes/a1 every 250ms
//     for the whole trace — a background stream that must never be
//     attributed to a delivery.
//   - pods/other is delivered to "agent" but never reacted to: the only
//     writes in its reaction window are heartbeats.
//   - pods/app-1 DELETED reaches "ctrl" with no reaction at all: it must
//     still be consumed (deletion-adjacent), because a missing reaction
//     to a deletion is exactly the observability-gap bug mode.
func fixtureTrace() *trace.Trace {
	tr := &trace.Trace{}
	api := sim.NodeID("api-1")
	del := func(to sim.NodeID, at sim.Time, kind cluster.Kind, name string, et apiserver.EventType, occ int, term bool) {
		tr.Deliveries = append(tr.Deliveries, trace.Delivery{
			From: api, To: to, Time: at, Kind: kind, Name: name,
			EventType: et, Occurrence: occ, Terminating: term,
		})
	}
	write := func(from sim.NodeID, at sim.Time, method string, kind cluster.Kind, name string) {
		tr.Writes = append(tr.Writes, trace.Write{From: from, Time: at, Method: method, Kind: kind, Name: name})
	}

	// Background heartbeats: 40 node-status updates over 10s.
	for i := 0; i < 40; i++ {
		write("agent", sim.Time(int64(i)*int64(250*sim.Millisecond)), apiserver.MethodUpdate, "nodes", "a1")
	}

	// Control loop: spec observed, cross-kind reaction.
	del("ctrl", sim.Time(1*sim.Second), "specs", "app", apiserver.Modified, 1, false)
	write("ctrl", sim.Time(1*sim.Second+10*sim.Millisecond), apiserver.MethodCreate, "pods", "app-1")
	write("ctrl", sim.Time(1*sim.Second+20*sim.Millisecond), apiserver.MethodUpdate, "specs", "app")

	// Echo writer: pod observed, same-kind status write.
	del("agent", sim.Time(2*sim.Second), "pods", "app-1", apiserver.Added, 1, false)
	write("agent", sim.Time(2*sim.Second+50*sim.Millisecond), apiserver.MethodUpdate, "pods", "app-1")

	// Observed but never consumed: only heartbeats in the window.
	del("agent", sim.Time(5*sim.Second), "pods", "other", apiserver.Modified, 1, false)

	// Deletion-adjacent, zero reaction: must still be consumed.
	del("ctrl", sim.Time(8*sim.Second), "pods", "app-1", apiserver.Deleted, 1, false)

	// The workload driver is not a component under test.
	del("admin", sim.Time(9*sim.Second), "pods", "app-1", apiserver.Deleted, 1, false)
	return tr
}

func TestMineProfiles(t *testing.T) {
	m := Mine(fixtureTrace(), 0)

	if got := m.Components(); len(got) != 2 || got[0] != "agent" || got[1] != "ctrl" {
		t.Fatalf("components = %v, want [agent ctrl]", got)
	}
	ctrl := m.Profiles["ctrl"]
	if len(ctrl.Consumed) != 2 || ctrl.Deliveries != 2 {
		t.Fatalf("ctrl consumed %d/%d deliveries, want 2/2", len(ctrl.Consumed), ctrl.Deliveries)
	}
	spec := ctrl.Consumed[0]
	if spec.Writes != 2 || spec.CASWrites != 1 || !spec.CrossKind {
		t.Fatalf("spec consumption = %+v, want 2 writes, 1 CAS, cross-kind", spec)
	}
	deletion := ctrl.Consumed[1]
	if deletion.Writes != 0 || !deletion.DeletionAdjacent() {
		t.Fatalf("deletion consumption = %+v, want deletion-adjacent with 0 writes", deletion)
	}

	agent := m.Profiles["agent"]
	if agent.Deliveries != 2 || len(agent.Consumed) != 1 {
		t.Fatalf("agent consumed %d/%d deliveries, want 1/2 (heartbeats must not consume pods/other)",
			len(agent.Consumed), agent.Deliveries)
	}
	pod := agent.Consumed[0]
	if pod.CrossKind {
		t.Fatalf("agent pod consumption marked cross-kind; heartbeat writes leaked into attribution: %+v", pod)
	}
	if pod.Writes != 1 || pod.CASWrites != 1 {
		t.Fatalf("agent pod consumption = %+v, want exactly the status write attributed", pod)
	}

	if _, ok := m.Profiles["admin"]; ok {
		t.Fatal("admin (workload driver) must not be profiled")
	}
}

func TestMineDeterministic(t *testing.T) {
	a, b := Mine(fixtureTrace(), 0), Mine(fixtureTrace(), 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Mine is not a pure function of the trace")
	}
}

func TestSurface(t *testing.T) {
	m := Mine(fixtureTrace(), 0)

	// A drop of a consumed delivery resolves to that single consumption.
	known, surf := m.Surface(core.GapPlan{Victim: "ctrl", Kind: "specs", Name: "app", Type: apiserver.Modified, Occurrence: 1})
	if !known || len(surf) != 1 {
		t.Fatalf("consumed drop surface = (%v, %v), want known singleton", known, surf)
	}
	// A drop of an observed-but-unconsumed delivery has an empty surface.
	known, surf = m.Surface(core.GapPlan{Victim: "agent", Kind: "pods", Name: "other", Type: apiserver.Modified, Occurrence: 1})
	if !known || len(surf) != 0 {
		t.Fatalf("unconsumed drop surface = (%v, %v), want known empty", known, surf)
	}
	// Staleness of the apiserver covers everything that flowed through it.
	known, surf = m.Surface(core.StalenessPlan{Victim: "api-1", From: 0, Until: sim.Time(10 * sim.Second)})
	if !known || len(surf) != m.ConsumedCount() {
		t.Fatalf("full-window staleness surface = (%v, %d), want all %d consumptions", known, len(surf), m.ConsumedCount())
	}
	// Compaction pressure cannot be bounded from the trace.
	if known, _ = m.Surface(core.CompactionPressurePlan{Victim: "ctrl"}); known {
		t.Fatal("compaction surface must be unknown (keep-if-unsure)")
	}
	// Sequences union their members and inherit unknownness.
	known, surf = m.Surface(core.SequencePlan{Name: "s", Plans: []core.Plan{
		core.GapPlan{Victim: "ctrl", Kind: "specs", Name: "app", Type: apiserver.Modified, Occurrence: 1},
		core.CrashPlan{Component: "agent", At: sim.Time(1 * sim.Second)},
	}})
	if !known || len(surf) < 2 {
		t.Fatalf("sequence surface = (%v, %v), want union of members", known, surf)
	}
	known, _ = m.Surface(core.SequencePlan{Name: "s", Plans: []core.Plan{
		core.CompactionPressurePlan{Victim: "ctrl"},
	}})
	if known {
		t.Fatal("sequence containing an unknown member must be unknown")
	}
}

func fixtureSchedulePlans() []core.Plan {
	aSecond := sim.Time(1 * sim.Second)
	return []core.Plan{
		// 0: consumed drop — kept.
		core.GapPlan{Victim: "ctrl", Kind: "specs", Name: "app", Type: apiserver.Modified, Occurrence: 1},
		// 1: unconsumed drop — pruned.
		core.GapPlan{Victim: "agent", Kind: "pods", Name: "other", Type: apiserver.Modified, Occurrence: 1},
		// 2, 3: two blackouts over the same consumed delivery — the second
		// dedupes behind the first.
		core.GapPlan{Victim: "ctrl", Kind: "specs", Name: "app", From: aSecond - sim.Time(100*sim.Millisecond), Until: aSecond + sim.Time(100*sim.Millisecond)},
		core.GapPlan{Victim: "ctrl", Kind: "specs", Name: "app", From: aSecond - sim.Time(50*sim.Millisecond), Until: aSecond + sim.Time(200*sim.Millisecond)},
		// 4, 5: two staleness windows with identical surfaces — both kept:
		// timing-sensitive families never dedupe.
		core.StalenessPlan{Victim: "api-1", From: 0, Until: sim.Time(10 * sim.Second)},
		core.StalenessPlan{Victim: "api-1", From: sim.Time(100 * sim.Millisecond), Until: sim.Time(10 * sim.Second)},
		// 6: unknown surface — kept conservatively.
		core.CompactionPressurePlan{Victim: "ctrl"},
	}
}

func TestBuildSchedulePruneAndDedupe(t *testing.T) {
	m := Mine(fixtureTrace(), 0)
	plans := fixtureSchedulePlans()
	s := BuildSchedule(m, core.Target{Name: "fixture"}, plans, Options{Prune: true})

	if s.Stats.Planned != 7 || s.Stats.Kept != 5 || s.Stats.Pruned != 1 || s.Stats.Deduped != 1 {
		t.Fatalf("stats = %+v, want planned 7 kept 5 pruned 1 deduped 1", s.Stats)
	}
	actions := map[int]Action{}
	reprs := map[int]int{}
	for _, d := range s.Decisions {
		actions[d.Index] = d.Action
		reprs[d.Index] = d.Representative
	}
	for idx, want := range map[int]Action{0: Keep, 1: Prune, 2: Keep, 3: Dedupe, 4: Keep, 5: Keep, 6: Keep} {
		if actions[idx] != want {
			t.Fatalf("plan %d action = %s, want %s (decisions: %+v)", idx, actions[idx], want, actions)
		}
	}
	if reprs[3] != 2 {
		t.Fatalf("deduped plan 3 representative = %d, want 2", reprs[3])
	}
	// Deferred tail preserves planner order: prune before dedupe here.
	if len(s.Deferred) != 2 || s.Deferred[0].Index != 1 || s.Deferred[1].Index != 3 {
		t.Fatalf("deferred = %+v, want plans 1 then 3", s.Deferred)
	}
	// Without Prune everything is kept in order.
	all := BuildSchedule(m, core.Target{Name: "fixture"}, plans, Options{})
	if all.Stats.Kept != 7 || len(all.Deferred) != 0 {
		t.Fatalf("pruning disabled: stats = %+v, want all 7 kept", all.Stats)
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	m := Mine(fixtureTrace(), 0)
	opts := Options{Prune: true, Rank: true, Affinity: map[string]int{"stale/api-1": 1}}
	a := BuildSchedule(m, core.Target{Name: "fixture"}, fixtureSchedulePlans(), opts)
	b := BuildSchedule(m, core.Target{Name: "fixture"}, fixtureSchedulePlans(), opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BuildSchedule is not a pure function of (model, plans, opts)")
	}
}

func TestRankPreservesFamilyBlocks(t *testing.T) {
	m := Mine(fixtureTrace(), 0)
	s := BuildSchedule(m, core.Target{Name: "fixture"}, fixtureSchedulePlans(), Options{Prune: true, Rank: true})

	// Staleness plans tie the best gap's max-evidence score (their surface
	// contains the same consumptions), but must not jump the gap blocks.
	fams := make([]string, len(s.Kept))
	for i, sp := range s.Kept {
		fams[i] = familyOf(sp.Plan)
	}
	want := []string{"gap/drop", "gap/blackout", "stale", "stale", "compact"}
	if !reflect.DeepEqual(fams, want) {
		t.Fatalf("ranked family order = %v, want %v", fams, want)
	}
	// Unknown surfaces score only the floor and sink to the block's end.
	if _, isCompaction := s.Kept[len(s.Kept)-1].Plan.(core.CompactionPressurePlan); !isCompaction {
		t.Fatalf("unknown-surface plan is not last: %v", s.Kept[len(s.Kept)-1].Plan.ID())
	}
}

func TestRankAffinityOverridesFamilyOrder(t *testing.T) {
	m := Mine(fixtureTrace(), 0)
	s := BuildSchedule(m, core.Target{Name: "fixture"}, fixtureSchedulePlans(),
		Options{Prune: true, Rank: true, Affinity: map[string]int{"stale/api-1": 2}})
	if _, isStale := s.Kept[0].Plan.(core.StalenessPlan); !isStale {
		t.Fatalf("affinity class did not jump to the front: %v", s.Kept[0].Plan.ID())
	}
}

func TestClassOfAndFamilyOf(t *testing.T) {
	drop := core.GapPlan{Victim: "ctrl", Kind: "specs", Name: "app", Type: apiserver.Modified, Occurrence: 1}
	blackout := core.GapPlan{Victim: "ctrl", Kind: "specs", Name: "app", From: 1, Until: 2}
	if ClassOf(drop) == ClassOf(blackout) {
		t.Fatal("drop and blackout must have distinct classes")
	}
	if familyOf(drop) != "gap/drop" || familyOf(blackout) != "gap/blackout" {
		t.Fatalf("gap families = %q/%q, want gap/drop and gap/blackout", familyOf(drop), familyOf(blackout))
	}
	if familyOf(core.StalenessPlan{Victim: "api-1"}) != "stale" {
		t.Fatalf("staleness family = %q", familyOf(core.StalenessPlan{Victim: "api-1"}))
	}
	seq := core.SequencePlan{Name: "s", Plans: []core.Plan{drop, blackout}}
	if familyOf(seq) != "seq" {
		t.Fatalf("sequence family = %q, want seq", familyOf(seq))
	}
}
