package farm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/campaign"
)

// This file is the farm's supervision layer: the part that turns "a
// worker process died" from a campaign-aborting event into a recorded,
// retried, and — when a task is genuinely poison — quarantined one.
//
// The load-bearing property is that supervision must be invisible in the
// campaign's deterministic outputs. A retried task re-executes the same
// (target, strategy, seeds, config) through the same engine, so its
// result is byte-identical to the first attempt's would-have-been result;
// the coordinator therefore reassigns freely, and a campaign with
// injected worker crashes canonicalizes to the same artifact and NDJSON
// bytes as a failure-free run. Everything supervision observes about the
// host — which worker died, of what, how often — lands in the
// FleetReport, the journal, and the (canonicalization-scrubbed)
// Stats.Fleet counters, never in the execution set.

// Death causes, as recorded in DeathRecord.Cause.
const (
	DeathSpawn     = "spawn"     // transport failed to start
	DeathHandshake = "handshake" // no valid ready frame in time
	DeathEOF       = "eof"       // stream closed mid-session (crash, exit)
	DeathDeadline  = "deadline"  // task deadline expired (stall, livelock)
	DeathProtocol  = "protocol"  // malformed frame (torn write, corruption)
)

// DeathRecord is one worker death as the supervisor saw it: which slot
// incarnation died, what it was running, and the sanitized evidence —
// exit status, the last good protocol frame it sent, and its stderr
// tail. Evidence is for the fleet report and journal only; nothing here
// flows into campaign results (quarantine Details are built from causes
// alone, so they stay deterministic).
type DeathRecord struct {
	Worker int `json:"worker"`  // slot index
	Spawn  int `json:"spawn"`   // incarnation of the slot (0 = first)
	TaskID int `json:"task_id"` // task in flight at death; -1 if idle
	// Cause is one of the Death* constants.
	Cause string `json:"cause"`
	// Detail carries the sanitized immediate error: exit status, protocol
	// violation, handshake timeout.
	Detail string `json:"detail,omitempty"`
	// LastFrame is the sanitized last well-formed frame the worker sent.
	LastFrame string `json:"last_frame,omitempty"`
	// StderrTail is the last few KB of the worker's stderr, when the
	// transport captures it (ProcessTransport does).
	StderrTail string `json:"stderr_tail,omitempty"`
}

// QuarantineRecord marks a task declared poison: it killed Kills
// distinct worker incarnations, so rather than grind the fleet down the
// coordinator records it as a failed cell and moves on.
type QuarantineRecord struct {
	TaskID int `json:"task_id"`
	Kills  int `json:"kills"`
	// Causes lists each attributed death's cause, in death order.
	Causes []string `json:"causes"`
	// Detail is the human summary embedded in the synthetic failed cell.
	// It is built only from causes and counts — never worker identities
	// or exit text — so a quarantined cell's bytes are deterministic.
	Detail string `json:"detail"`
}

// FleetReport is the supervision layer's own outcome: everything that
// happened to the fleet while the campaign ran. It is reported beside
// campaign results (phfarm -fleet), never inside them.
type FleetReport struct {
	Workers     int           `json:"workers"`
	Deaths      []DeathRecord `json:"deaths,omitempty"`
	Respawns    int           `json:"respawns"`
	Retried     int           `json:"tasks_retried"`
	Quarantined []int         `json:"tasks_quarantined,omitempty"` // task IDs
	Resumed     int           `json:"tasks_resumed,omitempty"`     // from journal
}

// Supervisor configures RunSupervised. Factory is the only required
// field; zero values elsewhere select the defaults named in the field
// docs.
type Supervisor struct {
	// Factory builds the transport for one (slot, spawn) incarnation.
	// It is called again after every death, so fault-injecting factories
	// can arrange for respawns to come up clean.
	Factory func(slot, spawn int) Transport
	// Workers is the fleet width (default 1).
	Workers int
	// OnRecord observes streamed per-execution records, as in Coordinator.
	// Records from attempts that later die are indistinguishable from the
	// retry's — they are the same bytes, per task determinism — so
	// observers see at-least-once delivery and must key on (task, index)
	// if they need exactly-once.
	OnRecord func(spec TaskSpec, out campaign.PlanOutcome)
	// MaxTaskKills quarantines a task after this many distinct worker
	// deaths are attributed to it (default 2).
	MaxTaskKills int
	// MaxRespawns retires a slot after this many consecutive failed
	// incarnations — sessions that died without completing a task
	// (default 5). A completed task resets the count.
	MaxRespawns int
	// BackoffBase/BackoffCap shape the capped exponential respawn delay
	// (defaults 50ms / 2s). The delay is jittered in [d/2, d).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HandshakeTimeout bounds how long a fresh worker may take to send
	// its ready frame (default 30s).
	HandshakeTimeout time.Duration
	// Deadline returns the per-task completion deadline (default
	// DefaultTaskDeadline). A task that exceeds it has its worker killed
	// and is treated exactly like a crash.
	Deadline func(spec TaskSpec) time.Duration
	// Journal, when non-nil, receives one fsynced line per completed or
	// quarantined task (plus death lines), enabling -resume.
	Journal *Journal
	// Log, when non-nil, receives one human-readable line per
	// supervision event.
	Log io.Writer

	// sleep is the test seam for backoff delays (nil = time.Sleep).
	sleep func(time.Duration)
}

func (s *Supervisor) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

func (s *Supervisor) maxTaskKills() int {
	if s.MaxTaskKills < 1 {
		return 2
	}
	return s.MaxTaskKills
}

func (s *Supervisor) maxRespawns() int {
	if s.MaxRespawns < 1 {
		return 5
	}
	return s.MaxRespawns
}

func (s *Supervisor) backoff(fails int) time.Duration {
	base := s.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	cap := s.BackoffCap
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := base
	for i := 1; i < fails && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// Jitter into [d/2, d): respawning workers after a correlated crash
	// (say, the machine paged) shouldn't stampede back in lockstep.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

func (s *Supervisor) handshakeTimeout() time.Duration {
	if s.HandshakeTimeout <= 0 {
		return 30 * time.Second
	}
	return s.HandshakeTimeout
}

func (s *Supervisor) deadline(spec TaskSpec) time.Duration {
	// Most specific wins: a task-level override (grid toggle axis) beats
	// the coordinator's global hook (-task-deadline), which beats the
	// scaled default.
	if spec.TaskDeadlineSec > 0 {
		return time.Duration(spec.TaskDeadlineSec) * time.Second
	}
	if s.Deadline != nil {
		return s.Deadline(spec)
	}
	return DefaultTaskDeadline(spec)
}

func (s *Supervisor) doSleep(d time.Duration) {
	if s.sleep != nil {
		s.sleep(d)
		return
	}
	time.Sleep(d)
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.Log != nil {
		fmt.Fprintf(s.Log, format+"\n", args...)
	}
}

// DefaultTaskDeadline scales a generous per-seed allowance by the task's
// event budget: the watchdog budget bounds a single execution's kernel
// work, so a task whose config multiplies it gets proportionally more
// wall clock before the supervisor declares its worker stalled.
func DefaultTaskDeadline(spec TaskSpec) time.Duration {
	const perSeed = 2 * time.Minute
	seeds := len(spec.Seeds)
	if seeds < 1 {
		seeds = 1
	}
	scale := 1.0
	if spec.EventBudget > campaign.DefaultEventBudget {
		scale = float64(spec.EventBudget) / float64(campaign.DefaultEventBudget)
	}
	return time.Duration(float64(perSeed) * float64(seeds) * scale)
}

// fleetState is the shared scheduler: a sorted pending queue plus the
// completion ledger, guarded by one mutex. Slots block in next() when
// the queue is empty but tasks are still in flight elsewhere — a death
// requeues its task and wakes them.
type fleetState struct {
	sup   *Supervisor
	tasks []TaskSpec

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []int // pending task IDs, ascending
	pending   int   // tasks not yet completed or quarantined
	cancelled bool
	results   []TaskResult
	report    FleetReport
}

func newFleetState(sup *Supervisor, tasks []TaskSpec) *fleetState {
	f := &fleetState{sup: sup, tasks: tasks, results: make([]TaskResult, len(tasks))}
	f.cond = sync.NewCond(&f.mu)
	for i, spec := range tasks {
		f.results[i] = TaskResult{Spec: spec}
	}
	return f
}

// next blocks until a task is available, every task is settled, or the
// run is cancelled. ok=false means the slot should shut its worker down
// cleanly and exit.
func (f *fleetState) next() (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.queue) == 0 && f.pending > 0 && !f.cancelled {
		f.cond.Wait()
	}
	if f.cancelled || len(f.queue) == 0 {
		return 0, false
	}
	id := f.queue[0]
	f.queue = f.queue[1:]
	return id, true
}

func (f *fleetState) push(id int) {
	// Ascending insert keeps retry dispatch order stable: determinism of
	// the merged output never depends on it (results are slotted by ID),
	// but stable scheduling makes fleet logs and tests reproducible.
	i := 0
	for i < len(f.queue) && f.queue[i] < id {
		i++
	}
	f.queue = append(f.queue, 0)
	copy(f.queue[i+1:], f.queue[i:])
	f.queue[i] = id
}

func (f *fleetState) cancel() {
	f.mu.Lock()
	f.cancelled = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// complete settles a task with a worker-reported result or deterministic
// task error, journals it, and wakes waiters.
func (f *fleetState) complete(id int, res *campaign.Result, errStr string) {
	f.mu.Lock()
	f.results[id].Res = res
	f.results[id].Err = errStr
	f.pending--
	j := f.sup.Journal
	f.mu.Unlock()
	if j != nil {
		_ = j.Result(id, res, errStr)
	}
	f.cond.Broadcast()
}

// died records a worker death; when the dead worker held a task, the
// task is either requeued (retry) or — at maxTaskKills distinct deaths —
// quarantined as a synthetic failed cell.
func (f *fleetState) died(d DeathRecord) {
	f.sup.logf("farm: worker %d spawn %d died (%s): task=%d %s", d.Worker, d.Spawn, d.Cause, d.TaskID, d.Detail)
	var q *QuarantineRecord
	f.mu.Lock()
	f.report.Deaths = append(f.report.Deaths, d)
	if d.TaskID >= 0 {
		tr := &f.results[d.TaskID]
		tr.Deaths = append(tr.Deaths, d)
		if len(tr.Deaths) >= f.sup.maxTaskKills() {
			causes := make([]string, len(tr.Deaths))
			for i, dd := range tr.Deaths {
				causes[i] = dd.Cause
			}
			q = &QuarantineRecord{
				TaskID: d.TaskID,
				Kills:  len(tr.Deaths),
				Causes: causes,
				Detail: fmt.Sprintf("task killed %d workers (%s); quarantined", len(tr.Deaths), joinCauses(causes)),
			}
			tr.Quarantine = q
			f.report.Quarantined = append(f.report.Quarantined, d.TaskID)
			f.pending--
		} else {
			tr.Retries++
			f.report.Retried++
			f.push(d.TaskID)
		}
	}
	j := f.sup.Journal
	f.mu.Unlock()
	if j != nil {
		_ = j.Death(d)
		if q != nil {
			_ = j.Quarantine(q)
		}
	}
	if q != nil {
		f.sup.logf("farm: task %d quarantined after %d kills", q.TaskID, q.Kills)
	}
	f.cond.Broadcast()
}

func joinCauses(causes []string) string {
	out := ""
	for i, c := range causes {
		if i > 0 {
			out += ", "
		}
		out += c
	}
	return out
}

// done reports whether every task is settled or the run is cancelled.
func (f *fleetState) done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pending == 0 || f.cancelled
}

// RunSupervised executes tasks across a self-healing fleet of workers
// and returns one TaskResult per task (in task order), the fleet report,
// and whether ctx cancellation interrupted the run.
//
// resumed, when non-nil, seeds already-settled task results from a
// coordinator journal: those tasks are not dispatched again, and their
// results flow into the output untouched — the resumed run's merged
// artifact is byte-identical to an uninterrupted one because each
// journal line holds the task's full deterministic result.
//
// Unlike Coordinator.Run, worker death never aborts the run: dead
// workers respawn with capped, jittered exponential backoff, their
// in-flight tasks retry on healthy workers, and a task that keeps
// killing workers is quarantined (Res nil, Quarantine set). The run
// fails outright only when the fleet is exhausted: every slot retired
// (MaxRespawns consecutive spawn failures) with tasks still pending.
func RunSupervised(ctx context.Context, sup *Supervisor, tasks []TaskSpec, resumed map[int]ResumedTask) ([]TaskResult, FleetReport, bool, error) {
	for i, spec := range tasks {
		if spec.ID != i {
			return nil, FleetReport{}, false, fmt.Errorf("farm: task %d has ID %d; IDs must be dense and ordered", i, spec.ID)
		}
	}
	f := newFleetState(sup, tasks)
	f.report.Workers = sup.workers()
	for i := range tasks {
		if pre, ok := resumed[i]; ok {
			f.results[i].Res = pre.Res
			f.results[i].Err = pre.Err
			f.results[i].Quarantine = pre.Quarantine
			f.report.Resumed++
			continue
		}
		f.push(i)
		f.pending++
	}
	if f.pending == 0 {
		return f.results, f.report, false, nil
	}

	// The cancel watcher converts ctx death into a broadcast that frees
	// slots blocked in next(); stop() fires it on normal return too so
	// the goroutine never outlives the run.
	kctx, stop := context.WithCancel(ctx)
	defer stop()
	go func() {
		<-kctx.Done()
		if ctx.Err() != nil {
			f.cancel()
		}
	}()

	var wg sync.WaitGroup
	for slot := 0; slot < sup.workers(); slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			f.runSlot(ctx, slot)
		}(slot)
	}
	wg.Wait()

	interrupted := ctx.Err() != nil
	if !interrupted && f.pending > 0 {
		return f.results, f.report, false, fmt.Errorf(
			"farm: fleet exhausted: %d tasks incomplete after %d worker deaths",
			f.pending, len(f.report.Deaths))
	}
	return f.results, f.report, interrupted, nil
}

// runSlot is one slot's supervision loop: spawn, serve a session, and on
// death back off and respawn — until the queue drains, the run is
// cancelled, or the slot burns MaxRespawns consecutive incarnations
// without completing anything (at which point it retires and leaves the
// remaining work to healthier slots).
func (f *fleetState) runSlot(ctx context.Context, slot int) {
	fails := 0
	for spawn := 0; ; spawn++ {
		if f.done() || ctx.Err() != nil {
			return
		}
		if spawn > 0 {
			f.mu.Lock()
			f.report.Respawns++
			f.mu.Unlock()
			f.sup.doSleep(f.sup.backoff(fails))
			if f.done() || ctx.Err() != nil {
				return
			}
		}
		completed, clean := f.session(ctx, slot, spawn)
		if clean {
			return
		}
		if completed > 0 {
			fails = 0
		}
		fails++
		if fails > f.sup.maxRespawns() {
			f.sup.logf("farm: worker slot %d retired after %d consecutive failures", slot, fails-1)
			return
		}
	}
}

// frameEvent is one reader-goroutine observation: a decoded frame (with
// its sanitized raw line) or the error that ended the stream.
type frameEvent struct {
	msg wireMsg
	raw string
	err error
}

// session runs one worker incarnation end to end. It returns the number
// of tasks the incarnation completed and whether it ended cleanly
// (queue drained or run cancelled — no death to record).
func (f *fleetState) session(ctx context.Context, slot, spawn int) (completed int, clean bool) {
	sup := f.sup
	tr := sup.Factory(slot, spawn)
	peer := fmt.Sprintf("worker %d spawn %d", slot, spawn)
	death := DeathRecord{Worker: slot, Spawn: spawn, TaskID: -1}

	in, out, err := tr.Start()
	if err != nil {
		death.Cause = DeathSpawn
		death.Detail = err.Error()
		f.died(death)
		return 0, false
	}
	// The reader goroutine owns the scanner; the session owns everything
	// else. done gates its channel sends so it can never block forever
	// after the session ends, and draining happens via transport Kill
	// (closing the stream) followed by the goroutine observing the error.
	events := make(chan frameEvent)
	done := make(chan struct{})
	defer close(done)
	go func() {
		fs := newFrameScanner(out, peer)
		for {
			msg, raw, err := fs.next()
			select {
			case events <- frameEvent{msg: msg, raw: raw, err: err}:
			case <-done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	// finish tears the incarnation down. Kill before Wait even on the
	// clean path: the protocol shutdown already went out, so any process
	// still alive is one that ignored it.
	finish := func(kill bool) {
		if kill {
			tr.Kill()
		}
		waitErr := tr.Wait()
		if waitErr != nil && death.Detail == "" {
			death.Detail = sanitizeEvidence(waitErr.Error())
		}
		if st, ok := tr.(stderrTailer); ok {
			if tail := st.StderrTail(); tail != "" {
				death.StderrTail = sanitizeEvidence(tail)
			}
		}
	}

	// Handshake: the worker must announce ready with the right protocol
	// magic before it gets a task.
	hs := time.NewTimer(sup.handshakeTimeout())
	select {
	case ev := <-events:
		hs.Stop()
		if ev.err != nil || ev.msg.Type != msgReady || ev.msg.Proto != ProtocolVersion {
			death.Cause = DeathHandshake
			switch {
			case ev.err != nil:
				death.Cause = deathCauseOf(ev.err)
				death.Detail = sanitizeEvidence(ev.err.Error())
			case ev.msg.Proto != ProtocolVersion:
				death.Detail = fmt.Sprintf("protocol version %q, want %q", ev.msg.Proto, ProtocolVersion)
			default:
				death.Detail = fmt.Sprintf("first frame %q, want ready", ev.msg.Type)
			}
			finish(true)
			f.died(death)
			return 0, false
		}
	case <-hs.C:
		death.Cause = DeathHandshake
		death.Detail = "no ready frame before handshake timeout"
		finish(true)
		f.died(death)
		return 0, false
	case <-ctx.Done():
		hs.Stop()
		finish(true)
		return 0, true
	}

	enc := json.NewEncoder(in)
	lastGood := ""
	for {
		id, ok := f.next()
		if !ok {
			// Queue drained or cancelled: polite shutdown, then reap.
			_ = enc.Encode(wireMsg{Type: msgShutdown})
			in.Close()
			finish(true)
			return completed, true
		}
		spec := f.tasks[id]
		death.TaskID = id
		if err := enc.Encode(wireMsg{Type: msgTask, Task: &spec}); err != nil {
			death.Cause = DeathEOF
			death.Detail = sanitizeEvidence(err.Error())
			death.LastFrame = lastGood
			finish(true)
			f.died(death)
			return completed, false
		}
		deadline := time.NewTimer(sup.deadline(spec))
		taskDone := false
		for !taskDone {
			select {
			case ev := <-events:
				if ev.err != nil {
					deadline.Stop()
					death.Cause = deathCauseOf(ev.err)
					death.Detail = sanitizeEvidence(ev.err.Error())
					death.LastFrame = lastGood
					finish(true)
					f.died(death)
					return completed, false
				}
				lastGood = ev.raw
				switch ev.msg.Type {
				case msgRecord:
					if sup.OnRecord != nil && ev.msg.Record != nil {
						sup.OnRecord(spec, *ev.msg.Record)
					}
				case msgResult:
					f.complete(id, ev.msg.Result, "")
					completed++
					taskDone = true
				case msgError:
					// A worker-reported task error is deterministic (the
					// task itself failed, reproducibly) — settled, not
					// retried: retrying would fail identically.
					f.complete(id, nil, ev.msg.Error)
					completed++
					taskDone = true
				default:
					deadline.Stop()
					death.Cause = DeathProtocol
					death.Detail = fmt.Sprintf("unexpected frame type %q", ev.msg.Type)
					death.LastFrame = ev.raw
					finish(true)
					f.died(death)
					return completed, false
				}
			case <-deadline.C:
				death.Cause = DeathDeadline
				death.Detail = fmt.Sprintf("task exceeded %s deadline", sup.deadline(spec))
				death.LastFrame = lastGood
				finish(true)
				f.died(death)
				return completed, false
			case <-ctx.Done():
				deadline.Stop()
				finish(true)
				return completed, true
			}
		}
		deadline.Stop()
		death.TaskID = -1
	}
}

// deathCauseOf classifies a stream-ending error.
func deathCauseOf(err error) string {
	var pe *ProtocolError
	if errors.As(err, &pe) {
		return DeathProtocol
	}
	return DeathEOF
}

// QuarantineResult synthesizes the failed cell a quarantined task merges
// as: zero executions, one "quarantine" execution-failure record, and
// fleet counters noting the quarantine. Everything in it is a
// deterministic function of (spec, causes) — worker identities and exit
// text stay in the fleet report — so merged artifacts containing
// quarantined cells are stable across reruns and worker counts.
func QuarantineResult(spec TaskSpec, q *QuarantineRecord) campaign.Result {
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	res := campaign.Result{
		Target:   spec.Target,
		Strategy: spec.Strategy,
	}
	for _, seed := range seeds {
		res.Seeds = append(res.Seeds, campaign.SeedResult{Seed: seed})
	}
	res.Campaign, res.DetectedSeed = campaign.PrimaryCampaign(res.Seeds)
	res.Failures = append(res.Failures, campaign.ExecutionFailure{
		Seed:   seeds[0],
		Index:  -1,
		Kind:   "quarantine",
		Detail: q.Detail,
	})
	res.Stats = campaign.Stats{
		Seeds: len(seeds),
		Fleet: &campaign.FleetStats{TasksQuarantined: 1},
	}
	return res
}
