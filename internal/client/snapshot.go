package client

import (
	"fmt"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/sim"
)

// ConnSnapshot captures a connection and all of its informers at a
// checkpoint. RPC in-flight state is forbidden (a checkpoint is only taken
// at quiescent instants where every pending call's timeout timer has been
// canceled), so only counters survive.
type ConnSnapshot struct {
	Self      sim.NodeID
	API       sim.NodeID
	Timeout   sim.Duration
	NextSub   uint64
	RPCNext   uint64
	Informers []*InformerSnapshot // sorted by subscription ID
}

// InformerSnapshot captures one informer cache. Cached object pointers are
// shared: the informer only ever installs fresh clones and hands out
// clones, never mutating a cached object in place.
type InformerSnapshot struct {
	Kind        cluster.Kind
	Cfg         InformerConfig
	SubID       uint64
	Epoch       uint64
	Synced      bool
	Store       map[string]*cluster.Object
	LastRev     int64
	Obs         history.ObservationLog // copy-on-write fork
	LastEventAt sim.Time
	Relists     int
	Retries     int
	Backoff     sim.Duration
}

// Snapshot captures the connection. It fails (ok=false) when a call is in
// flight — forks must not be taken there because the pending timeout timer
// carries a closure this layer cannot reconstruct (the kernel-side
// anonymous-event check catches this too; this is a belt-and-braces
// check).
func (c *Conn) Snapshot() (*ConnSnapshot, bool) {
	if c.rpc.PendingCalls() > 0 {
		return nil, false
	}
	snap := &ConnSnapshot{
		Self:    c.self,
		API:     c.api,
		Timeout: c.rpc.Timeout(),
		NextSub: c.nextSub,
		RPCNext: c.rpc.Next(),
	}
	ids := make([]uint64, 0, len(c.informers))
	for id := range c.informers {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		snap.Informers = append(snap.Informers, c.informers[id].snapshot())
	}
	return snap, true
}

func (i *Informer) snapshot() *InformerSnapshot {
	s := &InformerSnapshot{
		Kind:        i.kind,
		Cfg:         i.cfg,
		SubID:       i.subID,
		Epoch:       i.epoch,
		Synced:      i.synced,
		Store:       make(map[string]*cluster.Object, len(i.store)),
		LastRev:     i.lastRev,
		Obs:         i.Obs.Fork(),
		LastEventAt: i.lastEventAt,
		Relists:     i.relists,
		Retries:     i.retries,
		Backoff:     i.backoff,
	}
	for name, obj := range i.store {
		s.Store[name] = obj // shared; see type comment
	}
	return s
}

// RestoreConn reconstructs a connection (and its informers) from a
// snapshot. Event handlers are NOT restored — the owning component
// re-attaches its own handlers via RestoreHandler — and no timers are
// armed; pending informer timers are re-installed by the restore
// orchestration via RearmInformer.
func RestoreConn(w *sim.World, snap *ConnSnapshot) *Conn {
	c := &Conn{
		world:     w,
		self:      snap.Self,
		api:       snap.API,
		rpc:       sim.NewRPCClient(w.Network(), snap.Self, snap.Timeout),
		informers: make(map[uint64]*Informer, len(snap.Informers)),
	}
	c.rpc.SetNext(snap.RPCNext)
	c.nextSub = snap.NextSub
	for _, is := range snap.Informers {
		inf := &Informer{
			conn:        c,
			kind:        is.Kind,
			cfg:         is.Cfg,
			subID:       is.SubID,
			epoch:       is.Epoch,
			synced:      is.Synced,
			store:       make(map[string]*cluster.Object, len(is.Store)),
			lastRev:     is.LastRev,
			Obs:         is.Obs,
			lastEventAt: is.LastEventAt,
			relists:     is.Relists,
			retries:     is.Retries,
			backoff:     is.Backoff,
		}
		for name, obj := range is.Store {
			inf.store[name] = obj
		}
		c.informers[is.SubID] = inf
	}
	return c
}

// SubID returns the informer's watch subscription ID.
func (i *Informer) SubID() uint64 { return i.subID }

// Informer returns the restored informer with the given subscription ID.
func (c *Conn) Informer(subID uint64) (*Informer, bool) {
	inf, ok := c.informers[subID]
	return inf, ok
}

// RestoreHandler appends a handler without replaying the cache contents
// (restore path only: the handler's owner already holds state derived from
// those OnAdd calls in the checkpointed prefix).
func (i *Informer) RestoreHandler(h EventHandler) {
	i.handlers = append(i.handlers, h)
}

// RearmInformer returns the callback for a pending informer timer owned by
// one of this connection's informers, identified by its snapshot tag.
func (c *Conn) RearmInformer(tag sim.EventTag) (func(), error) {
	id, err := strconv.ParseUint(tag.Key, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("client: bad informer tag key %q: %v", tag.Key, err)
	}
	inf, ok := c.informers[id]
	if !ok {
		// A crash (Conn.Reset) drops informers but leaves their timers
		// pending; the live fire paths no-op on an unregistered sub. Rearm
		// the same no-op so the restored schedule keeps the event slot.
		return func() {}, nil
	}
	switch tag.Kind {
	case "inf-liveness":
		epoch := tag.Epoch
		return func() { inf.livenessFire(epoch) }, nil
	case "inf-relist":
		return inf.periodicRelistFire, nil
	default:
		return nil, fmt.Errorf("client: unknown pending event kind %q for %s", tag.Kind, c.self)
	}
}
