package store

import (
	"repro/internal/history"
)

// WatchHandle identifies an active watch registration.
type WatchHandle struct {
	id int64
	s  *Store
}

// Cancel removes the watch. Canceling twice is a no-op.
func (h WatchHandle) Cancel() {
	delete(h.s.watchers, h.id)
	h.s.watcherOrder = nil
}

// Watch registers notify for all committed events whose key has the given
// prefix, starting from revision startRev+1 (i.e. startRev is the last
// revision the watcher has already seen; pass the revision returned by a
// prior Range for the canonical list-then-watch pattern).
//
// Events between startRev+1 and the current revision are replayed
// synchronously before the handle is returned. If that span reaches into
// the compacted window, Watch fails with ErrCompacted and the caller must
// re-list — the forced relist is itself a partial-history hazard the paper
// highlights ([7], §4.2.3).
func (s *Store) Watch(prefix string, startRev int64, notify WatchNotify) (WatchHandle, error) {
	if startRev > s.rev {
		return WatchHandle{}, ErrFutureRevision
	}
	if startRev < s.compacted {
		return WatchHandle{}, ErrCompacted
	}
	// Replay the backlog the watcher has not seen yet.
	if startRev < s.rev {
		var backlog []history.Event
		for _, e := range s.hist.Since(startRev) {
			if hasPrefix(e.Key, prefix) {
				backlog = append(backlog, e)
			}
		}
		if len(backlog) > 0 {
			notify(backlog)
		}
	}
	s.nextWatch++
	id := s.nextWatch
	s.watchers[id] = &watcher{id: id, prefix: prefix, notify: notify}
	s.watcherOrder = nil
	return WatchHandle{id: id, s: s}, nil
}

// EventsSince returns retained events after rev with the given key prefix,
// or ErrCompacted when rev precedes the retained window.
func (s *Store) EventsSince(prefix string, rev int64) ([]history.Event, error) {
	if rev < s.compacted {
		return nil, ErrCompacted
	}
	if rev > s.rev {
		return nil, ErrFutureRevision
	}
	var out []history.Event
	for _, e := range s.hist.Since(rev) {
		if hasPrefix(e.Key, prefix) {
			out = append(out, e)
		}
	}
	return out, nil
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
