package sim

import "testing"

func TestTopologyLatencyClasses(t *testing.T) {
	topo := TopologyLatency{
		IntraRack: 250 * Microsecond,
		IntraDC:   Millisecond,
		CrossDC:   5 * Millisecond,
	}
	r0 := Location{Rack: "rack-00", Zone: "dc0-z0", DC: "dc0"}
	r0b := Location{Rack: "rack-00", Zone: "dc0-z0", DC: "dc0"}
	r1 := Location{Rack: "rack-01", Zone: "dc0-z1", DC: "dc0"}
	far := Location{Rack: "rack-02", Zone: "dc1-z0", DC: "dc1"}
	cases := []struct {
		a, b Location
		want Duration
	}{
		{r0, r0b, topo.IntraRack},
		{r0, r1, topo.IntraDC},
		{r0, far, topo.CrossDC},
		{far, r0, topo.CrossDC},
		// Rackless locations in the same DC are intra-DC, never
		// intra-rack: "" == "" must not read as rack equality.
		{Location{DC: "dc0"}, Location{DC: "dc0"}, topo.IntraDC},
	}
	for i, c := range cases {
		if got := topo.classFor(c.a, c.b); got != c.want {
			t.Errorf("case %d: classFor(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

// TestTopologyLatencyAppliesToSend: located endpoints get the
// class-derived latency; unlocated endpoints keep the base latency.
func TestTopologyLatencyAppliesToSend(t *testing.T) {
	k := NewKernel(1)
	n := NewNetwork(k, Millisecond, 0)
	var gotAt []Duration
	sink := HandlerFunc(func(m *Message) { gotAt = append(gotAt, Duration(k.Now())) })
	for _, id := range []NodeID{"a", "b", "c", "u"} {
		n.Register(id, sink)
	}
	n.SetTopologyLatency(TopologyLatency{IntraRack: 250 * Microsecond, IntraDC: Millisecond, CrossDC: 5 * Millisecond})
	n.SetLocation("a", Location{Rack: "r0", Zone: "z0", DC: "dc0"})
	n.SetLocation("b", Location{Rack: "r0", Zone: "z0", DC: "dc0"})
	n.SetLocation("c", Location{Rack: "r9", Zone: "z0", DC: "dc1"})
	// "u" is unlocated.

	n.Send("a", "b", "x", 1) // intra-rack: 250µs
	n.Send("a", "c", "x", 2) // cross-DC: 5ms
	n.Send("a", "u", "x", 3) // unlocated peer: base 1ms
	k.RunFor(10 * Millisecond)
	want := []Duration{250 * Microsecond, Millisecond, 5 * Millisecond}
	if len(gotAt) != 3 {
		t.Fatalf("delivered %d messages, want 3", len(gotAt))
	}
	// Deliveries are in time order: intra-rack, base, cross-DC.
	for i, w := range want {
		if gotAt[i] != w {
			t.Errorf("delivery %d at %v, want %v", i, gotAt[i], w)
		}
	}
}

// TestTopologyLatencyZeroRNGDraws: topology-derived latencies are pure
// lookups. Healthy traffic between located nodes must not consume kernel
// RNG, or enabling a topology would perturb every unrelated RNG stream
// and break byte-stable replay against flat-world campaigns.
func TestTopologyLatencyZeroRNGDraws(t *testing.T) {
	k := NewKernel(7)
	n := NewNetwork(k, Millisecond, 0)
	sink := HandlerFunc(func(m *Message) {})
	n.Register("a", sink)
	n.Register("b", sink)
	n.SetTopologyLatency(TopologyLatency{IntraRack: 250 * Microsecond, IntraDC: Millisecond, CrossDC: 5 * Millisecond})
	n.SetLocation("a", Location{Rack: "r0", DC: "dc0"})
	n.SetLocation("b", Location{Rack: "r3", DC: "dc1"})
	for i := 0; i < 500; i++ {
		n.Send("a", "b", "x", i)
		n.Send("b", "a", "x", i)
	}
	k.RunFor(100 * Millisecond)
	if got := k.RNGDraws(); got != 0 {
		t.Fatalf("healthy topology links drew %d RNG values; latency classes must be draw-free", got)
	}
}

// TestTopologySnapshotRoundTrip: locations and the latency ladder
// survive a network snapshot/restore, so forked executions keep serving
// topology latencies.
func TestTopologySnapshotRoundTrip(t *testing.T) {
	k := NewKernel(1)
	n := NewNetwork(k, Millisecond, 0)
	sink := HandlerFunc(func(m *Message) {})
	n.Register("a", sink)
	n.Register("b", sink)
	topo := TopologyLatency{IntraRack: 250 * Microsecond, IntraDC: Millisecond, CrossDC: 5 * Millisecond}
	n.SetTopologyLatency(topo)
	n.SetLocation("a", Location{Rack: "r0", Zone: "z0", DC: "dc0"})
	n.SetLocation("b", Location{Rack: "r1", Zone: "z1", DC: "dc1"})
	snap := n.Snapshot()

	k2 := NewKernel(1)
	n2 := NewNetwork(k2, Millisecond, 0)
	n2.Register("a", sink)
	n2.Register("b", sink)
	n2.RestoreRouting(snap)
	if n2.Topology() != topo {
		t.Fatalf("restored topology = %+v, want %+v", n2.Topology(), topo)
	}
	if loc := n2.LocationOf("b"); loc != (Location{Rack: "r1", Zone: "z1", DC: "dc1"}) {
		t.Fatalf("restored location of b = %+v", loc)
	}
	if got := n2.baseLatency("a", "b"); got != topo.CrossDC {
		t.Fatalf("restored baseLatency(a,b) = %v, want %v", got, topo.CrossDC)
	}
}
