package kubelet

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Snapshot captures a kubelet (and the host it manages) at a checkpoint.
// Container values are plain structs, so the Running map is deep-copied;
// the informer cache inside Conn shares object pointers copy-on-write (see
// client.InformerSnapshot).
type Snapshot struct {
	Cfg        Config
	Running    map[string]Container
	UIDCounter int

	Conn        *client.ConnSnapshot
	HasInformer bool
	InformerSub uint64

	Down             bool
	Epoch            uint64
	APIIdx           int
	RestartPending   bool
	SafeSyncInFlight bool
	MinTrustRev      int64

	Starts int
	Stops  int
}

// Snapshot captures the kubelet's state. It fails (ok=false) when the
// kubelet's connection has an RPC call in flight — that includes the
// SafeRestartSync quorum list, whose continuation closure cannot be
// reconstructed.
func (k *Kubelet) Snapshot() (*Snapshot, bool) {
	cs, ok := k.conn.Snapshot()
	if !ok {
		return nil, false
	}
	snap := &Snapshot{
		Cfg:              k.cfg,
		Running:          make(map[string]Container, len(k.host.running)),
		UIDCounter:       k.uids.Counter(),
		Conn:             cs,
		Down:             k.down,
		Epoch:            k.epoch,
		APIIdx:           k.apiIdx,
		RestartPending:   k.restartPending,
		SafeSyncInFlight: k.safeSyncInFlight,
		MinTrustRev:      k.minTrustRev,
		Starts:           k.Starts,
		Stops:            k.Stops,
	}
	for name, c := range k.host.running {
		snap.Running[name] = c
	}
	if k.informer != nil {
		snap.HasInformer = true
		snap.InformerSub = k.informer.SubID()
	}
	return snap, true
}

// Restore reconstructs a kubelet (with a fresh Host carrying the captured
// containers) inside world w. No timers are armed — pending kernel events
// are re-installed by the restore orchestration via Rearm — and the
// informer's event handler is re-attached without replaying the cache.
func Restore(w *sim.World, snap *Snapshot) *Kubelet {
	host := NewHost(snap.Cfg.NodeName)
	for name, c := range snap.Running {
		host.running[name] = c
	}
	k := &Kubelet{
		id:               NodeID(snap.Cfg.NodeName),
		world:            w,
		cfg:              snap.Cfg,
		host:             host,
		uids:             cluster.NewUIDGen("kubelet-" + snap.Cfg.NodeName),
		down:             snap.Down,
		epoch:            snap.Epoch,
		apiIdx:           snap.APIIdx,
		restartPending:   snap.RestartPending,
		safeSyncInFlight: snap.SafeSyncInFlight,
		minTrustRev:      snap.MinTrustRev,
		Starts:           snap.Starts,
		Stops:            snap.Stops,
	}
	k.uids.SetCounter(snap.UIDCounter)
	w.Network().Register(k.id, k)
	w.AddProcess(k)
	k.conn = client.RestoreConn(w, snap.Conn)
	if snap.HasInformer {
		inf, ok := k.conn.Informer(snap.InformerSub)
		if !ok {
			panic(fmt.Sprintf("kubelet: restore: informer sub %d missing from conn snapshot", snap.InformerSub))
		}
		// The informer is non-nil in the snapshot, so no crash happened
		// since the boot that created it: the handler's epoch is the
		// captured epoch.
		epoch := snap.Epoch
		inf.RestoreHandler(client.HandlerFuncs{
			AddFunc:    func(*cluster.Object) { k.scheduleSyncSoon(epoch) },
			UpdateFunc: func(_, _ *cluster.Object) { k.scheduleSyncSoon(epoch) },
			DeleteFunc: func(*cluster.Object) { k.scheduleSyncSoon(epoch) },
		})
		k.informer = inf
	}
	return k
}

// Rearm returns the callback for a pending kernel event owned by this
// kubelet, identified by its snapshot tag. Informer-owned tags are routed
// through the connection.
func (k *Kubelet) Rearm(tag sim.EventTag) (func(), error) {
	switch tag.Kind {
	case "heartbeat":
		epoch := tag.Epoch
		return func() { k.heartbeatFire(epoch) }, nil
	case "sync":
		epoch := tag.Epoch
		return func() { k.syncFire(epoch) }, nil
	case "syncsoon":
		epoch := tag.Epoch
		return func() { k.syncSoonFire(epoch) }, nil
	case "inf-liveness", "inf-relist":
		return k.conn.RearmInformer(tag)
	default:
		return nil, fmt.Errorf("kubelet: unknown pending event kind %q for %s", tag.Kind, k.id)
	}
}
