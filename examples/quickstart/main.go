// Quickstart: build a simulated Kubernetes-like infrastructure (Figure 1
// of the paper), watch two apiservers serve the same cluster state, then
// freeze one of them and observe its view (H', S') fall behind the ground
// truth (H, S) — the staleness that every partial-history bug grows from.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/infra"
	"repro/internal/sim"
)

func main() {
	fmt.Println("== partial histories quickstart ==")
	fmt.Println()

	// A store ("etcd"), two apiservers with watch caches, two worker nodes
	// with kubelets, a scheduler, and a volume controller.
	opts := infra.DefaultOptions()
	c := infra.New(opts)
	fmt.Printf("built cluster: store=%s apiservers=%d nodes=%v\n",
		infra.StoreID, opts.NumAPIServers, opts.Nodes)

	// Create a pod through the admin client; the scheduler binds it and a
	// kubelet runs it.
	c.Admin.CreatePod("web-0", "", "v1", nil)
	c.RunFor(2 * sim.Second)
	pods := c.GroundTruth(cluster.KindPod)
	fmt.Printf("created pod web-0 -> scheduled to %q, phase %s\n",
		pods[0].Pod.NodeName, pods[0].Pod.Phase)

	// Both apiservers agree with the ground truth.
	printViews(c)

	// Now freeze api-2: partition it from the store. Its watch cache stops
	// advancing while the world moves on.
	fmt.Println("\n-- partitioning api-2 from the store, then creating 3 more pods --")
	c.World.Network().Partition(infra.APIServerID(1), infra.StoreID)
	for i := 1; i <= 3; i++ {
		c.Admin.CreatePod(fmt.Sprintf("web-%d", i), "", "v1", nil)
	}
	c.RunFor(2 * sim.Second)
	printViews(c)

	fmt.Println("\napi-2 now serves a partial history: any component reading through")
	fmt.Println("it makes decisions against a past version of the cluster.")

	// Heal and converge.
	fmt.Println("\n-- healing the partition --")
	c.World.Network().Heal(infra.APIServerID(1), infra.StoreID)
	c.RunFor(2 * sim.Second)
	printViews(c)

	if v := c.Violations(); len(v) == 0 {
		fmt.Println("\nno invariant was violated this time — staleness alone is not a bug;")
		fmt.Println("see examples/rollingupgrade for how it becomes one.")
	} else {
		for _, violation := range v {
			fmt.Printf("\nVIOLATION: %s\n", violation)
		}
	}
}

func printViews(c *infra.Cluster) {
	truth := c.Store.Store()
	fmt.Printf("ground truth: revision=%d pods=%d\n", truth.Revision(), len(c.GroundTruth(cluster.KindPod)))
	for i, api := range c.APIs {
		lag := truth.Revision() - api.CachedRevision()
		fmt.Printf("  api-%d: cached revision=%d (lag %d), cached objects=%d\n",
			i+1, api.CachedRevision(), lag, api.CacheLen())
	}
}
