// Ablation benchmarks for the design choices DESIGN.md calls out: which
// perturbation family finds which bug (the §4.2 taxonomy pulled apart),
// and what the hardened ("fixed") configuration costs in steady state.
package partialhist

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/operators/cassandra"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// A1 — plan-family contribution: gap-only vs time-travel-only vs
// staleness-only planners against the five bugs.
// ---------------------------------------------------------------------

func familyPlanner(family string) *core.Planner {
	p := core.NewPlanner()
	p.DisableGaps = true
	p.DisableTimeTravel = true
	p.DisableStaleness = true
	switch family {
	case "gap":
		p.DisableGaps = false
	case "timetravel":
		p.DisableTimeTravel = false
	case "staleness":
		p.DisableStaleness = false
	}
	return p
}

func BenchmarkA1_PlanFamilyContribution(b *testing.B) {
	families := []string{"gap", "timetravel", "staleness"}
	targets := workload.AllTargets()
	type cell struct {
		detected bool
		execs    int
	}
	var grid [][]cell
	for iter := 0; iter < b.N; iter++ {
		grid = make([][]cell, len(targets))
		for ti := range grid {
			grid[ti] = make([]cell, len(families))
		}
		type job struct{ ti, fi int }
		jobs := make(chan job)
		var wg sync.WaitGroup
		for wkr := 0; wkr < 4; wkr++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					res := core.RunCampaign(targets[j.ti], familyPlanner(families[j.fi]), 400)
					grid[j.ti][j.fi] = cell{detected: res.Detected, execs: res.Executions}
				}
			}()
		}
		for ti := range targets {
			for fi := range families {
				jobs <- job{ti, fi}
			}
		}
		close(jobs)
		wg.Wait()
	}

	found := 0
	for ti := range targets {
		for fi := range families {
			if grid[ti][fi].detected {
				found++
			}
		}
	}
	b.ReportMetric(float64(found), "family-detections")
	printOnce("A1", func() {
		fmt.Printf("\nA1 (ablation) — which §4.2 perturbation family finds which bug\n")
		fmt.Printf("  %-13s %-18s %-18s %s\n", "bug", "gap-only", "timetravel-only", "staleness-only")
		for ti, t := range targets {
			fmt.Printf("  %-13s", t.Name)
			for fi := range families {
				c := grid[ti][fi]
				if c.detected {
					fmt.Printf(" %-18s", fmt.Sprintf("YES (%d)", c.execs))
				} else {
					fmt.Printf(" %-18s", fmt.Sprintf("no (%d)", c.execs))
				}
			}
			fmt.Println()
		}
		fmt.Printf("  (each bug class is caught by 'its' family — the taxonomy carves the\n")
		fmt.Printf("   plan space at the joints; no single family covers everything)\n")
	})
}

// ---------------------------------------------------------------------
// A2 — cost of the hardened configuration: the fixed operator's defensive
// periodic relists buy gap tolerance with extra list traffic.
// ---------------------------------------------------------------------

type a2Row struct {
	variant  string
	messages uint64
	relists  int
	writes   uint64
}

func runA2(fixes cassandra.Fixes) a2Row {
	opts := infra.DefaultOptions()
	opts.Nodes = []string{"k1", "k2", "k3"}
	opts.EnableVolumeController = false
	opts.Cassandra = &infra.CassandraOptions{Name: "cass", Fixes: fixes}
	c := infra.New(opts)
	c.RunFor(sim.Second)
	c.Admin.CreateCassandra("cass", 3, nil)
	c.RunFor(4 * sim.Second)

	// Steady state: measure 10 virtual seconds of idle-cluster traffic.
	before := c.World.Network().Stats()
	c.RunFor(10 * sim.Second)
	after := c.World.Network().Stats()

	variant := "stock operator"
	if fixes.DefensiveRelist {
		variant = "hardened operator"
	}
	return a2Row{
		variant:  variant,
		messages: after.Sent - before.Sent,
		writes:   after.Delivered - before.Delivered,
	}
}

func BenchmarkA2_HardenedConfigCost(b *testing.B) {
	var stock, hardened a2Row
	for i := 0; i < b.N; i++ {
		stock = runA2(cassandra.Fixes{})
		hardened = runA2(cassandra.AllFixed())
	}
	overhead := float64(hardened.messages) / float64(stock.messages)
	b.ReportMetric(overhead, "hardened/stock-messages")
	printOnce("A2", func() {
		fmt.Printf("\nA2 (ablation) — steady-state cost of the hardened operator config\n")
		fmt.Printf("  (10 virtual seconds of idle 3-member cluster)\n")
		fmt.Printf("  %-20s %-16s %s\n", "variant", "messages sent", "messages delivered")
		for _, r := range []a2Row{stock, hardened} {
			fmt.Printf("  %-20s %-16d %d\n", r.variant, r.messages, r.writes)
		}
		fmt.Printf("  message overhead: %.2fx — the price of bounding how long a lost\n", overhead)
		fmt.Printf("  notification can skew the operator's view (defensive relists)\n")
	})
}
