//go:build race

package campaign

// raceDetector: see scale_race_off_test.go.
const raceDetector = true
