// Plan pruning and equivalence-class dedup: the half of the learning
// phase that turns a mined Model into a cheaper campaign schedule.
//
// For every plan the planner emitted we compute its *consumed surface* —
// the set of learned consumptions (model indices) the perturbation can
// plausibly intersect. The computation is conservative in both
// directions: windows are widened by the reaction window (learn.Model
// .scan), and any plan family whose effect we cannot bound (compaction
// pressure, unknown plan types) reports an unknown surface and is always
// kept. Only a plan with a *known, empty* surface is pruned, and only
// suppression-style plans (gap drops/blackouts) participate in dedup —
// a suppressed consumption set fully characterises their effect, whereas
// timing-sensitive families (time-travel, staleness, crashes, links)
// behave differently per timing variant even with identical surfaces, so
// deduping them was measured to push detections out of the kept set.
package learn

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
)

// Action is the scheduling decision the learning phase took for one plan.
type Action string

const (
	// Keep schedules the plan in the kept (front) set.
	Keep Action = "keep"
	// Prune defers the plan: its known consumed surface is empty, so it
	// provably cannot change anything the victim consumed.
	Prune Action = "prune"
	// Dedupe defers the plan: another kept plan already covers the same
	// projected observable effect (equal equivalence class).
	Dedupe Action = "dedupe"
)

// Decision records why one plan was kept, pruned, or deduped — the
// telemetry unit behind plan_pruned NDJSON events.
type Decision struct {
	// Index is the plan's position in the planner's original output — the
	// coordinate campaign reports use.
	Index  int
	Plan   core.Plan
	Action Action
	// Reason is a one-line human-readable justification.
	Reason string
	// Class is the plan's equivalence class (family key + surface hash);
	// empty when the surface is unknown.
	Class string
	// Surface is the number of learned consumptions the plan's
	// perturbation can intersect (-1 = unknown, always kept).
	Surface int
	// Representative is the original index of the kept plan covering this
	// one (Dedupe only).
	Representative int
}

// ScheduledPlan is one plan with its learning metadata threaded through.
type ScheduledPlan struct {
	Plan core.Plan
	// Index is the plan's position in the planner's original output.
	Index int
	// Score is the learned impact score (meaningful after Rank).
	Score float64
}

// Stats summarises one schedule build.
type Stats struct {
	Planned int // plans the planner emitted
	Kept    int // plans scheduled in the front set
	Pruned  int // plans deferred with empty known surface
	Deduped int // plans deferred behind an equivalent representative
}

// Schedule is the learning phase's output: a kept front set (optionally
// impact-ranked) and a deferred tail. Soundness comes from deferral, not
// deletion — the campaign engine executes the tail when the kept set
// detects nothing (or under keep-going), so a schedule can never detect
// strictly less than the raw plan list.
type Schedule struct {
	Kept      []ScheduledPlan
	Deferred  []ScheduledPlan
	Decisions []Decision
	Stats     Stats
}

// Options configures BuildSchedule.
type Options struct {
	// Prune enables empty-surface pruning and equivalence-class dedup.
	Prune bool
	// Rank enables impact ranking of the kept set.
	Rank bool
	// Affinity maps plan classes (ClassOf) to past detection counts —
	// bucket signature affinity mined from earlier seeds or campaigns.
	Affinity map[string]int
}

// BuildSchedule applies the learned model to a planner's output. It is a
// pure function of (model, plans, opts): byte-identical across reruns and
// worker counts. Plan order within each of Kept and Deferred preserves
// planner order except for ranking, which is a stable sort.
func BuildSchedule(m *Model, t core.Target, plans []core.Plan, opts Options) *Schedule {
	s := &Schedule{Stats: Stats{Planned: len(plans)}}
	repr := make(map[string]int) // equivalence class -> original index of representative

	for i, p := range plans {
		known, surface := m.Surface(p)
		d := Decision{Index: i, Plan: p, Surface: -1, Representative: -1}
		if !known {
			d.Reason = "surface unknown: kept (conservative)"
			s.keep(p, i, d)
			continue
		}
		d.Surface = len(surface)
		d.Class = classKey(p, surface)
		if !opts.Prune {
			d.Reason = "pruning disabled"
			s.keep(p, i, d)
			continue
		}
		if len(surface) == 0 {
			d.Action = Prune
			d.Reason = "no consumed delivery intersects the perturbation"
			s.Decisions = append(s.Decisions, d)
			s.Deferred = append(s.Deferred, ScheduledPlan{Plan: p, Index: i})
			s.Stats.Pruned++
			continue
		}
		if dedupable(p) {
			if prev, ok := repr[d.Class]; ok {
				d.Action = Dedupe
				d.Representative = prev
				d.Reason = fmt.Sprintf("same projected effect as plan #%d", prev)
				s.Decisions = append(s.Decisions, d)
				s.Deferred = append(s.Deferred, ScheduledPlan{Plan: p, Index: i})
				s.Stats.Deduped++
				continue
			}
			repr[d.Class] = i
			d.Reason = fmt.Sprintf("representative of class (surface %d)", len(surface))
			s.keep(p, i, d)
			continue
		}
		d.Reason = fmt.Sprintf("timing-sensitive family: kept (surface %d)", len(surface))
		s.keep(p, i, d)
	}

	if opts.Rank {
		m.rank(s, opts)
	}
	return s
}

// dedupable reports whether a plan family's observable effect is fully
// characterised by its suppressed consumption set. True only for gap
// plans (one-shot drops and blackouts): suppressing the same consumed
// deliveries for the same victim is the same experiment regardless of
// the knob values that produced it. Time-travel, staleness, crash and
// link plans interleave with execution timing — two staleness windows
// over the same consumed set can still unfreeze at different points
// relative to the victim's reaction, so every timing variant stays.
func dedupable(p core.Plan) bool {
	_, ok := p.(core.GapPlan)
	return ok
}

func (s *Schedule) keep(p core.Plan, i int, d Decision) {
	d.Action = Keep
	s.Decisions = append(s.Decisions, d)
	s.Kept = append(s.Kept, ScheduledPlan{Plan: p, Index: i})
	s.Stats.Kept++
}

// classKey is the equivalence-class identity: the plan's coverage class
// (family + victim + knobs, timing abstracted away) folded with the hash
// of its sorted consumed-surface indices. Two plans share a class exactly
// when they suppress/delay the same consumed delivery set for the same
// victim in the same way.
func classKey(p core.Plan, surface []int) string {
	h := fnv.New64a()
	var buf [8]byte
	sorted := append([]int(nil), surface...)
	sort.Ints(sorted)
	for _, idx := range sorted {
		binary.LittleEndian.PutUint64(buf[:], uint64(idx))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%s|%016x", ClassOf(p), h.Sum64())
}

// Surface computes a plan's consumed surface: the indices (into the
// model's global consumed list) of learned consumptions the perturbation
// can plausibly intersect. known == false means the family's effect
// cannot be bounded from the trace (compaction pressure, plans from
// other strategies) and the caller must keep the plan.
func (m *Model) Surface(p core.Plan) (known bool, surface []int) {
	switch q := p.(type) {
	case core.GapPlan:
		if q.Occurrence > 0 {
			return true, m.occurrenceSurface(q)
		}
		// Blackout: consumed deliveries of the object to the victim inside
		// the window (widened by the reaction window — scan's slack — so a
		// delivery consumed just past the edge still counts).
		return true, m.scan(q.From, q.Until, func(c Consumption) bool {
			d := c.Delivery
			return d.To == q.Victim && d.Kind == q.Kind && d.Name == q.Name &&
				(q.Type == "" || d.EventType == q.Type)
		})
	case core.TimeTravelPlan:
		// The restarted component re-lists from a view frozen at FreezeAt:
		// every delivery it consumed after the freeze is unwound. Bound the
		// window at the heal (or the end when it never heals).
		return true, m.consumedTo(q.Component, q.FreezeAt, q.HealAt)
	case core.StalenessPlan:
		// Freezing an apiserver stalls everything that flowed through it.
		return true, m.consumedVia(q.Victim, q.From, q.Until)
	case core.CrashPlan:
		// A crash loses in-memory state; deliveries consumed from the crash
		// until the end shape the rebuilt view.
		return true, m.consumedTo(q.Component, q.At, 0)
	case core.PartitionPlan:
		return true, m.consumedOnLink(q.A, q.B, q.From, q.Until)
	case core.SlowLinkPlan:
		return true, m.consumedOnLink(q.A, q.B, q.From, q.Until)
	case core.FlakyLinkPlan:
		return true, m.consumedOnLink(q.A, q.B, q.From, q.Until)
	case core.SequencePlan:
		set := map[int]bool{}
		for _, sub := range q.Plans {
			k, s := m.Surface(sub)
			if !k {
				return false, nil
			}
			for _, idx := range s {
				set[idx] = true
			}
		}
		out := make([]int, 0, len(set))
		for idx := range set {
			out = append(out, idx)
		}
		sort.Ints(out)
		return true, out
	case core.CompactionPressurePlan:
		// Compaction changes the store's revision floor globally; which
		// watchers hit ErrCompacted depends on resumption timing we cannot
		// bound from the reference trace. Keep-if-unsure.
		return false, nil
	default:
		return false, nil
	}
}

// occurrenceSurface resolves a one-shot drop to the single delivery it
// targets. The surface is that delivery's consumption (if consumed) —
// empty when the component observed but never consumed it, which is
// precisely the waste the learning phase exists to skip.
func (m *Model) occurrenceSurface(q core.GapPlan) []int {
	p := m.Profiles[q.Victim]
	if p == nil {
		return nil
	}
	for _, c := range p.Consumed {
		d := c.Delivery
		if d.Kind == q.Kind && d.Name == q.Name && d.EventType == q.Type && d.Occurrence == q.Occurrence {
			return []int{c.Index}
		}
	}
	return nil
}
