package controllers_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/controllers"
	"repro/internal/infra"
	"repro/internal/sim"
)

func appCluster(t *testing.T) *infra.Cluster {
	t.Helper()
	opts := infra.DefaultOptions()
	opts.EnableVolumeController = false
	opts.EnableAppController = true
	c := infra.New(opts)
	c.RunFor(500 * sim.Millisecond)
	return c
}

func appPods(c *infra.Cluster, app string) []*cluster.Object {
	var out []*cluster.Object
	for _, p := range c.GroundTruth(cluster.KindPod) {
		if p.Pod != nil && p.Pod.App == app && !p.Terminating() {
			out = append(out, p)
		}
	}
	return out
}

func TestAppSetScaleUpSchedulesAndRuns(t *testing.T) {
	c := appCluster(t)
	c.Admin.CreateAppSet("web", 3, "v1", nil)
	c.RunFor(3 * sim.Second)

	pods := appPods(c, "web")
	if len(pods) != 3 {
		t.Fatalf("pods = %d, want 3", len(pods))
	}
	running := 0
	for _, node := range c.Opts.Nodes {
		running += len(c.Hosts[node].Running())
	}
	if running != 3 {
		t.Fatalf("running containers = %d", running)
	}
	apps := c.GroundTruth(cluster.KindAppSet)
	if len(apps) != 1 || apps[0].AppSet.ReadyReplicas != 3 {
		t.Fatalf("status = %+v", apps[0].AppSet)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestAppSetScaleDown(t *testing.T) {
	c := appCluster(t)
	c.Admin.CreateAppSet("web", 3, "v1", nil)
	c.RunFor(3 * sim.Second)
	c.Admin.UpdateAppSet("web", 1, "v1", nil)
	c.RunFor(3 * sim.Second)

	pods := appPods(c, "web")
	if len(pods) != 1 || pods[0].Meta.Name != "web-0" {
		names := []string{}
		for _, p := range pods {
			names = append(names, p.Meta.Name)
		}
		t.Fatalf("pods after scale-down = %v", names)
	}
	running := 0
	for _, node := range c.Opts.Nodes {
		running += len(c.Hosts[node].Running())
	}
	if running != 1 {
		t.Fatalf("containers after scale-down = %d", running)
	}
}

func TestAppSetRollingUpgrade(t *testing.T) {
	c := appCluster(t)
	c.Admin.CreateAppSet("web", 3, "v1", nil)
	c.RunFor(3 * sim.Second)
	c.Admin.UpdateAppSet("web", 3, "v2", nil)
	c.RunFor(6 * sim.Second)

	pods := appPods(c, "web")
	if len(pods) != 3 {
		t.Fatalf("pods after rollout = %d", len(pods))
	}
	for _, p := range pods {
		if p.Pod.Image != "v2" {
			t.Fatalf("pod %s still on %s", p.Meta.Name, p.Pod.Image)
		}
	}
	// Containers on hosts run the new image too.
	for _, node := range c.Opts.Nodes {
		for _, ctr := range c.Hosts[node].Running() {
			if ctr.Image != "v2" {
				t.Fatalf("container %s on %s still runs %s", ctr.PodName, node, ctr.Image)
			}
		}
	}
	if c.App.Rollouts == 0 {
		t.Fatal("no rollout recorded")
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations during rollout: %v", v)
	}
}

func TestAppSetControllerCrashRestartConverges(t *testing.T) {
	c := appCluster(t)
	c.Admin.CreateAppSet("web", 2, "v1", nil)
	c.RunFor(2 * sim.Second)
	if err := c.World.Crash(controllers.AppSetControllerID); err != nil {
		t.Fatal(err)
	}
	c.Admin.UpdateAppSet("web", 4, "v1", nil)
	c.RunFor(sim.Second)
	if got := len(appPods(c, "web")); got != 2 {
		t.Fatalf("pods changed while controller down: %d", got)
	}
	if err := c.World.Restart(controllers.AppSetControllerID); err != nil {
		t.Fatal(err)
	}
	c.RunFor(3 * sim.Second)
	if got := len(appPods(c, "web")); got != 4 {
		t.Fatalf("restarted controller did not converge: %d pods", got)
	}
}

func TestAppSetTeardown(t *testing.T) {
	c := appCluster(t)
	c.Admin.CreateAppSet("web", 2, "v1", nil)
	c.RunFor(2 * sim.Second)
	// Mark the AppSet deleted: the controller tears its pods down.
	c.Admin.Conn().Get(cluster.KindAppSet, "web", true, func(app *cluster.Object, found bool, err error) {
		if err != nil || !found {
			t.Errorf("get appset: %v %v", err, found)
			return
		}
		upd := app.Clone()
		upd.Meta.DeletionTimestamp = int64(c.World.Now())
		c.Admin.Conn().Update(upd, nil)
	})
	c.RunFor(3 * sim.Second)
	if got := len(appPods(c, "web")); got != 0 {
		t.Fatalf("pods after teardown = %d", got)
	}
}
