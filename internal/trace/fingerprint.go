package trace

import (
	"hash/fnv"

	"repro/internal/sim"
)

// This file derives compact behavioural fingerprints from a recorded
// execution. The campaign engine (internal/campaign) uses them as coverage
// signatures: two executions that delivered the same event sequences to
// the same components and committed the same ground-truth history are, for
// bug-finding purposes, the same execution — running a third plan that
// lands in the same class is unlikely to flip any component's decision.

// ComponentHash returns an order-sensitive FNV-1a hash of the sequence of
// watch deliveries one component observed: kind, object name, event type,
// and the terminating marker, in delivery order. It deliberately excludes
// revisions and timestamps so that two runs differing only in incidental
// timing (but observing the same decision-relevant sequence) coincide.
func (t *Trace) ComponentHash(id sim.NodeID) uint64 {
	h := fnv.New64a()
	for _, d := range t.Deliveries {
		if d.To != id {
			continue
		}
		writeDelivery(h, d)
	}
	return h.Sum64()
}

// StateHash folds every component's delivery sequence plus the committed
// ground-truth event sequence into one 64-bit fingerprint. Components are
// visited in sorted order so the hash is independent of map iteration and
// of the interleaving between components.
func (t *Trace) StateHash() uint64 {
	h := fnv.New64a()
	for _, id := range t.Components() {
		h.Write([]byte("@"))
		h.Write([]byte(id))
		for _, d := range t.Deliveries {
			if d.To != id {
				continue
			}
			writeDelivery(h, d)
		}
	}
	h.Write([]byte("#commits"))
	for _, e := range t.Commits {
		h.Write([]byte{byte(e.Type)})
		h.Write([]byte(e.Key))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// StateHashUpTo is StateHash restricted to the execution prefix at or
// before virtual time upto: deliveries by arrival time, commits by commit
// time. Two schedules whose prefixes hash alike have delivered the same
// decision-relevant sequences to every component and committed the same
// ground truth up to that instant (timing differences inside the prefix
// are deliberately abstracted away, exactly as in StateHash). Note the
// systematic explorer keys its visited-state set on the FULL-run
// StateHash, not a prefix: a delay can push behaviour past any clipping
// point, so prefix equality alone does not imply suffix equality.
func (t *Trace) StateHashUpTo(upto sim.Time) uint64 {
	h := fnv.New64a()
	for _, id := range t.Components() {
		h.Write([]byte("@"))
		h.Write([]byte(id))
		for _, d := range t.Deliveries {
			if d.To != id || d.Time > upto {
				continue
			}
			writeDelivery(h, d)
		}
	}
	h.Write([]byte("#commits"))
	for _, e := range t.Commits {
		if sim.Time(e.Time) > upto {
			continue
		}
		h.Write([]byte{byte(e.Type)})
		h.Write([]byte(e.Key))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// ComponentHashes returns the per-component delivery hashes, keyed by
// component, for diagnostics and finer-grained coverage accounting.
func (t *Trace) ComponentHashes() map[sim.NodeID]uint64 {
	out := make(map[sim.NodeID]uint64)
	for _, id := range t.Components() {
		out[id] = t.ComponentHash(id)
	}
	return out
}

func writeDelivery(h interface{ Write([]byte) (int, error) }, d Delivery) {
	h.Write([]byte(d.Kind))
	h.Write([]byte{'/'})
	h.Write([]byte(d.Name))
	h.Write([]byte{'/'})
	h.Write([]byte(d.EventType))
	if d.Terminating {
		h.Write([]byte{'!'})
	}
	h.Write([]byte{0})
}
