//go:build race

package farm

// raceSlowdown: see race_off_test.go.
const raceSlowdown = 15
