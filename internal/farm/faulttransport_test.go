package farm

import (
	"bufio"
	"io"
	"strings"
	"sync"
	"testing"
)

// scriptedTransport is a fake worker that emits a fixed frame sequence
// and records whether it was killed — the minimal inner transport for
// exercising FaultTransport's relay in isolation.
type scriptedTransport struct {
	lines []string

	mu     sync.Mutex
	killed bool
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

func (s *scriptedTransport) Start() (io.WriteCloser, io.Reader, error) {
	return nopWriteCloser{io.Discard}, strings.NewReader(strings.Join(s.lines, "\n") + "\n"), nil
}

func (s *scriptedTransport) Kill() {
	s.mu.Lock()
	s.killed = true
	s.mu.Unlock()
}

func (s *scriptedTransport) Wait() error { return nil }

func (s *scriptedTransport) wasKilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

func readAll(t *testing.T, r io.Reader) []string {
	t.Helper()
	var out []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading faulted stream: %v", err)
	}
	return out
}

func TestParseChaos(t *testing.T) {
	faults, err := ParseChaos("kill@4, stall@9 ,torn@6,-")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: FaultKill, Frame: 4},
		{Kind: FaultStall, Frame: 9},
		{Kind: FaultTorn, Frame: 6},
		{},
	}
	if len(faults) != len(want) {
		t.Fatalf("got %d faults, want %d", len(faults), len(want))
	}
	for i := range want {
		if faults[i] != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, faults[i], want[i])
		}
	}

	if faults, err := ParseChaos("  "); err != nil || faults != nil {
		t.Errorf("blank script: got %v, %v", faults, err)
	}
	for _, bad := range []string{"kill", "explode@3", "kill@zero", "kill@0", "kill@-2"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}

func TestFaultKill(t *testing.T) {
	inner := &scriptedTransport{lines: []string{`{"n":1}`, `{"n":2}`, `{"n":3}`, `{"n":4}`}}
	ft := &FaultTransport{Inner: inner, Fault: Fault{Kind: FaultKill, Frame: 3}}
	_, out, err := ft.Start()
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, out)
	if len(got) != 2 || got[0] != `{"n":1}` || got[1] != `{"n":2}` {
		t.Errorf("kill@3 forwarded %v, want frames 1-2 then EOF", got)
	}
	if !inner.wasKilled() {
		t.Error("kill fault did not kill the inner transport")
	}
}

func TestFaultStall(t *testing.T) {
	inner := &scriptedTransport{lines: []string{`{"n":1}`, `{"n":2}`, `{"n":3}`}}
	ft := &FaultTransport{Inner: inner, Fault: Fault{Kind: FaultStall, Frame: 2}}
	_, out, err := ft.Start()
	if err != nil {
		t.Fatal(err)
	}
	// The stall swallows frame 2 onward; on a finite stream the relay
	// still propagates EOF when the worker side ends, so the read
	// terminates deterministically with only frame 1 delivered.
	got := readAll(t, out)
	if len(got) != 1 || got[0] != `{"n":1}` {
		t.Errorf("stall@2 forwarded %v, want just frame 1", got)
	}
	if inner.wasKilled() {
		t.Error("stall fault killed the worker; it should leave it wedged")
	}
}

func TestFaultTorn(t *testing.T) {
	inner := &scriptedTransport{lines: []string{`{"n":1}`, `{"type":"result","task_id":7}`, `{"n":3}`}}
	ft := &FaultTransport{Inner: inner, Fault: Fault{Kind: FaultTorn, Frame: 2}}
	_, out, err := ft.Start()
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	full := `{"type":"result","task_id":7}`
	want := `{"n":1}` + "\n" + full[:len(full)/2]
	if string(data) != want {
		t.Errorf("torn@2 stream = %q, want %q", data, want)
	}
	if !inner.wasKilled() {
		t.Error("torn fault did not kill the inner transport")
	}
}

func TestFaultTaskScoped(t *testing.T) {
	task := 2
	inner := &scriptedTransport{lines: []string{
		`{"type":"ready"}`,              // no task_id: not counted
		`{"type":"record","task_id":1}`, // other task: not counted
		`{"type":"record","task_id":2}`, // match 1 → fires
		`{"type":"result","task_id":2}`, // post-fault: drained, not forwarded
	}}
	ft := &FaultTransport{Inner: inner, Fault: Fault{Kind: FaultKill, Frame: 1, Task: &task}}
	_, out, err := ft.Start()
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, out)
	if len(got) != 2 || got[0] != `{"type":"ready"}` || got[1] != `{"type":"record","task_id":1}` {
		t.Errorf("task-scoped kill forwarded %v, want the two non-matching frames", got)
	}
	if !inner.wasKilled() {
		t.Error("task-scoped kill did not kill the inner transport")
	}
}

func TestFaultZeroKindPassthrough(t *testing.T) {
	inner := &scriptedTransport{lines: []string{`{"n":1}`, `{"n":2}`}}
	ft := &FaultTransport{Inner: inner}
	_, out, err := ft.Start()
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, out); len(got) != 2 {
		t.Errorf("zero-kind fault altered the stream: %v", got)
	}
	if inner.wasKilled() {
		t.Error("zero-kind fault killed the worker")
	}
}
