package infra

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// runScenario drives a fixed workload and returns a fingerprint of the
// resulting ground-truth history: (revision, type-ish key) pairs.
func runScenario(seed int64) []string {
	opts := DefaultOptions()
	opts.Seed = seed
	c := New(opts)
	c.Admin.CreatePod("a", "", "v1", nil)
	c.RunFor(sim.Second)
	c.Admin.CreatePod("b", "", "v1", nil)
	c.Admin.MarkPodDeleted("a", nil)
	c.RunFor(2 * sim.Second)

	var fp []string
	for _, e := range c.Store.Store().History().Events() {
		fp = append(fp, e.Key)
	}
	return fp
}

// TestClusterRunsAreDeterministic is the property the whole testing tool
// rests on (DESIGN.md §3): a run is a pure function of its inputs, so a
// plan that triggered a bug replays to the identical trace.
func TestClusterRunsAreDeterministic(t *testing.T) {
	a := runScenario(42)
	b := runScenario(42)
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("histories diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := runScenario(42)
	c := runScenario(43)
	// Same workload, different jitter: the committed keys may match but
	// some ordering or count difference is overwhelmingly likely. Weak
	// assertion: not byte-identical OR identical is allowed only if
	// lengths differ... accept either, but at least the run must complete.
	if len(a) == 0 || len(c) == 0 {
		t.Fatal("scenario produced no history")
	}
}

func TestAdminQuorumViewUnaffectedByStaleAPI(t *testing.T) {
	opts := DefaultOptions()
	opts.EnableScheduler = false
	opts.EnableVolumeController = false
	c := New(opts)
	c.RunFor(500 * sim.Millisecond)
	c.Admin.CreatePod("p1", "k1", "v1", nil)
	c.RunFor(500 * sim.Millisecond)

	// Freeze the admin's own apiserver from the store: quorum operations
	// must fail loudly rather than serve the stale cache.
	c.World.Network().Partition(APIServerID(0), StoreID)
	errs := 0
	c.Admin.MarkPodDeleted("p1", func(err error) {
		if err != nil {
			errs++
		}
	})
	c.RunFor(sim.Second)
	if errs != 1 {
		t.Fatalf("quorum write against cut-off apiserver: errs=%d, want explicit failure", errs)
	}
	// Ground truth unchanged.
	pods := c.GroundTruth(cluster.KindPod)
	if len(pods) != 1 || pods[0].Terminating() {
		t.Fatalf("pod state changed despite failed admin op: %+v", pods)
	}
}
