package campaign

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// The cluster-scale equivalence suite: the determinism guarantees the
// engine makes for the two-node seeded targets must survive 100-node
// topology worlds, where the serving-path indexes, the window-trim
// amortization, and topology-derived latencies are all load-bearing.

func scaleTarget() core.Target {
	return workload.ScaleRackDrainTarget(workload.Scale100)
}

func planner() core.Strategy { return core.NewPlanner() }

// TestScaleCampaignByteIdentity: at a 100-node target, an unguided
// campaign produces byte-identical canonicalized artifacts and telemetry
// at 1 and 4 workers, and with prefix-checkpoint forking on. (The CI
// scale-smoke step re-proves this end-to-end through the CLI; under the
// race detector this test alone would dominate the whole suite, so it is
// gated off there.)
func TestScaleCampaignByteIdentity(t *testing.T) {
	if raceDetector {
		t.Skip("race mode: covered by TestScaleTopologyChaosSoak and the CI scale-smoke step")
	}
	target := scaleTarget()
	cfg := Config{
		Workers:       1,
		Seeds:         []int64{1},
		MaxExecutions: 6,
		Collect:       true,
		KeepGoing:     true,
	}
	want := New(cfg).Run(target, planner())
	if want.Stats.FailedExecutions != 0 || want.Stats.HungExecutions != 0 {
		t.Fatalf("scale campaign had broken executions: %+v", want.Stats)
	}
	if want.Campaign.Executions == 0 {
		t.Fatal("scale campaign executed nothing; equivalence is vacuous")
	}
	cfgW := cfg
	cfgW.Workers = 4
	got := New(cfgW).Run(target, planner())
	assertEquivalent(t, want, got, cfg, cfgW)

	cfgSnap := cfgW
	cfgSnap.Snapshot = true
	snap := New(cfgSnap).Run(target, planner())
	assertEquivalent(t, got, snap, cfgW, cfgSnap)
	if snap.Stats.FailedExecutions != 0 || snap.Stats.HungExecutions != 0 {
		t.Fatalf("forked scale campaign had broken executions: %+v", snap.Stats)
	}
}

// TestScaleCampaignDetects pins that the 100-node rack-drain world still
// finds its seeded bug (a missed node-deletion livelocking the mass
// reschedule) within a small unguided budget — the same property the CI
// scale smoke asserts end-to-end.
func TestScaleCampaignDetects(t *testing.T) {
	if raceDetector {
		t.Skip("race mode: detection at scale is asserted by the CI scale-smoke step")
	}
	res := New(Config{Workers: 2, Seeds: []int64{1}, MaxExecutions: 10}).Run(scaleTarget(), planner())
	if !res.Detected {
		t.Fatalf("100-node rack-drain campaign found nothing in %d executions", res.Campaign.Executions)
	}
	if res.Stats.FailedExecutions != 0 || res.Stats.HungExecutions != 0 {
		t.Fatalf("campaign had broken executions: %+v", res.Stats)
	}
}

// TestScaleTopologyChaosSoak: gray-failure plans (flaky/slow links,
// compaction pressure) over a 100-node topology world, full replay vs
// prefix-checkpoint forking. Topology link latencies replace the flat
// base deterministically, so forks must restore the same latency ladder;
// degraded links draw RNG on top of it. This is the topology entry in
// the CI chaos-soak step and runs under -race there.
func TestScaleTopologyChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the 100-node soak is CI-scale work")
	}
	cfg := Config{
		Workers:       2,
		Seeds:         []int64{1},
		MaxExecutions: 4,
		Collect:       true,
		KeepGoing:     true,
	}
	off, on := runBoth(t, scaleTarget(), grayPlanner, cfg)
	cfgOff, cfgOn := cfg, cfg
	cfgOff.Snapshot, cfgOn.Snapshot = false, true
	assertEquivalent(t, off, on, cfgOff, cfgOn)
	if on.Stats.FailedExecutions != 0 || on.Stats.HungExecutions != 0 {
		t.Fatalf("topology gray soak had broken executions under forking: %+v", on.Stats)
	}
	if off.Campaign.Executions == 0 {
		t.Fatal("topology gray soak executed nothing")
	}
}
