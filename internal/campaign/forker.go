package campaign

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Forker is the exported checkpoint-tree substrate for the systematic
// explorer (internal/explore). The explorer probes many schedules that
// share a common prefix — the unperturbed run up to the exploration
// window — so it builds one tree over a NopPlan base (the reference run
// itself) with rungs requested at its choice-point send times, then
// executes each candidate schedule by forking from the deepest eligible
// rung. Everything that fails the tree's conservative eligibility or
// restore guards falls back to a full instrumented replay, whose result
// is canonical: explorer output is identical with or without snapshots.
type Forker struct {
	target core.Target
	seed   int64
	pt     *planTree

	// Forks and Replays count how executions were served; the explorer
	// reports them but excludes them from certificates (they are a
	// host-side performance detail, not part of the explored semantics).
	Forks   int
	Replays int
}

// NewForker builds the fork substrate for (target, seed). candidates are
// the virtual times the explorer wants checkpoints near — typically the
// send times of its choice-point deliveries in the reference trace; each
// rung is captured captureMargin earlier. A target that cannot snapshot
// still yields a usable Forker: every Run is then a full replay.
func NewForker(t core.Target, seed int64, ref *trace.Trace, candidates []sim.Time) *Forker {
	f := &Forker{target: t, seed: seed}
	f.pt = buildPlanTree(t, core.NopPlan{}, seed, ref, candidates)
	return f
}

// Snapshotable reports whether the checkpoint tree was built — false
// means every Run is a full replay (still correct, just slower).
func (f *Forker) Snapshotable() bool { return f.pt != nil }

// Run executes plan q against a fresh logical instance of the target,
// forking from the deepest eligible checkpoint when one qualifies. The
// returned trace is always the complete perturbed trace from t=0 (rung
// prefix + recorded suffix on the fork path), as a full instrumented
// replay would produce.
func (f *Forker) Run(q core.Plan) (core.Execution, *trace.Trace) {
	if f.pt != nil {
		if exec, tr, ok, _ := f.pt.run(f.target, q, true); ok && tr != nil {
			f.Forks++
			return exec, tr
		}
	}
	f.Replays++
	return f.replay(q)
}

// Runner adapts the forker to the minimizer's PlanRunner contract
// (core.MinimizeSeedRun): minimization probes reuse the same tree.
func (f *Forker) Runner() core.PlanRunner {
	return func(_ core.Target, q core.Plan, _ int64) core.Execution {
		exec, _ := f.Run(q)
		return exec
	}
}

func (f *Forker) replay(q core.Plan) (core.Execution, *trace.Trace) {
	c := f.target.Build(f.seed)
	rec := trace.NewRecorder()
	rec.Attach(c.World.Network(), c.Store.Store())
	q.Apply(c)
	f.target.Workload(c)
	c.RunFor(f.target.Horizon)
	return core.Execution{
		Plan:       q,
		Seed:       f.seed,
		Violations: c.Violations(),
		Detected:   c.Oracles.Violated(f.target.Bug),
	}, rec.T
}
