package core

import (
	"fmt"
	"sort"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/infra"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Planner is the partial-history testing strategy of Section 7. It mines
// the reference trace and emits plans in three families, ordered by how
// likely they are to flip a component's decision:
//
//  1. Observability gaps — drop a single high-value notification (deletion
//     or deletion-mark events first), or black out one object's entire
//     stream to one component.
//  2. Time traveling — freeze an alternate apiserver at an interesting
//     moment, crash a resteerable component later, and restart it against
//     the frozen view.
//  3. Staleness — freeze an apiserver for a window around each commit.
//  4. Gray failures — degrade (not cut) the links that actually carried
//     watch deliveries in the reference run (fail-slow latency, flaky
//     drop/duplicate/reorder), and compact the store aggressively at mined
//     moments — optionally while an apiserver's watch is stalled — forcing
//     ErrCompacted → relist storms (§4.2's forced-relist hazard).
//
// Causality approximation: gap candidates are restricted to kinds the
// victim actually subscribes to, and (when CausalFilter is set) to objects
// the victim itself wrote to or deletion-adjacent events — "perturbing
// events that are causally related to a component's action are likely to
// trigger bugs" (§7).
type Planner struct {
	// CausalFilter restricts gap candidates to causally-suspect events;
	// disabling it is the unguided ablation used by experiment E6.
	CausalFilter bool
	// CausalRanking orders one-shot drop plans by how many component
	// actions each delivery plausibly caused (trace.CausalGraph.Score).
	CausalRanking bool
	// PrioritizeDeletionPaths puts deletion-adjacent drops first.
	PrioritizeDeletionPaths bool
	// BlackoutWindow is the duration of sustained object blackouts
	// (0 = until the end of the execution).
	BlackoutWindow sim.Duration
	// MaxFreezePoints bounds how many commit times seed time-travel and
	// staleness plans (stride-sampled when exceeded).
	MaxFreezePoints int
	// CrashDelays are the delays between a freeze point and the component
	// crash in time-travel plans.
	CrashDelays []sim.Duration
	// MaxPlans caps the total plan list (0 = unlimited).
	MaxPlans int
	// GrayFreezePoints bounds how many freeze points seed gray-failure
	// plans (a sub-sample of the staleness/time-travel freeze points).
	GrayFreezePoints int
	// GrayWindow is how long a degraded-link window lasts.
	GrayWindow sim.Duration
	// FlakyDrop/FlakyDup/FlakyReorder are the loss/duplication/reorder
	// percentages mined FlakyLinkPlans use.
	FlakyDrop    int
	FlakyDup     int
	FlakyReorder int
	// SlowExtra/SlowJitter are the latency inflation mined SlowLinkPlans use.
	SlowExtra  sim.Duration
	SlowJitter sim.Duration
	// CompactionKeep is the retain limit mined CompactionPressurePlans
	// impose on the store.
	CompactionKeep int
	// Family toggles for the ablation experiment (all false = every
	// family enabled).
	DisableGaps        bool
	DisableTimeTravel  bool
	DisableStaleness   bool
	DisableGrayFailure bool

	// Learn, when set, post-processes the final plan list — the hook the
	// trace-learning phase (internal/learn) uses to prune plans whose
	// perturbation provably cannot intersect anything the target's
	// components consumed, and to reorder survivors by learned impact.
	// The hook must be a pure function of its arguments (determinism is
	// pinned by tests). It runs after family mining, dedup, and the
	// MaxPlans cap.
	Learn func(t Target, ref *trace.Trace, plans []Plan) []Plan
}

// NewPlanner returns the default tool configuration.
func NewPlanner() *Planner {
	return &Planner{
		CausalFilter:            true,
		CausalRanking:           true,
		PrioritizeDeletionPaths: true,
		BlackoutWindow:          2 * sim.Second,
		MaxFreezePoints:         48,
		CrashDelays:             []sim.Duration{sim.Second, 3 * sim.Second},
		GrayFreezePoints:        6,
		GrayWindow:              2 * sim.Second,
		FlakyDrop:               50,
		FlakyDup:                25,
		FlakyReorder:            25,
		SlowExtra:               300 * sim.Millisecond,
		SlowJitter:              100 * sim.Millisecond,
		CompactionKeep:          2,
	}
}

// Name implements Strategy.
func (p *Planner) Name() string {
	if p.CausalFilter {
		return "partial-history"
	}
	return "ph-unguided"
}

// Plans implements Strategy.
func (p *Planner) Plans(t Target, ref *trace.Trace) []Plan {
	var high, mid, blackouts, travels, low []Plan
	var highScore, midScore []int
	graph := trace.NewCausalGraph(ref, 0)

	// --- Family 1: observability gaps -------------------------------
	type objKey struct {
		to   sim.NodeID
		kind cluster.Kind
		name string
	}
	blackedOut := map[objKey]bool{}
	deliveries := ref.Deliveries
	if p.DisableGaps {
		deliveries = nil
	}
	for _, d := range deliveries {
		// Never perturb the admin's own view: the workload driver is the
		// experimenter, not a system under test.
		if d.To == "admin" {
			continue
		}
		suspect := d.EventType == apiserver.Deleted || d.Terminating
		acted := ref.ActedOn(d.To, d.Kind, d.Name)
		if p.CausalFilter && !suspect && !acted {
			continue
		}

		// One-shot drop of exactly this delivery, scored by how many
		// component actions it plausibly caused (§7: "perturbing events
		// that are causally related to a component's action are likely to
		// trigger bugs").
		drop := GapPlan{
			Victim:     d.To,
			Kind:       d.Kind,
			Name:       d.Name,
			Type:       d.EventType,
			Occurrence: d.Occurrence,
		}
		score := graph.Score(d)
		if suspect && p.PrioritizeDeletionPaths {
			high = append(high, drop)
			highScore = append(highScore, score)
		} else {
			mid = append(mid, drop)
			midScore = append(midScore, score)
		}

		// Sustained blackout of this object's stream from its first
		// delivery onward (one per object per victim).
		ok := objKey{d.To, d.Kind, d.Name}
		if !blackedOut[ok] {
			blackedOut[ok] = true
			until := sim.Time(0)
			if p.BlackoutWindow > 0 {
				until = d.Time.Add(p.BlackoutWindow)
			}
			blackouts = append(blackouts, GapPlan{
				Victim: d.To,
				Kind:   d.Kind,
				Name:   d.Name,
				From:   d.Time,
				Until:  until,
			})
		}
	}

	// --- Family 2: time traveling ------------------------------------
	freezePoints := p.sampleFreezePoints(ref)
	resteerable := t.Topology.Resteerable
	if p.DisableTimeTravel {
		resteerable = nil
	}
	for _, comp := range resteerable {
		for _, api := range t.Topology.APIServers {
			for _, ft := range freezePoints {
				for _, delay := range p.CrashDelays {
					crashAt := ft.Add(delay)
					if sim.Duration(crashAt) >= sim.Duration(t.Horizon) {
						continue
					}
					travels = append(travels, TimeTravelPlan{
						Component:    comp,
						StaleAPI:     api,
						FreezeAt:     ft.Add(5 * sim.Millisecond),
						CrashAt:      crashAt,
						RestartDelay: 100 * sim.Millisecond,
						HealAt:       crashAt.Add(600 * sim.Millisecond),
					})
				}
			}
		}
	}

	// --- Family 3: staleness ------------------------------------------
	staleAPIs := t.Topology.APIServers
	if p.DisableStaleness {
		staleAPIs = nil
	}
	for _, api := range staleAPIs {
		for _, ft := range freezePoints {
			low = append(low, StalenessPlan{
				Victim: api,
				From:   ft.Add(-sim.Millisecond),
				Until:  ft.Add(2 * sim.Second),
			})
		}
	}

	// --- Family 4: gray failures --------------------------------------
	var gray []Plan
	if !p.DisableGrayFailure {
		grayPoints := sampleTimes(freezePoints, p.GrayFreezePoints)
		window := p.GrayWindow
		if window <= 0 {
			window = 2 * sim.Second
		}

		// Compaction pressure at each mined moment: first pure (retain-limit
		// squeeze alone), then stalling each apiserver across the compaction
		// so its watch resumption is guaranteed to hit ErrCompacted.
		victims := append([]sim.NodeID{""}, t.Topology.APIServers...)
		for _, v := range victims {
			for _, ft := range grayPoints {
				gray = append(gray, CompactionPressurePlan{
					At:   ft.Add(-sim.Millisecond),
					Keep: p.CompactionKeep, Victim: v,
				})
			}
		}

		// Flaky windows on the links that actually carried watch deliveries
		// in the reference run — the mined causal surface, not every pair.
		type link struct{ a, b sim.NodeID }
		linkSeen := map[link]bool{}
		var links []link
		for _, d := range ref.Deliveries {
			if d.To == "admin" {
				continue
			}
			l := link{d.From, d.To}
			if !linkSeen[l] {
				linkSeen[l] = true
				links = append(links, l)
			}
		}
		for _, l := range links {
			for _, ft := range grayPoints {
				from := ft.Add(-sim.Millisecond)
				gray = append(gray, FlakyLinkPlan{
					A: l.a, B: l.b,
					DropPercent:    p.FlakyDrop,
					DupPercent:     p.FlakyDup,
					ReorderPercent: p.FlakyReorder,
					ReorderDelay:   20 * sim.Millisecond,
					From:           from, Until: from.Add(window),
				})
			}
		}

		// Fail-slow store feeds: stretch each apiserver's link to the store.
		for _, api := range t.Topology.APIServers {
			for _, ft := range grayPoints {
				from := ft.Add(-sim.Millisecond)
				gray = append(gray, SlowLinkPlan{
					A: api, B: infra.StoreID,
					Extra: p.SlowExtra, Jitter: p.SlowJitter,
					From: from, Until: from.Add(window),
				})
			}
		}
	}

	// Order the one-shot drop buckets by causal score (stable, so equal
	// scores keep trace order). Blackouts, time-travel, and staleness
	// plans carry no per-delivery score and keep construction order.
	if p.CausalRanking {
		sortByScore(high, highScore)
		sortByScore(mid, midScore)
	}

	plans := high
	plans = append(plans, mid...)
	plans = append(plans, blackouts...)
	plans = append(plans, travels...)
	plans = append(plans, low...)
	plans = append(plans, gray...)
	plans = dedupePlans(plans)
	if p.MaxPlans > 0 && len(plans) > p.MaxPlans {
		plans = plans[:p.MaxPlans]
	}
	if p.Learn != nil {
		plans = p.Learn(t, ref, plans)
	}
	return plans
}

// Validate reports configuration errors that would otherwise silently
// mine empty or no-op plan families: a zero SlowExtra emits slow-link
// plans that slow nothing, an all-zero flaky triple emits healthy "flaky"
// links, a CompactionKeep below the store's floor is silently clamped,
// and zero/negative sampling bounds disable sampling instead of bounding
// it. Callers building a Planner by hand (ablations, CLI flag plumbing)
// should Validate before mining; NewPlanner's defaults always pass.
func (p *Planner) Validate() error {
	if p.MaxPlans < 0 {
		return fmt.Errorf("planner: MaxPlans = %d; must be >= 0 (0 = unlimited)", p.MaxPlans)
	}
	if p.BlackoutWindow < 0 {
		return fmt.Errorf("planner: BlackoutWindow = %s; must be >= 0 (0 = until the end)", p.BlackoutWindow)
	}
	if !p.DisableTimeTravel || !p.DisableStaleness {
		if p.MaxFreezePoints <= 0 {
			return fmt.Errorf("planner: MaxFreezePoints = %d with time-travel/staleness enabled; a zero/negative bound disables freeze-point sampling and floods the campaign — set a positive bound or disable the families", p.MaxFreezePoints)
		}
	}
	if !p.DisableTimeTravel {
		if len(p.CrashDelays) == 0 {
			return fmt.Errorf("planner: time travel enabled with no CrashDelays; the family would mine zero plans — add delays or set DisableTimeTravel")
		}
		for _, d := range p.CrashDelays {
			if d <= 0 {
				return fmt.Errorf("planner: CrashDelay %s is not positive; the crash would race the freeze instead of following it", d)
			}
		}
	}
	if !p.DisableGrayFailure {
		if p.GrayFreezePoints <= 0 {
			return fmt.Errorf("planner: GrayFreezePoints = %d with gray failures enabled; a zero/negative bound disables sampling (every freeze point seeds gray plans) — set a positive bound or DisableGrayFailure", p.GrayFreezePoints)
		}
		if p.GrayWindow <= 0 {
			return fmt.Errorf("planner: GrayWindow = %s; a degraded-link window must be positive", p.GrayWindow)
		}
		if p.SlowExtra <= 0 {
			return fmt.Errorf("planner: SlowExtra = %s; slow-link plans with no added latency are no-ops — set a positive inflation or DisableGrayFailure", p.SlowExtra)
		}
		if p.SlowJitter < 0 {
			return fmt.Errorf("planner: SlowJitter = %s; must be >= 0", p.SlowJitter)
		}
		if p.CompactionKeep < 2 {
			return fmt.Errorf("planner: CompactionKeep = %d; the store clamps retain limits below 2, so the plan would silently diverge from its ID — use >= 2", p.CompactionKeep)
		}
		for _, knob := range []struct {
			name string
			v    int
		}{{"FlakyDrop", p.FlakyDrop}, {"FlakyDup", p.FlakyDup}, {"FlakyReorder", p.FlakyReorder}} {
			if knob.v < 0 || knob.v > 100 {
				return fmt.Errorf("planner: %s = %d; percentages must be in [0,100]", knob.name, knob.v)
			}
		}
		if p.FlakyDrop == 0 && p.FlakyDup == 0 && p.FlakyReorder == 0 {
			return fmt.Errorf("planner: flaky-link knobs are all zero; the family would mine healthy links labelled flaky — set at least one of FlakyDrop/FlakyDup/FlakyReorder or DisableGrayFailure")
		}
	}
	return nil
}

// sampleFreezePoints returns up to MaxFreezePoints commit times,
// stride-sampled but always retaining the first and last.
func (p *Planner) sampleFreezePoints(ref *trace.Trace) []sim.Time {
	return sampleTimes(ref.CommitTimes(), p.MaxFreezePoints)
}

// sampleTimes stride-samples times down to max entries, always retaining
// the first and last (no-op when max <= 0 or times already fits).
func sampleTimes(times []sim.Time, max int) []sim.Time {
	if max <= 0 || len(times) <= max {
		return times
	}
	if max == 1 {
		return times[:1]
	}
	out := make([]sim.Time, 0, max)
	stride := float64(len(times)-1) / float64(max-1)
	for i := 0; i < max; i++ {
		out = append(out, times[int(float64(i)*stride)])
	}
	return out
}

// sortByScore stably sorts plans[:len(scores)] by descending score; any
// trailing unscored plans (blackouts appended after the scored drops) keep
// their positions relative to each other at the end.
func sortByScore(plans []Plan, scores []int) {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	scored := make([]Plan, n)
	for out, in := range idx {
		scored[out] = plans[in]
	}
	copy(plans, scored)
}

func dedupePlans(plans []Plan) []Plan {
	seen := make(map[string]bool, len(plans))
	out := plans[:0]
	for _, p := range plans {
		id := p.ID()
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, p)
	}
	return out
}

// PlanFamilies reports how many plans of each family a list contains
// (diagnostics for E6).
func PlanFamilies(plans []Plan) map[string]int {
	out := map[string]int{}
	for _, p := range plans {
		switch p.(type) {
		case GapPlan:
			out["gap"]++
		case TimeTravelPlan:
			out["timetravel"]++
		case StalenessPlan:
			out["staleness"]++
		case CrashPlan:
			out["crash"]++
		case PartitionPlan:
			out["partition"]++
		case SlowLinkPlan:
			out["slowlink"]++
		case FlakyLinkPlan:
			out["flakylink"]++
		case CompactionPressurePlan:
			out["compaction"]++
		default:
			out["other"]++
		}
	}
	return out
}
