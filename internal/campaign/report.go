package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
)

// Stats carries a campaign's progress counters.
type Stats struct {
	// Workers is the configured pool width.
	Workers int `json:"workers"`
	// Seeds is how many world seeds the campaign swept.
	Seeds int `json:"seeds"`
	// RawExecutions counts every cluster actually built and run —
	// references plus plan executions, across all seeds, including
	// in-flight work that a detection made redundant. Compare with
	// CampaignResult.Executions, which reports the serial-equivalent
	// position of the detection.
	RawExecutions int `json:"raw_executions"`
	// Detections counts executions in which the target oracle fired.
	Detections int `json:"detections"`
	// ViolatingExecutions counts executions with at least one violation
	// of any oracle (superset of Detections).
	ViolatingExecutions int `json:"violating_executions"`
	// CoverageClasses / NovelSignatures summarize instrumented coverage:
	// distinct predicted plan classes executed and distinct execution
	// signatures observed. Zero when the campaign ran uninstrumented.
	CoverageClasses int `json:"coverage_classes"`
	NovelSignatures int `json:"novel_signatures"`
	// WallNanos is the campaign's wall-clock time; ExecutionsPerSec is
	// RawExecutions normalized by it.
	WallNanos        int64   `json:"wall_ns"`
	ExecutionsPerSec float64 `json:"executions_per_sec"`
}

func (s Stats) String() string {
	return fmt.Sprintf("%d execs in %.2fs (%.1f exec/s, %d workers, %d seeds, %d classes, %d signatures, %d detections)",
		s.RawExecutions, float64(s.WallNanos)/1e9, s.ExecutionsPerSec,
		s.Workers, s.Seeds, s.CoverageClasses, s.NovelSignatures, s.Detections)
}

// PlanOutcome is one execution's record in the campaign artifact.
type PlanOutcome struct {
	Seed int64 `json:"seed"`
	// Index is the plan's position in the strategy's order; -1 marks the
	// reference run.
	Index       int    `json:"index"`
	Plan        string `json:"plan"`
	Description string `json:"description"`
	Class       string `json:"class"`
	// Signature is the execution's coverage fingerprint (hex); empty for
	// uninstrumented runs.
	Signature  string   `json:"signature,omitempty"`
	Detected   bool     `json:"detected"`
	Violations []string `json:"violations,omitempty"`
	WallMicros int64    `json:"wall_us"`
}

// FailureBucket groups violating executions with identical signatures —
// the dedup view a triager reads instead of a flat violation list.
type FailureBucket struct {
	Signature string `json:"signature"`
	// Oracles is the sorted set of oracle names that fired in this
	// bucket's executions.
	Oracles []string `json:"oracles"`
	// Count is how many executions landed in the bucket.
	Count int `json:"count"`
	// ExamplePlan/ExampleSeed identify one reproducing execution.
	ExamplePlan string `json:"example_plan"`
	ExampleSeed int64  `json:"example_seed"`
	// Detected marks buckets containing the target bug's oracle.
	Detected bool `json:"detected"`
}

// aggregator accumulates cross-seed reporting state. The engine feeds it
// deterministically (slots in dispatch order, after each pool drains), so
// no locking is needed.
type aggregator struct {
	collect bool
	bug     string

	raw        int
	detections int
	violating  int
	classes    map[string]bool
	sigs       map[Signature]bool
	buckets    map[Signature]*FailureBucket
	outcomes   []PlanOutcome
}

func newAggregator(cfg Config) *aggregator {
	return &aggregator{
		collect: cfg.Collect,
		classes: make(map[string]bool),
		sigs:    make(map[Signature]bool),
		buckets: make(map[Signature]*FailureBucket),
	}
}

// add records one executed slot.
func (a *aggregator) add(seed int64, sl slot, instrumented bool) {
	a.raw++
	if sl.exec.Detected {
		a.detections++
	}
	if len(sl.exec.Violations) > 0 {
		a.violating++
	}
	cls := classOf(sl.plan)
	a.classes[cls] = true
	if instrumented {
		a.sigs[sl.sig] = true
		if len(sl.exec.Violations) > 0 {
			a.bucket(seed, sl)
		}
	}
	if a.collect {
		out := PlanOutcome{
			Seed:        seed,
			Index:       sl.planIndex,
			Plan:        sl.plan.ID(),
			Description: sl.plan.Describe(),
			Class:       cls,
			Detected:    sl.exec.Detected,
			WallMicros:  sl.wall.Microseconds(),
		}
		if instrumented {
			out.Signature = sl.sig.String()
		}
		for _, v := range sl.exec.Violations {
			out.Violations = append(out.Violations, v.Oracle)
		}
		a.outcomes = append(a.outcomes, out)
	}
}

func (a *aggregator) bucket(seed int64, sl slot) {
	b := a.buckets[sl.sig]
	if b == nil {
		names := map[string]bool{}
		for _, v := range sl.exec.Violations {
			names[v.Oracle] = true
		}
		oracles := make([]string, 0, len(names))
		for n := range names {
			oracles = append(oracles, n)
		}
		sort.Strings(oracles)
		b = &FailureBucket{
			Signature:   sl.sig.String(),
			Oracles:     oracles,
			ExamplePlan: sl.plan.Describe(),
			ExampleSeed: seed,
			Detected:    sl.exec.Detected,
		}
		a.buckets[sl.sig] = b
	}
	b.Count++
}

func (a *aggregator) bucketList() []FailureBucket {
	out := make([]FailureBucket, 0, len(a.buckets))
	for _, b := range a.buckets {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signature < out[j].Signature })
	return out
}

func (a *aggregator) stats(cfg Config, wall time.Duration) Stats {
	st := Stats{
		Workers:             cfg.workerCount(),
		Seeds:               len(cfg.seedList()),
		RawExecutions:       a.raw,
		Detections:          a.detections,
		ViolatingExecutions: a.violating,
		WallNanos:           wall.Nanoseconds(),
	}
	if cfg.instrumented() {
		st.CoverageClasses = len(a.classes)
		st.NovelSignatures = len(a.sigs)
	}
	if wall > 0 {
		st.ExecutionsPerSec = float64(a.raw) / wall.Seconds()
	}
	return st
}

// Artifact is the JSON form of one campaign — the campaign.json schema.
type Artifact struct {
	Target        string  `json:"target"`
	Strategy      string  `json:"strategy"`
	Workers       int     `json:"workers"`
	Seeds         []int64 `json:"seeds"`
	MaxExecutions int     `json:"max_executions"`
	Guided        bool    `json:"guided"`
	Detected      bool    `json:"detected"`
	// Campaign is the first seed's serial-equivalent result.
	Campaign core.CampaignResult `json:"campaign"`
	// PerSeed holds every seed's result when more than one seed ran.
	PerSeed  []SeedResult    `json:"per_seed,omitempty"`
	Stats    Stats           `json:"stats"`
	Buckets  []FailureBucket `json:"failure_buckets,omitempty"`
	Outcomes []PlanOutcome   `json:"outcomes,omitempty"`
}

// BuildArtifact converts a Result into its artifact form.
func BuildArtifact(res Result, cfg Config) Artifact {
	art := Artifact{
		Target:        res.Target,
		Strategy:      res.Strategy,
		Workers:       cfg.workerCount(),
		Seeds:         cfg.seedList(),
		MaxExecutions: cfg.MaxExecutions,
		Guided:        cfg.Guided,
		Detected:      res.Detected,
		Campaign:      res.Campaign,
		Stats:         res.Stats,
		Buckets:       res.Buckets,
		Outcomes:      res.Outcomes,
	}
	if len(res.Seeds) > 1 {
		art.PerSeed = res.Seeds
	}
	return art
}

// WriteArtifacts writes the campaign artifact file: a JSON document with
// one entry per (target, strategy) campaign.
func WriteArtifacts(path string, artifacts []Artifact) error {
	doc := struct {
		Tool      string     `json:"tool"`
		Campaigns []Artifact `json:"campaigns"`
	}{Tool: "phtest", Campaigns: artifacts}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal artifact: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("campaign: write artifact: %w", err)
	}
	return nil
}

// ReadArtifacts loads a campaign artifact file (the inverse of
// WriteArtifacts), for tools and tests.
func ReadArtifacts(path string) ([]Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read artifact: %w", err)
	}
	var doc struct {
		Tool      string     `json:"tool"`
		Campaigns []Artifact `json:"campaigns"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("campaign: parse artifact: %w", err)
	}
	return doc.Campaigns, nil
}
