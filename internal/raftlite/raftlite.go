// Package raftlite implements the replication layer beneath the
// strongly-consistent store: leader election with randomized timeouts, log
// replication with consistency checks, majority commit, and in-order
// apply — a compact Raft (Ongaro & Ousterhout) without membership changes
// or snapshot transfer.
//
// It exists because the paper's model rests on the premise that H contains
// only *fully committed* events (§3 footnote 1): raftlite is the mechanism
// that makes commit well-defined for a 3- or 5-node store cluster, and its
// tests demonstrate that a follower's applied prefix is always a prefix of
// the committed history — the replication-layer analog of H' ⊆ H.
package raftlite

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/wal"
)

// Role is a node's current raft role.
type Role int

// Raft roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Entry is one replicated log entry.
type Entry struct {
	Term  uint64
	Index uint64
	Data  []byte
}

// Messages.
type (
	// RequestVote solicits a vote for a candidacy.
	RequestVote struct {
		Term         uint64
		Candidate    sim.NodeID
		LastLogIndex uint64
		LastLogTerm  uint64
	}
	// VoteResponse answers a RequestVote.
	VoteResponse struct {
		Term    uint64
		Granted bool
	}
	// AppendEntries replicates log entries (empty = heartbeat).
	AppendEntries struct {
		Term         uint64
		Leader       sim.NodeID
		PrevLogIndex uint64
		PrevLogTerm  uint64
		Entries      []Entry
		LeaderCommit uint64
	}
	// AppendResponse answers an AppendEntries.
	AppendResponse struct {
		Term       uint64
		From       sim.NodeID
		Success    bool
		MatchIndex uint64
	}
)

// Config tunes a raft node.
type Config struct {
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin sim.Duration
	ElectionTimeoutMax sim.Duration
	// HeartbeatInterval is the leader's idle append cadence.
	HeartbeatInterval sim.Duration
}

// DefaultConfig returns timings suitable for the simulated 1ms network.
func DefaultConfig() Config {
	return Config{
		ElectionTimeoutMin: 150 * sim.Millisecond,
		ElectionTimeoutMax: 300 * sim.Millisecond,
		HeartbeatInterval:  50 * sim.Millisecond,
	}
}

type durableState struct {
	Term     uint64
	VotedFor sim.NodeID
}

// Node is one raft replica. Its log and vote are durable (survive crashes
// via the WAL); role, timers, and leader bookkeeping are volatile.
type Node struct {
	id    sim.NodeID
	peers []sim.NodeID // all cluster members including self
	world *sim.World
	cfg   Config
	log   *wal.Log
	apply func(e Entry) // invoked in order for every committed entry

	role        Role
	term        uint64
	votedFor    sim.NodeID
	leader      sim.NodeID
	entries     []Entry // in-memory mirror of the WAL records
	commitIndex uint64
	lastApplied uint64
	votes       map[sim.NodeID]bool
	nextIndex   map[sim.NodeID]uint64
	matchIndex  map[sim.NodeID]uint64

	down          bool
	epoch         uint64
	electionTimer *sim.Timer

	// Metrics.
	Elections uint64
	Commits   uint64
}

// NewNode wires a raft replica into the world. peers must list every
// member (including id) identically on every node. The WAL carries any
// state from a previous incarnation.
func NewNode(w *sim.World, id sim.NodeID, peers []sim.NodeID, cfg Config, log *wal.Log, apply func(Entry)) *Node {
	n := &Node{
		id:    id,
		peers: append([]sim.NodeID(nil), peers...),
		world: w,
		cfg:   cfg,
		log:   log,
		apply: apply,
	}
	sort.Slice(n.peers, func(i, j int) bool { return n.peers[i] < n.peers[j] })
	n.recover()
	w.Network().Register(id, n)
	w.AddProcess(n)
	n.resetElectionTimer()
	return n
}

// recover loads durable state from the WAL.
func (n *Node) recover() {
	var ds durableState
	if ok, err := n.log.GetMeta("raft", &ds); err == nil && ok {
		n.term = ds.Term
		n.votedFor = ds.VotedFor
	}
	n.entries = n.entries[:0]
	_ = wal.Replay(n.log, func(index uint64, e Entry) error {
		n.entries = append(n.entries, e)
		return nil
	})
	n.role = Follower
	n.leader = ""
	n.votes = nil
	n.commitIndex = 0
	n.lastApplied = 0
}

func (n *Node) persistMeta() {
	_ = n.log.SetMeta("raft", durableState{Term: n.term, VotedFor: n.votedFor})
}

// ID implements sim.Process.
func (n *Node) ID() sim.NodeID { return n.id }

// Role returns the node's current role.
func (n *Node) Role() Role { return n.role }

// Term returns the node's current term.
func (n *Node) Term() uint64 { return n.term }

// Leader returns the node's current belief about the leader ("" unknown).
func (n *Node) Leader() sim.NodeID { return n.leader }

// CommitIndex returns the highest committed index this node knows of.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// LastApplied returns the highest applied index.
func (n *Node) LastApplied() uint64 { return n.lastApplied }

// LastIndex returns the last log index.
func (n *Node) LastIndex() uint64 {
	if len(n.entries) == 0 {
		return 0
	}
	return n.entries[len(n.entries)-1].Index
}

func (n *Node) lastTerm() uint64 {
	if len(n.entries) == 0 {
		return 0
	}
	return n.entries[len(n.entries)-1].Term
}

// Crash implements sim.Process: volatile state is lost; WAL survives.
func (n *Node) Crash() {
	n.down = true
	n.epoch++
	if n.electionTimer != nil {
		n.electionTimer.Cancel()
	}
}

// Restart implements sim.Process: recover from the WAL and rejoin.
func (n *Node) Restart() {
	n.down = false
	n.epoch++
	n.recover()
	n.resetElectionTimer()
}

// Propose appends data to the replicated log if this node is the leader.
// It returns the assigned index, or ok=false when not leader (the caller
// should retry against the current leader).
func (n *Node) Propose(data []byte) (index uint64, ok bool) {
	if n.down || n.role != Leader {
		return 0, false
	}
	e := Entry{Term: n.term, Index: n.LastIndex() + 1, Data: append([]byte(nil), data...)}
	n.appendToLog(e)
	n.broadcastAppend()
	// Single-node cluster commits immediately.
	n.advanceCommit()
	return e.Index, true
}

func (n *Node) appendToLog(e Entry) {
	n.entries = append(n.entries, e)
	if _, err := n.log.Append(e); err != nil {
		panic(fmt.Sprintf("raftlite: wal append: %v", err))
	}
	if n.matchIndex != nil {
		n.matchIndex[n.id] = e.Index
	}
}

// HandleMessage implements sim.Handler.
func (n *Node) HandleMessage(m *sim.Message) {
	if n.down {
		return
	}
	switch msg := m.Payload.(type) {
	case *RequestVote:
		n.onRequestVote(m.From, msg)
	case *VoteResponse:
		n.onVoteResponse(m.From, msg)
	case *AppendEntries:
		n.onAppendEntries(m.From, msg)
	case *AppendResponse:
		n.onAppendResponse(msg)
	}
}

func (n *Node) resetElectionTimer() {
	if n.electionTimer != nil {
		n.electionTimer.Cancel()
	}
	span := int64(n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin)
	d := n.cfg.ElectionTimeoutMin
	if span > 0 {
		d += sim.Duration(n.world.Kernel().Rand().Int63n(span))
	}
	epoch := n.epoch
	n.electionTimer = n.world.Kernel().Schedule(d, func() {
		if n.down || epoch != n.epoch {
			return
		}
		n.startElection()
	})
}

func (n *Node) startElection() {
	n.role = Candidate
	n.term++
	n.votedFor = n.id
	n.leader = ""
	n.persistMeta()
	n.Elections++
	n.votes = map[sim.NodeID]bool{n.id: true}
	n.resetElectionTimer()
	if n.hasMajority(len(n.votes)) {
		n.becomeLeader()
		return
	}
	req := &RequestVote{Term: n.term, Candidate: n.id, LastLogIndex: n.LastIndex(), LastLogTerm: n.lastTerm()}
	for _, p := range n.peers {
		if p != n.id {
			n.world.Network().Send(n.id, p, "raft.vote-req", req)
		}
	}
}

func (n *Node) hasMajority(count int) bool { return count*2 > len(n.peers) }

func (n *Node) maybeStepDown(term uint64) bool {
	if term > n.term {
		n.term = term
		n.votedFor = ""
		n.role = Follower
		n.leader = ""
		n.persistMeta()
		n.resetElectionTimer()
		return true
	}
	return false
}

func (n *Node) onRequestVote(from sim.NodeID, req *RequestVote) {
	n.maybeStepDown(req.Term)
	granted := false
	if req.Term == n.term && (n.votedFor == "" || n.votedFor == req.Candidate) && n.logUpToDate(req) {
		granted = true
		n.votedFor = req.Candidate
		n.persistMeta()
		n.resetElectionTimer()
	}
	n.world.Network().Send(n.id, from, "raft.vote-resp", &VoteResponse{Term: n.term, Granted: granted})
}

// logUpToDate implements raft's §5.4.1 election restriction.
func (n *Node) logUpToDate(req *RequestVote) bool {
	if req.LastLogTerm != n.lastTerm() {
		return req.LastLogTerm > n.lastTerm()
	}
	return req.LastLogIndex >= n.LastIndex()
}

func (n *Node) onVoteResponse(from sim.NodeID, resp *VoteResponse) {
	if n.maybeStepDown(resp.Term) {
		return
	}
	if n.role != Candidate || resp.Term != n.term || !resp.Granted {
		return
	}
	n.votes[from] = true
	if n.hasMajority(len(n.votes)) {
		n.becomeLeader()
	}
}

func (n *Node) becomeLeader() {
	n.role = Leader
	n.leader = n.id
	n.nextIndex = make(map[sim.NodeID]uint64, len(n.peers))
	n.matchIndex = make(map[sim.NodeID]uint64, len(n.peers))
	for _, p := range n.peers {
		n.nextIndex[p] = n.LastIndex() + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.id] = n.LastIndex()
	if n.electionTimer != nil {
		n.electionTimer.Cancel()
	}
	n.broadcastAppend()
	n.scheduleHeartbeat()
}

func (n *Node) scheduleHeartbeat() {
	epoch := n.epoch
	n.world.Kernel().Schedule(n.cfg.HeartbeatInterval, func() {
		if n.down || epoch != n.epoch || n.role != Leader {
			return
		}
		n.broadcastAppend()
		n.scheduleHeartbeat()
	})
}

func (n *Node) broadcastAppend() {
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		n.sendAppend(p)
	}
}

func (n *Node) sendAppend(to sim.NodeID) {
	next := n.nextIndex[to]
	if next == 0 {
		next = 1
	}
	prevIdx := next - 1
	var prevTerm uint64
	if prevIdx >= 1 && int(prevIdx) <= len(n.entries) {
		prevTerm = n.entries[prevIdx-1].Term
	}
	var batch []Entry
	if int(next) <= len(n.entries) {
		batch = append(batch, n.entries[next-1:]...)
	}
	n.world.Network().Send(n.id, to, "raft.append", &AppendEntries{
		Term:         n.term,
		Leader:       n.id,
		PrevLogIndex: prevIdx,
		PrevLogTerm:  prevTerm,
		Entries:      batch,
		LeaderCommit: n.commitIndex,
	})
}

func (n *Node) onAppendEntries(from sim.NodeID, req *AppendEntries) {
	n.maybeStepDown(req.Term)
	resp := &AppendResponse{Term: n.term, From: n.id}
	if req.Term < n.term {
		n.world.Network().Send(n.id, from, "raft.append-resp", resp)
		return
	}
	// Valid leader for this term.
	n.role = Follower
	n.leader = req.Leader
	n.resetElectionTimer()

	// Consistency check.
	if req.PrevLogIndex > 0 {
		if req.PrevLogIndex > n.LastIndex() || n.entries[req.PrevLogIndex-1].Term != req.PrevLogTerm {
			n.world.Network().Send(n.id, from, "raft.append-resp", resp)
			return
		}
	}
	// Append/overwrite entries.
	for _, e := range req.Entries {
		if e.Index <= n.LastIndex() {
			if n.entries[e.Index-1].Term == e.Term {
				continue // already have it
			}
			// Divergent suffix: truncate (both memory and WAL).
			n.entries = append([]Entry(nil), n.entries[:e.Index-1]...)
			n.log.TruncateTail(e.Index - 1)
		}
		n.entries = append(n.entries, e)
		if _, err := n.log.Append(e); err != nil {
			panic(fmt.Sprintf("raftlite: wal append: %v", err))
		}
	}
	resp.Success = true
	resp.MatchIndex = n.LastIndex()
	if req.LeaderCommit > n.commitIndex {
		ci := req.LeaderCommit
		if li := n.LastIndex(); ci > li {
			ci = li
		}
		n.commitIndex = ci
		n.applyCommitted()
	}
	n.world.Network().Send(n.id, from, "raft.append-resp", resp)
}

func (n *Node) onAppendResponse(resp *AppendResponse) {
	if n.maybeStepDown(resp.Term) {
		return
	}
	if n.role != Leader || resp.Term != n.term {
		return
	}
	if !resp.Success {
		if n.nextIndex[resp.From] > 1 {
			n.nextIndex[resp.From]--
		}
		n.sendAppend(resp.From)
		return
	}
	if resp.MatchIndex > n.matchIndex[resp.From] {
		n.matchIndex[resp.From] = resp.MatchIndex
		n.nextIndex[resp.From] = resp.MatchIndex + 1
		n.advanceCommit()
	}
}

// advanceCommit commits the highest index replicated on a majority whose
// entry is from the current term (raft's §5.4.2 rule).
func (n *Node) advanceCommit() {
	if n.role != Leader {
		return
	}
	matches := make([]uint64, 0, len(n.peers))
	for _, p := range n.peers {
		matches = append(matches, n.matchIndex[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	majority := matches[len(n.peers)/2]
	if majority > n.commitIndex && int(majority) <= len(n.entries) &&
		n.entries[majority-1].Term == n.term {
		n.commitIndex = majority
		n.applyCommitted()
		// Let followers learn the new commit index promptly.
		n.broadcastAppend()
	}
}

func (n *Node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		e := n.entries[n.lastApplied-1]
		n.Commits++
		if n.apply != nil {
			n.apply(e)
		}
	}
}
