// Command phfarm runs campaign fleets: the same bug-finding campaigns
// as phtest, sharded across worker subprocesses by a coordinator that
// merges the shards back into byte-identical artifacts.
//
// Three modes:
//
//	phfarm [flags]             coordinator: shard the (target × seed)
//	                           space across -workers subprocesses
//	phfarm -worker             worker: serve tasks over stdin/stdout
//	                           (spawned by the coordinator; not for
//	                           interactive use)
//	phfarm -grid grid.json     experiment grid: expand a declarative
//	                           targets × strategies × toggles × repeats
//	                           grid, run it across the fleet, and emit
//	                           a summary table (and -csv file)
//
// Sharding follows the engine's independence structure: seeds shard
// freely, except for learning campaigns (-prune/-ranked) whose
// cross-seed bucket affinity couples the sweep — those cells run whole
// on one worker. Merged campaign.json and NDJSON artifacts are
// byte-identical to a single-process phtest run with the same flags
// (after -canonical scrubbing of wall-clock fields), at any worker
// count; guided campaigns additionally require matching -parallel,
// because guided schedules are deterministic per in-process pool width.
//
// -corpus dir maintains a persistent cross-campaign corpus: each
// campaign seeds from it (known buckets re-confirm first, recorded
// healthy plans are skipped) and records into it when done.
//
// SIGINT/SIGTERM kill the fleet, flush the cells that completed as a
// valid artifact marked "interrupted": true, and exit 130.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/campaign"
	"repro/internal/farm"
	"repro/internal/farm/corpus"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// newWorkerTransport builds one worker incarnation's transport; a
// variable so tests can swap in in-process transports instead of
// spawning subprocesses. nil selects the subprocess fleet (the
// coordinator re-execs its own binary with -worker).
var newWorkerTransport func(slot, spawn int) farm.Transport

// workerFactory resolves the transport factory for this run, wrapping
// each slot's first incarnation in a scripted fault when -chaos asks
// for one. Respawns always come up clean: chaos tests the supervision
// layer's recovery, and a permanently cursed slot would just retire.
func workerFactory(chaos []farm.Fault) (func(slot, spawn int) farm.Transport, error) {
	base := newWorkerTransport
	if base == nil {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("phfarm: cannot find own binary: %w", err)
		}
		base = func(slot, spawn int) farm.Transport {
			return farm.NewProcessTransport(exe, "-worker")
		}
	}
	if len(chaos) == 0 {
		return base, nil
	}
	return func(slot, spawn int) farm.Transport {
		tr := base(slot, spawn)
		if spawn == 0 && slot < len(chaos) && chaos[slot].Kind != "" {
			return &farm.FaultTransport{Inner: tr, Fault: chaos[slot]}
		}
		return tr
	}, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("phfarm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	worker := fs.Bool("worker", false, "run as a farm worker serving tasks on stdin/stdout (internal)")
	gridPath := fs.String("grid", "", "run the experiment grid in this JSON file")
	csvPath := fs.String("csv", "", "write the grid's deterministic per-cell CSV to this path (grid mode)")
	workers := fs.Int("workers", 2, "number of worker processes")
	targetsFlag := fs.String("targets", "all", "comma-separated target bugs or 'all'")
	strategiesFlag := fs.String("strategies", "all", "comma-separated strategies or 'all'")
	maxExec := fs.Int("max", 500, "max plan executions per (target, strategy, seed)")
	seed := fs.Int64("seed", 7, "seed for the random baseline's plan generator")
	randomN := fs.Int("random-n", 500, "number of random plans to generate")
	parallel := fs.Int("parallel", 0, "in-process pool width per worker (0 = GOMAXPROCS)")
	seedsFlag := fs.String("seeds", "1", "comma-separated world seeds to sweep")
	guided := fs.Bool("guided", false, "coverage-guided plan scheduling (fuzzer-style)")
	prune := fs.Bool("prune", false, "learn read-dependency profiles and defer non-intersecting plans")
	ranked := fs.Bool("ranked", false, "order kept plans by learned impact score (requires -prune)")
	snapshot := fs.Bool("snapshot", false, "fork plan executions from copy-on-write prefix checkpoints")
	jsonPath := fs.String("json", "", "write the merged campaign artifact to this path")
	ndjsonPath := fs.String("ndjson", "", "write the merged NDJSON telemetry stream to this path")
	canonical := fs.Bool("canonical", false, "zero wall-clock and worker-count fields in the artifact (byte-comparable form)")
	corpusDir := fs.String("corpus", "", "persistent cross-campaign corpus directory (seed from it, record into it)")
	keepGoing := fs.Bool("keep-going", false, "do not cancel on first detection; execute every plan")
	eventBudget := fs.Uint64("event-budget", 0, "kernel step budget per execution for the livelock watchdog (0 = default)")
	explainFlag := fs.Bool("explain", false, "minimize and causally explain every detected failure bucket")
	fixed := fs.Bool("fixed", false, "run against the fixed component variants (expect no detections)")
	verbose := fs.Bool("v", false, "print per-cell stats and streaming progress")
	supervise := fs.Bool("supervise", true, "supervise workers: respawn on death, retry their tasks, quarantine poison tasks")
	journalDir := fs.String("journal", "", "coordinator journal directory (one fsynced line per settled task)")
	resume := fs.Bool("resume", false, "resume a killed run from its -journal, re-dispatching only unsettled tasks")
	fleetPath := fs.String("fleet", "", "write the fleet supervision report (deaths, respawns, retries) to this JSON path")
	chaosFlag := fs.String("chaos", "", "inject scripted worker faults, e.g. 'kill@4,stall@9,torn@6' (slot i's first spawn gets entry i; testing)")
	taskDeadline := fs.Duration("task-deadline", 0, "per-task completion deadline before the worker is declared stalled (0 = scaled default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *worker {
		if err := farm.WorkerLoop(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(stderr, "phfarm:", err)
			return 1
		}
		return 0
	}
	if err := farm.ValidateFlags(farm.FlagRules{
		Prune: *prune, Ranked: *ranked, Explain: *explainFlag,
		Snapshot: *snapshot, Fixed: *fixed,
	}); err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 2
	}
	if *workers < 1 {
		fmt.Fprintln(stderr, "phfarm: -workers must be >= 1")
		return 2
	}
	if *resume && *journalDir == "" {
		fmt.Fprintln(stderr, "phfarm: -resume requires -journal")
		return 2
	}
	if !*supervise && (*journalDir != "" || *chaosFlag != "") {
		fmt.Fprintln(stderr, "phfarm: -journal and -chaos require supervision (-supervise)")
		return 2
	}
	chaos, err := farm.ParseChaos(*chaosFlag)
	if err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 2
	}
	fleet := fleetOpts{
		workers: *workers, verbose: *verbose, supervise: *supervise,
		journalDir: *journalDir, resume: *resume, fleetPath: *fleetPath,
		chaos: chaos, taskDeadline: *taskDeadline,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *gridPath != "" {
		return runGrid(ctx, *gridPath, *csvPath, fleet, *parallel, stdout, stderr)
	}

	seeds, err := farm.ParseSeeds(*seedsFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	base := farm.TaskSpec{
		Fixed:         *fixed,
		RandomSeed:    *seed,
		RandomN:       *randomN,
		Seeds:         seeds,
		MaxExecutions: *maxExec,
		Parallel:      *parallel,
		Guided:        *guided,
		KeepGoing:     *keepGoing,
		Explain:       *explainFlag,
		Prune:         *prune,
		Ranked:        *ranked,
		Snapshot:      *snapshot,
		EventBudget:   *eventBudget,
	}
	return runMatrix(ctx, matrixOpts{
		targets: *targetsFlag, strategies: *strategiesFlag,
		base: base, fleet: fleet,
		jsonPath: *jsonPath, ndjsonPath: *ndjsonPath,
		canonical: *canonical, corpusDir: *corpusDir,
		verbose: *verbose,
	}, stdout, stderr)
}

// fleetOpts carries the supervision-layer configuration from flags to
// dispatch.
type fleetOpts struct {
	workers      int
	verbose      bool
	supervise    bool
	journalDir   string
	resume       bool
	fleetPath    string
	chaos        []farm.Fault
	taskDeadline time.Duration
}

type matrixOpts struct {
	targets, strategies  string
	base                 farm.TaskSpec
	fleet                fleetOpts
	jsonPath, ndjsonPath string
	canonical            bool
	corpusDir            string
	verbose              bool
}

func runMatrix(ctx context.Context, o matrixOpts, stdout, stderr io.Writer) int {
	// Resolve up front so bad names fail before any worker spawns.
	targets, err := farm.ResolveTargets(o.targets, o.base.Fixed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	strategies, err := farm.ResolveStrategies(o.strategies, o.base.RandomSeed, o.base.RandomN)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	targetNames := make([]string, len(targets))
	for i, t := range targets {
		targetNames[i] = t.Name
	}
	strategyNames := make([]string, len(strategies))
	for i, s := range strategies {
		strategyNames[i] = s.Name()
	}

	tasks := farm.Plan(targetNames, strategyNames, o.base)
	coverage := map[farm.Cell]*campaign.CoverageSeed{}
	if o.corpusDir != "" {
		for _, tn := range targetNames {
			for _, sn := range strategyNames {
				cov, err := corpus.Load(o.corpusDir, tn, sn)
				if err != nil {
					fmt.Fprintln(stderr, "phfarm:", err)
					return 1
				}
				coverage[farm.Cell{Target: tn, Strategy: sn}] = cov
			}
		}
		for i := range tasks {
			tasks[i].Coverage = coverage[farm.Cell{Target: tasks[i].Target, Strategy: tasks[i].Strategy}]
		}
	}

	fmt.Fprintf(stdout, "Campaign fleet: %d tasks across %d workers\n", len(tasks), o.fleet.workers)
	fmt.Fprintf(stdout, "targets=%d strategies=%d max-executions=%d seeds=%v guided=%v prune=%v ranked=%v snapshot=%v corpus=%v\n\n",
		len(targets), len(strategies), o.base.MaxExecutions, o.base.Seeds,
		o.base.Guided, o.base.Prune, o.base.Ranked, o.base.Snapshot, o.corpusDir != "")

	results, interrupted, err := dispatch(ctx, tasks, o.fleet, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 1
	}
	merged, incomplete := farm.Collate(results)

	printMatrix(stdout, targetNames, strategyNames, merged, len(o.base.Seeds) > 1)
	if o.verbose {
		for _, res := range merged {
			fmt.Fprintln(stdout, res.Campaign)
			fmt.Fprintf(stdout, "  %s\n", res.Stats)
		}
	}
	for _, c := range incomplete {
		fmt.Fprintf(stderr, "phfarm: cell %s/%s incomplete (worker failed or run interrupted)\n", c.Target, c.Strategy)
	}

	if o.corpusDir != "" && !interrupted {
		for _, res := range merged {
			if res.Stats.Fleet != nil && res.Stats.Fleet.TasksQuarantined > 0 {
				// A quarantined cell's result is a synthetic failure, not
				// campaign evidence; recording it would poison the corpus.
				continue
			}
			if err := corpus.Record(o.corpusDir, res.Target, res.Strategy, res); err != nil {
				fmt.Fprintln(stderr, "phfarm:", err)
				return 1
			}
		}
		fmt.Fprintf(stdout, "\ncorpus updated: %s (%d cells)\n", o.corpusDir, len(merged))
	}

	if o.jsonPath != "" {
		var artifacts []campaign.Artifact
		for _, res := range merged {
			art := campaign.BuildArtifact(res, cellConfig(o.base, coverage[farm.Cell{Target: res.Target, Strategy: res.Strategy}]))
			if o.canonical {
				art = campaign.CanonicalizeArtifact(art)
			}
			artifacts = append(artifacts, art)
		}
		if err := campaign.WriteArtifactsStatus(o.jsonPath, artifacts, interrupted); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "\ncampaign artifact: %s (%d campaigns)\n", o.jsonPath, len(artifacts))
	}
	if o.ndjsonPath != "" {
		if err := writeNDJSON(o.ndjsonPath, merged, o.base, coverage); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "telemetry stream: %s (%d campaigns)\n", o.ndjsonPath, len(merged))
	}

	if interrupted {
		fmt.Fprintln(stderr, "phfarm: interrupted; partial results flushed")
		return 130
	}
	for _, tr := range results {
		if tr.Err != "" {
			fmt.Fprintf(stderr, "phfarm: task %d (%s/%s) failed: %s\n", tr.Spec.ID, tr.Spec.Target, tr.Spec.Strategy, tr.Err)
			return 1
		}
		if tr.Quarantine != nil {
			// Quarantine is a recorded failure, not an abort: the run
			// succeeds, the poisoned cell's artifact says what happened,
			// and the operator hears about it here.
			fmt.Fprintf(stderr, "phfarm: task %d (%s/%s) quarantined: %s\n",
				tr.Spec.ID, tr.Spec.Target, tr.Spec.Strategy, tr.Quarantine.Detail)
		}
	}
	return 0
}

// dispatch runs the task list across a fresh fleet — supervised by
// default (death detection, respawn, retry, quarantine, optional
// journal), or through the legacy abort-on-death coordinator with
// -supervise=false.
func dispatch(ctx context.Context, tasks []farm.TaskSpec, o fleetOpts, stderr io.Writer) ([]farm.TaskResult, bool, error) {
	factory, err := workerFactory(o.chaos)
	if err != nil {
		return nil, false, err
	}
	var streamed int64
	onRecord := func(spec farm.TaskSpec, out campaign.PlanOutcome) {
		if n := atomic.AddInt64(&streamed, 1); n%250 == 0 {
			fmt.Fprintf(stderr, "  ... %d execution records streamed\n", n)
		}
	}

	if !o.supervise {
		transports := make([]farm.Transport, o.workers)
		for i := range transports {
			transports[i] = factory(i, 0)
		}
		coord := &farm.Coordinator{}
		if o.verbose {
			coord.OnRecord = onRecord
		}
		return coord.Run(ctx, transports, tasks)
	}

	sup := &farm.Supervisor{Factory: factory, Workers: o.workers}
	if o.verbose {
		sup.OnRecord = onRecord
		sup.Log = stderr
	}
	if o.taskDeadline > 0 {
		d := o.taskDeadline
		sup.Deadline = func(farm.TaskSpec) time.Duration { return d }
	}
	var resumed map[int]farm.ResumedTask
	if o.journalDir != "" {
		j, r, err := farm.OpenJournal(o.journalDir, farm.TasksFingerprint(tasks), o.resume)
		if err != nil {
			return nil, false, err
		}
		defer j.Close()
		sup.Journal = j
		resumed = r
		if o.resume && len(r) > 0 {
			fmt.Fprintf(stderr, "phfarm: resumed %d settled tasks from journal\n", len(r))
		}
	}
	results, report, interrupted, err := farm.RunSupervised(ctx, sup, tasks, resumed)
	if err != nil {
		return results, interrupted, err
	}
	if report.Deaths != nil || report.Retried > 0 {
		fmt.Fprintf(stderr, "phfarm: fleet: %d worker deaths, %d respawns, %d tasks retried, %d quarantined\n",
			len(report.Deaths), report.Respawns, report.Retried, len(report.Quarantined))
	}
	if o.fleetPath != "" {
		data, merr := json.MarshalIndent(report, "", "  ")
		if merr != nil {
			return results, interrupted, fmt.Errorf("phfarm: marshal fleet report: %w", merr)
		}
		if werr := os.WriteFile(o.fleetPath, append(data, '\n'), 0o644); werr != nil {
			return results, interrupted, fmt.Errorf("phfarm: write fleet report: %w", werr)
		}
	}
	return results, interrupted, nil
}

// cellConfig reconstructs the campaign.Config a single-process run of
// this cell would use — what BuildArtifact and WriteNDJSON key their
// config echoes on.
func cellConfig(base farm.TaskSpec, cov *campaign.CoverageSeed) campaign.Config {
	return campaign.Config{
		Workers:       base.Parallel,
		Seeds:         base.Seeds,
		MaxExecutions: base.MaxExecutions,
		Guided:        base.Guided,
		Collect:       true,
		KeepGoing:     base.KeepGoing,
		Explain:       base.Explain,
		EventBudget:   base.EventBudget,
		Prune:         base.Prune,
		Ranked:        base.Ranked,
		Snapshot:      base.Snapshot,
		Coverage:      cov,
	}
}

func writeNDJSON(path string, merged []campaign.Result, base farm.TaskSpec, coverage map[farm.Cell]*campaign.CoverageSeed) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("phfarm: create telemetry file: %w", err)
	}
	for _, res := range merged {
		cfg := cellConfig(base, coverage[farm.Cell{Target: res.Target, Strategy: res.Strategy}])
		if err := campaign.WriteNDJSON(f, res, cfg); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func printMatrix(w io.Writer, targets, strategies []string, merged []campaign.Result, multiSeed bool) {
	byKey := map[string]campaign.Result{}
	for _, r := range merged {
		byKey[r.Target+"/"+r.Strategy] = r
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "bug\t")
	for _, s := range strategies {
		fmt.Fprintf(tw, "%s\t", s)
	}
	fmt.Fprintln(tw)
	for _, t := range targets {
		fmt.Fprintf(tw, "%s\t", t)
		for _, s := range strategies {
			r, ok := byKey[t+"/"+s]
			switch {
			case !ok:
				fmt.Fprintf(tw, "?\t")
			case r.Detected && multiSeed:
				fmt.Fprintf(tw, "YES (%d execs, seed %d)\t", r.Campaign.Executions, r.DetectedSeed)
			case r.Detected:
				fmt.Fprintf(tw, "YES (%d execs)\t", r.Campaign.Executions)
			default:
				fmt.Fprintf(tw, "no (%d execs)\t", r.Campaign.Executions)
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

func runGrid(ctx context.Context, gridPath, csvPath string, fleet fleetOpts, parallel int, stdout, stderr io.Writer) int {
	g, err := farm.LoadGrid(gridPath)
	if err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 2
	}
	exps := g.Expand(parallel)

	// Validate every cell name once before spawning anything.
	if _, err := farm.ResolveTargets(joinNames(exps[0].Tasks, func(t farm.TaskSpec) string { return t.Target }), false); err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 2
	}
	if _, err := farm.ResolveStrategies(joinNames(exps[0].Tasks, func(t farm.TaskSpec) string { return t.Strategy }), g.RandomSeed, g.RandomN); err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 2
	}

	var tasks []farm.TaskSpec
	var expIdx []int
	for ei, exp := range exps {
		for _, t := range exp.Tasks {
			t.ID = len(tasks)
			tasks = append(tasks, t)
			expIdx = append(expIdx, ei)
		}
	}
	fmt.Fprintf(stdout, "Experiment grid %q: %d experiments, %d tasks across %d workers\n\n",
		g.Name, len(exps), len(tasks), fleet.workers)

	results, interrupted, err := dispatch(ctx, tasks, fleet, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 1
	}
	perExp := make([][]farm.TaskResult, len(exps))
	for i, tr := range results {
		perExp[expIdx[i]] = append(perExp[expIdx[i]], tr)
	}
	var rows []farm.CellSummary
	failed := false
	for ei, exp := range exps {
		merged, incomplete := farm.Collate(perExp[ei])
		rows = append(rows, farm.Summarize(g.Name, exp, merged)...)
		for _, c := range incomplete {
			fmt.Fprintf(stderr, "phfarm: experiment %s/repeat %d cell %s/%s incomplete\n",
				exp.Toggle.Name, exp.Repeat, c.Target, c.Strategy)
			failed = true
		}
	}

	farm.WriteSummaryTable(stdout, rows)
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fmt.Fprintln(stderr, "phfarm:", err)
			return 1
		}
		if err := farm.WriteCSV(f, rows); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "phfarm:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "phfarm:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\ngrid CSV: %s (%d rows)\n", csvPath, len(rows))
	}

	if interrupted {
		fmt.Fprintln(stderr, "phfarm: interrupted; partial grid results flushed")
		return 130
	}
	if failed {
		return 1
	}
	return 0
}

// joinNames collects the distinct values of one task field, in task
// order, as a comma-separated resolver spec.
func joinNames(tasks []farm.TaskSpec, field func(farm.TaskSpec) string) string {
	seen := map[string]bool{}
	out := ""
	for _, t := range tasks {
		n := field(t)
		if seen[n] {
			continue
		}
		seen[n] = true
		if out != "" {
			out += ","
		}
		out += n
	}
	return out
}
