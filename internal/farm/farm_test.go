package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"repro/internal/campaign"
)

// directRun executes one cell the single-process way, under exactly the
// config a worker would reconstruct.
func directRun(t *testing.T, spec TaskSpec) campaign.Result {
	t.Helper()
	res, err := RunTask(spec, nil)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	return res
}

// farmRun executes the cell across n in-process workers and returns the
// merged results in matrix order.
func farmRun(t *testing.T, targets, strategies []string, base TaskSpec, n int) []campaign.Result {
	t.Helper()
	tasks := Plan(targets, strategies, base)
	transports := make([]Transport, n)
	for i := range transports {
		transports[i] = NewInProcTransport()
	}
	coord := &Coordinator{}
	results, interrupted, err := coord.Run(context.Background(), transports, tasks)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if interrupted {
		t.Fatal("coordinator reported interrupt without cancellation")
	}
	merged, incomplete := Collate(results)
	if len(incomplete) > 0 {
		t.Fatalf("incomplete cells: %v", incomplete)
	}
	return merged
}

// artifactBytes is the byte-identity probe: the canonicalized artifact,
// marshaled. Byte comparison (not DeepEqual) is deliberate — it is
// exactly what the CI equivalence smoke compares, and it sidesteps
// nil-vs-empty slice differences that JSON round-trips erase.
func artifactBytes(t *testing.T, res campaign.Result, cfg campaign.Config) []byte {
	t.Helper()
	art := campaign.CanonicalizeArtifact(campaign.BuildArtifact(res, cfg))
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatalf("marshal artifact: %v", err)
	}
	return data
}

func ndjsonBytes(t *testing.T, res campaign.Result, cfg campaign.Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := campaign.WriteNDJSON(&buf, res, cfg); err != nil {
		t.Fatalf("write ndjson: %v", err)
	}
	return buf.Bytes()
}

// TestFarmByteIdentity is the tentpole invariant: for every target, a
// farmed multi-seed campaign merged from per-seed shards produces
// byte-identical canonicalized artifacts and telemetry streams to the
// single-process engine, at 1, 2, and 3 workers.
func TestFarmByteIdentity(t *testing.T) {
	base := TaskSpec{
		Strategy:      "partial-history",
		Seeds:         []int64{1, 2},
		MaxExecutions: 30,
		Parallel:      2,
	}
	for _, target := range AllTargetNames() {
		target := target
		t.Run(target, func(t *testing.T) {
			t.Parallel()
			spec := base
			spec.Target = target
			direct := directRun(t, spec)
			cfg := spec.engineConfig(nil)
			wantArt := artifactBytes(t, direct, cfg)
			wantND := ndjsonBytes(t, direct, cfg)
			for _, workers := range []int{1, 2, 3} {
				merged := farmRun(t, []string{target}, []string{"partial-history"}, spec, workers)
				if len(merged) != 1 {
					t.Fatalf("workers=%d: got %d merged cells, want 1", workers, len(merged))
				}
				if got := artifactBytes(t, merged[0], cfg); !bytes.Equal(got, wantArt) {
					t.Errorf("workers=%d: merged artifact differs from single-process run", workers)
				}
				if got := ndjsonBytes(t, merged[0], cfg); !bytes.Equal(got, wantND) {
					t.Errorf("workers=%d: merged telemetry differs from single-process run", workers)
				}
			}
		})
	}
}

// TestFarmByteIdentityGuidedExplain covers the composed modes: guided
// scheduling (deterministic per in-process pool width) plus the explain
// pass, farmed vs direct.
func TestFarmByteIdentityGuidedExplain(t *testing.T) {
	spec := TaskSpec{
		Target:        "k8s-59848",
		Strategy:      "partial-history",
		Seeds:         []int64{1, 2},
		MaxExecutions: 25,
		Parallel:      2,
		Guided:        true,
		Explain:       true,
	}
	direct := directRun(t, spec)
	cfg := spec.engineConfig(nil)
	wantArt := artifactBytes(t, direct, cfg)
	wantND := ndjsonBytes(t, direct, cfg)
	for _, workers := range []int{2, 3} {
		merged := farmRun(t, []string{spec.Target}, []string{spec.Strategy}, spec, workers)
		if got := artifactBytes(t, merged[0], cfg); !bytes.Equal(got, wantArt) {
			t.Errorf("workers=%d: guided+explain artifact differs", workers)
		}
		if got := ndjsonBytes(t, merged[0], cfg); !bytes.Equal(got, wantND) {
			t.Errorf("workers=%d: guided+explain telemetry differs", workers)
		}
	}
}

// TestFarmLearningStaysWhole: learning campaigns (cross-seed bucket
// affinity) must not be seed-sharded — they run as one task and pass
// through the merge untouched, still byte-identical to direct.
func TestFarmLearningStaysWhole(t *testing.T) {
	spec := TaskSpec{
		Target:        "cass-op-398",
		Strategy:      "partial-history",
		Seeds:         []int64{1, 2},
		MaxExecutions: 25,
		Parallel:      2,
		Prune:         true,
		Ranked:        true,
	}
	tasks := Plan([]string{spec.Target}, []string{spec.Strategy}, spec)
	if len(tasks) != 1 {
		t.Fatalf("learning cell sharded into %d tasks, want 1", len(tasks))
	}
	if !reflect.DeepEqual(tasks[0].Seeds, spec.Seeds) {
		t.Fatalf("learning task seeds = %v, want full sweep %v", tasks[0].Seeds, spec.Seeds)
	}
	direct := directRun(t, spec)
	cfg := spec.engineConfig(nil)
	merged := farmRun(t, []string{spec.Target}, []string{spec.Strategy}, spec, 2)
	if !bytes.Equal(artifactBytes(t, merged[0], cfg), artifactBytes(t, direct, cfg)) {
		t.Error("learning cell artifact differs from single-process run")
	}
}

func TestPlanShardsPerSeed(t *testing.T) {
	base := TaskSpec{Seeds: []int64{1, 2, 3}, MaxExecutions: 10}
	tasks := Plan([]string{"a", "b"}, []string{"x"}, base)
	if len(tasks) != 6 {
		t.Fatalf("got %d tasks, want 6", len(tasks))
	}
	for i, task := range tasks {
		if task.ID != i {
			t.Errorf("task %d has ID %d; IDs must be dense", i, task.ID)
		}
		if len(task.Seeds) != 1 {
			t.Errorf("task %d carries %d seeds, want 1", i, len(task.Seeds))
		}
	}
	// Cell-major order: all of a/x's seeds before any of b/x's.
	if tasks[0].Target != "a" || tasks[2].Target != "a" || tasks[3].Target != "b" {
		t.Errorf("tasks not cell-major: %+v", tasks)
	}
	// Empty seed list normalizes to the engine default {1}.
	one := Plan([]string{"a"}, []string{"x"}, TaskSpec{})
	if len(one) != 1 || !reflect.DeepEqual(one[0].Seeds, []int64{1}) {
		t.Errorf("empty seeds: got %+v, want one task with seeds [1]", one)
	}
}

// TestMergeCellSynthetic pins the merge rules on hand-built parts:
// bucket base selection, count summing, stat sums, and the coverage
// recount.
func TestMergeCellSynthetic(t *testing.T) {
	partA := campaign.Result{
		Target: "tgt", Strategy: "str",
		Seeds: []campaign.SeedResult{{Seed: 1}},
		Buckets: []campaign.FailureBucket{
			{Signature: "aa", Oracles: []string{"o1"}, Count: 2, ExampleSeed: 1, Detected: true, MinimalPlan: "min-a"},
		},
		Outcomes: []campaign.PlanOutcome{
			{Seed: 1, Index: -1, Class: "nop", Signature: "s1"},
			{Seed: 1, Index: 0, Class: "crash", Signature: "s2"},
		},
		Stats: campaign.Stats{Seeds: 1, Detections: 1, ViolatingExecutions: 2, FailedExecutions: 1},
	}
	partB := campaign.Result{
		Target: "tgt", Strategy: "str",
		Seeds: []campaign.SeedResult{{Seed: 2}},
		Buckets: []campaign.FailureBucket{
			// Same signature seen under the later seed: its example and
			// minimal plan must lose to partA's, its count must add.
			{Signature: "aa", Oracles: []string{"o1"}, Count: 3, ExampleSeed: 2, Detected: true, MinimalPlan: "min-b"},
			{Signature: "bb", Oracles: []string{"o2"}, Count: 1, ExampleSeed: 2},
		},
		Outcomes: []campaign.PlanOutcome{
			{Seed: 2, Index: -1, Class: "nop", Signature: "s1"},
			{Seed: 2, Index: 0, Class: "stale", Signature: "s3"},
		},
		Stats: campaign.Stats{Seeds: 1, Detections: 2, ViolatingExecutions: 1, HungExecutions: 1},
	}
	partA.Seeds[0].Campaign.Executions = 5
	partB.Seeds[0].Campaign.Executions = 7
	partB.Seeds[0].Campaign.Detected = true
	partB.Detected = true
	partB.DetectedSeed = 2

	m := MergeCell([]campaign.Result{partA, partB})
	if !m.Detected || m.DetectedSeed != 2 {
		t.Errorf("Detected/DetectedSeed = %v/%d, want true/2", m.Detected, m.DetectedSeed)
	}
	// PrimaryCampaign: seed 2 detects after seed 1 spent 5 executions.
	if m.Campaign.Executions != 12 {
		t.Errorf("Campaign.Executions = %d, want 12 (5 spent + 7)", m.Campaign.Executions)
	}
	if len(m.Buckets) != 2 {
		t.Fatalf("got %d buckets, want 2", len(m.Buckets))
	}
	aa := m.Buckets[0]
	if aa.Signature != "aa" || aa.Count != 5 || aa.ExampleSeed != 1 || aa.MinimalPlan != "min-a" {
		t.Errorf("bucket aa merged wrong: %+v", aa)
	}
	if m.Stats.Seeds != 2 || m.Stats.Detections != 3 || m.Stats.ViolatingExecutions != 3 ||
		m.Stats.FailedExecutions != 1 || m.Stats.HungExecutions != 1 {
		t.Errorf("stat sums wrong: %+v", m.Stats)
	}
	// Coverage recount: classes {nop,crash,stale}, sigs {s1,s2,s3}.
	if m.Stats.CoverageClasses != 3 || m.Stats.NovelSignatures != 3 {
		t.Errorf("coverage recount = %d classes / %d sigs, want 3/3", m.Stats.CoverageClasses, m.Stats.NovelSignatures)
	}
	if len(m.Outcomes) != 4 {
		t.Errorf("outcomes not concatenated: %d", len(m.Outcomes))
	}
}

// TestRecordStreaming: the per-execution records a worker streams are
// exactly the task result's collected outcomes, in order.
func TestRecordStreaming(t *testing.T) {
	spec := TaskSpec{
		Target: "k8s-56261", Strategy: "crashtuner",
		Seeds: []int64{1}, MaxExecutions: 15, Parallel: 2,
	}
	tasks := Plan([]string{spec.Target}, []string{spec.Strategy}, spec)
	var mu sync.Mutex
	var streamed []campaign.PlanOutcome
	coord := &Coordinator{OnRecord: func(_ TaskSpec, out campaign.PlanOutcome) {
		mu.Lock()
		streamed = append(streamed, out)
		mu.Unlock()
	}}
	results, _, err := coord.Run(context.Background(), []Transport{NewInProcTransport()}, tasks)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	res := results[0].Res
	if res == nil {
		t.Fatal("task did not complete")
	}
	if len(streamed) == 0 {
		t.Fatal("no records streamed")
	}
	// Streamed records match collected outcomes modulo wall time (the
	// record is built before the outcome lands in the result).
	if len(streamed) != len(res.Outcomes) {
		t.Fatalf("streamed %d records, result has %d outcomes", len(streamed), len(res.Outcomes))
	}
	for i := range streamed {
		a, b := streamed[i], res.Outcomes[i]
		a.WallMicros, b.WallMicros = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("record %d differs:\nstreamed: %+v\nresult:   %+v", i, a, b)
		}
	}
}

// TestCoordinatorInterrupt: cancelling the context mid-run kills the
// fleet and returns partial-but-valid results with interrupted=true.
func TestCoordinatorInterrupt(t *testing.T) {
	base := TaskSpec{
		Strategy: "partial-history", Seeds: []int64{1, 2, 3, 4},
		MaxExecutions: 100, Parallel: 1,
	}
	tasks := Plan([]string{"k8s-59848", "cass-op-400"}, []string{"partial-history"}, base)
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	coord := &Coordinator{OnRecord: func(TaskSpec, campaign.PlanOutcome) {
		once.Do(cancel) // first streamed record pulls the plug
	}}
	results, interrupted, err := coord.Run(ctx, []Transport{NewInProcTransport()}, tasks)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if !interrupted {
		t.Fatal("expected interrupted=true")
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results, want %d", len(results), len(tasks))
	}
	completed := 0
	for _, tr := range results {
		if tr.Res != nil {
			completed++
		}
	}
	if completed == len(tasks) {
		t.Error("every task completed despite the interrupt")
	}
	// Whatever did complete must still collate into valid cells.
	merged, incomplete := Collate(results)
	if len(merged)+len(incomplete) == 0 {
		t.Error("collate lost all cells")
	}
}

// TestCollateDropsIncompleteCells: a cell with a missing shard must not
// surface as a silently truncated campaign.
func TestCollateDropsIncompleteCells(t *testing.T) {
	mk := func(target string, seed int64, ok bool) TaskResult {
		tr := TaskResult{Spec: TaskSpec{Target: target, Strategy: "s", Seeds: []int64{seed}}}
		if ok {
			tr.Res = &campaign.Result{
				Target: target, Strategy: "s",
				Seeds: []campaign.SeedResult{{Seed: seed}},
			}
		}
		return tr
	}
	merged, incomplete := Collate([]TaskResult{
		mk("a", 1, true), mk("a", 2, true),
		mk("b", 1, true), mk("b", 2, false),
	})
	if len(merged) != 1 || merged[0].Target != "a" {
		t.Fatalf("merged = %+v, want just cell a", merged)
	}
	if len(incomplete) != 1 || incomplete[0].Target != "b" {
		t.Fatalf("incomplete = %+v, want just cell b", incomplete)
	}
}
