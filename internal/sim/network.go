package sim

import (
	"fmt"
	"sort"
)

// NodeID names a simulated process (a store replica, an apiserver, a
// kubelet, ...). IDs are unique within one World.
type NodeID string

// Message is a unit of communication between simulated processes. Payloads
// are arbitrary Go values; the simulated network never serializes them, but
// components must treat received payloads as immutable (the store and
// apiservers deep-copy objects at their boundaries).
type Message struct {
	Seq     uint64 // unique, monotonically increasing per network
	From    NodeID
	To      NodeID
	Kind    string // coarse classification used by interceptors ("watch", "rpc", ...)
	Payload any
	SentAt  Time
}

func (m *Message) String() string {
	return fmt.Sprintf("#%d %s->%s %s @%s", m.Seq, m.From, m.To, m.Kind, m.SentAt)
}

// Handler receives messages addressed to a node.
type Handler interface {
	HandleMessage(m *Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m *Message)

// HandleMessage calls f(m).
func (f HandlerFunc) HandleMessage(m *Message) { f(m) }

// Verdict is an interceptor's ruling on an in-flight message.
type Verdict int

const (
	// Pass lets the message continue to later interceptors / delivery.
	Pass Verdict = iota
	// Drop discards the message permanently (models a lost notification).
	Drop
	// Hold parks the message; it is delivered only when Network.Release is
	// called (models delayed cache updates / staleness injection).
	Hold
	// Delay delivers the message after Decision.Delay extra virtual time.
	Delay
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Hold:
		return "hold"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Decision is returned by an Interceptor for each message.
type Decision struct {
	Verdict Verdict
	Delay   Duration // extra delay when Verdict == Delay
}

// Interceptor inspects every message before delivery. The perturbation
// engine (internal/core) and the fault baselines implement this interface;
// it is the paper's "regulating how (H', S') advances at one component".
type Interceptor interface {
	Intercept(m *Message) Decision
}

// InterceptorFunc adapts a function to the Interceptor interface.
type InterceptorFunc func(m *Message) Decision

// Intercept calls f(m).
func (f InterceptorFunc) Intercept(m *Message) Decision { return f(m) }

// Observer is notified of message lifecycle events; the trace recorder
// implements it.
type Observer interface {
	OnSend(m *Message)
	OnDeliver(m *Message)
	OnDrop(m *Message, reason string)
}

// DeliveryGate rules on a message at DELIVERY time — after partition and
// receiver-down checks, immediately before observers and the handler run.
// This is the systematic explorer's choice-point surface: unlike an
// Interceptor (which sees messages at send time, before crashes and
// partitions have had their say), a gate sees exactly the arrival stream
// the receiver would observe, so occurrence counting at the gate matches
// the trace recorder's delivery coordinates.
//
// Every registered gate sees every arriving message, in registration
// order, and the first non-Pass verdict wins. Evaluating all gates (rather
// than short-circuiting) keeps each gate's internal counters a pure
// function of the arrival stream, independent of what other gates decide
// about the same message. Hold is not a valid gate verdict and is treated
// as Pass. A Delay verdict re-enqueues the message; it will re-enter every
// gate on re-arrival, so stateful gates must remember ruled-on sequence
// numbers to avoid re-matching their own deferral.
type DeliveryGate interface {
	OnArrival(m *Message) Decision
}

// DeliveryGateFunc adapts a function to the DeliveryGate interface.
type DeliveryGateFunc func(m *Message) Decision

// OnArrival calls f(m).
func (f DeliveryGateFunc) OnArrival(m *Message) Decision { return f(m) }

// Location places a node in the physical topology: the rack it sits in,
// an availability zone, and a datacenter. Empty fields mean "unplaced";
// a node with a zero Location is outside the topology entirely and keeps
// the network's base latency on all of its links.
type Location struct {
	Rack string
	Zone string
	DC   string
}

// IsZero reports whether the location is entirely unset.
func (l Location) IsZero() bool { return l == Location{} }

func (l Location) String() string {
	return fmt.Sprintf("dc=%s zone=%s rack=%s", l.DC, l.Zone, l.Rack)
}

// TopologyLatency is the topology-derived one-way latency ladder:
// intra-rack < intra-DC < cross-DC. A zero value disables topology
// latencies (every link uses the network's base latency). Latency class
// selection is a pure function of the two endpoints' Locations — healthy
// links draw zero RNG beyond the base jitter, so unperturbed runs on
// unlabeled worlds stay byte-identical with this feature compiled in.
type TopologyLatency struct {
	IntraRack Duration
	IntraDC   Duration
	CrossDC   Duration
}

// active reports whether any class latency is configured.
func (t TopologyLatency) active() bool { return t != TopologyLatency{} }

// classFor returns the class latency between two placed endpoints:
// different DCs are CrossDC, the same non-empty rack is IntraRack, and
// everything else (same DC, different or unknown racks) is IntraDC.
func (t TopologyLatency) classFor(a, b Location) Duration {
	if a.DC != b.DC {
		return t.CrossDC
	}
	if a.Rack != "" && a.Rack == b.Rack {
		return t.IntraRack
	}
	return t.IntraDC
}

type linkKey struct{ from, to NodeID }

type linkState struct {
	partitioned bool
	extraDelay  Duration
}

// LinkQuality models a degraded-but-alive (gray-failure) link: latency
// inflation, probabilistic loss, duplication, and bounded reorder. All
// randomness is drawn from the kernel RNG, so a given seed yields the same
// degraded schedule every run. A zero LinkQuality is a healthy link.
type LinkQuality struct {
	ExtraLatency   Duration // added to every message's one-way latency
	ExtraJitter    Duration // extra uniform jitter in [0, ExtraJitter)
	DropPercent    int      // probability (0-100) a message is lost
	DupPercent     int      // probability (0-100) a message is delivered twice
	ReorderPercent int      // probability (0-100) a message may overtake/lag its stream
	ReorderDelay   Duration // bound on reorder displacement (default 10ms)
}

// active reports whether any degradation is configured.
func (q LinkQuality) active() bool {
	return q.ExtraLatency > 0 || q.ExtraJitter > 0 ||
		q.DropPercent > 0 || q.DupPercent > 0 || q.ReorderPercent > 0
}

func (q LinkQuality) String() string {
	return fmt.Sprintf("lat+%s jit+%s drop%d%% dup%d%% reorder%d%%",
		q.ExtraLatency, q.ExtraJitter, q.DropPercent, q.DupPercent, q.ReorderPercent)
}

// NetStats aggregates network-level counters.
type NetStats struct {
	Sent        uint64
	Delivered   uint64
	Dropped     uint64
	Held        uint64
	Released    uint64
	PartitionRx uint64 // drops due to partitions
	DownRx      uint64 // drops due to crashed receivers
	FlakyDrops  uint64 // drops due to LinkQuality.DropPercent
	Duplicated  uint64 // extra deliveries due to LinkQuality.DupPercent
	Reordered   uint64 // messages released from FIFO ordering by LinkQuality.ReorderPercent
}

// Network routes messages between registered nodes with per-link latency,
// partitions, and interceptor hooks. All delivery happens through kernel
// events, so interleavings are deterministic.
type Network struct {
	k       *Kernel
	nodes   map[NodeID]Handler
	down    map[NodeID]bool
	links   map[linkKey]linkState
	latency Duration
	jitter  Duration
	seq     uint64
	held    map[uint64]*Message
	lastAt  map[linkKey]Time // per-link FIFO frontier (stream ordering)
	quality map[linkKey]LinkQuality
	locs    map[NodeID]Location
	topo    TopologyLatency
	icpts   []Interceptor
	gates   []DeliveryGate
	obs     []Observer
	stats   NetStats

	// msgChunk is the arena messages are allocated from (one make per
	// msgChunkSize sends). Messages are never reused — holders (held map,
	// observers) stay valid — so handing out chunk pointers is safe.
	msgChunk []Message
}

const msgChunkSize = 128

func (n *Network) newMessage() *Message {
	if len(n.msgChunk) == 0 {
		n.msgChunk = make([]Message, msgChunkSize)
	}
	m := &n.msgChunk[0]
	n.msgChunk = n.msgChunk[1:]
	return m
}

// NewNetwork creates a network on kernel k with the given base one-way
// latency and uniform jitter in [0, jitter).
func NewNetwork(k *Kernel, latency, jitter Duration) *Network {
	return &Network{
		k:       k,
		nodes:   make(map[NodeID]Handler),
		down:    make(map[NodeID]bool),
		links:   make(map[linkKey]linkState),
		latency: latency,
		jitter:  jitter,
		held:    make(map[uint64]*Message),
		lastAt:  make(map[linkKey]Time),
		quality: make(map[linkKey]LinkQuality),
		locs:    make(map[NodeID]Location),
	}
}

// Kernel returns the kernel driving this network.
func (n *Network) Kernel() *Kernel { return n.k }

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() NetStats { return n.stats }

// Register attaches handler h as node id. Registering an existing id
// replaces its handler (used when a process restarts with fresh state).
func (n *Network) Register(id NodeID, h Handler) {
	n.nodes[id] = h
	delete(n.down, id)
}

// Unregister removes a node entirely.
func (n *Network) Unregister(id NodeID) {
	delete(n.nodes, id)
	delete(n.down, id)
}

// SetDown marks a node crashed (true) or alive (false). Messages to a down
// node are dropped, like packets to a dead host.
func (n *Network) SetDown(id NodeID, down bool) {
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// Down reports whether a node is marked crashed.
func (n *Network) Down(id NodeID) bool { return n.down[id] }

// Nodes returns the sorted IDs of all registered nodes.
func (n *Network) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AddInterceptor appends an interceptor; interceptors run in registration
// order and the first non-Pass decision wins.
func (n *Network) AddInterceptor(i Interceptor) { n.icpts = append(n.icpts, i) }

// RemoveInterceptors clears all interceptors.
func (n *Network) RemoveInterceptors() { n.icpts = nil }

// AddDeliveryGate appends a delivery gate; gates run in registration order
// on every arriving message and the first non-Pass verdict wins.
func (n *Network) AddDeliveryGate(g DeliveryGate) { n.gates = append(n.gates, g) }

// RemoveDeliveryGates clears all delivery gates.
func (n *Network) RemoveDeliveryGates() { n.gates = nil }

// AddObserver appends a lifecycle observer.
func (n *Network) AddObserver(o Observer) { n.obs = append(n.obs, o) }

// Partition cuts both directions between a and b.
func (n *Network) Partition(a, b NodeID) {
	n.setPartition(a, b, true)
	n.setPartition(b, a, true)
}

// Heal restores both directions between a and b.
func (n *Network) Heal(a, b NodeID) {
	n.setPartition(a, b, false)
	n.setPartition(b, a, false)
}

// PartitionOneWay cuts only messages from a to b.
func (n *Network) PartitionOneWay(a, b NodeID) { n.setPartition(a, b, true) }

// HealOneWay restores only messages from a to b.
func (n *Network) HealOneWay(a, b NodeID) { n.setPartition(a, b, false) }

func (n *Network) setPartition(from, to NodeID, v bool) {
	key := linkKey{from, to}
	st := n.links[key]
	st.partitioned = v
	n.links[key] = st
}

// Partitioned reports whether the directed link from->to is cut.
func (n *Network) Partitioned(from, to NodeID) bool {
	return n.links[linkKey{from, to}].partitioned
}

// SetLinkDelay adds extra one-way delay on the directed link from->to.
func (n *Network) SetLinkDelay(from, to NodeID, d Duration) {
	key := linkKey{from, to}
	st := n.links[key]
	st.extraDelay = d
	n.links[key] = st
}

// SetLinkQuality degrades both directions between a and b. A zero-value
// LinkQuality restores the link to healthy (equivalent to ClearLinkQuality).
func (n *Network) SetLinkQuality(a, b NodeID, q LinkQuality) {
	n.SetLinkQualityOneWay(a, b, q)
	n.SetLinkQualityOneWay(b, a, q)
}

// SetLinkQualityOneWay degrades only messages from->to.
func (n *Network) SetLinkQualityOneWay(from, to NodeID, q LinkQuality) {
	key := linkKey{from, to}
	if !q.active() {
		delete(n.quality, key)
		return
	}
	n.quality[key] = q
}

// ClearLinkQuality restores both directions between a and b to healthy.
func (n *Network) ClearLinkQuality(a, b NodeID) {
	delete(n.quality, linkKey{a, b})
	delete(n.quality, linkKey{b, a})
}

// LinkQualityOf returns the degradation configured on the directed link
// from->to (the zero value if the link is healthy).
func (n *Network) LinkQualityOf(from, to NodeID) LinkQuality {
	return n.quality[linkKey{from, to}]
}

// SetLocation places node id in the topology. A zero Location removes the
// placement (the node reverts to base latency on all links).
func (n *Network) SetLocation(id NodeID, loc Location) {
	if loc.IsZero() {
		delete(n.locs, id)
		return
	}
	n.locs[id] = loc
}

// LocationOf returns a node's placement (the zero value if unplaced).
func (n *Network) LocationOf(id NodeID) Location { return n.locs[id] }

// SetTopologyLatency installs the topology latency ladder. A zero value
// disables topology-derived latencies.
func (n *Network) SetTopologyLatency(t TopologyLatency) { n.topo = t }

// Topology returns the configured latency ladder.
func (n *Network) Topology() TopologyLatency { return n.topo }

// baseLatency returns the one-way base latency for the directed link
// from->to: the topology class latency when a ladder is configured and
// both endpoints are placed, the network-wide base otherwise. Pure
// lookup — no RNG is consumed, so topology-free worlds keep the exact
// draw sequence they always had.
func (n *Network) baseLatency(from, to NodeID) Duration {
	if n.topo.active() {
		if la, ok := n.locs[from]; ok {
			if lb, ok := n.locs[to]; ok {
				return n.topo.classFor(la, lb)
			}
		}
	}
	return n.latency
}

// reorderBound returns the displacement bound for reorder/duplicate
// scheduling on a degraded link.
func (q LinkQuality) reorderBound() Duration {
	if q.ReorderDelay > 0 {
		return q.ReorderDelay
	}
	return 10 * Millisecond
}

// Send enqueues a message for delivery. It returns the message's unique
// sequence number (useful for Release after a Hold verdict).
func (n *Network) Send(from, to NodeID, kind string, payload any) uint64 {
	n.seq++
	m := n.newMessage()
	*m = Message{Seq: n.seq, From: from, To: to, Kind: kind, Payload: payload, SentAt: n.k.Now()}
	n.stats.Sent++
	for _, o := range n.obs {
		o.OnSend(m)
	}

	if n.links[linkKey{from, to}].partitioned {
		n.stats.Dropped++
		n.stats.PartitionRx++
		n.drop(m, "partitioned")
		return m.Seq
	}

	var extra Duration
	for _, ic := range n.icpts {
		d := ic.Intercept(m)
		switch d.Verdict {
		case Pass:
			continue
		case Drop:
			n.stats.Dropped++
			n.drop(m, "intercepted")
			return m.Seq
		case Hold:
			n.stats.Held++
			n.held[m.Seq] = m
			return m.Seq
		case Delay:
			extra += d.Delay
		}
	}

	key := linkKey{from, to}
	// Gray-failure link quality. Every RNG draw below is gated on the link
	// actually being degraded, so runs without LinkQuality consume exactly
	// the RNG sequence they always did — perturbation-free executions stay
	// byte-identical with or without this feature compiled in.
	q, degraded := n.quality[key]
	if degraded && q.DropPercent > 0 && n.k.Rand().Intn(100) < q.DropPercent {
		n.stats.Dropped++
		n.stats.FlakyDrops++
		n.drop(m, "link-drop")
		return m.Seq
	}

	lat := n.baseLatency(from, to) + n.links[key].extraDelay + extra
	if n.jitter > 0 {
		lat += Duration(n.k.Rand().Int63n(int64(n.jitter)))
	}
	if degraded {
		lat += q.ExtraLatency
		if q.ExtraJitter > 0 {
			lat += Duration(n.k.Rand().Int63n(int64(q.ExtraJitter)))
		}
	}

	// Per-link FIFO: messages between the same pair model an ordered
	// stream (TCP); jitter and interceptor delays may stretch the link but
	// never reorder it. Reordering is only possible via Hold/Release — a
	// deliberate perturbation — or a degraded link's ReorderPercent below.
	deliverAt := n.k.Now().Add(lat)
	if degraded && q.ReorderPercent > 0 && n.k.Rand().Intn(100) < q.ReorderPercent {
		// Bounded reorder: this message escapes the FIFO frontier. It
		// neither respects nor advances lastAt, so it can overtake earlier
		// in-flight messages or lag later ones, displaced by at most
		// reorderBound extra time.
		deliverAt = deliverAt.Add(Duration(n.k.Rand().Int63n(int64(q.reorderBound())) + 1))
		n.stats.Reordered++
	} else {
		if prev := n.lastAt[key]; deliverAt < prev {
			deliverAt = prev
		}
		n.lastAt[key] = deliverAt
	}
	n.k.At(deliverAt, func() { n.deliver(m) })

	if degraded && q.DupPercent > 0 && n.k.Rand().Intn(100) < q.DupPercent {
		// Duplicate delivery: the same message arrives a second time a
		// bounded interval after the first copy (at-least-once delivery,
		// e.g. a retried watch notification).
		dupAt := deliverAt.Add(Duration(n.k.Rand().Int63n(int64(q.reorderBound())) + 1))
		n.stats.Duplicated++
		n.k.At(dupAt, func() { n.deliver(m) })
	}
	return m.Seq
}

// Release delivers a previously held message immediately. It reports whether
// the sequence number referred to a held message.
func (n *Network) Release(seq uint64) bool {
	m, ok := n.held[seq]
	if !ok {
		return false
	}
	delete(n.held, seq)
	n.stats.Released++
	n.k.Schedule(0, func() { n.deliver(m) })
	return true
}

// ReleaseAll delivers every held message (in sequence order) and returns how
// many were released.
func (n *Network) ReleaseAll() int {
	seqs := make([]uint64, 0, len(n.held))
	for s := range n.held {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		n.Release(s)
	}
	return len(seqs)
}

// HeldCount returns the number of currently held messages.
func (n *Network) HeldCount() int { return len(n.held) }

func (n *Network) deliver(m *Message) {
	if n.links[linkKey{m.From, m.To}].partitioned {
		n.stats.Dropped++
		n.stats.PartitionRx++
		n.drop(m, "partitioned-in-flight")
		return
	}
	if n.down[m.To] {
		n.stats.Dropped++
		n.stats.DownRx++
		n.drop(m, "receiver-down")
		return
	}
	h, ok := n.nodes[m.To]
	if !ok {
		n.stats.Dropped++
		n.drop(m, "no-such-node")
		return
	}
	if len(n.gates) > 0 {
		// All gates see the arrival (their counters track the same stream);
		// the first non-Pass verdict decides the message's fate.
		verdict, delay := Pass, Duration(0)
		for _, g := range n.gates {
			d := g.OnArrival(m)
			if d.Verdict != Pass && verdict == Pass {
				verdict, delay = d.Verdict, d.Delay
			}
		}
		switch verdict {
		case Drop:
			n.stats.Dropped++
			n.drop(m, "gated")
			return
		case Delay:
			if delay <= 0 {
				delay = Millisecond
			}
			n.k.At(n.k.Now().Add(delay), func() { n.deliver(m) })
			return
		}
	}
	n.stats.Delivered++
	for _, o := range n.obs {
		o.OnDeliver(m)
	}
	h.HandleMessage(m)
}

func (n *Network) drop(m *Message, reason string) {
	for _, o := range n.obs {
		o.OnDrop(m, reason)
	}
}
