package controller

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func TestQueueProcessesInOrder(t *testing.T) {
	k := sim.NewKernel(1)
	var got []string
	q := NewQueue(k, DefaultQueueConfig(), ReconcilerFunc(func(key string) (Result, error) {
		got = append(got, key)
		return Result{}, nil
	}))
	q.Add("a")
	q.Add("b")
	q.Add("a") // dedup while queued
	k.Drain()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
	if q.Processed != 2 {
		t.Fatalf("processed = %d", q.Processed)
	}
}

func TestQueueReaddDuringProcessing(t *testing.T) {
	k := sim.NewKernel(1)
	count := 0
	var q *Queue
	q = NewQueue(k, DefaultQueueConfig(), ReconcilerFunc(func(key string) (Result, error) {
		count++
		if count == 1 {
			q.Add(key) // re-add while being processed: must run again
		}
		return Result{}, nil
	}))
	q.Add("x")
	k.Drain()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestQueueErrorBackoff(t *testing.T) {
	k := sim.NewKernel(1)
	attempts := 0
	q := NewQueue(k, DefaultQueueConfig(), ReconcilerFunc(func(key string) (Result, error) {
		attempts++
		if attempts < 4 {
			return Result{}, errors.New("boom")
		}
		return Result{}, nil
	}))
	q.Add("x")
	k.Drain()
	if attempts != 4 {
		t.Fatalf("attempts = %d", attempts)
	}
	if q.Errors != 3 {
		t.Fatalf("errors = %d", q.Errors)
	}
	// Exponential backoff: successful run happens after cumulative delays.
	if k.Now() < sim.Time(5*sim.Millisecond+10*sim.Millisecond+20*sim.Millisecond) {
		t.Fatalf("backoff too short: finished at %v", k.Now())
	}
}

func TestQueueBackoffCapped(t *testing.T) {
	cfg := QueueConfig{BaseDelay: sim.Millisecond, BaseBackoff: 100 * sim.Millisecond, MaxBackoff: 200 * sim.Millisecond}
	k := sim.NewKernel(1)
	attempts := 0
	q := NewQueue(k, cfg, ReconcilerFunc(func(key string) (Result, error) {
		attempts++
		if attempts < 6 {
			return Result{}, errors.New("boom")
		}
		return Result{}, nil
	}))
	q.Add("x")
	k.SetMaxSteps(10000)
	k.Drain()
	if attempts != 6 {
		t.Fatalf("attempts = %d", attempts)
	}
	// 5 failures: 100 + 200 + 200 + 200 + 200 = 900ms minimum.
	if k.Now() > sim.Time(2*sim.Second) {
		t.Fatalf("backoff not capped: %v", k.Now())
	}
}

func TestQueueRequeueAfter(t *testing.T) {
	k := sim.NewKernel(1)
	runs := 0
	q := NewQueue(k, DefaultQueueConfig(), ReconcilerFunc(func(key string) (Result, error) {
		runs++
		if runs == 1 {
			return Result{Requeue: true, RequeueAfter: 50 * sim.Millisecond}, nil
		}
		return Result{}, nil
	}))
	q.Add("x")
	k.Drain()
	if runs != 2 {
		t.Fatalf("runs = %d", runs)
	}
	if k.Now() < sim.Time(50*sim.Millisecond) {
		t.Fatalf("requeue too early: %v", k.Now())
	}
}

func TestQueueStop(t *testing.T) {
	k := sim.NewKernel(1)
	runs := 0
	q := NewQueue(k, DefaultQueueConfig(), ReconcilerFunc(func(key string) (Result, error) {
		runs++
		return Result{Requeue: true}, nil
	}))
	q.Add("x")
	k.Schedule(20*sim.Millisecond, q.Stop)
	k.SetMaxSteps(100000)
	k.Drain()
	if runs == 0 {
		t.Fatal("never ran")
	}
	final := runs
	k.SetMaxSteps(0)
	q.Add("y")
	k.Drain()
	if runs != final {
		t.Fatal("queue processed after Stop")
	}
}

func TestEnqueueHandler(t *testing.T) {
	k := sim.NewKernel(1)
	var got []string
	q := NewQueue(k, DefaultQueueConfig(), ReconcilerFunc(func(key string) (Result, error) {
		got = append(got, key)
		return Result{}, nil
	}))
	h := EnqueueHandler{Queue: q}
	pod := cluster.NewPod("p1", "u1", cluster.PodSpec{})
	h.OnAdd(pod)
	k.Drain()
	h.OnUpdate(pod, pod)
	k.Drain()
	h.OnDelete(pod)
	k.Drain()
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}
