package apiserver

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/store"
)

// Snapshot captures an apiserver's watch-cache state at a checkpoint. The
// retained event window is shared copy-on-write (capped slice; applyOne's
// append reallocates, and trims always allocate fresh). Cached KVs share
// their value bytes — the apiserver never mutates a cached value in place,
// it installs fresh KV structs.
type Snapshot struct {
	ID          sim.NodeID
	Cfg         Config
	Down        bool
	Ready       bool
	Epoch       uint64
	Cache       map[string]store.KV
	CachedRev   int64
	Window      []history.Event // logical window (head already trimmed); cap == len; shared with the source server
	MinStartRev int64
	Subs        []ClientSubSnapshot // sorted by subscription key
	StoreSubID  uint64
	LastEventAt sim.Time
	RPCNext     uint64 // request-ID counter of the store-facing RPC client
}

// ClientSubSnapshot describes one client watch subscription.
type ClientSubSnapshot struct {
	SubID    uint64
	Client   sim.NodeID
	Kind     cluster.Kind
	LastSent int64
}

// Snapshot captures the server's state.
func (s *Server) Snapshot() *Snapshot {
	snap := &Snapshot{
		ID:          s.id,
		Cfg:         s.cfg,
		Down:        s.down,
		Ready:       s.ready,
		Epoch:       s.epoch,
		Cache:       make(map[string]store.KV, len(s.cache)),
		CachedRev:   s.cachedRev,
		Window:      s.window[s.winHead:len(s.window):len(s.window)],
		MinStartRev: s.minStartRev,
		StoreSubID:  s.storeSubID,
		LastEventAt: s.lastEventAt,
		RPCNext:     s.rpcCl.Next(),
	}
	for k, kv := range s.cache {
		snap.Cache[k] = kv
	}
	for _, sk := range sortedSubKeys(s.subs) {
		sub := s.subs[sk]
		snap.Subs = append(snap.Subs, ClientSubSnapshot{
			SubID:    sub.subID,
			Client:   sub.client,
			Kind:     sub.kind,
			LastSent: sub.lastSent,
		})
	}
	return snap
}

// Restore reconstructs an apiserver from a snapshot inside world w without
// bootstrapping or scheduling: the watch cache, subscriptions, epoch, and
// RPC counters come straight from the snapshot; pending timers (the resync
// liveness firing) are re-installed by the restore orchestration via
// Rearm.
func Restore(w *sim.World, snap *Snapshot) *Server {
	s := &Server{
		id:          snap.ID,
		world:       w,
		cfg:         snap.Cfg,
		down:        snap.Down,
		ready:       snap.Ready,
		epoch:       snap.Epoch,
		cache:       make(map[string]store.KV, len(snap.Cache)),
		cachedRev:   snap.CachedRev,
		window:      snap.Window,
		minStartRev: snap.MinStartRev,
		subs:        make(map[string]*clientSub, len(snap.Subs)),
		storeSubID:  snap.StoreSubID,
		lastEventAt: snap.LastEventAt,
	}
	for k, kv := range snap.Cache {
		s.cache[k] = kv
	}
	// Serving-path acceleration state (per-kind key index, decode memo,
	// sub indexes) is rebuildable and deliberately not part of snapshots.
	s.rebuildKindIndex()
	for _, sub := range snap.Subs {
		key := fmt.Sprintf("%s/%d", sub.Client, sub.SubID)
		s.subs[key] = &clientSub{
			key:      key,
			subID:    sub.SubID,
			client:   sub.Client,
			kind:     sub.Kind,
			lastSent: sub.LastSent,
		}
	}
	s.rpcSrv = sim.NewRPCServer(w.Network(), s.id)
	s.rpcCl = sim.NewRPCClient(w.Network(), s.id, s.cfg.RPCTimeout)
	s.rpcCl.SetNext(snap.RPCNext)
	s.register()
	w.Network().Register(s.id, s)
	w.AddProcess(s)
	return s
}

// Rearm returns the callback for a pending kernel event owned by this
// apiserver, identified by its snapshot tag.
func (s *Server) Rearm(tag sim.EventTag) (func(), error) {
	switch tag.Kind {
	case "resync":
		epoch := tag.Epoch
		return func() { s.resyncFire(epoch) }, nil
	default:
		return nil, fmt.Errorf("apiserver: unknown pending event kind %q for %s", tag.Kind, s.id)
	}
}
