package core

import (
	"fmt"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/infra"
	"repro/internal/sim"
)

// Delivery-coordinate plans: the systematic explorer's decision vocabulary
// (internal/explore). Where GapPlan counts matching events at SEND time
// through an Interceptor, these plans rule at DELIVERY time through a
// sim.DeliveryGate, so their occurrence coordinate counts exactly the
// arrival stream the receiver observes — the same stream the trace
// recorder numbers. A schedule the explorer discovered by gating a live
// run therefore replays exactly as a plan under core.RunPlanSeed: the
// witness and the exploration step are the same execution.
//
// Occurrence counting is per matching event within arriving watch pushes,
// counted once per network message sequence number. Gates all see every
// arrival — including the RE-arrival of a message some other gate's Delay
// verdict re-enqueued — so each counter remembers the Seqs it has already
// ruled on and never counts a sequence number twice. Without that, a
// composed schedule (delay occurrence 1 + drop occurrence 2 on the same
// coordinate) would let the drop gate count the delayed push twice and
// fire on the re-arrival instead of the intended 2nd delivery.

// DropDeliveryPlan drops the watch-push message whose payload carries the
// Occurrence-th arrival matching (Victim, Kind, Name, Type) — an
// observability gap placed at a delivery coordinate.
type DropDeliveryPlan struct {
	Victim     sim.NodeID
	Kind       cluster.Kind
	Name       string
	Type       apiserver.EventType // empty = any type
	Occurrence int                 // 1-based arrival count; must be > 0
}

// ID implements Plan.
func (p DropDeliveryPlan) ID() string {
	return fmt.Sprintf("dropdel/%s/%s/%s/%s#%d", p.Victim, p.Kind, p.Name, p.Type, p.Occurrence)
}

// Describe implements Plan.
func (p DropDeliveryPlan) Describe() string {
	return fmt.Sprintf("drop delivery #%d of %s %s/%s to %s", p.Occurrence, p.Type, p.Kind, p.Name, p.Victim)
}

// Apply implements Plan.
func (p DropDeliveryPlan) Apply(c *infra.Cluster) {
	g := &deliveryCounter{victim: p.Victim, kind: p.Kind, name: p.Name, typ: p.Type}
	done := false
	c.World.Network().AddDeliveryGate(sim.DeliveryGateFunc(func(m *sim.Message) sim.Decision {
		if done {
			return sim.Decision{Verdict: sim.Pass}
		}
		if g.matches(m, p.Occurrence) {
			done = true
			return sim.Decision{Verdict: sim.Drop}
		}
		return sim.Decision{Verdict: sim.Pass}
	}))
}

// DelayDeliveryPlan defers the watch-push message carrying the
// Occurrence-th matching arrival by Delay extra virtual time — a bounded
// staleness injection at a single delivery coordinate. The deferred
// message re-enters every gate on re-arrival and passes without
// recounting (deliveryCounter rules on each Seq at most once).
type DelayDeliveryPlan struct {
	Victim     sim.NodeID
	Kind       cluster.Kind
	Name       string
	Type       apiserver.EventType // empty = any type
	Occurrence int                 // 1-based arrival count; must be > 0
	Delay      sim.Duration
}

// ID implements Plan.
func (p DelayDeliveryPlan) ID() string {
	return fmt.Sprintf("delaydel/%s/%s/%s/%s#%d+%s", p.Victim, p.Kind, p.Name, p.Type, p.Occurrence, p.Delay)
}

// Describe implements Plan.
func (p DelayDeliveryPlan) Describe() string {
	return fmt.Sprintf("delay delivery #%d of %s %s/%s to %s by %s", p.Occurrence, p.Type, p.Kind, p.Name, p.Victim, p.Delay)
}

// Apply implements Plan.
func (p DelayDeliveryPlan) Apply(c *infra.Cluster) {
	g := &deliveryCounter{victim: p.Victim, kind: p.Kind, name: p.Name, typ: p.Type}
	done := false
	c.World.Network().AddDeliveryGate(sim.DeliveryGateFunc(func(m *sim.Message) sim.Decision {
		if done {
			// Covers our own deferral re-arriving: the hit set done, and
			// the counter already ruled on its Seq when first seen.
			return sim.Decision{Verdict: sim.Pass}
		}
		if g.matches(m, p.Occurrence) {
			done = true
			d := p.Delay
			if d <= 0 {
				d = sim.Millisecond
			}
			return sim.Decision{Verdict: sim.Delay, Delay: d}
		}
		return sim.Decision{Verdict: sim.Pass}
	}))
}

// deliveryCounter counts matching events inside arriving watch pushes.
// matches reports whether the target occurrence is reached by message m.
// Each network Seq is ruled on at most once: a Delay verdict (this gate's
// or any other gate's) re-enqueues the message through Network.deliver,
// which re-runs every gate, and that re-arrival must not advance the
// occurrence count — the coordinate vocabulary counts message sequence
// numbers, not gate invocations.
type deliveryCounter struct {
	victim sim.NodeID
	kind   cluster.Kind
	name   string
	typ    apiserver.EventType
	seen   int
	ruled  map[uint64]bool
}

func (g *deliveryCounter) matches(m *sim.Message, occurrence int) bool {
	if m.To != g.victim || m.Kind != apiserver.KindWatchPush {
		return false
	}
	if g.ruled[m.Seq] {
		return false
	}
	push, ok := m.Payload.(*apiserver.WatchPushMsg)
	if !ok {
		return false
	}
	if g.ruled == nil {
		g.ruled = make(map[uint64]bool)
	}
	g.ruled[m.Seq] = true
	hit := false
	for _, ev := range push.Events {
		if ev.Object == nil || ev.Object.Meta.Kind != g.kind || ev.Object.Meta.Name != g.name {
			continue
		}
		if g.typ != "" && ev.Type != g.typ {
			continue
		}
		g.seen++
		if g.seen == occurrence {
			hit = true
		}
	}
	return hit
}
