// Package cluster defines the object model of the simulated infrastructure:
// the typed resources (pods, nodes, persistent volume claims, Cassandra
// clusters, regions) that collectively form the cluster state S, plus the
// codec that maps them onto the store's keyspace.
//
// The model mirrors the Kubernetes API machinery closely enough for the
// paper's bugs to exist: objects carry a ResourceVersion (the store mod
// revision) used for optimistic concurrency, a DeletionTimestamp used for
// two-phase deletion (mark, then remove), and owner references used by
// garbage-collecting controllers.
package cluster

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Kind identifies a resource type.
type Kind string

// Resource kinds known to the simulated cluster.
const (
	KindPod       Kind = "pods"
	KindNode      Kind = "nodes"
	KindPVC       Kind = "pvcs"
	KindCassandra Kind = "cassandraclusters"
	KindRegion    Kind = "regions"
	KindAppSet    Kind = "appsets"
)

// Kinds lists every known kind in stable order.
func Kinds() []Kind {
	return []Kind{KindPod, KindNode, KindPVC, KindCassandra, KindRegion, KindAppSet}
}

// PodPhase is the lifecycle phase of a pod.
type PodPhase string

// Pod phases.
const (
	PodPending     PodPhase = "Pending"
	PodScheduled   PodPhase = "Scheduled"
	PodRunning     PodPhase = "Running"
	PodTerminating PodPhase = "Terminating"
	PodFailed      PodPhase = "Failed"
)

// PodSpec describes a pod: desired placement and observed phase.
type PodSpec struct {
	NodeName string   `json:"nodeName,omitempty"` // bound node ("" = unscheduled)
	Phase    PodPhase `json:"phase,omitempty"`
	Image    string   `json:"image,omitempty"` // version label; rolling upgrades change it
	App      string   `json:"app,omitempty"`   // owning application/operator name
}

// NodeSpec describes a worker node. Rack/Zone/DC are topology labels set
// by the kubelet at registration; empty labels mean the node is outside
// any modeled topology (all existing small-world targets), and omitempty
// keeps their encodings — and thus every store revision — byte-identical
// to the pre-topology model.
type NodeSpec struct {
	Ready    bool   `json:"ready"`
	Capacity int    `json:"capacity"` // max pods
	Rack     string `json:"rack,omitempty"`
	Zone     string `json:"zone,omitempty"`
	DC       string `json:"dc,omitempty"`
}

// PVCPhase is the lifecycle phase of a persistent volume claim.
type PVCPhase string

// PVC phases.
const (
	PVCBound    PVCPhase = "Bound"
	PVCReleased PVCPhase = "Released"
)

// PVCSpec describes a persistent volume claim.
type PVCSpec struct {
	OwnerPod string   `json:"ownerPod,omitempty"` // pod this claim backs
	Phase    PVCPhase `json:"phase,omitempty"`
	SizeGB   int      `json:"sizeGB,omitempty"`
}

// CassandraSpec describes a Cassandra cluster custom resource managed by
// the operator in internal/operators/cassandra.
type CassandraSpec struct {
	Replicas        int      `json:"replicas"`                  // desired members
	ReadyMembers    []string `json:"readyMembers,omitempty"`    // status: member pods seen ready
	Decommissioning string   `json:"decommissioning,omitempty"` // member currently draining
	// Racks, when non-empty, places member i in Racks[i%len(Racks)] and
	// switches the operator to rack-aware decommission ordering (drain
	// the most-populated rack first). Empty keeps the flat ordering.
	Racks []string `json:"racks,omitempty"`
}

// AppSetSpec describes a replicated application (a Deployment/ReplicaSet
// analog): the controller in internal/controllers keeps Replicas pod
// copies running on the template Image, replacing pods one at a time when
// the image changes (rolling upgrade).
type AppSetSpec struct {
	Replicas int    `json:"replicas"`
	Image    string `json:"image,omitempty"`
	// ReadyReplicas is status: pods observed Running on the current image.
	ReadyReplicas int `json:"readyReplicas,omitempty"`
}

// RegionState is the assignment state of a region (HBase analog).
type RegionState string

// Region states.
const (
	RegionOffline RegionState = "Offline"
	RegionOpening RegionState = "Opening"
	RegionOnline  RegionState = "Online"
	RegionClosing RegionState = "Closing"
)

// RegionSpec describes a region (shard) assignment for the HBASE-3136
// experiment: ownership transitions must be atomic CAS operations.
type RegionSpec struct {
	Owner string      `json:"owner,omitempty"` // region server holding it
	State RegionState `json:"state,omitempty"`
}

// Meta is object metadata common to all kinds.
type Meta struct {
	Kind Kind   `json:"kind"`
	Name string `json:"name"`
	// UID is unique per object incarnation: deleting and re-creating a name
	// yields a different UID, which is how controllers are supposed to
	// detect re-creation (and often fail to).
	UID string `json:"uid"`
	// ResourceVersion is the store mod revision of this object version. It
	// is set by the apiserver on reads/watches and used as the CAS guard on
	// updates.
	ResourceVersion int64 `json:"resourceVersion,omitempty"`
	// DeletionTimestamp, when nonzero, marks the object as being deleted
	// (virtual time of the mark). Two-phase deletion: mark, finalize,
	// remove.
	DeletionTimestamp int64             `json:"deletionTimestamp,omitempty"`
	OwnerUID          string            `json:"ownerUID,omitempty"`
	Labels            map[string]string `json:"labels,omitempty"`
}

// Object is a typed cluster resource. Exactly one payload pointer matching
// Meta.Kind is non-nil.
type Object struct {
	Meta      Meta           `json:"meta"`
	Pod       *PodSpec       `json:"pod,omitempty"`
	Node      *NodeSpec      `json:"node,omitempty"`
	PVC       *PVCSpec       `json:"pvc,omitempty"`
	Cassandra *CassandraSpec `json:"cassandra,omitempty"`
	Region    *RegionSpec    `json:"region,omitempty"`
	AppSet    *AppSetSpec    `json:"appSet,omitempty"`
}

// NewPod constructs a pod object.
func NewPod(name, uid string, spec PodSpec) *Object {
	return &Object{Meta: Meta{Kind: KindPod, Name: name, UID: uid}, Pod: &spec}
}

// NewNode constructs a node object.
func NewNode(name, uid string, spec NodeSpec) *Object {
	return &Object{Meta: Meta{Kind: KindNode, Name: name, UID: uid}, Node: &spec}
}

// NewPVC constructs a persistent volume claim object.
func NewPVC(name, uid string, spec PVCSpec) *Object {
	return &Object{Meta: Meta{Kind: KindPVC, Name: name, UID: uid}, PVC: &spec}
}

// NewCassandra constructs a Cassandra cluster custom resource.
func NewCassandra(name, uid string, spec CassandraSpec) *Object {
	return &Object{Meta: Meta{Kind: KindCassandra, Name: name, UID: uid}, Cassandra: &spec}
}

// NewRegion constructs a region object.
func NewRegion(name, uid string, spec RegionSpec) *Object {
	return &Object{Meta: Meta{Kind: KindRegion, Name: name, UID: uid}, Region: &spec}
}

// NewAppSet constructs a replicated-application object.
func NewAppSet(name, uid string, spec AppSetSpec) *Object {
	return &Object{Meta: Meta{Kind: KindAppSet, Name: name, UID: uid}, AppSet: &spec}
}

// Clone returns a deep copy of the object.
func (o *Object) Clone() *Object {
	if o == nil {
		return nil
	}
	c := *o
	if o.Meta.Labels != nil {
		c.Meta.Labels = make(map[string]string, len(o.Meta.Labels))
		for k, v := range o.Meta.Labels {
			c.Meta.Labels[k] = v
		}
	}
	if o.Pod != nil {
		p := *o.Pod
		c.Pod = &p
	}
	if o.Node != nil {
		n := *o.Node
		c.Node = &n
	}
	if o.PVC != nil {
		p := *o.PVC
		c.PVC = &p
	}
	if o.Cassandra != nil {
		cs := *o.Cassandra
		cs.ReadyMembers = append([]string(nil), o.Cassandra.ReadyMembers...)
		cs.Racks = append([]string(nil), o.Cassandra.Racks...)
		c.Cassandra = &cs
	}
	if o.Region != nil {
		r := *o.Region
		c.Region = &r
	}
	if o.AppSet != nil {
		a := *o.AppSet
		c.AppSet = &a
	}
	return &c
}

// Terminating reports whether the object is marked for deletion.
func (o *Object) Terminating() bool { return o.Meta.DeletionTimestamp != 0 }

func (o *Object) String() string {
	return fmt.Sprintf("%s/%s@rv%d", o.Meta.Kind, o.Meta.Name, o.Meta.ResourceVersion)
}

// RegistryPrefix is the root of the object keyspace in the store.
const RegistryPrefix = "/registry/"

// Key returns the store key for (kind, name).
func Key(kind Kind, name string) string {
	return RegistryPrefix + string(kind) + "/" + name
}

// kindPrefixes interns the prefixes of the well-known kinds: KindPrefix is
// called on hot read paths and the concatenation allocates.
var kindPrefixes = map[Kind]string{
	KindPod:       RegistryPrefix + string(KindPod) + "/",
	KindNode:      RegistryPrefix + string(KindNode) + "/",
	KindPVC:       RegistryPrefix + string(KindPVC) + "/",
	KindCassandra: RegistryPrefix + string(KindCassandra) + "/",
	KindRegion:    RegistryPrefix + string(KindRegion) + "/",
	KindAppSet:    RegistryPrefix + string(KindAppSet) + "/",
}

// KindPrefix returns the store key prefix holding all objects of a kind.
func KindPrefix(kind Kind) string {
	if p, ok := kindPrefixes[kind]; ok {
		return p
	}
	return RegistryPrefix + string(kind) + "/"
}

// ParseKey splits a store key into kind and name.
func ParseKey(key string) (Kind, string, error) {
	rest, ok := strings.CutPrefix(key, RegistryPrefix)
	if !ok {
		return "", "", fmt.Errorf("cluster: key %q outside registry", key)
	}
	kind, name, ok := strings.Cut(rest, "/")
	if !ok || kind == "" || name == "" {
		return "", "", fmt.Errorf("cluster: malformed key %q", key)
	}
	return Kind(kind), name, nil
}

// Encode serializes an object for storage. ResourceVersion is not encoded:
// it is derived from the store revision on read, never trusted from bytes.
func Encode(o *Object) ([]byte, error) {
	c := o.Clone()
	c.Meta.ResourceVersion = 0
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode %s: %w", o, err)
	}
	return b, nil
}

// Decode deserializes an object and stamps the given resource version.
func Decode(data []byte, resourceVersion int64) (*Object, error) {
	var o Object
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("cluster: decode: %w", err)
	}
	o.Meta.ResourceVersion = resourceVersion
	return &o, nil
}

// MustEncode is Encode for objects constructed by this package; encoding
// them cannot fail.
func MustEncode(o *Object) []byte {
	b, err := Encode(o)
	if err != nil {
		panic(err)
	}
	return b
}

// UIDGen deterministically generates unique object UIDs.
type UIDGen struct {
	prefix string
	n      int
}

// NewUIDGen creates a generator whose UIDs carry the given prefix.
func NewUIDGen(prefix string) *UIDGen { return &UIDGen{prefix: prefix} }

// Next returns a fresh UID.
func (g *UIDGen) Next() string {
	g.n++
	return fmt.Sprintf("%s-%04d", g.prefix, g.n)
}

// Counter returns how many UIDs have been issued (snapshot path).
func (g *UIDGen) Counter() int { return g.n }

// SetCounter overwrites the issued-UID count (restore path only).
func (g *UIDGen) SetCounter(n int) { g.n = n }
