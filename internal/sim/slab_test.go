package sim

import "testing"

func TestSlabCloneIsPrivateAndCapped(t *testing.T) {
	var s Slab[int]
	src := []int{1, 2, 3}
	a := s.Clone(src)
	b := s.Clone([]int{4, 5})
	src[0] = 99
	if a[0] != 1 || a[1] != 2 || a[2] != 3 {
		t.Fatalf("clone aliases its source: %v", a)
	}
	if cap(a) != len(a) || cap(b) != len(b) {
		t.Fatalf("handed-out slices must be capped (cap==len): %d/%d, %d/%d", cap(a), len(a), cap(b), len(b))
	}
	// An append by one holder must not scribble over the next allocation.
	a = append(a, 42)
	if b[0] != 4 || b[1] != 5 {
		t.Fatalf("append overwrote a later allocation: %v", b)
	}
	if s.Clone(nil) != nil {
		t.Fatal("empty clone should be nil")
	}
}

func TestSlabOneAndLargeAlloc(t *testing.T) {
	var s Slab[byte]
	one := s.One(7)
	if len(one) != 1 || one[0] != 7 || cap(one) != 1 {
		t.Fatalf("One: %v cap=%d", one, cap(one))
	}
	// Requests larger than a chunk get their own allocation and do not
	// disturb earlier handouts.
	big := s.Clone(make([]byte, slabChunkSize*3))
	if len(big) != slabChunkSize*3 {
		t.Fatalf("large clone len %d", len(big))
	}
	if one[0] != 7 {
		t.Fatal("large alloc disturbed an earlier handout")
	}
}
