// Package kubelet implements the node agent: it watches the pods bound to
// its node and reconciles the host's running containers against them,
// reporting status back through an apiserver.
//
// A kubelet can synchronize with any one of several apiservers, and it
// re-lists its pods after a restart — from whichever upstream it lands on.
// That pair of behaviours is exactly what Kubernetes-59848 (paper Figure 2)
// exploits: restart, resynchronize against a stale apiserver, and re-run a
// pod that was already migrated elsewhere.
package kubelet

import (
	"fmt"
	"sort"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Container is a running workload on a host.
type Container struct {
	PodName   string
	PodUID    string
	Image     string
	StartedAt sim.Time
}

// Host models the machine under a kubelet: its containers outlive kubelet
// *process* crashes (as real containers do) but are lost if the whole node
// is reset.
type Host struct {
	Name    string
	running map[string]Container
	// names caches the sorted container-name list (the oracle layer reads
	// it every tick); nil means stale.
	names []string
}

// NewHost creates an empty host.
func NewHost(name string) *Host {
	return &Host{Name: name, running: make(map[string]Container)}
}

// Running returns the running containers keyed by pod name (copy).
func (h *Host) Running() map[string]Container {
	out := make(map[string]Container, len(h.running))
	for k, v := range h.running {
		out[k] = v
	}
	return out
}

// RunningNames returns sorted names of running containers. The slice is
// cached until the container set changes — callers must not mutate it.
func (h *Host) RunningNames() []string {
	if h.names == nil {
		h.names = make([]string, 0, len(h.running))
		for n := range h.running {
			h.names = append(h.names, n)
		}
		sort.Strings(h.names)
	}
	return h.names
}

func (h *Host) setContainer(name string, c Container) {
	h.running[name] = c
	h.names = nil
}

func (h *Host) removeContainer(name string) {
	delete(h.running, name)
	h.names = nil
}

// Reset kills all containers (whole-node failure).
func (h *Host) Reset() {
	h.running = make(map[string]Container)
	h.names = nil
}

// Config tunes a kubelet.
type Config struct {
	// NodeName is the cluster node this kubelet manages.
	NodeName string
	// APIServers lists upstream apiservers in failover preference order.
	APIServers []sim.NodeID
	// SyncInterval is the period of the level-triggered pod sync.
	SyncInterval sim.Duration
	// HeartbeatInterval is how often the node object's heartbeat is
	// renewed.
	HeartbeatInterval sim.Duration
	// Capacity is the node's pod capacity, advertised on registration.
	Capacity int
	// Rack, Zone, and DC are topology labels advertised on the node
	// object at registration. Empty labels (all existing small-world
	// targets) keep node encodings byte-identical to the pre-topology
	// model.
	Rack string
	Zone string
	DC   string
	// SafeRestartSync, when true, makes the first sync after a (re)start
	// use a quorum list instead of the upstream's cache — the mitigation
	// for the Figure 2 bug. False reproduces stock-Kubernetes behaviour.
	SafeRestartSync bool
	// RPCTimeout bounds apiserver calls.
	RPCTimeout sim.Duration
}

// DefaultConfig returns production-like settings for a node.
func DefaultConfig(node string, apis []sim.NodeID) Config {
	return Config{
		NodeName:          node,
		APIServers:        apis,
		SyncInterval:      100 * sim.Millisecond,
		HeartbeatInterval: 250 * sim.Millisecond,
		Capacity:          16,
		RPCTimeout:        200 * sim.Millisecond,
	}
}

// Kubelet is the node agent process.
type Kubelet struct {
	id    sim.NodeID
	world *sim.World
	cfg   Config
	host  *Host
	uids  *cluster.UIDGen

	conn     *client.Conn
	informer *client.Informer
	down     bool
	epoch    uint64
	apiIdx   int
	// restartPending marks that no sync has used verified (quorum) state
	// since the last (re)start; SafeRestartSync refuses cached reconciles
	// while it is set. safeSyncInFlight dedups the verification list.
	// minTrustRev is the revision of the verified quorum list: cached
	// reconciles are refused until the informer has caught up to it, so a
	// restarted kubelet can never act on state older than what it already
	// verified (the full 59848 mitigation).
	restartPending   bool
	safeSyncInFlight bool
	minTrustRev      int64

	// Starts and Stops count container transitions (experiment metrics).
	Starts int
	Stops  int
}

// NodeID returns the kubelet's network ID for a node name.
func NodeID(nodeName string) sim.NodeID { return sim.NodeID("kubelet-" + nodeName) }

// New wires a kubelet into the world and boots it against its first
// apiserver.
func New(w *sim.World, host *Host, cfg Config) *Kubelet {
	k := &Kubelet{
		id:    NodeID(cfg.NodeName),
		world: w,
		cfg:   cfg,
		host:  host,
		uids:  cluster.NewUIDGen("kubelet-" + cfg.NodeName),
	}
	w.Network().Register(k.id, k)
	w.AddProcess(k)
	k.boot()
	return k
}

// ID implements sim.Process.
func (k *Kubelet) ID() sim.NodeID { return k.id }

// Host returns the machine this kubelet manages.
func (k *Kubelet) Host() *Host { return k.host }

// Config returns the kubelet's configuration.
func (k *Kubelet) Config() Config { return k.cfg }

// Upstream returns the apiserver the kubelet currently syncs from.
func (k *Kubelet) Upstream() sim.NodeID { return k.cfg.APIServers[k.apiIdx] }

// SetUpstreamIndex forces the kubelet onto a specific apiserver (used by
// perturbation plans to steer a restarted kubelet to a stale source).
func (k *Kubelet) SetUpstreamIndex(i int) {
	k.apiIdx = i % len(k.cfg.APIServers)
}

// SetRestartUpstream steers the next (re)boot at the given apiserver if it
// is among the configured upstreams (core.Resteerable).
func (k *Kubelet) SetRestartUpstream(api sim.NodeID) {
	for i, id := range k.cfg.APIServers {
		if id == api {
			k.apiIdx = i
			return
		}
	}
}

// Crash implements sim.Process: the kubelet process dies; containers on
// the host keep running.
func (k *Kubelet) Crash() {
	k.down = true
	k.epoch++
	if k.conn != nil {
		k.conn.Reset()
	}
	k.informer = nil
}

// Restart implements sim.Process: reboot against the configured upstream.
func (k *Kubelet) Restart() {
	k.down = false
	k.boot()
}

// HandleMessage implements sim.Handler.
func (k *Kubelet) HandleMessage(m *sim.Message) {
	if k.down || k.conn == nil {
		return
	}
	k.conn.HandleMessage(m)
}

func (k *Kubelet) boot() {
	k.epoch++
	epoch := k.epoch
	k.restartPending = true
	k.conn = client.NewConn(k.world, k.id, k.cfg.APIServers[k.apiIdx], k.cfg.RPCTimeout)
	k.registerNode(epoch)
	k.informer = client.NewInformer(k.conn, cluster.KindPod, client.InformerConfig{
		WatchTimeout: 4 * k.cfg.SyncInterval,
	})
	k.informer.AddHandler(client.HandlerFuncs{
		AddFunc:    func(*cluster.Object) { k.scheduleSyncSoon(epoch) },
		UpdateFunc: func(_, _ *cluster.Object) { k.scheduleSyncSoon(epoch) },
		DeleteFunc: func(*cluster.Object) { k.scheduleSyncSoon(epoch) },
	})
	k.informer.Run()
	k.schedulePeriodicSync(epoch)
	k.scheduleHeartbeat(epoch)
}

// registerNode creates or refreshes this node's object.
func (k *Kubelet) registerNode(epoch uint64) {
	if k.down || epoch != k.epoch {
		return
	}
	node := cluster.NewNode(k.cfg.NodeName, k.uids.Next(), cluster.NodeSpec{
		Ready:    true,
		Capacity: k.cfg.Capacity,
		Rack:     k.cfg.Rack,
		Zone:     k.cfg.Zone,
		DC:       k.cfg.DC,
	})
	node.Meta.Labels = map[string]string{"heartbeat": fmt.Sprint(int64(k.world.Now()))}
	k.conn.Create(node, func(_ *cluster.Object, err error) {
		if err == nil || k.down || epoch != k.epoch {
			return
		}
		// Already registered: refresh via heartbeat path instead.
		k.heartbeat(epoch)
	})
}

func (k *Kubelet) scheduleHeartbeat(epoch uint64) {
	k.world.Kernel().ScheduleTagged(k.cfg.HeartbeatInterval,
		sim.EventTag{Owner: string(k.id), Kind: "heartbeat", Epoch: epoch},
		func() { k.heartbeatFire(epoch) })
}

func (k *Kubelet) heartbeatFire(epoch uint64) {
	if k.down || epoch != k.epoch {
		return
	}
	k.heartbeat(epoch)
	k.scheduleHeartbeat(epoch)
}

// heartbeat refreshes the node object's liveness label.
func (k *Kubelet) heartbeat(epoch uint64) {
	k.conn.Get(cluster.KindNode, k.cfg.NodeName, false, func(node *cluster.Object, found bool, err error) {
		if k.down || epoch != k.epoch || err != nil {
			return
		}
		if !found {
			k.registerNode(epoch)
			return
		}
		node = node.Clone()
		if node.Meta.Labels == nil {
			node.Meta.Labels = map[string]string{}
		}
		node.Meta.Labels["heartbeat"] = fmt.Sprint(int64(k.world.Now()))
		node.Node.Ready = true
		k.conn.Update(node, func(*cluster.Object, error) {})
	})
}

func (k *Kubelet) schedulePeriodicSync(epoch uint64) {
	k.world.Kernel().ScheduleTagged(k.cfg.SyncInterval,
		sim.EventTag{Owner: string(k.id), Kind: "sync", Epoch: epoch},
		func() { k.syncFire(epoch) })
}

func (k *Kubelet) syncFire(epoch uint64) {
	if k.down || epoch != k.epoch {
		return
	}
	k.syncPods(epoch)
	k.schedulePeriodicSync(epoch)
}

func (k *Kubelet) scheduleSyncSoon(epoch uint64) {
	k.world.Kernel().ScheduleTagged(sim.Millisecond,
		sim.EventTag{Owner: string(k.id), Kind: "syncsoon", Epoch: epoch},
		func() { k.syncSoonFire(epoch) })
}

func (k *Kubelet) syncSoonFire(epoch uint64) {
	if k.down || epoch != k.epoch {
		return
	}
	k.syncPods(epoch)
}

// syncPods reconciles host containers against the pods bound to this node
// in the kubelet's view S'. This is the decision point the paper's model
// highlights: the desired set comes from a partial history.
func (k *Kubelet) syncPods(epoch uint64) {
	if !k.informer.Synced() {
		return
	}
	if k.cfg.SafeRestartSync {
		if k.restartPending {
			// Fixed variant: until one quorum list has succeeded after a
			// (re)start, never reconcile from the cached view — a stale
			// cache here is exactly the Figure 2 hazard.
			if k.safeSyncInFlight {
				return
			}
			k.safeSyncInFlight = true
			k.conn.List(cluster.KindPod, true, func(objs []*cluster.Object, rev int64, err error) {
				if k.down || epoch != k.epoch {
					return
				}
				k.safeSyncInFlight = false
				if err != nil {
					return // retry on next periodic sync
				}
				k.restartPending = false
				k.minTrustRev = rev
				k.reconcile(epoch, objs)
			})
			return
		}
		if k.informer.LastRevision() < k.minTrustRev {
			// The cached view predates state this kubelet already verified
			// (the upstream is still catching up): acting on it would be
			// time traveling. Wait for the cache to reach the trust line.
			return
		}
	}
	k.restartPending = false
	k.reconcile(epoch, k.informer.ListCached())
}

func (k *Kubelet) reconcile(epoch uint64, pods []*cluster.Object) {
	desired := make(map[string]*cluster.Object)
	for _, p := range pods {
		if p.Pod == nil || p.Pod.NodeName != k.cfg.NodeName {
			continue
		}
		if p.Terminating() {
			continue
		}
		desired[p.Meta.Name] = p
	}

	// Stop containers that should no longer run here. Collect first: the
	// cached RunningNames slice must not be iterated across removals.
	var stops []string
	for _, name := range k.host.RunningNames() {
		c := k.host.running[name]
		want, ok := desired[name]
		if ok && want.Meta.UID == c.PodUID {
			continue
		}
		stops = append(stops, name)
	}
	for _, name := range stops {
		k.host.removeContainer(name)
		k.Stops++
	}

	// Start missing containers and report status.
	names := make([]string, 0, len(desired))
	for n := range desired {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		p := desired[name]
		if c, ok := k.host.running[name]; ok && c.PodUID == p.Meta.UID {
			continue
		}
		k.host.setContainer(name, Container{
			PodName:   name,
			PodUID:    p.Meta.UID,
			Image:     p.Pod.Image,
			StartedAt: k.world.Now(),
		})
		k.Starts++
		k.reportRunning(epoch, p)
	}

	// Finalize terminating pods bound here: container stopped above, so
	// remove the API object (the kubelet is the deletion finalizer).
	for _, p := range pods {
		if p.Pod == nil || p.Pod.NodeName != k.cfg.NodeName || !p.Terminating() {
			continue
		}
		name := p.Meta.Name
		if _, stillRunning := k.host.running[name]; stillRunning {
			continue
		}
		k.conn.Delete(cluster.KindPod, name, p.Meta.ResourceVersion, func(error) {})
	}
}

// reportRunning writes pod phase Running back through the apiserver.
func (k *Kubelet) reportRunning(epoch uint64, p *cluster.Object) {
	if p.Pod.Phase == cluster.PodRunning {
		return
	}
	obj := p.Clone()
	obj.Pod.Phase = cluster.PodRunning
	k.conn.Update(obj, func(_ *cluster.Object, err error) {
		// Conflicts are resolved by the next sync; nothing to do here.
	})
}
