// Substrate micro-benchmarks: raw throughput of the simulation kernel, the
// MVCC store, the replicated store, and the informer pipeline. These are
// not paper experiments (see bench_test.go for E1–E8); they exist to keep
// the simulator fast enough that campaigns of hundreds of executions stay
// cheap, and to catch performance regressions in the substrates.
package partialhist

import (
	"fmt"
	"testing"

	"repro/internal/apiserver"
	"repro/internal/baselines"
	"repro/internal/campaign"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/history"
	"repro/internal/learn"
	"repro/internal/raftlite"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

func BenchmarkMicro_KernelScheduleAndRun(b *testing.B) {
	k := sim.NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Schedule(sim.Duration(i%100), func() {})
		if i%1024 == 0 {
			k.Drain()
		}
	}
	k.Drain()
}

func BenchmarkMicro_StorePut(b *testing.B) {
	s := store.New()
	s.SetRetainLimit(4096)
	val := []byte("some-object-payload-of-plausible-size-for-a-pod")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("/registry/pods/p-%d", i%512), val)
	}
}

func BenchmarkMicro_StoreCAS(b *testing.B) {
	s := store.New()
	s.SetRetainLimit(4096)
	rev := s.Put("/lock", []byte("v"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, newRev := s.CompareAndSwap("/lock", rev, []byte("v"))
		if !ok {
			b.Fatal("CAS failed against the tracked revision")
		}
		rev = newRev
	}
}

func BenchmarkMicro_StoreWatchFanout(b *testing.B) {
	s := store.New()
	s.SetRetainLimit(4096)
	sink := 0
	for i := 0; i < 16; i++ {
		if _, err := s.Watch("/registry/", s.Revision(), func(events []history.Event) {
			sink += len(events)
		}); err != nil {
			b.Fatal(err)
		}
	}
	val := []byte("payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put("/registry/pods/p", val)
	}
	if sink == 0 {
		b.Fatal("watchers saw nothing")
	}
}

func BenchmarkMicro_ReplicatedStoreCommit(b *testing.B) {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond, Jitter: sim.Millisecond / 2})
	replicas := store.NewReplicaGroup(w, 3, raftlite.DefaultConfig())
	w.Kernel().RunFor(2 * sim.Second)
	var leader *store.ReplicaServer
	for _, r := range replicas {
		if r.Raft().Role() == raftlite.Leader {
			leader = r
		}
	}
	if leader == nil {
		b.Fatal("no leader")
	}
	before := leader.Raft().CommitIndex()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := leader.Raft().Propose([]byte("command")); !ok {
			b.Fatal("leader refused proposal")
		}
		if i%64 == 0 {
			w.Kernel().RunFor(200 * sim.Millisecond)
		}
	}
	w.Kernel().RunFor(2 * sim.Second)
	if leader.Raft().CommitIndex()-before < uint64(b.N) {
		b.Fatalf("committed %d of %d", leader.Raft().CommitIndex()-before, b.N)
	}
}

// BenchmarkMicro_CampaignOverhead guards the campaign engine's scheduling
// cost: "bare" measures one plan execution with no pool around it, and the
// "pool-N" variants measure a full campaign through internal/campaign
// normalized per execution (ns/exec metric). The gap between bare ns/op
// and pool ns/exec is the engine's per-execution overhead — future PRs
// must not let it grow into the same order as an execution itself.
// CrashTuner never detects 56261, so every plan in the list always runs
// and the campaign size is stable across runs.
func BenchmarkMicro_CampaignOverhead(b *testing.B) {
	target := workload.Target56261()
	strategy := baselines.CrashTuner{}
	ref, _ := core.Reference(target)
	plans := strategy.Plans(target, ref)
	if len(plans) == 0 {
		b.Fatal("crashtuner generated no plans")
	}

	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if core.RunPlanSeed(target, plans[i%len(plans)], 1).Detected {
				b.Fatal("crashtuner unexpectedly detected 56261")
			}
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("pool-%d", workers), func(b *testing.B) {
			eng := campaign.New(campaign.Config{Workers: workers, KeepGoing: true})
			execs := 0
			for i := 0; i < b.N; i++ {
				res := eng.Run(target, strategy)
				if res.Detected {
					b.Fatal("crashtuner unexpectedly detected 56261")
				}
				execs += res.Stats.RawExecutions
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(execs), "ns/exec")
		})
	}
}

// BenchmarkMicro_ExplainPass bounds the cost of the -explain layer: the
// per-bucket price of seed-correct minimization plus trace-diff causal
// explanation. Buckets are few (≤ a dozen per campaign), so a handful of
// extra executions per bucket must stay negligible against the campaign's
// hundreds of plan executions.
func BenchmarkMicro_ExplainPass(b *testing.B) {
	target := workload.Target56261()
	ref, _ := core.Reference(target)
	var detecting core.Plan
	for _, p := range core.NewPlanner().Plans(target, ref) {
		if core.RunPlan(target, p).Detected {
			detecting = p
			break
		}
	}
	if detecting == nil {
		b.Fatal("planner found no detecting plan for 56261")
	}

	b.Run("minimize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, execs := core.MinimizeSeed(target, detecting, 1); execs == 0 {
				b.Fatal("no minimization executions recorded")
			}
		}
	})
	b.Run("explain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if e := explain.Explain(target, detecting, 1); len(e.Chain) == 0 {
				b.Fatal("empty explanation chain")
			}
		}
	})
}

// BenchmarkMicro_LearnPass bounds the cost of the learning phase: mining
// read-dependency profiles from the reference trace plus building the
// pruned+ranked schedule over the full planner output. The whole pass runs
// once per campaign seed, so it must stay well under the cost of a single
// plan execution (~6 ms on the seeded targets) — otherwise pruning could
// not pay for itself even in principle.
func BenchmarkMicro_LearnPass(b *testing.B) {
	target := workload.Target56261()
	ref, _ := core.Reference(target)
	plans := core.NewPlanner().Plans(target, ref)
	if len(plans) == 0 {
		b.Fatal("planner generated no plans")
	}

	b.Run("mine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if m := learn.Mine(ref, 0); m.ConsumedCount() == 0 {
				b.Fatal("mining attributed no consumed deliveries")
			}
		}
	})
	b.Run("schedule", func(b *testing.B) {
		model := learn.Mine(ref, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := learn.BuildSchedule(model, target, plans, learn.Options{Prune: true, Rank: true})
			if s.Stats.Pruned == 0 {
				b.Fatal("schedule pruned nothing on a prunable target")
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			model := learn.Mine(ref, 0)
			s := learn.BuildSchedule(model, target, plans, learn.Options{Prune: true, Rank: true})
			if len(s.Kept) == 0 {
				b.Fatal("schedule kept nothing")
			}
		}
	})
}

func BenchmarkMicro_InformerEventPipeline(b *testing.B) {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	store.NewServer(w, "etcd", store.New())
	apiserver.New(w, "api-1", apiserver.DefaultConfig("etcd"))
	conn := client.NewConn(w, "comp", "api-1", 300*sim.Millisecond)
	w.Network().Register("comp", sim.HandlerFunc(func(m *sim.Message) { conn.HandleMessage(m) }))
	writer := client.NewConn(w, "writer", "api-1", 300*sim.Millisecond)
	w.Network().Register("writer", sim.HandlerFunc(func(m *sim.Message) { writer.HandleMessage(m) }))
	w.Kernel().RunFor(300 * sim.Millisecond)

	inf := client.NewInformer(conn, cluster.KindPod, client.InformerConfig{})
	events := 0
	inf.AddHandler(client.HandlerFuncs{
		AddFunc:    func(*cluster.Object) { events++ },
		UpdateFunc: func(_, _ *cluster.Object) { events++ },
	})
	inf.Run()
	w.Kernel().RunFor(100 * sim.Millisecond)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("p-%d", i)
		writer.Create(cluster.NewPod(name, name, cluster.PodSpec{NodeName: "k1"}), nil)
		if i%128 == 0 {
			w.Kernel().RunFor(500 * sim.Millisecond)
		}
	}
	w.Kernel().RunFor(2 * sim.Second)
	b.StopTimer()
	if events == 0 {
		b.Fatal("informer processed nothing")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}
