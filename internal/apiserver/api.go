// Package apiserver implements the middle tier of Figure 1: servers that
// cache the store's state S and history H in a watch cache and serve typed
// reads, writes, and watch streams to all other components.
//
// The cache is the whole point: reads and client watches are served from
// the apiserver's *cached* (H', S'), not from the store, mirroring the
// Kubernetes watch-cache design the paper cites ([1]). An apiserver whose
// link to the store degrades keeps serving its stale view — which is
// exactly the "api-2" of the Kubernetes-59848 scenario (Figure 2).
package apiserver

import (
	"errors"

	"repro/internal/cluster"
)

// API error sentinels. They cross the simulated network as strings; use the
// Is* helpers on the client side.
var (
	// ErrConflict is returned when a write's ResourceVersion guard fails
	// (optimistic concurrency violation).
	ErrConflict = errors.New("apiserver: resource version conflict")
	// ErrAlreadyExists is returned when creating an object whose name is
	// taken.
	ErrAlreadyExists = errors.New("apiserver: object already exists")
	// ErrNotFound is returned for reads/deletes of absent objects.
	ErrNotFound = errors.New("apiserver: object not found")
	// ErrTooOldResourceVersion is returned when a watch requests a start
	// revision that has fallen out of the apiserver's bounded event window
	// — the client must re-list ([7], §4.2.3).
	ErrTooOldResourceVersion = errors.New("apiserver: resource version too old, must relist")
)

// matchesSentinel reports whether err (possibly a remote error carrying
// only a message string) corresponds to the sentinel.
func matchesSentinel(err, sentinel error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, sentinel) || err.Error() == sentinel.Error()
}

// IsConflict reports whether err is a ResourceVersion conflict.
func IsConflict(err error) bool { return matchesSentinel(err, ErrConflict) }

// IsAlreadyExists reports whether err signals a name collision on create.
func IsAlreadyExists(err error) bool { return matchesSentinel(err, ErrAlreadyExists) }

// IsNotFound reports whether err signals an absent object.
func IsNotFound(err error) bool { return matchesSentinel(err, ErrNotFound) }

// IsTooOld reports whether err demands a relist.
func IsTooOld(err error) bool { return matchesSentinel(err, ErrTooOldResourceVersion) }

// RPC method names served by apiservers.
const (
	MethodList        = "api.List"
	MethodGet         = "api.Get"
	MethodCreate      = "api.Create"
	MethodUpdate      = "api.Update"
	MethodDelete      = "api.Delete"
	MethodWatch       = "api.Watch"
	MethodCancelWatch = "api.CancelWatch"
)

// KindWatchPush is the message kind of apiserver->client event pushes.
const KindWatchPush = "api.watch-push"

// EventType classifies a typed watch event.
type EventType string

// Watch event types, as in the Kubernetes watch API.
const (
	Added    EventType = "ADDED"
	Modified EventType = "MODIFIED"
	Deleted  EventType = "DELETED"
)

// WatchEvent is one typed change notification.
type WatchEvent struct {
	Type EventType
	// Object is the new object state (for Deleted: the last known state,
	// with the deletion revision as its ResourceVersion).
	Object   *cluster.Object
	Revision int64 // store revision of the change
}

// Request/response bodies.
type (
	// ListRequest lists objects of a kind. With Quorum the list bypasses
	// the watch cache and reads through to the store (slow, consistent);
	// without it the list is served from the possibly stale cache, and
	// Revision reports the cache's frontier.
	ListRequest struct {
		Kind   cluster.Kind
		Quorum bool
	}
	// ListResponse carries the listed objects and the revision they are
	// consistent with.
	ListResponse struct {
		Objects  []*cluster.Object
		Revision int64
	}
	// GetRequest reads one object (cached by default, quorum on demand).
	GetRequest struct {
		Kind   cluster.Kind
		Name   string
		Quorum bool
	}
	// GetResponse carries the object if found.
	GetResponse struct {
		Object   *cluster.Object
		Found    bool
		Revision int64
	}
	// CreateRequest creates a new named object.
	CreateRequest struct{ Object *cluster.Object }
	// UpdateRequest overwrites an object guarded by its ResourceVersion.
	UpdateRequest struct{ Object *cluster.Object }
	// DeleteRequest removes an object; a nonzero ExpectRV guards the
	// delete against concurrent modification.
	DeleteRequest struct {
		Kind     cluster.Kind
		Name     string
		ExpectRV int64
	}
	// WriteResponse acknowledges a write at Revision; for create/update it
	// echoes the stored object with its new ResourceVersion.
	WriteResponse struct {
		Object   *cluster.Object
		Revision int64
	}
	// WatchRequest subscribes to typed events of a kind after StartRev.
	WatchRequest struct {
		Kind     cluster.Kind
		StartRev int64
		SubID    uint64
	}
	// WatchResponse acknowledges the subscription.
	WatchResponse struct{ Revision int64 }
	// CancelWatchRequest removes a subscription.
	CancelWatchRequest struct{ SubID uint64 }
	// WatchPushMsg is the payload of KindWatchPush messages.
	WatchPushMsg struct {
		SubID  uint64
		Events []WatchEvent
	}
)
