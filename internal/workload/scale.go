package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/kubelet"
	"repro/internal/oracle"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

// Scale targets: the same two Kubernetes bug shapes as Target59848 and
// Target56261, but on racked multi-DC worlds of 100+ nodes with
// churn-heavy workloads (rolling node replacement, rack drain). They are
// deliberately NOT part of AllTargets(): the committed evaluation
// artifacts (E5/E10/E11) and the "-targets all" CI smokes pin the
// five-target matrix, and growing that set would invalidate them. Scale
// targets resolve by name (farm.ResolveTarget searches both sets) and
// feed the E12 serving-path benchmark and the scale-smoke CI step.

// ScaleProfile sizes a generated topology world.
type ScaleProfile struct {
	Racks        int
	NodesPerRack int
}

// NumNodes is the worker-node count of the profile.
func (p ScaleProfile) NumNodes() int { return p.Racks * p.NodesPerRack }

// Scale10, Scale100, and Scale500 are the E12 measurement points;
// Scale100 is also the canonical CI scale-smoke world.
var (
	Scale10  = ScaleProfile{Racks: 5, NodesPerRack: 2}
	Scale100 = ScaleProfile{Racks: 10, NodesPerRack: 10}
	Scale500 = ScaleProfile{Racks: 25, NodesPerRack: 20}
)

// topology returns the profile's world layout: racks striped across two
// DCs with two zones each, and each rack preferring its own apiserver.
func (p ScaleProfile) topology() *infra.TopologyOptions {
	return &infra.TopologyOptions{
		Racks:              p.Racks,
		NodesPerRack:       p.NodesPerRack,
		DCs:                []string{"dc0", "dc1"},
		ZonesPerDC:         2,
		PerRackAPIAffinity: true,
	}
}

// scaleOptions builds the cluster options shared by both scale targets.
func scaleOptions(seed int64, p ScaleProfile, withScheduler bool) infra.Options {
	opts := infra.DefaultOptions()
	opts.Seed = seed
	opts.Nodes = nil // generated from the topology
	opts.EnableScheduler = withScheduler
	opts.EnableVolumeController = false
	opts.Topology = p.topology()
	return opts
}

// ScaleReplaceTarget is rolling node replacement at scale: every node of
// rack 0 is replaced by its counterpart in rack 2 — the pod is migrated
// (mark-delete, wait, re-create on the new node), then the old machine is
// deleted. The destination is rack 2 rather than rack 1 deliberately:
// racks 0 and 2 share apiserver affinity (and a DC), so a staleness
// window on the other apiserver leaves the admin and both ends of the
// migration connected — the same reachability the two-node 59848 world
// has. The remaining racks carry steady background pods. The bug shape
// is Kubernetes-59848: a kubelet restarting against a stale apiserver
// re-runs a migrated pod, and with NodesPerRack replacements in flight
// the window for it recurs throughout the horizon. Oracle: UniquePod.
func ScaleReplaceTarget(p ScaleProfile) core.Target {
	topo := *p.topology()
	rack0 := topo.RackNodeNames(0)
	// Rack 2 when it exists (same apiserver affinity as rack 0); the last
	// rack otherwise.
	dstRack := 2
	if topo.Racks <= 2 {
		dstRack = topo.Racks - 1
	}
	dstNodes := topo.RackNodeNames(dstRack)
	return core.Target{
		Name:  fmt.Sprintf("scale-replace-%d", p.NumNodes()),
		Bug:   oracle.NameUniquePod,
		Build: func(seed int64) *infra.Cluster { return infra.New(scaleOptions(seed, p, false)) },
		Workload: func(c *infra.Cluster) {
			// Steady-state load: one long-lived pod per node outside the
			// replaced and destination racks.
			for r := 1; r < topo.Racks; r++ {
				if r == dstRack {
					continue
				}
				for i, node := range topo.RackNodeNames(r) {
					node, d := node, sim.Duration(r*int(topo.NodesPerRack)+i)*10*sim.Millisecond
					at(c, 300*sim.Millisecond+d, func() {
						c.Admin.CreatePod("bg-"+node, node, "v1", nil)
					})
				}
			}
			// The rolling replacement of rack 0.
			for i := range rack0 {
				i := i
				old, dst := rack0[i], dstNodes[i]
				at(c, 500*sim.Millisecond+sim.Duration(i)*60*sim.Millisecond, func() {
					c.Admin.CreatePod("web-"+old, old, "v1", nil)
				})
				at(c, 2*sim.Second+sim.Duration(i)*300*sim.Millisecond, func() {
					c.Admin.MigratePod("web-"+old, dst, "v2", nil)
				})
				at(c, 7*sim.Second+sim.Duration(i)*150*sim.Millisecond, func() {
					c.Admin.DeleteNode(old, nil)
				})
			}
		},
		Horizon: 12 * sim.Second,
		Topology: core.Topology{
			APIServers: []sim.NodeID{infra.APIServerID(0), infra.APIServerID(1)},
			Restartable: []sim.NodeID{
				kubelet.NodeID(rack0[0]), kubelet.NodeID(dstNodes[0]),
			},
			Resteerable: []sim.NodeID{
				kubelet.NodeID(rack0[0]), kubelet.NodeID(dstNodes[0]),
			},
		},
	}
}

// ScaleRackDrainTarget is a rack drain with mass rescheduling: every node
// of rack 0 is deleted, then one replacement job per drained node is
// submitted unbound for the scheduler to place on the surviving racks.
// The bug shape is Kubernetes-56261 at scale: if the scheduler misses
// even one of the NodesPerRack deletion events, the dead node — with the
// most free capacity in its cache — wins placement forever and the
// rescheduling livelocks. Oracle: SchedulerProgress.
func ScaleRackDrainTarget(p ScaleProfile) core.Target {
	topo := *p.topology()
	rack0 := topo.RackNodeNames(0)
	rack1 := topo.RackNodeNames(1)
	return core.Target{
		Name:  fmt.Sprintf("scale-rackdrain-%d", p.NumNodes()),
		Bug:   oracle.NameSchedulerProgress,
		Build: func(seed int64) *infra.Cluster { return infra.New(scaleOptions(seed, p, true)) },
		Workload: func(c *infra.Cluster) {
			// Baseline bound pods on rack 1 so the surviving world is not
			// empty and topology spread has load to balance around.
			for i, node := range rack1 {
				node, d := node, sim.Duration(i)*30*sim.Millisecond
				at(c, 300*sim.Millisecond+d, func() {
					c.Admin.CreatePod("base-"+node, node, "v1", nil)
				})
			}
			// Drain rack 0...
			for i, node := range rack0 {
				node, d := node, sim.Duration(i)*40*sim.Millisecond
				at(c, sim.Second+d, func() { c.Admin.DeleteNode(node, nil) })
			}
			// ...then submit the displaced work for rescheduling.
			for i := range rack0 {
				name, d := fmt.Sprintf("job-%02d", i), sim.Duration(i)*60*sim.Millisecond
				at(c, 2500*sim.Millisecond+d, func() {
					c.Admin.CreatePod(name, "", "v1", nil)
				})
			}
		},
		Horizon: 12 * sim.Second,
		Topology: core.Topology{
			APIServers: []sim.NodeID{infra.APIServerID(0), infra.APIServerID(1)},
			Restartable: []sim.NodeID{
				scheduler.ID, kubelet.NodeID(rack1[0]),
			},
		},
	}
}

// ScaleTargets returns the canonical 100-node scale targets (the CI
// scale-smoke matrix). Kept separate from AllTargets so the committed
// five-target artifacts stay byte-stable.
func ScaleTargets() []core.Target {
	return []core.Target{
		ScaleReplaceTarget(Scale100),
		ScaleRackDrainTarget(Scale100),
	}
}

// UnindexedServing returns a copy of the target whose built worlds pin
// every apiserver to the legacy scan-everything serving paths (linear
// relay fan-out, full-cache list scans, per-read decodes). The indexes
// are pure accelerations, so the variant must behave byte-identically —
// E12 commits that equivalence, with the serving counters showing what
// the indexes saved. The target name is left unchanged on purpose:
// campaign artifacts from the two variants are directly byte-comparable.
func UnindexedServing(t core.Target) core.Target {
	build := t.Build
	t.Build = func(seed int64) *infra.Cluster {
		opts := build(seed).Opts
		opts.APIUnindexedServing = true
		return infra.New(opts)
	}
	return t
}
