package controllers

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/sim"
)

// This file gives every built-in controller a snapshot/restore pair
// following the scheduler's contract: mutable maps are deep-copied at
// capture, informer caches travel inside the connection snapshot, and
// pending kernel timers are re-installed by the orchestration via Rearm.

// VolumeSnapshot captures the volume releaser at a checkpoint.
type VolumeSnapshot struct {
	Cfg      VolumeConfig
	Down     bool
	Epoch    uint64
	Releases int

	Conn         *client.ConnSnapshot
	HasInformers bool
	PodSub       uint64
	PVCSub       uint64
}

// Snapshot captures the controller's state. It fails (ok=false) when an
// RPC call is in flight.
func (c *VolumeController) Snapshot() (*VolumeSnapshot, bool) {
	cs, ok := c.conn.Snapshot()
	if !ok {
		return nil, false
	}
	snap := &VolumeSnapshot{
		Cfg:      c.cfg,
		Down:     c.down,
		Epoch:    c.epoch,
		Releases: c.Releases,
		Conn:     cs,
	}
	if c.podInf != nil && c.pvcInf != nil {
		snap.HasInformers = true
		snap.PodSub = c.podInf.SubID()
		snap.PVCSub = c.pvcInf.SubID()
	}
	return snap, true
}

// RestoreVolume reconstructs a volume controller from a snapshot inside
// world w. The controller attaches no informer handlers (it is purely
// poll-driven), so restore only needs the cache pointers; no timers are
// armed.
func RestoreVolume(w *sim.World, snap *VolumeSnapshot) *VolumeController {
	c := &VolumeController{
		id:       VolumeControllerID,
		world:    w,
		cfg:      snap.Cfg,
		down:     snap.Down,
		epoch:    snap.Epoch,
		Releases: snap.Releases,
	}
	w.Network().Register(c.id, c)
	w.AddProcess(c)
	c.conn = client.RestoreConn(w, snap.Conn)
	if snap.HasInformers {
		c.podInf = mustInformer(c.conn, snap.PodSub, "volume", "pod")
		c.pvcInf = mustInformer(c.conn, snap.PVCSub, "volume", "PVC")
	}
	return c
}

// Rearm returns the callback for a pending kernel event owned by the
// volume controller.
func (c *VolumeController) Rearm(tag sim.EventTag) (func(), error) {
	switch tag.Kind {
	case "inf-liveness", "inf-relist":
		return c.conn.RearmInformer(tag)
	case "poll":
		epoch := tag.Epoch
		return func() { c.pollFire(epoch) }, nil
	default:
		return nil, fmt.Errorf("volume: unknown pending event kind %q", tag.Kind)
	}
}

// NodeLifecycleSnapshot captures the node lifecycle controller at a
// checkpoint.
type NodeLifecycleSnapshot struct {
	Cfg            NodeLifecycleConfig
	Down           bool
	Epoch          uint64
	MarkedNotReady int
	DeletedNodes   int
	EvictedPods    int

	Conn         *client.ConnSnapshot
	HasInformers bool
	NodeSub      uint64
	PodSub       uint64
}

// Snapshot captures the controller's state. It fails (ok=false) when an
// RPC call is in flight.
func (c *NodeLifecycleController) Snapshot() (*NodeLifecycleSnapshot, bool) {
	cs, ok := c.conn.Snapshot()
	if !ok {
		return nil, false
	}
	snap := &NodeLifecycleSnapshot{
		Cfg:            c.cfg,
		Down:           c.down,
		Epoch:          c.epoch,
		MarkedNotReady: c.MarkedNotReady,
		DeletedNodes:   c.DeletedNodes,
		EvictedPods:    c.EvictedPods,
		Conn:           cs,
	}
	if c.nodeInf != nil && c.podInf != nil {
		snap.HasInformers = true
		snap.NodeSub = c.nodeInf.SubID()
		snap.PodSub = c.podInf.SubID()
	}
	return snap, true
}

// RestoreNodeLifecycle reconstructs a node lifecycle controller from a
// snapshot inside world w. No handlers (timer-driven) and no timers armed.
func RestoreNodeLifecycle(w *sim.World, snap *NodeLifecycleSnapshot) *NodeLifecycleController {
	c := &NodeLifecycleController{
		id:             NodeLifecycleID,
		world:          w,
		cfg:            snap.Cfg,
		down:           snap.Down,
		epoch:          snap.Epoch,
		MarkedNotReady: snap.MarkedNotReady,
		DeletedNodes:   snap.DeletedNodes,
		EvictedPods:    snap.EvictedPods,
	}
	w.Network().Register(c.id, c)
	w.AddProcess(c)
	c.conn = client.RestoreConn(w, snap.Conn)
	if snap.HasInformers {
		c.nodeInf = mustInformer(c.conn, snap.NodeSub, "node-lifecycle", "node")
		c.podInf = mustInformer(c.conn, snap.PodSub, "node-lifecycle", "pod")
	}
	return c
}

// Rearm returns the callback for a pending kernel event owned by the node
// lifecycle controller.
func (c *NodeLifecycleController) Rearm(tag sim.EventTag) (func(), error) {
	switch tag.Kind {
	case "inf-liveness", "inf-relist":
		return c.conn.RearmInformer(tag)
	case "check":
		epoch := tag.Epoch
		return func() { c.checkFire(epoch) }, nil
	default:
		return nil, fmt.Errorf("node-lifecycle: unknown pending event kind %q", tag.Kind)
	}
}

// AppSetSnapshot captures the appset controller at a checkpoint.
type AppSetSnapshot struct {
	Cfg        AppSetConfig
	Down       bool
	Epoch      uint64
	UIDs       int
	Replacing  map[string]int
	PodCreates int
	PodDeletes int
	Rollouts   int

	Conn         *client.ConnSnapshot
	HasInformers bool
	AppSub       uint64
	PodSub       uint64
	Queue        *controller.QueueSnapshot
}

// Snapshot captures the controller's state. It fails (ok=false) when an
// RPC call is in flight.
func (c *AppSetController) Snapshot() (*AppSetSnapshot, bool) {
	cs, ok := c.conn.Snapshot()
	if !ok {
		return nil, false
	}
	snap := &AppSetSnapshot{
		Cfg:        c.cfg,
		Down:       c.down,
		Epoch:      c.epoch,
		UIDs:       c.uids.Counter(),
		Replacing:  make(map[string]int, len(c.replacing)),
		PodCreates: c.PodCreates,
		PodDeletes: c.PodDeletes,
		Rollouts:   c.Rollouts,
		Conn:       cs,
		Queue:      c.queue.Snapshot(),
	}
	for app, n := range c.replacing {
		snap.Replacing[app] = n
	}
	if c.appInf != nil && c.podInf != nil {
		snap.HasInformers = true
		snap.AppSub = c.appInf.SubID()
		snap.PodSub = c.podInf.SubID()
	}
	return snap, true
}

// RestoreAppSet reconstructs an appset controller from a snapshot inside
// world w. Informer handlers are re-attached without cache replay; no
// timers are armed.
func RestoreAppSet(w *sim.World, snap *AppSetSnapshot) *AppSetController {
	c := &AppSetController{
		id:         AppSetControllerID,
		world:      w,
		cfg:        snap.Cfg,
		down:       snap.Down,
		epoch:      snap.Epoch,
		uids:       cluster.NewUIDGen("appset"),
		replacing:  make(map[string]int, len(snap.Replacing)),
		PodCreates: snap.PodCreates,
		PodDeletes: snap.PodDeletes,
		Rollouts:   snap.Rollouts,
	}
	c.uids.SetCounter(snap.UIDs)
	for app, n := range snap.Replacing {
		c.replacing[app] = n
	}
	w.Network().Register(c.id, c)
	w.AddProcess(c)
	c.conn = client.RestoreConn(w, snap.Conn)
	c.queue = controller.RestoreQueue(w.Kernel(), snap.Queue, controller.ReconcilerFunc(c.reconcile))
	if snap.HasInformers {
		appInf := mustInformer(c.conn, snap.AppSub, "appset", "appset")
		appInf.RestoreHandler(controller.EnqueueHandler{Queue: c.queue})
		c.appInf = appInf
		podInf := mustInformer(c.conn, snap.PodSub, "appset", "pod")
		podInf.RestoreHandler(client.HandlerFuncs{
			AddFunc:    func(p *cluster.Object) { c.enqueueOwner(p) },
			UpdateFunc: func(_, p *cluster.Object) { c.enqueueOwner(p) },
			DeleteFunc: func(p *cluster.Object) { c.enqueueOwner(p) },
		})
		c.podInf = podInf
	}
	return c
}

// Rearm returns the callback for a pending kernel event owned by the
// appset controller.
func (c *AppSetController) Rearm(tag sim.EventTag) (func(), error) {
	switch tag.Kind {
	case "addafter", "process":
		return c.queue.Rearm(tag)
	case "inf-liveness", "inf-relist":
		return c.conn.RearmInformer(tag)
	case "resync":
		epoch := tag.Epoch
		return func() { c.resyncFire(epoch) }, nil
	default:
		return nil, fmt.Errorf("appset: unknown pending event kind %q", tag.Kind)
	}
}

func mustInformer(conn *client.Conn, sub uint64, who, kind string) *client.Informer {
	inf, ok := conn.Informer(sub)
	if !ok {
		panic(fmt.Sprintf("%s: restore: %s informer sub %d missing", who, kind, sub))
	}
	return inf
}
