package core

import (
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/infra"
	"repro/internal/oracle"
	"repro/internal/sim"
)

// schedTarget is the 56261 setup: a gap on the node deletion to the
// scheduler livelocks placement.
func schedTarget() Target {
	return Target{
		Name: "sched-gap",
		Bug:  oracle.NameSchedulerProgress,
		Build: func(seed int64) *infra.Cluster {
			opts := infra.DefaultOptions()
			opts.Seed = seed
			opts.Nodes = []string{"n1", "n2"}
			opts.EnableVolumeController = false
			return infra.New(opts)
		},
		Workload: func(c *infra.Cluster) {
			c.World.Kernel().At(sim.Time(sim.Second), func() { c.Admin.DeleteNode("n1", nil) })
			c.World.Kernel().At(sim.Time(1500*sim.Millisecond), func() { c.Admin.CreatePod("job", "", "v1", nil) })
		},
		Horizon: 7 * sim.Second,
		Topology: Topology{
			APIServers:  []sim.NodeID{infra.APIServerID(0), infra.APIServerID(1)},
			Restartable: []sim.NodeID{"scheduler"},
		},
	}
}

func detectingGap() GapPlan {
	return GapPlan{Victim: "scheduler", Kind: cluster.KindNode, Name: "n1", Type: apiserver.Deleted, Occurrence: 1}
}

func TestMinimizeDropsUnnecessarySubPlans(t *testing.T) {
	target := schedTarget()
	// A noisy composite: the gap that matters plus two irrelevant faults.
	noisy := SequencePlan{Name: "noisy", Plans: []Plan{
		CrashPlan{Component: "kubelet-n2", At: sim.Time(3 * sim.Second), RestartDelay: 100 * sim.Millisecond},
		detectingGap(),
		PartitionPlan{A: "kubelet-n2", B: infra.APIServerID(1), From: sim.Time(2 * sim.Second), Until: sim.Time(2500 * sim.Millisecond)},
	}}
	if !RunPlan(target, noisy).Detected {
		t.Fatal("noisy plan does not detect; test setup broken")
	}
	minimal, execs := Minimize(target, noisy)
	if execs == 0 {
		t.Fatal("no verification executions recorded")
	}
	gap, ok := minimal.(GapPlan)
	if !ok {
		t.Fatalf("minimal plan = %T (%s), want the bare GapPlan", minimal, minimal.Describe())
	}
	if gap != detectingGap() {
		t.Fatalf("minimal gap = %+v", gap)
	}
	if !RunPlan(target, minimal).Detected {
		t.Fatal("minimized plan no longer detects")
	}
}

func TestMinimizeKeepsNecessarySubPlans(t *testing.T) {
	target := schedTarget()
	only := SequencePlan{Name: "solo", Plans: []Plan{detectingGap()}}
	minimal, _ := Minimize(target, only)
	if !RunPlan(target, minimal).Detected {
		t.Fatal("minimized plan no longer detects")
	}
}

// seedGatedTarget is a synthetic target whose bug oracle only ever fires
// in worlds built with the given seed — a stand-in for real targets whose
// detecting plans carry coordinates (occurrence counts, freeze instants)
// mined from one specific seed's reference trace.
func seedGatedTarget(bugSeed int64) Target {
	return Target{
		Name: "seed-gated",
		Bug:  "SeedGated",
		Build: func(seed int64) *infra.Cluster {
			opts := infra.DefaultOptions()
			opts.Seed = seed
			opts.Nodes = []string{"n1"}
			opts.EnableVolumeController = false
			c := infra.New(opts)
			if seed == bugSeed {
				c.Oracles.Add(oracle.Func{OracleName: "SeedGated", CheckFunc: func(now sim.Time) *oracle.Violation {
					if now < sim.Time(2*sim.Second) {
						return nil
					}
					return &oracle.Violation{Oracle: "SeedGated", Detail: "seed-gated bug fired"}
				}})
			}
			return c
		},
		Workload: func(c *infra.Cluster) {},
		Horizon:  3 * sim.Second,
	}
}

// TestMinimizeSeedVerifiesUnderFoundSeed regression-tests the headline
// bugfix: minimization must verify every candidate under the seed the plan
// was discovered with. Verifying under the default seed (the old Minimize
// behaviour) cannot even reproduce a seed-7 detection, so the plan came
// back unminimized.
func TestMinimizeSeedVerifiesUnderFoundSeed(t *testing.T) {
	target := seedGatedTarget(7)
	noisy := SequencePlan{Name: "noisy", Plans: []Plan{
		CrashPlan{Component: "kubelet-n1", At: sim.Time(1 * sim.Second), RestartDelay: 100 * sim.Millisecond},
		PartitionPlan{A: "kubelet-n1", B: infra.APIServerID(0), From: sim.Time(1 * sim.Second), Until: sim.Time(1500 * sim.Millisecond)},
	}}
	if !RunPlanSeed(target, noisy, 7).Detected {
		t.Fatal("noisy plan does not detect under seed 7; test setup broken")
	}

	// Old behaviour: seed-1 verification fails the reproduction check and
	// bails out with the plan untouched.
	got, execs := Minimize(target, noisy)
	if execs != 1 {
		t.Fatalf("Minimize under the wrong seed spent %d executions, want 1 (failed repro check)", execs)
	}
	if got.ID() != noisy.ID() {
		t.Fatalf("Minimize under the wrong seed altered the plan: %s", got.ID())
	}

	// Seed-correct minimization reduces the sequence and the result still
	// detects under the seed it was found with.
	minimal, execs := MinimizeSeed(target, noisy, 7)
	if execs < 2 {
		t.Fatalf("MinimizeSeed spent %d executions, want repro check + removal probes", execs)
	}
	if _, isSeq := minimal.(SequencePlan); isSeq {
		t.Fatalf("minimal plan = %s, want a single sub-plan", minimal.Describe())
	}
	if !RunPlanSeed(target, minimal, 7).Detected {
		t.Fatal("minimized plan no longer detects under seed 7")
	}
}

// TestMinimizeSeedRoundTrip is the multi-seed round-trip on a real target:
// a noisy composite found under seed 7 minimizes to the bare gap and the
// minimal plan still reproduces under seed 7.
func TestMinimizeSeedRoundTrip(t *testing.T) {
	target := schedTarget()
	const seed = 7
	noisy := SequencePlan{Name: "noisy", Plans: []Plan{
		CrashPlan{Component: "kubelet-n2", At: sim.Time(3 * sim.Second), RestartDelay: 100 * sim.Millisecond},
		detectingGap(),
		PartitionPlan{A: "kubelet-n2", B: infra.APIServerID(1), From: sim.Time(2 * sim.Second), Until: sim.Time(2500 * sim.Millisecond)},
	}}
	if !RunPlanSeed(target, noisy, seed).Detected {
		t.Fatal("noisy plan does not detect under seed 7; test setup broken")
	}
	minimal, execs := MinimizeSeed(target, noisy, seed)
	if execs == 0 {
		t.Fatal("no verification executions recorded")
	}
	gap, ok := minimal.(GapPlan)
	if !ok {
		t.Fatalf("minimal plan = %T (%s), want the bare GapPlan", minimal, minimal.Describe())
	}
	if gap != detectingGap() {
		t.Fatalf("minimal gap = %+v", gap)
	}
	if !RunPlanSeed(target, minimal, seed).Detected {
		t.Fatal("minimized plan no longer detects under seed 7")
	}
}

func TestMinimizeNonReproducingPlanUnchanged(t *testing.T) {
	target := schedTarget()
	dud := SequencePlan{Name: "dud", Plans: []Plan{
		CrashPlan{Component: "kubelet-n2", At: sim.Time(3 * sim.Second), RestartDelay: 100 * sim.Millisecond},
	}}
	got, execs := Minimize(target, dud)
	if execs != 1 {
		t.Fatalf("executions = %d, want 1 (just the reproduction check)", execs)
	}
	if got.ID() != dud.ID() {
		t.Fatalf("non-reproducing plan was altered: %s", got.ID())
	}
}
