package farm

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// Transport launches one worker and exposes its two message pipes. The
// coordinator speaks the same NDJSON protocol over any transport;
// subprocess pipes are the local implementation, an in-process
// goroutine serves tests, and a TCP dialer can slot in later without
// touching the coordinator.
type Transport interface {
	// Start launches the worker and returns the coordinator's ends of
	// its message streams: in carries coordinator→worker messages, out
	// carries worker→coordinator messages.
	Start() (in io.WriteCloser, out io.Reader, err error)
	// Kill force-stops the worker mid-task (cancellation path). Safe to
	// call more than once and after a clean exit.
	Kill()
	// Wait blocks until the worker has exited and releases its
	// resources.
	Wait() error
}

// ProcessTransport runs a worker as a subprocess speaking the protocol
// over its stdin/stdout; stderr passes through to the coordinator's so
// worker diagnostics stay visible, while the last few KB are also kept
// in a ring so a death record can quote what the worker said on the way
// down.
type ProcessTransport struct {
	Path   string
	Args   []string
	Env    []string  // nil = inherit; otherwise the full environment
	Stderr io.Writer // nil = os.Stderr

	cmd  *exec.Cmd
	tail *tailWriter
}

// NewProcessTransport returns a transport that will exec path with args
// (typically the coordinator's own binary with -worker).
func NewProcessTransport(path string, args ...string) *ProcessTransport {
	return &ProcessTransport{Path: path, Args: args}
}

func (t *ProcessTransport) Start() (io.WriteCloser, io.Reader, error) {
	cmd := exec.Command(t.Path, t.Args...)
	cmd.Env = t.Env
	stderr := t.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	t.tail = &tailWriter{}
	cmd.Stderr = io.MultiWriter(stderr, t.tail)
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, nil, fmt.Errorf("farm: worker stdin: %w", err)
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, fmt.Errorf("farm: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("farm: start worker: %w", err)
	}
	t.cmd = cmd
	return in, out, nil
}

func (t *ProcessTransport) Kill() {
	if t.cmd != nil && t.cmd.Process != nil {
		_ = t.cmd.Process.Kill()
	}
}

func (t *ProcessTransport) Wait() error {
	if t.cmd == nil {
		return nil
	}
	return t.cmd.Wait()
}

// StderrTail returns the last few KB the worker wrote to stderr —
// death evidence for the supervision layer. Empty before Start.
func (t *ProcessTransport) StderrTail() string {
	if t.tail == nil {
		return ""
	}
	return t.tail.String()
}

// stderrTailer is the optional transport capability the supervisor
// probes for when assembling death evidence.
type stderrTailer interface {
	StderrTail() string
}

// tailWriter keeps the last tailLimit bytes written through it. Writes
// are serialized (the subprocess's stderr copier is a single goroutine)
// but reads can race a dying worker's final writes, so a mutex guards
// the buffer.
type tailWriter struct {
	mu  sync.Mutex
	buf []byte
}

const tailLimit = 4 << 10

func (t *tailWriter) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > tailLimit {
		t.buf = t.buf[len(t.buf)-tailLimit:]
	}
	return len(p), nil
}

func (t *tailWriter) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// InProcTransport runs WorkerLoop in a goroutine connected by pipes —
// the test double that exercises the full protocol (framing, record
// streaming, shutdown) without spawning processes. Kill closes the
// pipes, which stops the protocol loop; a task already executing inside
// the engine runs to completion in the background (in-process code
// cannot be preempted), its result discarded.
type InProcTransport struct {
	inW  *io.PipeWriter
	outR *io.PipeReader
	done chan error
}

func NewInProcTransport() *InProcTransport { return &InProcTransport{} }

func (t *InProcTransport) Start() (io.WriteCloser, io.Reader, error) {
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	t.inW, t.outR = inW, outR
	t.done = make(chan error, 1)
	go func() {
		err := WorkerLoop(inR, outW)
		outW.CloseWithError(io.EOF)
		inR.CloseWithError(io.EOF)
		t.done <- err
	}()
	return inW, outR, nil
}

func (t *InProcTransport) Kill() {
	if t.inW != nil {
		t.inW.CloseWithError(io.ErrClosedPipe)
	}
	if t.outR != nil {
		t.outR.CloseWithError(io.ErrClosedPipe)
	}
}

func (t *InProcTransport) Wait() error {
	if t.done == nil {
		return nil
	}
	return <-t.done
}
