// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every component of the simulated infrastructure (store nodes, apiservers,
// kubelets, schedulers, controllers) is an actor driven by a single Kernel.
// Virtual time only advances when the kernel dequeues the next scheduled
// event, and ties are broken by a monotonically increasing sequence number,
// so a simulation run is a pure function of its inputs (topology, workload,
// seed, perturbation plan). That determinism is what makes the
// partial-history testing tool replayable: a plan that triggered a bug can
// be re-executed and yields the identical trace.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenience duration units (virtual time).
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
}

func (d Duration) String() string {
	return fmt.Sprintf("%.6fs", float64(d)/float64(Second))
}

// Timer is a handle to a scheduled callback. The zero value is invalid;
// timers are created by Kernel.Schedule and Kernel.At.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's callback from running. Canceling an
// already-fired or already-canceled timer is a no-op. It reports whether the
// timer was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.fired {
		return false
	}
	t.ev.canceled = true
	return true
}

// Pending reports whether the timer's callback has neither fired nor been
// canceled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && !t.ev.fired
}

// EventTag identifies the semantic role of a pending kernel event so a
// snapshot can describe it declaratively (and a restored world can re-arm
// it) without serializing the closure itself. The zero tag marks an
// anonymous event: such events cannot be captured by a snapshot, so a
// checkpoint is only taken at instants where every pending event is
// tagged (see Kernel.CapturePending).
type EventTag struct {
	// Owner is the component the event belongs to (a NodeID string such
	// as "etcd" or "kubelet-n1", or a well-known owner like "workload"
	// and "oracles").
	Owner string
	// Kind names the timer within its owner ("leasetick", "resync",
	// "heartbeat", ...).
	Kind string
	// Key discriminates multiple timers of the same kind (an informer
	// subscription ID, a workqueue key, ...).
	Key string
	// Epoch carries the owner's crash/relist epoch at arm time for timers
	// whose fire-time behaviour depends on whether the epoch is stale.
	Epoch uint64
}

type event struct {
	at       Time
	seq      uint64
	fn       func()
	tag      EventTag
	canceled bool
	fired    bool
	// timer is the handle returned to the scheduler's caller; embedding it
	// lets one chunk allocation cover both the event and its Timer.
	timer Timer
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). The
// scheduler is the hottest loop in the simulator; avoiding container/heap's
// interface dispatch and index bookkeeping is worth the ~30 lines.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	s := *h
	n := len(s) - 1
	ev := s[0]
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && s.less(right, left) {
			child = right
		}
		if !s.less(child, i) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return ev
}

// countingSource wraps the kernel's deterministic random source and counts
// how many raw 64-bit draws have been consumed. A snapshot records the
// count; a restored kernel replays (discards) exactly that many draws from
// a fresh source seeded identically, leaving the stream in the same
// position. Counting at the Source64 level (rather than per rand.Rand
// method) makes the count exact even for rejection-sampled helpers like
// Int63n.
//
// Int63 mirrors math/rand's rngSource.Int63 (mask, not shift) so wrapping
// the source does not change any value the simulation observes.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 { return int64(c.Uint64() & (1<<63 - 1)) }

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(s int64) {
	c.src.Seed(s)
	c.draws = 0
}

// Kernel is the discrete-event scheduler. It is not safe for concurrent use;
// the simulated world is single-threaded by design.
type Kernel struct {
	now     Time
	heap    eventHeap
	seq     uint64
	rng     *rand.Rand
	src     *countingSource
	steps   uint64
	maxStep uint64 // safety valve; 0 = unlimited
	stopped bool

	// Snapshot/fork support (see snapshot.go). defaultTag, when non-nil,
	// is applied to events scheduled through the untagged At/Schedule
	// entry points — used to blanket-tag the workload's top-level timers.
	// rehydrating+rehydrateCutoff implement fork-time workload replay:
	// an At strictly before the cutoff burns its sequence number (the
	// full-replay run would have allocated it) but schedules nothing.
	// strictPast records an attempt to schedule into the past, which a
	// forked plan application must treat as "this plan cannot fork here".
	defaultTag      *EventTag
	rehydrating     bool
	rehydrateCutoff Time
	strictPast      bool
	strictErr       string

	// chunk is the arena the kernel allocates events from: one make per
	// eventChunk events instead of one per event. Events are never reused
	// (fired Timers stay valid), so handing out pointers into the chunk is
	// safe; the chunk is only retained while any of its events is.
	chunk []event
}

const eventChunk = 256

func (k *Kernel) newEvent() *event {
	if len(k.chunk) == 0 {
		k.chunk = make([]event, eventChunk)
	}
	ev := &k.chunk[0]
	k.chunk = k.chunk[1:]
	ev.timer.ev = ev
	return ev
}

// burnedTimer is the shared handle returned for rehydration-burned events:
// semantically an already-fired timer, so Cancel and Pending both report
// false for every holder.
var burnedTimer = &Timer{ev: &event{fired: true}}

// NewKernel returns a kernel whose random source is seeded with seed.
// Identical seeds yield identical simulations for identical inputs.
func NewKernel(seed int64) *Kernel {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Kernel{rng: rand.New(src), src: src}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. All simulated
// randomness (jitter, backoff, workload choices) must come from here.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// SetMaxSteps bounds the number of events Run will execute; 0 means
// unlimited. It is a safety valve against livelocking simulations (which
// some injected bugs, e.g. scheduler livelock, intentionally produce).
func (k *Kernel) SetMaxSteps(n uint64) { k.maxStep = n }

// Schedule runs fn after virtual duration d (>= 0) and returns a cancelable
// timer. Callbacks scheduled for the same instant run in scheduling order.
func (k *Kernel) Schedule(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// ScheduleTagged is Schedule with an explicit snapshot tag (see EventTag).
func (k *Kernel) ScheduleTagged(d Duration, tag EventTag, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.AtTagged(k.now.Add(d), tag, fn)
}

// At runs fn at absolute virtual time t (clamped to now) and returns a
// cancelable timer. When a default tag is installed (SetDefaultTag) the
// event carries it; otherwise the event is anonymous and blocks snapshots
// while pending.
func (k *Kernel) At(t Time, fn func()) *Timer {
	var tag EventTag
	if k.defaultTag != nil {
		tag = *k.defaultTag
	}
	return k.AtTagged(t, tag, fn)
}

// AtTagged is At with an explicit snapshot tag.
func (k *Kernel) AtTagged(t Time, tag EventTag, fn func()) *Timer {
	if k.rehydrating && t < k.rehydrateCutoff {
		// Fork-time workload rehydration: the full-replay run scheduled
		// (and already fired) this event before the checkpoint. Burn the
		// sequence number it would have consumed so every later
		// allocation keeps its full-replay identity, but schedule
		// nothing.
		k.seq++
		return burnedTimer
	}
	if k.strictPast && t < k.now && k.strictErr == "" {
		k.strictErr = fmt.Sprintf("sim: schedule into the past: at=%s now=%s", t, k.now)
	}
	if t < k.now {
		t = k.now
	}
	k.seq++
	ev := k.newEvent()
	ev.at, ev.seq, ev.fn, ev.tag = t, k.seq, fn, tag
	k.heap.push(ev)
	return &ev.timer
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next pending event. It reports whether an event
// was executed (false when the queue is empty).
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		ev := k.heap.pop()
		fn := ev.fn
		ev.fn = nil // release the closure: the chunk arena outlives the event
		if ev.canceled {
			continue
		}
		k.now = ev.at
		ev.fired = true
		k.steps++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty, Stop is called, the step
// budget is exhausted, or virtual time would pass until (exclusive). Pass
// until <= 0 to run with no time bound. It returns the time at which it
// stopped.
func (k *Kernel) Run(until Time) Time {
	k.stopped = false
	for !k.stopped {
		if k.maxStep != 0 && k.steps >= k.maxStep {
			break
		}
		if len(k.heap) == 0 {
			// Virtual time passes even with nothing scheduled: a bounded
			// run always ends at its bound.
			if until > 0 && k.now < until {
				k.now = until
			}
			break
		}
		next := k.heap[0]
		if next.canceled {
			k.heap.pop().fn = nil
			continue
		}
		if until > 0 && next.at >= until {
			k.now = until
			break
		}
		k.Step()
	}
	return k.now
}

// RunFor executes events for virtual duration d from the current time.
func (k *Kernel) RunFor(d Duration) Time { return k.Run(k.now.Add(d)) }

// Drain runs until no events remain (subject to the step budget).
func (k *Kernel) Drain() Time { return k.Run(0) }

// Pending returns the number of scheduled, non-canceled events.
func (k *Kernel) Pending() int {
	n := 0
	for _, ev := range k.heap {
		if !ev.canceled {
			n++
		}
	}
	return n
}
