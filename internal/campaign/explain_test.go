package campaign

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/infra"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// nopOnly is a strategy that proposes exactly one plan: the identity
// perturbation. Campaigns using it detect iff the reference run detects.
type nopOnly struct{}

func (nopOnly) Name() string                                { return "nop-only" }
func (nopOnly) Plans(core.Target, *trace.Trace) []core.Plan { return []core.Plan{core.NopPlan{}} }

// seedGatedTarget only ever violates its bug oracle in worlds built with
// the given seed — a stand-in for bugs that need a specific world seed's
// event interleaving to surface.
func seedGatedTarget(bugSeed int64) core.Target {
	return core.Target{
		Name: "seed-gated",
		Bug:  "SeedGated",
		Build: func(seed int64) *infra.Cluster {
			opts := infra.DefaultOptions()
			opts.Seed = seed
			opts.Nodes = []string{"n1"}
			opts.EnableVolumeController = false
			c := infra.New(opts)
			if seed == bugSeed {
				c.Oracles.Add(oracle.Func{OracleName: "SeedGated", CheckFunc: func(now sim.Time) *oracle.Violation {
					if now < sim.Time(2*sim.Second) {
						return nil
					}
					return &oracle.Violation{Oracle: "SeedGated", Detail: "seed-gated bug fired"}
				}})
			}
			return c
		},
		Workload: func(c *infra.Cluster) {},
		Horizon:  3 * sim.Second,
	}
}

// TestCrossSeedAggregation regression-tests the sweep-level headline: when
// only a later seed in the sweep detects, Result.Campaign must report that
// detection (with executions accumulated across the preceding seeds), not
// silently mirror the first seed's non-detection.
func TestCrossSeedAggregation(t *testing.T) {
	target := seedGatedTarget(7)
	cfg := Config{Workers: 2, Seeds: []int64{1, 7}, MaxExecutions: 10}
	res := New(cfg).Run(target, nopOnly{})

	if !res.Detected {
		t.Fatal("sweep-level Detected is false although seed 7 detects")
	}
	if !res.Campaign.Detected {
		t.Fatal("Result.Campaign hides the seed-7 detection (pre-fix behaviour: Campaign was always Seeds[0]'s)")
	}
	if res.DetectedSeed != 7 {
		t.Fatalf("DetectedSeed = %d, want 7", res.DetectedSeed)
	}
	if len(res.Seeds) != 2 || res.Seeds[0].Campaign.Detected || !res.Seeds[1].Campaign.Detected {
		t.Fatalf("per-seed results malformed: %+v", res.Seeds)
	}
	// Executions-to-first-repro accumulates the fruitless seed-1 work.
	want := res.Seeds[0].Campaign.Executions + res.Seeds[1].Campaign.Executions
	if res.Campaign.Executions != want {
		t.Fatalf("Campaign.Executions = %d, want %d (seed-1 spend + seed-7 detection)",
			res.Campaign.Executions, want)
	}
}

// TestExplainPassPopulatesBuckets verifies the engine's explanation pass:
// every detected bucket carries a seed-correct minimal plan, the spent
// minimization executions, and a causal chain that terminates at the
// oracle violation.
func TestExplainPassPopulatesBuckets(t *testing.T) {
	target := workload.Target56261()
	cfg := Config{Workers: 2, Seeds: []int64{1, 7}, MaxExecutions: 40, Explain: true}
	res := New(cfg).Run(target, core.NewPlanner())
	if !res.Detected {
		t.Fatal("campaign missed 56261")
	}
	explained := 0
	for _, b := range res.Buckets {
		if !b.Detected {
			if b.Explanation != nil {
				t.Fatalf("undetected bucket %s carries an explanation", b.Signature)
			}
			continue
		}
		explained++
		if b.MinimalPlan == "" || b.MinimalPlanID == "" {
			t.Fatalf("detected bucket %s has no minimal plan", b.Signature)
		}
		if b.MinimizeExecutions == 0 {
			t.Fatalf("detected bucket %s reports zero minimization executions", b.Signature)
		}
		e := b.Explanation
		if e == nil {
			t.Fatalf("detected bucket %s has no explanation", b.Signature)
		}
		if e.Seed != b.ExampleSeed {
			t.Fatalf("bucket %s explained under seed %d, want example seed %d", b.Signature, e.Seed, b.ExampleSeed)
		}
		if len(e.Chain) == 0 {
			t.Fatalf("bucket %s has an empty causal chain", b.Signature)
		}
		last := e.Chain[len(e.Chain)-1]
		if last.Kind != explain.StepViolation {
			t.Fatalf("bucket %s chain ends with %q, want %q", b.Signature, last.Kind, explain.StepViolation)
		}
	}
	if explained == 0 {
		t.Fatal("no detected bucket to check")
	}
	if res.Stats.ExplainedBuckets != explained {
		t.Fatalf("Stats.ExplainedBuckets = %d, want %d", res.Stats.ExplainedBuckets, explained)
	}
	if res.Stats.MinimizeExecutions == 0 {
		t.Fatal("Stats.MinimizeExecutions = 0 despite explained buckets")
	}
}

func ndjsonBytes(t *testing.T, cfg Config, target core.Target, strat core.Strategy) []byte {
	t.Helper()
	res := New(cfg).Run(target, strat)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, res, cfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestNDJSONDeterministicAcrossWorkers pins the telemetry determinism
// guarantee for unguided campaigns: the full stream — executions, buckets,
// minimized plans, explanations — is byte-identical at any -parallel value.
func TestNDJSONDeterministicAcrossWorkers(t *testing.T) {
	target := workload.Target56261()
	var want []byte
	for _, workers := range []int{1, 2, 4} {
		cfg := Config{Workers: workers, Seeds: []int64{1, 7}, MaxExecutions: 40, Collect: true, Explain: true}
		got := ndjsonBytes(t, cfg, target, core.NewPlanner())
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("NDJSON stream differs at %d workers", workers)
		}
	}
}

// TestNDJSONDeterministicAcrossReruns covers the guided mode: at a fixed
// worker count, repeated guided campaigns produce byte-identical streams.
func TestNDJSONDeterministicAcrossReruns(t *testing.T) {
	target := workload.Target56261()
	cfg := Config{Workers: 3, Guided: true, Seeds: []int64{1}, MaxExecutions: 40, Collect: true, Explain: true}
	a := ndjsonBytes(t, cfg, target, core.NewPlanner())
	b := ndjsonBytes(t, cfg, target, core.NewPlanner())
	if !bytes.Equal(a, b) {
		t.Fatal("guided NDJSON stream is not reproducible at a fixed worker count")
	}
}
