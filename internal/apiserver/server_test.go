package apiserver

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
)

// harness wires a store server and n apiservers into one world, plus a
// bare client node for issuing API calls.
type harness struct {
	w    *sim.World
	st   *store.Server
	apis []*Server
	cl   *testClient
}

type testClient struct {
	id     sim.NodeID
	rpc    *sim.RPCClient
	w      *sim.World
	pushes []*WatchPushMsg
}

func (c *testClient) HandleMessage(m *sim.Message) {
	if c.rpc.HandleResponse(m) {
		return
	}
	if p, ok := m.Payload.(*WatchPushMsg); ok {
		c.pushes = append(c.pushes, p)
	}
}

func (c *testClient) call(to sim.NodeID, method string, body any) (any, error) {
	var out any
	var outErr error
	done := false
	c.rpc.Call(to, method, body, func(b any, err error) { out, outErr, done = b, err, true })
	for !done && c.w.Kernel().Step() {
	}
	if !done {
		return nil, errors.New("no response")
	}
	return out, outErr
}

func newHarness(t *testing.T, nAPI int) *harness {
	t.Helper()
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	h := &harness{w: w, st: store.NewServer(w, "etcd", store.New())}
	for i := 0; i < nAPI; i++ {
		id := sim.NodeID([]string{"api-1", "api-2", "api-3"}[i])
		h.apis = append(h.apis, New(w, id, DefaultConfig("etcd")))
	}
	h.cl = &testClient{id: "client", w: w}
	h.cl.rpc = sim.NewRPCClient(w.Network(), "client", 300*sim.Millisecond)
	w.Network().Register("client", h.cl)
	w.Kernel().RunFor(100 * sim.Millisecond) // let apiservers sync
	return h
}

func mkPod(name string, node string) *cluster.Object {
	return cluster.NewPod(name, "uid-"+name, cluster.PodSpec{NodeName: node, Phase: cluster.PodRunning})
}

func TestBootstrapReady(t *testing.T) {
	h := newHarness(t, 2)
	for _, a := range h.apis {
		if !a.Ready() {
			t.Fatalf("%s not ready after bootstrap", a.ID())
		}
	}
}

func TestCreateGetListThroughCache(t *testing.T) {
	h := newHarness(t, 2)
	resp, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k1")})
	if err != nil {
		t.Fatal(err)
	}
	wr := resp.(*WriteResponse)
	if wr.Object.Meta.ResourceVersion == 0 {
		t.Fatal("create did not stamp resource version")
	}
	// Both apiservers converge via their store watches.
	h.w.Kernel().RunFor(50 * sim.Millisecond)
	for _, api := range []sim.NodeID{"api-1", "api-2"} {
		g, err := h.cl.call(api, MethodGet, &GetRequest{Kind: cluster.KindPod, Name: "p1"})
		if err != nil {
			t.Fatalf("%s get: %v", api, err)
		}
		gr := g.(*GetResponse)
		if !gr.Found || gr.Object.Pod.NodeName != "k1" {
			t.Fatalf("%s get = %+v", api, gr)
		}
		l, err := h.cl.call(api, MethodList, &ListRequest{Kind: cluster.KindPod})
		if err != nil || len(l.(*ListResponse).Objects) != 1 {
			t.Fatalf("%s list: %v %+v", api, err, l)
		}
	}
}

func TestCreateConflictAndUpdateGuards(t *testing.T) {
	h := newHarness(t, 1)
	resp, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k1")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k2")}); !IsAlreadyExists(err) {
		t.Fatalf("duplicate create: %v", err)
	}
	obj := resp.(*WriteResponse).Object
	obj.Pod.NodeName = "k2"
	u, err := h.cl.call("api-1", MethodUpdate, &UpdateRequest{Object: obj})
	if err != nil {
		t.Fatal(err)
	}
	// Update again with the stale RV → conflict.
	stale := obj.Clone()
	stale.Pod.NodeName = "k3"
	if _, err := h.cl.call("api-1", MethodUpdate, &UpdateRequest{Object: stale}); !IsConflict(err) {
		t.Fatalf("stale update: %v", err)
	}
	_ = u
}

func TestDeleteGuards(t *testing.T) {
	h := newHarness(t, 1)
	resp, _ := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k1")})
	rv := resp.(*WriteResponse).Object.Meta.ResourceVersion
	if _, err := h.cl.call("api-1", MethodDelete, &DeleteRequest{Kind: cluster.KindPod, Name: "p1", ExpectRV: rv + 99}); !IsConflict(err) {
		t.Fatalf("guarded delete with wrong RV: %v", err)
	}
	if _, err := h.cl.call("api-1", MethodDelete, &DeleteRequest{Kind: cluster.KindPod, Name: "p1", ExpectRV: rv}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cl.call("api-1", MethodDelete, &DeleteRequest{Kind: cluster.KindPod, Name: "p1"}); !IsNotFound(err) {
		t.Fatalf("delete of absent object: %v", err)
	}
}

func TestWatchDeliversTypedEvents(t *testing.T) {
	h := newHarness(t, 1)
	if _, err := h.cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindPod, StartRev: 0, SubID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k1")}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)
	if len(h.cl.pushes) == 0 {
		t.Fatal("no watch push")
	}
	ev := h.cl.pushes[0].Events[0]
	if ev.Type != Added || ev.Object.Meta.Name != "p1" {
		t.Fatalf("event = %+v", ev)
	}
	// Update → Modified; Delete → Deleted with tombstone.
	g, _ := h.cl.call("api-1", MethodGet, &GetRequest{Kind: cluster.KindPod, Name: "p1"})
	obj := g.(*GetResponse).Object
	obj.Pod.Phase = cluster.PodTerminating
	if _, err := h.cl.call("api-1", MethodUpdate, &UpdateRequest{Object: obj}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cl.call("api-1", MethodDelete, &DeleteRequest{Kind: cluster.KindPod, Name: "p1"}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)
	var types []EventType
	for _, p := range h.cl.pushes {
		for _, e := range p.Events {
			types = append(types, e.Type)
		}
	}
	if len(types) != 3 || types[1] != Modified || types[2] != Deleted {
		t.Fatalf("event types = %v", types)
	}
}

func TestWatchWindowExpiry(t *testing.T) {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	store.NewServer(w, "etcd", store.New())
	cfg := DefaultConfig("etcd")
	cfg.WindowSize = 5
	api := New(w, "api-1", cfg)
	cl := &testClient{id: "client", w: w}
	cl.rpc = sim.NewRPCClient(w.Network(), "client", 300*sim.Millisecond)
	w.Network().Register("client", cl)
	w.Kernel().RunFor(100 * sim.Millisecond)

	for i := 0; i < 10; i++ {
		if _, err := cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod(
			string(rune('a'+i)), "k1")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Kernel().RunFor(100 * sim.Millisecond)
	// StartRev 1 fell out of the 5-event window.
	if _, err := cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindPod, StartRev: 1, SubID: 9}); !IsTooOld(err) {
		t.Fatalf("expired window watch: %v", err)
	}
	// Watching from the cache frontier is fine.
	if _, err := cl.call("api-1", MethodWatch, &WatchRequest{Kind: cluster.KindPod, StartRev: api.CachedRevision(), SubID: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedAPIServerGoesStale(t *testing.T) {
	h := newHarness(t, 2)
	if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k1")}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)

	// Cut api-2 from the store: its cache freezes (staleness, Fig. 3a).
	h.w.Network().Partition("api-2", "etcd")
	if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p2", "k2")}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(2 * sim.Second)

	l1, _ := h.cl.call("api-1", MethodList, &ListRequest{Kind: cluster.KindPod})
	l2, _ := h.cl.call("api-2", MethodList, &ListRequest{Kind: cluster.KindPod})
	if n := len(l1.(*ListResponse).Objects); n != 2 {
		t.Fatalf("api-1 sees %d pods, want 2", n)
	}
	if n := len(l2.(*ListResponse).Objects); n != 1 {
		t.Fatalf("api-2 sees %d pods, want 1 (stale)", n)
	}

	// Heal: api-2 catches up via its resync poll.
	h.w.Network().Heal("api-2", "etcd")
	h.w.Kernel().RunFor(2 * sim.Second)
	l2, _ = h.cl.call("api-2", MethodList, &ListRequest{Kind: cluster.KindPod})
	if n := len(l2.(*ListResponse).Objects); n != 2 {
		t.Fatalf("api-2 sees %d pods after heal, want 2", n)
	}
}

func TestQuorumReadBypassesStaleCache(t *testing.T) {
	h := newHarness(t, 2)
	if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k1")}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)
	// Hold all store->api-2 watch pushes: cache staleness without cutting
	// the RPC path.
	h.w.Network().AddInterceptor(sim.InterceptorFunc(func(m *sim.Message) sim.Decision {
		if m.Kind == store.KindWatchPush && m.To == "api-2" {
			return sim.Decision{Verdict: sim.Drop}
		}
		return sim.Decision{Verdict: Pass()}
	}))
	if _, err := h.cl.call("api-1", MethodDelete, &DeleteRequest{Kind: cluster.KindPod, Name: "p1"}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)

	// Cached read on api-2 still shows the deleted pod...
	g, err := h.cl.call("api-2", MethodGet, &GetRequest{Kind: cluster.KindPod, Name: "p1"})
	if err != nil {
		t.Fatal(err)
	}
	if !g.(*GetResponse).Found {
		t.Skip("api-2 already resynced; staleness window missed")
	}
	// ...but a quorum read sees the truth.
	q, err := h.cl.call("api-2", MethodGet, &GetRequest{Kind: cluster.KindPod, Name: "p1", Quorum: true})
	if err != nil {
		t.Fatal(err)
	}
	if q.(*GetResponse).Found {
		t.Fatal("quorum read returned deleted object")
	}
}

// Pass returns the pass verdict (helper to keep the interceptor literal
// readable).
func Pass() sim.Verdict { return sim.Pass }

func TestAPIServerCrashRestartRebuildsCache(t *testing.T) {
	h := newHarness(t, 1)
	if _, err := h.cl.call("api-1", MethodCreate, &CreateRequest{Object: mkPod("p1", "k1")}); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(50 * sim.Millisecond)
	if err := h.w.Crash("api-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cl.call("api-1", MethodList, &ListRequest{Kind: cluster.KindPod}); !errors.Is(err, sim.ErrRPCTimeout) {
		t.Fatalf("list on crashed apiserver: %v", err)
	}
	if err := h.w.Restart("api-1"); err != nil {
		t.Fatal(err)
	}
	h.w.Kernel().RunFor(200 * sim.Millisecond)
	l, err := h.cl.call("api-1", MethodList, &ListRequest{Kind: cluster.KindPod})
	if err != nil || len(l.(*ListResponse).Objects) != 1 {
		t.Fatalf("after restart: %v %+v", err, l)
	}
}
