package regions_test

import (
	"fmt"
	"testing"

	"repro/internal/apiserver"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/store"
)

type fixture struct {
	w       *sim.World
	servers []*regions.RegionServer
	mgr     *regions.Manager
}

func newFixture(t *testing.T, mode regions.Mode, serverNames []string) *fixture {
	t.Helper()
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond, Jitter: sim.Millisecond / 2})
	store.NewServer(w, "etcd", store.New())
	apiserver.New(w, "api-1", apiserver.DefaultConfig("etcd"))
	f := &fixture{w: w}
	for _, name := range serverNames {
		f.servers = append(f.servers, regions.NewRegionServer(w, name))
	}
	f.mgr = regions.NewManager(w, regions.ManagerConfig{APIServer: "api-1", Mode: mode})
	w.Kernel().RunFor(200 * sim.Millisecond)
	return f
}

func (f *fixture) create(t *testing.T, region, owner string) {
	t.Helper()
	done := false
	f.mgr.CreateRegion(region, owner, func(err error) {
		if err != nil {
			t.Errorf("create %s: %v", region, err)
		}
		done = true
	})
	for !done && f.w.Kernel().Step() {
	}
}

func (f *fixture) move(t *testing.T, region, to string) error {
	t.Helper()
	var out error
	done := false
	f.mgr.Move(region, to, func(err error) { out = err; done = true })
	for !done && f.w.Kernel().Step() {
	}
	if !done {
		t.Fatalf("move %s->%s never completed", region, to)
	}
	return out
}

func ownerOf(f *fixture, region string) []string {
	var out []string
	for _, s := range f.servers {
		for _, r := range s.Owned() {
			if r == region {
				out = append(out, string(s.ID()))
			}
		}
	}
	return out
}

func TestCreateAndMoveSyncMode(t *testing.T) {
	f := newFixture(t, regions.ModeSyncBeforeCAS, []string{"a", "b", "c"})
	f.create(t, "r1", "a")
	f.w.Kernel().RunFor(100 * sim.Millisecond)
	if got := ownerOf(f, "r1"); len(got) != 1 || got[0] != "rs-a" {
		t.Fatalf("owners = %v", got)
	}
	if err := f.move(t, "r1", "b"); err != nil {
		t.Fatal(err)
	}
	f.w.Kernel().RunFor(100 * sim.Millisecond)
	if got := ownerOf(f, "r1"); len(got) != 1 || got[0] != "rs-b" {
		t.Fatalf("owners after move = %v", got)
	}
	if f.mgr.Succeeded != 1 || f.mgr.CASFailures != 0 {
		t.Fatalf("mgr stats: %+v", *f.mgr)
	}
}

// TestStaleBlindModeBreaksAtomicity reproduces HBASE-3136: back-to-back
// transitions against a cached view direct the "close" at the wrong
// previous owner, leaving the region served twice.
func TestStaleBlindModeBreaksAtomicity(t *testing.T) {
	f := newFixture(t, regions.ModeStaleBlind, []string{"a", "b", "c"})
	f.create(t, "r1", "a")
	f.w.Kernel().RunFor(100 * sim.Millisecond)

	// Move a->b, then immediately b->c. In blind mode the second move
	// reads the apiserver cache, which may still say owner=a, so server b
	// is never told to close.
	dual := false
	for i := 0; i < 20 && !dual; i++ {
		to1, to2 := "b", "c"
		if i%2 == 1 {
			to1, to2 = "c", "b"
		}
		done := 0
		f.mgr.Move("r1", to1, func(error) { done++ })
		f.mgr.Move("r1", to2, func(error) { done++ })
		for done < 2 && f.w.Kernel().Step() {
		}
		dual = len(regions.DualOwners(f.servers)) > 0
	}
	if !dual {
		t.Fatal("stale-blind mode never produced dual ownership")
	}
}

// TestOptimisticCASStaysAtomic shows HBASE-3137's proposal: cached reads
// with guarded writes retry on staleness but never produce dual owners.
func TestOptimisticCASStaysAtomic(t *testing.T) {
	f := newFixture(t, regions.ModeOptimisticCAS, []string{"a", "b", "c"})
	f.create(t, "r1", "a")
	f.w.Kernel().RunFor(100 * sim.Millisecond)
	targets := []string{"b", "c", "a", "c", "b", "a"}
	for i, to := range targets {
		done := false
		f.mgr.Move("r1", to, func(error) { done = true })
		for !done && f.w.Kernel().Step() {
		}
		if dual := regions.DualOwners(f.servers); len(dual) != 0 {
			t.Fatalf("dual owners after move %d: %v", i, dual)
		}
	}
	f.w.Kernel().RunFor(200 * sim.Millisecond)
	if got := ownerOf(f, "r1"); len(got) != 1 {
		t.Fatalf("final owners = %v", got)
	}
}

func TestSyncModeStaysAtomicUnderChurn(t *testing.T) {
	f := newFixture(t, regions.ModeSyncBeforeCAS, []string{"a", "b", "c"})
	for i := 0; i < 4; i++ {
		f.create(t, fmt.Sprintf("r%d", i), "a")
	}
	f.w.Kernel().RunFor(100 * sim.Millisecond)
	names := []string{"a", "b", "c"}
	for round := 0; round < 10; round++ {
		for i := 0; i < 4; i++ {
			region := fmt.Sprintf("r%d", i)
			to := names[(round+i)%3]
			done := false
			f.mgr.Move(region, to, func(error) { done = true })
			for !done && f.w.Kernel().Step() {
			}
		}
		if dual := regions.DualOwners(f.servers); len(dual) != 0 {
			t.Fatalf("round %d dual owners: %v", round, dual)
		}
	}
}

func TestMoveUnknownRegionFails(t *testing.T) {
	f := newFixture(t, regions.ModeSyncBeforeCAS, []string{"a"})
	if err := f.move(t, "ghost", "a"); err == nil {
		t.Fatal("moving unknown region succeeded")
	}
}

func TestServerCrashLosesRegions(t *testing.T) {
	f := newFixture(t, regions.ModeSyncBeforeCAS, []string{"a", "b"})
	f.create(t, "r1", "a")
	f.w.Kernel().RunFor(100 * sim.Millisecond)
	if err := f.w.Crash(regions.ServerID("a")); err != nil {
		t.Fatal(err)
	}
	if err := f.w.Restart(regions.ServerID("a")); err != nil {
		t.Fatal(err)
	}
	if got := ownerOf(f, "r1"); len(got) != 0 {
		t.Fatalf("restarted server still serves: %v", got)
	}
}
