package sim

import (
	"fmt"
	"sort"
)

// Process is a simulated component with a crash/restart lifecycle.
//
// Crash must drop all volatile state and stop reacting to messages and
// timers. Restart must bring the process back with only its durable state
// (whatever it persisted into the store / WAL); it typically re-lists from
// an upstream source — which is exactly where time-travel bugs live.
type Process interface {
	ID() NodeID
	Crash()
	Restart()
}

// World bundles a kernel, a network, and a registry of crashable processes.
// It is the unit the testing tool constructs per execution: one World per
// test plan, always from the same seed.
type World struct {
	kernel *Kernel
	net    *Network
	procs  map[NodeID]Process
	downAt map[NodeID]Time
}

// WorldConfig configures a new World.
type WorldConfig struct {
	Seed    int64
	Latency Duration // base one-way network latency
	Jitter  Duration // uniform jitter in [0, Jitter)
}

// DefaultWorldConfig returns the configuration used by most experiments:
// 1ms base latency with 0.5ms jitter.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{Seed: 1, Latency: Millisecond, Jitter: Millisecond / 2}
}

// NewWorld creates a world with its own kernel and network.
func NewWorld(cfg WorldConfig) *World {
	k := NewKernel(cfg.Seed)
	return &World{
		kernel: k,
		net:    NewNetwork(k, cfg.Latency, cfg.Jitter),
		procs:  make(map[NodeID]Process),
		downAt: make(map[NodeID]Time),
	}
}

// Kernel returns the world's kernel.
func (w *World) Kernel() *Kernel { return w.kernel }

// Network returns the world's network.
func (w *World) Network() *Network { return w.net }

// Now returns current virtual time.
func (w *World) Now() Time { return w.kernel.Now() }

// AddProcess registers p for fault injection by ID.
func (w *World) AddProcess(p Process) {
	w.procs[p.ID()] = p
}

// Process looks up a registered process.
func (w *World) Process(id NodeID) (Process, bool) {
	p, ok := w.procs[id]
	return p, ok
}

// ProcessIDs returns all registered process IDs in sorted order.
func (w *World) ProcessIDs() []NodeID {
	ids := make([]NodeID, 0, len(w.procs))
	for id := range w.procs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Crash marks the process down on the network and invokes its Crash hook.
func (w *World) Crash(id NodeID) error {
	p, ok := w.procs[id]
	if !ok {
		return fmt.Errorf("sim: crash: unknown process %q", id)
	}
	if w.net.Down(id) {
		return nil
	}
	w.net.SetDown(id, true)
	w.downAt[id] = w.kernel.Now()
	p.Crash()
	return nil
}

// Restart brings a crashed process back up.
func (w *World) Restart(id NodeID) error {
	p, ok := w.procs[id]
	if !ok {
		return fmt.Errorf("sim: restart: unknown process %q", id)
	}
	if !w.net.Down(id) {
		return nil
	}
	w.net.SetDown(id, false)
	delete(w.downAt, id)
	p.Restart()
	return nil
}

// CrashFor crashes a process now and schedules its restart after d.
func (w *World) CrashFor(id NodeID, d Duration) error {
	if err := w.Crash(id); err != nil {
		return err
	}
	w.kernel.Schedule(d, func() { _ = w.Restart(id) })
	return nil
}

// Crashed reports whether id is currently down.
func (w *World) Crashed(id NodeID) bool { return w.net.Down(id) }
