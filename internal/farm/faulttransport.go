package farm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FaultTransport wraps any Transport and injects one scripted fault into
// the worker→coordinator stream, deterministically: the relay counts
// protocol frames as they pass and fires the fault exactly at the
// configured frame, every run. It is the test substrate for the
// supervision layer — chaos with a reproducible script instead of
// kill -9 and hope.
//
// Fault kinds:
//
//	kill   stop relaying and close the stream (clean EOF — a worker
//	       that exited or was OOM-killed between writes)
//	stall  swallow the triggering frame and everything after it (a
//	       livelocked or wedged worker: the stream stays open, silent,
//	       until the coordinator's task deadline fires)
//	torn   forward half of the triggering frame's bytes, then close (a
//	       worker killed mid-write: the coordinator sees a malformed
//	       partial line — a ProtocolError)
//
// The coordinator→worker direction passes through untouched.
const (
	FaultKill  = "kill"
	FaultStall = "stall"
	FaultTorn  = "torn"
)

// Fault scripts one injection. Frame is 1-based: the Nth matching frame
// is the one consumed by the fault. Task, when non-nil, restricts
// counting to frames carrying that task_id — the handle the poison-task
// tests use to kill every worker that touches one task. (Frames for
// task 0 omit the task_id field on the wire, so task-scoped faults
// target IDs >= 1.)
type Fault struct {
	Kind  string
	Frame int
	Task  *int
}

// ParseChaos parses a chaos script: comma-separated kind@frame entries,
// e.g. "kill@4,stall@9,torn@6". Entry i scripts the fault for worker
// slot i's first incarnation; respawns come up clean. An entry "-"
// leaves its slot fault-free.
func ParseChaos(s string) ([]Fault, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Fault
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "-" {
			out = append(out, Fault{})
			continue
		}
		kind, at, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("farm: chaos entry %q: want kind@frame", entry)
		}
		switch kind {
		case FaultKill, FaultStall, FaultTorn:
		default:
			return nil, fmt.Errorf("farm: chaos entry %q: unknown fault kind %q", entry, kind)
		}
		frame, err := strconv.Atoi(at)
		if err != nil || frame < 1 {
			return nil, fmt.Errorf("farm: chaos entry %q: frame must be a positive integer", entry)
		}
		out = append(out, Fault{Kind: kind, Frame: frame})
	}
	return out, nil
}

// FaultTransport applies one Fault to an Inner transport's output
// stream. A zero-Kind fault passes everything through.
type FaultTransport struct {
	Inner Transport
	Fault Fault
}

func (t *FaultTransport) Start() (io.WriteCloser, io.Reader, error) {
	in, out, err := t.Inner.Start()
	if err != nil {
		return nil, nil, err
	}
	if t.Fault.Kind == "" {
		return in, out, nil
	}
	pr, pw := io.Pipe()
	go t.relay(out, pw)
	return in, pr, nil
}

// relay copies worker frames to the coordinator until the fault fires.
// After firing it keeps draining the worker (so a blocked writer doesn't
// deadlock the teardown) but never forwards another byte.
func (t *FaultTransport) relay(out io.Reader, pw *io.PipeWriter) {
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 64<<10), maxFrameBytes)
	matched := 0
	fired := false
	for sc.Scan() {
		line := sc.Bytes()
		if fired {
			continue // draining post-fault
		}
		if t.matches(line) {
			matched++
			if matched == t.Fault.Frame {
				fired = true
				switch t.Fault.Kind {
				case FaultKill:
					t.Inner.Kill()
					pw.Close() // reader sees clean EOF
				case FaultStall:
					// Swallow silently; the stream stays open and the
					// coordinator's deadline is the only way out.
				case FaultTorn:
					t.Inner.Kill()
					half := line[:len(line)/2]
					_, _ = pw.Write(half) // no newline: a torn partial frame
					pw.Close()
				}
				continue
			}
		}
		msg := make([]byte, 0, len(line)+1)
		msg = append(msg, line...)
		msg = append(msg, '\n')
		if _, err := pw.Write(msg); err != nil {
			return // coordinator hung up
		}
	}
	if !fired || t.Fault.Kind == FaultStall {
		// Worker stream ended (crash, kill, or clean exit): propagate EOF
		// so a stalled coordinator session unblocks once its deadline
		// kills the worker.
		pw.Close()
	}
}

// matches reports whether a frame counts toward the fault's trigger.
func (t *FaultTransport) matches(line []byte) bool {
	if t.Fault.Task == nil {
		return true
	}
	var probe struct {
		TaskID *int `json:"task_id"`
	}
	if err := json.Unmarshal(line, &probe); err != nil || probe.TaskID == nil {
		return false
	}
	return *probe.TaskID == *t.Fault.Task
}

func (t *FaultTransport) Kill() { t.Inner.Kill() }

func (t *FaultTransport) Wait() error { return t.Inner.Wait() }

// StderrTail exposes the inner transport's stderr capture when present.
func (t *FaultTransport) StderrTail() string {
	if st, ok := t.Inner.(stderrTailer); ok {
		return st.StderrTail()
	}
	return ""
}
