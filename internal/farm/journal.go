package farm

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/campaign"
)

// The coordinator journal makes a farm run crash-resumable: one
// append-only NDJSON file, one fsynced line per settled task, so a
// phfarm killed mid-campaign (OOM, node preemption, operator SIGKILL)
// restarts with -resume and re-dispatches only the tasks whose results
// never landed. Because each line carries the task's full deterministic
// result, a resumed run's merged artifact is byte-identical to an
// uninterrupted one — the journal is a cache of pure-function outputs,
// not a log of side effects.
//
// Format: line 1 is a header {v, kind:"header", fingerprint}; every
// subsequent line is a result, quarantine, or death entry. The
// fingerprint hashes the task list, so a journal can never resume a
// different campaign (changed seeds, targets, flags) into silently
// missing work. A torn final line — the fsync that never finished — is
// dropped on replay; a malformed line anywhere else means real
// corruption and fails loudly.

// journalVersion stamps every line; readers reject versions they don't
// understand rather than guessing at semantics.
const journalVersion = 1

// journalFile is the journal's filename inside the -journal directory.
const journalFile = "journal.ndjson"

type journalLine struct {
	V    int    `json:"v"`
	Kind string `json:"kind"` // "header", "result", "quarantine", "death"
	// header
	Fingerprint string `json:"fingerprint,omitempty"`
	// result / quarantine
	TaskID     int               `json:"task_id,omitempty"`
	Result     *campaign.Result  `json:"result,omitempty"`
	Err        string            `json:"err,omitempty"`
	Quarantine *QuarantineRecord `json:"quarantine,omitempty"`
	// death
	Death *DeathRecord `json:"death,omitempty"`
}

// ResumedTask is one settled task recovered from a journal: a completed
// result, a deterministic task error, or a quarantine verdict.
type ResumedTask struct {
	Res        *campaign.Result
	Err        string
	Quarantine *QuarantineRecord
}

// Journal appends settled-task lines to the journal file, fsyncing each
// one: a line either fully lands (and survives resume) or tears at the
// tail (and its task re-runs — deterministically, so no harm done).
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// TasksFingerprint hashes the full task list — every field that shapes
// results — into the identity a journal is bound to.
func TasksFingerprint(tasks []TaskSpec) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, spec := range tasks {
		_ = enc.Encode(spec)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// OpenJournal opens dir's journal for a campaign with the given task
// fingerprint. With resume false any existing journal is truncated and a
// fresh header written. With resume true the existing journal is
// replayed first: header version and fingerprint are verified, settled
// tasks are returned keyed by ID, a torn final line is tolerated (that
// task simply re-runs), and the file is reopened for appending.
func OpenJournal(dir, fingerprint string, resume bool) (*Journal, map[int]ResumedTask, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("farm: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	var resumed map[int]ResumedTask
	validLen := int64(0)
	if resume {
		var err error
		resumed, validLen, err = replayJournal(path, fingerprint)
		if err != nil {
			return nil, nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("farm: open journal: %w", err)
	}
	if resume {
		// Chop the torn tail (a line the dying process never finished)
		// before appending, so the replacement line starts on a clean
		// boundary instead of concatenating onto the fragment.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("farm: truncate journal tail: %w", err)
		}
		if _, err := f.Seek(validLen, 0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("farm: seek journal: %w", err)
		}
	}
	j := &Journal{f: f}
	// A fresh journal — or a resumed one whose previous process died
	// before the header landed — needs the header first.
	if validLen == 0 {
		if err := j.append(journalLine{Kind: "header", Fingerprint: fingerprint}); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, resumed, nil
}

// replayJournal reads an existing journal, validating the header and
// collecting settled tasks. A missing or empty file resumes as a fresh
// run. The returned length covers every intact line; a torn final line —
// unterminated, or terminated but unparseable with nothing after it — is
// excluded (its task just re-runs), while a malformed line followed by
// more data is corruption and fails loudly.
func replayJournal(path, fingerprint string) (map[int]ResumedTask, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("farm: read journal: %w", err)
	}

	resumed := map[int]ResumedTask{}
	sawHeader := false
	var deferred error // fatal only if intact content follows the bad line
	validLen := int64(0)
	lineNo := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated tail: torn mid-write, dropped
		}
		line := data[off : off+nl]
		off += nl + 1
		if deferred != nil {
			return nil, 0, deferred
		}
		if len(bytes.TrimSpace(line)) == 0 {
			validLen = int64(off)
			continue
		}
		lineNo++
		var jl journalLine
		if err := json.Unmarshal(line, &jl); err != nil {
			deferred = fmt.Errorf("farm: journal line %d corrupt: %w", lineNo, err)
			continue
		}
		if jl.V != journalVersion {
			return nil, 0, fmt.Errorf("farm: journal version %d, want %d", jl.V, journalVersion)
		}
		switch jl.Kind {
		case "header":
			if jl.Fingerprint != fingerprint {
				return nil, 0, fmt.Errorf("farm: journal belongs to a different campaign (fingerprint %.12s..., want %.12s...)",
					jl.Fingerprint, fingerprint)
			}
			sawHeader = true
		case "result":
			resumed[jl.TaskID] = ResumedTask{Res: jl.Result, Err: jl.Err}
		case "quarantine":
			if jl.Quarantine != nil {
				resumed[jl.Quarantine.TaskID] = ResumedTask{Quarantine: jl.Quarantine}
			}
		case "death":
			// Deaths are observability, not state: the dead worker's task
			// either settled later (a result line follows) or re-runs.
		default:
			deferred = fmt.Errorf("farm: journal line %d has unknown kind %q", lineNo, jl.Kind)
		}
		validLen = int64(off)
	}
	// deferred still set here means the bad line was the last intact one:
	// a torn tail from the fatal write, dropped by design (validLen stops
	// before it).
	if validLen > 0 && !sawHeader {
		return nil, 0, fmt.Errorf("farm: journal has no header line")
	}
	return resumed, validLen, nil
}

// Result journals one settled task (completed result or deterministic
// task error).
func (j *Journal) Result(id int, res *campaign.Result, errStr string) error {
	return j.append(journalLine{Kind: "result", TaskID: id, Result: res, Err: errStr})
}

// Quarantine journals a poison-task verdict.
func (j *Journal) Quarantine(q *QuarantineRecord) error {
	return j.append(journalLine{Kind: "quarantine", TaskID: q.TaskID, Quarantine: q})
}

// Death journals a worker death record (observability only; replay
// ignores it for state).
func (j *Journal) Death(d DeathRecord) error {
	return j.append(journalLine{Kind: "death", Death: &d})
}

func (j *Journal) append(jl journalLine) error {
	jl.V = journalVersion
	data, err := json.Marshal(jl)
	if err != nil {
		return fmt.Errorf("farm: marshal journal line: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("farm: write journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("farm: sync journal: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
