// Package partialhist is a research toolkit for reasoning about — and
// testing — modern datacenter infrastructures using partial histories, a
// from-scratch reproduction of Sun et al., "Reasoning about modern
// datacenter infrastructures using partial histories" (HotOS '21).
//
// # The model
//
// The cluster state S lives in a logically centralized, strongly
// consistent store; the history H is the ordered sequence of committed
// changes to S. Every other component — apiservers, schedulers, kubelets,
// operators — observes the world through a partial history H' ⊆ H,
// delivered via watches and layered caches. Three failure patterns grow
// out of that gap (paper §4.2): staleness (H' lags H), time traveling (a
// component re-observes its own past after a restart or upstream switch),
// and observability gaps (events of H that H' never contains).
//
// # What is in this module
//
// The repository contains a complete simulated infrastructure and the
// testing tool the paper sketches:
//
//   - internal/sim — deterministic discrete-event kernel, network with
//     interceptors (delay/drop/hold), crash/restart process model.
//   - internal/store — etcd-like MVCC store: revisions, transactions,
//     watches, leases, compaction; WAL persistence (internal/wal) and a
//     raft-replicated variant (internal/raftlite).
//   - internal/apiserver, internal/client — the two cache layers of the
//     paper's Figure 1: apiserver watch caches and client-go-style
//     informers.
//   - internal/kubelet, internal/scheduler, internal/controllers,
//     internal/operators/cassandra, internal/regions — the services under
//     test, each shipping its historical bug and the corresponding fix.
//   - internal/core — the contribution: trace-guided perturbation
//     planning (staleness / time-travel / gap plans), campaign running.
//   - internal/baselines — random fault injection, CrashTuner-like and
//     CoFI-like heuristics for comparison.
//   - internal/oracle — the safety and liveness invariants used as test
//     oracles.
//   - internal/epochs, internal/leasecache — the §6.2 epoch-bounded view
//     proposal and the §4.1 lease alternative, both measured in the
//     benchmark suite.
//
// # Entry points
//
// Run `go test -bench=. -benchmem` at the module root to regenerate every
// experiment (E1–E8 in EXPERIMENTS.md), or use the commands:
//
//	go run ./cmd/phtest      # the Section 7 bug-finding matrix
//	go run ./cmd/clustersim  # drive one scenario, watch the oracles
//	go run ./cmd/traceview   # inspect a reference trace and its plans
//
// and the runnable walkthroughs under examples/.
package partialhist
