// Package leasecache implements Gray & Cheriton leases [23 in the paper]:
// clients cache values under a time-bounded lease, and a writer must
// invalidate (or outwait) every outstanding lease before its write commits.
//
// The paper's §4.1 invokes leases as the classical alternative to the
// watch-cache design: they *eliminate* staleness at leaseholders, but
// "this sacrifices performance because writes are blocked until every
// leaseholder approves the write or the lease term expires". Experiment E8
// measures exactly that trade-off against the watch-cache path.
package leasecache

import (
	"sort"

	"repro/internal/sim"
)

// Protocol messages.
type (
	// readReq asks for the current value plus a read lease.
	readReq struct {
		Key   string
		SubID uint64
	}
	// readResp grants the lease.
	readResp struct {
		SubID     uint64
		Key       string
		Value     []byte
		Version   uint64
		ExpiresAt sim.Time
	}
	// writeReq asks the server to commit a new value.
	writeReq struct {
		Key   string
		Value []byte
		SubID uint64
	}
	// writeResp acknowledges the committed write.
	writeResp struct {
		SubID   uint64
		Version uint64
	}
	// invalidate revokes a holder's lease on a key.
	invalidate struct {
		Key     string
		Version uint64
	}
	// invalidateAck confirms the holder dropped its cache entry.
	invalidateAck struct {
		Key    string
		Holder sim.NodeID
	}
)

type leaseGrant struct {
	holder    sim.NodeID
	expiresAt sim.Time
}

type pendingWrite struct {
	key     string
	value   []byte
	client  sim.NodeID
	subID   uint64
	waiting map[sim.NodeID]bool
	timer   *sim.Timer
}

// Server owns the authoritative values and the lease table.
type Server struct {
	id    sim.NodeID
	world *sim.World
	ttl   sim.Duration

	values   map[string][]byte
	versions map[string]uint64
	leases   map[string][]leaseGrant
	writes   []*pendingWrite

	// Metrics.
	Reads         uint64
	Writes        uint64
	Invalidations uint64
	ExpiryWaits   uint64 // writes that had to out-wait an unreachable holder
	LeasesGranted uint64
}

// NewServer wires a lease server into the world.
func NewServer(w *sim.World, id sim.NodeID, ttl sim.Duration) *Server {
	s := &Server{
		id:       id,
		world:    w,
		ttl:      ttl,
		values:   make(map[string][]byte),
		versions: make(map[string]uint64),
		leases:   make(map[string][]leaseGrant),
	}
	w.Network().Register(id, s)
	return s
}

// ID returns the server's node ID.
func (s *Server) ID() sim.NodeID { return s.id }

// Crash/Restart are not modelled for the lease server (it stands in for
// the replicated store, which stays up in E8).

// HandleMessage implements sim.Handler.
func (s *Server) HandleMessage(m *sim.Message) {
	switch req := m.Payload.(type) {
	case *readReq:
		s.onRead(m.From, req)
	case *writeReq:
		s.onWrite(m.From, req)
	case *invalidateAck:
		s.onAck(req)
	}
}

func (s *Server) onRead(from sim.NodeID, req *readReq) {
	s.Reads++
	exp := s.world.Now().Add(s.ttl)
	if s.writePending(req.Key) {
		// A write is waiting for invalidations: granting a new lease now
		// would let a reader cache a value that is about to change without
		// ever being invalidated. Serve the current value uncacheable.
		exp = s.world.Now()
	}
	if s.ttl > 0 && exp > s.world.Now() {
		s.leases[req.Key] = append(s.pruned(req.Key), leaseGrant{holder: from, expiresAt: exp})
		s.LeasesGranted++
	}
	s.world.Network().Send(s.id, from, "lease.read-resp", &readResp{
		SubID:     req.SubID,
		Key:       req.Key,
		Value:     append([]byte(nil), s.values[req.Key]...),
		Version:   s.versions[req.Key],
		ExpiresAt: exp,
	})
}

// pruned drops expired grants for key.
func (s *Server) pruned(key string) []leaseGrant {
	now := s.world.Now()
	var out []leaseGrant
	for _, g := range s.leases[key] {
		if g.expiresAt > now {
			out = append(out, g)
		}
	}
	return out
}

func (s *Server) onWrite(from sim.NodeID, req *writeReq) {
	s.Writes++
	holders := s.pruned(req.Key)
	pw := &pendingWrite{
		key:     req.Key,
		value:   req.Value,
		client:  from,
		subID:   req.SubID,
		waiting: make(map[sim.NodeID]bool),
	}
	for _, g := range holders {
		if g.holder == from {
			continue // the writer's own lease does not block it
		}
		pw.waiting[g.holder] = true
		s.Invalidations++
		s.world.Network().Send(s.id, g.holder, "lease.invalidate",
			&invalidate{Key: req.Key, Version: s.versions[req.Key]})
	}
	if len(pw.waiting) == 0 {
		s.commit(pw)
		return
	}
	s.writes = append(s.writes, pw)
	// Fallback: if an invalidation ack never arrives (crashed or
	// partitioned holder), the write proceeds when the last lease term
	// expires — the blocking cost §4.1 describes.
	var latest sim.Time
	for _, g := range holders {
		if g.expiresAt > latest {
			latest = g.expiresAt
		}
	}
	wait := latest.Sub(s.world.Now())
	if wait < 0 {
		wait = 0
	}
	pw.timer = s.world.Kernel().Schedule(wait, func() {
		if s.stillPending(pw) {
			s.ExpiryWaits++
			s.finish(pw)
		}
	})
}

// writePending reports whether any write on key awaits invalidations.
func (s *Server) writePending(key string) bool {
	for _, w := range s.writes {
		if w.key == key {
			return true
		}
	}
	return false
}

func (s *Server) stillPending(pw *pendingWrite) bool {
	for _, w := range s.writes {
		if w == pw {
			return true
		}
	}
	return false
}

func (s *Server) onAck(ack *invalidateAck) {
	for _, pw := range append([]*pendingWrite(nil), s.writes...) {
		if pw.key != ack.Key {
			continue
		}
		delete(pw.waiting, ack.Holder)
		if len(pw.waiting) == 0 {
			s.finish(pw)
		}
	}
}

func (s *Server) finish(pw *pendingWrite) {
	for i, w := range s.writes {
		if w == pw {
			s.writes = append(s.writes[:i], s.writes[i+1:]...)
			break
		}
	}
	if pw.timer != nil {
		pw.timer.Cancel()
	}
	// All leases on the key are void now.
	delete(s.leases, pw.key)
	s.commit(pw)
}

func (s *Server) commit(pw *pendingWrite) {
	s.versions[pw.key]++
	s.values[pw.key] = append([]byte(nil), pw.value...)
	s.world.Network().Send(s.id, pw.client, "lease.write-resp",
		&writeResp{SubID: pw.subID, Version: s.versions[pw.key]})
}

// Holders returns the live leaseholders of key, sorted (diagnostics).
func (s *Server) Holders(key string) []sim.NodeID {
	var out []sim.NodeID
	for _, g := range s.pruned(key) {
		out = append(out, g.holder)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Version returns the authoritative version of key.
func (s *Server) Version(key string) uint64 { return s.versions[key] }

type cacheEntry struct {
	value     []byte
	version   uint64
	expiresAt sim.Time
}

// Client caches values under leases and answers invalidations.
type Client struct {
	id     sim.NodeID
	world  *sim.World
	server sim.NodeID

	cache   map[string]cacheEntry
	nextSub uint64
	pending map[uint64]func([]byte, uint64)
	writes  map[uint64]func(uint64)

	// Metrics.
	LocalHits   uint64
	ServerReads uint64
	Invalidated uint64
}

// NewClient wires a caching client into the world.
func NewClient(w *sim.World, id, server sim.NodeID) *Client {
	c := &Client{
		id:      id,
		world:   w,
		server:  server,
		cache:   make(map[string]cacheEntry),
		pending: make(map[uint64]func([]byte, uint64)),
		writes:  make(map[uint64]func(uint64)),
	}
	w.Network().Register(id, c)
	return c
}

// ID returns the client's node ID.
func (c *Client) ID() sim.NodeID { return c.id }

// HandleMessage implements sim.Handler.
func (c *Client) HandleMessage(m *sim.Message) {
	switch msg := m.Payload.(type) {
	case *readResp:
		cb, ok := c.pending[msg.SubID]
		if !ok {
			return
		}
		delete(c.pending, msg.SubID)
		c.cache[msg.Key] = cacheEntry{
			value:     append([]byte(nil), msg.Value...),
			version:   msg.Version,
			expiresAt: msg.ExpiresAt,
		}
		cb(append([]byte(nil), msg.Value...), msg.Version)
	case *writeResp:
		if cb, ok := c.writes[msg.SubID]; ok {
			delete(c.writes, msg.SubID)
			cb(msg.Version)
		}
	case *invalidate:
		c.Invalidated++
		delete(c.cache, msg.Key)
		c.world.Network().Send(c.id, c.server, "lease.invalidate-ack",
			&invalidateAck{Key: msg.Key, Holder: c.id})
	}
}

// Read returns the key's value: from the local cache while the lease is
// valid (zero network cost), otherwise via the server (one round trip plus
// a fresh lease). cb receives the value and its version.
func (c *Client) Read(key string, cb func(value []byte, version uint64)) {
	if e, ok := c.cache[key]; ok && e.expiresAt > c.world.Now() {
		c.LocalHits++
		cb(append([]byte(nil), e.value...), e.version)
		return
	}
	c.ServerReads++
	c.nextSub++
	sub := c.nextSub
	c.pending[sub] = cb
	c.world.Network().Send(c.id, c.server, "lease.read-req", &readReq{Key: key, SubID: sub})
}

// Write commits key=value through the server; cb runs when the write has
// invalidated or outwaited every lease.
func (c *Client) Write(key string, value []byte, cb func(version uint64)) {
	delete(c.cache, key) // local copy is about to be stale
	c.nextSub++
	sub := c.nextSub
	c.writes[sub] = cb
	c.world.Network().Send(c.id, c.server, "lease.write-req", &writeReq{Key: key, Value: value, SubID: sub})
}
