package corpus

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/farm"
)

const strat = "partial-history"

func runCell(t *testing.T, target string, cov *campaign.CoverageSeed) campaign.Result {
	t.Helper()
	res, err := farm.RunTask(farm.TaskSpec{
		Target:   target,
		Strategy: strat,
		Seeds:    []int64{1},
		Parallel: 2,
		Coverage: cov,
	}, nil)
	if err != nil {
		t.Fatalf("run %s: %v", target, err)
	}
	return res
}

func totalExecs(res campaign.Result) int {
	n := 0
	for _, sr := range res.Seeds {
		n += sr.Campaign.Executions
	}
	return n
}

func bucketSigs(res campaign.Result) map[string]bool {
	sigs := map[string]bool{}
	for _, b := range res.Buckets {
		sigs[b.Signature] = true
	}
	return sigs
}

// TestResumeSkipsAndKeepsBuckets is the corpus acceptance criterion: a
// resumed campaign executes at least 25% fewer plans on multiple
// targets, while re-confirming every previously-detected bucket
// signature (zero lost buckets).
func TestResumeSkipsAndKeepsBuckets(t *testing.T) {
	for _, target := range []string{"k8s-59848", "cass-op-400"} {
		target := target
		t.Run(target, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()

			first := runCell(t, target, nil)
			if !first.Detected {
				t.Fatalf("cold run did not detect — corpus test needs buckets to remember")
			}
			if err := Record(dir, target, strat, first); err != nil {
				t.Fatalf("record: %v", err)
			}

			cov, err := Load(dir, target, strat)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if cov == nil {
				t.Fatal("load returned nil for a recorded cell")
			}
			if len(cov.Regression) == 0 {
				t.Fatal("no regression plans remembered despite detection")
			}

			second := runCell(t, target, cov)
			e1, e2 := totalExecs(first), totalExecs(second)
			if e2 >= e1 {
				t.Errorf("resume executed %d >= cold %d", e2, e1)
			}
			if e2 > e1*3/4 {
				t.Errorf("resume executed %d of %d — less than the required 25%% reduction", e2, e1)
			}
			if second.Stats.CorpusSkippedPlans == 0 {
				t.Error("resume recorded zero corpus skips")
			}
			if second.Stats.CorpusRegressionPlans == 0 {
				t.Error("resume recorded zero regression plans")
			}
			if !second.Detected {
				t.Error("resume lost the detection")
			}
			got := bucketSigs(second)
			for sig := range bucketSigs(first) {
				if !got[sig] {
					t.Errorf("bucket signature %s lost on resume", sig)
				}
			}
		})
	}
}

// TestRecordMergePreservesSkipped: recording a resumed campaign (which
// skipped most plans) must not erase the skipped plans' entries —
// skipping must not forget.
func TestRecordMergePreservesSkipped(t *testing.T) {
	const target = "cass-op-400"
	dir := t.TempDir()

	first := runCell(t, target, nil)
	if err := Record(dir, target, strat, first); err != nil {
		t.Fatalf("record: %v", err)
	}
	before := readFile(t, dir, target)
	if len(before.PlanSigs[1]) == 0 {
		t.Fatal("cold record stored no healthy plan signatures")
	}

	cov, err := Load(dir, target, strat)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	second := runCell(t, target, cov)
	if err := Record(dir, target, strat, second); err != nil {
		t.Fatalf("re-record: %v", err)
	}
	after := readFile(t, dir, target)
	for plan, sig := range before.PlanSigs[1] {
		if after.PlanSigs[1][plan] != sig {
			t.Errorf("plan %q lost or changed after re-record: had %q, have %q",
				plan, sig, after.PlanSigs[1][plan])
		}
	}
	for _, b := range before.Buckets {
		found := false
		for _, a := range after.Buckets {
			if a.Signature == b.Signature {
				found = true
				if a.Count < b.Count {
					t.Errorf("bucket %s count shrank: %d -> %d", b.Signature, b.Count, a.Count)
				}
			}
		}
		if !found {
			t.Errorf("bucket %s lost after re-record", b.Signature)
		}
	}
}

// TestRefHashInvalidation: a corpus recorded under a different reference
// state hash must be ignored wholesale for that seed — the campaign runs
// cold and reports the invalidation.
func TestRefHashInvalidation(t *testing.T) {
	const target = "cass-op-400"
	dir := t.TempDir()

	first := runCell(t, target, nil)
	if err := Record(dir, target, strat, first); err != nil {
		t.Fatalf("record: %v", err)
	}

	// Tamper with the recorded world hash, as a code/workload change would.
	f := readFile(t, dir, target)
	f.RefHash[1] = "0000000000000000"
	writeFile(t, dir, target, f)

	cov, err := Load(dir, target, strat)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	third := runCell(t, target, cov)
	if third.Stats.CorpusInvalidatedSeeds != 1 {
		t.Errorf("CorpusInvalidatedSeeds = %d, want 1", third.Stats.CorpusInvalidatedSeeds)
	}
	if third.Stats.CorpusSkippedPlans != 0 || third.Stats.CorpusRegressionPlans != 0 {
		t.Errorf("invalidated seed still used corpus: %+v", third.Stats)
	}
	if e1, e3 := totalExecs(first), totalExecs(third); e1 != e3 {
		t.Errorf("invalidated run executed %d, cold run executed %d — should match", e3, e1)
	}
}

// TestVersionMismatch: a future-versioned file is an error, not silently
// misread.
func TestVersionMismatch(t *testing.T) {
	const target = "cass-op-400"
	dir := t.TempDir()
	writeFile(t, dir, target, &File{Version: 99, Target: target, Strategy: strat})
	if _, err := Load(dir, target, strat); err == nil {
		t.Fatal("expected version-mismatch error")
	}
}

// TestLoadColdCell: a never-recorded cell is a cold start, not an error.
func TestLoadColdCell(t *testing.T) {
	cov, err := Load(t.TempDir(), "k8s-59848", strat)
	if err != nil || cov != nil {
		t.Fatalf("cold cell: got (%v, %v), want (nil, nil)", cov, err)
	}
}

func readFile(t *testing.T, dir, target string) *File {
	t.Helper()
	data, err := os.ReadFile(cellPath(dir, target, strat))
	if err != nil {
		t.Fatalf("read corpus file: %v", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("parse corpus file: %v", err)
	}
	return &f
}

func writeFile(t *testing.T, dir, target string, f *File) {
	t.Helper()
	path := cellPath(dir, target, strat)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
