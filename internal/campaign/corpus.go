package campaign

// Cross-campaign corpus hooks. A persistent corpus (internal/farm/corpus)
// records, per (target, strategy), what earlier campaigns already paid
// for: coverage signatures, failure buckets, and the exact signature each
// healthy plan execution produced. CoverageSeed is the slice of that
// corpus handed to one campaign; the engine uses it two ways:
//
//   - Regression first: every previously-recorded failure bucket's example
//     plan runs before anything else, in corpus order, and the block always
//     runs to completion — so a resumed campaign re-confirms every known
//     bucket signature within its first |Regression| executions.
//   - Known-coverage skip: a plan whose previous execution (same target,
//     strategy, seed, plan ID) was healthy and non-violating is skipped
//     outright. This is a genuine skip, not a deferral: the simulation is
//     deterministic, so under an unchanged reference state hash the re-run
//     is provably byte-identical to the recorded one, and re-buying the
//     same coverage is the waste the corpus exists to prevent.
//
// Both effects are guarded per seed by the reference-trace state hash: if
// the world the corpus was recorded under no longer matches (code change,
// workload change), the corpus is ignored for that seed and the campaign
// runs cold — counted in Stats.CorpusInvalidatedSeeds, never silent.
type CoverageSeed struct {
	// RefHash maps each world seed to the reference-trace state hash (hex,
	// trace.StateHash) its corpus entries were recorded under.
	RefHash map[int64]string `json:"ref_hash,omitempty"`
	// Regression lists plan IDs to execute first, in corpus order
	// (detected buckets before undetected ones). IDs not present in the
	// current plan list are ignored.
	Regression []string `json:"regression,omitempty"`
	// KnownSignatures is the sorted set of coverage signatures previous
	// campaigns observed. Guided scheduling seeds its novelty set with
	// them, so plans predicted to re-hash into old coverage are starved
	// from the first round.
	KnownSignatures []string `json:"known_signatures,omitempty"`
	// PlanSigs maps seed → plan ID → recorded signature, for plans whose
	// previous execution completed healthy (not failed/hung) with zero
	// violations. Only those are skip-eligible: violating plans must
	// re-run so bucket evidence is reproduced, broken plans must re-run
	// because their outcome was never trustworthy.
	PlanSigs map[int64]map[string]string `json:"plan_sigs,omitempty"`
}

// corpusSchedule is the result of applying a CoverageSeed to one seed's
// execution order.
type corpusSchedule struct {
	// regression is the always-run prefix block, in corpus order.
	regression []planRef
	// rest is the remaining execution order with skips removed; the kept /
	// deferred partition survives at keptLen.
	rest    []planRef
	keptLen int
	skipped int
	// invalidated reports that the corpus recorded a different reference
	// hash for this seed and was ignored wholesale.
	invalidated bool
	// valid reports that corpus data was applied for this seed (the hash
	// matched, or the seed was never recorded and only the seed-agnostic
	// regression block applies).
	valid bool
}

// applyCorpus partitions one seed's execution order against the corpus:
// regression plans are pulled to a dedicated front block, recorded-healthy
// plans are dropped, everything else keeps its order and its kept/deferred
// position. refs carries original strategy indices; keptLen bounds the
// learning phase's kept region.
func applyCorpus(cs *CoverageSeed, seed int64, refHash string, refs []planRef, keptLen int) corpusSchedule {
	if recorded, ok := cs.RefHash[seed]; ok && recorded != refHash {
		// The world this seed's corpus entries were recorded under no
		// longer exists; pretend there is no corpus.
		return corpusSchedule{rest: refs, keptLen: keptLen, invalidated: true}
	}
	regOrder := make(map[string]int, len(cs.Regression))
	for i, id := range cs.Regression {
		if _, dup := regOrder[id]; !dup {
			regOrder[id] = i
		}
	}
	known := cs.PlanSigs[seed]

	out := corpusSchedule{valid: true}
	regression := make([]planRef, len(cs.Regression))
	regSet := make([]bool, len(cs.Regression))
	for i, pr := range refs {
		id := pr.plan.ID()
		if at, ok := regOrder[id]; ok && !regSet[at] {
			regression[at] = pr
			regSet[at] = true
			continue
		}
		if _, ok := known[id]; ok {
			out.skipped++
			continue
		}
		out.rest = append(out.rest, pr)
		if i < keptLen {
			out.keptLen++
		}
	}
	for at, ok := range regSet {
		if ok {
			out.regression = append(out.regression, regression[at])
		}
	}
	return out
}
