// Package oracle defines the safety and liveness invariants used as test
// oracles (paper §6.2 "what workloads and test oracles to use"). Oracles
// inspect ground truth — the store's (H, S) and component host state —
// never the cached views, so a violation is a real bug manifestation, not
// an artifact of staleness.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Violation is one detected invariant breach.
type Violation struct {
	Oracle string
	Time   sim.Time
	Detail string
	// Kind/Object identify the ground-truth object the invariant is about
	// (e.g. Pod/p1, PVC/cass-1-data); empty when the breach is not tied to
	// a single object. Explanations use them to anchor the causal chain.
	Kind   string `json:",omitempty"`
	Object string `json:",omitempty"`
	// Component names the acting component most directly implicated in the
	// breach, when the oracle can tell (e.g. "scheduler").
	Component string `json:",omitempty"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.Time, v.Oracle, v.Detail)
}

// Oracle checks one invariant. Check is called periodically with the
// current virtual time and returns a non-nil violation when the invariant
// is broken at this instant.
type Oracle interface {
	Name() string
	Check(now sim.Time) *Violation
}

// Func adapts a function to Oracle.
type Func struct {
	OracleName string
	CheckFunc  func(now sim.Time) *Violation
}

// Name implements Oracle.
func (f Func) Name() string { return f.OracleName }

// Check implements Oracle.
func (f Func) Check(now sim.Time) *Violation { return f.CheckFunc(now) }

// Runner evaluates a set of oracles periodically and collects the first
// violation of each.
type Runner struct {
	oracles []Oracle
	first   map[string]Violation
	order   []string
}

// NewRunner creates an empty runner.
func NewRunner() *Runner {
	return &Runner{first: make(map[string]Violation)}
}

// Add registers an oracle.
func (r *Runner) Add(o Oracle) { r.oracles = append(r.oracles, o) }

// Report records an externally detected violation (used by event-driven
// oracles hooked into the store). Only the first violation per oracle is
// kept.
func (r *Runner) Report(v Violation) {
	if _, ok := r.first[v.Oracle]; ok {
		return
	}
	r.first[v.Oracle] = v
	r.order = append(r.order, v.Oracle)
}

// CheckNow evaluates every oracle once.
func (r *Runner) CheckNow(now sim.Time) {
	for _, o := range r.oracles {
		if _, ok := r.first[o.Name()]; ok {
			continue
		}
		if v := o.Check(now); v != nil {
			r.Report(*v)
		}
	}
}

// InstallPeriodic schedules CheckNow every interval on the world's kernel,
// forever (the simulation's run bound ends it).
func (r *Runner) InstallPeriodic(w *sim.World, every sim.Duration) {
	var tick func()
	tick = func() {
		r.CheckNow(w.Now())
		w.Kernel().Schedule(every, tick)
	}
	w.Kernel().Schedule(every, tick)
}

// Violations returns all recorded violations in detection order.
func (r *Runner) Violations() []Violation {
	out := make([]Violation, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.first[name])
	}
	return out
}

// Violated reports whether the named oracle was breached.
func (r *Runner) Violated(name string) bool {
	_, ok := r.first[name]
	return ok
}

// Names returns the names of all registered oracles plus any reported-only
// ones, sorted.
func (r *Runner) Names() []string {
	set := map[string]bool{}
	for _, o := range r.oracles {
		set[o.Name()] = true
	}
	for n := range r.first {
		set[n] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
