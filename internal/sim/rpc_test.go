package sim

import (
	"errors"
	"fmt"
	"testing"
)

type rpcFixture struct {
	k      *Kernel
	n      *Network
	client *RPCClient
	server *RPCServer
}

func newRPCFixture(timeout Duration) *rpcFixture {
	k := NewKernel(1)
	n := NewNetwork(k, Millisecond, 0)
	f := &rpcFixture{k: k, n: n}
	f.client = NewRPCClient(n, "client", timeout)
	f.server = NewRPCServer(n, "server")
	n.Register("client", HandlerFunc(func(m *Message) { f.client.HandleResponse(m) }))
	n.Register("server", HandlerFunc(func(m *Message) { f.server.HandleRequest(m) }))
	return f
}

func TestRPCCallRoundTrip(t *testing.T) {
	f := newRPCFixture(0)
	f.server.Handle("echo", func(from NodeID, body any) (any, error) {
		return fmt.Sprintf("%s:%v", from, body), nil
	})
	var got any
	f.client.Call("server", "echo", 42, func(body any, err error) {
		if err != nil {
			t.Errorf("err = %v", err)
		}
		got = body
	})
	f.k.Drain()
	if got != "client:42" {
		t.Fatalf("got %v", got)
	}
}

func TestRPCRemoteError(t *testing.T) {
	f := newRPCFixture(0)
	f.server.Handle("fail", func(NodeID, any) (any, error) {
		return nil, errors.New("application exploded")
	})
	var gotErr error
	f.client.Call("server", "fail", nil, func(_ any, err error) { gotErr = err })
	f.k.Drain()
	var remote ErrRemote
	if !errors.As(gotErr, &remote) || remote.Msg != "application exploded" {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestRPCUnknownMethod(t *testing.T) {
	f := newRPCFixture(0)
	var gotErr error
	f.client.Call("server", "nope", nil, func(_ any, err error) { gotErr = err })
	f.k.Drain()
	if gotErr == nil {
		t.Fatal("unknown method succeeded")
	}
}

func TestRPCTimeoutOnPartition(t *testing.T) {
	f := newRPCFixture(100 * Millisecond)
	f.server.Handle("echo", func(NodeID, any) (any, error) { return "ok", nil })
	f.n.Partition("client", "server")
	var gotErr error
	calls := 0
	f.client.Call("server", "echo", nil, func(_ any, err error) { gotErr = err; calls++ })
	f.k.Drain()
	if !errors.Is(gotErr, ErrRPCTimeout) {
		t.Fatalf("err = %v", gotErr)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times", calls)
	}
	if f.client.PendingCalls() != 0 {
		t.Fatal("pending call leaked after timeout")
	}
}

func TestRPCLateResponseAfterTimeoutSwallowed(t *testing.T) {
	f := newRPCFixture(50 * Millisecond)
	// Handler that replies late via an async path.
	f.server.HandleAsync("slow", func(from NodeID, body any, reply Reply) {
		f.k.Schedule(200*Millisecond, func() { reply("late", nil) })
	})
	calls := 0
	var firstErr error
	f.client.Call("server", "slow", nil, func(_ any, err error) {
		calls++
		if calls == 1 {
			firstErr = err
		}
	})
	f.k.Drain()
	if calls != 1 {
		t.Fatalf("callback invoked %d times (late response not swallowed)", calls)
	}
	if !errors.Is(firstErr, ErrRPCTimeout) {
		t.Fatalf("first err = %v", firstErr)
	}
}

func TestRPCAsyncHandler(t *testing.T) {
	f := newRPCFixture(0)
	f.server.HandleAsync("defer", func(from NodeID, body any, reply Reply) {
		f.k.Schedule(30*Millisecond, func() { reply(body, nil) })
	})
	var got any
	f.client.Call("server", "defer", "deferred", func(body any, err error) { got = body })
	f.k.Drain()
	if got != "deferred" {
		t.Fatalf("got %v", got)
	}
	if f.k.Now() < Time(30*Millisecond) {
		t.Fatalf("reply arrived too early: %v", f.k.Now())
	}
}

func TestRPCResetDropsPending(t *testing.T) {
	f := newRPCFixture(0)
	f.server.Handle("echo", func(NodeID, any) (any, error) { return "ok", nil })
	called := false
	f.client.Call("server", "echo", nil, func(any, error) { called = true })
	f.client.Reset() // crash semantics before the response arrives
	f.k.Drain()
	if called {
		t.Fatal("callback ran after Reset")
	}
}

func TestRPCConcurrentCallsCorrelate(t *testing.T) {
	f := newRPCFixture(0)
	f.server.Handle("double", func(_ NodeID, body any) (any, error) {
		return body.(int) * 2, nil
	})
	results := map[int]int{}
	for i := 1; i <= 10; i++ {
		i := i
		f.client.Call("server", "double", i, func(body any, err error) {
			results[i] = body.(int)
		})
	}
	f.k.Drain()
	for i := 1; i <= 10; i++ {
		if results[i] != i*2 {
			t.Fatalf("results = %v", results)
		}
	}
}
