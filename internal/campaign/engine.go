package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/learn"
	"repro/internal/oracle"
	"repro/internal/trace"
)

// Config selects how an Engine executes campaigns.
type Config struct {
	// Workers is the number of pool goroutines executing plans
	// (0 = GOMAXPROCS). Each worker builds its own fresh cluster per
	// execution; the simulation itself stays goroutine-free.
	Workers int
	// Seeds are the world seeds to sweep; empty means {1}, the historical
	// default. Every seed records its own reference trace and generates
	// its own plans.
	Seeds []int64
	// MaxExecutions bounds plan executions per seed (0 = unlimited). The
	// reference run does not count against the bound but does count in
	// the reported Executions, matching core.RunCampaign.
	MaxExecutions int
	// Guided enables coverage-guided plan scheduling: executions are
	// instrumented with trace recorders, signatures feed back into a
	// scheduler that starves predicted-signature classes whose coverage
	// is saturated. Guided scheduling is batch-synchronous: plans are
	// dispatched in deterministic rounds of Workers, so a guided campaign
	// is reproducible run-to-run at a fixed worker count (the schedule —
	// and therefore executions-to-detection — may differ between worker
	// counts, because feedback arrives at batch granularity). Unguided
	// campaigns are byte-identical to the serial core.RunCampaign at any
	// worker count.
	Guided bool
	// Collect retains per-plan outcomes (for the campaign.json artifact)
	// and forces instrumentation even when Guided is off.
	Collect bool
	// KeepGoing disables early cancellation: the campaign executes every
	// plan (up to MaxExecutions) even after the target bug is detected,
	// so the failure buckets see every violating execution. The reported
	// CampaignResult still uses first-detection accounting.
	KeepGoing bool
	// Explain post-processes every detected failure bucket: the bucket's
	// example plan is minimized under its own seed (core.MinimizeSeed,
	// plus NarrowWindowSeed for staleness windows), re-executed once with
	// instrumentation, and turned into a causal explanation
	// (internal/explain) — the chain suppressed observation → divergent
	// view → action → oracle violation, with divergence metrics. Implies
	// instrumentation.
	Explain bool
	// EventBudget is the per-execution kernel step budget the livelock
	// watchdog enforces (0 = DefaultEventBudget). Executions that exhaust
	// the budget before reaching the virtual-time horizon are flagged Hung
	// instead of spinning the worker forever.
	EventBudget uint64
	// Prune enables the trace-learning phase (internal/learn): per seed,
	// the reference trace is mined for read-dependency profiles, plans
	// whose perturbation provably cannot intersect any consumed delivery
	// are deferred, and survivors are deduplicated into equivalence
	// classes by projected observable effect. Deferral, not deletion: the
	// deferred tail still executes when the kept set detects nothing (or
	// under KeepGoing), so a pruned campaign can never detect less than an
	// unpruned one — only later, and tail detections are surfaced as
	// Stats.PruningUnsoundDetections.
	Prune bool
	// Ranked orders the kept set by the learned impact score (consumed
	// surface density, CAS/txn proximity, deletion adjacency, past-bucket
	// class affinity) instead of raw planner order.
	Ranked bool
	// Snapshot enables copy-on-write prefix checkpointing: per (target,
	// seed), one extra plan-free run captures cluster snapshots at mined
	// freeze points, and each plan execution forks from the latest
	// checkpoint preceding the plan's earliest effect instead of
	// re-simulating the prefix from t=0. Any execution whose fork cannot
	// be proven byte-equivalent to a full replay (unsnapshotable cluster,
	// unknown plan type, strict-past violation, restore error, panic,
	// watchdog trip) silently falls back to the full-replay path, so every
	// artifact — buckets, outcomes, telemetry records — is byte-identical
	// to the same campaign with Snapshot off.
	Snapshot bool
	// Coverage seeds the campaign from a persistent cross-campaign corpus
	// (see CoverageSeed): previously-detected buckets' example plans run
	// first as an always-complete regression block, plans whose recorded
	// execution was healthy and non-violating are skipped outright, and
	// guided scheduling treats recorded signatures as already-seen. nil
	// means no corpus — the historical cold-start behavior.
	Coverage *CoverageSeed
	// OnOutcome, when non-nil, is called for every execution record as it
	// enters the deterministic execution set (reference runs included), in
	// aggregation order — the farm worker's per-execution streaming hook.
	// Called from the engine's aggregation loop, never concurrently.
	// Implies Collect-style instrumentation costs only if Collect is also
	// set; the hook itself fires regardless of Collect.
	OnOutcome func(PlanOutcome)
}

func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) seedList() []int64 {
	if len(c.Seeds) == 0 {
		return []int64{1}
	}
	return c.Seeds
}

func (c Config) instrumented() bool { return c.Guided || c.Collect || c.Explain }

func (c Config) learning() bool { return c.Prune || c.Ranked }

// Engine executes campaigns per its Config. The zero-value-free
// constructor is New; an Engine is safe for sequential reuse across
// campaigns (each Run builds fresh pool state).
type Engine struct {
	cfg Config
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// SeedResult is one seed's campaign outcome.
type SeedResult struct {
	Seed     int64               `json:"seed"`
	Campaign core.CampaignResult `json:"campaign"`
	// RefHash is the reference trace's state hash (hex) — the fingerprint
	// of the unperturbed world this seed's plans were mined from. The
	// cross-campaign corpus keys its validity guard on it: corpus entries
	// recorded under a different reference hash are ignored.
	RefHash string `json:"ref_hash,omitempty"`
}

// Result is the full outcome of one (target, strategy) campaign across
// all configured seeds.
type Result struct {
	Target   string
	Strategy string
	// Campaign is the sweep-level headline result: the first detecting
	// seed's campaign (in Config.Seeds order) with Executions accumulated
	// across the preceding non-detecting seeds — the honest
	// executions-to-first-repro of the whole sweep. When no seed detects
	// it is the first seed's result with Executions summed across every
	// seed. For single-seed unguided engines it is byte-identical to
	// core.RunCampaign(t, s, maxExecutions) — the cross-check tests rely
	// on this.
	Campaign core.CampaignResult
	// Detected reports whether any seed detected the target bug.
	Detected bool
	// DetectedSeed is the world seed of the first detection in sweep
	// order (meaningful only when Detected is true).
	DetectedSeed int64
	// Seeds holds every seed's campaign result, in Config.Seeds order.
	Seeds []SeedResult
	// Stats carries the progress counters (raw executions, wall clock,
	// executions/sec, coverage classes, detections).
	Stats Stats
	// Buckets are the violating executions deduplicated by signature
	// (instrumented runs only). With Config.Explain, detected buckets
	// additionally carry a seed-correct minimal plan and a causal
	// explanation.
	Buckets []FailureBucket
	// Outcomes are the per-plan execution records (Config.Collect only).
	Outcomes []PlanOutcome
	// Failures lists every panicked (worker guard) or livelocked
	// (event-budget watchdog) execution, in deterministic order.
	Failures []ExecutionFailure
	// Learn holds each seed's learning-phase report (Config.Prune /
	// Config.Ranked only), in sweep order: profile summaries plus every
	// prune/dedupe decision.
	Learn []SeedLearn
}

// planRef is one plan in execution order, carrying its original index in
// the strategy's plan list (the coordinate all reports use). Without
// learning the two coincide; with learning the execution order is
// kept-then-deferred and possibly impact-ranked.
type planRef struct {
	plan  core.Plan
	index int
}

// slot is one dispatched execution's record, indexed by dispatch order.
type slot struct {
	ran       bool
	planIndex int // original index in the strategy's plan order
	plan      core.Plan
	exec      core.Execution
	sig       Signature
	wall      time.Duration
	fallback  fallbackCause // why a fork fell back to full replay, if it did
}

// Run executes one campaign: for every seed, a reference run, plan
// generation, and a pooled execution of the plans; then — with
// Config.Explain — a minimization + explanation pass over every detected
// failure bucket.
func (e *Engine) Run(t core.Target, s core.Strategy) Result {
	start := time.Now()
	res := Result{Target: t.Name, Strategy: s.Name()}
	agg := newAggregator(e.cfg)
	refs := make(map[int64]*trace.Trace, len(e.cfg.seedList()))
	for i, seed := range e.cfg.seedList() {
		sr, ref := e.runSeed(t, s, i, seed, agg)
		refs[seed] = ref
		res.Seeds = append(res.Seeds, sr)
		if sr.Campaign.Detected {
			res.Detected = true
		}
	}
	res.Campaign, res.DetectedSeed = PrimaryCampaign(res.Seeds)
	if e.cfg.Explain {
		e.explainBuckets(t, agg, refs)
	}
	res.Stats = agg.stats(e.cfg, time.Since(start))
	res.Buckets = agg.bucketList()
	res.Outcomes = agg.outcomes
	res.Failures = agg.failures
	res.Learn = agg.learn
	return res
}

// PrimaryCampaign aggregates the per-seed results into the sweep-level
// headline: the first detecting seed's campaign in sweep order (its
// Executions incremented by every execution the preceding non-detecting
// seeds spent), else the first seed's campaign with the sweep's total
// executions. This is the fix for detections that only occur under a
// later seed: they used to be invisible in the printed E5 matrix because
// the primary result was unconditionally Seeds[0]. Exported because the
// farm coordinator rebuilds sweep results from per-seed shards through
// the exact same aggregation.
func PrimaryCampaign(seeds []SeedResult) (core.CampaignResult, int64) {
	spent := 0
	for _, sr := range seeds {
		if sr.Campaign.Detected {
			cr := sr.Campaign
			cr.Executions += spent
			return cr, sr.Seed
		}
		spent += sr.Campaign.Executions
	}
	cr := seeds[0].Campaign
	cr.Executions = spent
	return cr, 0
}

// Matrix runs every (target, strategy) pair — the parallel counterpart of
// core.Matrix, in the same row-major order.
func (e *Engine) Matrix(targets []core.Target, strategies []core.Strategy) []Result {
	out := make([]Result, 0, len(targets)*len(strategies))
	for _, t := range targets {
		for _, s := range strategies {
			out = append(out, e.Run(t, s))
		}
	}
	return out
}

func (e *Engine) runSeed(t core.Target, s core.Strategy, seedIdx int, seed int64, agg *aggregator) (SeedResult, *trace.Trace) {
	cr := core.CampaignResult{Target: t.Name, Strategy: s.Name()}

	// Reference run: the planning substrate, and a real execution.
	refStart := time.Now()
	ref, refViolations := core.ReferenceSeed(t, seed)
	refHash := fmt.Sprintf("%016x", ref.StateHash())
	refSlot := slot{
		ran:       true,
		planIndex: -1,
		plan:      core.NopPlan{},
		exec: core.Execution{
			Plan:       core.NopPlan{},
			Seed:       seed,
			Violations: refViolations,
			Detected:   violates(refViolations, t.Bug),
		},
		wall: time.Since(refStart),
	}
	if e.cfg.instrumented() {
		refSlot.sig = signatureOf(ref, refViolations)
	}
	agg.noteRaw()
	agg.add(seedIdx, seed, refSlot, e.cfg.instrumented())

	if refSlot.exec.Detected {
		// The bug manifests without perturbation; mirror the serial path.
		cr.PlansTotal = 1
		cr.Executions = 1
		cr.Detected = true
		cr.DetectingPlan = core.NopPlan{}.Describe()
		if fv := firstViolation(refViolations, t.Bug); fv != nil {
			cr.FirstViolation = fv
		}
		return SeedResult{Seed: seed, Campaign: cr, RefHash: refHash}, ref
	}

	plans := s.Plans(t, ref)
	cr.PlansTotal = len(plans)
	cr.Executions = 1 // the reference run

	// Prefix-checkpoint substrate: one plan-free ladder run per (target,
	// seed), shared read-only by all workers. nil (snapshotting off, an
	// unsnapshotable target, or no capturable checkpoint) means every plan
	// runs as a full replay. The ladder is infrastructure, not an
	// execution: it is not counted and leaves no trace in any artifact.
	var fs *forkState
	if e.cfg.Snapshot {
		fs = buildForkState(t, seed, plans, ref)
	}

	// Execution order: identity without learning; kept-then-deferred
	// (optionally impact-ranked) with it. Original strategy indices ride
	// along in planRefs so every report keeps its coordinates.
	refs := make([]planRef, len(plans))
	for i, p := range plans {
		refs[i] = planRef{plan: p, index: i}
	}
	keptLen := len(refs)
	if e.cfg.learning() {
		model := learn.Mine(ref, 0)
		sched := learn.BuildSchedule(model, t, plans, learn.Options{
			Prune:    e.cfg.Prune,
			Rank:     e.cfg.Ranked,
			Affinity: agg.affinity(),
		})
		refs = refs[:0]
		for _, sp := range sched.Kept {
			refs = append(refs, planRef{plan: sp.Plan, index: sp.Index})
		}
		keptLen = len(refs)
		for _, sp := range sched.Deferred {
			refs = append(refs, planRef{plan: sp.Plan, index: sp.Index})
		}
		agg.noteLearn(seed, model, sched)
	}

	// Cross-campaign corpus pass (Config.Coverage): previously-recorded
	// bucket examples become an always-complete regression block at the
	// very front, and plans whose recorded execution was healthy and
	// non-violating are skipped outright — both guarded per seed by the
	// reference state hash, so a changed world falls back to a cold run.
	var regRefs []planRef
	var preSeen []Signature
	if cs := e.cfg.Coverage; cs != nil {
		sched := applyCorpus(cs, seed, refHash, refs, keptLen)
		regRefs, refs, keptLen = sched.regression, sched.rest, sched.keptLen
		agg.noteCorpus(len(regRefs), sched.skipped, sched.invalidated)
		if sched.valid {
			preSeen = parseSignatures(cs.KnownSignatures)
		}
	}

	run := func(plans []planRef, maxExec int) ([]slot, int) {
		if e.cfg.Guided {
			return e.runGuided(t, plans, seed, maxExec, fs, preSeen)
		}
		return e.runOrdered(t, plans, seed, maxExec, fs, false)
	}

	// Regression block: corpus bucket examples, in corpus order, always
	// run to completion (no early cancel) so every known bucket signature
	// is re-confirmed even when the first regression plan already detects.
	var slots []slot
	detect := -1
	regSlots := 0
	if len(regRefs) > 0 {
		regSlotsRun, regDetect := e.runOrdered(t, regRefs, seed, e.cfg.MaxExecutions, fs, true)
		slots = regSlotsRun
		regSlots = len(regSlotsRun)
		detect = regDetect
	}
	mainBudget := 0
	if m := e.cfg.MaxExecutions; m > 0 {
		mainBudget = m - regSlots
	}
	if (detect < 0 || e.cfg.KeepGoing) && (e.cfg.MaxExecutions == 0 || mainBudget > 0) {
		mainSlots, mainDetect := run(refs[:keptLen], mainBudget)
		if mainDetect >= 0 && detect < 0 {
			detect = regSlots + mainDetect
		}
		slots = append(slots, mainSlots...)
	}
	keptSlots := len(slots)
	keptDetected := detect >= 0
	if tail := refs[keptLen:]; len(tail) > 0 && (detect < 0 || e.cfg.KeepGoing) {
		// Deferred tail: the soundness net behind pruning. It runs when the
		// kept set found nothing (pruning must never *hide* a detection,
		// only postpone the plans that could make one) or under KeepGoing
		// (so bucket sets stay identical to the unpruned campaign's).
		remaining := 0
		if m := e.cfg.MaxExecutions; m > 0 {
			remaining = m - keptSlots
		}
		if e.cfg.MaxExecutions == 0 || remaining > 0 {
			tailSlots, tailDetect := run(tail, remaining)
			if tailDetect >= 0 && detect < 0 {
				detect = keptSlots + tailDetect
			}
			slots = append(slots, tailSlots...)
		}
	}
	for i, sl := range slots {
		if !sl.ran {
			continue
		}
		agg.noteRaw()
		// Aggregate only the deterministic execution set: with early
		// cancel, workers may have raced a few executions past the
		// detecting index before noticing; those count as raw work but
		// must not perturb buckets/outcomes, or the artifact would vary
		// with the worker count. For unguided runs the deterministic set
		// is exactly the serial-equivalent prefix; guided runs aggregate
		// every execution of their (deterministic per worker count)
		// schedule. The regression block (i < regSlots) always belongs to
		// the deterministic set — it runs to completion by construction.
		if !e.cfg.Guided && !e.cfg.KeepGoing && detect >= 0 && i > detect && i >= regSlots {
			continue
		}
		if i >= keptSlots {
			// A deferred (pruned or deduped) plan executed. A detection
			// here while the kept set found nothing means a pruning
			// decision was unsound — surfaced, never swallowed.
			agg.notePrunedExecution(sl.exec.Detected && !keptDetected)
		}
		agg.add(seedIdx, seed, sl, e.cfg.instrumented())
	}

	if detect >= 0 {
		cr.Detected = true
		cr.Executions = 1 + detect + 1
		cr.DetectingPlan = slots[detect].plan.Describe()
		if fv := firstViolation(slots[detect].exec.Violations, t.Bug); fv != nil {
			cr.FirstViolation = fv
		}
	} else {
		ran := 0
		for _, sl := range slots {
			if sl.ran {
				ran++
			}
		}
		cr.Executions = 1 + ran
	}
	return SeedResult{Seed: seed, Campaign: cr, RefHash: refHash}, ref
}

// parseSignatures decodes the corpus's hex signature list; malformed
// entries are dropped (an unreadable corpus line must not kill a run).
func parseSignatures(hexes []string) []Signature {
	out := make([]Signature, 0, len(hexes))
	for _, h := range hexes {
		var v uint64
		if _, err := fmt.Sscanf(h, "%x", &v); err == nil {
			out = append(out, Signature(v))
		}
	}
	return out
}

// explainBuckets post-processes every detected failure bucket: minimize
// the example plan under the seed it was found with, re-execute the
// minimal plan once instrumented, and derive the causal explanation
// against that seed's reference trace. Buckets are visited in signature
// order, so the pass — like everything derived from the deterministic
// execution set — is reproducible.
func (e *Engine) explainBuckets(t core.Target, agg *aggregator, refs map[int64]*trace.Trace) {
	for _, sig := range agg.bucketOrder() {
		b := agg.buckets[sig]
		ex := agg.examples[sig]
		if !b.Detected || ex.plan == nil {
			continue
		}
		e.explainBucket(t, agg, b, ex, refs)
	}
}

// explainBucket minimizes and explains one bucket. It is panic-isolated:
// the minimization pass re-executes candidate plans, and a pathological
// plan must not take down the whole explanation pass — the bucket is
// simply left unexplained (the detection itself stands).
//
// With snapshotting on, a checkpoint tree rooted at the bucket's example
// plan backs the probes: minimization candidates and the instrumented
// re-execution fork from a rung captured mid-plan, after the perturbed
// prefix they share with the example, and fall back to full replays
// whenever the fork cannot be proven exact — results are identical either
// way, diagnosable fallbacks are counted.
func (e *Engine) explainBucket(t core.Target, agg *aggregator, b *FailureBucket, ex bucketExample, refs map[int64]*trace.Trace) {
	defer func() { _ = recover() }()
	runner := core.PlanRunner(core.RunPlanSeed)
	var pt *planTree
	if e.cfg.Snapshot {
		pt = buildPlanTree(t, ex.plan, ex.seed, refs[ex.seed], nil)
	}
	if pt != nil {
		runner = func(rt core.Target, q core.Plan, seed int64) core.Execution {
			if exec, _, ok, cause := pt.run(rt, q, false); ok {
				return exec
			} else {
				agg.noteFallback(cause)
			}
			return core.RunPlanSeed(rt, q, seed)
		}
	}
	minimal, execs := core.MinimizeSeedRun(t, ex.plan, ex.seed, runner)
	switch mp := minimal.(type) {
	case core.StalenessPlan:
		narrowed, more := core.NarrowWindowSeedRun(t, mp, ex.seed, runner)
		minimal = narrowed
		execs += more
	case core.FlakyLinkPlan:
		narrowed, more := core.NarrowFlakyWindowSeedRun(t, mp, ex.seed, runner)
		minimal = narrowed
		execs += more
	}
	var pert *trace.Trace
	var violations []oracle.Violation
	if pt != nil {
		if pexec, tr, ok, cause := pt.run(t, minimal, true); ok {
			pert, violations = tr, pexec.Violations
		} else {
			agg.noteFallback(cause)
		}
	}
	if pert == nil {
		pert, violations = perturbedTrace(t, minimal, ex.seed)
	}
	execs++ // the instrumented re-execution
	b.MinimalPlan = minimal.Describe()
	b.MinimalPlanID = minimal.ID()
	b.MinimizeExecutions = execs
	b.Explanation = explain.FromTraces(t, minimal, ex.seed, refs[ex.seed], pert, violations)
	agg.minimizeExecs += execs
	agg.explained++
}

// perturbedTrace executes one plan with a recorder attached (the
// explanation pass's instrumented re-execution).
func perturbedTrace(t core.Target, p core.Plan, seed int64) (*trace.Trace, []oracle.Violation) {
	c := t.Build(seed)
	rec := trace.NewRecorder()
	rec.Attach(c.World.Network(), c.Store.Store())
	p.Apply(c)
	t.Workload(c)
	c.RunFor(t.Horizon)
	return rec.T, c.Violations()
}

// runOrdered executes plans in list order across the worker pool.
// Indices are dispatched monotonically and results land in per-index
// slots, so the outcome — detect = the lowest detecting index, with every
// lower index executed and undetected — is identical to the serial
// campaign at any worker count. Once a detection is known, indices beyond
// it are not started (early cancel) unless KeepGoing is set or runAll
// forces the whole list (the corpus regression block). maxExec bounds
// dispatches (0 = unlimited); the returned detect is a position in the
// given list, not an original strategy index.
func (e *Engine) runOrdered(t core.Target, plans []planRef, seed int64, maxExec int, fs *forkState, runAll bool) ([]slot, int) {
	limit := len(plans)
	if maxExec > 0 && maxExec < limit {
		limit = maxExec
	}
	slots := make([]slot, limit)
	if limit == 0 {
		return slots, -1
	}
	instrument := e.cfg.instrumented()

	var next int64 = -1
	firstDetect := int64(limit) // min-reduced detecting index
	nw := e.cfg.workerCount()
	if nw > limit {
		nw = limit
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= limit {
					return
				}
				if !runAll && !e.cfg.KeepGoing && int64(i) > atomic.LoadInt64(&firstDetect) {
					// A plan ordered before this one already detected;
					// the serial campaign would never have run it.
					return
				}
				start := time.Now()
				exec, sig, fb := e.execute(t, plans[i].plan, seed, instrument, fs)
				slots[i] = slot{
					ran: true, planIndex: plans[i].index, plan: plans[i].plan,
					exec: exec, sig: sig, wall: time.Since(start), fallback: fb,
				}
				if exec.Detected {
					for {
						cur := atomic.LoadInt64(&firstDetect)
						if int64(i) >= cur || atomic.CompareAndSwapInt64(&firstDetect, cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if fd := int(firstDetect); fd < limit {
		return slots, fd
	}
	return slots, -1
}

// runGuided executes plans in coverage-first order, batch-synchronously:
// each round the scheduler deterministically picks up to Workers pending
// plans (using feedback from all completed rounds), the batch executes in
// parallel, and its signatures are fed back in dispatch order before the
// next round is planned. The schedule is therefore a pure function of
// (plans, seed, worker count) — guided campaigns reproduce exactly at a
// fixed worker count, which the telemetry stream and failure buckets rely
// on. Slots are indexed by dispatch sequence; detect is the lowest
// dispatch sequence that detected. After a detection the current round
// finishes (its executions are part of the deterministic schedule) and no
// further round starts unless KeepGoing is set. maxExec bounds dispatches
// (0 = unlimited). With learning, the list is the (possibly ranked) kept
// set or the deferred tail; schedItem indices are positions in that list,
// so coverage tie-breaking follows the learned order while reported plan
// indices stay the strategy's.
func (e *Engine) runGuided(t core.Target, plans []planRef, seed int64, maxExec int, fs *forkState, preSeen []Signature) ([]slot, int) {
	limit := len(plans)
	if maxExec > 0 && maxExec < limit {
		limit = maxExec
	}
	slots := make([]slot, limit)
	if limit == 0 {
		return slots, -1
	}
	sched := newCoverageScheduler(plans, limit, preSeen)
	nw := e.cfg.workerCount()

	detect := -1
	dispatched := 0
	for dispatched < limit {
		if detect >= 0 && !e.cfg.KeepGoing {
			break
		}
		// Plan the round deterministically from current knowledge.
		batch := make([]schedItem, 0, nw)
		seqs := make([]int, 0, nw)
		for len(batch) < nw {
			item, seq, ok := sched.next()
			if !ok {
				break
			}
			batch = append(batch, item)
			seqs = append(seqs, seq)
		}
		if len(batch) == 0 {
			break
		}
		// Execute the round in parallel.
		var wg sync.WaitGroup
		for bi := range batch {
			wg.Add(1)
			go func(bi int) {
				defer wg.Done()
				start := time.Now()
				exec, sig, fb := e.execute(t, batch[bi].plan, seed, true, fs)
				slots[seqs[bi]] = slot{
					ran: true, planIndex: plans[batch[bi].index].index, plan: batch[bi].plan,
					exec: exec, sig: sig, wall: time.Since(start), fallback: fb,
				}
			}(bi)
		}
		wg.Wait()
		// Feed results back in dispatch order (deterministic).
		for bi := range batch {
			sl := slots[seqs[bi]]
			sched.record(batch[bi].class, sl.sig)
			if sl.exec.Detected && (detect < 0 || seqs[bi] < detect) {
				detect = seqs[bi]
			}
		}
		dispatched += len(batch)
	}
	return slots, detect
}

/// execute runs one plan: forked from a prefix checkpoint when the fork
// substrate exists and can prove the fork exact, as a full replay
// otherwise. Execution RECORDS are identical either way — fork vs. full
// replay must never change any artifact byte — but diagnosable fallbacks
// (unsnapshotable cluster, strict-past violation, restore error, watchdog
// trip) are counted per cause so a substrate that silently degrades to
// full replay is visible in Stats.SnapshotFallbacks.
func (e *Engine) execute(t core.Target, p core.Plan, seed int64, instrument bool, fs *forkState) (core.Execution, Signature, fallbackCause) {
	if fs != nil {
		exec, sig, ok, cause := runForked(t, p, seed, instrument, e.cfg.EventBudget, fs)
		if ok {
			return exec, sig, fallbackNone
		}
		exec, sig = runGuarded(t, p, seed, instrument, e.cfg.EventBudget)
		return exec, sig, cause
	}
	exec, sig := runGuarded(t, p, seed, instrument, e.cfg.EventBudget)
	return exec, sig, fallbackNone
}

// violates reports whether the named oracle appears in the violation list.
func violates(violations []oracle.Violation, bug string) bool {
	for _, v := range violations {
		if v.Oracle == bug {
			return true
		}
	}
	return false
}

// firstViolation returns a copy of the first violation of the named
// oracle, or nil.
func firstViolation(violations []oracle.Violation, bug string) *oracle.Violation {
	for _, v := range violations {
		if v.Oracle == bug {
			fv := v
			return &fv
		}
	}
	return nil
}
