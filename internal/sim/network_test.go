package sim

import (
	"testing"
)

type sink struct {
	id  NodeID
	got []*Message
}

func (s *sink) HandleMessage(m *Message) { s.got = append(s.got, m) }

func newTestNet(t *testing.T) (*Kernel, *Network, *sink, *sink) {
	t.Helper()
	k := NewKernel(1)
	n := NewNetwork(k, Millisecond, 0)
	a := &sink{id: "a"}
	b := &sink{id: "b"}
	n.Register("a", a)
	n.Register("b", b)
	return k, n, a, b
}

func TestNetworkDelivery(t *testing.T) {
	k, n, _, b := newTestNet(t)
	n.Send("a", "b", "rpc", "hello")
	k.Drain()
	if len(b.got) != 1 || b.got[0].Payload.(string) != "hello" {
		t.Fatalf("b got %v", b.got)
	}
	if k.Now() != Time(Millisecond) {
		t.Fatalf("delivered at %v, want 1ms latency", k.Now())
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNetworkFIFOPerLink(t *testing.T) {
	k, n, _, b := newTestNet(t)
	for i := 0; i < 10; i++ {
		n.Send("a", "b", "rpc", i)
	}
	k.Drain()
	if len(b.got) != 10 {
		t.Fatalf("got %d messages, want 10", len(b.got))
	}
	for i, m := range b.got {
		if m.Payload.(int) != i {
			t.Fatalf("out-of-order delivery without jitter: %v at %d", m.Payload, i)
		}
	}
}

func TestPartitionDropsAndHeals(t *testing.T) {
	k, n, _, b := newTestNet(t)
	n.Partition("a", "b")
	n.Send("a", "b", "rpc", 1)
	k.Drain()
	if len(b.got) != 0 {
		t.Fatal("message crossed partition")
	}
	if !n.Partitioned("a", "b") || !n.Partitioned("b", "a") {
		t.Fatal("partition should be bidirectional")
	}
	n.Heal("a", "b")
	n.Send("a", "b", "rpc", 2)
	k.Drain()
	if len(b.got) != 1 || b.got[0].Payload.(int) != 2 {
		t.Fatalf("after heal got %v", b.got)
	}
}

func TestOneWayPartition(t *testing.T) {
	k, n, a, b := newTestNet(t)
	n.PartitionOneWay("a", "b")
	n.Send("a", "b", "rpc", 1)
	n.Send("b", "a", "rpc", 2)
	k.Drain()
	if len(b.got) != 0 {
		t.Fatal("a->b should be cut")
	}
	if len(a.got) != 1 {
		t.Fatal("b->a should be open")
	}
}

func TestInFlightPartitionDrops(t *testing.T) {
	k, n, _, b := newTestNet(t)
	n.Send("a", "b", "rpc", 1)
	// Partition after send but before the 1ms delivery event fires.
	k.Schedule(Millisecond/2, func() { n.Partition("a", "b") })
	k.Drain()
	if len(b.got) != 0 {
		t.Fatal("in-flight message survived partition")
	}
}

func TestDownReceiverDrops(t *testing.T) {
	k, n, _, b := newTestNet(t)
	n.SetDown("b", true)
	n.Send("a", "b", "rpc", 1)
	k.Drain()
	if len(b.got) != 0 {
		t.Fatal("down receiver got message")
	}
	if n.Stats().DownRx != 1 {
		t.Fatalf("DownRx = %d, want 1", n.Stats().DownRx)
	}
	n.SetDown("b", false)
	n.Send("a", "b", "rpc", 2)
	k.Drain()
	if len(b.got) != 1 {
		t.Fatal("recovered receiver missed message")
	}
}

func TestInterceptorDrop(t *testing.T) {
	k, n, _, b := newTestNet(t)
	n.AddInterceptor(InterceptorFunc(func(m *Message) Decision {
		if m.Kind == "watch" {
			return Decision{Verdict: Drop}
		}
		return Decision{Verdict: Pass}
	}))
	n.Send("a", "b", "watch", 1)
	n.Send("a", "b", "rpc", 2)
	k.Drain()
	if len(b.got) != 1 || b.got[0].Payload.(int) != 2 {
		t.Fatalf("got %v, want only the rpc", b.got)
	}
}

func TestInterceptorHoldAndRelease(t *testing.T) {
	k, n, _, b := newTestNet(t)
	var heldSeq uint64
	n.AddInterceptor(InterceptorFunc(func(m *Message) Decision {
		if m.Kind == "watch" {
			heldSeq = m.Seq
			return Decision{Verdict: Hold}
		}
		return Decision{Verdict: Pass}
	}))
	n.Send("a", "b", "watch", "stale-me")
	k.Drain()
	if len(b.got) != 0 {
		t.Fatal("held message was delivered")
	}
	if n.HeldCount() != 1 {
		t.Fatalf("held count = %d", n.HeldCount())
	}
	if !n.Release(heldSeq) {
		t.Fatal("release failed")
	}
	if n.Release(heldSeq) {
		t.Fatal("double release succeeded")
	}
	k.Drain()
	if len(b.got) != 1 {
		t.Fatal("released message not delivered")
	}
}

func TestReleaseAllOrder(t *testing.T) {
	k, n, _, b := newTestNet(t)
	n.AddInterceptor(InterceptorFunc(func(m *Message) Decision {
		return Decision{Verdict: Hold}
	}))
	for i := 0; i < 5; i++ {
		n.Send("a", "b", "watch", i)
	}
	n.RemoveInterceptors()
	if got := n.ReleaseAll(); got != 5 {
		t.Fatalf("ReleaseAll = %d, want 5", got)
	}
	k.Drain()
	for i, m := range b.got {
		if m.Payload.(int) != i {
			t.Fatalf("release order broken: %v", b.got)
		}
	}
}

func TestInterceptorDelayAccumulates(t *testing.T) {
	k, n, _, b := newTestNet(t)
	n.AddInterceptor(InterceptorFunc(func(m *Message) Decision {
		return Decision{Verdict: Delay, Delay: 10 * Millisecond}
	}))
	n.AddInterceptor(InterceptorFunc(func(m *Message) Decision {
		return Decision{Verdict: Delay, Delay: 5 * Millisecond}
	}))
	n.Send("a", "b", "rpc", 1)
	k.Drain()
	if len(b.got) != 1 {
		t.Fatal("delayed message lost")
	}
	want := Time(16 * Millisecond) // 1ms base + 10 + 5
	if k.Now() != want {
		t.Fatalf("delivered at %v, want %v", k.Now(), want)
	}
}

func TestLinkDelay(t *testing.T) {
	k, n, _, b := newTestNet(t)
	n.SetLinkDelay("a", "b", 9*Millisecond)
	n.Send("a", "b", "rpc", 1)
	k.Drain()
	if len(b.got) != 1 || k.Now() != Time(10*Millisecond) {
		t.Fatalf("delivered at %v, want 10ms", k.Now())
	}
}

type recObserver struct {
	sends, delivers int
	drops           []string
}

func (r *recObserver) OnSend(m *Message)                { r.sends++ }
func (r *recObserver) OnDeliver(m *Message)             { r.delivers++ }
func (r *recObserver) OnDrop(m *Message, reason string) { r.drops = append(r.drops, reason) }

func TestObserverLifecycle(t *testing.T) {
	k, n, _, _ := newTestNet(t)
	o := &recObserver{}
	n.AddObserver(o)
	n.Send("a", "b", "rpc", 1)
	k.Drain()
	n.Partition("a", "b")
	n.Send("a", "b", "rpc", 2)
	k.Drain()
	if o.sends != 2 || o.delivers != 1 || len(o.drops) != 1 {
		t.Fatalf("observer = %+v", o)
	}
	if o.drops[0] != "partitioned" {
		t.Fatalf("drop reason = %q", o.drops[0])
	}
}

func TestUnknownNodeDrop(t *testing.T) {
	k, n, _, _ := newTestNet(t)
	n.Send("a", "zzz", "rpc", 1)
	k.Drain()
	if n.Stats().Dropped != 1 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}

type crashableProc struct {
	id       NodeID
	crashes  int
	restarts int
}

func (p *crashableProc) ID() NodeID { return p.id }
func (p *crashableProc) Crash()     { p.crashes++ }
func (p *crashableProc) Restart()   { p.restarts++ }

func TestWorldCrashRestart(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 1, Latency: Millisecond})
	p := &crashableProc{id: "p1"}
	w.AddProcess(p)
	w.Network().Register("p1", HandlerFunc(func(m *Message) {}))

	if err := w.Crash("p1"); err != nil {
		t.Fatal(err)
	}
	if !w.Crashed("p1") || p.crashes != 1 {
		t.Fatalf("crash not applied: %+v", p)
	}
	// Idempotent crash.
	if err := w.Crash("p1"); err != nil || p.crashes != 1 {
		t.Fatalf("double crash: %+v err=%v", p, err)
	}
	if err := w.Restart("p1"); err != nil {
		t.Fatal(err)
	}
	if w.Crashed("p1") || p.restarts != 1 {
		t.Fatalf("restart not applied: %+v", p)
	}
	if err := w.Crash("zzz"); err == nil {
		t.Fatal("crash of unknown process should error")
	}
}

func TestWorldCrashFor(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 1, Latency: Millisecond})
	p := &crashableProc{id: "p1"}
	w.AddProcess(p)
	if err := w.CrashFor("p1", 50*Millisecond); err != nil {
		t.Fatal(err)
	}
	w.Kernel().Run(Time(25 * Millisecond))
	if !w.Crashed("p1") {
		t.Fatal("should still be down at t=25ms")
	}
	w.Kernel().Drain()
	if w.Crashed("p1") || p.restarts != 1 {
		t.Fatalf("auto-restart failed: %+v", p)
	}
}

func TestWorldProcessIDsSorted(t *testing.T) {
	w := NewWorld(DefaultWorldConfig())
	for _, id := range []NodeID{"z", "a", "m"} {
		w.AddProcess(&crashableProc{id: id})
	}
	ids := w.ProcessIDs()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "m" || ids[2] != "z" {
		t.Fatalf("ids = %v", ids)
	}
}
