package controller

import (
	"fmt"

	"repro/internal/sim"
)

// QueueSnapshot captures a work queue at a checkpoint. Pending AddAfter
// and process timers are kernel events (tagged with the queue's owner) and
// are restored by the orchestration layer via Rearm, not here.
type QueueSnapshot struct {
	Cfg       QueueConfig
	Owner     string
	Order     []string
	Failures  map[string]int
	Running   bool
	Stopped   bool
	Processed int
	Errors    int
}

// Snapshot captures the queue's state.
func (q *Queue) Snapshot() *QueueSnapshot {
	s := &QueueSnapshot{
		Cfg:       q.cfg,
		Owner:     q.owner,
		Order:     append([]string(nil), q.order...),
		Failures:  make(map[string]int, len(q.failures)),
		Running:   q.running,
		Stopped:   q.stopped,
		Processed: q.Processed,
		Errors:    q.Errors,
	}
	for k, v := range q.failures {
		s.Failures[k] = v
	}
	return s
}

// RestoreQueue reconstructs a queue from a snapshot, feeding keys to rec.
// No timers are armed: a captured in-flight "process" event is re-installed
// by the restore orchestration via Rearm.
func RestoreQueue(k *sim.Kernel, snap *QueueSnapshot, rec Reconciler) *Queue {
	q := &Queue{
		k:         k,
		cfg:       snap.Cfg,
		rec:       rec,
		owner:     snap.Owner,
		order:     append([]string(nil), snap.Order...),
		set:       make(map[string]bool, len(snap.Order)),
		failures:  make(map[string]int, len(snap.Failures)),
		running:   snap.Running,
		stopped:   snap.Stopped,
		Processed: snap.Processed,
		Errors:    snap.Errors,
	}
	for _, key := range snap.Order {
		q.set[key] = true
	}
	for key, n := range snap.Failures {
		q.failures[key] = n
	}
	return q
}

// Rearm returns the callback for a pending kernel event owned by this
// queue, identified by its snapshot tag.
func (q *Queue) Rearm(tag sim.EventTag) (func(), error) {
	switch tag.Kind {
	case "addafter":
		key := tag.Key
		return func() { q.Add(key) }, nil
	case "process":
		return q.processNext, nil
	default:
		return nil, fmt.Errorf("controller: unknown pending event kind %q for queue %s", tag.Kind, q.owner)
	}
}
