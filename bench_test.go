// Benchmarks regenerating every experiment of EXPERIMENTS.md (E1–E8), one
// per figure/table/claim of the paper. Each benchmark runs the experiment
// per iteration and prints its result table once; absolute wall-clock
// numbers are incidental (the interesting measurements are in *virtual*
// time and in counts), so read the printed tables rather than ns/op.
package partialhist

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/apiserver"
	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/epochs"
	"repro/internal/history"
	"repro/internal/infra"
	"repro/internal/kubelet"
	"repro/internal/leasecache"
	"repro/internal/oracle"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

var benchOnce sync.Map

// printOnce runs fn the first time key is seen (tables print once even
// though the harness may iterate).
func printOnce(key string, fn func()) {
	if _, loaded := benchOnce.LoadOrStore(key, true); !loaded {
		fn()
	}
}

func ms(d sim.Duration) float64 { return float64(d) / float64(sim.Millisecond) }

// ---------------------------------------------------------------------
// E1 — Figure 2: Kubernetes-59848, the time-traveling kubelet.
// ---------------------------------------------------------------------

func e1Plan() core.Plan {
	return core.TimeTravelPlan{
		Component:    kubelet.NodeID("k1"),
		StaleAPI:     infra.APIServerID(1),
		FreezeAt:     sim.Time(600 * sim.Millisecond),
		CrashAt:      sim.Time(3500 * sim.Millisecond),
		RestartDelay: 100 * sim.Millisecond,
		HealAt:       sim.Time(4100 * sim.Millisecond),
	}
}

func BenchmarkE1_Fig2_TimeTravel59848(b *testing.B) {
	var buggy, fixed core.Execution
	for i := 0; i < b.N; i++ {
		buggy = core.RunPlan(workload.Target59848(), e1Plan())
		fixed = core.RunPlan(workload.Fixed(workload.Target59848()), e1Plan())
	}
	if !buggy.Detected {
		b.Fatal("E1: stock kubelet did not violate UniquePod")
	}
	if fixed.Detected {
		b.Fatal("E1: fixed kubelet violated UniquePod")
	}
	var tViolation sim.Time
	for _, v := range buggy.Violations {
		if v.Oracle == oracle.NameUniquePod {
			tViolation = v.Time
		}
	}
	b.ReportMetric(1, "violations-stock")
	b.ReportMetric(0, "violations-fixed")
	printOnce("E1", func() {
		fmt.Printf(`
E1 (paper Figure 2) — Kubernetes-59848 reproduction
  perturbation: %s
  variant              UniquePod violated   when (virtual)
  stock kubelet        YES                  %s
  fixed kubelet        no                   -
`, e1Plan().Describe(), tViolation)
	})
}

// ---------------------------------------------------------------------
// E2 — Figure 3a: staleness vs CAS (HBASE-3136 / -3137).
// ---------------------------------------------------------------------

type e2Row struct {
	mode         regions.Mode
	moves        int
	dualOwners   int
	casFailures  int
	retries      int
	meanLatency  sim.Duration
	virtualTotal sim.Duration
}

func runE2(mode regions.Mode, moves int) e2Row {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond, Jitter: sim.Millisecond / 2})
	store.NewServer(w, "etcd", store.New())
	// A loaded store: watch pushes (and read-throughs) from the store to
	// the apiserver lag by 5ms, so the cache trails recent transitions —
	// the ZooKeeper-side staleness of HBASE-3136.
	w.Network().SetLinkDelay("etcd", "api-1", 5*sim.Millisecond)
	apiserver.New(w, "api-1", apiserver.DefaultConfig("etcd"))
	names := []string{"a", "b", "c"}
	var servers []*regions.RegionServer
	for _, n := range names {
		servers = append(servers, regions.NewRegionServer(w, n))
	}
	mgr := regions.NewManager(w, regions.ManagerConfig{APIServer: "api-1", Mode: mode})
	w.Kernel().RunFor(300 * sim.Millisecond)

	done := false
	mgr.CreateRegion("r0", "a", func(error) { done = true })
	for !done && w.Kernel().Step() {
	}
	w.Kernel().RunFor(100 * sim.Millisecond)

	row := e2Row{mode: mode, moves: moves}
	start := w.Now()
	var latSum sim.Duration
	completed := 0
	// Rebalancer churn: transitions of the same region fired every 4ms —
	// overlapping in flight, exactly the interleaving that broke ZKAssign.
	for i := 0; i < moves; i++ {
		i := i
		w.Kernel().Schedule(sim.Duration(i)*4*sim.Millisecond, func() {
			t0 := w.Now()
			mgr.Move("r0", names[(i+1)%len(names)], func(error) {
				latSum += w.Now().Sub(t0)
				completed++
			})
		})
	}
	// Sample ground-truth ownership every 2ms while the churn runs.
	sampling := true
	var sample func()
	sample = func() {
		if !sampling {
			return
		}
		if len(regions.DualOwners(servers)) > 0 {
			row.dualOwners++
		}
		w.Kernel().Schedule(2*sim.Millisecond, sample)
	}
	w.Kernel().Schedule(0, sample)
	w.Kernel().RunFor(sim.Duration(moves)*4*sim.Millisecond + 2*sim.Second)
	sampling = false

	row.virtualTotal = w.Now().Sub(start)
	if completed > 0 {
		row.meanLatency = latSum / sim.Duration(completed)
	}
	row.moves = completed
	row.casFailures = mgr.CASFailures
	row.retries = mgr.Retries
	return row
}

func BenchmarkE2_Fig3a_StalenessCAS(b *testing.B) {
	const moves = 120
	var rows []e2Row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, mode := range []regions.Mode{regions.ModeStaleBlind, regions.ModeSyncBeforeCAS, regions.ModeOptimisticCAS} {
			rows = append(rows, runE2(mode, moves))
		}
	}
	b.ReportMetric(float64(rows[0].dualOwners), "dual-owners-stale-blind")
	b.ReportMetric(float64(rows[1].dualOwners), "dual-owners-sync")
	printOnce("E2", func() {
		fmt.Printf("\nE2 (paper Figure 3a / §4.2.1) — HBASE-3136/-3137: %d region transitions per mode\n", moves)
		fmt.Printf("  %-16s %-12s %-12s %-9s %-14s %s\n", "mode", "atomicity", "CAS-fails", "retries", "mean-latency", "throughput")
		for _, r := range rows {
			atom := "SAFE"
			if r.dualOwners > 0 {
				atom = fmt.Sprintf("%d DUAL-OWN", r.dualOwners)
			}
			thr := float64(r.moves) / (float64(r.virtualTotal) / float64(sim.Second))
			fmt.Printf("  %-16s %-12s %-12d %-9d %-14s %.0f moves/s\n",
				r.mode, atom, r.casFailures, r.retries, r.meanLatency, thr)
		}
		fmt.Printf("  (HBASE-3136: stale-blind breaks atomicity; the sync fix is safe but\n")
		fmt.Printf("   slower — HBASE-3137; optimistic CAS recovers the throughput)\n")
	})
}

// ---------------------------------------------------------------------
// E3 — Figure 3b: the time-travel pattern in isolation.
// ---------------------------------------------------------------------

type e3Row struct {
	staleFor      sim.Duration
	episodes      int
	maxRegression int64
	resurrected   int
}

func runE3(staleFor sim.Duration) e3Row {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond, Jitter: sim.Millisecond / 2})
	store.NewServer(w, "etcd", store.New())
	apiserver.New(w, "api-1", apiserver.DefaultConfig("etcd"))
	apiserver.New(w, "api-2", apiserver.DefaultConfig("etcd"))

	type comp struct{ conn *client.Conn }
	cpt := &comp{}
	cpt.conn = client.NewConn(w, "observer", "api-1", 300*sim.Millisecond)
	w.Network().Register("observer", sim.HandlerFunc(func(m *sim.Message) { cpt.conn.HandleMessage(m) }))

	writer := &comp{}
	writer.conn = client.NewConn(w, "writer", "api-1", 300*sim.Millisecond)
	w.Network().Register("writer", sim.HandlerFunc(func(m *sim.Message) { writer.conn.HandleMessage(m) }))
	w.Kernel().RunFor(200 * sim.Millisecond)

	inf := client.NewInformer(cpt.conn, cluster.KindPod, client.InformerConfig{})
	inf.Run()

	// Continuous churn: create then delete pods.
	seq := 0
	var churn func()
	churn = func() {
		seq++
		name := fmt.Sprintf("pod-%03d", seq)
		writer.conn.Create(cluster.NewPod(name, name+"-uid", cluster.PodSpec{NodeName: "k1"}), func(*cluster.Object, error) {})
		if seq > 3 {
			writer.conn.Delete(cluster.KindPod, fmt.Sprintf("pod-%03d", seq-3), 0, func(error) {})
		}
		w.Kernel().Schedule(50*sim.Millisecond, churn)
	}
	w.Kernel().Schedule(0, churn)

	// Freeze api-2, wait, then switch the observer to it.
	w.Kernel().At(sim.Time(sim.Second), func() { w.Network().Partition("api-2", "etcd") })
	w.Kernel().At(sim.Time(sim.Second).Add(staleFor), func() { cpt.conn.SwitchAPIServer("api-2") })
	w.Kernel().Run(sim.Time(sim.Second).Add(staleFor).Add(500 * sim.Millisecond))

	eps := inf.Obs.TimeTravels()
	row := e3Row{staleFor: staleFor, episodes: len(eps), maxRegression: inf.Obs.MaxRegression()}
	// Resurrected objects: pods present in the view that ground truth
	// deleted. The informer's cache is the observer's S'.
	truth := map[string]bool{}
	// (writer deleted everything older than seq-3)
	for i := seq - 3; i <= seq; i++ {
		if i >= 1 {
			truth[fmt.Sprintf("pod-%03d", i)] = true
		}
	}
	for _, o := range inf.ListCached() {
		if !truth[o.Meta.Name] {
			row.resurrected++
		}
	}
	return row
}

func BenchmarkE3_Fig3b_TimeTravelPattern(b *testing.B) {
	windows := []sim.Duration{250 * sim.Millisecond, 500 * sim.Millisecond, sim.Second, 2 * sim.Second}
	var rows []e3Row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, wdw := range windows {
			rows = append(rows, runE3(wdw))
		}
	}
	b.ReportMetric(float64(rows[len(rows)-1].maxRegression), "max-regression-revs")
	printOnce("E3", func() {
		fmt.Printf("\nE3 (paper Figure 3b / §4.2.2) — switching to an upstream frozen for W\n")
		fmt.Printf("  %-10s %-18s %-22s %s\n", "W", "travel-episodes", "max-regression (revs)", "resurrected-objects")
		for _, r := range rows {
			fmt.Printf("  %-10s %-18d %-22d %d\n", r.staleFor, r.episodes, r.maxRegression, r.resurrected)
		}
		fmt.Printf("  (the longer the alternate source was frozen, the further back in its\n")
		fmt.Printf("   own history the component is thrown when it resyncs)\n")
	})
}

// ---------------------------------------------------------------------
// E4 — Figure 3c: observability gaps, three manifestations.
// ---------------------------------------------------------------------

func BenchmarkE4_Fig3c_ObservabilityGaps(b *testing.B) {
	type row struct {
		name         string
		stockOutcome string
		fixedOutcome string
	}
	var rows []row
	var windowRelists int
	for i := 0; i < b.N; i++ {
		rows = rows[:0]

		// (a) volume controller misses mark->delete between sparse reads.
		volTarget := volumeGapTarget()
		stock := core.RunPlan(volTarget, core.NopPlan{})
		fixed := core.RunPlan(fixedVolumeGapTarget(), core.NopPlan{})
		rows = append(rows, row{
			name:         "volume release ([17])",
			stockOutcome: outcome(stock.Detected, "PVC orphaned"),
			fixedOutcome: outcome(fixed.Detected, "PVC orphaned"),
		})

		// (b) scheduler misses a node deletion (K8s-56261).
		gap := core.GapPlan{Victim: "scheduler", Kind: cluster.KindNode, Name: "n1", Type: apiserver.Deleted, Occurrence: 1}
		stock = core.RunPlan(workload.Target56261(), gap)
		fixed = core.RunPlan(workload.Fixed(workload.Target56261()), gap)
		rows = append(rows, row{
			name:         "scheduler cache (56261)",
			stockOutcome: outcome(stock.Detected, "placement livelock"),
			fixedOutcome: outcome(fixed.Detected, "placement livelock"),
		})

		// (c) bounded watch window forces relists ([7]).
		windowRelists = runE4WatchWindow()
		rows = append(rows, row{
			name:         "watch window ([7])",
			stockOutcome: fmt.Sprintf("%d forced relists", windowRelists),
			fixedOutcome: "n/a (by design)",
		})
	}
	b.ReportMetric(float64(windowRelists), "forced-relists")
	printOnce("E4", func() {
		fmt.Printf("\nE4 (paper Figure 3c / §4.2.3) — observability gaps\n")
		fmt.Printf("  %-26s %-26s %s\n", "scenario", "stock component", "fixed component")
		for _, r := range rows {
			fmt.Printf("  %-26s %-26s %s\n", r.name, r.stockOutcome, r.fixedOutcome)
		}
	})
}

func outcome(detected bool, what string) string {
	if detected {
		return "BUG: " + what
	}
	return "correct"
}

func volumeGapTarget() core.Target {
	build := func(seed int64) *infra.Cluster {
		opts := infra.DefaultOptions()
		opts.Seed = seed
		opts.Nodes = []string{"k1"}
		opts.EnableScheduler = false
		return infra.New(opts)
	}
	return core.Target{
		Name:  "volume-gap",
		Bug:   oracle.NameNoOrphanPVC,
		Build: build,
		Workload: func(c *infra.Cluster) {
			c.World.Kernel().At(sim.Time(500*sim.Millisecond), func() {
				c.Admin.CreatePod("db-0", "k1", "v1", nil)
				c.Admin.CreatePVC("db-0-data", "db-0", nil)
			})
			c.World.Kernel().At(sim.Time(2*sim.Second), func() { c.Admin.MarkPodDeleted("db-0", nil) })
		},
		Horizon: 8 * sim.Second,
	}
}

func fixedVolumeGapTarget() core.Target {
	t := volumeGapTarget()
	orig := t.Build
	t.Build = func(seed int64) *infra.Cluster {
		opts := orig(seed).Opts
		opts.VolumeControllerFix = true
		return infra.New(opts)
	}
	return t
}

// runE4WatchWindow counts relists forced by a bounded apiserver watch
// window: a client partitioned through a burst of events cannot resume its
// watch and must relist.
func runE4WatchWindow() int {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	store.NewServer(w, "etcd", store.New())
	cfg := apiserver.DefaultConfig("etcd")
	cfg.WindowSize = 8
	apiserver.New(w, "api-1", cfg)

	conn := client.NewConn(w, "comp", "api-1", 300*sim.Millisecond)
	w.Network().Register("comp", sim.HandlerFunc(func(m *sim.Message) { conn.HandleMessage(m) }))
	writer := client.NewConn(w, "writer", "api-1", 300*sim.Millisecond)
	w.Network().Register("writer", sim.HandlerFunc(func(m *sim.Message) { writer.HandleMessage(m) }))
	w.Kernel().RunFor(200 * sim.Millisecond)

	inf := client.NewInformer(conn, cluster.KindPod, client.InformerConfig{WatchTimeout: 500 * sim.Millisecond})
	inf.Run()
	w.Kernel().RunFor(200 * sim.Millisecond)
	base := inf.Relists()

	w.Network().Partition("comp", "api-1")
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("burst-%02d", i)
		writer.Create(cluster.NewPod(name, name, cluster.PodSpec{}), func(*cluster.Object, error) {})
	}
	w.Kernel().RunFor(500 * sim.Millisecond)
	w.Network().Heal("comp", "api-1")
	w.Kernel().RunFor(2 * sim.Second)
	if inf.Len() != 30 {
		panic(fmt.Sprintf("E4c: cache did not converge: %d", inf.Len()))
	}
	return inf.Relists() - base
}

// ---------------------------------------------------------------------
// E5 — Section 7: the bug-finding matrix (the headline table).
// ---------------------------------------------------------------------

func BenchmarkE5_Sec7_BugMatrix(b *testing.B) {
	// The matrix runs through internal/campaign's worker pool with prefix
	// checkpointing (-snapshot) on: plan executions fan out across 4
	// workers per campaign and fork from copy-on-write checkpoints, with
	// results byte-identical to the serial full-replay core.Matrix (the
	// engine's cross-check invariants). EXPERIMENTS.md records both
	// speedups. The learned column routes the tool through -prune -ranked.
	// The deterministic results are computed by internal/bench — the same
	// code path cmd/benchcheck re-runs to detect drift in the committed
	// BENCH_E5.json artifact — and the benchmark re-emits that artifact on
	// every run so a behaviour change shows up as a file diff.
	var art bench.E5
	for i := 0; i < b.N; i++ {
		art = bench.ComputeE5(benchE5MaxExec, 4)
	}

	detectedByTool, detectedLearned := 0, 0
	for _, c := range art.Cells {
		if c.Strategy == "partial-history" && c.Detected {
			detectedByTool++
		}
	}
	for _, l := range art.Learned {
		if l.Detected {
			detectedLearned++
		}
	}
	b.ReportMetric(float64(detectedByTool), "bugs-found-by-tool")
	b.ReportMetric(float64(detectedLearned), "bugs-found-learned")
	if err := bench.WriteFile("BENCH_E5.json", art); err != nil {
		b.Fatalf("E5: write artifact: %v", err)
	}
	printOnce("E5", func() {
		fmt.Printf("\nE5 (paper Section 7) — bug-finding matrix, max %d executions each\n", art.MaxExecutions)
		fmt.Printf("  %-13s %-19s %-18s %-18s %-16s %-16s %s\n", "bug", "oracle", "partial-history", "pruned+ranked", "crashtuner", "cofi", "random")
		byKey := map[string]bench.Cell{}
		for _, c := range art.Cells {
			byKey[c.Target+"/"+c.Strategy] = c
		}
		for ti, l := range art.Learned {
			tool := byKey[l.Target+"/partial-history"]
			fmt.Printf("  %-13s %-19s", l.Target, tool.Oracle)
			cells := []struct {
				detected   bool
				executions int
			}{
				{tool.Detected, tool.Executions},
				{l.Detected, l.Executions},
				{byKey[l.Target+"/crashtuner"].Detected, byKey[l.Target+"/crashtuner"].Executions},
				{byKey[l.Target+"/cofi"].Detected, byKey[l.Target+"/cofi"].Executions},
				{byKey[l.Target+"/random"].Detected, byKey[l.Target+"/random"].Executions},
			}
			for ci, r := range cells {
				cell := fmt.Sprintf("no (%d)", r.executions)
				if r.detected {
					cell = fmt.Sprintf("YES (%d)", r.executions)
				}
				width := 16
				if ci < 2 {
					width = 18
				}
				fmt.Printf(" %-*s", width, cell)
			}
			fmt.Println()
			_ = ti
		}
		fmt.Printf("  (cells: detected? (executions until first detection); learned column prunes\n")
		fmt.Printf("   %d–%d plans per target with zero unsound deferrals; artifact: BENCH_E5.json)\n",
			minPruned(art.Learned), maxPruned(art.Learned))
	})
}

// benchE5MaxExec through benchE12MaxExec pin the artifact parameters;
// they are recorded in the emitted JSON and re-used by cmd/benchcheck.
const (
	benchE5MaxExec  = 400
	benchE6MaxExec  = 800
	benchE10MaxExec = 200
	benchE11MaxExec = 200
	benchE12MaxExec = 6
)

func minPruned(ls []bench.LearnedCell) int {
	m := int(^uint(0) >> 1)
	for _, l := range ls {
		if l.PlansPruned < m {
			m = l.PlansPruned
		}
	}
	return m
}

func maxPruned(ls []bench.LearnedCell) int {
	m := 0
	for _, l := range ls {
		if l.PlansPruned > m {
			m = l.PlansPruned
		}
	}
	return m
}

// ---------------------------------------------------------------------
// E6 — §6.1: planner efficiency, guided vs unguided vs random.
// ---------------------------------------------------------------------

func BenchmarkE6_Sec6_PlannerEfficiency(b *testing.B) {
	// Campaigns run through the parallel engine with prefix checkpointing
	// (unguided mode, so the execution counts match the serial full-replay
	// reference exactly). The learned column routes the guided planner
	// through -prune -ranked. Deterministic results come from
	// internal/bench and are re-emitted as BENCH_E6.json, which
	// cmd/benchcheck guards against drift.
	var art bench.E6
	for i := 0; i < b.N; i++ {
		art = bench.ComputeE6(benchE6MaxExec, 4)
	}
	var sumG, sumU, sumL int
	for _, r := range art.Rows {
		sumG += r.Guided.Executions
		sumU += r.Unguided.Executions
		sumL += r.Learned.Executions
	}
	if sumG > 0 {
		b.ReportMetric(float64(sumU)/float64(sumG), "unguided/guided-executions")
		b.ReportMetric(float64(sumL)/float64(sumG), "learned/guided-executions")
	}
	if err := bench.WriteFile("BENCH_E6.json", art); err != nil {
		b.Fatalf("E6: write artifact: %v", err)
	}
	printOnce("E6", func() {
		fmt.Printf("\nE6 (paper §6.1) — \"a tool focusing on partial histories can reorder only\n")
		fmt.Printf("selected events and detect partial-history bugs efficiently\"\n")
		fmt.Printf("  %-13s %-24s %-24s %-24s %s\n", "bug", "guided (plans/execs)", "pruned+ranked", "unguided (plans/execs)", "random (execs)")
		for _, r := range art.Rows {
			fmt.Printf("  %-13s %-24s %-24s %-24s %s\n", r.Target,
				cellE6(r.Guided.Detected, r.Guided.PlansTotal, r.Guided.Executions),
				cellE6(r.Learned.Detected, r.Learned.PlansTotal-r.Learned.PlansPruned, r.Learned.Executions),
				cellE6(r.Unguided.Detected, r.Unguided.PlansTotal, r.Unguided.Executions),
				cellE6(r.Random.Detected, art.MaxExecutions, r.Random.Executions))
		}
		fmt.Printf("  (artifact: BENCH_E6.json)\n")
	})
}

func cellE6(found bool, plans, execs int) string {
	if found {
		return fmt.Sprintf("%d / %d", plans, execs)
	}
	return fmt.Sprintf("%d / not found (%d)", plans, execs)
}

// ---------------------------------------------------------------------
// E9 — prefix checkpointing: CPU time with and without -snapshot.
// ---------------------------------------------------------------------

func BenchmarkE9_SnapshotSpeedup(b *testing.B) {
	// Same campaign, same results (the cross-check tests prove the
	// canonicalized artifacts byte-identical) — only the execution substrate
	// changes: full replay from t=0 vs. forking from the deepest
	// copy-on-write checkpoint-tree rung at or before each plan's earliest
	// effect. Workers=1 and KeepGoing pin the comparison: single-threaded,
	// so wall time is CPU time, and a fixed execution count for both modes.
	// The snapshot column *includes* the checkpoint tree's capture cost
	// (one extra plan-free run per campaign). All five targets — the k8s
	// pair and the three cassandra-operator ones — are snapshotable, so
	// every row exercises the fork path for real; the snapshotable guard
	// on best-speedup stays as a regression tripwire.
	// 200 executions per campaign: long enough that the plan list reaches
	// past the front-loaded early-effect cluster (the causal ranking puts
	// the hottest mined window first, where checkpoints save the least),
	// short enough to keep the benchmark honest about ladder amortization.
	const execs = 200
	type row struct {
		name         string
		offMs        float64
		onMs         float64
		executions   int
		speedup      float64
		snapshotable bool
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, t := range workload.AllTargets() {
			// Min-of-3 per mode: 2–3 ms executions on a shared host carry
			// scheduler noise comparable to the effect being measured; the
			// minimum is the cleanest estimate of the intrinsic cost.
			const reps = 3
			measure := func(snapshot bool) (campaign.Result, int64) {
				cfg := campaign.Config{Workers: 1, MaxExecutions: execs, KeepGoing: true, Snapshot: snapshot}
				var res campaign.Result
				best := int64(0)
				for rep := 0; rep < reps; rep++ {
					res = campaign.New(cfg).Run(t, core.NewPlanner())
					if best == 0 || res.Stats.WallNanos < best {
						best = res.Stats.WallNanos
					}
				}
				return res, best
			}
			off, offNs := measure(false)
			on, onNs := measure(true)
			if !reflect.DeepEqual(campaign.Canonicalize(off), campaign.Canonicalize(on)) {
				b.Fatalf("E9 %s: snapshot campaign diverged from full replay", t.Name)
			}
			r := row{
				name:         t.Name,
				offMs:        float64(offNs) / 1e6,
				onMs:         float64(onNs) / 1e6,
				executions:   off.Campaign.Executions,
				snapshotable: t.Build(1).Snapshotable(),
			}
			if onNs > 0 {
				r.speedup = float64(offNs) / float64(onNs)
			}
			rows = append(rows, r)
		}
	}
	best := 0.0
	for _, r := range rows {
		if r.snapshotable && r.speedup > best {
			best = r.speedup
		}
	}
	b.ReportMetric(best, "best-speedup")
	printOnce("E9", func() {
		fmt.Printf("\nE9 — prefix checkpointing (-snapshot): CPU time per campaign, %d executions, 1 worker\n", execs)
		fmt.Printf("  %-13s %-18s %-18s %s\n", "bug", "full replay (ms)", "snapshot (ms)", "speedup")
		for _, r := range rows {
			note := ""
			if !r.snapshotable {
				note = "  (not snapshotable: full-replay fallback)"
			}
			fmt.Printf("  %-13s %-18.0f %-18.0f %.2f×%s\n", r.name, r.offMs, r.onMs, r.speedup, note)
		}
		fmt.Printf("  (identical campaign results asserted per row; checkpoint-tree cost included)\n")
	})
}

// ---------------------------------------------------------------------
// E10 — snapshot substrate: executions/sec with checkpoint trees, plus
// the committed equivalence artifact.
// ---------------------------------------------------------------------

func BenchmarkE10_SnapshotSubstrate(b *testing.B) {
	// E9 measures the on/off ratio; E10 records the absolute throughput the
	// ratio compounds with (the raw-speed allocation work multiplies both
	// columns) and commits the deterministic equivalence evidence as
	// BENCH_E10.json: all five targets snapshotable, zero fallbacks, and
	// byte-identical canonicalized campaign.json + raw NDJSON between the
	// snapshot-on and snapshot-off passes. cmd/benchcheck -e10 guards the
	// artifact against drift, so a snapshot-layer regression (a component
	// losing Snapshotable, a fork diverging) breaks CI instead of silently
	// falling back.
	var art bench.E10
	for i := 0; i < b.N; i++ {
		art = bench.ComputeE10(benchE10MaxExec, 4)
	}
	for _, r := range art.Rows {
		if !r.Snapshotable {
			b.Errorf("E10 %s: target not snapshotable", r.Target)
		}
		if r.SnapshotFallbacks != 0 {
			b.Errorf("E10 %s: %d snapshot fallbacks, want 0", r.Target, r.SnapshotFallbacks)
		}
		if !r.ArtifactIdentical || !r.TelemetryIdentical {
			b.Errorf("E10 %s: snapshot-on artifacts diverged (artifact=%v telemetry=%v)",
				r.Target, r.ArtifactIdentical, r.TelemetryIdentical)
		}
	}
	if err := bench.WriteFile("BENCH_E10.json", art); err != nil {
		b.Fatalf("E10: write artifact: %v", err)
	}

	// Wall-clock side: executions/sec per target with the snapshot substrate
	// on, single worker (wall time = CPU time), min-of-3 like E9.
	type row struct {
		name       string
		execs      int
		execPerSec float64
	}
	var rows []row
	for _, t := range workload.AllTargets() {
		cfg := campaign.Config{Workers: 1, MaxExecutions: benchE10MaxExec, KeepGoing: true, Snapshot: true}
		var res campaign.Result
		best := int64(0)
		for rep := 0; rep < 3; rep++ {
			res = campaign.New(cfg).Run(t, core.NewPlanner())
			if best == 0 || res.Stats.WallNanos < best {
				best = res.Stats.WallNanos
			}
		}
		r := row{name: t.Name, execs: res.Stats.RawExecutions}
		if best > 0 {
			r.execPerSec = float64(res.Stats.RawExecutions) / (float64(best) / 1e9)
		}
		rows = append(rows, r)
	}
	top := 0.0
	for _, r := range rows {
		if r.execPerSec > top {
			top = r.execPerSec
		}
	}
	b.ReportMetric(top, "execs/sec")
	printOnce("E10", func() {
		fmt.Printf("\nE10 — snapshot substrate: executions/sec with checkpoint-tree forking, 1 worker\n")
		fmt.Printf("  %-13s %-12s %s\n", "bug", "executions", "execs/sec")
		for _, r := range rows {
			fmt.Printf("  %-13s %-12d %.0f\n", r.name, r.execs, r.execPerSec)
		}
		fmt.Printf("  (artifact: BENCH_E10.json — fallbacks and on/off byte-identity pinned per row)\n")
	})
}

// ---------------------------------------------------------------------
// E11 — exhaustive mode: bounded systematic exploration vs sampling.
// ---------------------------------------------------------------------

func BenchmarkE11_ExhaustiveVsSampled(b *testing.B) {
	// The explorer enumerates every delivery schedule within the standard
	// bound (at most one drop plus one delay, learned-model POR on) and
	// either stops at the first violation — with a minimized witness — or
	// certifies the whole bounded space violation-free. The guided and
	// random columns sample the same targets under a fixed execution
	// budget. Everything in the artifact is virtual-time deterministic;
	// cmd/benchcheck -e11 recomputes it and fails on drift.
	var art bench.E11
	for i := 0; i < b.N; i++ {
		art = bench.ComputeE11(benchE11MaxExec, 4)
	}
	violations := 0
	var reduction float64
	for _, r := range art.Rows {
		if r.ExploreOutcome == "violation" {
			violations++
		}
		if r.ExploreExecutions > 0 {
			ratio := float64(r.ScheduleSpace) / float64(r.ExploreExecutions)
			if ratio > reduction {
				reduction = ratio
			}
		}
	}
	b.ReportMetric(float64(violations), "explore-violations")
	b.ReportMetric(reduction, "best-space/executed")
	if err := bench.WriteFile("BENCH_E11.json", art); err != nil {
		b.Fatalf("E11: write artifact: %v", err)
	}
	printOnce("E11", func() {
		fmt.Printf("\nE11 — exhaustive mode (-explore): bounded schedule enumeration vs sampling\n")
		fmt.Printf("  bound: ≤%d drop + ≤%d delay per schedule, POR on\n", art.BoundDrops, art.BoundDelays)
		fmt.Printf("  %-13s %-14s %-10s %-12s %-12s %-14s %s\n",
			"bug", "explore", "execs", "space", "collapsed", "guided (execs)", "random (execs)")
		for _, r := range art.Rows {
			fmt.Printf("  %-13s %-14s %-10d %-12d %-12d %-14s %s\n",
				r.Target, r.ExploreOutcome, r.ExploreExecutions, r.ScheduleSpace, r.SchedulesCollapsed,
				cellE11(r.Guided), cellE11(r.Random))
		}
		fmt.Printf("  (explore stops at the first violation; \"certificate\" means the entire\n")
		fmt.Printf("   bounded space is violation-free; artifact: BENCH_E11.json)\n")
	})
}

func cellE11(c bench.Cell) string {
	if c.Detected {
		return fmt.Sprintf("YES (%d)", c.Executions)
	}
	return fmt.Sprintf("no (%d)", c.Executions)
}

// ---------------------------------------------------------------------
// E12 — serving-path scaling: indexed vs unindexed cost at cluster scale.
// ---------------------------------------------------------------------

func BenchmarkE12_ServingScale(b *testing.B) {
	// The deterministic side: per-event relay cost and list-scan cost on
	// the rack-drain target at 10, 100 and 500 nodes, indexed vs the
	// legacy scan-everything paths, plus campaign byte-identity between
	// the two at the 100-node point. Committed as BENCH_E12.json and
	// guarded by cmd/benchcheck -e12: an "optimization" that changes a
	// single relayed event or list reply is drift, not speedup.
	var art bench.E12
	for i := 0; i < b.N; i++ {
		art = bench.ComputeE12(benchE12MaxExec, 4)
	}
	for _, r := range art.Rows {
		if !r.BehaviourIdentical {
			b.Errorf("E12 %s: serving paths diverged behaviourally", r.Target)
		}
		if r.SubVisitsUnindexed <= r.SubVisitsIndexed {
			b.Errorf("E12 %s: unindexed relay visited %d subs vs %d indexed; the index bought nothing",
				r.Target, r.SubVisitsUnindexed, r.SubVisitsIndexed)
		}
	}
	if !art.ArtifactIdentical || !art.TelemetryIdentical {
		b.Errorf("E12: indexed vs unindexed campaigns diverged (artifact=%v telemetry=%v)",
			art.ArtifactIdentical, art.TelemetryIdentical)
	}
	if !art.IdentityDetected {
		b.Error("E12: identity campaigns missed the rack-drain bug")
	}
	if err := bench.WriteFile("BENCH_E12.json", art); err != nil {
		b.Fatalf("E12: write artifact: %v", err)
	}

	// Wall-clock side: whole-campaign throughput (executions/sec, single
	// worker so wall time = CPU time) at each scale point, both paths.
	// Never part of the artifact.
	type row struct {
		nodes                  int
		execs                  int
		indexedPS, unindexedPS float64
	}
	var rows []row
	for _, p := range []workload.ScaleProfile{workload.Scale10, workload.Scale100, workload.Scale500} {
		t := workload.ScaleRackDrainTarget(p)
		cfg := campaign.Config{Workers: 1, MaxExecutions: benchE12MaxExec, KeepGoing: true}
		perSec := func(t core.Target) (int, float64) {
			res := campaign.New(cfg).Run(t, core.NewPlanner())
			return res.Campaign.Executions, float64(res.Campaign.Executions) / (float64(res.Stats.WallNanos) / 1e9)
		}
		execs, idx := perSec(t)
		_, un := perSec(workload.UnindexedServing(t))
		rows = append(rows, row{nodes: p.NumNodes(), execs: execs, indexedPS: idx, unindexedPS: un})
	}
	b.ReportMetric(rows[1].indexedPS, "exec/s-100-indexed")
	b.ReportMetric(rows[1].unindexedPS, "exec/s-100-unindexed")

	printOnce("E12", func() {
		fmt.Printf("\nE12 — serving-path scaling on scale-rackdrain (healthy run + %d-exec campaigns)\n", benchE12MaxExec)
		fmt.Printf("  %-7s %-13s %-23s %-23s %-12s %s\n",
			"nodes", "relay-events", "sub-visits idx/unidx", "list-keys idx/unidx", "exec/s idx", "exec/s unidx")
		for i, r := range art.Rows {
			fmt.Printf("  %-7d %-13d %-23s %-23s %-12.2f %.2f\n",
				r.Nodes, r.RelayEvents,
				fmt.Sprintf("%d / %d", r.SubVisitsIndexed, r.SubVisitsUnindexed),
				fmt.Sprintf("%d / %d", r.ListKeysIndexed, r.ListKeysUnindexed),
				rows[i].indexedPS, rows[i].unindexedPS)
		}
		fmt.Printf("  (both paths byte-identical at 100 nodes: artifact=%v telemetry=%v;\n",
			art.ArtifactIdentical, art.TelemetryIdentical)
		fmt.Printf("   indexed relay visits == watch sends — O(interested subs); artifact: BENCH_E12.json)\n")
	})
}

// ---------------------------------------------------------------------
// E7 — §6.2: epoch-bounded views, divergence bound vs coordination cost.
// ---------------------------------------------------------------------

func BenchmarkE7_Sec62_EpochBounding(b *testing.B) {
	const n = 2000
	const dropRate = 0.10
	sizes := []int64{1, 2, 4, 8, 16, 32, 64}

	type row struct {
		size        int64
		tornRaw     int
		tornEpoch   int
		recoveries  int
		meanDelay   float64 // buffering delay in stream positions
		maxBuffered int
	}
	var rows []row
	for iter := 0; iter < b.N; iter++ {
		rows = rows[:0]
		events := make([]history.Event, n)
		for i := range events {
			events[i] = history.Event{Revision: int64(i + 1), Type: history.Put,
				Key: fmt.Sprintf("/k%d", i%7), Value: []byte{byte(i)}, Time: int64(i)}
		}
		full := history.New()
		for _, e := range events {
			_ = full.Append(e)
		}
		rng := sim.NewKernel(99).Rand()
		dropped := map[int64]bool{}
		for _, e := range events {
			if rng.Float64() < dropRate {
				dropped[e.Revision] = true
			}
		}
		fetch := func(from, to int64) []history.Event {
			var out []history.Event
			for _, e := range events {
				if e.Revision >= from && e.Revision <= to {
					out = append(out, e)
				}
			}
			return out
		}

		for _, size := range sizes {
			raw := history.New()
			for _, e := range events {
				if !dropped[e.Revision] {
					_ = raw.Append(e)
				}
			}
			view := history.New()
			pos := 0
			var delaySum, delivered int
			batcher := epochs.NewBatcher(epochs.Config{Size: size}, fetch, func(ep []history.Event) {
				for _, e := range ep {
					_ = view.Append(e)
					delaySum += pos - int(e.Revision)
					delivered++
				}
			})
			for _, e := range events {
				pos = int(e.Revision)
				if !dropped[e.Revision] {
					batcher.Offer(e)
				}
			}
			_ = batcher.Flush(int64(n))
			st := batcher.Stats()
			r := row{
				size:        size,
				tornRaw:     len(history.CheckEpochVisibility(raw, full, int(size))),
				tornEpoch:   len(history.CheckEpochVisibility(view, full, int(size))),
				recoveries:  st.Recoveries,
				maxBuffered: st.MaxBufferedEpochs,
			}
			if delivered > 0 {
				r.meanDelay = float64(delaySum) / float64(delivered)
			}
			rows = append(rows, r)
		}
	}
	b.ReportMetric(float64(rows[len(rows)-1].recoveries), "recoveries-at-64")
	printOnce("E7", func() {
		fmt.Printf("\nE7 (paper §6.2) — epochs: all-or-nothing visibility vs coordination\n")
		fmt.Printf("  stream: %d events, %.0f%% notification loss\n", n, dropRate*100)
		fmt.Printf("  %-6s %-16s %-16s %-12s %-18s %s\n", "size", "torn (raw)", "torn (epoched)", "recoveries", "mean delay (evts)", "max buffered epochs")
		for _, r := range rows {
			fmt.Printf("  %-6d %-16d %-16d %-12d %-18.1f %d\n",
				r.size, r.tornRaw, r.tornEpoch, r.recoveries, r.meanDelay, r.maxBuffered)
		}
		fmt.Printf("  (larger epochs amortize recovery pulls but hold events longer;\n")
		fmt.Printf("   the epoched view is never torn, at any size)\n")
	})
}

// ---------------------------------------------------------------------
// E8 — §4.1: leases vs watch caches vs quorum reads.
// ---------------------------------------------------------------------

type e8Row struct {
	mechanism     string
	readLatency   sim.Duration
	writeLatency  sim.Duration
	meanStaleness float64
	maxStaleness  int
	note          string
}

// runE8CacheOrQuorum measures the watch-cache and quorum read paths on the
// standard store/apiserver stack, with an elevated store->apiserver link
// delay standing in for a loaded store.
func runE8CacheOrQuorum(quorum bool) e8Row {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	st := store.New()
	store.NewServer(w, "etcd", st)
	w.Network().SetLinkDelay("etcd", "api-1", 10*sim.Millisecond)
	apiserver.New(w, "api-1", apiserver.DefaultConfig("etcd"))

	writer := client.NewConn(w, "writer", "api-1", 500*sim.Millisecond)
	w.Network().Register("writer", sim.HandlerFunc(func(m *sim.Message) { writer.HandleMessage(m) }))
	reader := client.NewConn(w, "reader", "api-1", 500*sim.Millisecond)
	w.Network().Register("reader", sim.HandlerFunc(func(m *sim.Message) { reader.HandleMessage(m) }))
	w.Kernel().RunFor(300 * sim.Millisecond)

	// The shared object; its Capacity field is the version counter.
	done := false
	writer.Create(cluster.NewNode("config", "config-uid", cluster.NodeSpec{Ready: true, Capacity: 0}), func(_ *cluster.Object, err error) { done = true })
	for !done && w.Kernel().Step() {
	}

	// Staleness is measured against the store's committed value at read
	// time, not against writer acknowledgements (the ack and the watch
	// push travel the same delayed link, so the ack would under-report).
	committed := 0
	st.AddNotifyHook(func(events []history.Event) {
		for _, e := range events {
			if e.Type != history.Put || e.Key != cluster.Key(cluster.KindNode, "config") {
				continue
			}
			if obj, err := cluster.Decode(e.Value, e.Revision); err == nil && obj.Node != nil {
				committed = obj.Node.Capacity
			}
		}
	})

	var writeLatSum sim.Duration
	writes := 0
	var writeLoop func()
	writeLoop = func() {
		writes++
		t0 := w.Now()
		next := writes
		writer.Get(cluster.KindNode, "config", true, func(obj *cluster.Object, found bool, err error) {
			if err != nil || !found {
				return
			}
			upd := obj.Clone()
			upd.Node.Capacity = next
			writer.Update(upd, func(_ *cluster.Object, err error) {
				if err == nil {
					writeLatSum += w.Now().Sub(t0)
				}
			})
		})
		w.Kernel().Schedule(100*sim.Millisecond, writeLoop)
	}
	w.Kernel().Schedule(500*sim.Millisecond, writeLoop)

	var readLatSum sim.Duration
	var staleSum, staleMax, reads int
	var readLoop func()
	readLoop = func() {
		t0 := w.Now()
		reader.Get(cluster.KindNode, "config", quorum, func(obj *cluster.Object, found bool, err error) {
			if err != nil || !found {
				return
			}
			reads++
			readLatSum += w.Now().Sub(t0)
			lag := committed - obj.Node.Capacity
			if lag < 0 {
				lag = 0
			}
			staleSum += lag
			if lag > staleMax {
				staleMax = lag
			}
		})
		w.Kernel().Schedule(25*sim.Millisecond, readLoop)
	}
	w.Kernel().Schedule(600*sim.Millisecond, readLoop)

	w.Kernel().Run(sim.Time(6 * sim.Second))

	name := "watch-cache read"
	if quorum {
		name = "quorum read"
	}
	row := e8Row{mechanism: name}
	if reads > 0 {
		row.readLatency = readLatSum / sim.Duration(reads)
		row.meanStaleness = float64(staleSum) / float64(reads)
		row.maxStaleness = staleMax
	}
	if writes > 0 {
		row.writeLatency = writeLatSum / sim.Duration(writes)
	}
	return row
}

// runE8Lease measures the Gray-Cheriton lease cache, including a 1s
// partition of a second leaseholder to expose the write-blocking cost.
func runE8Lease(ttl sim.Duration) e8Row {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	srv := leasecache.NewServer(w, "lease-server", ttl)
	reader := leasecache.NewClient(w, "reader", "lease-server")
	holder := leasecache.NewClient(w, "holder", "lease-server")
	writer := leasecache.NewClient(w, "writer", "lease-server")

	committed := 0
	var writeLatSum sim.Duration
	writes := 0
	var writeLoop func()
	writeLoop = func() {
		writes++
		next := writes
		t0 := w.Now()
		writer.Write("/cfg", []byte(fmt.Sprintf("%d", next)), func(uint64) {
			committed = next
			writeLatSum += w.Now().Sub(t0)
		})
		w.Kernel().Schedule(100*sim.Millisecond, writeLoop)
	}
	w.Kernel().Schedule(500*sim.Millisecond, writeLoop)

	var readLatSum sim.Duration
	var staleSum, staleMax, reads int
	mkReadLoop := func(c *leasecache.Client, period sim.Duration) func() {
		var loop func()
		loop = func() {
			t0 := w.Now()
			c.Read("/cfg", func(v []byte, version uint64) {
				if c == reader {
					reads++
					readLatSum += w.Now().Sub(t0)
					lag := committed - int(version)
					if lag < 0 {
						lag = 0
					}
					staleSum += lag
					if lag > staleMax {
						staleMax = lag
					}
				}
			})
			w.Kernel().Schedule(period, loop)
		}
		return loop
	}
	w.Kernel().Schedule(600*sim.Millisecond, mkReadLoop(reader, 25*sim.Millisecond))
	w.Kernel().Schedule(610*sim.Millisecond, mkReadLoop(holder, 40*sim.Millisecond))

	// Mid-run, the second holder becomes unreachable for 1s: writes must
	// out-wait its lease.
	w.Kernel().At(sim.Time(3*sim.Second), func() { w.Network().Partition("holder", "lease-server") })
	w.Kernel().At(sim.Time(4*sim.Second), func() { w.Network().Heal("holder", "lease-server") })

	w.Kernel().Run(sim.Time(6 * sim.Second))

	row := e8Row{mechanism: fmt.Sprintf("lease cache (TTL %s)", ttl)}
	if reads > 0 {
		row.readLatency = readLatSum / sim.Duration(reads)
		row.meanStaleness = float64(staleSum) / float64(reads)
		row.maxStaleness = staleMax
	}
	if writes > 0 {
		row.writeLatency = writeLatSum / sim.Duration(writes)
	}
	row.note = fmt.Sprintf("%d expiry waits", srv.ExpiryWaits)
	return row
}

func BenchmarkE8_Sec41_LeasesVsCaches(b *testing.B) {
	var rows []e8Row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		rows = append(rows, runE8CacheOrQuorum(false))
		rows = append(rows, runE8CacheOrQuorum(true))
		rows = append(rows, runE8Lease(100*sim.Millisecond))
		rows = append(rows, runE8Lease(500*sim.Millisecond))
	}
	b.ReportMetric(rows[0].meanStaleness, "cache-mean-staleness")
	b.ReportMetric(ms(rows[3].writeLatency), "lease500-write-ms")
	printOnce("E8", func() {
		fmt.Printf("\nE8 (paper §4.1) — \"the inconsistency between the cache layers and the\n")
		fmt.Printf("centralized data store cannot simply be eliminated without hurting performance\"\n")
		fmt.Printf("  %-24s %-16s %-16s %-18s %-8s %s\n", "mechanism", "read lat (ms)", "write lat (ms)", "mean staleness", "max", "note")
		for _, r := range rows {
			fmt.Printf("  %-24s %-16.2f %-16.2f %-18.3f %-8d %s\n",
				r.mechanism, ms(r.readLatency), ms(r.writeLatency), r.meanStaleness, r.maxStaleness, r.note)
		}
		fmt.Printf("  (staleness in writer versions; latencies in virtual ms. Caches read fast\n")
		fmt.Printf("   but stale; quorum reads are fresh but slow; leases give fresh fast reads\n")
		fmt.Printf("   and push the cost onto writes — especially with unreachable holders)\n")
	})
}
