package explore

import (
	"bytes"
	"testing"

	"repro/internal/explain"
	"repro/internal/workload"
)

// The seeded 56261 bug (scheduler misses a node deletion) is reachable by
// dropping one consumed delivery, so the explorer must find it and
// minimize to exactly that coordinate.
func TestExploreFindsWitness56261(t *testing.T) {
	res := Run(Config{
		Target: workload.Target56261(), Seed: 1,
		Bounds:   Bounds{Drops: 1, Delays: 1},
		POR:      true,
		Snapshot: true,
	})
	if res.Outcome != OutcomeViolation {
		t.Fatalf("outcome = %s, want %s", res.Outcome, OutcomeViolation)
	}
	w := res.Witness
	if w == nil || w.Explanation == nil {
		t.Fatal("violation outcome without witness/explanation")
	}
	if w.MinimalID != "dropdel/scheduler/nodes/n1/DELETED#1" {
		t.Fatalf("minimal witness = %s, want the node-deletion drop", w.MinimalID)
	}
	chain := w.Explanation.Chain
	if len(chain) == 0 || chain[len(chain)-1].Kind != explain.StepViolation {
		t.Fatalf("witness chain does not terminate in a violation step: %+v", chain)
	}
	if res.Stats.ScheduleSpace < 2*res.Stats.SchedulesExecuted {
		t.Fatalf("POR reduction below 2x: space=%d executed=%d",
			res.Stats.ScheduleSpace, res.Stats.SchedulesExecuted)
	}
}

// POR soundness cross-check: on a drops-only bound the full (no-POR)
// exploration must find the same violation, minimizing to the identical
// witness. This is the same assertion CI runs via phtest -explore.
func TestExplorePORCrossCheck(t *testing.T) {
	var minimal [2]string
	for i, por := range []bool{true, false} {
		res := Run(Config{
			Target: workload.Target56261(), Seed: 1,
			Bounds:   Bounds{Drops: 1},
			POR:      por,
			Snapshot: true,
		})
		if res.Outcome != OutcomeViolation {
			t.Fatalf("por=%v: outcome = %s, want violation", por, res.Outcome)
		}
		minimal[i] = res.Witness.MinimalID
	}
	if minimal[0] != minimal[1] {
		t.Fatalf("POR changed the minimized witness: with=%s without=%s", minimal[0], minimal[1])
	}
}

// A target whose bug the bounded vocabulary cannot reach must certify,
// and the certificate must be byte-identical across reruns and across
// snapshot on/off (forks are a performance detail, not a semantic one).
func TestExploreCertificateDeterministic(t *testing.T) {
	var blobs [][]byte
	for _, snapshot := range []bool{true, true, false} {
		res := Run(Config{
			Target: workload.Target59848(), Seed: 1,
			Bounds:   Bounds{Drops: 1, Delays: 1},
			POR:      true,
			Snapshot: snapshot,
		})
		if res.Outcome != OutcomeCertificate {
			t.Fatalf("snapshot=%v: outcome = %s, want certificate", snapshot, res.Outcome)
		}
		st := res.Stats
		if st.SchedulesExecuted+st.SchedulesCollapsed != st.ScheduleSpace {
			t.Fatalf("collapse accounting broken: executed=%d collapsed=%d space=%d",
				st.SchedulesExecuted, st.SchedulesCollapsed, st.ScheduleSpace)
		}
		blob, err := Marshal(res.Certificate)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatal("certificate not byte-identical across reruns")
	}
	if !bytes.Equal(blobs[0], blobs[2]) {
		t.Fatal("certificate differs between snapshot on and off")
	}
}

// Checkpoint-tree forking must actually engage on a snapshotable
// certificate run — otherwise "cheap revisits" silently degrades to full
// replays everywhere.
func TestExploreForksEngage(t *testing.T) {
	res := Run(Config{
		Target: workload.Target59848(), Seed: 1,
		Bounds:   Bounds{Drops: 1},
		POR:      true,
		Snapshot: true,
	})
	if res.Outcome != OutcomeCertificate {
		t.Fatalf("outcome = %s, want certificate", res.Outcome)
	}
	if res.Forks == 0 {
		t.Fatalf("no executions served by checkpoint forks (replays=%d)", res.Replays)
	}
}

// An exploration that cannot finish within MaxSchedules must abort
// without a certificate — a truncated search proves nothing.
func TestExploreBudgetAbort(t *testing.T) {
	res := Run(Config{
		Target: workload.Target59848(), Seed: 1,
		Bounds:   Bounds{Drops: 1, Delays: 1, MaxSchedules: 3},
		POR:      true,
		Snapshot: false,
	})
	if res.Outcome != OutcomeBudget {
		t.Fatalf("outcome = %s, want %s", res.Outcome, OutcomeBudget)
	}
	if res.Certificate != nil {
		t.Fatal("budget abort must not emit a certificate")
	}
}

// The window bound clips the choice points: starting the window after
// the 56261 trigger delivery makes the same bound certify.
func TestExploreWindowClipsChoicePoints(t *testing.T) {
	full := Run(Config{
		Target: workload.Target56261(), Seed: 1,
		Bounds: Bounds{Drops: 1}, POR: true, Snapshot: false,
	})
	if full.Outcome != OutcomeViolation {
		t.Fatalf("full window: outcome = %s, want violation", full.Outcome)
	}
	clipped := Run(Config{
		Target: workload.Target56261(), Seed: 1,
		Bounds: Bounds{Start: 2_000_000_000, Drops: 1}, POR: true, Snapshot: false,
	})
	if clipped.Outcome != OutcomeCertificate {
		t.Fatalf("clipped window: outcome = %s, want certificate", clipped.Outcome)
	}
	if clipped.Stats.ChoicePoints >= full.Stats.ChoicePoints {
		t.Fatalf("window did not clip choice points: %d >= %d",
			clipped.Stats.ChoicePoints, full.Stats.ChoicePoints)
	}
}
