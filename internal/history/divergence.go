package history

// This file quantifies how a component's view (H', S') diverges from the
// ground truth (H, S) — the quantities the paper's testing tool manipulates
// (staleness, time traveling, observability gaps; §4.2).

// Divergence summarizes how a partial view relates to the full history at
// one instant.
type Divergence struct {
	// LagRevisions is how many committed revisions the view's frontier
	// trails the full history (staleness, §4.2.1).
	LagRevisions int64
	// LagTime is the virtual-time age of the view: commit time of the
	// full history's newest event minus commit time of the view's frontier
	// event. Zero when the view is current.
	LagTime int64
	// MissingEvents counts events at or below the view's frontier that the
	// view never observed (observability gaps, §4.2.3).
	MissingEvents int
	// OrderViolations counts adjacent observed pairs that are out of
	// revision order (a symptom of time traveling / replays, §4.2.2).
	OrderViolations int
}

// Current reports whether the view is fully caught up and complete.
func (d Divergence) Current() bool {
	return d.LagRevisions == 0 && d.MissingEvents == 0 && d.OrderViolations == 0
}

// Measure computes the divergence of partial from full. Both must be
// histories of the same system (partial's events drawn from full).
func Measure(partial, full *History) Divergence {
	var d Divergence
	d.LagRevisions = full.LastRevision() - partial.LastRevision()
	if d.LagRevisions < 0 {
		d.LagRevisions = 0
	}
	if full.Len() > 0 && partial.Len() > 0 {
		lt := full.At(full.Len()-1).Time - partial.At(partial.Len()-1).Time
		if lt > 0 {
			d.LagTime = lt
		}
	} else if full.Len() > 0 && partial.Len() == 0 {
		d.LagTime = full.At(full.Len()-1).Time - full.At(0).Time
	}
	d.MissingEvents = len(partial.MissingFrom(full))
	return d
}

// Observation is one event delivery as seen by a component, in arrival
// order. Components append to an ObservationLog as notifications arrive;
// the log is the raw material for time-travel detection.
type Observation struct {
	Revision int64
	Key      string
	Time     int64 // virtual arrival time
}

// ObservationLog records the order in which a component observed events.
// Unlike History it permits out-of-order and duplicate entries — that is
// exactly what it exists to detect.
type ObservationLog struct {
	obs []Observation
}

// Record appends an observation.
func (l *ObservationLog) Record(o Observation) { l.obs = append(l.obs, o) }

// Fork returns a copy-on-write fork of the log: it shares the recorded
// prefix (capped so the first Record on either side reallocates) — the
// prefix-checkpoint layer's snapshot primitive.
func (l *ObservationLog) Fork() ObservationLog {
	return ObservationLog{obs: l.obs[:len(l.obs):len(l.obs)]}
}

// Len returns the number of recorded observations.
func (l *ObservationLog) Len() int { return len(l.obs) }

// Observations returns a copy of the log.
func (l *ObservationLog) Observations() []Observation {
	out := make([]Observation, len(l.obs))
	copy(out, l.obs)
	return out
}

// TimeTravelEpisode marks a regression in a component's observations: at
// index Index the component observed revision Revision after having already
// observed MaxSeen (> Revision). This is the pattern of Figure 3b — after a
// restart or an upstream source switch, the component re-observes its own
// past.
type TimeTravelEpisode struct {
	Index    int
	Revision int64
	MaxSeen  int64
}

// TimeTravels scans the log and returns every regression episode.
func (l *ObservationLog) TimeTravels() []TimeTravelEpisode {
	var eps []TimeTravelEpisode
	var maxSeen int64
	for i, o := range l.obs {
		if o.Revision < maxSeen {
			eps = append(eps, TimeTravelEpisode{Index: i, Revision: o.Revision, MaxSeen: maxSeen})
		}
		if o.Revision > maxSeen {
			maxSeen = o.Revision
		}
	}
	return eps
}

// MaxRegression returns the largest revision distance travelled backwards
// in the log (0 when the log is monotone).
func (l *ObservationLog) MaxRegression() int64 {
	var maxSeen, worst int64
	for _, o := range l.obs {
		if d := maxSeen - o.Revision; d > worst {
			worst = d
		}
		if o.Revision > maxSeen {
			maxSeen = o.Revision
		}
	}
	return worst
}
