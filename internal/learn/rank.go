// Impact ranking: order the kept set so plans most likely to flip a
// component's decision run first. The score is a pure function of the
// learned model, the plan, and the (deterministically mined) affinity
// table, so ranked order is byte-identical across reruns and workers.
package learn

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// ClassOf predicts a plan's coverage class before running it: the family
// plus victim plus knobs with fine-grained timing (freeze points,
// occurrence numbers) abstracted away. Plans in one class tend to land in
// the same coverage signature class, which is both the redundancy the
// guided scheduler skips past and the granularity at which bucket
// affinity generalises ("a drop on this object for this victim detected
// something before ⇒ its siblings are hot").
func ClassOf(p core.Plan) string {
	switch q := p.(type) {
	case core.GapPlan:
		mode := "blackout"
		if q.Occurrence > 0 {
			mode = "drop"
		}
		return fmt.Sprintf("gap/%s/%s/%s/%s/%s", mode, q.Victim, q.Kind, q.Name, q.Type)
	case core.TimeTravelPlan:
		return fmt.Sprintf("timetravel/%s->%s", q.Component, q.StaleAPI)
	case core.StalenessPlan:
		return fmt.Sprintf("stale/%s", q.Victim)
	case core.CrashPlan:
		return fmt.Sprintf("crash/%s", q.Component)
	case core.PartitionPlan:
		return fmt.Sprintf("partition/%s-%s", q.A, q.B)
	case core.SlowLinkPlan:
		return fmt.Sprintf("slowlink/%s-%s", q.A, q.B)
	case core.FlakyLinkPlan:
		return fmt.Sprintf("flaky/%s-%s/d%d-u%d-r%d", q.A, q.B, q.DropPercent, q.DupPercent, q.ReorderPercent)
	case core.CompactionPressurePlan:
		return fmt.Sprintf("compact/%s", q.Victim)
	case core.SequencePlan:
		subs := make([]string, 0, len(q.Plans))
		for _, sub := range q.Plans {
			subs = append(subs, ClassOf(sub))
		}
		sort.Strings(subs)
		key := "seq["
		for i, s := range subs {
			if i > 0 {
				key += ","
			}
			key += s
		}
		return key + "]"
	case core.NopPlan:
		return "nop"
	default:
		return "other/" + p.ID()
	}
}

// Scoring weights. The planner already front-loads high-value plans
// (deletion drops first, causally ranked); the learned score must agree
// with that prior where it is right (deletion-adjacency dominates) and
// improve on it where the trace says otherwise (a cross-kind control-loop
// consumption outranks a same-kind status echo). A plan's score is the
// evidence of its *single best* surface consumption, not a sum: summing
// rewards wide perturbations (an apiserver freeze touches every delivery
// in its window) for sheer breadth, demoting the planner's precise causal
// drops — measured to cost detections on three of the five seeded bugs.
// Weights are validated empirically by the soundness regression: each
// seeded bug must be detected in no more — and for the wide targets
// strictly fewer — executions than the unranked planner order.
const (
	weightAffinity  = 1000.0 // past detections in the plan's class
	weightDeletion  = 100.0  // deletion-adjacent consumption
	weightCrossKind = 70.0   // nearest reaction writes a different kind (control loop)
	weightCAS       = 10.0   // per CAS/txn-adjacent write attributed to it
	weightActed     = 5.0    // victim wrote the delivered object before
	weightBase      = 1.0    // any consumed delivery at all
	weightUnknown   = 0.5    // unbounded families score only a floor
)

// Score computes a plan's learned impact score given its surface: the
// affinity prior plus the maximum per-consumption evidence across the
// surface. Unknown surfaces (known == false) receive a small floor so
// ranked order pushes unbounded families behind any plan with learned
// evidence while never dropping them.
func (m *Model) Score(p core.Plan, known bool, surface []int, affinity map[string]int) float64 {
	score := float64(affinity[ClassOf(p)]) * weightAffinity
	if !known {
		return score + weightUnknown
	}
	best := 0.0
	for _, idx := range surface {
		c := m.consumed[idx]
		ev := weightBase
		if c.DeletionAdjacent() {
			ev += weightDeletion
		}
		if c.CrossKind {
			ev += weightCrossKind
		}
		ev += float64(c.CASWrites) * weightCAS
		if c.ActedOn {
			ev += weightActed
		}
		if ev > best {
			best = ev
		}
	}
	return score + best
}

// familyOf extracts a plan's strategy family from its coverage class —
// the block coordinate ranking preserves. One-shot drops and window
// blackouts are separate families: the planner emits precise drops
// before blackouts on purpose, and a wide blackout surface would
// otherwise tie the best drop's max-evidence score and jump the queue.
func familyOf(p core.Plan) string {
	class := ClassOf(p)
	seps := 1
	if q, ok := p.(core.GapPlan); ok {
		_ = q
		seps = 2 // keep "gap/<mode>"
	}
	for i := 0; i < len(class); i++ {
		if class[i] == '[' {
			return class[:i]
		}
		if class[i] == '/' {
			seps--
			if seps == 0 {
				return class[:i]
			}
		}
	}
	return class
}

// rank reorders the kept set *within* planner strategy families. The
// planner's inter-family order (causal gap drops first, then time-travel,
// staleness, faults) encodes a prior the learned score must not override:
// max-evidence scoring lets a wide perturbation tie its single best
// constituent delivery, so sorting globally floods the front with timing
// variants of wide families — measured to bury the detecting plan on
// three of five seeded bugs. Within one family, though, planner order is
// arbitrary enumeration order (victims × timing grids), and the learned
// score is pure signal. Affinity is the one global override: a class that
// detected something before jumps its whole family forward. Ties preserve
// planner order; the result is a pure function of (model, plans, opts).
func (m *Model) rank(s *Schedule, opts Options) {
	// s.Kept is in planner order here; family rank = first appearance.
	famRank := make(map[string]int)
	rankOf := make([]int, len(s.Kept))
	affinity := make([]float64, len(s.Kept))
	for i := range s.Kept {
		p := s.Kept[i].Plan
		fam := familyOf(p)
		r, ok := famRank[fam]
		if !ok {
			r = len(famRank)
			famRank[fam] = r
		}
		rankOf[i] = r
		known, surface := m.Surface(p)
		s.Kept[i].Score = m.Score(p, known, surface, opts.Affinity)
		affinity[i] = float64(opts.Affinity[ClassOf(p)]) * weightAffinity
	}
	order := make([]int, len(s.Kept))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if affinity[ia] != affinity[ib] {
			return affinity[ia] > affinity[ib]
		}
		if rankOf[ia] != rankOf[ib] {
			return rankOf[ia] < rankOf[ib]
		}
		return s.Kept[ia].Score > s.Kept[ib].Score
	})
	kept := make([]ScheduledPlan, len(s.Kept))
	for pos, i := range order {
		kept[pos] = s.Kept[i]
	}
	s.Kept = kept
}
