package store

import "sort"

// LeaseID identifies a lease. 0 is "no lease".
type LeaseID int64

// Lease grants time-bounded ownership of attached keys, after Gray &
// Cheriton [23]. When a lease expires every attached key is deleted — the
// mechanism behind member liveness keys (a crashed component stops renewing
// and its registration disappears from S).
//
// The paper (§4.1) notes leases trade performance for bounded staleness;
// experiment E8 measures that trade-off.
type Lease struct {
	ID        LeaseID
	TTL       int64 // virtual nanoseconds
	ExpiresAt int64 // virtual time of expiry
}

// GrantLease creates a lease with the given TTL starting at the store's
// current virtual time.
func (s *Store) GrantLease(ttl int64) Lease {
	s.nextLease++
	l := &Lease{ID: s.nextLease, TTL: ttl, ExpiresAt: s.now + ttl}
	s.leases[l.ID] = l
	return *l
}

// KeepAlive renews a lease for its full TTL from the current virtual time.
func (s *Store) KeepAlive(id LeaseID) (Lease, error) {
	l, ok := s.leases[id]
	if !ok {
		return Lease{}, ErrLeaseNotFound
	}
	l.ExpiresAt = s.now + l.TTL
	return *l, nil
}

// RevokeLease removes a lease and deletes every attached key (each deletion
// is a committed history event). It returns the deleted keys.
func (s *Store) RevokeLease(id LeaseID) ([]string, error) {
	if _, ok := s.leases[id]; !ok {
		return nil, ErrLeaseNotFound
	}
	keys := s.leaseKeySet(id)
	for _, k := range keys {
		_, _ = s.Delete(k) // Delete detaches from the lease set.
	}
	delete(s.leases, id)
	delete(s.leaseKeys, id)
	return keys, nil
}

// ExpireDue revokes every lease whose expiry is at or before the store's
// current virtual time, returning all keys deleted as a result. The Server
// calls this from a kernel timer.
func (s *Store) ExpireDue() []string {
	var due []LeaseID
	for id, l := range s.leases {
		if l.ExpiresAt <= s.now {
			due = append(due, id)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	var deleted []string
	for _, id := range due {
		keys, _ := s.RevokeLease(id)
		deleted = append(deleted, keys...)
	}
	return deleted
}

// LeaseInfo returns a lease's current metadata.
func (s *Store) LeaseInfo(id LeaseID) (Lease, bool) {
	l, ok := s.leases[id]
	if !ok {
		return Lease{}, false
	}
	return *l, true
}

// Leases returns the IDs of all live leases, sorted.
func (s *Store) Leases() []LeaseID {
	ids := make([]LeaseID, 0, len(s.leases))
	for id := range s.leases {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (s *Store) attachLease(id LeaseID, key string) {
	set := s.leaseKeys[id]
	if set == nil {
		set = make(map[string]bool)
		s.leaseKeys[id] = set
	}
	set[key] = true
}

func (s *Store) detachLease(id LeaseID, key string) {
	if set := s.leaseKeys[id]; set != nil {
		delete(set, key)
	}
}

func (s *Store) leaseKeySet(id LeaseID) []string {
	set := s.leaseKeys[id]
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
