package client

import (
	"fmt"
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/store"
)

// TestPropertyInformerConvergesToGroundTruth: under an unperturbed but
// randomized workload, after quiescence the informer cache S' equals the
// ground-truth S exactly — names, UIDs, and resource versions. This is the
// baseline the perturbation experiments diverge from; if it failed, every
// "bug" the tool finds could be an artifact of the cache layer itself.
func TestPropertyInformerConvergesToGroundTruth(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			w := sim.NewWorld(sim.WorldConfig{Seed: seed, Latency: sim.Millisecond, Jitter: sim.Millisecond / 2})
			st := store.New()
			store.NewServer(w, "etcd", st)
			apiserver.New(w, "api-1", apiserver.DefaultConfig("etcd"))

			writer := NewConn(w, "writer", "api-1", 300*sim.Millisecond)
			w.Network().Register("writer", sim.HandlerFunc(func(m *sim.Message) { writer.HandleMessage(m) }))
			observer := NewConn(w, "observer", "api-1", 300*sim.Millisecond)
			w.Network().Register("observer", sim.HandlerFunc(func(m *sim.Message) { observer.HandleMessage(m) }))
			w.Kernel().RunFor(300 * sim.Millisecond)

			inf := NewInformer(observer, cluster.KindPod, InformerConfig{WatchTimeout: sim.Second})
			inf.Run()
			w.Kernel().RunFor(100 * sim.Millisecond)

			// Random workload: create/update/delete pods over 3 seconds.
			rng := w.Kernel().Rand()
			names := []string{"a", "b", "c", "d", "e"}
			live := map[string]bool{}
			for i := 0; i < 60; i++ {
				name := names[rng.Intn(len(names))]
				switch {
				case !live[name]:
					writer.Create(cluster.NewPod(name, fmt.Sprintf("u-%s-%d", name, i), cluster.PodSpec{NodeName: "k1"}), nil)
					live[name] = true
				case rng.Intn(3) == 0:
					writer.Delete(cluster.KindPod, name, 0, nil)
					live[name] = false
				default:
					name := name
					writer.Get(cluster.KindPod, name, true, func(obj *cluster.Object, found bool, err error) {
						if err != nil || !found {
							return
						}
						upd := obj.Clone()
						upd.Pod.Image = fmt.Sprintf("v%d", i)
						writer.Update(upd, nil)
					})
				}
				w.Kernel().RunFor(sim.Duration(rng.Intn(50)) * sim.Millisecond)
			}
			w.Kernel().RunFor(2 * sim.Second) // quiesce

			// Compare S' against S.
			kvs, _ := st.Range(cluster.KindPrefix(cluster.KindPod))
			truth := map[string]*cluster.Object{}
			for _, kv := range kvs {
				obj, err := cluster.Decode(kv.Value, kv.ModRevision)
				if err != nil {
					t.Fatal(err)
				}
				truth[obj.Meta.Name] = obj
			}
			if inf.Len() != len(truth) {
				t.Fatalf("cache has %d pods, truth has %d", inf.Len(), len(truth))
			}
			for name, want := range truth {
				got, ok := inf.Get(name)
				if !ok {
					t.Fatalf("cache missing %q", name)
				}
				if got.Meta.UID != want.Meta.UID || got.Meta.ResourceVersion != want.Meta.ResourceVersion {
					t.Fatalf("cache entry %q = (uid %s, rv %d), truth (uid %s, rv %d)",
						name, got.Meta.UID, got.Meta.ResourceVersion, want.Meta.UID, want.Meta.ResourceVersion)
				}
			}
		})
	}
}
