// Epochs: a demonstration of the programming model proposed in paper §6.2 —
// break the history H into epochs and guarantee that a service seeing one
// event of an epoch sees all of them. The demo feeds the same lossy
// notification stream to a raw consumer and to an epoch-bounded consumer
// and compares what each one observes.
//
// Run with: go run ./examples/epochs
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/epochs"
	"repro/internal/history"
)

func main() {
	fmt.Println("== epoch-bounded views (paper §6.2) ==")
	fmt.Println()

	// Ground truth: 24 committed events, H = e1..e24.
	var events []history.Event
	for i := 1; i <= 24; i++ {
		events = append(events, history.Event{
			Revision: int64(i),
			Type:     history.Put,
			Key:      fmt.Sprintf("/obj-%d", i%4),
			Value:    []byte{byte(i)},
			Time:     int64(i) * 100,
		})
	}
	full := history.New()
	for _, e := range events {
		_ = full.Append(e)
	}

	// The network loses 30% of notifications.
	rng := rand.New(rand.NewSource(42))
	dropped := map[int64]bool{}
	for _, e := range events {
		if rng.Float64() < 0.3 {
			dropped[e.Revision] = true
		}
	}
	fmt.Printf("ground truth |H| = %d events; the stream drops %d of them\n\n", len(events), len(dropped))

	// Consumer A: raw stream (what informers see today).
	raw := history.New()
	for _, e := range events {
		if !dropped[e.Revision] {
			_ = raw.Append(e)
		}
	}
	rawViolations := history.CheckEpochVisibility(raw, full, 6)
	fmt.Printf("raw consumer observed %d/%d events — %d torn epochs (size 6):\n",
		raw.Len(), len(events), len(rawViolations))
	for _, v := range rawViolations {
		fmt.Printf("  epoch %d: saw %d of %d events (revisions %d..%d)\n",
			v.Epoch.Index, v.Seen, v.Expected, v.Epoch.FirstRev, v.Epoch.LastRev)
	}

	// Consumer B: the same lossy stream behind an epoch batcher with a
	// recovery path to the authoritative history.
	fetch := func(from, to int64) []history.Event {
		var out []history.Event
		for _, e := range events {
			if e.Revision >= from && e.Revision <= to {
				out = append(out, e)
			}
		}
		return out
	}
	bounded := history.New()
	batcher := epochs.NewBatcher(epochs.Config{Size: 6}, fetch, func(ep []history.Event) {
		for _, e := range ep {
			_ = bounded.Append(e)
		}
	})
	for _, e := range events {
		if !dropped[e.Revision] {
			batcher.Offer(e)
		}
	}
	if err := batcher.Flush(int64(len(events))); err != nil {
		fmt.Println("flush:", err)
	}
	st := batcher.Stats()
	fmt.Printf("\nepoch-bounded consumer observed %d/%d events — %d torn epochs\n",
		bounded.Len(), len(events), len(history.CheckEpochVisibility(bounded, full, 6)))
	fmt.Printf("cost: %d recovery pulls, up to %d epochs buffered\n", st.Recoveries, st.MaxBufferedEpochs)

	fmt.Println()
	fmt.Println("the epoch layer pays coordination (recovery pulls, buffering latency)")
	fmt.Println("to make partial histories all-or-nothing — see BenchmarkE7 for the")
	fmt.Println("full epoch-size sweep of that trade-off.")
}
