package regions

import (
	"repro/internal/client"
	"repro/internal/sim"
)

// This file gives the region service a snapshot/restore pair. Region
// servers hold only their owned set; the manager holds its connection and
// metrics. The manager's transient move timers (the CAS-retry and the
// close-before-open delay) are anonymous closures over in-flight
// transitions — they cannot be reconstructed from a snapshot, so they stay
// untagged and a capture attempted mid-move simply slides past the window.

// ServerSnapshot captures one region server.
type ServerSnapshot struct {
	Owned map[string]bool
	Down  bool
}

// Snapshot captures the server's state (always possible: no connection, no
// timers).
func (s *RegionServer) Snapshot() *ServerSnapshot {
	snap := &ServerSnapshot{Owned: make(map[string]bool, len(s.owned)), Down: s.down}
	for r, v := range s.owned {
		snap.Owned[r] = v
	}
	return snap
}

// RestoreServer reconstructs a region server named name from a snapshot
// inside world w.
func RestoreServer(w *sim.World, name string, snap *ServerSnapshot) *RegionServer {
	s := &RegionServer{
		id:    ServerID(name),
		world: w,
		owned: make(map[string]bool, len(snap.Owned)),
		down:  snap.Down,
	}
	for r, v := range snap.Owned {
		s.owned[r] = v
	}
	w.Network().Register(s.id, s)
	w.AddProcess(s)
	return s
}

// ManagerSnapshot captures the assignment manager at a checkpoint.
type ManagerSnapshot struct {
	Cfg         ManagerConfig
	Down        bool
	Epoch       uint64
	Transitions int
	Succeeded   int
	CASFailures int
	Retries     int

	Conn *client.ConnSnapshot
}

// Snapshot captures the manager's state. It fails (ok=false) when an RPC
// call is in flight (an in-flight move's continuation cannot be
// reconstructed).
func (m *Manager) Snapshot() (*ManagerSnapshot, bool) {
	cs, ok := m.conn.Snapshot()
	if !ok {
		return nil, false
	}
	return &ManagerSnapshot{
		Cfg:         m.cfg,
		Down:        m.down,
		Epoch:       m.epoch,
		Transitions: m.Transitions,
		Succeeded:   m.Succeeded,
		CASFailures: m.CASFailures,
		Retries:     m.Retries,
		Conn:        cs,
	}, true
}

// RestoreManager reconstructs the assignment manager from a snapshot
// inside world w. The manager runs no informers and owns no tagged timers,
// so there is no Rearm counterpart.
func RestoreManager(w *sim.World, snap *ManagerSnapshot) *Manager {
	m := &Manager{
		id:          ManagerID,
		world:       w,
		cfg:         snap.Cfg,
		down:        snap.Down,
		epoch:       snap.Epoch,
		Transitions: snap.Transitions,
		Succeeded:   snap.Succeeded,
		CASFailures: snap.CASFailures,
		Retries:     snap.Retries,
	}
	w.Network().Register(m.id, m)
	w.AddProcess(m)
	m.conn = client.RestoreConn(w, snap.Conn)
	return m
}
