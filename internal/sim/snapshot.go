package sim

import (
	"fmt"
	"sort"
)

// This file is the simulation half of the prefix-checkpoint layer
// (internal/infra/snapshot.go holds the component half). A checkpoint
// captures the kernel's scheduling identity — virtual clock, sequence
// counter, step counter, RNG stream position, and the (tag, at, seq) of
// every pending event — plus the network's mutable routing state. It does
// NOT capture event closures: a restored world reconstructs each pending
// event's callback from its tag and re-inserts it with its original
// sequence number, so tie-breaking order in the forked run is
// byte-identical to a full replay.
//
// The contract that makes forking exact (see DESIGN.md, "Prefix
// checkpointing"):
//
//   - a snapshot is only legal at a quiescent instant: every pending
//     non-canceled event is tagged and no network messages are held;
//   - a forked run re-applies the plan first (consuming the same sequence
//     band a full replay's Apply would), then replays the workload in
//     rehydration mode (burning the sequence numbers of pre-checkpoint
//     actions), then re-installs pending events shifted by the plan's
//     allocation count, and finally fast-forwards the sequence counter to
//     the prefix counter plus that same shift.

// PendingEvent describes one pending, tagged kernel event at capture time.
type PendingEvent struct {
	At  Time
	Seq uint64
	Tag EventTag
}

// KernelSnapshot is the kernel's scheduling identity at a checkpoint.
type KernelSnapshot struct {
	Now      Time
	Seq      uint64 // sequence counter at capture
	Steps    uint64 // events executed so far
	RNGDraws uint64 // raw 64-bit draws consumed from the seeded source
	Pending  []PendingEvent
}

// CaptureSnapshot captures the kernel's state if every pending event is
// tagged. It returns ok=false (and no snapshot) when an anonymous event is
// pending — the caller should advance virtual time slightly and retry, or
// abandon this checkpoint.
func (k *Kernel) CaptureSnapshot() (KernelSnapshot, bool) {
	pending := make([]PendingEvent, 0, len(k.heap))
	for _, ev := range k.heap {
		if ev.canceled {
			continue
		}
		if ev.tag == (EventTag{}) {
			return KernelSnapshot{}, false
		}
		pending = append(pending, PendingEvent{At: ev.at, Seq: ev.seq, Tag: ev.tag})
	}
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].At != pending[j].At {
			return pending[i].At < pending[j].At
		}
		return pending[i].Seq < pending[j].Seq
	})
	return KernelSnapshot{
		Now:      k.now,
		Seq:      k.seq,
		Steps:    k.steps,
		RNGDraws: k.src.draws,
		Pending:  pending,
	}, true
}

// Seq returns the current event sequence counter.
func (k *Kernel) Seq() uint64 { return k.seq }

// RNGDraws returns how many raw 64-bit values have been drawn from the
// kernel's seeded random source.
func (k *Kernel) RNGDraws() uint64 { return k.src.draws }

// SetDefaultTag installs (or, with nil, removes) a tag applied to events
// scheduled through the untagged At/Schedule entry points. The campaign
// layer brackets the top-level workload invocation with it so workload
// timers are identifiable in snapshots.
func (k *Kernel) SetDefaultTag(tag *EventTag) { k.defaultTag = tag }

// BeginRehydrate puts the kernel in fork-time workload replay mode: until
// EndRehydrate, an At strictly before cutoff burns a sequence number but
// schedules nothing (the full-replay run fired that event inside the
// checkpointed prefix).
func (k *Kernel) BeginRehydrate(cutoff Time) {
	k.rehydrating = true
	k.rehydrateCutoff = cutoff
}

// EndRehydrate leaves rehydration mode.
func (k *Kernel) EndRehydrate() {
	k.rehydrating = false
	k.rehydrateCutoff = 0
}

// SetStrictPast enables (or disables) recording of attempts to schedule
// into the past. While enabled, the first At with t < now is remembered;
// StrictViolation returns it. A forked plan application runs under strict
// mode: a violation means the plan has effects inside the checkpointed
// prefix and the fork must be abandoned in favour of a full replay.
func (k *Kernel) SetStrictPast(on bool) {
	k.strictPast = on
	if on {
		k.strictErr = ""
	}
}

// StrictViolation returns a description of the first schedule-into-the-past
// observed under strict mode, or "" if none.
func (k *Kernel) StrictViolation() string { return k.strictErr }

// NewRestoredKernel creates a kernel positioned mid-run: same seed, clock
// at now, steps executed, and exactly rngDraws values consumed from the
// random stream. The sequence counter starts at 0; the restore
// orchestration sets it explicitly (SetSeq) around plan re-application.
func NewRestoredKernel(seed int64, now Time, steps, rngDraws uint64) *Kernel {
	k := NewKernel(seed)
	for i := uint64(0); i < rngDraws; i++ {
		k.src.Uint64() // discard; leaves the counting source at rngDraws
	}
	k.now = now
	k.steps = steps
	return k
}

// SetSeq overwrites the event sequence counter (restore path only).
func (k *Kernel) SetSeq(n uint64) { k.seq = n }

// SetSteps overwrites the executed-event counter (restore path only).
func (k *Kernel) SetSteps(n uint64) { k.steps = n }

// RestorePending re-inserts a pending event with an explicit sequence
// number without touching the sequence counter. at must not precede the
// restored clock. Restore orchestration only.
func (k *Kernel) RestorePending(at Time, seq uint64, tag EventTag, fn func()) (*Timer, error) {
	if at < k.now {
		return nil, fmt.Errorf("sim: restore pending event %v into the past: at=%s now=%s", tag, at, k.now)
	}
	ev := k.newEvent()
	ev.at, ev.seq, ev.fn, ev.tag = at, seq, fn, tag
	k.heap.push(ev)
	return &ev.timer, nil
}

// NetworkSnapshot is the network's mutable routing state at a checkpoint.
// Registered handlers and observers are not part of it — the restored
// components re-register themselves — and held messages are forbidden at
// capture (checked by the caller via HeldCount).
type NetworkSnapshot struct {
	Seq       uint64
	Down      map[NodeID]bool
	Links     map[linkKey]linkState
	LastAt    map[linkKey]Time
	Quality   map[linkKey]LinkQuality
	Locations map[NodeID]Location
	Topo      TopologyLatency
	Stats     NetStats
}

// Snapshot captures the network's mutable state. The caller must have
// verified HeldCount() == 0.
func (n *Network) Snapshot() NetworkSnapshot {
	s := NetworkSnapshot{
		Seq:       n.seq,
		Down:      make(map[NodeID]bool, len(n.down)),
		Links:     make(map[linkKey]linkState, len(n.links)),
		LastAt:    make(map[linkKey]Time, len(n.lastAt)),
		Quality:   make(map[linkKey]LinkQuality, len(n.quality)),
		Locations: make(map[NodeID]Location, len(n.locs)),
		Topo:      n.topo,
		Stats:     n.stats,
	}
	for k, v := range n.down {
		s.Down[k] = v
	}
	for k, v := range n.links {
		s.Links[k] = v
	}
	for k, v := range n.lastAt {
		s.LastAt[k] = v
	}
	for k, v := range n.quality {
		s.Quality[k] = v
	}
	for k, v := range n.locs {
		s.Locations[k] = v
	}
	return s
}

// RestoreRouting re-applies captured link and stream state. Down flags are
// NOT applied here: Network.Register clears a node's down flag, so the
// restore orchestration must call RestoreDown after all components have
// re-registered their handlers.
func (n *Network) RestoreRouting(s NetworkSnapshot) {
	n.seq = s.Seq
	n.stats = s.Stats
	n.links = make(map[linkKey]linkState, len(s.Links))
	for k, v := range s.Links {
		n.links[k] = v
	}
	n.lastAt = make(map[linkKey]Time, len(s.LastAt))
	for k, v := range s.LastAt {
		n.lastAt[k] = v
	}
	n.quality = make(map[linkKey]LinkQuality, len(s.Quality))
	for k, v := range s.Quality {
		n.quality[k] = v
	}
	n.locs = make(map[NodeID]Location, len(s.Locations))
	for k, v := range s.Locations {
		n.locs[k] = v
	}
	n.topo = s.Topo
}

// RestoreDown re-applies captured down flags. Must run after every
// component handler registration (Register deletes the flag).
func (n *Network) RestoreDown(s NetworkSnapshot) {
	for id, v := range s.Down {
		if v {
			n.down[id] = true
		}
	}
}

// Next returns the RPC client's request-ID counter (restore path only).
func (c *RPCClient) Next() uint64 { return c.next }

// Timeout returns the client's configured call timeout.
func (c *RPCClient) Timeout() Duration { return c.timeout }

// SetNext overwrites the RPC client's request-ID counter (restore path
// only).
func (c *RPCClient) SetNext(n uint64) { c.next = n }

// NewRestoredWorld builds a world around a mid-run kernel: the kernel is
// positioned by NewRestoredKernel, the network's routing state is
// re-applied, and the process registry starts empty (components re-add
// themselves). Down flags must be re-applied by the caller via
// Network.RestoreDown + RestoreDownAt after component registration.
func NewRestoredWorld(cfg WorldConfig, now Time, steps, rngDraws uint64, net NetworkSnapshot) *World {
	k := NewRestoredKernel(cfg.Seed, now, steps, rngDraws)
	w := &World{
		kernel: k,
		net:    NewNetwork(k, cfg.Latency, cfg.Jitter),
		procs:  make(map[NodeID]Process),
		downAt: make(map[NodeID]Time),
	}
	w.net.RestoreRouting(net)
	return w
}

// DownAtSnapshot returns a copy of the crash-time registry.
func (w *World) DownAtSnapshot() map[NodeID]Time {
	out := make(map[NodeID]Time, len(w.downAt))
	for id, t := range w.downAt {
		out[id] = t
	}
	return out
}

// RestoreDownAt re-applies a captured crash-time registry.
func (w *World) RestoreDownAt(m map[NodeID]Time) {
	for id, t := range m {
		w.downAt[id] = t
	}
}
