package campaign

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/workload"
)

// TestLearnedNDJSONDeterministicAcrossWorkers extends the telemetry
// determinism guarantee to the learning phase: with -prune -ranked the
// stream — including every learn_profile and plan_pruned event — is
// byte-identical at any worker count.
func TestLearnedNDJSONDeterministicAcrossWorkers(t *testing.T) {
	target := workload.Target56261()
	var want []byte
	for _, workers := range []int{1, 2, 4} {
		cfg := Config{Workers: workers, Seeds: []int64{1}, MaxExecutions: 60,
			Prune: true, Ranked: true, Collect: true}
		got := ndjsonBytes(t, cfg, target, core.NewPlanner())
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("learned NDJSON stream differs at %d workers", workers)
		}
	}
	stream := string(want)
	for _, event := range []string{`"event":"learn_profile"`, `"event":"plan_pruned"`} {
		if !strings.Contains(stream, event) {
			t.Fatalf("learned NDJSON stream is missing %s events", event)
		}
	}
	if !strings.Contains(stream, `"plans_pruned"`) || !strings.Contains(stream, `"pruning_unsound_detections":0`) {
		t.Fatal("campaign_end event is missing pruning counters")
	}
}

// TestLearnedNDJSONDeterministicAcrossReruns covers the guided scheduler
// on top of a learned schedule: repeated runs produce identical streams.
func TestLearnedNDJSONDeterministicAcrossReruns(t *testing.T) {
	target := workload.Target56261()
	cfg := Config{Workers: 3, Guided: true, Seeds: []int64{1}, MaxExecutions: 60,
		Prune: true, Ranked: true, Collect: true}
	a := ndjsonBytes(t, cfg, target, core.NewPlanner())
	b := ndjsonBytes(t, cfg, target, core.NewPlanner())
	if !bytes.Equal(a, b) {
		t.Fatal("guided learned NDJSON stream is not reproducible")
	}
}

// TestLearnedArtifactCarriesDecisions: the campaign artifact records the
// learning phase's profiles, decisions, and pruning stats.
func TestLearnedArtifactCarriesDecisions(t *testing.T) {
	target := workload.Target56261()
	cfg := Config{Workers: 2, Seeds: []int64{1}, MaxExecutions: 60,
		Prune: true, Ranked: true, Collect: true}
	res := New(cfg).Run(target, core.NewPlanner())
	art := BuildArtifact(res, cfg)

	if !art.Prune || !art.Ranked {
		t.Fatalf("artifact flags prune=%v ranked=%v, want both true", art.Prune, art.Ranked)
	}
	if art.Stats.PlansPruned == 0 {
		t.Fatal("artifact records zero pruned plans for a prunable target")
	}
	if art.Stats.PruningUnsoundDetections != 0 {
		t.Fatalf("artifact records %d unsound prunes", art.Stats.PruningUnsoundDetections)
	}
	if len(art.Learn) == 0 {
		t.Fatal("artifact carries no per-seed learning record")
	}
	l := art.Learn[0]
	if len(l.Profiles) == 0 || l.ConsumedDeliveries == 0 {
		t.Fatalf("learning record has no profiles: %+v", l)
	}
	if l.Pruned == 0 || len(l.Decisions) == 0 {
		t.Fatalf("learning record has no pruning decisions: pruned=%d decisions=%d", l.Pruned, len(l.Decisions))
	}
	for _, d := range l.Decisions {
		if d.Action == string(learn.Keep) {
			t.Fatalf("artifact decisions must record only deferred plans, found keep: %+v", d)
		}
	}
}

// TestLearningOffMatchesOldStream: with Prune and Ranked both false the
// engine must behave exactly as before the learning phase existed —
// same NDJSON bytes as a config that never heard of learning.
func TestLearningOffMatchesOldStream(t *testing.T) {
	target := workload.Target56261()
	plain := Config{Workers: 2, Seeds: []int64{1}, MaxExecutions: 40, Collect: true}
	a := ndjsonBytes(t, plain, target, core.NewPlanner())
	if strings.Contains(string(a), "learn_profile") || strings.Contains(string(a), "plan_pruned") {
		t.Fatal("learning events emitted with learning disabled")
	}
}
