package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/workload"
)

// The table-driven validator test lives with the shared rules in
// internal/farm (TestValidateFlags); here we verify the full CLI path.

// TestRejectedFlagsExitTwo verifies the full path: run() with a rejected
// flag combination returns exit code 2 and prints the reason to stderr
// before any campaign executes.
func TestRejectedFlagsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-ranked"},
		{"-minimize", "-explain"},
		{"-snapshot", "-fixed"},
		{"-explore", "-guided"},
		{"-explore", "-prune"},
		{"-explore", "-snapshot"},
		{"-explore", "-explain"},
		{"-targets", "no-such-bug"},
		{"-seeds", "1,x"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Fatalf("run(%v) = %d, want exit code 2 (stderr: %s)", args, code, stderr.String())
		}
		if stderr.Len() == 0 {
			t.Fatalf("run(%v) rejected without a descriptive error", args)
		}
	}
	// Sanity: a valid flag set must not trip the validator. Use -max 0
	// with an undetectable pairing so the campaign itself stays tiny.
	var stdout, stderr bytes.Buffer
	code := run([]string{"-targets", "k8s-56261", "-strategies", "crashtuner", "-max", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("valid invocation exited %d: %s", code, stderr.String())
	}
}

func TestSelectTargets(t *testing.T) {
	all, err := farm.ResolveTargets("all", false)
	if err != nil || len(all) != 5 {
		t.Fatalf("all: %d targets, err=%v", len(all), err)
	}
	two, err := farm.ResolveTargets("k8s-59848, cass-op-402", false)
	if err != nil || len(two) != 2 || two[0].Name != "k8s-59848" || two[1].Name != "cass-op-402" {
		t.Fatalf("subset: %+v err=%v", two, err)
	}
	if _, err := farm.ResolveTargets("no-such-bug", false); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestSelectStrategies(t *testing.T) {
	all, err := farm.ResolveStrategies("all", 1, 10)
	if err != nil || len(all) != 4 {
		t.Fatalf("all: %d strategies, err=%v", len(all), err)
	}
	names := map[string]bool{}
	for _, s := range all {
		names[s.Name()] = true
	}
	for _, want := range []string{"partial-history", "crashtuner", "cofi", "random"} {
		if !names[want] {
			t.Fatalf("missing strategy %q in %v", want, names)
		}
	}
	if _, err := farm.ResolveStrategies("quantum", 1, 10); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := farm.ParseSeeds("1, 2,3")
	if err != nil || !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Fatalf("parseSeeds: %v err=%v", got, err)
	}
	if _, err := farm.ParseSeeds("1,x"); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, err := farm.ParseSeeds(""); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

// TestCampaignArtifactRoundTrip runs one campaign the way main does with
// -parallel 2 -json and verifies the emitted artifact is valid and carries
// the serial-equivalent campaign result.
func TestCampaignArtifactRoundTrip(t *testing.T) {
	target := workload.Target56261()
	cfg := campaign.Config{Workers: 2, MaxExecutions: 25, Collect: true}
	res := campaign.New(cfg).Run(target, core.NewPlanner())

	path := filepath.Join(t.TempDir(), "campaign.json")
	art := campaign.BuildArtifact(res, cfg)
	if err := campaign.WriteArtifacts(path, []campaign.Artifact{art}); err != nil {
		t.Fatal(err)
	}
	back, err := campaign.ReadArtifacts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("artifact count %d, want 1", len(back))
	}
	got := back[0]
	if got.Target != target.Name || got.Strategy != "partial-history" {
		t.Fatalf("artifact identity: %s/%s", got.Target, got.Strategy)
	}
	want := core.RunCampaign(target, core.NewPlanner(), 25)
	if !reflect.DeepEqual(got.Campaign, want) {
		t.Fatalf("artifact campaign diverged from serial\n got: %+v\nwant: %+v", got.Campaign, want)
	}
	if len(got.Outcomes) == 0 {
		t.Fatal("Collect artifact has no per-plan outcomes")
	}
}

// TestExploreArtifactDeterministic runs the exhaustive mode through the
// full CLI twice and asserts the artifact documents are byte-identical,
// schema-stamped, and carry the expected outcome (the CI smoke's
// in-process twin).
func TestExploreArtifactDeterministic(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	for _, p := range paths {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-explore", "-targets", "k8s-56261", "-json", p}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("explore exited %d, want 0 (a found violation is a successful run)\nstderr: %s", code, stderr.String())
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("explore artifacts differ across identical reruns")
	}
	var doc exploreArtifact
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc.Schema != schemaExplore {
		t.Fatalf("schema %q, want %q", doc.Schema, schemaExplore)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Result == nil || doc.Runs[0].Result.Outcome != "violation" {
		t.Fatalf("unexpected runs: %+v", doc.Runs)
	}
	if doc.Runs[0].Result.Witness == nil || doc.Runs[0].Result.Witness.MinimalID == "" {
		t.Fatal("violation run carries no minimized witness")
	}
}

// TestInterruptFlushesPartialArtifact is the graceful-shutdown
// regression test: a cancelled context (what SIGINT/SIGTERM deliver via
// signal.NotifyContext) must still produce a valid artifact document
// marked "interrupted": true, and exit 130.
func TestInterruptFlushesPartialArtifact(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the signal arrives before the sweep starts
	artPath := filepath.Join(t.TempDir(), "campaign.json")
	var out, errBuf bytes.Buffer
	code := runCtx(ctx, []string{
		"-targets", "cass-op-400", "-strategies", "partial-history",
		"-max", "20", "-json", artPath,
	}, &out, &errBuf)
	if code != 130 {
		t.Fatalf("exit %d, want 130\nstderr: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatalf("interrupted run left no artifact: %v", err)
	}
	var doc struct {
		Tool        string `json:"tool"`
		Interrupted bool   `json:"interrupted"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if !doc.Interrupted {
		t.Error("artifact not marked interrupted")
	}
}
