// Command traceview records a reference execution of a target workload and
// prints the partial-history analysis the planner works from: the committed
// ground-truth history, each component's subscriptions and deliveries, the
// causal acted-on sets, and the perturbation plans the tool would generate.
//
// With -deps it additionally prints the learned read-dependency profiles
// (internal/learn): per component, which deliveries were plausibly
// consumed — attributed writes, CAS-adjacency, cross-kind reactions,
// deletion-adjacency — the observation→action table that pruning and
// ranking decisions are a pure function of.
//
// With -artifact it switches to report mode: it loads a campaign.json file
// written by phtest -json, and for every detected failure bucket renders
// the engine's explanation — the seed-correct minimized plan, the causal
// chain from suppressed observation to oracle violation, the divergence
// metrics, and an ASCII divergence timeline.
//
// Usage:
//
//	traceview [-target k8s-59848|k8s-56261|cass-op-398|cass-op-400|cass-op-402]
//	          [-events] [-deps] [-plans N]
//	traceview -artifact campaign.json [-timeline=false]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	targetName := flag.String("target", "k8s-59848", "target workload to trace")
	showEvents := flag.Bool("events", false, "dump every delivery")
	showDeps := flag.Bool("deps", false, "print learned read-dependency profiles (observation→action tables)")
	planN := flag.Int("plans", 20, "how many generated plans to list")
	artifactPath := flag.String("artifact", "", "render explanations from a phtest campaign.json artifact")
	timeline := flag.Bool("timeline", true, "with -artifact: also render ASCII divergence timelines")
	flag.Parse()

	if *artifactPath != "" {
		if err := renderArtifact(os.Stdout, *artifactPath, *timeline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var target core.Target
	found := false
	for _, t := range workload.AllTargets() {
		if t.Name == *targetName {
			target, found = t, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown target %q\n", *targetName)
		os.Exit(2)
	}

	ref, violations := core.Reference(target)

	fmt.Printf("reference execution of %s (horizon %s)\n", target.Name, target.Horizon)
	fmt.Printf("committed events (|H|): %d\n", len(ref.Commits))
	fmt.Printf("watch deliveries:       %d\n", len(ref.Deliveries))
	fmt.Printf("component writes:       %d\n", len(ref.Writes))
	if len(violations) > 0 {
		fmt.Println("UNEXPECTED reference violations:")
		for _, v := range violations {
			fmt.Printf("  %s\n", v)
		}
	}

	fmt.Println("\nper-component view (H' consumers):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "component\tsubscribes\tdeliveries\tdeletions-seen\twrites")
	for _, comp := range ref.Components() {
		var kinds []string
		for k := range ref.Subscriptions[comp] {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		deliveries := ref.DeliveriesTo(comp)
		deletions := 0
		for _, d := range deliveries {
			if d.EventType == "DELETED" || d.Terminating {
				deletions++
			}
		}
		writes := 0
		for _, w := range ref.Writes {
			if w.From == comp {
				writes++
			}
		}
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%d\n", comp, kinds, len(deliveries), deletions, writes)
	}
	tw.Flush()

	if *showEvents {
		fmt.Println("\ndeliveries:")
		for _, d := range ref.Deliveries {
			mark := ""
			if d.Terminating {
				mark = " [terminating]"
			}
			fmt.Printf("  %-10s rev=%-5d %-8s %s/%s -> %s (#%d)%s\n",
				d.Time, d.Revision, d.EventType, d.Kind, d.Name, d.To, d.Occurrence, mark)
		}
	}

	if *showDeps {
		printDeps(os.Stdout, ref)
	}

	graph := trace.NewCausalGraph(ref, 0)
	fmt.Println("\nhottest deliveries (most component actions within the reaction window):")
	for i, d := range graph.HotDeliveries(8) {
		effects := graph.EffectsOf(d.Revision)
		mark := ""
		if d.Terminating || d.EventType == "DELETED" {
			mark = " [deletion-adjacent]"
		}
		fmt.Printf("  %d. rev=%-5d %-8s %s/%s -> %s (%d downstream writes)%s\n",
			i+1, d.Revision, d.EventType, d.Kind, d.Name, d.To, len(effects), mark)
	}

	planner := core.NewPlanner()
	plans := planner.Plans(target, ref)
	fam := core.PlanFamilies(plans)
	fmt.Printf("\ngenerated plans: %d total (gap=%d timetravel=%d staleness=%d)\n",
		len(plans), fam["gap"], fam["timetravel"], fam["staleness"])
	for i, p := range plans {
		if i >= *planN {
			fmt.Printf("  ... %d more\n", len(plans)-*planN)
			break
		}
		fmt.Printf("  %3d. %s\n", i+1, p.Describe())
	}
}

// printDeps renders the learned read-dependency profiles: per component,
// the consumed deliveries with the evidence the learning phase attributes
// to each (writes in the reaction window, CAS-adjacency, cross-kind
// reactions, deletion-adjacency).
func printDeps(w *os.File, ref *trace.Trace) {
	model := learn.Mine(ref, 0)
	fmt.Fprintf(w, "\nlearned read-dependency profiles (reaction window %s, %d consumed deliveries):\n",
		model.ReactionWindow, model.ConsumedCount())
	for _, comp := range model.Components() {
		p := model.Profiles[comp]
		fmt.Fprintf(w, "  %s: %d/%d deliveries consumed, %d writes (%d CAS), kinds=%v\n",
			p.Component, len(p.Consumed), p.Deliveries, p.Writes, p.CASWrites, p.Kinds)
		for _, c := range p.Consumed {
			d := c.Delivery
			var marks []string
			if c.DeletionAdjacent() {
				marks = append(marks, "deletion-adjacent")
			}
			if c.CrossKind {
				marks = append(marks, "cross-kind")
			}
			if c.ActedOn {
				marks = append(marks, "acted-on")
			}
			suffix := ""
			if len(marks) > 0 {
				suffix = " [" + strings.Join(marks, ",") + "]"
			}
			fmt.Fprintf(w, "    %-10s %-8s %s/%s#%d -> %d writes (%d CAS)%s\n",
				d.Time, d.EventType, d.Kind, d.Name, d.Occurrence, c.Writes, c.CASWrites, suffix)
		}
	}
}

// renderArtifact loads a phtest campaign artifact and renders every
// detected, explained failure bucket: the minimized plan, the causal
// chain, the divergence metrics, and (optionally) the ASCII timeline.
func renderArtifact(w *os.File, path string, withTimeline bool) error {
	arts, err := campaign.ReadArtifacts(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "campaign artifact: %s (%d campaigns)\n", path, len(arts))

	explained, detected := 0, 0
	for _, a := range arts {
		status := "no detection"
		if a.Detected {
			status = fmt.Sprintf("DETECTED (seed %d, %d execs)", a.DetectedSeed, a.Campaign.Executions)
		}
		fmt.Fprintf(w, "\n=== %s / %s — %s\n", a.Target, a.Strategy, status)
		fmt.Fprintf(w, "    seeds=%v guided=%v buckets=%d\n", a.Seeds, a.Guided, len(a.Buckets))
		for _, b := range a.Buckets {
			if !b.Detected {
				continue
			}
			detected++
			fmt.Fprintf(w, "\n  bucket %s ×%d oracles=%v (example seed %d)\n",
				b.Signature, b.Count, b.Oracles, b.ExampleSeed)
			if b.Explanation == nil {
				fmt.Fprintf(w, "    (no explanation recorded — rerun phtest with -explain)\n")
				continue
			}
			explained++
			fmt.Fprintf(w, "    minimized in %d executions\n", b.MinimizeExecutions)
			indent(w, b.Explanation.Render(), "    ")
			if withTimeline {
				fmt.Fprintln(w)
				indent(w, b.Explanation.RenderTimeline(), "    ")
			}
		}
	}
	fmt.Fprintf(w, "\n%d detected buckets, %d explained\n", detected, explained)
	return nil
}

// indent writes s to w with every line prefixed.
func indent(w *os.File, s string, prefix string) {
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		fmt.Fprintf(w, "%s%s\n", prefix, line)
	}
}
