// Command traceview records a reference execution of a target workload and
// prints the partial-history analysis the planner works from: the committed
// ground-truth history, each component's subscriptions and deliveries, the
// causal acted-on sets, and the perturbation plans the tool would generate.
//
// Usage:
//
//	traceview [-target k8s-59848|k8s-56261|cass-op-398|cass-op-400|cass-op-402]
//	          [-events] [-plans N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	targetName := flag.String("target", "k8s-59848", "target workload to trace")
	showEvents := flag.Bool("events", false, "dump every delivery")
	planN := flag.Int("plans", 20, "how many generated plans to list")
	flag.Parse()

	var target core.Target
	found := false
	for _, t := range workload.AllTargets() {
		if t.Name == *targetName {
			target, found = t, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown target %q\n", *targetName)
		os.Exit(2)
	}

	ref, violations := core.Reference(target)

	fmt.Printf("reference execution of %s (horizon %s)\n", target.Name, target.Horizon)
	fmt.Printf("committed events (|H|): %d\n", len(ref.Commits))
	fmt.Printf("watch deliveries:       %d\n", len(ref.Deliveries))
	fmt.Printf("component writes:       %d\n", len(ref.Writes))
	if len(violations) > 0 {
		fmt.Println("UNEXPECTED reference violations:")
		for _, v := range violations {
			fmt.Printf("  %s\n", v)
		}
	}

	fmt.Println("\nper-component view (H' consumers):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "component\tsubscribes\tdeliveries\tdeletions-seen\twrites")
	for _, comp := range ref.Components() {
		var kinds []string
		for k := range ref.Subscriptions[comp] {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		deliveries := ref.DeliveriesTo(comp)
		deletions := 0
		for _, d := range deliveries {
			if d.EventType == "DELETED" || d.Terminating {
				deletions++
			}
		}
		writes := 0
		for _, w := range ref.Writes {
			if w.From == comp {
				writes++
			}
		}
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%d\n", comp, kinds, len(deliveries), deletions, writes)
	}
	tw.Flush()

	if *showEvents {
		fmt.Println("\ndeliveries:")
		for _, d := range ref.Deliveries {
			mark := ""
			if d.Terminating {
				mark = " [terminating]"
			}
			fmt.Printf("  %-10s rev=%-5d %-8s %s/%s -> %s (#%d)%s\n",
				d.Time, d.Revision, d.EventType, d.Kind, d.Name, d.To, d.Occurrence, mark)
		}
	}

	graph := trace.NewCausalGraph(ref, 0)
	fmt.Println("\nhottest deliveries (most component actions within the reaction window):")
	for i, d := range graph.HotDeliveries(8) {
		effects := graph.EffectsOf(d.Revision)
		mark := ""
		if d.Terminating || d.EventType == "DELETED" {
			mark = " [deletion-adjacent]"
		}
		fmt.Printf("  %d. rev=%-5d %-8s %s/%s -> %s (%d downstream writes)%s\n",
			i+1, d.Revision, d.EventType, d.Kind, d.Name, d.To, len(effects), mark)
	}

	planner := core.NewPlanner()
	plans := planner.Plans(target, ref)
	fam := core.PlanFamilies(plans)
	fmt.Printf("\ngenerated plans: %d total (gap=%d timetravel=%d staleness=%d)\n",
		len(plans), fam["gap"], fam["timetravel"], fam["staleness"])
	for i, p := range plans {
		if i >= *planN {
			fmt.Printf("  ... %d more\n", len(plans)-*planN)
			break
		}
		fmt.Printf("  %3d. %s\n", i+1, p.Describe())
	}
}
