// Package client is the client-side library every component uses to talk
// to apiservers — the analog of k8s.io/client-go. It provides a typed
// asynchronous Conn (CRUD + watch) and an Informer: a local object cache
// (S') kept up to date by list+watch, with relist on window expiry and
// upstream source switching.
//
// The paper singles this layer out (§6.2): "a common shared library often
// contains the caches for (H', S'), such as the client-side cache employed
// by all Kubernetes services [10]". Informer is that cache; the testing
// tool's perturbations aim squarely at it.
package client

import (
	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Conn is a component's connection to its current upstream apiserver. It
// multiplexes RPC responses and watch pushes; components forward incoming
// messages to HandleMessage.
//
// The upstream can be switched at runtime (SwitchAPIServer): components
// that fail over between apiservers — kubelets in the Figure 2 scenario —
// may land on a *staler* upstream, which is the germ of time traveling.
type Conn struct {
	world *sim.World
	self  sim.NodeID
	api   sim.NodeID
	rpc   *sim.RPCClient

	nextSub   uint64
	informers map[uint64]*Informer
}

// NewConn creates a connection owned by node self, initially pointed at
// the apiserver node api.
func NewConn(w *sim.World, self, api sim.NodeID, timeout sim.Duration) *Conn {
	return &Conn{
		world:     w,
		self:      self,
		api:       api,
		rpc:       sim.NewRPCClient(w.Network(), self, timeout),
		informers: make(map[uint64]*Informer),
	}
}

// Self returns the owning node's ID.
func (c *Conn) Self() sim.NodeID { return c.self }

// APIServer returns the current upstream apiserver.
func (c *Conn) APIServer() sim.NodeID { return c.api }

// World returns the connection's world.
func (c *Conn) World() *sim.World { return c.world }

// SwitchAPIServer repoints the connection at a different apiserver and
// tells every informer to relist from it.
func (c *Conn) SwitchAPIServer(api sim.NodeID) {
	if api == c.api {
		return
	}
	c.api = api
	for _, inf := range c.sortedInformers() {
		inf.relist("switched upstream")
	}
}

// Reset drops all in-flight calls (crash semantics). Informers must be
// recreated by the component's Restart.
func (c *Conn) Reset() {
	c.rpc.Reset()
	c.informers = make(map[uint64]*Informer)
}

// HandleMessage routes a message; it reports whether it was consumed.
func (c *Conn) HandleMessage(m *sim.Message) bool {
	if c.rpc.HandleResponse(m) {
		return true
	}
	if push, ok := m.Payload.(*apiserver.WatchPushMsg); ok {
		if inf, ok := c.informers[push.SubID]; ok {
			inf.onPush(push.Events)
		}
		return true
	}
	return false
}

// List fetches objects of a kind. quorum selects a read-through list.
func (c *Conn) List(kind cluster.Kind, quorum bool, cb func([]*cluster.Object, int64, error)) {
	c.rpc.Call(c.api, apiserver.MethodList, &apiserver.ListRequest{Kind: kind, Quorum: quorum},
		func(body any, err error) {
			if cb == nil {
				return
			}
			if err != nil {
				cb(nil, 0, err)
				return
			}
			resp := body.(*apiserver.ListResponse)
			cb(resp.Objects, resp.Revision, nil)
		})
}

// Get fetches one object.
func (c *Conn) Get(kind cluster.Kind, name string, quorum bool, cb func(*cluster.Object, bool, error)) {
	c.rpc.Call(c.api, apiserver.MethodGet, &apiserver.GetRequest{Kind: kind, Name: name, Quorum: quorum},
		func(body any, err error) {
			if cb == nil {
				return
			}
			if err != nil {
				cb(nil, false, err)
				return
			}
			resp := body.(*apiserver.GetResponse)
			cb(resp.Object, resp.Found, nil)
		})
}

// Create stores a new object.
func (c *Conn) Create(obj *cluster.Object, cb func(*cluster.Object, error)) {
	c.rpc.Call(c.api, apiserver.MethodCreate, &apiserver.CreateRequest{Object: obj.Clone()},
		writeCB(cb))
}

// Update overwrites an object guarded by its ResourceVersion (0 = blind).
func (c *Conn) Update(obj *cluster.Object, cb func(*cluster.Object, error)) {
	c.rpc.Call(c.api, apiserver.MethodUpdate, &apiserver.UpdateRequest{Object: obj.Clone()},
		writeCB(cb))
}

// Delete removes an object; expectRV of 0 deletes unconditionally.
func (c *Conn) Delete(kind cluster.Kind, name string, expectRV int64, cb func(error)) {
	c.rpc.Call(c.api, apiserver.MethodDelete, &apiserver.DeleteRequest{Kind: kind, Name: name, ExpectRV: expectRV},
		func(_ any, err error) {
			if cb != nil {
				cb(err)
			}
		})
}

func writeCB(cb func(*cluster.Object, error)) func(any, error) {
	return func(body any, err error) {
		if cb == nil {
			return
		}
		if err != nil {
			cb(nil, err)
			return
		}
		cb(body.(*apiserver.WriteResponse).Object, nil)
	}
}

func (c *Conn) sortedInformers() []*Informer {
	ids := make([]uint64, 0, len(c.informers))
	for id := range c.informers {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := make([]*Informer, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.informers[id])
	}
	return out
}
