package controllers

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/sim"
)

// AppSetConfig tunes the replicated-application controller.
type AppSetConfig struct {
	// APIServer is the controller's upstream.
	APIServer sim.NodeID
	// ResyncInterval re-enqueues every AppSet periodically.
	ResyncInterval sim.Duration
	// RPCTimeout bounds apiserver calls.
	RPCTimeout sim.Duration
	// MaxUnavailable bounds how many replicas a rolling upgrade may take
	// down at once (>= 1).
	MaxUnavailable int
}

// DefaultAppSetConfig returns production-like settings.
func DefaultAppSetConfig(api sim.NodeID) AppSetConfig {
	return AppSetConfig{
		APIServer:      api,
		ResyncInterval: 200 * sim.Millisecond,
		RPCTimeout:     200 * sim.Millisecond,
		MaxUnavailable: 1,
	}
}

// AppSetController is the Deployment/ReplicaSet analog: it reconciles every
// AppSet object into Replicas pods running the template image, replacing
// pods one at a time when the image changes (the rolling-upgrade actor of
// the Figure 2 scenario, here as a controller instead of a human).
type AppSetController struct {
	id    sim.NodeID
	world *sim.World
	cfg   AppSetConfig

	conn   *client.Conn
	appInf *client.Informer
	podInf *client.Informer
	queue  *controller.Queue
	down   bool
	epoch  uint64
	uids   *cluster.UIDGen
	// replacing tracks in-flight rolling replacements per app.
	replacing map[string]int

	// Metrics.
	PodCreates int
	PodDeletes int
	Rollouts   int
}

// AppSetControllerID is the controller's network identity.
const AppSetControllerID sim.NodeID = "appset-controller"

// NewAppSetController wires the controller into the world.
func NewAppSetController(w *sim.World, cfg AppSetConfig) *AppSetController {
	if cfg.MaxUnavailable < 1 {
		cfg.MaxUnavailable = 1
	}
	c := &AppSetController{
		id:        AppSetControllerID,
		world:     w,
		cfg:       cfg,
		uids:      cluster.NewUIDGen("appset"),
		replacing: make(map[string]int),
	}
	w.Network().Register(c.id, c)
	w.AddProcess(c)
	c.boot()
	return c
}

// ID implements sim.Process.
func (c *AppSetController) ID() sim.NodeID { return c.id }

// Crash implements sim.Process.
func (c *AppSetController) Crash() {
	c.down = true
	c.epoch++
	if c.conn != nil {
		c.conn.Reset()
	}
	if c.queue != nil {
		c.queue.Stop()
	}
	c.appInf, c.podInf = nil, nil
	c.replacing = make(map[string]int)
}

// Restart implements sim.Process.
func (c *AppSetController) Restart() {
	c.down = false
	c.boot()
}

// HandleMessage implements sim.Handler.
func (c *AppSetController) HandleMessage(m *sim.Message) {
	if c.down || c.conn == nil {
		return
	}
	c.conn.HandleMessage(m)
}

func (c *AppSetController) boot() {
	c.epoch++
	epoch := c.epoch
	c.conn = client.NewConn(c.world, c.id, c.cfg.APIServer, c.cfg.RPCTimeout)
	c.queue = controller.NewQueue(c.world.Kernel(), controller.DefaultQueueConfig(),
		controller.ReconcilerFunc(c.reconcile))
	c.queue.SetOwner(string(c.id))
	c.appInf = client.NewInformer(c.conn, cluster.KindAppSet, client.InformerConfig{WatchTimeout: sim.Second})
	c.appInf.AddHandler(controller.EnqueueHandler{Queue: c.queue})
	c.podInf = client.NewInformer(c.conn, cluster.KindPod, client.InformerConfig{WatchTimeout: sim.Second})
	c.podInf.AddHandler(client.HandlerFuncs{
		AddFunc:    func(p *cluster.Object) { c.enqueueOwner(p) },
		UpdateFunc: func(_, p *cluster.Object) { c.enqueueOwner(p) },
		DeleteFunc: func(p *cluster.Object) { c.enqueueOwner(p) },
	})
	c.appInf.Run()
	c.podInf.Run()
	c.scheduleResync(epoch)
}

func (c *AppSetController) enqueueOwner(p *cluster.Object) {
	if p.Pod == nil || p.Pod.App == "" {
		return
	}
	if _, ok := c.appInf.Get(p.Pod.App); ok {
		c.queue.Add(p.Pod.App)
	}
}

func (c *AppSetController) scheduleResync(epoch uint64) {
	tag := sim.EventTag{Owner: string(c.id), Kind: "resync", Epoch: epoch}
	c.world.Kernel().ScheduleTagged(c.cfg.ResyncInterval, tag, func() { c.resyncFire(epoch) })
}

// resyncFire is the resync timer body, named so a restored cluster can
// rearm a pending resync event by tag.
func (c *AppSetController) resyncFire(epoch uint64) {
	if c.down || epoch != c.epoch {
		return
	}
	for _, app := range c.appInf.ListCached() {
		c.queue.Add(app.Meta.Name)
	}
	c.scheduleResync(epoch)
}

func (c *AppSetController) podName(app string, ordinal int) string {
	return app + "-" + strconv.Itoa(ordinal)
}

func (c *AppSetController) ordinalOf(app, podName string) int {
	rest := strings.TrimPrefix(podName, app+"-")
	n, err := strconv.Atoi(rest)
	if err != nil {
		return -1
	}
	return n
}

// reconcile drives one AppSet toward its spec.
func (c *AppSetController) reconcile(name string) (controller.Result, error) {
	if !c.appInf.Synced() || !c.podInf.Synced() {
		return controller.Result{Requeue: true, RequeueAfter: 50 * sim.Millisecond}, nil
	}
	app, ok := c.appInf.Get(name)
	if !ok || app.AppSet == nil {
		return controller.Result{}, nil
	}
	epoch := c.epoch
	if app.Terminating() {
		c.teardown(epoch, app)
		return controller.Result{}, nil
	}

	pods := c.ownedPods(name)
	live := pods[:0:0]
	for _, p := range pods {
		if !p.Terminating() {
			live = append(live, p)
		}
	}
	desired := app.AppSet.Replicas

	switch {
	case len(live) < desired:
		c.scaleUp(epoch, app, live, desired)
	case len(live) > desired:
		c.scaleDown(epoch, app, live, desired)
	default:
		if c.rollForward(epoch, app, live) {
			c.Rollouts++
		} else {
			c.updateStatus(epoch, app, live)
		}
	}
	return controller.Result{}, nil
}

// ownedPods returns this app's pods from the controller's view, sorted by
// ordinal.
func (c *AppSetController) ownedPods(app string) []*cluster.Object {
	var out []*cluster.Object
	for _, p := range c.podInf.ListCached() {
		if p.Pod != nil && p.Pod.App == app && c.ordinalOf(app, p.Meta.Name) >= 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return c.ordinalOf(app, out[i].Meta.Name) < c.ordinalOf(app, out[j].Meta.Name)
	})
	return out
}

func (c *AppSetController) scaleUp(epoch uint64, app *cluster.Object, live []*cluster.Object, desired int) {
	have := map[string]bool{}
	for _, p := range live {
		have[p.Meta.Name] = true
	}
	for i := 0; i < desired; i++ {
		name := c.podName(app.Meta.Name, i)
		if have[name] {
			continue
		}
		if _, pending := c.podInf.Get(name); pending {
			continue // terminating predecessor still being finalized
		}
		pod := cluster.NewPod(name, c.uids.Next(), cluster.PodSpec{
			App:   app.Meta.Name,
			Image: app.AppSet.Image,
			Phase: cluster.PodPending,
		})
		pod.Meta.OwnerUID = app.Meta.UID
		c.conn.Create(pod, func(_ *cluster.Object, err error) {
			if c.down || epoch != c.epoch {
				return
			}
			if err == nil {
				c.PodCreates++
			}
			c.queue.AddAfter(app.Meta.Name, 20*sim.Millisecond)
		})
	}
}

func (c *AppSetController) scaleDown(epoch uint64, app *cluster.Object, live []*cluster.Object, desired int) {
	// Remove highest ordinals first.
	for i := len(live) - 1; i >= desired; i-- {
		c.markDelete(epoch, app.Meta.Name, live[i])
	}
}

// rollForward replaces at most MaxUnavailable pods running an outdated
// image; it reports whether a replacement is in progress.
func (c *AppSetController) rollForward(epoch uint64, app *cluster.Object, live []*cluster.Object) bool {
	inFlight := 0
	for _, p := range c.ownedPods(app.Meta.Name) {
		if p.Terminating() {
			inFlight++
		}
	}
	rolled := false
	for _, p := range live {
		if inFlight >= c.cfg.MaxUnavailable {
			break
		}
		if p.Pod.Image == app.AppSet.Image {
			continue
		}
		c.markDelete(epoch, app.Meta.Name, p)
		inFlight++
		rolled = true
	}
	return rolled
}

func (c *AppSetController) markDelete(epoch uint64, app string, pod *cluster.Object) {
	upd := pod.Clone()
	upd.Meta.DeletionTimestamp = int64(c.world.Now())
	c.conn.Update(upd, func(_ *cluster.Object, err error) {
		if c.down || epoch != c.epoch {
			return
		}
		if err != nil {
			c.queue.AddAfter(app, 50*sim.Millisecond)
			return
		}
		c.PodDeletes++
		// Unscheduled pods have no kubelet finalizer.
		if pod.Pod.NodeName == "" {
			c.conn.Delete(cluster.KindPod, pod.Meta.Name, 0, nil)
		}
		c.queue.AddAfter(app, 50*sim.Millisecond)
	})
}

func (c *AppSetController) teardown(epoch uint64, app *cluster.Object) {
	for _, p := range c.ownedPods(app.Meta.Name) {
		if !p.Terminating() {
			c.markDelete(epoch, app.Meta.Name, p)
		}
	}
}

func (c *AppSetController) updateStatus(epoch uint64, app *cluster.Object, live []*cluster.Object) {
	ready := 0
	for _, p := range live {
		if p.Pod.Phase == cluster.PodRunning && p.Pod.Image == app.AppSet.Image {
			ready++
		}
	}
	if app.AppSet.ReadyReplicas == ready {
		return
	}
	upd := app.Clone()
	upd.AppSet.ReadyReplicas = ready
	c.conn.Update(upd, func(*cluster.Object, error) {})
}
