//go:build !race

package campaign

// raceDetector gates the heaviest 100-node equivalence tests: the race
// detector slows campaign executions by roughly an order of magnitude,
// and the CI scale-smoke step proves the same byte-identity end-to-end
// (phtest runs compared with cmp) without it.
const raceDetector = false
