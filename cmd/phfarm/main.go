// Command phfarm runs campaign fleets: the same bug-finding campaigns
// as phtest, sharded across worker subprocesses by a coordinator that
// merges the shards back into byte-identical artifacts.
//
// Three modes:
//
//	phfarm [flags]             coordinator: shard the (target × seed)
//	                           space across -workers subprocesses
//	phfarm -worker             worker: serve tasks over stdin/stdout
//	                           (spawned by the coordinator; not for
//	                           interactive use)
//	phfarm -grid grid.json     experiment grid: expand a declarative
//	                           targets × strategies × toggles × repeats
//	                           grid, run it across the fleet, and emit
//	                           a summary table (and -csv file)
//
// Sharding follows the engine's independence structure: seeds shard
// freely, except for learning campaigns (-prune/-ranked) whose
// cross-seed bucket affinity couples the sweep — those cells run whole
// on one worker. Merged campaign.json and NDJSON artifacts are
// byte-identical to a single-process phtest run with the same flags
// (after -canonical scrubbing of wall-clock fields), at any worker
// count; guided campaigns additionally require matching -parallel,
// because guided schedules are deterministic per in-process pool width.
//
// -corpus dir maintains a persistent cross-campaign corpus: each
// campaign seeds from it (known buckets re-confirm first, recorded
// healthy plans are skipped) and records into it when done.
//
// SIGINT/SIGTERM kill the fleet, flush the cells that completed as a
// valid artifact marked "interrupted": true, and exit 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"text/tabwriter"

	"repro/internal/campaign"
	"repro/internal/farm"
	"repro/internal/farm/corpus"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// newTransports builds the worker fleet; a variable so tests can swap
// in in-process transports instead of spawning subprocesses.
var newTransports = func(n int) ([]farm.Transport, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("phfarm: cannot find own binary: %w", err)
	}
	out := make([]farm.Transport, n)
	for i := range out {
		out[i] = farm.NewProcessTransport(exe, "-worker")
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("phfarm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	worker := fs.Bool("worker", false, "run as a farm worker serving tasks on stdin/stdout (internal)")
	gridPath := fs.String("grid", "", "run the experiment grid in this JSON file")
	csvPath := fs.String("csv", "", "write the grid's deterministic per-cell CSV to this path (grid mode)")
	workers := fs.Int("workers", 2, "number of worker processes")
	targetsFlag := fs.String("targets", "all", "comma-separated target bugs or 'all'")
	strategiesFlag := fs.String("strategies", "all", "comma-separated strategies or 'all'")
	maxExec := fs.Int("max", 500, "max plan executions per (target, strategy, seed)")
	seed := fs.Int64("seed", 7, "seed for the random baseline's plan generator")
	randomN := fs.Int("random-n", 500, "number of random plans to generate")
	parallel := fs.Int("parallel", 0, "in-process pool width per worker (0 = GOMAXPROCS)")
	seedsFlag := fs.String("seeds", "1", "comma-separated world seeds to sweep")
	guided := fs.Bool("guided", false, "coverage-guided plan scheduling (fuzzer-style)")
	prune := fs.Bool("prune", false, "learn read-dependency profiles and defer non-intersecting plans")
	ranked := fs.Bool("ranked", false, "order kept plans by learned impact score (requires -prune)")
	snapshot := fs.Bool("snapshot", false, "fork plan executions from copy-on-write prefix checkpoints")
	jsonPath := fs.String("json", "", "write the merged campaign artifact to this path")
	ndjsonPath := fs.String("ndjson", "", "write the merged NDJSON telemetry stream to this path")
	canonical := fs.Bool("canonical", false, "zero wall-clock and worker-count fields in the artifact (byte-comparable form)")
	corpusDir := fs.String("corpus", "", "persistent cross-campaign corpus directory (seed from it, record into it)")
	keepGoing := fs.Bool("keep-going", false, "do not cancel on first detection; execute every plan")
	eventBudget := fs.Uint64("event-budget", 0, "kernel step budget per execution for the livelock watchdog (0 = default)")
	explainFlag := fs.Bool("explain", false, "minimize and causally explain every detected failure bucket")
	fixed := fs.Bool("fixed", false, "run against the fixed component variants (expect no detections)")
	verbose := fs.Bool("v", false, "print per-cell stats and streaming progress")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *worker {
		if err := farm.WorkerLoop(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(stderr, "phfarm:", err)
			return 1
		}
		return 0
	}
	if err := farm.ValidateFlags(farm.FlagRules{
		Prune: *prune, Ranked: *ranked, Explain: *explainFlag,
		Snapshot: *snapshot, Fixed: *fixed,
	}); err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 2
	}
	if *workers < 1 {
		fmt.Fprintln(stderr, "phfarm: -workers must be >= 1")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *gridPath != "" {
		return runGrid(ctx, *gridPath, *csvPath, *workers, *parallel, *verbose, stdout, stderr)
	}

	seeds, err := farm.ParseSeeds(*seedsFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	base := farm.TaskSpec{
		Fixed:         *fixed,
		RandomSeed:    *seed,
		RandomN:       *randomN,
		Seeds:         seeds,
		MaxExecutions: *maxExec,
		Parallel:      *parallel,
		Guided:        *guided,
		KeepGoing:     *keepGoing,
		Explain:       *explainFlag,
		Prune:         *prune,
		Ranked:        *ranked,
		Snapshot:      *snapshot,
		EventBudget:   *eventBudget,
	}
	return runMatrix(ctx, matrixOpts{
		targets: *targetsFlag, strategies: *strategiesFlag,
		base: base, workers: *workers,
		jsonPath: *jsonPath, ndjsonPath: *ndjsonPath,
		canonical: *canonical, corpusDir: *corpusDir,
		verbose: *verbose,
	}, stdout, stderr)
}

type matrixOpts struct {
	targets, strategies  string
	base                 farm.TaskSpec
	workers              int
	jsonPath, ndjsonPath string
	canonical            bool
	corpusDir            string
	verbose              bool
}

func runMatrix(ctx context.Context, o matrixOpts, stdout, stderr io.Writer) int {
	// Resolve up front so bad names fail before any worker spawns.
	targets, err := farm.ResolveTargets(o.targets, o.base.Fixed)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	strategies, err := farm.ResolveStrategies(o.strategies, o.base.RandomSeed, o.base.RandomN)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	targetNames := make([]string, len(targets))
	for i, t := range targets {
		targetNames[i] = t.Name
	}
	strategyNames := make([]string, len(strategies))
	for i, s := range strategies {
		strategyNames[i] = s.Name()
	}

	tasks := farm.Plan(targetNames, strategyNames, o.base)
	coverage := map[farm.Cell]*campaign.CoverageSeed{}
	if o.corpusDir != "" {
		for _, tn := range targetNames {
			for _, sn := range strategyNames {
				cov, err := corpus.Load(o.corpusDir, tn, sn)
				if err != nil {
					fmt.Fprintln(stderr, "phfarm:", err)
					return 1
				}
				coverage[farm.Cell{Target: tn, Strategy: sn}] = cov
			}
		}
		for i := range tasks {
			tasks[i].Coverage = coverage[farm.Cell{Target: tasks[i].Target, Strategy: tasks[i].Strategy}]
		}
	}

	fmt.Fprintf(stdout, "Campaign fleet: %d tasks across %d workers\n", len(tasks), o.workers)
	fmt.Fprintf(stdout, "targets=%d strategies=%d max-executions=%d seeds=%v guided=%v prune=%v ranked=%v snapshot=%v corpus=%v\n\n",
		len(targets), len(strategies), o.base.MaxExecutions, o.base.Seeds,
		o.base.Guided, o.base.Prune, o.base.Ranked, o.base.Snapshot, o.corpusDir != "")

	results, interrupted, err := dispatch(ctx, tasks, o.workers, o.verbose, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 1
	}
	merged, incomplete := farm.Collate(results)

	printMatrix(stdout, targetNames, strategyNames, merged, len(o.base.Seeds) > 1)
	if o.verbose {
		for _, res := range merged {
			fmt.Fprintln(stdout, res.Campaign)
			fmt.Fprintf(stdout, "  %s\n", res.Stats)
		}
	}
	for _, c := range incomplete {
		fmt.Fprintf(stderr, "phfarm: cell %s/%s incomplete (worker failed or run interrupted)\n", c.Target, c.Strategy)
	}

	if o.corpusDir != "" && !interrupted {
		for _, res := range merged {
			if err := corpus.Record(o.corpusDir, res.Target, res.Strategy, res); err != nil {
				fmt.Fprintln(stderr, "phfarm:", err)
				return 1
			}
		}
		fmt.Fprintf(stdout, "\ncorpus updated: %s (%d cells)\n", o.corpusDir, len(merged))
	}

	if o.jsonPath != "" {
		var artifacts []campaign.Artifact
		for _, res := range merged {
			art := campaign.BuildArtifact(res, cellConfig(o.base, coverage[farm.Cell{Target: res.Target, Strategy: res.Strategy}]))
			if o.canonical {
				art = campaign.CanonicalizeArtifact(art)
			}
			artifacts = append(artifacts, art)
		}
		if err := campaign.WriteArtifactsStatus(o.jsonPath, artifacts, interrupted); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "\ncampaign artifact: %s (%d campaigns)\n", o.jsonPath, len(artifacts))
	}
	if o.ndjsonPath != "" {
		if err := writeNDJSON(o.ndjsonPath, merged, o.base, coverage); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "telemetry stream: %s (%d campaigns)\n", o.ndjsonPath, len(merged))
	}

	if interrupted {
		fmt.Fprintln(stderr, "phfarm: interrupted; partial results flushed")
		return 130
	}
	for _, tr := range results {
		if tr.Err != "" {
			fmt.Fprintf(stderr, "phfarm: task %d (%s/%s) failed: %s\n", tr.Spec.ID, tr.Spec.Target, tr.Spec.Strategy, tr.Err)
			return 1
		}
	}
	return 0
}

// dispatch runs the task list across a fresh fleet.
func dispatch(ctx context.Context, tasks []farm.TaskSpec, workers int, verbose bool, stderr io.Writer) ([]farm.TaskResult, bool, error) {
	transports, err := newTransports(workers)
	if err != nil {
		return nil, false, err
	}
	var streamed int64
	coord := &farm.Coordinator{}
	if verbose {
		coord.OnRecord = func(spec farm.TaskSpec, out campaign.PlanOutcome) {
			if n := atomic.AddInt64(&streamed, 1); n%250 == 0 {
				fmt.Fprintf(stderr, "  ... %d execution records streamed\n", n)
			}
		}
	}
	return coord.Run(ctx, transports, tasks)
}

// cellConfig reconstructs the campaign.Config a single-process run of
// this cell would use — what BuildArtifact and WriteNDJSON key their
// config echoes on.
func cellConfig(base farm.TaskSpec, cov *campaign.CoverageSeed) campaign.Config {
	return campaign.Config{
		Workers:       base.Parallel,
		Seeds:         base.Seeds,
		MaxExecutions: base.MaxExecutions,
		Guided:        base.Guided,
		Collect:       true,
		KeepGoing:     base.KeepGoing,
		Explain:       base.Explain,
		EventBudget:   base.EventBudget,
		Prune:         base.Prune,
		Ranked:        base.Ranked,
		Snapshot:      base.Snapshot,
		Coverage:      cov,
	}
}

func writeNDJSON(path string, merged []campaign.Result, base farm.TaskSpec, coverage map[farm.Cell]*campaign.CoverageSeed) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("phfarm: create telemetry file: %w", err)
	}
	for _, res := range merged {
		cfg := cellConfig(base, coverage[farm.Cell{Target: res.Target, Strategy: res.Strategy}])
		if err := campaign.WriteNDJSON(f, res, cfg); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func printMatrix(w io.Writer, targets, strategies []string, merged []campaign.Result, multiSeed bool) {
	byKey := map[string]campaign.Result{}
	for _, r := range merged {
		byKey[r.Target+"/"+r.Strategy] = r
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "bug\t")
	for _, s := range strategies {
		fmt.Fprintf(tw, "%s\t", s)
	}
	fmt.Fprintln(tw)
	for _, t := range targets {
		fmt.Fprintf(tw, "%s\t", t)
		for _, s := range strategies {
			r, ok := byKey[t+"/"+s]
			switch {
			case !ok:
				fmt.Fprintf(tw, "?\t")
			case r.Detected && multiSeed:
				fmt.Fprintf(tw, "YES (%d execs, seed %d)\t", r.Campaign.Executions, r.DetectedSeed)
			case r.Detected:
				fmt.Fprintf(tw, "YES (%d execs)\t", r.Campaign.Executions)
			default:
				fmt.Fprintf(tw, "no (%d execs)\t", r.Campaign.Executions)
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

func runGrid(ctx context.Context, gridPath, csvPath string, workers, parallel int, verbose bool, stdout, stderr io.Writer) int {
	g, err := farm.LoadGrid(gridPath)
	if err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 2
	}
	exps := g.Expand(parallel)

	// Validate every cell name once before spawning anything.
	if _, err := farm.ResolveTargets(joinNames(exps[0].Tasks, func(t farm.TaskSpec) string { return t.Target }), false); err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 2
	}
	if _, err := farm.ResolveStrategies(joinNames(exps[0].Tasks, func(t farm.TaskSpec) string { return t.Strategy }), g.RandomSeed, g.RandomN); err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 2
	}

	var tasks []farm.TaskSpec
	var expIdx []int
	for ei, exp := range exps {
		for _, t := range exp.Tasks {
			t.ID = len(tasks)
			tasks = append(tasks, t)
			expIdx = append(expIdx, ei)
		}
	}
	fmt.Fprintf(stdout, "Experiment grid %q: %d experiments, %d tasks across %d workers\n\n",
		g.Name, len(exps), len(tasks), workers)

	results, interrupted, err := dispatch(ctx, tasks, workers, verbose, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "phfarm:", err)
		return 1
	}
	perExp := make([][]farm.TaskResult, len(exps))
	for i, tr := range results {
		perExp[expIdx[i]] = append(perExp[expIdx[i]], tr)
	}
	var rows []farm.CellSummary
	failed := false
	for ei, exp := range exps {
		merged, incomplete := farm.Collate(perExp[ei])
		rows = append(rows, farm.Summarize(g.Name, exp, merged)...)
		for _, c := range incomplete {
			fmt.Fprintf(stderr, "phfarm: experiment %s/repeat %d cell %s/%s incomplete\n",
				exp.Toggle.Name, exp.Repeat, c.Target, c.Strategy)
			failed = true
		}
	}

	farm.WriteSummaryTable(stdout, rows)
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fmt.Fprintln(stderr, "phfarm:", err)
			return 1
		}
		if err := farm.WriteCSV(f, rows); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "phfarm:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "phfarm:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\ngrid CSV: %s (%d rows)\n", csvPath, len(rows))
	}

	if interrupted {
		fmt.Fprintln(stderr, "phfarm: interrupted; partial grid results flushed")
		return 130
	}
	if failed {
		return 1
	}
	return 0
}

// joinNames collects the distinct values of one task field, in task
// order, as a comma-separated resolver spec.
func joinNames(tasks []farm.TaskSpec, field func(farm.TaskSpec) string) string {
	seen := map[string]bool{}
	out := ""
	for _, t := range tasks {
		n := field(t)
		if seen[n] {
			continue
		}
		seen[n] = true
		if out != "" {
			out += ","
		}
		out += n
	}
	return out
}
