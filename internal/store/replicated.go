package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/history"
	"repro/internal/raftlite"
	"repro/internal/sim"
	"repro/internal/wal"
)

// ErrNotLeader is returned by a replica that cannot serve a write; its
// message carries a leader hint when known.
var ErrNotLeader = errors.New("store: not leader")

// IsNotLeader reports whether err (possibly remote) is a not-leader
// rejection, and extracts the leader hint if present.
func IsNotLeader(err error) (sim.NodeID, bool) {
	if err == nil {
		return "", false
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, ErrNotLeader.Error()) {
		return "", false
	}
	if i := strings.LastIndex(msg, "leader="); i >= 0 {
		return sim.NodeID(msg[i+len("leader="):]), true
	}
	return "", true
}

// replCommand is the replicated form of a write: everything is expressed
// as a transaction so apply is a single deterministic step.
type replCommand struct {
	Guards    []Cmp `json:"guards,omitempty"`
	OnSuccess []Op  `json:"onSuccess,omitempty"`
	OnFailure []Op  `json:"onFailure,omitempty"`
	// Time is the proposal's virtual timestamp; applying it (instead of
	// each replica's local clock) keeps the state machine deterministic
	// across replicas.
	Time int64 `json:"time"`
}

// ReplicaServer is one member of a replicated store cluster: a raftlite
// node plus a local Store as the applied state machine. Writes go through
// the leader and commit at a majority; every replica applies the identical
// command sequence, so all local stores evolve through the same (H, S).
//
// Reads are served from the *local* store: on a follower that is a stale
// read — the store-level analog of the apiserver watch cache, and exactly
// the behaviour HBASE-3136 tripped over in ZooKeeper.
type ReplicaServer struct {
	id    sim.NodeID
	world *sim.World
	raft  *raftlite.Node
	st    *Store
	rpc   *sim.RPCServer
	down  bool

	pending map[uint64]sim.Reply // raft index -> reply to the proposer's client
	subs    map[string]*subscription

	// pushSlab arena-allocates the per-watcher notify-batch copies, same
	// as the single-node Server.
	pushSlab sim.Slab[history.Event]
}

// NewReplicaGroup creates n replicas (ids like "etcd-1".."etcd-n") wired
// into the world, each with its own WAL.
func NewReplicaGroup(w *sim.World, n int, cfg raftlite.Config) []*ReplicaServer {
	ids := make([]sim.NodeID, n)
	for i := range ids {
		ids[i] = sim.NodeID(fmt.Sprintf("etcd-%d", i+1))
	}
	out := make([]*ReplicaServer, n)
	for i, id := range ids {
		out[i] = newReplica(w, id, ids, cfg, wal.New())
	}
	return out
}

func newReplica(w *sim.World, id sim.NodeID, peers []sim.NodeID, cfg raftlite.Config, log *wal.Log) *ReplicaServer {
	r := &ReplicaServer{
		id:      id,
		world:   w,
		st:      New(),
		pending: make(map[uint64]sim.Reply),
		subs:    make(map[string]*subscription),
	}
	r.raft = raftlite.NewNode(w, id, peers, cfg, log, r.applyEntry)
	r.rpc = sim.NewRPCServer(w.Network(), id)
	r.register()
	// The raft node registered itself as the network handler and process
	// for id; take over both so client RPCs are demultiplexed and crash
	// semantics include the applied store and subscriptions.
	w.Network().Register(id, r)
	w.AddProcess(r)
	return r
}

// ID returns the replica's node ID.
func (r *ReplicaServer) ID() sim.NodeID { return r.id }

// Store returns the replica's local applied store (test/oracle access).
func (r *ReplicaServer) Store() *Store { return r.st }

// Raft returns the underlying consensus node.
func (r *ReplicaServer) Raft() *raftlite.Node { return r.raft }

// Crash implements sim.Process (delegating volatile-state loss to raft;
// the applied store is rebuilt on restart by replaying the WAL).
func (r *ReplicaServer) Crash() {
	r.down = true
	r.raft.Crash()
	r.pending = make(map[uint64]sim.Reply)
	for _, sub := range r.subs {
		sub.handle.Cancel()
	}
	r.subs = make(map[string]*subscription)
	r.st = New() // applied state is volatile; re-derived from the raft log
}

// Restart implements sim.Process.
func (r *ReplicaServer) Restart() {
	r.down = false
	r.raft.Restart()
}

// HandleMessage implements sim.Handler: demultiplex raft vs client RPC.
func (r *ReplicaServer) HandleMessage(m *sim.Message) {
	if r.down {
		return
	}
	if strings.HasPrefix(m.Kind, "raft.") {
		r.raft.HandleMessage(m)
		return
	}
	r.st.SetNow(int64(r.world.Now()))
	r.rpc.HandleRequest(m)
}

// applyEntry is the raft state-machine hook: decode and apply the command;
// if this replica proposed it, answer the waiting client.
func (r *ReplicaServer) applyEntry(e raftlite.Entry) {
	var cmd replCommand
	if err := json.Unmarshal(e.Data, &cmd); err != nil {
		return
	}
	r.st.SetNow(cmd.Time)
	res, err := r.st.Txn(cmd.Guards, cmd.OnSuccess, cmd.OnFailure)
	if reply, ok := r.pending[e.Index]; ok {
		delete(r.pending, e.Index)
		if err != nil && err != ErrTxnFailed {
			reply(nil, err)
		} else {
			reply(&TxnResponse{Succeeded: res.Succeeded, Revision: res.Revision}, nil)
		}
	}
}

func (r *ReplicaServer) notLeaderErr() error {
	if hint := r.raft.Leader(); hint != "" && hint != r.id {
		return fmt.Errorf("%s: leader=%s", ErrNotLeader.Error(), hint)
	}
	return ErrNotLeader
}

func (r *ReplicaServer) register() {
	r.rpc.Handle(MethodRange, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*RangeRequest)
		kvs, rev := r.st.Range(req.Prefix)
		return &RangeResponse{KVs: kvs, Revision: rev}, nil
	})
	r.rpc.Handle(MethodGet, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*GetRequest)
		kv, rev, found := r.st.Get(req.Key)
		return &GetResponse{KV: kv, Found: found, Revision: rev}, nil
	})
	r.rpc.HandleAsync(MethodPut, func(_ sim.NodeID, body any, reply sim.Reply) {
		req := body.(*PutRequest)
		r.proposeWithReply(replCommand{
			OnSuccess: []Op{{Type: OpPut, Key: req.Key, Value: req.Value}},
		}, func(b any, err error) {
			if err != nil {
				reply(nil, err)
				return
			}
			reply(&PutResponse{Revision: b.(*TxnResponse).Revision}, nil)
		})
	})
	r.rpc.HandleAsync(MethodDelete, func(_ sim.NodeID, body any, reply sim.Reply) {
		req := body.(*DeleteRequest)
		r.proposeWithReply(replCommand{
			Guards:    []Cmp{{Key: req.Key, Target: CmpExists, IntVal: 1}},
			OnSuccess: []Op{{Type: OpDelete, Key: req.Key}},
		}, func(b any, err error) {
			if err != nil {
				reply(nil, err)
				return
			}
			resp := b.(*TxnResponse)
			if !resp.Succeeded {
				reply(nil, ErrKeyNotFound)
				return
			}
			reply(&DeleteResponse{Revision: resp.Revision}, nil)
		})
	})
	r.rpc.HandleAsync(MethodTxn, func(_ sim.NodeID, body any, reply sim.Reply) {
		req := body.(*TxnRequest)
		r.proposeWithReply(replCommand{
			Guards: req.Guards, OnSuccess: req.OnSuccess, OnFailure: req.OnFailure,
		}, reply)
	})
	r.rpc.Handle(MethodWatch, func(from sim.NodeID, body any) (any, error) {
		req := body.(*WatchRequest)
		subID, client := req.SubID, from
		h, err := r.st.Watch(req.Prefix, req.StartRev, func(events []history.Event) {
			cp := r.pushSlab.Clone(events)
			r.world.Network().Send(r.id, client, KindWatchPush, &WatchPush{SubID: subID, Events: cp})
		})
		if err != nil {
			return nil, err
		}
		key := subKey(from, req.SubID)
		if old, ok := r.subs[key]; ok {
			old.handle.Cancel()
		}
		r.subs[key] = &subscription{subID: req.SubID, client: from, handle: h}
		return &WatchResponse{Revision: r.st.Revision()}, nil
	})
	r.rpc.Handle(MethodEventsSince, func(_ sim.NodeID, body any) (any, error) {
		req := body.(*EventsSinceRequest)
		events, err := r.st.EventsSince(req.Prefix, req.Rev)
		if err != nil {
			return nil, err
		}
		return &EventsSinceResponse{Events: events, Revision: r.st.Revision()}, nil
	})
}

// proposeWithReply registers the reply before proposing so a synchronous
// apply (single-node or fast path) still finds it.
func (r *ReplicaServer) proposeWithReply(cmd replCommand, reply sim.Reply) {
	cmd.Time = int64(r.world.Now())
	data, err := json.Marshal(cmd)
	if err != nil {
		reply(nil, err)
		return
	}
	next := r.raft.LastIndex() + 1
	r.pending[next] = reply
	idx, ok := r.raft.Propose(data)
	if !ok {
		delete(r.pending, next)
		reply(nil, r.notLeaderErr())
		return
	}
	if idx != next {
		// Defensive: realign the registration.
		delete(r.pending, next)
		r.pending[idx] = reply
	}
}
