package controllers

import (
	"fmt"
	"strconv"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// NodeLifecycleConfig tunes the node lifecycle controller.
type NodeLifecycleConfig struct {
	// APIServer is the controller's upstream.
	APIServer sim.NodeID
	// CheckInterval is the heartbeat scan period.
	CheckInterval sim.Duration
	// NotReadyAfter marks a node NotReady when its heartbeat is older than
	// this.
	NotReadyAfter sim.Duration
	// DeleteAfter removes the node object (and force-deletes its pods)
	// when the heartbeat is older than this.
	DeleteAfter sim.Duration
	// RPCTimeout bounds apiserver calls.
	RPCTimeout sim.Duration
}

// DefaultNodeLifecycleConfig returns production-like settings.
func DefaultNodeLifecycleConfig(api sim.NodeID) NodeLifecycleConfig {
	return NodeLifecycleConfig{
		APIServer:     api,
		CheckInterval: 250 * sim.Millisecond,
		NotReadyAfter: sim.Second,
		DeleteAfter:   3 * sim.Second,
		RPCTimeout:    200 * sim.Millisecond,
	}
}

// NodeLifecycleController watches node heartbeats and garbage-collects
// nodes whose kubelets stopped reporting: first marking them NotReady, then
// deleting the node object and force-deleting its pods. It generates the
// node-deletion and pod-eviction events whose (non-)observation drives the
// membership-related bug family (§5 of the paper).
type NodeLifecycleController struct {
	id    sim.NodeID
	world *sim.World
	cfg   NodeLifecycleConfig

	conn    *client.Conn
	nodeInf *client.Informer
	podInf  *client.Informer
	down    bool
	epoch   uint64

	// Metrics.
	MarkedNotReady int
	DeletedNodes   int
	EvictedPods    int
}

// NodeLifecycleID is the controller's network identity.
const NodeLifecycleID sim.NodeID = "node-lifecycle"

// NewNodeLifecycleController wires the controller into the world.
func NewNodeLifecycleController(w *sim.World, cfg NodeLifecycleConfig) *NodeLifecycleController {
	c := &NodeLifecycleController{id: NodeLifecycleID, world: w, cfg: cfg}
	w.Network().Register(c.id, c)
	w.AddProcess(c)
	c.boot()
	return c
}

// ID implements sim.Process.
func (c *NodeLifecycleController) ID() sim.NodeID { return c.id }

// Crash implements sim.Process.
func (c *NodeLifecycleController) Crash() {
	c.down = true
	c.epoch++
	if c.conn != nil {
		c.conn.Reset()
	}
	c.nodeInf, c.podInf = nil, nil
}

// Restart implements sim.Process.
func (c *NodeLifecycleController) Restart() {
	c.down = false
	c.boot()
}

// HandleMessage implements sim.Handler.
func (c *NodeLifecycleController) HandleMessage(m *sim.Message) {
	if c.down || c.conn == nil {
		return
	}
	c.conn.HandleMessage(m)
}

func (c *NodeLifecycleController) boot() {
	c.epoch++
	epoch := c.epoch
	c.conn = client.NewConn(c.world, c.id, c.cfg.APIServer, c.cfg.RPCTimeout)
	c.nodeInf = client.NewInformer(c.conn, cluster.KindNode, client.InformerConfig{WatchTimeout: sim.Second})
	c.podInf = client.NewInformer(c.conn, cluster.KindPod, client.InformerConfig{WatchTimeout: sim.Second})
	c.nodeInf.Run()
	c.podInf.Run()
	c.scheduleCheck(epoch)
}

func (c *NodeLifecycleController) scheduleCheck(epoch uint64) {
	tag := sim.EventTag{Owner: string(c.id), Kind: "check", Epoch: epoch}
	c.world.Kernel().ScheduleTagged(c.cfg.CheckInterval, tag, func() { c.checkFire(epoch) })
}

// checkFire is the heartbeat-scan timer body, named so a restored cluster
// can rearm a pending check event by tag.
func (c *NodeLifecycleController) checkFire(epoch uint64) {
	if c.down || epoch != c.epoch {
		return
	}
	c.check(epoch)
	c.scheduleCheck(epoch)
}

func (c *NodeLifecycleController) check(epoch uint64) {
	if !c.nodeInf.Synced() || !c.podInf.Synced() {
		return
	}
	now := int64(c.world.Now())
	for _, node := range c.nodeInf.ListCached() {
		if node.Node == nil {
			continue
		}
		hb := heartbeatOf(node)
		age := now - hb
		switch {
		case hb == 0:
			// Never heartbeated (just registered); leave it alone.
		case age > int64(c.cfg.DeleteAfter):
			c.deleteNode(epoch, node)
		case age > int64(c.cfg.NotReadyAfter) && node.Node.Ready:
			upd := node.Clone()
			upd.Node.Ready = false
			c.conn.Update(upd, func(_ *cluster.Object, err error) {
				if err == nil {
					c.MarkedNotReady++
				}
			})
		}
	}
}

func (c *NodeLifecycleController) deleteNode(epoch uint64, node *cluster.Object) {
	c.conn.Delete(cluster.KindNode, node.Meta.Name, node.Meta.ResourceVersion, func(err error) {
		if c.down || epoch != c.epoch || err != nil {
			return
		}
		c.DeletedNodes++
		// Force-delete pods stranded on the dead node.
		for _, pod := range c.podInf.ListCached() {
			if pod.Pod == nil || pod.Pod.NodeName != node.Meta.Name {
				continue
			}
			name := pod.Meta.Name
			c.conn.Delete(cluster.KindPod, name, 0, func(err error) {
				if err == nil {
					c.EvictedPods++
				}
			})
		}
	})
}

func heartbeatOf(node *cluster.Object) int64 {
	if node.Meta.Labels == nil {
		return 0
	}
	v, err := strconv.ParseInt(node.Meta.Labels["heartbeat"], 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// HeartbeatLabel formats a heartbeat label value (shared with kubelet).
func HeartbeatLabel(t sim.Time) string { return fmt.Sprint(int64(t)) }
