package farm

import "repro/internal/campaign"

// Cell identifies one (target, strategy) campaign — one entry of the
// matrix, one artifact in campaign.json.
type Cell struct {
	Target   string
	Strategy string
}

// Plan expands a campaign matrix into farm tasks. base carries every
// engine knob plus the full seed sweep; Plan fills in ID, Target,
// Strategy, and the per-task seed slice. Tasks come out cell-major
// (target-major, then strategy, then seed) with dense IDs, so grouping
// completed tasks by first appearance reproduces the matrix order.
//
// The shard boundary follows the engine's independence structure:
//
//   - Without learning, seeds are fully independent — the engine runs
//     each seed's reference, planning, and execution in isolation and
//     only the aggregator crosses seeds (and every cross-seed quantity
//     it computes is reconstructible from per-seed parts; see merge.go).
//     Such cells shard to one task per seed.
//   - With learning (Prune/Ranked), seed N's schedule consults the
//     bucket-class affinity of seeds < N (aggregator.affinity), so seed
//     sharding would change the schedules. Those cells stay whole: one
//     task carrying the full sweep.
func Plan(targets, strategies []string, base TaskSpec) []TaskSpec {
	seeds := base.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1} // the engine's historical default sweep
	}
	var out []TaskSpec
	for _, t := range targets {
		for _, s := range strategies {
			if base.Prune || base.Ranked {
				spec := base
				spec.ID = len(out)
				spec.Target, spec.Strategy = t, s
				spec.Seeds = seeds
				out = append(out, spec)
				continue
			}
			for _, seed := range seeds {
				spec := base
				spec.ID = len(out)
				spec.Target, spec.Strategy = t, s
				spec.Seeds = []int64{seed}
				out = append(out, spec)
			}
		}
	}
	return out
}

// Collate groups task results by cell in task (= matrix) order and
// merges every cell whose tasks all settled. Cells with a missing or
// failed task — a cancelled run's tail — are returned separately so the
// caller can report them; their completed shards are discarded rather
// than presented as a valid (but silently truncated) campaign.
//
// A quarantined task (Res nil, Quarantine set) is settled, not missing:
// it merges as the synthetic failed cell QuarantineResult builds, so a
// poison task costs its own seeds' results and nothing else. Supervision
// history on the cell's tasks (deaths, retries, quarantines) lands in
// the merged result's Stats.Fleet — counters canonicalization scrubs,
// so a chaos run's canonical artifact still matches a failure-free one.
func Collate(results []TaskResult) (merged []campaign.Result, incomplete []Cell) {
	order := []Cell{}
	parts := map[Cell][]TaskResult{}
	for _, tr := range results {
		c := Cell{Target: tr.Spec.Target, Strategy: tr.Spec.Strategy}
		if _, seen := parts[c]; !seen {
			order = append(order, c)
		}
		parts[c] = append(parts[c], tr)
	}
	for _, c := range order {
		rs := make([]campaign.Result, 0, len(parts[c]))
		var fleet campaign.FleetStats
		ok := true
		for _, tr := range parts[c] {
			fleet.WorkerDeaths += len(tr.Deaths)
			if tr.Retries > 0 {
				fleet.TasksRetried++
			}
			switch {
			case tr.Res != nil:
				rs = append(rs, *tr.Res)
			case tr.Quarantine != nil:
				fleet.TasksQuarantined++
				rs = append(rs, QuarantineResult(tr.Spec, tr.Quarantine))
			default:
				ok = false
			}
		}
		if !ok {
			incomplete = append(incomplete, c)
			continue
		}
		m := MergeCell(rs)
		if !fleet.Zero() {
			m.Stats.Fleet = &fleet
		}
		merged = append(merged, m)
	}
	return merged, incomplete
}
