package scheduler

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/sim"
)

// Snapshot captures the scheduler at a checkpoint. The informer caches
// live inside the connection snapshot; the queue's pending timers are
// kernel events restored by the orchestration via Rearm.
type Snapshot struct {
	Cfg          Config
	Down         bool
	Epoch        uint64
	DeadNodes    map[string]bool
	Binds        int
	BindFailures int

	Conn         *client.ConnSnapshot
	HasInformers bool
	PodSub       uint64
	NodeSub      uint64
	Queue        *controller.QueueSnapshot
}

// Snapshot captures the scheduler's state. It fails (ok=false) when an RPC
// call is in flight (a pending bind Get/Update continuation cannot be
// reconstructed).
func (s *Scheduler) Snapshot() (*Snapshot, bool) {
	cs, ok := s.conn.Snapshot()
	if !ok {
		return nil, false
	}
	snap := &Snapshot{
		Cfg:          s.cfg,
		Down:         s.down,
		Epoch:        s.epoch,
		DeadNodes:    make(map[string]bool, len(s.deadNodes)),
		Binds:        s.Binds,
		BindFailures: s.BindFailures,
		Conn:         cs,
		Queue:        s.queue.Snapshot(),
	}
	for n, v := range s.deadNodes {
		snap.DeadNodes[n] = v
	}
	if s.podInf != nil && s.nodeInf != nil {
		snap.HasInformers = true
		snap.PodSub = s.podInf.SubID()
		snap.NodeSub = s.nodeInf.SubID()
	}
	return snap, true
}

// Restore reconstructs a scheduler from a snapshot inside world w. Informer
// handlers are re-attached without cache replay; no timers are armed.
func Restore(w *sim.World, snap *Snapshot) *Scheduler {
	s := &Scheduler{
		id:           ID,
		world:        w,
		cfg:          snap.Cfg,
		down:         snap.Down,
		epoch:        snap.Epoch,
		deadNodes:    make(map[string]bool, len(snap.DeadNodes)),
		Binds:        snap.Binds,
		BindFailures: snap.BindFailures,
	}
	for n, v := range snap.DeadNodes {
		s.deadNodes[n] = v
	}
	w.Network().Register(s.id, s)
	w.AddProcess(s)
	s.conn = client.RestoreConn(w, snap.Conn)
	s.queue = controller.RestoreQueue(w.Kernel(), snap.Queue, controller.ReconcilerFunc(s.reconcile))
	if snap.HasInformers {
		nodeInf, ok := s.conn.Informer(snap.NodeSub)
		if !ok {
			panic(fmt.Sprintf("scheduler: restore: node informer sub %d missing", snap.NodeSub))
		}
		nodeInf.RestoreHandler(client.HandlerFuncs{
			DeleteFunc: func(o *cluster.Object) { delete(s.deadNodes, o.Meta.Name) },
		})
		s.nodeInf = nodeInf
		podInf, ok := s.conn.Informer(snap.PodSub)
		if !ok {
			panic(fmt.Sprintf("scheduler: restore: pod informer sub %d missing", snap.PodSub))
		}
		podInf.RestoreHandler(controller.EnqueueHandler{Queue: s.queue})
		s.podInf = podInf
	}
	return s
}

// Rearm returns the callback for a pending kernel event owned by this
// scheduler (work-queue timers and informer timers share its owner name).
func (s *Scheduler) Rearm(tag sim.EventTag) (func(), error) {
	switch tag.Kind {
	case "addafter", "process":
		return s.queue.Rearm(tag)
	case "inf-liveness", "inf-relist":
		return s.conn.RearmInformer(tag)
	default:
		return nil, fmt.Errorf("scheduler: unknown pending event kind %q", tag.Kind)
	}
}
