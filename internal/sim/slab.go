package sim

// Slab is a chunked arena for the short, immutable-once-sent slices the
// actors allocate on every watch push (the same discipline as the
// kernel's event chunk and the network's message chunk): instead of one
// `make` per push, allocations carve capped sub-slices out of a chunk
// and a fresh chunk is made only every slabChunkSize elements. Handed-out
// slices are never reused or reclaimed — holders (in-flight messages,
// recorders, delayed deliveries) stay valid forever — so the only effect
// is fewer, larger allocations.
//
// Slices are handed out with a full slice expression (cap == len), so a
// holder that appends reallocates instead of scribbling over the next
// allocation. The zero value is ready to use. Snapshot restore paths
// construct fresh servers (and therefore fresh zero-value slabs), so
// checkpoint forks never share a chunk.
type Slab[T any] struct {
	chunk []T
}

const slabChunkSize = 256

func (s *Slab[T]) alloc(n int) []T {
	if n > len(s.chunk) {
		size := slabChunkSize
		if n > size {
			size = n
		}
		s.chunk = make([]T, size)
	}
	out := s.chunk[:n:n]
	s.chunk = s.chunk[n:]
	return out
}

// Clone returns a slab-backed copy of src (nil for an empty src).
func (s *Slab[T]) Clone(src []T) []T {
	if len(src) == 0 {
		return nil
	}
	out := s.alloc(len(src))
	copy(out, src)
	return out
}

// One returns a slab-backed single-element slice holding v.
func (s *Slab[T]) One(v T) []T {
	out := s.alloc(1)
	out[0] = v
	return out
}
