package farm

import (
	"bytes"
	"testing"
)

// TestFarmByteIdentityScale: the farm must stay an implementation detail
// at cluster scale — a 100-node topology-world campaign merged from farm
// workers is byte-identical to the single-process run. Gated off under
// -race (the CI scale-smoke step proves the same property end-to-end
// without the detector's order-of-magnitude slowdown).
func TestFarmByteIdentityScale(t *testing.T) {
	if raceSlowdown > 1 {
		t.Skip("race mode: scale byte-identity is covered by the CI scale-smoke step")
	}
	spec := TaskSpec{
		Target:        "scale-rackdrain-100",
		Strategy:      "partial-history",
		Seeds:         []int64{1},
		MaxExecutions: 6,
		Parallel:      2,
	}
	direct := directRun(t, spec)
	cfg := spec.engineConfig(nil)
	wantArt := artifactBytes(t, direct, cfg)
	wantND := ndjsonBytes(t, direct, cfg)
	merged := farmRun(t, []string{spec.Target}, []string{spec.Strategy}, spec, 2)
	if len(merged) != 1 {
		t.Fatalf("got %d merged cells, want 1", len(merged))
	}
	if got := artifactBytes(t, merged[0], cfg); !bytes.Equal(got, wantArt) {
		t.Error("farmed 100-node artifact differs from single-process run")
	}
	if got := ndjsonBytes(t, merged[0], cfg); !bytes.Equal(got, wantND) {
		t.Error("farmed 100-node telemetry differs from single-process run")
	}
}
