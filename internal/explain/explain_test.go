package explain_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/workload"
)

// detectingTimeTravel finds the first planner-generated time-travel plan
// that reproduces the k8s-59848 bug under the default seed.
func detectingTimeTravel(t *testing.T) (core.Target, core.TimeTravelPlan) {
	t.Helper()
	target := workload.Target59848()
	ref, _ := core.Reference(target)
	for _, p := range core.NewPlanner().Plans(target, ref) {
		tt, ok := p.(core.TimeTravelPlan)
		if !ok {
			continue
		}
		if core.RunPlan(target, tt).Detected {
			return target, tt
		}
	}
	t.Fatal("no planner time-travel plan detects k8s-59848; planner regression")
	return core.Target{}, core.TimeTravelPlan{}
}

// TestExplainTimeTravelChain checks the structure of the causal chain for
// the paper's Figure 2 bug: the chain starts at the perturbation, passes
// through a divergence, and terminates at the oracle violation, with
// non-zero time-travel divergence metrics.
func TestExplainTimeTravelChain(t *testing.T) {
	target, plan := detectingTimeTravel(t)
	e := explain.Explain(target, plan, 1)
	if e == nil {
		t.Fatal("Explain returned nil for a detecting plan")
	}
	if e.Target != target.Name || e.Seed != 1 {
		t.Fatalf("explanation identity wrong: %s seed %d", e.Target, e.Seed)
	}
	if len(e.Chain) < 3 {
		t.Fatalf("chain too short: %d steps", len(e.Chain))
	}
	if e.Chain[0].Kind != explain.StepPerturbation {
		t.Fatalf("chain starts with %q, want %q", e.Chain[0].Kind, explain.StepPerturbation)
	}
	last := e.Chain[len(e.Chain)-1]
	if last.Kind != explain.StepViolation {
		t.Fatalf("chain ends with %q, want %q", last.Kind, explain.StepViolation)
	}
	if !strings.Contains(last.Detail, target.Bug) {
		t.Fatalf("violation step %q does not name the bug oracle %q", last.Detail, target.Bug)
	}
	if e.Metrics.TimeTravelEpisodes == 0 || e.Metrics.TimeTravelDepth == 0 {
		t.Fatalf("time-travel plan produced no time-travel metrics: %+v", e.Metrics)
	}
}

// TestExplainGoldenRender pins the exact rendered explanation for the
// k8s-59848 time-travel reproduction under seed 1. The simulation is
// deterministic, so this output is stable; if it changes, either the
// simulation's event timing or the explanation layer changed behaviour —
// both are worth a deliberate golden update.
func TestExplainGoldenRender(t *testing.T) {
	target, plan := detectingTimeTravel(t)
	e := explain.Explain(target, plan, 1)
	got := e.Render()

	const want = `k8s-59848 seed 1 — minimal plan: freeze api-2 at 0.507342s, crash kubelet-k1 at 3.502342s, restart onto frozen view
  affected component: kubelet-k1
  1. [0.507342s] perturbation:            freeze api-2 at 0.507342s — it preserves the historical view at revision 5
  2. [3.502342s] perturbation:            crash kubelet-k1 at 3.502342s and steer its restart onto frozen api-2
  3. [3.602342s] action:                  kubelet-k1 issues api.Create nodes/k1 instead of the reference's api.Update nodes/k1 — acting on its divergent view
  4. [4.259154s] divergence:              kubelet-k1 observes MODIFIED pods/p1 at rev 6 after having seen rev 22 — its view travelled 16 revisions back in time
  5. [3.610000s] violation:               oracle UniquePod on pods/p1: pod "p1" running on multiple hosts: k1,k2
  divergence: staleness-lag=53rev/7.053291s gap-width=0 time-travel=4x/depth 16 forced-relists=2 dropped=0 duplicated=0 relist-storm=1
`
	if got != want {
		t.Fatalf("golden explanation drifted\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderTimelineShape sanity-checks the ASCII timeline: one row per
// timed step, ordered, ending in the violation marker.
func TestRenderTimelineShape(t *testing.T) {
	target, plan := detectingTimeTravel(t)
	e := explain.Explain(target, plan, 1)
	tl := e.RenderTimeline()
	lines := strings.Split(strings.TrimRight(tl, "\n"), "\n")
	if len(lines) < 1+len(e.Chain) {
		t.Fatalf("timeline has %d lines, want >= %d", len(lines), 1+len(e.Chain))
	}
	if !strings.Contains(lines[len(lines)-1], "violation") {
		t.Fatalf("timeline does not end at the violation: %q", lines[len(lines)-1])
	}
}
