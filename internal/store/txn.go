package store

// Transactions: etcd-style guarded atomic batches. A Txn compares a set of
// guards against the current state; if all hold, the success ops commit
// atomically (consecutive revisions, single watcher batch per op); otherwise
// the failure ops commit. This is the primitive behind optimistic
// concurrency on ResourceVersion ("compare-and-swap on mod revision") that
// HBASE-3136's region transitions — and every Kubernetes update — rely on.

// CmpTarget selects which MVCC attribute a guard compares.
type CmpTarget int

const (
	// CmpModRevision compares the key's ModRevision.
	CmpModRevision CmpTarget = iota
	// CmpCreateRevision compares the key's CreateRevision.
	CmpCreateRevision
	// CmpVersion compares the key's Version.
	CmpVersion
	// CmpValue compares the key's value bytes.
	CmpValue
	// CmpExists asserts the key exists (IntVal != 0) or not (IntVal == 0).
	CmpExists
)

// Cmp is a transaction guard on one key.
type Cmp struct {
	Key    string
	Target CmpTarget
	IntVal int64  // for revision/version/exists targets
	BytVal []byte // for CmpValue
}

// OpType is the kind of a transaction operation.
type OpType int

const (
	// OpPut writes a key.
	OpPut OpType = iota
	// OpDelete removes a key.
	OpDelete
)

// Op is one mutation inside a transaction branch.
type Op struct {
	Type  OpType
	Key   string
	Value []byte
	Lease LeaseID
}

// TxnResult reports the outcome of a transaction.
type TxnResult struct {
	Succeeded bool  // whether the success branch ran
	Revision  int64 // store revision after the txn
}

// Check evaluates a single guard against the current state.
func (s *Store) Check(c Cmp) bool {
	kv, ok := s.kvs[c.Key]
	switch c.Target {
	case CmpExists:
		return ok == (c.IntVal != 0)
	case CmpModRevision:
		if !ok {
			return c.IntVal == 0
		}
		return kv.ModRevision == c.IntVal
	case CmpCreateRevision:
		if !ok {
			return c.IntVal == 0
		}
		return kv.CreateRevision == c.IntVal
	case CmpVersion:
		if !ok {
			return c.IntVal == 0
		}
		return kv.Version == c.IntVal
	case CmpValue:
		return ok && string(kv.Value) == string(c.BytVal)
	default:
		return false
	}
}

// Txn atomically evaluates guards and applies the matching branch. With an
// empty failure branch and failing guards it returns ErrTxnFailed.
func (s *Store) Txn(guards []Cmp, onSuccess, onFailure []Op) (TxnResult, error) {
	ok := true
	for _, c := range guards {
		if !s.Check(c) {
			ok = false
			break
		}
	}
	branch := onSuccess
	if !ok {
		branch = onFailure
		if len(branch) == 0 {
			return TxnResult{Succeeded: false, Revision: s.rev}, ErrTxnFailed
		}
	}
	for _, op := range branch {
		switch op.Type {
		case OpPut:
			if op.Lease != 0 {
				if _, err := s.PutWithLease(op.Key, op.Value, op.Lease); err != nil {
					return TxnResult{Succeeded: ok, Revision: s.rev}, err
				}
			} else {
				s.Put(op.Key, op.Value)
			}
		case OpDelete:
			// Deleting an absent key inside a txn is a no-op, matching
			// etcd's DeleteRange semantics.
			_, _ = s.Delete(op.Key)
		}
	}
	return TxnResult{Succeeded: ok, Revision: s.rev}, nil
}

// CompareAndSwap is the common special case: write key=value only if the
// key's ModRevision equals expectRev (0 = must not exist). It reports
// whether the swap happened.
func (s *Store) CompareAndSwap(key string, expectRev int64, value []byte) (bool, int64) {
	res, err := s.Txn(
		[]Cmp{{Key: key, Target: CmpModRevision, IntVal: expectRev}},
		[]Op{{Type: OpPut, Key: key, Value: value}},
		nil,
	)
	if err != nil {
		return false, s.rev
	}
	return res.Succeeded, res.Revision
}

// CompareAndDelete removes key only if its ModRevision equals expectRev.
func (s *Store) CompareAndDelete(key string, expectRev int64) (bool, int64) {
	res, err := s.Txn(
		[]Cmp{{Key: key, Target: CmpModRevision, IntVal: expectRev}},
		[]Op{{Type: OpDelete, Key: key}},
		nil,
	)
	if err != nil {
		return false, s.rev
	}
	return res.Succeeded, res.Revision
}
