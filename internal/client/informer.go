package client

import (
	"fmt"
	"sort"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/sim"
)

// EventHandler receives typed cache events from an Informer. For handlers
// added after the cache is synced, the initial list is replayed as OnAdd
// calls, matching client-go semantics.
type EventHandler interface {
	OnAdd(obj *cluster.Object)
	OnUpdate(oldObj, newObj *cluster.Object)
	OnDelete(obj *cluster.Object)
}

// HandlerFuncs adapts plain functions to EventHandler; nil funcs are
// skipped.
type HandlerFuncs struct {
	AddFunc    func(obj *cluster.Object)
	UpdateFunc func(oldObj, newObj *cluster.Object)
	DeleteFunc func(obj *cluster.Object)
}

// OnAdd implements EventHandler.
func (h HandlerFuncs) OnAdd(obj *cluster.Object) {
	if h.AddFunc != nil {
		h.AddFunc(obj)
	}
}

// OnUpdate implements EventHandler.
func (h HandlerFuncs) OnUpdate(oldObj, newObj *cluster.Object) {
	if h.UpdateFunc != nil {
		h.UpdateFunc(oldObj, newObj)
	}
}

// OnDelete implements EventHandler.
func (h HandlerFuncs) OnDelete(obj *cluster.Object) {
	if h.DeleteFunc != nil {
		h.DeleteFunc(obj)
	}
}

// Relist retry backoff: the first retry waits relistBackoffBase, each
// subsequent failure doubles the wait up to relistBackoffCap, and every
// wait gets up-to-half jitter from the kernel RNG so a fleet of informers
// relisting against a recovering upstream doesn't synchronize into a
// thundering herd. The RNG is only consulted on the error path, so
// healthy executions draw exactly the same random sequence as before.
const (
	relistBackoffBase = 100 * sim.Millisecond
	relistBackoffCap  = 1600 * sim.Millisecond
)

// InformerConfig tunes informer behaviour.
type InformerConfig struct {
	// WatchTimeout re-establishes the watch (pulling a fresh list if
	// needed) when no event has arrived for this long. 0 disables.
	WatchTimeout sim.Duration
	// RelistEvery forces a periodic full relist regardless of stream
	// health — the defensive resync hardened controllers use to bound the
	// damage of silently lost notifications. 0 disables (stock behaviour:
	// a missed event is missed forever).
	RelistEvery sim.Duration
}

// Informer maintains a component's local cache S' of one kind, fed by
// list+watch from the component's current apiserver. It is the analog of a
// client-go SharedIndexInformer and — per the paper — the canonical home of
// partial histories in infrastructure services.
type Informer struct {
	conn *Conn
	kind cluster.Kind
	cfg  InformerConfig

	subID    uint64
	epoch    uint64 // guards async callbacks across relists
	synced   bool
	store    map[string]*cluster.Object // S'
	lastRev  int64                      // frontier of H'
	handlers []EventHandler

	// Obs records the order in which revisions were observed — raw
	// material for time-travel detection by oracles.
	Obs history.ObservationLog

	lastEventAt sim.Time
	relists     int
	retries     int          // failed list attempts (upstream unavailable)
	backoff     sim.Duration // next retry's base delay; 0 = healthy
}

// NewInformer creates (but does not start) an informer for kind on conn.
func NewInformer(conn *Conn, kind cluster.Kind, cfg InformerConfig) *Informer {
	inf := &Informer{
		conn:  conn,
		kind:  kind,
		cfg:   cfg,
		store: make(map[string]*cluster.Object),
	}
	conn.nextSub++
	inf.subID = conn.nextSub
	conn.informers[inf.subID] = inf
	return inf
}

// AddHandler registers a handler. If the cache is already synced the
// current contents are replayed to it as OnAdd calls.
func (i *Informer) AddHandler(h EventHandler) {
	i.handlers = append(i.handlers, h)
	if i.synced {
		for _, name := range i.sortedNames() {
			h.OnAdd(i.store[name].Clone())
		}
	}
}

// Run starts the initial list+watch.
func (i *Informer) Run() {
	i.relist("initial sync")
	if i.cfg.WatchTimeout > 0 {
		i.scheduleLiveness()
	}
	if i.cfg.RelistEvery > 0 {
		i.schedulePeriodicRelist()
	}
}

func (i *Informer) schedulePeriodicRelist() {
	i.conn.world.Kernel().ScheduleTagged(i.cfg.RelistEvery,
		sim.EventTag{Owner: string(i.conn.self), Kind: "inf-relist", Key: fmt.Sprint(i.subID)},
		i.periodicRelistFire)
}

// periodicRelistFire is the periodic-resync timer body; the tag lets a
// restored world re-arm a pending firing.
func (i *Informer) periodicRelistFire() {
	if _, ok := i.conn.informers[i.subID]; !ok {
		return // informer dropped (component crashed)
	}
	i.relist("periodic resync")
	i.schedulePeriodicRelist()
}

// Synced reports whether the initial list completed.
func (i *Informer) Synced() bool { return i.synced }

// LastRevision returns the cache frontier (H' position).
func (i *Informer) LastRevision() int64 { return i.lastRev }

// Relists returns how many list operations the informer has performed.
func (i *Informer) Relists() int { return i.relists }

// Retries returns how many list attempts failed against an unavailable
// upstream and were rescheduled with backoff.
func (i *Informer) Retries() int { return i.retries }

// Get returns the cached object by name.
func (i *Informer) Get(name string) (*cluster.Object, bool) {
	o, ok := i.store[name]
	if !ok {
		return nil, false
	}
	return o.Clone(), true
}

// ListCached returns all cached objects ordered by name — a sparse read of
// S' in the paper's terms.
func (i *Informer) ListCached() []*cluster.Object {
	out := make([]*cluster.Object, 0, len(i.store))
	for _, name := range i.sortedNames() {
		out = append(out, i.store[name].Clone())
	}
	return out
}

// Len returns the number of cached objects.
func (i *Informer) Len() int { return len(i.store) }

func (i *Informer) sortedNames() []string {
	names := make([]string, 0, len(i.store))
	for n := range i.store {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// relist pulls a full list and reconciles the cache against it, emitting
// synthetic Added/Modified/Deleted notifications for the difference — the
// client-go "Replace" path. After a relist the informer re-watches from the
// listed revision.
//
// Crucially, a relist against a stale upstream moves the cache *backwards*:
// deleted objects reappear (OnAdd), recent objects vanish (OnDelete), and
// lastRev regresses. Nothing in this layer prevents that — faithfully
// reproducing the Kubernetes behaviour behind time-travel bugs.
func (i *Informer) relist(reason string) {
	i.epoch++
	epoch := i.epoch
	i.relists++
	i.conn.List(i.kind, false, func(objs []*cluster.Object, rev int64, err error) {
		if epoch != i.epoch {
			return
		}
		if err != nil {
			// Upstream unavailable: retry with capped exponential backoff
			// plus kernel-RNG jitter (deterministic under the world seed).
			i.retries++
			d := i.backoff
			if d == 0 {
				d = relistBackoffBase
			}
			if next := 2 * d; next > relistBackoffCap {
				i.backoff = relistBackoffCap
			} else {
				i.backoff = next
			}
			d += sim.Duration(i.conn.world.Kernel().Rand().Int63n(int64(d/2) + 1))
			i.conn.world.Kernel().Schedule(d, func() {
				if epoch == i.epoch {
					i.relist(reason)
				}
			})
			return
		}
		i.replace(objs, rev)
		i.startWatch(epoch)
	})
}

func (i *Informer) replace(objs []*cluster.Object, rev int64) {
	incoming := make(map[string]*cluster.Object, len(objs))
	for _, o := range objs {
		incoming[o.Meta.Name] = o
	}
	names := make([]string, 0, len(incoming))
	for n := range incoming {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		newObj := incoming[name]
		old, existed := i.store[name]
		i.store[name] = newObj.Clone()
		switch {
		case !existed:
			i.emitAdd(newObj)
		case old.Meta.ResourceVersion != newObj.Meta.ResourceVersion:
			i.emitUpdate(old, newObj)
		}
	}
	for _, name := range i.sortedNames() {
		if _, ok := incoming[name]; !ok {
			old := i.store[name]
			delete(i.store, name)
			i.emitDelete(old)
		}
	}
	i.lastRev = rev
	i.Obs.Record(history.Observation{Revision: rev, Key: "(relist)", Time: int64(i.conn.world.Now())})
	i.synced = true
	i.backoff = 0 // a successful replace resets the retry backoff
	i.lastEventAt = i.conn.world.Now()
}

func (i *Informer) startWatch(epoch uint64) {
	i.conn.rpc.Call(i.conn.api, apiserver.MethodWatch,
		&apiserver.WatchRequest{Kind: i.kind, StartRev: i.lastRev, SubID: i.subID},
		func(_ any, err error) {
			if epoch != i.epoch {
				return
			}
			if err != nil {
				if apiserver.IsTooOld(err) {
					i.relist("watch window expired")
					return
				}
				i.conn.world.Kernel().Schedule(100*sim.Millisecond, func() {
					if epoch == i.epoch {
						i.startWatch(epoch)
					}
				})
				return
			}
			i.lastEventAt = i.conn.world.Now()
		})
}

// onPush applies pushed watch events to the cache.
func (i *Informer) onPush(events []apiserver.WatchEvent) {
	for _, ev := range events {
		if ev.Object == nil || ev.Object.Meta.Kind != i.kind {
			continue
		}
		i.Obs.Record(history.Observation{
			Revision: ev.Revision,
			Key:      cluster.Key(i.kind, ev.Object.Meta.Name),
			Time:     int64(i.conn.world.Now()),
		})
		if ev.Revision <= i.lastRev && ev.Revision != 0 {
			// Duplicate or replayed event; client-go dedups by RV.
			continue
		}
		name := ev.Object.Meta.Name
		switch ev.Type {
		case apiserver.Added:
			old, existed := i.store[name]
			i.store[name] = ev.Object.Clone()
			if existed {
				i.emitUpdate(old, ev.Object)
			} else {
				i.emitAdd(ev.Object)
			}
		case apiserver.Modified:
			old, existed := i.store[name]
			i.store[name] = ev.Object.Clone()
			if existed {
				i.emitUpdate(old, ev.Object)
			} else {
				i.emitAdd(ev.Object)
			}
		case apiserver.Deleted:
			old, existed := i.store[name]
			delete(i.store, name)
			if existed {
				i.emitDelete(old)
			} else {
				i.emitDelete(ev.Object)
			}
		}
		if ev.Revision > i.lastRev {
			i.lastRev = ev.Revision
		}
	}
	i.lastEventAt = i.conn.world.Now()
}

func (i *Informer) scheduleLiveness() { i.armLiveness(i.epoch) }

// armLiveness schedules one liveness firing carrying the epoch observed at
// arm time; the tag lets a restored world re-arm a pending firing with the
// identical armed epoch (stale firings must stay no-ops in forked runs,
// exactly as in a full replay).
func (i *Informer) armLiveness(epoch uint64) {
	i.conn.world.Kernel().ScheduleTagged(i.cfg.WatchTimeout,
		sim.EventTag{Owner: string(i.conn.self), Kind: "inf-liveness", Key: fmt.Sprint(i.subID), Epoch: epoch},
		func() { i.livenessFire(epoch) })
}

func (i *Informer) livenessFire(epoch uint64) {
	if _, ok := i.conn.informers[i.subID]; !ok {
		return // informer dropped (component crashed)
	}
	if i.synced && epoch == i.epoch &&
		i.conn.world.Now().Sub(i.lastEventAt) >= i.cfg.WatchTimeout {
		// Stream went quiet: the apiserver may have restarted and lost
		// our subscription. Re-establish.
		i.startWatch(i.epoch)
	}
	i.scheduleLiveness()
}

func (i *Informer) emitAdd(o *cluster.Object) {
	for _, h := range i.handlers {
		h.OnAdd(o.Clone())
	}
}

func (i *Informer) emitUpdate(old, new *cluster.Object) {
	for _, h := range i.handlers {
		h.OnUpdate(old.Clone(), new.Clone())
	}
}

func (i *Informer) emitDelete(o *cluster.Object) {
	for _, h := range i.handlers {
		h.OnDelete(o.Clone())
	}
}
