package core

import (
	"testing"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// A composed schedule must keep its occurrence coordinates independent: a
// Delay verdict re-enqueues the message through every gate, and the drop
// gate must NOT count that re-arrival as a fresh delivery. With a short
// delay (re-arrival lands before the next real modification) a recounting
// drop gate would fire on the delayed 1st occurrence instead of the
// intended 2nd — the receiver would lose 'a' and see 'b', inverted from
// the schedule's meaning.
func TestDelayThenDropComposedOccurrences(t *testing.T) {
	c := smallCluster()
	SequencePlan{Name: "composed", Plans: []Plan{
		DelayDeliveryPlan{Victim: "kubelet-k1", Kind: cluster.KindPod, Name: "p1",
			Type: apiserver.Modified, Occurrence: 1, Delay: sim.Millisecond},
		DropDeliveryPlan{Victim: "kubelet-k1", Kind: cluster.KindPod, Name: "p1",
			Type: apiserver.Modified, Occurrence: 2},
	}}.Apply(c)

	var delivered []string
	gated := 0
	c.World.Network().AddObserver(observerFuncs{
		onDrop: func(m *sim.Message, reason string) {
			if m.Kind == apiserver.KindWatchPush && m.To == "kubelet-k1" && reason == "gated" {
				gated++
			}
		},
		onDeliver: func(m *sim.Message) {
			if m.Kind != apiserver.KindWatchPush || m.To != "kubelet-k1" {
				return
			}
			for _, ev := range m.Payload.(*apiserver.WatchPushMsg).Events {
				if ev.Object.Meta.Name == "p1" && ev.Type == apiserver.Modified {
					delivered = append(delivered, ev.Object.Pod.Image)
				}
			}
		},
	})

	// Unassigned pod (scheduler disabled): no kubelet writes status, so
	// the only MODIFIED events are the admin updates below — occurrence
	// coordinates are exactly 'a', 'b', 'c'.
	c.Admin.CreatePod("p1", "", "v1", nil)
	c.RunFor(500 * sim.Millisecond)
	for i := 0; i < 3; i++ {
		v := string(rune('a' + i))
		c.Admin.Conn().Get(cluster.KindPod, "p1", true, func(obj *cluster.Object, found bool, err error) {
			if err != nil || !found {
				return
			}
			upd := obj.Clone()
			upd.Pod.Image = v
			c.Admin.Conn().Update(upd, func(*cluster.Object, error) {})
		})
		c.RunFor(200 * sim.Millisecond)
	}

	if gated != 1 {
		t.Fatalf("gated drops = %d, want exactly 1", gated)
	}
	seen := map[string]bool{}
	for _, img := range delivered {
		seen[img] = true
	}
	if !seen["a"] {
		t.Fatalf("occurrence 1 ('a') was dropped on re-arrival instead of delivered late; delivered=%v", delivered)
	}
	if seen["b"] {
		t.Fatalf("occurrence 2 ('b') was delivered — the drop fired on the wrong message; delivered=%v", delivered)
	}
	if !seen["c"] {
		t.Fatalf("occurrence 3 ('c') should be unaffected; delivered=%v", delivered)
	}
}
