package leasecache

import (
	"testing"

	"repro/internal/sim"
)

func setup(ttl sim.Duration) (*sim.World, *Server, *Client, *Client) {
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	s := NewServer(w, "lease-server", ttl)
	c1 := NewClient(w, "c1", "lease-server")
	c2 := NewClient(w, "c2", "lease-server")
	return w, s, c1, c2
}

func write(w *sim.World, c *Client, key, val string) uint64 {
	var ver uint64
	done := false
	c.Write(key, []byte(val), func(v uint64) { ver, done = v, true })
	for !done && w.Kernel().Step() {
	}
	return ver
}

func read(w *sim.World, c *Client, key string) (string, uint64) {
	var val string
	var ver uint64
	done := false
	c.Read(key, func(v []byte, version uint64) { val, ver, done = string(v), version, true })
	for !done && w.Kernel().Step() {
	}
	return val, ver
}

func TestWriteThenRead(t *testing.T) {
	w, _, c1, c2 := setup(sim.Second)
	if ver := write(w, c1, "/cfg", "v1"); ver != 1 {
		t.Fatalf("write version = %d", ver)
	}
	val, ver := read(w, c2, "/cfg")
	if val != "v1" || ver != 1 {
		t.Fatalf("read = %q v%d", val, ver)
	}
}

func TestLocalHitsWhileLeaseValid(t *testing.T) {
	w, _, c1, c2 := setup(sim.Second)
	write(w, c1, "/cfg", "v1")
	read(w, c2, "/cfg") // populates cache + lease
	before := c2.ServerReads
	for i := 0; i < 5; i++ {
		read(w, c2, "/cfg")
	}
	if c2.ServerReads != before {
		t.Fatalf("cached reads hit the server: %d extra", c2.ServerReads-before)
	}
	if c2.LocalHits < 5 {
		t.Fatalf("local hits = %d", c2.LocalHits)
	}
}

func TestLeaseExpiryForcesServerRead(t *testing.T) {
	w, _, c1, c2 := setup(100 * sim.Millisecond)
	write(w, c1, "/cfg", "v1")
	read(w, c2, "/cfg")
	w.Kernel().RunFor(200 * sim.Millisecond) // lease expires
	before := c2.ServerReads
	read(w, c2, "/cfg")
	if c2.ServerReads != before+1 {
		t.Fatal("expired lease still served locally")
	}
}

// TestNoStaleReads is the §4.1 guarantee: a committed write is never
// followed by a read of the old value, because the write invalidated (or
// outwaited) every lease first.
func TestNoStaleReads(t *testing.T) {
	w, _, c1, c2 := setup(sim.Second)
	write(w, c1, "/cfg", "v1")
	read(w, c2, "/cfg") // c2 holds a lease on v1
	if got := write(w, c1, "/cfg", "v2"); got != 2 {
		t.Fatalf("second write version = %d", got)
	}
	// The write blocked until c2's copy was invalidated; c2 must now read
	// v2 (from the server, its cache entry is gone).
	val, _ := read(w, c2, "/cfg")
	if val != "v2" {
		t.Fatalf("stale read: %q", val)
	}
	if c2.Invalidated != 1 {
		t.Fatalf("invalidations at c2 = %d", c2.Invalidated)
	}
}

// TestWriteBlocksUntilLeaseExpiryWhenHolderUnreachable measures the cost
// side of leases: with a partitioned leaseholder, the write cannot commit
// until the lease term runs out.
func TestWriteBlocksUntilLeaseExpiryWhenHolderUnreachable(t *testing.T) {
	ttl := 500 * sim.Millisecond
	w, s, c1, c2 := setup(ttl)
	write(w, c1, "/cfg", "v1")
	read(w, c2, "/cfg")

	// c2 vanishes (partition both ways).
	w.Network().Partition("c2", "lease-server")

	start := w.Now()
	var committedAt sim.Time
	done := false
	c1.Write("/cfg", []byte("v2"), func(uint64) { committedAt = w.Now(); done = true })
	w.Kernel().RunFor(2 * sim.Second)
	if !done {
		t.Fatal("write never committed")
	}
	blocked := committedAt.Sub(start)
	if blocked < 300*sim.Millisecond {
		t.Fatalf("write blocked only %s; expected to wait for lease expiry (~%s)", blocked, ttl)
	}
	if s.ExpiryWaits != 1 {
		t.Fatalf("expiry waits = %d", s.ExpiryWaits)
	}
}

func TestWriterOwnLeaseDoesNotBlock(t *testing.T) {
	w, _, c1, _ := setup(sim.Second)
	write(w, c1, "/cfg", "v1")
	read(w, c1, "/cfg") // writer itself holds the lease
	start := w.Now()
	write(w, c1, "/cfg", "v2")
	if w.Now().Sub(start) > 10*sim.Millisecond {
		t.Fatalf("self-lease blocked the writer for %s", w.Now().Sub(start))
	}
}

func TestZeroTTLDisablesLeases(t *testing.T) {
	w, s, c1, c2 := setup(0)
	write(w, c1, "/cfg", "v1")
	read(w, c2, "/cfg")
	read(w, c2, "/cfg")
	if c2.LocalHits != 0 {
		t.Fatalf("ttl=0 still cached: hits=%d", c2.LocalHits)
	}
	if s.LeasesGranted != 0 {
		t.Fatalf("ttl=0 granted leases: %d", s.LeasesGranted)
	}
}

func TestHoldersDiagnostics(t *testing.T) {
	w, s, c1, c2 := setup(sim.Second)
	write(w, c1, "/cfg", "v1")
	read(w, c1, "/cfg")
	read(w, c2, "/cfg")
	holders := s.Holders("/cfg")
	if len(holders) != 2 || holders[0] != "c1" || holders[1] != "c2" {
		t.Fatalf("holders = %v", holders)
	}
	if s.Version("/cfg") != 1 {
		t.Fatalf("version = %d", s.Version("/cfg"))
	}
}
