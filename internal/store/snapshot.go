package store

import (
	"fmt"
	"sort"

	"repro/internal/history"
	"repro/internal/sim"
)

// Snapshot captures a Store plus its Server wrapper at a checkpoint. The
// committed-event log is shared copy-on-write with the live store (it is
// immutable once committed; Append on either side reallocates); every
// mutable map is copied. KV value byte slices are shared because the store
// never mutates a committed value in place (writes install fresh KVs and
// reads clone).
type Snapshot struct {
	// Store state.
	Rev       int64
	Compacted int64
	KVs       map[string]KV
	Hist      []history.Event // cap == len; shared with the source store
	NextWatch int64
	NextLease LeaseID
	Leases    map[LeaseID]Lease
	LeaseKeys map[LeaseID][]string // sorted attached keys per lease
	RetainMax int
	Now       int64

	// Server state.
	ID   sim.NodeID
	Down bool
	Subs []SubSnapshot // sorted by subscription key
}

// SubSnapshot describes one live watch subscription: which client it
// pushes to and which store watcher (by original ID, preserving the
// commit-notification order) it owns.
type SubSnapshot struct {
	SubID     uint64
	Client    sim.NodeID
	WatcherID int64
	Prefix    string
}

// Snapshot captures the server and its store. It fails (ok=false) if the
// store has watchers not owned by a server subscription — those carry
// closures this layer cannot reconstruct.
func (s *Server) Snapshot() (*Snapshot, bool) {
	st := s.st
	snap := &Snapshot{
		Rev:       st.rev,
		Compacted: st.compacted,
		KVs:       make(map[string]KV, len(st.kvs)),
		Hist:      st.hist.Retained(),
		NextWatch: st.nextWatch,
		NextLease: st.nextLease,
		Leases:    make(map[LeaseID]Lease, len(st.leases)),
		LeaseKeys: make(map[LeaseID][]string, len(st.leaseKeys)),
		RetainMax: st.retainMax,
		Now:       st.now,
		ID:        s.id,
		Down:      s.down,
	}
	for k, kv := range st.kvs {
		snap.KVs[k] = kv // Value shared; see type comment
	}
	for id, l := range st.leases {
		snap.Leases[id] = *l
	}
	for id := range st.leaseKeys {
		snap.LeaseKeys[id] = st.leaseKeySet(id)
	}

	owned := make(map[int64]bool, len(s.subs))
	keys := make([]string, 0, len(s.subs))
	byKey := make(map[string]*subscription, len(s.subs))
	for k, sub := range s.subs {
		keys = append(keys, k)
		byKey[k] = sub
		owned[sub.handle.id] = true
	}
	for id := range st.watchers {
		if !owned[id] {
			return nil, false // externally-created watcher; cannot fork
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		sub := byKey[k]
		w, ok := st.watchers[sub.handle.id]
		if !ok {
			return nil, false // canceled watcher still referenced; bail out
		}
		snap.Subs = append(snap.Subs, SubSnapshot{
			SubID:     sub.subID,
			Client:    sub.client,
			WatcherID: sub.handle.id,
			Prefix:    w.prefix,
		})
	}
	return snap, true
}

// RestoreServer reconstructs a store server (and its store) from a
// snapshot inside world w. Pending kernel timers (the lease tick) are NOT
// re-armed here; the restore orchestration re-installs them from the
// kernel snapshot via Rearm.
func RestoreServer(w *sim.World, snap *Snapshot) *Server {
	st := &Store{
		rev:       snap.Rev,
		compacted: snap.Compacted,
		kvs:       make(map[string]KV, len(snap.KVs)),
		hist:      history.FromRetained(snap.Hist),
		watchers:  make(map[int64]*watcher),
		nextWatch: snap.NextWatch,
		nextLease: snap.NextLease,
		leases:    make(map[LeaseID]*Lease, len(snap.Leases)),
		leaseKeys: make(map[LeaseID]map[string]bool, len(snap.LeaseKeys)),
		retainMax: snap.RetainMax,
		now:       snap.Now,
	}
	for k, kv := range snap.KVs {
		st.kvs[k] = kv
	}
	for id, l := range snap.Leases {
		cp := l
		st.leases[id] = &cp
	}
	for id, keys := range snap.LeaseKeys {
		set := make(map[string]bool, len(keys))
		for _, k := range keys {
			set[k] = true
		}
		st.leaseKeys[id] = set
	}

	s := &Server{
		id:        snap.ID,
		world:     w,
		st:        st,
		subs:      make(map[string]*subscription, len(snap.Subs)),
		down:      snap.Down,
		leaseTick: 50 * sim.Millisecond,
	}
	s.rpc = sim.NewRPCServer(w.Network(), s.id)
	s.register()
	w.Network().Register(s.id, s)
	w.AddProcess(s)

	for _, sub := range snap.Subs {
		subID, client := sub.SubID, sub.Client
		notify := func(events []history.Event) {
			cp := s.pushSlab.Clone(events)
			s.world.Network().Send(s.id, client, KindWatchPush, &WatchPush{SubID: subID, Events: cp})
		}
		st.watchers[sub.WatcherID] = &watcher{id: sub.WatcherID, prefix: sub.Prefix, notify: notify}
		st.watcherOrder = nil
		s.subs[subKey(client, subID)] = &subscription{
			subID:  subID,
			client: client,
			handle: WatchHandle{id: sub.WatcherID, s: st},
		}
	}
	return s
}

// Rearm returns the callback for a pending kernel event owned by this
// server, identified by its snapshot tag.
func (s *Server) Rearm(tag sim.EventTag) (func(), error) {
	switch tag.Kind {
	case "leasetick":
		return s.leaseTickFire, nil
	default:
		return nil, fmt.Errorf("store: unknown pending event kind %q for %s", tag.Kind, s.id)
	}
}
