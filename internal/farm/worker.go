package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/campaign"
)

// WorkerLoop is the worker side of the farm protocol: announce ready
// (with the protocol version magic), then serve tasks from r until a
// shutdown message or EOF. Each task runs through the unchanged
// campaign.Engine; per-execution records stream to w as they enter the
// deterministic execution set, followed by one result (or error)
// message. All writes happen on the calling goroutine — the engine's
// OnOutcome hook fires from its aggregation loop, which RunTask executes
// synchronously — so the stream needs no locking and stays strictly
// ordered.
//
// Malformed coordinator frames surface as *ProtocolError (the offending
// line included) rather than a decode panic or a silently skipped
// message: a worker that cannot trust its instruction stream must die
// loudly, because the supervision layer treats its death as evidence.
func WorkerLoop(r io.Reader, w io.Writer) error {
	enc := json.NewEncoder(w)
	fs := newFrameScanner(r, "coordinator")
	if err := enc.Encode(wireMsg{Type: msgReady, Proto: ProtocolVersion}); err != nil {
		return fmt.Errorf("farm: worker hello: %w", err)
	}
	for {
		msg, _, err := fs.next()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil // coordinator hung up; clean exit
			}
			var pe *ProtocolError
			if errors.As(err, &pe) {
				return pe
			}
			return fmt.Errorf("farm: worker read: %w", err)
		}
		switch msg.Type {
		case msgShutdown:
			return nil
		case msgTask:
			if msg.Task == nil {
				return &ProtocolError{Peer: "coordinator", Line: "(task frame)", Err: errors.New("task message without task")}
			}
			spec := *msg.Task
			var streamErr error
			res, err := RunTask(spec, func(out campaign.PlanOutcome) {
				if streamErr == nil {
					streamErr = enc.Encode(wireMsg{Type: msgRecord, TaskID: spec.ID, Record: &out})
				}
			})
			if streamErr != nil {
				return fmt.Errorf("farm: worker stream: %w", streamErr)
			}
			reply := wireMsg{Type: msgResult, TaskID: spec.ID, Result: &res}
			if err != nil {
				reply = wireMsg{Type: msgError, TaskID: spec.ID, Error: err.Error()}
			}
			if err := enc.Encode(reply); err != nil {
				return fmt.Errorf("farm: worker reply: %w", err)
			}
		default:
			return &ProtocolError{Peer: "coordinator", Line: sanitizeEvidence(msg.Type), Err: fmt.Errorf("unknown message type %q", msg.Type)}
		}
	}
}

// RunTask resolves one task's cell and executes its campaign. onOutcome
// (optional) observes every per-execution record in aggregation order.
func RunTask(spec TaskSpec, onOutcome func(campaign.PlanOutcome)) (campaign.Result, error) {
	t, err := ResolveTarget(spec.Target, spec.Fixed)
	if err != nil {
		return campaign.Result{}, err
	}
	s, err := ResolveStrategy(spec.Strategy, spec.RandomSeed, spec.RandomN)
	if err != nil {
		return campaign.Result{}, err
	}
	eng := campaign.New(spec.engineConfig(onOutcome))
	return eng.Run(t, s), nil
}
