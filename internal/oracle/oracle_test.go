package oracle

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/kubelet"
	"repro/internal/sim"
	"repro/internal/store"
)

func TestRunnerKeepsFirstViolationPerOracle(t *testing.T) {
	r := NewRunner()
	r.Report(Violation{Oracle: "A", Time: 10, Detail: "first"})
	r.Report(Violation{Oracle: "A", Time: 20, Detail: "second"})
	r.Report(Violation{Oracle: "B", Time: 15, Detail: "other"})
	vs := r.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Detail != "first" || vs[0].Time != 10 {
		t.Fatalf("first violation = %+v", vs[0])
	}
	if !r.Violated("A") || !r.Violated("B") || r.Violated("C") {
		t.Fatal("Violated bookkeeping wrong")
	}
}

func TestRunnerCheckNow(t *testing.T) {
	r := NewRunner()
	fire := false
	r.Add(Func{OracleName: "flaky", CheckFunc: func(now sim.Time) *Violation {
		if fire {
			return &Violation{Oracle: "flaky", Time: now, Detail: "boom"}
		}
		return nil
	}})
	r.CheckNow(5)
	if r.Violated("flaky") {
		t.Fatal("fired early")
	}
	fire = true
	r.CheckNow(7)
	r.CheckNow(9) // must not overwrite
	if vs := r.Violations(); len(vs) != 1 || vs[0].Time != 7 {
		t.Fatalf("violations = %v", vs)
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "flaky" {
		t.Fatalf("names = %v", names)
	}
}

func TestUniquePodOracle(t *testing.T) {
	h1, h2 := kubelet.NewHost("k1"), kubelet.NewHost("k2")
	o := UniquePod([]*kubelet.Host{h1, h2})
	if v := o.Check(1); v != nil {
		t.Fatalf("empty hosts violated: %v", v)
	}
	// Same pod on two hosts — use the kubelet-internal map via a cluster
	// exercise is heavy; the Host API has no direct setter, so go through
	// Running() copies... instead simulate via reflection-free route:
	// Host.Reset + no setter means we must use the real kubelet path; keep
	// this oracle covered by infra tests and check the negative case here.
	if v := o.Check(2); v != nil {
		t.Fatalf("no-duplicate case violated: %v", v)
	}
}

func podBytes(t *testing.T, name, node string, terminating bool) []byte {
	t.Helper()
	p := cluster.NewPod(name, "u-"+name, cluster.PodSpec{NodeName: node})
	if terminating {
		p.Meta.DeletionTimestamp = 1
	}
	b, err := cluster.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSchedulerProgressOracle(t *testing.T) {
	st := store.New()
	node := cluster.NewNode("n1", "u-n1", cluster.NodeSpec{Ready: true, Capacity: 4})
	st.Put(cluster.Key(cluster.KindNode, "n1"), cluster.MustEncode(node))
	st.Put(cluster.Key(cluster.KindPod, "p1"), podBytes(t, "p1", "", false))

	o := SchedulerProgress(st, sim.Duration(100))
	if v := o.Check(10); v != nil {
		t.Fatalf("violated on first sight: %v", v)
	}
	if v := o.Check(50); v != nil {
		t.Fatalf("violated within patience: %v", v)
	}
	v := o.Check(200)
	if v == nil {
		t.Fatal("no violation after patience with a free node")
	}
	if v.Oracle != NameSchedulerProgress {
		t.Fatalf("oracle name = %q", v.Oracle)
	}

	// Binding the pod clears the pending state.
	st2 := store.New()
	st2.Put(cluster.Key(cluster.KindNode, "n1"), cluster.MustEncode(node))
	st2.Put(cluster.Key(cluster.KindPod, "p1"), podBytes(t, "p1", "", false))
	o2 := SchedulerProgress(st2, sim.Duration(100))
	o2.Check(10)
	st2.Put(cluster.Key(cluster.KindPod, "p1"), podBytes(t, "p1", "n1", false))
	if v := o2.Check(500); v != nil {
		t.Fatalf("bound pod still counted pending: %v", v)
	}
}

func TestSchedulerProgressNoFreeNodesNoViolation(t *testing.T) {
	st := store.New()
	st.Put(cluster.Key(cluster.KindPod, "p1"), podBytes(t, "p1", "", false))
	o := SchedulerProgress(st, sim.Duration(100))
	o.Check(10)
	if v := o.Check(500); v != nil {
		t.Fatalf("violation with zero ready nodes: %v", v)
	}
}

func TestNoOrphanPVCOracle(t *testing.T) {
	st := store.New()
	pvc := cluster.NewPVC("vol", "u-vol", cluster.PVCSpec{OwnerPod: "ghost", Phase: cluster.PVCBound})
	st.Put(cluster.Key(cluster.KindPVC, "vol"), cluster.MustEncode(pvc))
	o := NoOrphanPVC(st, sim.Duration(100))
	o.Check(10)
	if v := o.Check(50); v != nil {
		t.Fatalf("violated within grace: %v", v)
	}
	if v := o.Check(200); v == nil {
		t.Fatal("orphan not reported after grace")
	}

	// A released PVC is not an orphan.
	st2 := store.New()
	released := cluster.NewPVC("vol", "u", cluster.PVCSpec{OwnerPod: "ghost", Phase: cluster.PVCReleased})
	st2.Put(cluster.Key(cluster.KindPVC, "vol"), cluster.MustEncode(released))
	o2 := NoOrphanPVC(st2, sim.Duration(100))
	o2.Check(10)
	if v := o2.Check(500); v != nil {
		t.Fatalf("released PVC reported: %v", v)
	}
}

func TestNoLivePVCDeletionOracle(t *testing.T) {
	st := store.New()
	r := NewRunner()
	InstallNoLivePVCDeletion(st, r)

	// Owner alive, PVC deleted → violation.
	st.Put(cluster.Key(cluster.KindPod, "m-0"), podBytes(t, "m-0", "k1", false))
	st.Put(cluster.Key(cluster.KindPVC, "m-0-data"), cluster.MustEncode(
		cluster.NewPVC("m-0-data", "u", cluster.PVCSpec{OwnerPod: "m-0", Phase: cluster.PVCBound})))
	if _, err := st.Delete(cluster.Key(cluster.KindPVC, "m-0-data")); err != nil {
		t.Fatal(err)
	}
	if !r.Violated(NameNoLivePVCDeletion) {
		t.Fatal("live PVC deletion not reported")
	}

	// Owner terminating → no violation.
	st2 := store.New()
	r2 := NewRunner()
	InstallNoLivePVCDeletion(st2, r2)
	st2.Put(cluster.Key(cluster.KindPod, "m-1"), podBytes(t, "m-1", "k1", true))
	st2.Put(cluster.Key(cluster.KindPVC, "m-1-data"), cluster.MustEncode(
		cluster.NewPVC("m-1-data", "u", cluster.PVCSpec{OwnerPod: "m-1", Phase: cluster.PVCBound})))
	if _, err := st2.Delete(cluster.Key(cluster.KindPVC, "m-1-data")); err != nil {
		t.Fatal(err)
	}
	if r2.Violated(NameNoLivePVCDeletion) {
		t.Fatal("terminating owner's PVC deletion reported")
	}
}

func TestScaleDownCompletesOracle(t *testing.T) {
	st := store.New()
	cr := cluster.NewCassandra("cass", "u", cluster.CassandraSpec{Replicas: 2})
	st.Put(cluster.Key(cluster.KindCassandra, "cass"), cluster.MustEncode(cr))
	mkMember := func(name string) {
		p := cluster.NewPod(name, "u-"+name, cluster.PodSpec{App: "cass", NodeName: "k1"})
		st.Put(cluster.Key(cluster.KindPod, name), cluster.MustEncode(p))
	}
	mkMember("cass-0")
	mkMember("cass-1")
	o := ScaleDownCompletes(st, "cass", sim.Duration(100))
	o.Check(10)  // records spec
	o.Check(150) // after patience: members match desired
	if v := o.Check(151); v != nil {
		t.Fatalf("converged cluster violated: %v", v)
	}
	// Extra member never removed.
	mkMember("cass-2")
	if v := o.Check(300); v == nil {
		t.Fatal("wrong membership not reported")
	}
}

func TestCASAtomicityOracleNoServers(t *testing.T) {
	o := CASAtomicity(nil)
	if v := o.Check(1); v != nil {
		t.Fatalf("empty server set violated: %v", v)
	}
}
