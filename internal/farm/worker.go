package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/campaign"
)

// WorkerLoop is the worker side of the farm protocol: announce ready,
// then serve tasks from r until a shutdown message or EOF. Each task
// runs through the unchanged campaign.Engine; per-execution records
// stream to w as they enter the deterministic execution set, followed
// by one result (or error) message. All writes happen on the calling
// goroutine — the engine's OnOutcome hook fires from its aggregation
// loop, which RunTask executes synchronously — so the stream needs no
// locking and stays strictly ordered.
func WorkerLoop(r io.Reader, w io.Writer) error {
	enc := json.NewEncoder(w)
	dec := json.NewDecoder(r)
	if err := enc.Encode(wireMsg{Type: msgReady}); err != nil {
		return fmt.Errorf("farm: worker hello: %w", err)
	}
	for {
		var msg wireMsg
		if err := dec.Decode(&msg); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil // coordinator hung up; clean exit
			}
			return fmt.Errorf("farm: worker read: %w", err)
		}
		switch msg.Type {
		case msgShutdown:
			return nil
		case msgTask:
			if msg.Task == nil {
				return fmt.Errorf("farm: task message without task")
			}
			spec := *msg.Task
			var streamErr error
			res, err := RunTask(spec, func(out campaign.PlanOutcome) {
				if streamErr == nil {
					streamErr = enc.Encode(wireMsg{Type: msgRecord, TaskID: spec.ID, Record: &out})
				}
			})
			if streamErr != nil {
				return fmt.Errorf("farm: worker stream: %w", streamErr)
			}
			reply := wireMsg{Type: msgResult, TaskID: spec.ID, Result: &res}
			if err != nil {
				reply = wireMsg{Type: msgError, TaskID: spec.ID, Error: err.Error()}
			}
			if err := enc.Encode(reply); err != nil {
				return fmt.Errorf("farm: worker reply: %w", err)
			}
		default:
			return fmt.Errorf("farm: worker got unknown message type %q", msg.Type)
		}
	}
}

// RunTask resolves one task's cell and executes its campaign. onOutcome
// (optional) observes every per-execution record in aggregation order.
func RunTask(spec TaskSpec, onOutcome func(campaign.PlanOutcome)) (campaign.Result, error) {
	t, err := ResolveTarget(spec.Target, spec.Fixed)
	if err != nil {
		return campaign.Result{}, err
	}
	s, err := ResolveStrategy(spec.Strategy, spec.RandomSeed, spec.RandomN)
	if err != nil {
		return campaign.Result{}, err
	}
	eng := campaign.New(spec.engineConfig(onOutcome))
	return eng.Run(t, s), nil
}
