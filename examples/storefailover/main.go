// Store failover: the substrate beneath the whole model. The paper's
// history H only contains *fully committed* events (§3, footnote 1); this
// demo runs the raft-replicated store, kills its leader mid-workload, and
// shows (a) commits survive and continue, (b) every replica applies the
// identical history, and (c) a partitioned follower serves stale reads —
// the store-level origin of the partial histories everything above it
// inherits.
//
// Run with: go run ./examples/storefailover
package main

import (
	"errors"
	"fmt"

	"repro/internal/raftlite"
	"repro/internal/sim"
	"repro/internal/store"
)

type adminClient struct {
	rpc *sim.RPCClient
	w   *sim.World
}

func (c *adminClient) handle(m *sim.Message) { c.rpc.HandleResponse(m) }

func (c *adminClient) call(to sim.NodeID, method string, body any) (any, error) {
	var out any
	var outErr error
	done := false
	c.rpc.Call(to, method, body, func(b any, err error) { out, outErr, done = b, err, true })
	for !done && c.w.Kernel().Step() {
	}
	if !done {
		return nil, errors.New("no response")
	}
	return out, outErr
}

func main() {
	fmt.Println("== raft-replicated store: failover and follower staleness ==")
	fmt.Println()

	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond, Jitter: sim.Millisecond / 2})
	replicas := store.NewReplicaGroup(w, 3, raftlite.DefaultConfig())
	cl := &adminClient{w: w}
	cl.rpc = sim.NewRPCClient(w.Network(), "admin", 300*sim.Millisecond)
	w.Network().Register("admin", sim.HandlerFunc(cl.handle))

	leader := func() *store.ReplicaServer {
		for _, r := range replicas {
			if r.Raft().Role() == raftlite.Leader && !w.Crashed(r.ID()) {
				return r
			}
		}
		return nil
	}
	write := func(key, val string) {
		for attempt := 0; attempt < 10; attempt++ {
			l := leader()
			if l == nil {
				w.Kernel().RunFor(500 * sim.Millisecond)
				continue
			}
			_, err := cl.call(l.ID(), store.MethodPut, &store.PutRequest{Key: key, Value: []byte(val)})
			if err == nil {
				return
			}
			w.Kernel().RunFor(300 * sim.Millisecond)
		}
		fmt.Printf("  write %s failed: no leader\n", key)
	}

	w.Kernel().RunFor(2 * sim.Second)
	l := leader()
	fmt.Printf("cluster of 3 replicas elected %s (term %d)\n", l.ID(), l.Raft().Term())

	for i := 1; i <= 3; i++ {
		write(fmt.Sprintf("/cfg/%d", i), "before-failover")
	}
	w.Kernel().RunFor(sim.Second)
	fmt.Printf("wrote 3 keys; every replica's store revision: ")
	for _, r := range replicas {
		fmt.Printf("%s=%d ", r.ID(), r.Store().Revision())
	}
	fmt.Println()

	fmt.Printf("\n-- crashing the leader %s --\n", l.ID())
	_ = w.Crash(l.ID())
	w.Kernel().RunFor(2 * sim.Second)
	l2 := leader()
	fmt.Printf("new leader: %s (term %d); writes continue:\n", l2.ID(), l2.Raft().Term())
	write("/cfg/4", "after-failover")
	w.Kernel().RunFor(sim.Second)

	fmt.Printf("\n-- restarting %s; it recovers from its WAL and catches up --\n", l.ID())
	_ = w.Restart(l.ID())
	w.Kernel().RunFor(3 * sim.Second)
	for _, r := range replicas {
		fmt.Printf("  %s: revision=%d keys=%d\n", r.ID(), r.Store().Revision(), r.Store().Len())
	}

	// Follower staleness: partition one follower, write, read from it.
	var follower *store.ReplicaServer
	for _, r := range replicas {
		if r.ID() != leader().ID() {
			follower = r
			break
		}
	}
	fmt.Printf("\n-- partitioning follower %s, then writing /cfg/5 --\n", follower.ID())
	for _, r := range replicas {
		if r.ID() != follower.ID() {
			w.Network().Partition(follower.ID(), r.ID())
		}
	}
	write("/cfg/5", "follower-cannot-see-this")
	w.Kernel().RunFor(sim.Second)
	resp, err := cl.call(follower.ID(), store.MethodGet, &store.GetRequest{Key: "/cfg/5"})
	if err != nil {
		fmt.Println("  follower read error:", err)
	} else if !resp.(*store.GetResponse).Found {
		fmt.Printf("  follower %s does NOT see /cfg/5 — a stale read (H' lagging H)\n", follower.ID())
	} else {
		fmt.Println("  follower unexpectedly saw the write")
	}
	for _, r := range replicas {
		if r.ID() != follower.ID() {
			w.Network().Heal(follower.ID(), r.ID())
		}
	}
	w.Kernel().RunFor(2 * sim.Second)
	resp, _ = cl.call(follower.ID(), store.MethodGet, &store.GetRequest{Key: "/cfg/5"})
	if resp.(*store.GetResponse).Found {
		fmt.Printf("  after healing, %s converged and serves /cfg/5\n", follower.ID())
	}

	fmt.Println("\ncommitted-only histories + follower lag are exactly the (H, H') pair")
	fmt.Println("the paper's model starts from; the layers above only widen the gap.")
}
