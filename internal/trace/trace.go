// Package trace records a reference execution of the simulated
// infrastructure: which watch notifications were delivered to which
// component, which kinds each component subscribes to, which objects each
// component wrote, and the committed ground-truth history.
//
// The perturbation planner (internal/core) mines this trace: because the
// simulation is deterministic, an event observed at occurrence k in the
// reference run appears again at occurrence k in a re-run with the same
// seed — up to the point where a perturbation makes the runs diverge. The
// trace is therefore the "causal relationships between events" substrate
// the paper's Section 7 calls for.
package trace

import (
	"sort"

	"repro/internal/apiserver"
	"repro/internal/cluster"
	"repro/internal/history"
	"repro/internal/sim"
	"repro/internal/store"
)

// Delivery is one typed watch event delivered to a component.
type Delivery struct {
	Seq       uint64 // network message sequence
	From      sim.NodeID
	To        sim.NodeID
	Time      sim.Time
	Revision  int64
	Kind      cluster.Kind
	Name      string
	EventType apiserver.EventType
	// Terminating records whether the delivered object carried a
	// DeletionTimestamp — deletion-adjacent events are the highest-value
	// perturbation targets.
	Terminating bool
	// Occurrence is the 1-based count of deliveries matching
	// (To, Kind, Name, EventType) up to and including this one — the
	// replay-stable coordinate used by gap plans.
	Occurrence int
}

// Write is one mutating RPC issued by a component.
type Write struct {
	From   sim.NodeID
	Time   sim.Time
	Method string
	Kind   cluster.Kind
	Name   string
}

// ListOp is one full list (relist) issued by a component: an apiserver List
// RPC from a client, or a Range against the store (an apiserver bootstrap
// relist). Relists are the cost the paper's §4.2 warns compaction forces on
// watchers; counting them per component exposes relist storms.
type ListOp struct {
	From sim.NodeID
	To   sim.NodeID
	Time sim.Time
	Kind cluster.Kind // zero value for store-level Range (all kinds)
}

// Trace is the recorded reference execution.
type Trace struct {
	Deliveries []Delivery
	Writes     []Write
	Commits    []history.Event
	Lists      []ListOp
	// Subscriptions maps component -> object kinds it watches.
	Subscriptions map[sim.NodeID]map[cluster.Kind]bool
	// DroppedPushes counts watch-push messages dropped in flight to each
	// component (flaky links, partitions) — deliveries the component never saw.
	DroppedPushes map[sim.NodeID]int
	// DuplicatePushes counts watch-push messages delivered more than once to
	// a component (same network sequence seen again).
	DuplicatePushes map[sim.NodeID]int

	occ      map[occKey]int
	seenPush map[seenKey]bool
}

type seenKey struct {
	to  sim.NodeID
	seq uint64
}

type occKey struct {
	to   sim.NodeID
	kind cluster.Kind
	name string
	typ  apiserver.EventType
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{
		Subscriptions:   make(map[sim.NodeID]map[cluster.Kind]bool),
		DroppedPushes:   make(map[sim.NodeID]int),
		DuplicatePushes: make(map[sim.NodeID]int),
		occ:             make(map[occKey]int),
		seenPush:        make(map[seenKey]bool),
	}
}

// Fork returns a copy-on-write copy of the trace for a forked run: the
// event slices are shared with capacity clamped to length (appends in
// either run reallocate), while the mutable maps — subscriptions,
// drop/duplicate counters, occurrence and seen-push trackers — are
// deep-copied so the original and the fork diverge independently.
func (t *Trace) Fork() *Trace {
	f := &Trace{
		Deliveries:      t.Deliveries[:len(t.Deliveries):len(t.Deliveries)],
		Writes:          t.Writes[:len(t.Writes):len(t.Writes)],
		Commits:         t.Commits[:len(t.Commits):len(t.Commits)],
		Lists:           t.Lists[:len(t.Lists):len(t.Lists)],
		Subscriptions:   make(map[sim.NodeID]map[cluster.Kind]bool, len(t.Subscriptions)),
		DroppedPushes:   make(map[sim.NodeID]int, len(t.DroppedPushes)),
		DuplicatePushes: make(map[sim.NodeID]int, len(t.DuplicatePushes)),
		occ:             make(map[occKey]int, len(t.occ)),
		seenPush:        make(map[seenKey]bool, len(t.seenPush)),
	}
	for id, kinds := range t.Subscriptions {
		inner := make(map[cluster.Kind]bool, len(kinds))
		for k, v := range kinds {
			inner[k] = v
		}
		f.Subscriptions[id] = inner
	}
	for id, n := range t.DroppedPushes {
		f.DroppedPushes[id] = n
	}
	for id, n := range t.DuplicatePushes {
		f.DuplicatePushes[id] = n
	}
	for k, v := range t.occ {
		f.occ[k] = v
	}
	for k, v := range t.seenPush {
		f.seenPush[k] = v
	}
	return f
}

// NewRecorderFor creates a recorder that appends to an existing trace
// (restore path: the forked run continues the prefix's recording).
func NewRecorderFor(t *Trace) *Recorder { return &Recorder{T: t} }

// Recorder attaches a Trace to a world's network (as an Observer) and to a
// store (commit hook).
type Recorder struct {
	T *Trace
}

// NewRecorder creates a recorder feeding a fresh trace.
func NewRecorder() *Recorder { return &Recorder{T: New()} }

// Attach hooks the recorder into the network and store.
func (r *Recorder) Attach(net *sim.Network, st *store.Store) {
	net.AddObserver(r)
	st.AddNotifyHook(func(events []history.Event) {
		r.T.Commits = append(r.T.Commits, events...)
	})
}

// OnSend implements sim.Observer: it records subscriptions and writes.
func (r *Recorder) OnSend(m *sim.Message) {
	req, ok := m.Payload.(*sim.RPCRequest)
	if !ok {
		return
	}
	switch body := req.Body.(type) {
	case *apiserver.WatchRequest:
		subs := r.T.Subscriptions[m.From]
		if subs == nil {
			subs = make(map[cluster.Kind]bool)
			r.T.Subscriptions[m.From] = subs
		}
		subs[body.Kind] = true
	case *apiserver.CreateRequest:
		r.T.Writes = append(r.T.Writes, Write{
			From: m.From, Time: m.SentAt, Method: req.Method,
			Kind: body.Object.Meta.Kind, Name: body.Object.Meta.Name,
		})
	case *apiserver.UpdateRequest:
		r.T.Writes = append(r.T.Writes, Write{
			From: m.From, Time: m.SentAt, Method: req.Method,
			Kind: body.Object.Meta.Kind, Name: body.Object.Meta.Name,
		})
	case *apiserver.DeleteRequest:
		r.T.Writes = append(r.T.Writes, Write{
			From: m.From, Time: m.SentAt, Method: req.Method,
			Kind: body.Kind, Name: body.Name,
		})
	case *apiserver.ListRequest:
		r.T.Lists = append(r.T.Lists, ListOp{
			From: m.From, To: m.To, Time: m.SentAt, Kind: body.Kind,
		})
	case *store.RangeRequest:
		r.T.Lists = append(r.T.Lists, ListOp{
			From: m.From, To: m.To, Time: m.SentAt,
		})
	}
}

// OnDeliver implements sim.Observer: it records typed watch deliveries.
func (r *Recorder) OnDeliver(m *sim.Message) {
	push, ok := m.Payload.(*apiserver.WatchPushMsg)
	if !ok {
		return
	}
	sk := seenKey{to: m.To, seq: m.Seq}
	if r.T.seenPush[sk] {
		// Same network message delivered again: a duplicated link. The
		// duplicate's events are still appended below — the component really
		// did observe them twice.
		r.T.DuplicatePushes[m.To]++
	}
	r.T.seenPush[sk] = true
	for _, ev := range push.Events {
		if ev.Object == nil {
			continue
		}
		// A delivery implies a subscription, even one established before
		// the recorder attached.
		subs := r.T.Subscriptions[m.To]
		if subs == nil {
			subs = make(map[cluster.Kind]bool)
			r.T.Subscriptions[m.To] = subs
		}
		subs[ev.Object.Meta.Kind] = true

		key := occKey{to: m.To, kind: ev.Object.Meta.Kind, name: ev.Object.Meta.Name, typ: ev.Type}
		r.T.occ[key]++
		r.T.Deliveries = append(r.T.Deliveries, Delivery{
			Seq:         m.Seq,
			From:        m.From,
			To:          m.To,
			Time:        m.SentAt,
			Revision:    ev.Revision,
			Kind:        ev.Object.Meta.Kind,
			Name:        ev.Object.Meta.Name,
			EventType:   ev.Type,
			Terminating: ev.Object.Meta.DeletionTimestamp != 0,
			Occurrence:  r.T.occ[key],
		})
	}
}

// OnDrop implements sim.Observer: it counts lost watch pushes per receiver.
func (r *Recorder) OnDrop(m *sim.Message, reason string) {
	if _, ok := m.Payload.(*apiserver.WatchPushMsg); ok {
		r.T.DroppedPushes[m.To]++
	}
}

// Components returns all components that received watch deliveries, sorted.
func (t *Trace) Components() []sim.NodeID {
	set := map[sim.NodeID]bool{}
	for _, d := range t.Deliveries {
		set[d.To] = true
	}
	out := make([]sim.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeliveriesTo returns deliveries addressed to a component, in order.
func (t *Trace) DeliveriesTo(id sim.NodeID) []Delivery {
	var out []Delivery
	for _, d := range t.Deliveries {
		if d.To == id {
			out = append(out, d)
		}
	}
	return out
}

// ActedOn reports whether component wrote to (kind, name) at any point —
// the causality approximation: events about objects a component itself
// manipulates are the likeliest to change its decisions (§7).
func (t *Trace) ActedOn(component sim.NodeID, kind cluster.Kind, name string) bool {
	for _, w := range t.Writes {
		if w.From == component && w.Kind == kind && w.Name == name {
			return true
		}
	}
	return false
}

// ListsBy returns how many full lists (relists) component id issued.
func (t *Trace) ListsBy(id sim.NodeID) int {
	n := 0
	for _, l := range t.Lists {
		if l.From == id {
			n++
		}
	}
	return n
}

// DroppedPushesTo returns how many watch pushes to id were lost in flight.
func (t *Trace) DroppedPushesTo(id sim.NodeID) int { return t.DroppedPushes[id] }

// DuplicatePushesTo returns how many watch pushes id observed twice.
func (t *Trace) DuplicatePushesTo(id sim.NodeID) int { return t.DuplicatePushes[id] }

// CommitTimes returns the distinct virtual times of committed events,
// sorted ascending — the natural anchor points for staleness and
// time-travel plans.
func (t *Trace) CommitTimes() []sim.Time {
	set := map[sim.Time]bool{}
	for _, e := range t.Commits {
		set[sim.Time(e.Time)] = true
	}
	out := make([]sim.Time, 0, len(set))
	for ts := range set {
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
