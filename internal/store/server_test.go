package store

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// testClient is a minimal network client for exercising Server.
type testClient struct {
	id  sim.NodeID
	rpc *sim.RPCClient
	w   *sim.World

	pushes []*WatchPush
}

func newTestClient(w *sim.World, id sim.NodeID) *testClient {
	c := &testClient{id: id, w: w}
	c.rpc = sim.NewRPCClient(w.Network(), id, 500*sim.Millisecond)
	w.Network().Register(id, c)
	return c
}

func (c *testClient) HandleMessage(m *sim.Message) {
	if c.rpc.HandleResponse(m) {
		return
	}
	if p, ok := m.Payload.(*WatchPush); ok {
		c.pushes = append(c.pushes, p)
	}
}

// call performs a synchronous-feeling RPC by stepping the kernel until the
// response (or timeout) callback fires. It cannot use Drain: the store
// server keeps a periodic lease-expiry timer alive, so the event queue
// never empties.
func (c *testClient) call(to sim.NodeID, method string, body any) (any, error) {
	var out any
	var outErr error
	done := false
	c.rpc.Call(to, method, body, func(b any, err error) {
		out, outErr, done = b, err, true
	})
	for !done && c.w.Kernel().Step() {
	}
	if !done {
		return nil, errors.New("no response")
	}
	return out, outErr
}

func newServerWorld(t *testing.T) (*sim.World, *Server, *testClient) {
	t.Helper()
	w := sim.NewWorld(sim.WorldConfig{Seed: 1, Latency: sim.Millisecond})
	srv := NewServer(w, "etcd", New())
	cl := newTestClient(w, "client")
	return w, srv, cl
}

func TestServerPutGetRange(t *testing.T) {
	_, _, cl := newServerWorld(t)
	resp, err := cl.call("etcd", MethodPut, &PutRequest{Key: "/pods/a", Value: []byte("1")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*PutResponse).Revision != 1 {
		t.Fatalf("rev = %d", resp.(*PutResponse).Revision)
	}
	g, err := cl.call("etcd", MethodGet, &GetRequest{Key: "/pods/a"})
	if err != nil || !g.(*GetResponse).Found {
		t.Fatalf("get: %v %+v", err, g)
	}
	if _, err := cl.call("etcd", MethodPut, &PutRequest{Key: "/pods/b", Value: []byte("2")}); err != nil {
		t.Fatal(err)
	}
	r, err := cl.call("etcd", MethodRange, &RangeRequest{Prefix: "/pods/"})
	if err != nil {
		t.Fatal(err)
	}
	rr := r.(*RangeResponse)
	if len(rr.KVs) != 2 || rr.Revision != 2 {
		t.Fatalf("range = %+v", rr)
	}
}

func TestServerWatchPush(t *testing.T) {
	_, _, cl := newServerWorld(t)
	if _, err := cl.call("etcd", MethodWatch, &WatchRequest{Prefix: "/pods/", StartRev: 0, SubID: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.call("etcd", MethodPut, &PutRequest{Key: "/pods/a", Value: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.call("etcd", MethodPut, &PutRequest{Key: "/other", Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if len(cl.pushes) != 1 {
		t.Fatalf("pushes = %d", len(cl.pushes))
	}
	p := cl.pushes[0]
	if p.SubID != 7 || len(p.Events) != 1 || p.Events[0].Key != "/pods/a" {
		t.Fatalf("push = %+v", p)
	}
}

func TestServerWatchCompactedError(t *testing.T) {
	_, srv, cl := newServerWorld(t)
	for i := 0; i < 10; i++ {
		srv.Store().Put("/k", []byte{byte(i)})
	}
	srv.Store().CompactTo(8)
	_, err := cl.call("etcd", MethodWatch, &WatchRequest{Prefix: "", StartRev: 2, SubID: 1})
	if err == nil {
		t.Fatal("watch below compaction should fail")
	}
	var remote sim.ErrRemote
	if !errors.As(err, &remote) {
		t.Fatalf("err type = %T", err)
	}
	if remote.Msg != ErrCompacted.Error() {
		t.Fatalf("err = %q", remote.Msg)
	}
}

func TestServerCancelWatch(t *testing.T) {
	_, _, cl := newServerWorld(t)
	if _, err := cl.call("etcd", MethodWatch, &WatchRequest{SubID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.call("etcd", MethodCancelWatch, &CancelWatchRequest{SubID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.call("etcd", MethodPut, &PutRequest{Key: "/a"}); err != nil {
		t.Fatal(err)
	}
	if len(cl.pushes) != 0 {
		t.Fatalf("pushes after cancel = %d", len(cl.pushes))
	}
}

func TestServerCrashStopsServingAndDropsWatches(t *testing.T) {
	w, srv, cl := newServerWorld(t)
	if _, err := cl.call("etcd", MethodWatch, &WatchRequest{SubID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Crash("etcd"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.call("etcd", MethodGet, &GetRequest{Key: "/a"}); !errors.Is(err, sim.ErrRPCTimeout) {
		t.Fatalf("call to crashed server: %v", err)
	}
	if err := w.Restart("etcd"); err != nil {
		t.Fatal(err)
	}
	// Data survives; watches do not.
	srv.Store().Put("/a", []byte("1"))
	w.Kernel().RunFor(100 * sim.Millisecond)
	if len(cl.pushes) != 0 {
		t.Fatal("watch survived server crash")
	}
	g, err := cl.call("etcd", MethodGet, &GetRequest{Key: "/a"})
	if err != nil || !g.(*GetResponse).Found {
		t.Fatalf("durable data lost: %v %+v", err, g)
	}
}

func TestServerLeaseExpiryOverNetwork(t *testing.T) {
	w, _, cl := newServerWorld(t)
	g, err := cl.call("etcd", MethodLeaseGrant, &LeaseGrantRequest{TTL: int64(200 * sim.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	lease := g.(*LeaseGrantResponse).Lease
	if _, err := cl.call("etcd", MethodPut, &PutRequest{Key: "/member/k1", Value: []byte("alive"), Lease: lease.ID}); err != nil {
		t.Fatal(err)
	}
	// Without keepalive the key disappears after TTL + tick granularity.
	w.Kernel().Run(w.Now().Add(2 * sim.Second))
	resp, err := cl.call("etcd", MethodGet, &GetRequest{Key: "/member/k1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*GetResponse).Found {
		t.Fatal("lease key survived expiry")
	}
}

func TestServerTxnOverNetwork(t *testing.T) {
	_, _, cl := newServerWorld(t)
	if _, err := cl.call("etcd", MethodPut, &PutRequest{Key: "/r", Value: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.call("etcd", MethodTxn, &TxnRequest{
		Guards:    []Cmp{{Key: "/r", Target: CmpModRevision, IntVal: 1}},
		OnSuccess: []Op{{Type: OpPut, Key: "/r", Value: []byte("v2")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.(*TxnResponse).Succeeded {
		t.Fatal("txn should succeed")
	}
	resp, err = cl.call("etcd", MethodTxn, &TxnRequest{
		Guards:    []Cmp{{Key: "/r", Target: CmpModRevision, IntVal: 1}},
		OnSuccess: []Op{{Type: OpPut, Key: "/r", Value: []byte("v3")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*TxnResponse).Succeeded {
		t.Fatal("stale txn should fail")
	}
}
